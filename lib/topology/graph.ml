type node = int
type link = { src : node; dst : node; index : int }

type t = {
  nodes : int;
  mutable link_list : link list;  (* reverse insertion order *)
  mutable n_links : int;
  out : link list array;  (* per-node outgoing links, reverse order *)
  mutable out_rev : link list array;  (* kept in insertion order lazily *)
  adj : (int, link) Hashtbl.t;  (* key = src * nodes + dst *)
  mutable link_array : link array option;  (* memoised [links] *)
}

let create ~nodes =
  if nodes <= 0 then invalid_arg "Graph.create: nodes must be positive";
  {
    nodes;
    link_list = [];
    n_links = 0;
    out = Array.make nodes [];
    out_rev = Array.make nodes [];
    adj = Hashtbl.create (4 * nodes);
    link_array = None;
  }

let key t u v = (u * t.nodes) + v

let check_node t u =
  if u < 0 || u >= t.nodes then invalid_arg "Graph: node out of range"

let has_edge t u v =
  check_node t u;
  check_node t v;
  Hashtbl.mem t.adj (key t u v)

let add_directed t u v =
  let l = { src = u; dst = v; index = t.n_links } in
  t.n_links <- t.n_links + 1;
  t.link_list <- l :: t.link_list;
  t.out.(u) <- l :: t.out.(u);
  t.out_rev.(u) <- [];  (* invalidate cached order *)
  t.link_array <- None;
  Hashtbl.replace t.adj (key t u v) l

let add_edge t u v =
  check_node t u;
  check_node t v;
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  if Hashtbl.mem t.adj (key t u v) then invalid_arg "Graph.add_edge: duplicate edge";
  add_directed t u v;
  add_directed t v u

let node_count t = t.nodes
let link_count t = t.n_links
let edge_count t = t.n_links / 2

let[@lipsin.allow_race
     "memo write; pre-forced single-domain by Parallel.warm_graph \
      before any shard spawns"] out_links t u =
  check_node t u;
  match t.out_rev.(u) with
  | [] when t.out.(u) <> [] ->
    let ordered = List.rev t.out.(u) in
    t.out_rev.(u) <- ordered;
    ordered
  | cached -> cached

let out_degree t u =
  check_node t u;
  List.length t.out.(u)

let neighbors t u = List.map (fun l -> l.dst) (out_links t u)

let[@lipsin.allow_race
     "memo write; pre-forced single-domain by Parallel.warm_graph \
      before any shard spawns"] link_array t =
  match t.link_array with
  | Some a -> a
  | None ->
    let a = Array.make t.n_links { src = 0; dst = 0; index = 0 } in
    List.iter (fun l -> a.(l.index) <- l) t.link_list;
    t.link_array <- Some a;
    a

let links t = Array.copy (link_array t)

let link t i =
  if i < 0 || i >= t.n_links then invalid_arg "Graph.link: index out of range";
  (link_array t).(i)

let find_link t ~src ~dst =
  check_node t src;
  check_node t dst;
  Hashtbl.find_opt t.adj (key t src dst)

let reverse_link t l =
  match find_link t ~src:l.dst ~dst:l.src with
  | Some r -> r
  | None -> invalid_arg "Graph.reverse_link: link not in graph"

let iter_links t f = List.iter f (List.rev t.link_list)

let fold_nodes t ~init ~f =
  let acc = ref init in
  for u = 0 to t.nodes - 1 do
    acc := f !acc u
  done;
  !acc

let pp ppf t =
  Format.fprintf ppf "graph(%d nodes, %d edges, %d directed links)" t.nodes
    (edge_count t) t.n_links
