type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p5 : float;
  p50 : float;
  p95 : float;
}

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (ss /. float_of_int (n - 1))

(* Linear interpolation between closest ranks over a pre-sorted array:
   the single percentile definition both [percentile] and [summarize]
   share. *)
let percentile_sorted sorted p =
  let n = Array.length sorted in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let w = rank -. float_of_int lo in
    ((1.0 -. w) *. sorted.(lo)) +. (w *. sorted.(hi))

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p outside [0,100]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  percentile_sorted sorted p

let summarize xs =
  let n = Array.length xs in
  if n = 0 then
    { count = 0; mean = 0.; stddev = 0.; min = 0.; max = 0.; p5 = 0.; p50 = 0.; p95 = 0. }
  else
    let sorted = Array.copy xs in
    Array.sort compare sorted;
    let pct p = percentile_sorted sorted p in
    {
      count = n;
      mean = mean xs;
      stddev = stddev xs;
      min = sorted.(0);
      max = sorted.(n - 1);
      p5 = pct 5.0;
      p50 = pct 50.0;
      p95 = pct 95.0;
    }

type accumulator = {
  mutable n : int;
  mutable m : float;  (* running mean *)
  mutable s : float;  (* running sum of squared deviations *)
}

let accumulator () = { n = 0; m = 0.0; s = 0.0 }

let add acc x =
  acc.n <- acc.n + 1;
  let delta = x -. acc.m in
  acc.m <- acc.m +. (delta /. float_of_int acc.n);
  acc.s <- acc.s +. (delta *. (x -. acc.m))

let acc_count acc = acc.n
let acc_mean acc = acc.m

let acc_stddev acc =
  if acc.n < 2 then 0.0 else sqrt (acc.s /. float_of_int (acc.n - 1))

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.4f sd=%.4f min=%.4f p5=%.4f p50=%.4f p95=%.4f max=%.4f"
    s.count s.mean s.stddev s.min s.p5 s.p50 s.p95 s.max
