(** A network instance: one forwarding engine per topology node, all
    bound to the same LIT assignment.  Engines are created lazily and
    cached, so building a Net over a large graph is cheap until nodes
    are actually visited. *)

type t

val make :
  ?fill_limit:float ->
  ?loop_prevention:bool ->
  Lipsin_core.Assignment.t ->
  t
(** When the [LIPSIN_NETCHECK] environment variable is set (non-empty),
    the fresh
    deployment is statically verified with
    {!Lipsin_analysis.Netcheck.check_deployment} (LIT anomalies, loop
    admissibility, recovery soundness) and [Invalid_argument] is raised
    listing the findings if any has [Error] severity — the
    deployment-level sibling of the [LIPSIN_FASTPATH_AUDIT] gate. *)

val assignment : t -> Lipsin_core.Assignment.t
val graph : t -> Lipsin_topology.Graph.t

val generation : t -> int
(** Monotone invalidation stamp: bumped every time a cached compilation
    is dropped ({!invalidate_fastpath}, {!fail_link}, {!restore_link}).
    Holders of compiled-engine snapshots ({!Arena}) compare stamps to
    detect staleness without re-reading every cache slot. *)

val loop_prevention : t -> bool
(** Whether engines created by this net keep a loop-prevention cache
    (couples decisions across publications; the arena fast path defers
    to {!Run.deliver} when set). *)

val engine : t -> Lipsin_topology.Graph.node -> Lipsin_forwarding.Node_engine.t
(** The node's engine (created on first use). *)

val engine_of : t -> Lipsin_topology.Graph.node -> Lipsin_forwarding.Node_engine.t
(** Alias of {!engine} matching the callback shape Recovery expects. *)

val fastpath : t -> Lipsin_topology.Graph.node -> Lipsin_forwarding.Fastpath.t
(** The node's compiled fast-path engine, built from {!engine}'s current
    state on first use and cached.  {!fail_link}/{!restore_link}
    invalidate the node's compilation automatically; after mutating an
    engine directly (virtual installs, blocks, ...) call
    {!invalidate_fastpath} yourself.

    When the [LIPSIN_FASTPATH_AUDIT] environment variable is set, every
    fresh compilation is verified with {!Lipsin_analysis.Audit} before
    being cached, and [Invalid_argument] is raised listing the
    violations if the blob layout is unsound — a debug-build guardrail
    against encoding-invariant drift. *)

val bitsliced : t -> Lipsin_topology.Graph.node -> Lipsin_forwarding.Bitsliced.t
(** The node's compiled bit-sliced (transposed-table) engine, built and
    cached like {!fastpath} and invalidated by the same events.  Under
    [LIPSIN_FASTPATH_AUDIT] every fresh compilation is verified with
    {!Lipsin_analysis.Audit.audit_bitsliced} (row checks plus the
    column/row mirror, kill-column and plane-consistency checks). *)

val invalidate_fastpath : t -> Lipsin_topology.Graph.node -> unit
(** Drops the node's cached compilations (both the row-major fast path
    and the bit-sliced engine) so the next {!fastpath} / {!bitsliced}
    call recompiles from the engine's current state. *)

val tick : t -> unit
(** Advances every instantiated engine's clock (ages loop caches).
    {!Run.deliver}, {!Timed.deliver} and the control plane call this
    once per packet flight. *)

val fail_link : t -> Lipsin_topology.Graph.link -> unit
(** Convenience: marks the link down at its source engine. *)

val restore_link : t -> Lipsin_topology.Graph.link -> unit

val verify :
  ?samples:int -> ?seed:int -> t -> Lipsin_analysis.Netcheck.finding list
(** Static verification of the deployment's current forwarding state
    (failed links, virtual entries and blocks included):
    {!Lipsin_analysis.Netcheck.check_deployment} over a
    {!Lipsin_analysis.Netcheck.model_of_engines} snapshot.  [samples]
    (default 0) adds that many random delivery trees, all d candidates
    of each checked for loops, false deliveries and fill violations;
    [seed] makes the sampling reproducible.  Returns all findings; keep
    only {!Lipsin_analysis.Netcheck.errors} for a go/no-go check. *)
