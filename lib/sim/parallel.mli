(** Domain-parallel delivery: shard a workload's packets across cores.

    Batches now route through one cached persistent {!Service} pool
    (keyed by assignment, worker count, engine and loop prevention):
    worker domains, their private {!Net}s, compiled engines and
    arena-recycled delivery scratch all persist across [deliver_all]
    calls, so repeated batches pay dispatch cost only.  Set the
    [LIPSIN_PARALLEL_SPAWN=1] environment variable to force the
    historical spawn-domains-per-batch path for comparison;
    single-domain batches always run inline.

    With [loop_prevention] off (the default here) deliveries are
    independent, so the merged summary is deterministic — identical for
    any [domains] count, spawn or pooled.  With it on, loop-cache state
    couples packets that land in the same shard (and, under the pool,
    persists across batches on the same worker), so totals can vary
    with the sharding; enable it only when that is the point of the
    experiment.

    [deliver_all] is a single-dispatcher entry point: call it from one
    thread at a time. *)

type job = Service.job = {
  job_src : Lipsin_topology.Graph.node;
  job_table : int;
  job_zfilter : Lipsin_bloom.Zfilter.t;
  job_tree : Lipsin_topology.Graph.link list;
      (** Intended tree, for false-positive classification (as in
          {!Run.deliver}). *)
}

type summary = {
  jobs : int;
  domains_used : int;
  link_traversals : int;
  false_positives : int;
  membership_tests : int;
  fill_drops : int;
  loop_drops : int;
  local_deliveries : int;
  nodes_reached : int;  (** Sum over jobs of nodes the packet visited. *)
  sampled_publications : int;
      (** Jobs that drew a per-publication trace context (1-in-N
          sampling, {!Lipsin_obs.Obs.Trace.start}); the sampling
          counter is process-wide, so domains share the budget. *)
}

val deliver_all :
  ?domains:int ->
  ?engine:Run.engine ->
  ?loop_prevention:bool ->
  Lipsin_core.Assignment.t ->
  job array ->
  summary
(** Runs every job and sums the outcome counters.  [domains] defaults
    to [Domain.recommended_domain_count ()] and is clamped to the job
    count; [engine] defaults to [`Fast]; [loop_prevention] to [false]
    (see above).  @raise Invalid_argument if [domains < 1]. *)
