(** The persistent forwarding service: a long-lived per-core domain
    pool with work-stealing shard queues and arena-recycled delivery.

    {!Parallel.deliver_all} spawns fresh domains — and builds fresh
    {!Net}s, engine compilations and delivery scratch — on {e every}
    batch.  A service pays all of that once: {!create} spawns the pool,
    each worker builds a private {!Net} plus an {!Arena} with every
    node's engine compiled in one batch, and then batches are only
    dispatched, never set up.  Per batch the jobs are split into one
    contiguous shard per worker; workers drain their own shard first and
    then steal from the other shards' atomic cursors, so skewed
    fan-outs spread across the pool.  Steady-state publications run
    {!Run.deliver_into}'s certified zero-alloc arena loop; trace-sampled
    publications (1-in-N, process-wide) transparently take the full
    {!Run.deliver} path so observability is identical to the spawning
    model.

    Totals are deterministic for any worker count and steal order
    (loop prevention off): every job is claimed exactly once and
    deliveries are independent — the differential suite pins service
    totals and delivery sets to sequential {!Run.deliver} bit-for-bit.

    Thread discipline: {!run}/{!run_collect}/{!run_partitioned} and
    {!shutdown} are dispatcher-side calls — issue them from one thread
    at a time (concurrent dispatches would interleave on the same
    cursors).  Callbacks run on worker domains.

    Obs: [lipsin_service_batches_total],
    [lipsin_service_workers_spawned_total] (proves pool reuse),
    per-shard [lipsin_service_shard_jobs_total] /
    [lipsin_service_steals_total] / [lipsin_service_queue_depth], and
    the 1-in-64 sampled [lipsin_service_job_seconds] latency
    histogram. *)

type t

type job = {
  job_src : Lipsin_topology.Graph.node;
  job_table : int;
  job_zfilter : Lipsin_bloom.Zfilter.t;
  job_tree : Lipsin_topology.Graph.link list;
      (** Intended tree, for false-positive classification (as in
          {!Run.deliver}). *)
}

type stats = {
  st_jobs : int;
  st_workers : int;
  st_steals : int;  (** Jobs executed by a worker outside its own shard. *)
  st_link_traversals : int;
  st_false_positives : int;
  st_membership_tests : int;
  st_fill_drops : int;
  st_loop_drops : int;
  st_local_deliveries : int;
  st_nodes_reached : int;  (** Sum over jobs of nodes the packet visited. *)
  st_sampled : int;  (** Jobs that drew a trace context (1-in-N). *)
  st_minor_words : float;
      (** Minor GC words allocated by the workers during the batch
          (summed Gc deltas) — divide by [st_jobs] for the
          steady-state words/op the soak bench gates on. *)
  st_elapsed_s : float;  (** Dispatch-to-completion wall time. *)
}

val create :
  ?workers:int ->
  ?engine:Run.engine ->
  ?loop_prevention:bool ->
  ?adaptive:Lipsin_core.Adaptive.t ->
  Lipsin_core.Assignment.t ->
  t
(** Spawns the pool and blocks until every worker has built and
    registered its warmed context.  [workers] defaults to
    [Domain.recommended_domain_count ()]; [engine] to [`Fast];
    [loop_prevention] to [false] (with it on, worker-local loop caches
    couple publications that land on the same worker — enable only when
    that is the experiment).  Pass [adaptive] to enable
    {!run_partitioned}.
    @raise Invalid_argument if [workers < 1]. *)

val workers : t -> int
val engine : t -> Run.engine
val assignment : t -> Lipsin_core.Assignment.t

val run : t -> job array -> stats
(** Delivers every job, counters only — the sustained-throughput entry
    point ([bench --soak] drives tens of millions of publications
    through it in one process).
    @raise Invalid_argument after {!shutdown}. *)

val run_collect : t -> job array -> f:(int -> Run.outcome -> unit) -> stats
(** Like {!run} but every job takes the full allocating
    {!Run.deliver} path and [f i outcome] is invoked {e on the worker
    domain} that ran job [i] — the differential-test entry point. *)

val run_partitioned :
  t -> Lipsin_bloom.Partition.t array -> f:(int -> Stitched.outcome -> unit) -> stats
(** Staged (partitioned-zFilter) deliveries: each worker lazily builds
    its own {!Stitched} family from [adaptive], installs the partition,
    delivers, uninstalls, and invokes [f] on the worker domain.
    @raise Invalid_argument if the service was created without
    [~adaptive]. *)

val shutdown : t -> unit
(** Stops and joins the pool (idempotent).  Pending batches finish
    first; subsequent [run*] calls raise. *)
