(** Arena-recycled delivery scratch: the zero-allocation steady-state
    publication path.

    {!Run.deliver} allocates a fresh delivery set, seen-link bitmap,
    event queue and traversal list per publication — ~6.8k minor GC
    words per op (BENCH_PR4), a steady-state tax no line-rate router
    pays.  An arena preallocates all of that once per (worker, Net) and
    recycles it: bitmaps reset in O(links actually touched) via touched
    stacks, the BFS frontier is a flat ring bounded by [link_count + 1]
    (each link traverses at most once in expand-once mode), and every
    node's compiled engine is pinned up front by {!warm} so the hot loop
    never falls into the Net's lazy compile caches.  {!deliver} is a
    certified [[@lipsin.noalloc]] root.

    The supported fast path is expand-once delivery on the [`Fast],
    [`Bitsliced] and [`Auto] engines with loop prevention off; anything
    else (reference engine, TTL mode, loss, sampled tracing) goes
    through {!Run.deliver} — {!Run.deliver_into} arbitrates and absorbs
    the outcome back into the arena so callers read one shape.

    An arena belongs to one domain (its buffers are private mutable
    state) and to one {!Net}; {!prepare} revalidates the pinned engines
    against {!Net.generation} so link failures recompile lazily. *)

type t = {
  net : Net.t;
  graph : Lipsin_topology.Graph.t;
  n_nodes : int;
  n_links : int;
  fps : Lipsin_forwarding.Fastpath.t option array;
  bits : Lipsin_forwarding.Bitsliced.t option array;
  use_bits : bool array;
  mutable warm_code : int;
  mutable warm_generation : int;
  reached : bool array;  (** Delivery-set bitmap; valid entries only for
                             nodes on the touched stack. *)
  touched_nodes : int array;  (** First [n_reached] entries: the nodes
                                  reached, in first-reach order;
                                  slot 0 is the source. *)
  reach_depth : int array;  (** Hop depth at which [touched_nodes.(i)]
                                was first reached (0 for the source) —
                                the latency-histogram feed. *)
  mutable n_reached : int;
  seen_link : bool array;
  touched_links : int array;
  mutable n_seen : int;
  on_tree : bool array;
  tree_traversed : bool array;
  mutable tree : Lipsin_topology.Graph.link list;
  q_node : int array;
  q_in : int array;
  q_depth : int array;
  mutable q_head : int;
  mutable q_tail : int;
  mutable link_traversals : int;
  mutable false_positives : int;
  mutable membership_tests : int;
  mutable fill_drops : int;
  mutable loop_drops : int;
  mutable local_deliveries : int;
  mutable deliveries : int;  (** Non-source nodes first reached. *)
  mutable over_delivery : int;  (** Off-tree link traversals. *)
  mutable stitch_matches : int;
      (** Stitch entries matched (payloads are not collected — staged
          delivery uses {!Stitched.deliver}). *)
  mutable lost : int;  (** Always 0 on the fast path; set when
                           {!Run.deliver_into} absorbs a lossy run. *)
  mutable last_packet : int;
      (** Packet id of the last absorbed sampled publication, -1
          otherwise. *)
}
(** Exposed concretely so {!Run} and the forwarding service read tallies
    with plain field loads inside their own noalloc regions.  Treat
    every field as read-only outside [lib/sim]. *)

val create : Net.t -> t
(** Preallocates all scratch for the net's topology.  Cheap relative to
    {!warm}; no engines are compiled yet. *)

val net : t -> Net.t

val warm : t -> [ `Fast | `Bitsliced | `Auto ] -> unit
(** Compiles and pins every node's engine for [engine] in one batch
    ([`Auto] picks per node at {!Lipsin_forwarding.Bitsliced.auto_threshold}),
    then records {!Net.generation} so {!prepare} can detect staleness. *)

val prepare : t -> [ `Fast | `Bitsliced | `Auto ] -> unit
(** Re-runs {!warm} iff the engine choice changed or the net was
    invalidated since the last warm; otherwise free. *)

val reset : t -> unit
(** Clears the delivery set, seen-link marks and tallies in O(touched).
    {!deliver} resets implicitly; {!Run.deliver_into} resets before
    absorbing a fallback outcome. *)

val set_tree : t -> Lipsin_topology.Graph.link list -> unit
(** Installs the intended tree for false-positive / over- /
    under-delivery classification.  Physically-equal lists are
    recognised and cost nothing — recycle job records in soak loops. *)

val deliver :
  t -> src:Lipsin_topology.Graph.node -> table:int ->
  zfilter:Lipsin_bloom.Zfilter.t -> unit
(** One expand-once publication over the pinned engines, writing the
    delivery set and tallies into the arena.  Requires {!warm} (or
    {!prepare}) and {!set_tree} first.  Allocation-free
    ([[@lipsin.noalloc]], checked by [lipsin_lint --alloc] and at
    runtime by [bench --soak]). *)

val under_delivery : t -> int
(** Intended-tree links never traversed by the last {!deliver}. *)

val reached_node : t -> Lipsin_topology.Graph.node -> bool
(** Membership in the last delivery set, allocation-free. *)

val reached_copy : t -> bool array
(** The last delivery set as a fresh bitmap (allocates; test use). *)
