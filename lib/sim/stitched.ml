module Adaptive = Lipsin_core.Adaptive
module Assignment = Lipsin_core.Assignment
module Graph = Lipsin_topology.Graph
module Lit = Lipsin_bloom.Lit
module Partition = Lipsin_bloom.Partition
module Node_engine = Lipsin_forwarding.Node_engine
module Obs = Lipsin_obs.Obs

type t = { adaptive : Adaptive.t; nets : (int * Net.t) list }

let make ?fill_limit ?loop_prevention adaptive =
  let nets =
    List.map
      (fun m ->
        (m, Net.make ?fill_limit ?loop_prevention (Adaptive.assignment adaptive ~m)))
      (Adaptive.widths adaptive)
  in
  { adaptive; nets }

let adaptive t = t.adaptive

let net t ~m =
  match List.assoc_opt m t.nets with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Stitched.net: unsupported width %d" m)

let egress_lit t ~m nonce =
  Partition.egress_lit (Assignment.params (Adaptive.assignment t.adaptive ~m)) ~nonce

let iter_entries t part f =
  Array.iter
    (fun (s : Partition.stage) ->
      match s.Partition.handoffs with
      | [] -> ()
      | handoffs ->
        let lit = egress_lit t ~m:s.Partition.m s.Partition.nonce in
        let n = net t ~m:s.Partition.m in
        List.iter (fun (h : Partition.handoff) -> f n lit h) handoffs)
    part.Partition.stages

let install t part =
  iter_entries t part (fun n lit (h : Partition.handoff) ->
      Node_engine.install_stitch (Net.engine n h.Partition.at) lit
        ~partition:part.Partition.id ~next:h.Partition.next;
      Net.invalidate_fastpath n h.Partition.at)

let uninstall t part =
  iter_entries t part (fun n lit (h : Partition.handoff) ->
      Node_engine.remove_stitch (Net.engine n h.Partition.at) lit;
      Net.invalidate_fastpath n h.Partition.at)

type outcome = {
  delivered : int array;
  stages_run : int;
  stage_order : int list;
  duplicate_handoffs : int;
  missed_stages : int;
  foreign_hits : int;
  subscribers_missed : int;
  link_traversals : int;
  false_positives : int;
  membership_tests : int;
  fill_drops : int;
  loop_drops : int;
  packet_id : int;
  trace_anomalies : string list;
}

let deliver ?mode ?engine t part =
  let stages = part.Partition.stages in
  let n_stages = Array.length stages in
  let graph = Net.graph (snd (List.hd t.nets)) in
  let delivered = Array.make (Graph.node_count graph) 0 in
  let activated = Array.make n_stages false in
  let order = ref [] and runs = ref 0 in
  let duplicate = ref 0 and foreign = ref 0 and missed_subs = ref 0 in
  let traversals = ref 0 and fps = ref 0 and tests = ref 0 in
  let fill_drops = ref 0 and loop_drops = ref 0 in
  (* One trace context for the whole publication: every stage run
     records under the same packet id, so the reconstructed span forest
     spans stage boundaries. *)
  let ctx = Obs.Trace.start () in
  let tracing = ctx.Obs.Trace.tc_sampled in
  let packet_id = ctx.Obs.Trace.tc_packet in
  let ring = if tracing then Some (Obs.Trace.local ()) else None in
  let queue = Queue.create () in
  Queue.add 0 queue;
  activated.(0) <- true;
  while not (Queue.is_empty queue) do
    let idx = Queue.take queue in
    let s = stages.(idx) in
    let n = net t ~m:s.Partition.m in
    let tree = List.map (Graph.link graph) s.Partition.links in
    let o =
      Run.deliver ?mode ?engine ~trace:ctx ~stage:idx n ~src:s.Partition.root
        ~table:s.Partition.table ~zfilter:s.Partition.filter ~tree
    in
    incr runs;
    order := idx :: !order;
    Array.iteri (fun v r -> if r then delivered.(v) <- delivered.(v) + 1) o.Run.reached;
    List.iter
      (fun w -> if not o.Run.reached.(w) then incr missed_subs)
      s.Partition.subscribers;
    traversals := !traversals + o.Run.link_traversals;
    fps := !fps + o.Run.false_positives;
    tests := !tests + o.Run.membership_tests;
    fill_drops := !fill_drops + o.Run.fill_drops;
    loop_drops := !loop_drops + o.Run.loop_drops;
    List.iter
      (fun (node, pid, next) ->
        if pid <> part.Partition.id then incr foreign
        else begin
          (* Record the handoff before duplicate suppression: the span
             reconstruction counts activations per target stage, so a
             duplicate the activation cache hides still surfaces as a
             Duplicate_activation anomaly at runtime. *)
          (match ring with
          | Some r ->
            Obs.Trace.record r ~stage:idx ~packet:packet_id ~node
              ~in_link:(-1) ~kind:Obs.Trace.Stitch_handoff
              ~out_links:[| next |] ~false_positive:false
              ~loop_suspected:false ~deliver_local:false ~ttl_expired:0
          | None -> ());
          if next < 0 || next >= n_stages || activated.(next) then
            incr duplicate
          else begin
            activated.(next) <- true;
            Queue.add next queue
          end
        end)
      o.Run.stitch_hits
  done;
  let missed = Array.fold_left (fun acc a -> if a then acc else acc + 1) 0 activated in
  (* Runtime cross-check of the sampled publication — the dynamic twin
     of [Netcheck.check_partition]: reconstruct the span forest, replay
     it into a delivery set, compare against what the run reports, and
     fire the flight recorder on semantics violations. *)
  let trace_anomalies =
    if not tracing then []
    else begin
      let dst_of i = (Graph.link graph i).Graph.dst in
      let expected = ref [] in
      Array.iteri
        (fun v c -> if c > 0 then expected := v :: !expected)
        delivered;
      let span = Obs.Span.of_packet packet_id in
      let v = Obs.Span.crosscheck ~dst_of ~expected:(List.rev !expected) span
      in
      let has p = List.exists p v.Obs.Span.vd_anomalies in
      if has (function Obs.Span.Duplicate_activation _ -> true | _ -> false)
      then
        Obs.Flight.fire Obs.Flight.Duplicate_activation ~packet:packet_id
          ~detail:(Obs.Span.verdict_to_string v)
      else if has (function Obs.Span.Loop _ -> true | _ -> false) then
        Obs.Flight.fire Obs.Flight.Loop_detected ~packet:packet_id
          ~detail:(Obs.Span.verdict_to_string v)
      else if
        v.Obs.Span.vd_complete
        && (v.Obs.Span.vd_missing <> [] || v.Obs.Span.vd_unexpected <> [])
      then
        (* Only with a complete trace: ring overflow would replay a
           partial delivery set and cry wolf. *)
        Obs.Flight.fire Obs.Flight.Delivery_mismatch ~packet:packet_id
          ~detail:(Obs.Span.verdict_to_string v);
      List.map Obs.Span.anomaly_to_string v.Obs.Span.vd_anomalies
    end
  in
  {
    delivered;
    stages_run = !runs;
    stage_order = List.rev !order;
    duplicate_handoffs = !duplicate;
    missed_stages = missed;
    foreign_hits = !foreign;
    subscribers_missed = !missed_subs;
    link_traversals = !traversals;
    false_positives = !fps;
    membership_tests = !tests;
    fill_drops = !fill_drops;
    loop_drops = !loop_drops;
    packet_id;
    trace_anomalies;
  }

let exactly_once o part =
  let n_stages = Partition.stage_count part in
  if o.stages_run <> n_stages then
    Error
      (Printf.sprintf "%d of %d stages activated" o.stages_run n_stages)
  else if o.missed_stages <> 0 then
    Error (Printf.sprintf "%d stages never activated" o.missed_stages)
  else if o.foreign_hits <> 0 then
    Error (Printf.sprintf "%d foreign-partition stitch hits" o.foreign_hits)
  else if o.subscribers_missed <> 0 then
    Error
      (Printf.sprintf "%d subscribers missed by their owner stage"
         o.subscribers_missed)
  else Ok ()

let extra_deliveries o part =
  Array.fold_left
    (fun acc (s : Partition.stage) ->
      List.fold_left
        (fun acc w -> acc + max 0 (o.delivered.(w) - 1))
        acc s.Partition.subscribers)
    0 part.Partition.stages
