module Rng = Lipsin_util.Rng
module Graph = Lipsin_topology.Graph
module Node_engine = Lipsin_forwarding.Node_engine
module Fastpath = Lipsin_forwarding.Fastpath

type mode = Expand_once | Ttl of int
type engine = [ `Reference | `Fast ]

type loss = { probability : float; rng : Rng.t }

type outcome = {
  reached : bool array;
  traversed : Graph.link list;
  link_traversals : int;
  false_positives : int;
  membership_tests : int;
  fill_drops : int;
  loop_drops : int;
  local_deliveries : int;
  lost : int;
}

type event = {
  node : Graph.node;
  in_link : Graph.link option;
  ttl : int;
}

let ttl_event_cap = 200_000

let deliver ?(mode = Expand_once) ?loss ?(engine = `Reference) net ~src ~table
    ~zfilter ~tree =
  (match loss with
  | Some { probability; _ } when probability < 0.0 || probability >= 1.0 ->
    invalid_arg "Run.deliver: loss probability outside [0,1)"
  | Some _ | None -> ());
  Net.tick net;
  let graph = Net.graph net in
  let n_nodes = Graph.node_count graph in
  let n_links = Graph.link_count graph in
  let on_tree = Array.make n_links false in
  List.iter (fun l -> on_tree.(l.Graph.index) <- true) tree;
  let reached = Array.make n_nodes false in
  let seen_link = Array.make n_links false in
  let traversed = ref [] in
  let link_traversals = ref 0 in
  let false_positives = ref 0 in
  let membership_tests = ref 0 in
  let fill_drops = ref 0 in
  let loop_drops = ref 0 in
  let local_deliveries = ref 0 in
  let lost_packets = ref 0 in
  let queue = Queue.create () in
  let initial_ttl = match mode with Expand_once -> max_int | Ttl t -> t in
  Queue.add { node = src; in_link = None; ttl = initial_ttl } queue;
  reached.(src) <- true;
  while not (Queue.is_empty queue) do
    let { node; in_link; ttl } = Queue.take queue in
    let propagate l =
      if not on_tree.(l.Graph.index) then incr false_positives;
      let should_traverse =
        match mode with
        | Expand_once ->
          if seen_link.(l.Graph.index) then false
          else begin
            seen_link.(l.Graph.index) <- true;
            true
          end
        | Ttl _ ->
          (* A looping filter can replicate exponentially in TTL mode;
             the event cap bounds the simulation the way finite link
             capacity bounds a real network. *)
          ttl > 0 && !link_traversals < ttl_event_cap
      in
      if should_traverse then begin
        incr link_traversals;
        traversed := l :: !traversed;
        let lost =
          match loss with
          | Some { probability; rng } -> Rng.float rng 1.0 < probability
          | None -> false
        in
        if lost then incr lost_packets
        else begin
          reached.(l.Graph.dst) <- true;
          Queue.add { node = l.Graph.dst; in_link = Some l; ttl = ttl - 1 } queue
        end
      end
    in
    (match engine with
    | `Reference ->
      let verdict =
        Node_engine.forward (Net.engine net node) ~table ~zfilter ~in_link
      in
      membership_tests :=
        !membership_tests + verdict.Node_engine.false_positive_tests;
      if verdict.Node_engine.deliver_local then incr local_deliveries;
      (match verdict.Node_engine.drop with
      | Some Node_engine.Fill_limit_exceeded -> incr fill_drops
      | Some Node_engine.Loop_detected -> incr loop_drops
      | Some Node_engine.Bad_table | None -> ());
      List.iter propagate verdict.Node_engine.forward_on
    | `Fast ->
      let fp = Net.fastpath net node in
      let in_link_index =
        match in_link with None -> -1 | Some l -> l.Graph.index
      in
      let d = Fastpath.decide fp ~table ~zfilter ~in_link_index in
      membership_tests := !membership_tests + d.Fastpath.tests;
      if d.Fastpath.deliver_local then incr local_deliveries;
      if d.Fastpath.drop = Fastpath.drop_fill then incr fill_drops
      else if d.Fastpath.drop = Fastpath.drop_loop then incr loop_drops;
      for i = 0 to d.Fastpath.n_forward - 1 do
        propagate (Fastpath.out_link fp d.Fastpath.forward.(i))
      done)
  done;
  {
    reached;
    traversed = List.rev !traversed;
    link_traversals = !link_traversals;
    false_positives = !false_positives;
    membership_tests = !membership_tests;
    fill_drops = !fill_drops;
    loop_drops = !loop_drops;
    local_deliveries = !local_deliveries;
    lost = !lost_packets;
  }

let forwarding_efficiency outcome ~tree =
  if outcome.link_traversals = 0 then 1.0
  else float_of_int (List.length tree) /. float_of_int outcome.link_traversals

let false_positive_rate outcome =
  if outcome.membership_tests = 0 then 0.0
  else float_of_int outcome.false_positives /. float_of_int outcome.membership_tests

let all_reached outcome subscribers =
  List.for_all (fun s -> outcome.reached.(s)) subscribers
