module Rng = Lipsin_util.Rng
module Graph = Lipsin_topology.Graph
module Node_engine = Lipsin_forwarding.Node_engine
module Fastpath = Lipsin_forwarding.Fastpath
module Bitsliced = Lipsin_forwarding.Bitsliced
module Obs = Lipsin_obs.Obs

type mode = Expand_once | Ttl of int
type engine = [ `Reference | `Fast | `Bitsliced | `Auto ]

type loss = { probability : float; rng : Rng.t }

type outcome = {
  reached : bool array;
  traversed : Graph.link list;
  link_traversals : int;
  false_positives : int;
  membership_tests : int;
  fill_drops : int;
  loop_drops : int;
  local_deliveries : int;
  lost : int;
  stitch_hits : (Graph.node * int * int) list;
  packet_id : int;
}

type event = {
  node : Graph.node;
  in_link : Graph.link option;
  ttl : int;
  depth : int;
}

let ttl_event_cap = 200_000

(* Telemetry: publication-level tallies.  Per-decision counters live in
   the engines themselves; here we only account what the engines cannot
   see — bandwidth, delivery latency and the intended-tree delta. *)
let m_publications =
  Obs.Counter.make ~help:"Publications simulated by Run.deliver"
    "lipsin_publications_total"

let m_traversals =
  Obs.Counter.make ~help:"Link traversals (bandwidth cost) over all publications"
    "lipsin_link_traversals_total"

let v_false_positive =
  Obs.Counter.vec ~help:"False-positive link matches, by forwarding table"
    ~label:"table" "lipsin_false_positive_total"

let m_over_delivery =
  Obs.Counter.make ~help:"Off-tree link traversals (over-delivery bandwidth)"
    "lipsin_over_delivery_total"

let m_under_delivery =
  Obs.Counter.make
    ~help:"Intended tree links never traversed (under-delivery)"
    "lipsin_under_delivery_total"

let m_ttl_expired =
  Obs.Counter.make ~help:"Admitted copies refused because the TTL reached zero"
    "lipsin_ttl_expired_total"

let m_lost =
  Obs.Counter.make ~help:"Traversals dropped by the loss model"
    "lipsin_lost_packets_total"

let m_deliveries =
  Obs.Counter.make ~help:"Nodes first reached during deliveries"
    "lipsin_deliveries_total"

let h_latency =
  Obs.Histogram.make
    ~help:"Hop depth at which each delivered node was first reached"
    "lipsin_delivery_latency_hops"

let h_pub_traversals =
  Obs.Histogram.make ~help:"Link traversals per publication"
    "lipsin_publication_link_traversals"

let trace_kind_of_drop = function
  | None -> Obs.Trace.Hop
  | Some Node_engine.Fill_limit_exceeded -> Obs.Trace.Drop_fill
  | Some Node_engine.Loop_detected -> Obs.Trace.Drop_loop
  | Some Node_engine.Bad_table -> Obs.Trace.Drop_bad_table

let deliver ?(mode = Expand_once) ?loss ?(engine = `Reference) ?trace
    ?(stage = -1) net ~src ~table ~zfilter ~tree =
  (match loss with
  | Some { probability; _ } when probability < 0.0 || probability >= 1.0 ->
    invalid_arg "Run.deliver: loss probability outside [0,1)"
  | Some _ | None -> ());
  Net.tick net;
  let graph = Net.graph net in
  let n_nodes = Graph.node_count graph in
  let n_links = Graph.link_count graph in
  let on_tree = Array.make n_links false in
  List.iter (fun l -> on_tree.(l.Graph.index) <- true) tree;
  let tree_traversed = Array.make n_links false in
  let reached = Array.make n_nodes false in
  let seen_link = Array.make n_links false in
  let traversed = ref [] in
  let link_traversals = ref 0 in
  let false_positives = ref 0 in
  let membership_tests = ref 0 in
  let fill_drops = ref 0 in
  let loop_drops = ref 0 in
  let local_deliveries = ref 0 in
  let lost_packets = ref 0 in
  let stitch_hits = ref [] in
  let note_stitches node targets =
    List.iter (fun (pid, next) -> stitch_hits := (node, pid, next) :: !stitch_hits) targets
  in
  let obs = Obs.enabled () in
  (* The caller's trace context wins (one publication id across the
     stages of a stitched delivery); standalone deliveries take their
     own 1-in-N sampling decision. *)
  let ctx = match trace with Some c -> c | None -> Obs.Trace.start () in
  let tracing = ctx.Obs.Trace.tc_sampled in
  let pid = ctx.Obs.Trace.tc_packet in
  (* Traced publications always feed the flight recorder; the rest are
     subsampled so untimed deliveries skip the clock reads entirely. *)
  let flight = tracing || (obs && Obs.Flight.want_note ()) in
  let t0 = if flight then Unix.gettimeofday () else 0.0 in
  let ring = if tracing then Some (Obs.Trace.local ()) else None in
  let lat_cell = if obs then Some (Obs.Histogram.local h_latency) else None in
  let deliveries = ref 0 in
  let over_delivery = ref 0 in
  let ttl_refused_total = ref 0 in
  (* Per-decision trace scratch, reset before each node's fan-out. *)
  let out_acc = ref [] in
  let fp_flag = ref false in
  let ttl_refused = ref 0 in
  let queue = Queue.create () in
  let initial_ttl = match mode with Expand_once -> max_int | Ttl t -> t in
  Queue.add { node = src; in_link = None; ttl = initial_ttl; depth = 0 } queue;
  reached.(src) <- true;
  while not (Queue.is_empty queue) do
    let { node; in_link; ttl; depth } = Queue.take queue in
    out_acc := [];
    fp_flag := false;
    ttl_refused := 0;
    let propagate l =
      if not on_tree.(l.Graph.index) then begin
        incr false_positives;
        fp_flag := true
      end;
      let should_traverse =
        match mode with
        | Expand_once ->
          if seen_link.(l.Graph.index) then false
          else begin
            seen_link.(l.Graph.index) <- true;
            true
          end
        | Ttl _ ->
          (* A looping filter can replicate exponentially in TTL mode;
             the event cap bounds the simulation the way finite link
             capacity bounds a real network. *)
          if ttl <= 0 then begin
            incr ttl_refused;
            incr ttl_refused_total;
            false
          end
          else !link_traversals < ttl_event_cap
      in
      if should_traverse then begin
        incr link_traversals;
        traversed := l :: !traversed;
        if on_tree.(l.Graph.index) then tree_traversed.(l.Graph.index) <- true
        else incr over_delivery;
        let lost =
          match loss with
          | Some { probability; rng } -> Rng.float rng 1.0 < probability
          | None -> false
        in
        if lost then incr lost_packets
        else begin
          if not reached.(l.Graph.dst) then begin
            reached.(l.Graph.dst) <- true;
            incr deliveries;
            match lat_cell with
            | Some c -> Obs.Histogram.record_int c (depth + 1)
            | None -> ()
          end;
          if tracing then out_acc := l.Graph.index :: !out_acc;
          Queue.add
            { node = l.Graph.dst; in_link = Some l; ttl = ttl - 1;
              depth = depth + 1 }
            queue
        end
      end
    in
    let trace ~engine_code ~drop ~loop_suspected ~deliver_local =
      match ring with
      | None -> ()
      | Some r ->
        Obs.Trace.record r ~table ~engine:engine_code ~stage ~depth
          ~packet:pid ~node
          ~in_link:
            (match in_link with None -> -1 | Some l -> l.Graph.index)
          ~kind:(trace_kind_of_drop drop)
          ~out_links:(Array.of_list (List.rev !out_acc))
          ~false_positive:!fp_flag ~loop_suspected ~deliver_local
          ~ttl_expired:!ttl_refused
    in
    let run_fast () =
      let fp = Net.fastpath net node in
      let in_link_index =
        match in_link with None -> -1 | Some l -> l.Graph.index
      in
      let d = Fastpath.decide fp ~table ~zfilter ~in_link_index in
      membership_tests := !membership_tests + d.Fastpath.tests;
      if d.Fastpath.deliver_local then incr local_deliveries;
      if d.Fastpath.drop = Fastpath.drop_fill then incr fill_drops
      else if d.Fastpath.drop = Fastpath.drop_loop then incr loop_drops;
      note_stitches node (Fastpath.stitch_targets fp d);
      for i = 0 to d.Fastpath.n_forward - 1 do
        propagate (Fastpath.out_link fp d.Fastpath.forward.(i))
      done;
      trace ~engine_code:Obs.Trace.engine_fast
        ~drop:(Fastpath.drop_reason d)
        ~loop_suspected:d.Fastpath.loop_suspected
        ~deliver_local:d.Fastpath.deliver_local
    in
    let run_bitsliced () =
      let bs = Net.bitsliced net node in
      let in_link_index =
        match in_link with None -> -1 | Some l -> l.Graph.index
      in
      let d = Bitsliced.decide bs ~table ~zfilter ~in_link_index in
      membership_tests := !membership_tests + d.Bitsliced.tests;
      if d.Bitsliced.deliver_local then incr local_deliveries;
      if d.Bitsliced.drop = Bitsliced.drop_fill then incr fill_drops
      else if d.Bitsliced.drop = Bitsliced.drop_loop then incr loop_drops;
      note_stitches node (Bitsliced.stitch_targets bs d);
      for i = 0 to d.Bitsliced.n_forward - 1 do
        propagate (Bitsliced.out_link bs d.Bitsliced.forward.(i))
      done;
      trace ~engine_code:Obs.Trace.engine_bitsliced
        ~drop:(Bitsliced.drop_reason d)
        ~loop_suspected:d.Bitsliced.loop_suspected
        ~deliver_local:d.Bitsliced.deliver_local
    in
    match engine with
    | `Reference ->
      let verdict =
        Node_engine.forward (Net.engine net node) ~table ~zfilter ~in_link
      in
      membership_tests :=
        !membership_tests + verdict.Node_engine.false_positive_tests;
      if verdict.Node_engine.deliver_local then incr local_deliveries;
      (match verdict.Node_engine.drop with
      | Some Node_engine.Fill_limit_exceeded -> incr fill_drops
      | Some Node_engine.Loop_detected -> incr loop_drops
      | Some Node_engine.Bad_table | None -> ());
      note_stitches node verdict.Node_engine.stitches_matched;
      List.iter propagate verdict.Node_engine.forward_on;
      trace ~engine_code:Obs.Trace.engine_reference
        ~drop:verdict.Node_engine.drop
        ~loop_suspected:verdict.Node_engine.loop_suspected
        ~deliver_local:verdict.Node_engine.deliver_local
    | `Fast -> run_fast ()
    | `Bitsliced -> run_bitsliced ()
    | `Auto ->
      if Graph.out_degree graph node >= Bitsliced.auto_threshold then
        run_bitsliced ()
      else run_fast ()
  done;
  if obs then begin
    let under =
      List.fold_left
        (fun acc l -> if tree_traversed.(l.Graph.index) then acc else acc + 1)
        0 tree
    in
    Obs.Counter.incr m_publications;
    Obs.Counter.add m_traversals !link_traversals;
    Obs.Counter.add (Obs.Counter.cell v_false_positive table) !false_positives;
    Obs.Counter.add m_over_delivery !over_delivery;
    Obs.Counter.add m_under_delivery under;
    Obs.Counter.add m_ttl_expired !ttl_refused_total;
    Obs.Counter.add m_lost !lost_packets;
    Obs.Counter.add m_deliveries !deliveries;
    Obs.Histogram.observe h_pub_traversals (float_of_int !link_traversals);
    (* One flight-recorder frame per sampled publication: the
       latency-jump trigger watches the wall time, the anomaly notes
       give the post-mortem bundle its context. *)
    if flight then begin
      let anomalies =
        if !loop_drops > 0 then
          [ Printf.sprintf "%d loop drops" !loop_drops ]
        else []
      in
      Obs.Flight.note ~anomalies
        ~events:(if tracing then !link_traversals + 1 else 0)
        ~packet:pid
        ~latency:(Unix.gettimeofday () -. t0)
        ()
    end
  end;
  {
    reached;
    traversed = List.rev !traversed;
    link_traversals = !link_traversals;
    false_positives = !false_positives;
    membership_tests = !membership_tests;
    fill_drops = !fill_drops;
    loop_drops = !loop_drops;
    local_deliveries = !local_deliveries;
    lost = !lost_packets;
    stitch_hits = List.rev !stitch_hits;
    packet_id = pid;
  }

(* ---- arena-recycled steady-state path ------------------------------- *)

(* Absorb a full [deliver] outcome into the arena so service/soak
   callers read one shape whether the publication took the recycled fast
   path or fell back (sampled tracing, reference engine, TTL, loss).
   The fallback already did its own Obs accounting inside [deliver]. *)
let absorb (a : Arena.t) (o : outcome) =
  Arena.reset a;
  Array.iteri
    (fun v r ->
      if r then begin
        a.Arena.reached.(v) <- true;
        a.Arena.touched_nodes.(a.Arena.n_reached) <- v;
        a.Arena.reach_depth.(a.Arena.n_reached) <- 0;
        a.Arena.n_reached <- a.Arena.n_reached + 1
      end)
    o.reached;
  List.iter
    (fun l ->
      let li = l.Graph.index in
      if not a.Arena.seen_link.(li) then begin
        a.Arena.seen_link.(li) <- true;
        a.Arena.touched_links.(a.Arena.n_seen) <- li;
        a.Arena.n_seen <- a.Arena.n_seen + 1
      end;
      if a.Arena.on_tree.(li) then a.Arena.tree_traversed.(li) <- true
      else a.Arena.over_delivery <- a.Arena.over_delivery + 1)
    o.traversed;
  a.Arena.link_traversals <- o.link_traversals;
  a.Arena.false_positives <- o.false_positives;
  a.Arena.membership_tests <- o.membership_tests;
  a.Arena.fill_drops <- o.fill_drops;
  a.Arena.loop_drops <- o.loop_drops;
  a.Arena.local_deliveries <- o.local_deliveries;
  a.Arena.deliveries <- max 0 (a.Arena.n_reached - 1);
  a.Arena.stitch_matches <- List.length o.stitch_hits;
  a.Arena.lost <- o.lost;
  a.Arena.last_packet <- o.packet_id

(* The Obs epilogue of the recycled path, mirroring [deliver]'s: the
   per-publication counters the engines cannot see, the latency
   histogram fed post-hoc from the recorded first-reach depths, and the
   1-in-16 flight-recorder note that keeps the latency-jump trigger
   armed on the steady-state path. *)
let arena_obs (a : Arena.t) ~table ~flight ~t0 =
  let c = Obs.Histogram.local h_latency in
  for i = 1 to a.Arena.n_reached - 1 do
    Obs.Histogram.record_int c a.Arena.reach_depth.(i)
  done;
  Obs.Counter.incr m_publications;
  Obs.Counter.add m_traversals a.Arena.link_traversals;
  Obs.Counter.add
    (Obs.Counter.cell v_false_positive table)
    a.Arena.false_positives;
  Obs.Counter.add m_over_delivery a.Arena.over_delivery;
  Obs.Counter.add m_under_delivery (Arena.under_delivery a);
  Obs.Counter.add m_deliveries a.Arena.deliveries;
  Obs.Histogram.observe_int h_pub_traversals a.Arena.link_traversals;
  if flight then begin
    let anomalies =
      if a.Arena.loop_drops > 0 then
        [ Printf.sprintf "%d loop drops" a.Arena.loop_drops ]
      else []
    in
    Obs.Flight.note ~anomalies ~events:0 ~packet:(-1)
      ~latency:(Unix.gettimeofday () -. t0)
      ()
  end

let arena_path scratch eng ~src ~table ~zfilter =
  let net = Arena.net scratch in
  Net.tick net;
  Arena.prepare scratch eng;
  let obs = Obs.enabled () in
  let flight = obs && Obs.Flight.want_note () in
  let t0 = if flight then Unix.gettimeofday () else 0.0 in
  Arena.deliver scratch ~src ~table ~zfilter;
  if obs then arena_obs scratch ~table ~flight ~t0

let deliver_into ?(mode = Expand_once) ?loss ?(engine = `Fast) ?trace scratch
    ~src ~table ~zfilter ~tree =
  Arena.set_tree scratch tree;
  let sampled =
    match trace with Some c -> c.Obs.Trace.tc_sampled | None -> false
  in
  let fallback () =
    let o =
      deliver ~mode ?loss ~engine ?trace (Arena.net scratch) ~src ~table
        ~zfilter ~tree
    in
    absorb scratch o
  in
  if sampled then fallback ()
  else
    match (engine, mode, loss) with
    | `Fast, Expand_once, None -> arena_path scratch `Fast ~src ~table ~zfilter
    | `Bitsliced, Expand_once, None ->
      arena_path scratch `Bitsliced ~src ~table ~zfilter
    | `Auto, Expand_once, None -> arena_path scratch `Auto ~src ~table ~zfilter
    | (`Reference | `Fast | `Bitsliced | `Auto), _, _ -> fallback ()

let verify_trace net outcome =
  if outcome.packet_id < 0 then None
  else begin
    let graph = Net.graph net in
    let dst_of i = (Graph.link graph i).Graph.dst in
    let expected = ref [] in
    Array.iteri
      (fun v r -> if r then expected := v :: !expected)
      outcome.reached;
    let tree = Obs.Span.of_packet outcome.packet_id in
    Some (Obs.Span.crosscheck ~dst_of ~expected:(List.rev !expected) tree)
  end

let forwarding_efficiency outcome ~tree =
  if outcome.link_traversals = 0 then 1.0
  else float_of_int (List.length tree) /. float_of_int outcome.link_traversals

let false_positive_rate outcome =
  if outcome.membership_tests = 0 then 0.0
  else float_of_int outcome.false_positives /. float_of_int outcome.membership_tests

let all_reached outcome subscribers =
  List.for_all (fun s -> outcome.reached.(s)) subscribers
