module Graph = Lipsin_topology.Graph
module Fastpath = Lipsin_forwarding.Fastpath
module Bitsliced = Lipsin_forwarding.Bitsliced

(* Recycled per-publication delivery scratch.  Every array is sized once
   from the topology and reused across publications: delivery-set and
   seen-link bitmaps are reset in O(touched) via the touched stacks, the
   BFS frontier is a flat ring (each link is traversed at most once in
   Expand_once mode, so [link_count + 1] slots bound it), and compiled
   engines are pinned per node so the hot loop never consults the Net's
   lazy caches.  The result: [deliver] is a certified [@lipsin.noalloc]
   root — zero minor words per publication in steady state. *)

type t = {
  net : Net.t;
  graph : Graph.t;
  n_nodes : int;
  n_links : int;
  (* pinned compiled engines; [warm] populates, [prepare] revalidates *)
  fps : Fastpath.t option array;
  bits : Bitsliced.t option array;
  use_bits : bool array;
  mutable warm_code : int;  (* 0 cold, 1 `Fast, 2 `Bitsliced, 3 `Auto *)
  mutable warm_generation : int;
  (* recycled delivery set: reached bitmap + touched stack + the depth
     at which each node was first reached (latency histogram feed) *)
  reached : bool array;
  touched_nodes : int array;
  reach_depth : int array;
  mutable n_reached : int;
  (* recycled seen-link bitmap (Expand_once dedup) + touched stack *)
  seen_link : bool array;
  touched_links : int array;
  mutable n_seen : int;
  (* intended-tree bitmaps; [set_tree] swaps them between publications *)
  on_tree : bool array;
  tree_traversed : bool array;
  mutable tree : Graph.link list;
  (* flat BFS ring: (node, dense in-link index | -1, depth) *)
  q_node : int array;
  q_in : int array;
  q_depth : int array;
  mutable q_head : int;
  mutable q_tail : int;
  (* per-publication tallies, mirroring Run.deliver's counters *)
  mutable link_traversals : int;
  mutable false_positives : int;
  mutable membership_tests : int;
  mutable fill_drops : int;
  mutable loop_drops : int;
  mutable local_deliveries : int;
  mutable deliveries : int;
  mutable over_delivery : int;
  mutable stitch_matches : int;
  mutable lost : int;
  mutable last_packet : int;
}

let create net =
  let graph = Net.graph net in
  let n_nodes = Graph.node_count graph in
  let n_links = Graph.link_count graph in
  {
    net;
    graph;
    n_nodes;
    n_links;
    fps = Array.make n_nodes None;
    bits = Array.make n_nodes None;
    use_bits = Array.make n_nodes false;
    warm_code = 0;
    warm_generation = -1;
    reached = Array.make n_nodes false;
    touched_nodes = Array.make n_nodes 0;
    reach_depth = Array.make n_nodes 0;
    n_reached = 0;
    seen_link = Array.make (max 1 n_links) false;
    touched_links = Array.make (max 1 n_links) 0;
    n_seen = 0;
    on_tree = Array.make (max 1 n_links) false;
    tree_traversed = Array.make (max 1 n_links) false;
    tree = [];
    q_node = Array.make (n_links + 1) 0;
    q_in = Array.make (n_links + 1) 0;
    q_depth = Array.make (n_links + 1) 0;
    q_head = 0;
    q_tail = 0;
    link_traversals = 0;
    false_positives = 0;
    membership_tests = 0;
    fill_drops = 0;
    loop_drops = 0;
    local_deliveries = 0;
    deliveries = 0;
    over_delivery = 0;
    stitch_matches = 0;
    lost = 0;
    last_packet = -1;
  }

let net a = a.net

let code_of_engine = function `Fast -> 1 | `Bitsliced -> 2 | `Auto -> 3

(* Pin every node's compiled engine up front: one batch of compiles per
   (engine, Net generation) instead of a lazy cache miss inside the hot
   loop — the compile-amortisation BENCH_PR6 asked for, and the reason
   [deliver] can stay allocation-free. *)
let warm a engine =
  let g = a.graph in
  for v = 0 to a.n_nodes - 1 do
    let ub =
      match engine with
      | `Bitsliced -> true
      | `Fast -> false
      | `Auto -> Graph.out_degree g v >= Bitsliced.auto_threshold
    in
    a.use_bits.(v) <- ub;
    if ub then begin
      a.bits.(v) <- Some (Net.bitsliced a.net v);
      a.fps.(v) <- None
    end
    else begin
      a.fps.(v) <- Some (Net.fastpath a.net v);
      a.bits.(v) <- None
    end
  done;
  a.warm_code <- code_of_engine engine;
  a.warm_generation <- Net.generation a.net

let prepare a engine =
  if
    a.warm_code <> code_of_engine engine
    || a.warm_generation <> Net.generation a.net
  then warm a engine

(* Swapping the intended tree clears the previous tree's bits; the
   common soak case (same physical tree object) is free.
   [tree_traversed] needs no sweep here: only traversed links are ever
   set, and [reset] clears exactly those. *)
(* Tupled-looking (uncurried) helpers: a trailing [function] would be
   a nested lambda in the typed tree, which alloccheck counts as a
   closure allocation under a noalloc root. *)
let rec clear_marks marks links =
  match links with
  | [] -> ()
  | l :: rest ->
    Array.set marks l.Graph.index false;
    clear_marks marks rest

let rec set_marks marks links =
  match links with
  | [] -> ()
  | l :: rest ->
    Array.set marks l.Graph.index true;
    set_marks marks rest

let[@lipsin.noalloc] set_tree a tree =
  if not (tree == a.tree) then begin
    clear_marks a.on_tree a.tree;
    set_marks a.on_tree tree;
    a.tree <- tree
  end

let[@lipsin.noalloc] reset a =
  let tn = a.touched_nodes in
  let r = a.reached in
  for i = 0 to a.n_reached - 1 do
    Array.set r (Array.get tn i) false
  done;
  a.n_reached <- 0;
  let tl = a.touched_links in
  let s = a.seen_link in
  let tt = a.tree_traversed in
  for i = 0 to a.n_seen - 1 do
    let li = Array.get tl i in
    Array.set s li false;
    Array.set tt li false
  done;
  a.n_seen <- 0;
  a.q_head <- 0;
  a.q_tail <- 0;
  a.link_traversals <- 0;
  a.false_positives <- 0;
  a.membership_tests <- 0;
  a.fill_drops <- 0;
  a.loop_drops <- 0;
  a.local_deliveries <- 0;
  a.deliveries <- 0;
  a.over_delivery <- 0;
  a.stitch_matches <- 0;
  a.lost <- 0;
  a.last_packet <- -1

(* One admitted copy on the link with dense index [li] towards [dst],
   decided at hop [depth] — the recycled mirror of Run.deliver's
   [propagate], false-positive accounting included (charged per match,
   dedup or not, exactly like the allocating path). *)
let[@lipsin.noalloc] propagate a li dst depth =
  if not (Array.get a.on_tree li) then
    a.false_positives <- a.false_positives + 1;
  if not (Array.get a.seen_link li) then begin
    Array.set a.seen_link li true;
    Array.set a.touched_links a.n_seen li;
    a.n_seen <- a.n_seen + 1;
    a.link_traversals <- a.link_traversals + 1;
    if Array.get a.on_tree li then Array.set a.tree_traversed li true
    else a.over_delivery <- a.over_delivery + 1;
    if not (Array.get a.reached dst) then begin
      Array.set a.reached dst true;
      Array.set a.touched_nodes a.n_reached dst;
      Array.set a.reach_depth a.n_reached (depth + 1);
      a.n_reached <- a.n_reached + 1;
      a.deliveries <- a.deliveries + 1
    end;
    let t = a.q_tail in
    Array.set a.q_node t dst;
    Array.set a.q_in t li;
    Array.set a.q_depth t (depth + 1);
    a.q_tail <- t + 1
  end

(* Expand-once BFS over the pinned compiled engines.  Stitch payloads
   are tallied but not collected (staged delivery goes through
   Stitched.deliver, which needs the full Run.deliver outcome). *)
let[@lipsin.noalloc] run_queue a ~table ~zfilter =
  while a.q_head < a.q_tail do
    let h = a.q_head in
    a.q_head <- h + 1;
    let node = Array.get a.q_node h in
    let in_link_index = Array.get a.q_in h in
    let depth = Array.get a.q_depth h in
    if Array.get a.use_bits node then begin
      match Array.get a.bits node with
      | None -> ()  (* unreachable after [warm]; dropping is the safe miss *)
      | Some bs ->
        let d = Bitsliced.decide bs ~table ~zfilter ~in_link_index in
        a.membership_tests <- a.membership_tests + d.Bitsliced.tests;
        if d.Bitsliced.deliver_local then
          a.local_deliveries <- a.local_deliveries + 1;
        if d.Bitsliced.drop = Bitsliced.drop_fill then
          a.fill_drops <- a.fill_drops + 1
        else if d.Bitsliced.drop = Bitsliced.drop_loop then
          a.loop_drops <- a.loop_drops + 1;
        a.stitch_matches <- a.stitch_matches + d.Bitsliced.n_stitch;
        let fwd = d.Bitsliced.forward in
        for i = 0 to d.Bitsliced.n_forward - 1 do
          let p = Array.get fwd i in
          propagate a (Bitsliced.out_index bs p) (Bitsliced.out_dst bs p)
            depth
        done
    end
    else begin
      match Array.get a.fps node with
      | None -> ()
      | Some fp ->
        let d = Fastpath.decide fp ~table ~zfilter ~in_link_index in
        a.membership_tests <- a.membership_tests + d.Fastpath.tests;
        if d.Fastpath.deliver_local then
          a.local_deliveries <- a.local_deliveries + 1;
        if d.Fastpath.drop = Fastpath.drop_fill then
          a.fill_drops <- a.fill_drops + 1
        else if d.Fastpath.drop = Fastpath.drop_loop then
          a.loop_drops <- a.loop_drops + 1;
        a.stitch_matches <- a.stitch_matches + d.Fastpath.n_stitch;
        let fwd = d.Fastpath.forward in
        for i = 0 to d.Fastpath.n_forward - 1 do
          let p = Array.get fwd i in
          propagate a (Fastpath.out_index fp p) (Fastpath.out_dst fp p)
            depth
        done
    end
  done

let[@lipsin.noalloc] deliver a ~src ~table ~zfilter =
  reset a;
  Array.set a.q_node 0 src;
  Array.set a.q_in 0 (-1);
  Array.set a.q_depth 0 0;
  a.q_tail <- 1;
  Array.set a.reached src true;
  Array.set a.touched_nodes 0 src;
  Array.set a.reach_depth 0 0;
  a.n_reached <- 1;
  run_queue a ~table ~zfilter

let rec under_count traversed acc links =
  match links with
  | [] -> acc
  | l :: rest ->
    under_count traversed
      (if Array.get traversed l.Graph.index then acc else acc + 1)
      rest

let[@lipsin.noalloc] under_delivery a = under_count a.tree_traversed 0 a.tree
let[@lipsin.noalloc] reached_node a v = Array.get a.reached v

let reached_copy a =
  let r = Array.make a.n_nodes false in
  for i = 0 to a.n_reached - 1 do
    r.(a.touched_nodes.(i)) <- true
  done;
  r
