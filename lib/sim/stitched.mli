(** Delivery of partitioned (stitched) zFilters.

    A {!Lipsin_core.Stagecut} plan encodes one delivery tree as a
    forest of stages, each with its own (possibly different-width)
    zFilter.  At runtime the stages of one partition chain through
    {e stitch entries}: the parent stage's filter carries a per-stage
    egress LIT, and the node where a child stage roots holds a stitch
    table entry mapping that LIT to [(partition id, next stage)].  This
    module owns the runtime side: one {!Net} per filter width (all
    views of the same {!Lipsin_core.Adaptive} family, so every width
    shares the per-link nonces), stitch-entry installation, and the
    staged delivery loop that follows the data plane's stitch hits
    from {!Run.outcome}. *)

type t

val make :
  ?fill_limit:float -> ?loop_prevention:bool -> Lipsin_core.Adaptive.t -> t
(** One lazily-populated {!Net} per width of the family. *)

val adaptive : t -> Lipsin_core.Adaptive.t

val net : t -> m:int -> Net.t
(** The width-[m] network view.
    @raise Invalid_argument for a width outside the family. *)

val install : t -> Lipsin_bloom.Partition.t -> unit
(** Installs every stage's stitch entries: for each handoff of stage
    [p] at node [u], the entry lives in the width-[p.m] net at [u],
    keyed by the LIT derived from [p]'s egress nonce.  Compiled-engine
    caches at touched nodes are invalidated. *)

val uninstall : t -> Lipsin_bloom.Partition.t -> unit
(** Removes the partition's stitch entries (matched by egress nonce). *)

type outcome = {
  delivered : int array;
      (** Per node: in how many stage runs the packet reached it. *)
  stages_run : int;
  stage_order : int list;  (** Stage indexes in activation order. *)
  duplicate_handoffs : int;
      (** Stitch hits naming an already-activated stage — each a
          would-be double delivery of a whole subtree, suppressed by
          the per-publication activation cache (the same trick as the
          paper's loop cache).  After {!Lipsin_core.Stagecut}'s
          conflict repair these can only arise through false-positive
          paths — the rho^k background Netcheck reports as
          [cross-stage-*] Warnings — so they are measured, not
          treated as an {!exactly_once} violation. *)
  missed_stages : int;  (** Stages whose handoff never fired. *)
  foreign_hits : int;  (** Stitch hits for other partition ids. *)
  subscribers_missed : int;
      (** Subscribers not reached by their owner stage's run. *)
  link_traversals : int;  (** Summed over stage runs. *)
  false_positives : int;
  membership_tests : int;
  fill_drops : int;
  loop_drops : int;
  packet_id : int;
      (** Publication id shared by every stage run's trace events, or
          [-1] when the publication was not sampled.  One id per
          stitched delivery: the reconstructed span forest crosses
          stage boundaries. *)
  trace_anomalies : string list;
      (** Human-readable anomalies from the runtime span cross-check —
          the dynamic twin of
          {!Lipsin_analysis.Netcheck.check_partition}.  Duplicate stage
          activations, suspected loops and (complete-trace) delivery
          mismatches additionally fire the
          {!Lipsin_obs.Obs.Flight} recorder.  Empty when not sampled
          or clean. *)
}

val deliver :
  ?mode:Run.mode -> ?engine:Run.engine -> t -> Lipsin_bloom.Partition.t -> outcome
(** Runs the staged delivery: stage 0 is published at the partition
    root, and every stitch hit reported by the data plane activates the
    named stage at its own root (once — duplicates are counted, not
    followed).  Stages must be installed first ({!install}); a
    partition that was never installed simply strands all non-root
    stages ([missed_stages]). *)

val exactly_once : outcome -> Lipsin_bloom.Partition.t -> (unit, string) result
(** The runtime exactly-once criterion: every stage ran exactly once
    (none missed, nothing foreign acted on) and every subscriber was
    reached by its owner stage.  [Error] carries the first violated
    clause.  Suppressed [duplicate_handoffs] and false-positive
    [extra_deliveries] are the statistical background the fill limit
    bounds — reported, not violations; the {e intent-level} absence of
    duplication is what an [Error]-free
    {!Lipsin_analysis.Netcheck.check_partition} proves. *)

val extra_deliveries : outcome -> Lipsin_bloom.Partition.t -> int
(** Σ over subscribers of (times reached - 1) — the false-positive
    over-delivery background the fill limit bounds; not part of the
    {!exactly_once} verdict. *)
