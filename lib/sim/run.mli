(** Packet delivery simulation and the paper's performance indicators.

    A delivery starts at the source node and fans out hop by hop: each
    visited node runs its forwarding decision and the packet is copied
    onto every matching link.  Two propagation modes:

    - {b expand-once} (default): each directed link carries the packet
      at most once — the steady state of a multicast delivery, matching
      how the paper counts "links during delivery" (Eq. 3);
    - {b ttl}: links may be re-traversed and each traversal counts;
      propagation is bounded by the packet TTL.  This mode exercises
      loop formation and the loop-prevention machinery.

    False positives are counted per Eq. (2): every membership test a
    visited node performs is a "tested element"; a match on a link
    outside the intended tree is a false positive. *)

type mode = Expand_once | Ttl of int

type engine = [ `Reference | `Fast | `Bitsliced | `Auto ]
(** Which decision engine each visited node runs: the reference
    {!Lipsin_forwarding.Node_engine} (default), the compiled row-major
    {!Lipsin_forwarding.Fastpath} (cached per node by {!Net.fastpath}),
    or the transposed {!Lipsin_forwarding.Bitsliced} (cached by
    {!Net.bitsliced}).  [`Auto] picks per node: bit-sliced from
    {!Lipsin_forwarding.Bitsliced.auto_threshold} out-links up, the
    scalar fast path below.  All engines agree decision-for-decision —
    the differential test suite enforces it — so experiments can switch
    freely. *)

type loss = {
  probability : float;  (** Per-traversal drop probability, \[0, 1). *)
  rng : Lipsin_util.Rng.t;
}

type outcome = {
  reached : bool array;  (** [reached.(v)] — the packet visited node v. *)
  traversed : Lipsin_topology.Graph.link list;
      (** Links that carried the packet, in traversal order; in TTL
          mode a link may appear multiple times. *)
  link_traversals : int;  (** Total traversals = bandwidth cost. *)
  false_positives : int;
  membership_tests : int;
  fill_drops : int;   (** Packets discarded by the fill-factor limit. *)
  loop_drops : int;   (** Packets discarded by loop detection. *)
  local_deliveries : int;  (** Slow-path (control processor) hits. *)
  lost : int;  (** Traversals dropped by the loss model. *)
  stitch_hits : (Lipsin_topology.Graph.node * int * int) list;
      (** Stitch entries the packet matched, in traversal order:
          [(node, partition id, next stage)] — the handoff points of a
          partitioned-zFilter delivery ({!Stitched} consumes these). *)
  packet_id : int;
      (** Publication id under which this delivery's per-hop events were
          recorded in {!Lipsin_obs.Obs.Trace}, or [-1] when tracing was
          off.  [Obs.Trace.packet_events packet_id] replays the hops. *)
}

val deliver :
  ?mode:mode ->
  ?loss:loss ->
  ?engine:engine ->
  ?trace:Lipsin_obs.Obs.Trace.ctx ->
  ?stage:int ->
  Net.t ->
  src:Lipsin_topology.Graph.node ->
  table:int ->
  zfilter:Lipsin_bloom.Zfilter.t ->
  tree:Lipsin_topology.Graph.link list ->
  outcome
(** Simulates one publication.  [tree] is the *intended* delivery tree,
    used only for false-positive classification (pass [] to classify
    every match as false, e.g. for attack traffic).  With [loss], each
    link traversal is dropped independently with the given probability
    (seeded — repeatable); a lost copy still counts as a traversal
    (the bandwidth was spent) but does not propagate.

    [trace] carries the caller's per-publication trace context — a
    stitched delivery threads one context through all its stage runs so
    they share a publication id; without it the delivery takes its own
    1-in-N sampling decision ({!Lipsin_obs.Obs.Trace.start}).  [stage]
    tags every recorded event with the partition stage (default [-1] =
    unstaged). *)

val deliver_into :
  ?mode:mode ->
  ?loss:loss ->
  ?engine:engine ->
  ?trace:Lipsin_obs.Obs.Trace.ctx ->
  Arena.t ->
  src:Lipsin_topology.Graph.node ->
  table:int ->
  zfilter:Lipsin_bloom.Zfilter.t ->
  tree:Lipsin_topology.Graph.link list ->
  unit
(** {!deliver} into recycled scratch: the steady-state path of the
    forwarding service.  Writes the delivery set and all outcome tallies
    into [scratch] instead of allocating an {!outcome}.

    Expand-once publications on the compiled engines ([`Fast],
    [`Bitsliced], [`Auto]) with no loss and no sampled trace context run
    the arena's certified zero-allocation loop ({!Arena.deliver}) —
    ~0 minor words per op versus ~6.8k for {!deliver} (BENCH_PR4 vs
    BENCH_PR10).  Anything else (reference engine, TTL mode, loss,
    [trace] with [tc_sampled]) transparently falls back to {!deliver}
    and absorbs the outcome into [scratch], so callers read one shape
    either way.  Counter totals and the delivery set are bit-for-bit
    identical to {!deliver} on the same inputs — the differential suite
    in [test/test_service.ml] pins this. *)

val verify_trace : Net.t -> outcome -> Lipsin_obs.Obs.Span.verdict option
(** The runtime trace cross-check: reconstructs the publication's span
    tree from the rings and compares its replayed delivery set against
    [outcome.reached].  [None] when the publication was not sampled.
    Call before the next {!Lipsin_obs.Obs.reset} / ring wrap. *)

val forwarding_efficiency : outcome -> tree:Lipsin_topology.Graph.link list -> float
(** Eq. (3): tree links / links during delivery, in \[0, 1\]; 1.0 when
    nothing was delivered (no bandwidth wasted). *)

val false_positive_rate : outcome -> float
(** Eq. (2): observed false positives / tested elements; 0 when no
    tests ran. *)

val all_reached : outcome -> Lipsin_topology.Graph.node list -> bool
(** Did every listed subscriber receive the packet? *)
