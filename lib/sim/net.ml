module Graph = Lipsin_topology.Graph
module Assignment = Lipsin_core.Assignment
module Node_engine = Lipsin_forwarding.Node_engine
module Fastpath = Lipsin_forwarding.Fastpath
module Bitsliced = Lipsin_forwarding.Bitsliced
module Obs = Lipsin_obs.Obs

(* Telemetry: engine/compile churn.  All rare control-plane events. *)
let m_engine_creates =
  Obs.Counter.make ~help:"Reference node engines instantiated lazily"
    "lipsin_engine_creates_total"

let m_fastpath_compiles =
  Obs.Counter.make ~help:"Fast-path table compilations"
    "lipsin_fastpath_compiles_total"

let m_bitsliced_compiles =
  Obs.Counter.make ~help:"Bit-sliced table compilations"
    "lipsin_bitsliced_compiles_total"

let m_invalidations =
  Obs.Counter.make ~help:"Fast-path compilations invalidated by link events"
    "lipsin_fastpath_invalidations_total"

let m_ticks =
  Obs.Counter.make ~help:"Loop-cache clock ticks across all nets"
    "lipsin_net_ticks_total"

type t = {
  assignment : Assignment.t;
  fill_limit : float option;
  loop_prevention : bool;
  engines : Node_engine.t option array;
  fastpaths : Fastpath.t option array;
  bitsliceds : Bitsliced.t option array;
  mutable generation : int;
      (* bumped whenever a cached compilation is dropped, so holders of
         compiled-engine snapshots (Arena) can detect staleness cheaply *)
}

let make ?fill_limit ?(loop_prevention = true) assignment =
  let n = Graph.node_count (Assignment.graph assignment) in
  {
    assignment;
    fill_limit;
    loop_prevention;
    engines = Array.make n None;
    fastpaths = Array.make n None;
    bitsliceds = Array.make n None;
    generation = 0;
  }

let assignment t = t.assignment
let graph t = Assignment.graph t.assignment
let generation t = t.generation
let loop_prevention t = t.loop_prevention

let engine t node =
  match t.engines.(node) with
  | Some e -> e
  | None ->
    let e =
      match t.fill_limit with
      | Some fill_limit ->
        Node_engine.create ~fill_limit ~loop_prevention:t.loop_prevention
          t.assignment node
      | None ->
        Node_engine.create ~loop_prevention:t.loop_prevention t.assignment node
    in
    t.engines.(node) <- Some e;
    Obs.Counter.incr m_engine_creates;
    e

let engine_of = engine

(* Debug guardrail: with LIPSIN_FASTPATH_AUDIT set, every compile is
   re-verified against the blob-layout invariants before it can serve a
   decision.  Read per compile (compiles are rare) so no global state is
   introduced — this module is reachable from the Domain-parallel
   delivery path. *)
let audit_enabled () = Sys.getenv_opt "LIPSIN_FASTPATH_AUDIT" <> None

let fastpath t node =
  match t.fastpaths.(node) with
  | Some f -> f
  | None ->
    let f = Fastpath.compile (engine t node) in
    if audit_enabled () then begin
      match Lipsin_analysis.Audit.audit f with
      | [] -> ()
      | violations ->
        invalid_arg
          (Printf.sprintf "Net.fastpath: audit of node %d's compile failed: %s" node
             (String.concat "; "
                (List.map Lipsin_analysis.Audit.to_string violations)))
    end;
    t.fastpaths.(node) <- Some f;
    Obs.Counter.incr m_fastpath_compiles;
    f

let bitsliced t node =
  match t.bitsliceds.(node) with
  | Some b -> b
  | None ->
    let b = Bitsliced.compile (engine t node) in
    if audit_enabled () then begin
      match Lipsin_analysis.Audit.audit_bitsliced b with
      | [] -> ()
      | violations ->
        invalid_arg
          (Printf.sprintf "Net.bitsliced: audit of node %d's compile failed: %s"
             node
             (String.concat "; "
                (List.map Lipsin_analysis.Audit.to_string violations)))
    end;
    t.bitsliceds.(node) <- Some b;
    Obs.Counter.incr m_bitsliced_compiles;
    b

let invalidate_fastpath t node =
  if t.fastpaths.(node) <> None || t.bitsliceds.(node) <> None then
    Obs.Counter.incr m_invalidations;
  t.fastpaths.(node) <- None;
  t.bitsliceds.(node) <- None;
  t.generation <- t.generation + 1

let tick t =
  Obs.Counter.incr m_ticks;
  Array.iter
    (function Some e -> Node_engine.tick e | None -> ())
    t.engines;
  Array.iter
    (function Some f -> Fastpath.tick f | None -> ())
    t.fastpaths;
  Array.iter
    (function Some b -> Bitsliced.tick b | None -> ())
    t.bitsliceds

let fail_link t link =
  Node_engine.fail_link (engine t link.Graph.src) link;
  invalidate_fastpath t link.Graph.src

let restore_link t link =
  Node_engine.restore_link (engine t link.Graph.src) link;
  invalidate_fastpath t link.Graph.src

let verify ?(samples = 0) ?(seed = 0x11) t =
  let model =
    Lipsin_analysis.Netcheck.model_of_engines t.assignment
      ~engine_of:(engine t)
  in
  let rng = Lipsin_util.Rng.of_int seed in
  Lipsin_analysis.Netcheck.check_deployment ~samples ~rng model

(* Debug guardrail mirroring the fastpath audit gate: with
   LIPSIN_NETCHECK set, every Net is statically verified at build time
   and refused if the deployment admits an Error-severity finding
   (uncatchable loop, LIT collision, unsound recovery).  Read per make
   (makes are rare) so no global state is introduced. *)
let netcheck_enabled () =
  match Sys.getenv_opt "LIPSIN_NETCHECK" with
  | None | Some "" -> false
  | Some _ -> true

let make ?fill_limit ?loop_prevention assignment =
  let t = make ?fill_limit ?loop_prevention assignment in
  if netcheck_enabled () then begin
    match Lipsin_analysis.Netcheck.errors (verify t) with
    | [] -> ()
    | errs ->
      invalid_arg
        (Printf.sprintf "Net.make: deployment verification failed: %s"
           (String.concat "; "
              (List.map Lipsin_analysis.Netcheck.to_string errs)))
  end;
  t
