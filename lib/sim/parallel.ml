(* lint: allow domain-safety — the pooled Service cache below is
   dispatcher-side state: deliver_all is documented as a single-thread
   entry point and the cache is only read/written between batches, never
   from worker domains. *)
module Graph = Lipsin_topology.Graph
module Assignment = Lipsin_core.Assignment
module Obs = Lipsin_obs.Obs

(* Telemetry: one batch = one deliver_all call.  Per-publication and
   per-decision metrics come from Run/the engines; worker domains feed
   their own per-domain cells, aggregated on read. *)
let m_batches =
  Obs.Counter.make ~help:"Parallel delivery batches executed"
    "lipsin_parallel_batches_total"

let m_jobs =
  Obs.Counter.make ~help:"Publications delivered through Parallel.deliver_all"
    "lipsin_parallel_jobs_total"

let g_domains =
  Obs.Gauge.make ~help:"Domains used by the most recent parallel batch"
    "lipsin_parallel_domains"

let h_shard =
  Obs.Histogram.make ~help:"Jobs per shard in parallel batches"
    "lipsin_parallel_shard_jobs"

type job = Service.job = {
  job_src : Graph.node;
  job_table : int;
  job_zfilter : Lipsin_bloom.Zfilter.t;
  job_tree : Graph.link list;
}

type summary = {
  jobs : int;
  domains_used : int;
  link_traversals : int;
  false_positives : int;
  membership_tests : int;
  fill_drops : int;
  loop_drops : int;
  local_deliveries : int;
  nodes_reached : int;
  sampled_publications : int;
}

let empty_summary =
  {
    jobs = 0;
    domains_used = 0;
    link_traversals = 0;
    false_positives = 0;
    membership_tests = 0;
    fill_drops = 0;
    loop_drops = 0;
    local_deliveries = 0;
    nodes_reached = 0;
    sampled_publications = 0;
  }

let merge a b =
  {
    jobs = a.jobs + b.jobs;
    domains_used = a.domains_used;
    link_traversals = a.link_traversals + b.link_traversals;
    false_positives = a.false_positives + b.false_positives;
    membership_tests = a.membership_tests + b.membership_tests;
    fill_drops = a.fill_drops + b.fill_drops;
    loop_drops = a.loop_drops + b.loop_drops;
    local_deliveries = a.local_deliveries + b.local_deliveries;
    nodes_reached = a.nodes_reached + b.nodes_reached;
    sampled_publications = a.sampled_publications + b.sampled_publications;
  }

(* Each shard gets a private Net (engines and fast-path compilations are
   mutable), so the only cross-domain sharing is the read-only
   assignment, graph and zFilters. *)
let run_shard ~engine ~loop_prevention assignment jobs lo hi =
  if Obs.enabled () then begin
    Obs.Counter.add m_jobs (max 0 (hi - lo));
    Obs.Histogram.observe_int h_shard (max 0 (hi - lo))
  end;
  let net = Net.make ~loop_prevention assignment in
  let acc = ref empty_summary in
  for i = lo to hi - 1 do
    let j = jobs.(i) in
    let o =
      Run.deliver ~engine net ~src:j.job_src ~table:j.job_table
        ~zfilter:j.job_zfilter ~tree:j.job_tree
    in
    let reached = ref 0 in
    Array.iter (fun r -> if r then incr reached) o.Run.reached;
    acc :=
      {
        !acc with
        jobs = !acc.jobs + 1;
        link_traversals = !acc.link_traversals + o.Run.link_traversals;
        false_positives = !acc.false_positives + o.Run.false_positives;
        membership_tests = !acc.membership_tests + o.Run.membership_tests;
        fill_drops = !acc.fill_drops + o.Run.fill_drops;
        loop_drops = !acc.loop_drops + o.Run.loop_drops;
        local_deliveries = !acc.local_deliveries + o.Run.local_deliveries;
        nodes_reached = !acc.nodes_reached + !reached;
        sampled_publications =
          (!acc.sampled_publications
          + if o.Run.packet_id >= 0 then 1 else 0);
      }
  done;
  !acc

(* The graph memoises out-link order and the dense link array on first
   read; force both before spawning so domains only ever read. *)
let warm_graph g =
  for v = 0 to Graph.node_count g - 1 do
    ignore (Graph.out_links g v)
  done;
  if Graph.link_count g > 0 then ignore (Graph.link g 0)

(* ---- pooled dispatch -------------------------------------------------

   deliver_all used to spawn fresh domains (and fresh Nets, compiles and
   scratch) on every call.  It now routes batches through one cached
   persistent {!Service} pool keyed by (assignment, worker count,
   engine, loop_prevention); the pool is torn down and respawned only
   when the key changes, and joined at exit.  Set [LIPSIN_PARALLEL_SPAWN=1]
   to force the historical spawn-per-batch path (comparison runs). *)

let spawn_mode () =
  match Sys.getenv_opt "LIPSIN_PARALLEL_SPAWN" with
  | None | Some "" -> false
  | Some _ -> true

let engine_equal (a : Run.engine) (b : Run.engine) =
  match (a, b) with
  | `Reference, `Reference | `Fast, `Fast | `Bitsliced, `Bitsliced
  | `Auto, `Auto ->
    true
  | (`Reference | `Fast | `Bitsliced | `Auto), _ -> false

type pool_key = {
  pk_assignment : Assignment.t;
  pk_workers : int;
  pk_engine : Run.engine;
  pk_loop : bool;
}

let pool : (pool_key * Service.t) option ref = ref None
let pool_exit_hooked = ref false

let pooled_service assignment ~workers ~engine ~loop_prevention =
  let want =
    {
      pk_assignment = assignment;
      pk_workers = workers;
      pk_engine = engine;
      pk_loop = loop_prevention;
    }
  in
  match !pool with
  | Some (k, s)
    when k.pk_assignment == want.pk_assignment
         && k.pk_workers = want.pk_workers
         && engine_equal k.pk_engine want.pk_engine
         && Bool.equal k.pk_loop want.pk_loop ->
    s
  | prev ->
    (match prev with Some (_, s) -> Service.shutdown s | None -> ());
    let s = Service.create ~workers ~engine ~loop_prevention assignment in
    pool := Some (want, s);
    if not !pool_exit_hooked then begin
      pool_exit_hooked := true;
      at_exit (fun () ->
          match !pool with
          | Some (_, s) ->
            pool := None;
            Service.shutdown s
          | None -> ())
    end;
    s

let summary_of_stats (st : Service.stats) ~domains_used =
  {
    jobs = st.Service.st_jobs;
    domains_used;
    link_traversals = st.Service.st_link_traversals;
    false_positives = st.Service.st_false_positives;
    membership_tests = st.Service.st_membership_tests;
    fill_drops = st.Service.st_fill_drops;
    loop_drops = st.Service.st_loop_drops;
    local_deliveries = st.Service.st_local_deliveries;
    nodes_reached = st.Service.st_nodes_reached;
    sampled_publications = st.Service.st_sampled;
  }

let deliver_all ?domains ?(engine = `Fast) ?(loop_prevention = false) assignment
    jobs =
  let n = Array.length jobs in
  let requested =
    match domains with
    | Some k ->
      if k < 1 then invalid_arg "Parallel.deliver_all: domains must be >= 1";
      k
    | None -> Domain.recommended_domain_count ()
  in
  let dcount = max 1 (min requested (max 1 n)) in
  if Obs.enabled () then begin
    Obs.Counter.incr m_batches;
    Obs.Gauge.set g_domains dcount
  end;
  warm_graph (Assignment.graph assignment);
  if dcount = 1 then
    { (run_shard ~engine ~loop_prevention assignment jobs 0 n) with
      domains_used = 1 }
  else if spawn_mode () then begin
    let chunk = (n + dcount - 1) / dcount in
    let bounds =
      Array.init dcount (fun i -> (i * chunk, min n ((i + 1) * chunk)))
    in
    let workers =
      Array.map
        (fun (lo, hi) ->
          Domain.spawn (fun () ->
              run_shard ~engine ~loop_prevention assignment jobs lo hi))
        (Array.sub bounds 1 (dcount - 1))
    in
    let lo0, hi0 = bounds.(0) in
    let first = run_shard ~engine ~loop_prevention assignment jobs lo0 hi0 in
    let total =
      Array.fold_left (fun acc w -> merge acc (Domain.join w)) first workers
    in
    { total with domains_used = dcount }
  end
  else begin
    if Obs.enabled () then Obs.Counter.add m_jobs n;
    let s =
      pooled_service assignment ~workers:requested ~engine ~loop_prevention
    in
    let st = Service.run s jobs in
    summary_of_stats st ~domains_used:dcount
  end
