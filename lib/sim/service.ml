module Graph = Lipsin_topology.Graph
module Assignment = Lipsin_core.Assignment
module Adaptive = Lipsin_core.Adaptive
module Partition = Lipsin_bloom.Partition
module Obs = Lipsin_obs.Obs

(* Telemetry: pool lifecycle + per-shard queue pressure.  Worker spawns
   are counted so tests can prove batches reuse the pool (delta 0). *)
let m_batches =
  Obs.Counter.make ~help:"Batches dispatched to the forwarding service"
    "lipsin_service_batches_total"

let m_spawned =
  Obs.Counter.make ~help:"Worker domains spawned by forwarding services"
    "lipsin_service_workers_spawned_total"

let v_shard_jobs =
  Obs.Counter.vec ~help:"Jobs enqueued per shard" ~label:"shard"
    "lipsin_service_shard_jobs_total"

let v_steals =
  Obs.Counter.vec ~help:"Jobs stolen from a shard's queue by other workers"
    ~label:"shard" "lipsin_service_steals_total"

let g_queue =
  Obs.Gauge.vec ~help:"Shard queue depth at the last batch dispatch"
    ~label:"shard" "lipsin_service_queue_depth"

let h_job =
  Obs.Histogram.make
    ~help:"Wall time of service publications (1-in-64 sampled), seconds"
    "lipsin_service_job_seconds"

type job = {
  job_src : Graph.node;
  job_table : int;
  job_zfilter : Lipsin_bloom.Zfilter.t;
  job_tree : Graph.link list;
}

type stats = {
  st_jobs : int;
  st_workers : int;
  st_steals : int;
  st_link_traversals : int;
  st_false_positives : int;
  st_membership_tests : int;
  st_fill_drops : int;
  st_loop_drops : int;
  st_local_deliveries : int;
  st_nodes_reached : int;
  st_sampled : int;
  st_minor_words : float;
  st_elapsed_s : float;
}

(* Per-worker context.  Created {e inside} the worker's domain — the
   Net, arena and stitched family are domain-local by construction; the
   tally fields are written only by the owning worker during a batch and
   read by the dispatcher only after the completion handshake on [mu]
   (mutex release/acquire orders the plain fields). *)
type wctx = {
  w_id : int;
  w_net : Net.t;
  w_arena : Arena.t;
  mutable w_stitched : Stitched.t option;
  mutable w_tick : int;  (* 1-in-64 latency sampling phase *)
  mutable w_jobs : int;
  mutable w_steals : int;
  mutable w_sampled : int;
  mutable w_traversals : int;
  mutable w_fps : int;
  mutable w_tests : int;
  mutable w_fill : int;
  mutable w_loop : int;
  mutable w_local : int;
  mutable w_reached : int;
  mutable w_minor : float;  (* minor words this worker allocated in the batch *)
}

type exec =
  | Exec_none
  | Exec_count of job array
  | Exec_collect of job array * (int -> Run.outcome -> unit)
  | Exec_partition of Partition.t array * (int -> Stitched.outcome -> unit)

type t = {
  assignment : Assignment.t;
  adaptive : Adaptive.t option;
  engine : Run.engine;
  loop_prevention : bool;
  n_workers : int;
  mu : Mutex.t;
  cv_work : Condition.t;  (* dispatcher -> workers: new batch / stop *)
  cv_done : Condition.t;  (* workers -> dispatcher: registered / batch done *)
  mutable seq : int;  (* batch sequence number; workers wait on change *)
  mutable stop : bool;
  mutable exec : exec;  (* the current batch; written under [mu] *)
  cursors : int Atomic.t array;  (* per-shard claim cursor (next job) *)
  his : int array;  (* per-shard exclusive upper bound; set under [mu] *)
  mutable active : int;  (* workers still in the current batch *)
  mutable registered : int;
  slots : wctx option array;  (* worker contexts, published under [mu] *)
  mutable domains : unit Domain.t array;
}

let workers t = t.n_workers
let engine t = t.engine
let assignment t = t.assignment

(* The graph memoises out-link order and the dense link array on first
   read; force both before spawning so domains only ever read. *)
let warm_graph g =
  for v = 0 to Graph.node_count g - 1 do
    ignore (Graph.out_links g v)
  done;
  if Graph.link_count g > 0 then ignore (Graph.link g 0)

let stitched_of t w =
  match w.w_stitched with
  | Some s -> s
  | None ->
    let ad =
      match t.adaptive with
      | Some a -> a
      | None ->
        (* run_partitioned validates on the dispatcher before broadcast *)
        invalid_arg "Service: no adaptive family"
    in
    let s = Stitched.make ~loop_prevention:t.loop_prevention ad in
    w.w_stitched <- Some s;
    s

let accum_outcome w (o : Run.outcome) =
  w.w_traversals <- w.w_traversals + o.Run.link_traversals;
  w.w_fps <- w.w_fps + o.Run.false_positives;
  w.w_tests <- w.w_tests + o.Run.membership_tests;
  w.w_fill <- w.w_fill + o.Run.fill_drops;
  w.w_loop <- w.w_loop + o.Run.loop_drops;
  w.w_local <- w.w_local + o.Run.local_deliveries;
  let reached = ref 0 in
  Array.iter (fun r -> if r then incr reached) o.Run.reached;
  w.w_reached <- w.w_reached + !reached;
  if o.Run.packet_id >= 0 then w.w_sampled <- w.w_sampled + 1

let accum_arena w =
  let a = w.w_arena in
  w.w_traversals <- w.w_traversals + a.Arena.link_traversals;
  w.w_fps <- w.w_fps + a.Arena.false_positives;
  w.w_tests <- w.w_tests + a.Arena.membership_tests;
  w.w_fill <- w.w_fill + a.Arena.fill_drops;
  w.w_loop <- w.w_loop + a.Arena.loop_drops;
  w.w_local <- w.w_local + a.Arena.local_deliveries;
  w.w_reached <- w.w_reached + a.Arena.n_reached

(* One claimed job.  The counter path mirrors what Parallel's per-job
   Run.deliver did: one 1-in-N trace-sampling draw per publication;
   sampled publications run the full allocating path (per-hop trace
   events), everything else runs the arena's zero-alloc loop, with a
   1-in-64 wall-time sample feeding the service latency histogram. *)
let exec_one t w i =
  match t.exec with
  | Exec_none -> ()
  | Exec_count jobs ->
    let j = Array.get jobs i in
    (match t.engine with
    | `Reference ->
      let ctx = Obs.Trace.start () in
      let o =
        Run.deliver ~engine:`Reference ~trace:ctx w.w_net ~src:j.job_src
          ~table:j.job_table ~zfilter:j.job_zfilter ~tree:j.job_tree
      in
      accum_outcome w o
    | (`Fast | `Bitsliced | `Auto) as e ->
      let ctx = Obs.Trace.start () in
      if ctx.Obs.Trace.tc_sampled then begin
        let o =
          Run.deliver ~engine:(e :> Run.engine) ~trace:ctx w.w_net
            ~src:j.job_src ~table:j.job_table ~zfilter:j.job_zfilter
            ~tree:j.job_tree
        in
        accum_outcome w o
      end
      else begin
        let tick = w.w_tick in
        w.w_tick <- tick + 1;
        let timed = tick land 63 = 0 && Obs.enabled () in
        let t0 = if timed then Unix.gettimeofday () else 0.0 in
        Run.deliver_into ~engine:(e :> Run.engine) w.w_arena ~src:j.job_src
          ~table:j.job_table ~zfilter:j.job_zfilter ~tree:j.job_tree;
        if timed then
          Obs.Histogram.observe h_job (Unix.gettimeofday () -. t0);
        accum_arena w
      end)
  | Exec_collect (jobs, f) ->
    let j = Array.get jobs i in
    let o =
      Run.deliver ~engine:t.engine w.w_net ~src:j.job_src ~table:j.job_table
        ~zfilter:j.job_zfilter ~tree:j.job_tree
    in
    accum_outcome w o;
    f i o
  | Exec_partition (parts, f) ->
    let s = stitched_of t w in
    let p = Array.get parts i in
    Stitched.install s p;
    let o = Stitched.deliver ~engine:t.engine s p in
    Stitched.uninstall s p;
    w.w_traversals <- w.w_traversals + o.Stitched.link_traversals;
    w.w_fps <- w.w_fps + o.Stitched.false_positives;
    w.w_tests <- w.w_tests + o.Stitched.membership_tests;
    w.w_fill <- w.w_fill + o.Stitched.fill_drops;
    w.w_loop <- w.w_loop + o.Stitched.loop_drops;
    let reached = ref 0 in
    Array.iter (fun n -> if n > 0 then incr reached) o.Stitched.delivered;
    w.w_reached <- w.w_reached + !reached;
    if o.Stitched.packet_id >= 0 then w.w_sampled <- w.w_sampled + 1;
    f i o

(* Claim-and-run every job of [shard] until its cursor passes the upper
   bound.  Claiming is one fetch_and_add — the lightweight end of the
   Chase–Lev protocol (both owner and thieves take from the head; the
   bounds are batch-static so no bottom/top races exist).  A worker
   drains its own shard first, then sweeps the other shards in ring
   order, so skewed fan-outs (one shard's trees 10x the others') spread
   across the pool instead of serialising on one domain. *)
let rec drain_shard t w shard ~stolen =
  let i = Atomic.fetch_and_add t.cursors.(shard) 1 in
  if i < t.his.(shard) then begin
    if stolen then begin
      w.w_steals <- w.w_steals + 1;
      Obs.Counter.incr (Obs.Counter.cell v_steals shard)
    end;
    exec_one t w i;
    w.w_jobs <- w.w_jobs + 1;
    drain_shard t w shard ~stolen
  end

let work_batch t w =
  drain_shard t w w.w_id ~stolen:false;
  for k = 1 to t.n_workers - 1 do
    drain_shard t w ((w.w_id + k) mod t.n_workers) ~stolen:true
  done

let reset_wctx w =
  w.w_jobs <- 0;
  w.w_steals <- 0;
  w.w_sampled <- 0;
  w.w_traversals <- 0;
  w.w_fps <- 0;
  w.w_tests <- 0;
  w.w_fill <- 0;
  w.w_loop <- 0;
  w.w_local <- 0;
  w.w_reached <- 0;
  w.w_minor <- 0.0

let worker_main t id =
  (* Build the domain-local working set before registering so the first
     batch runs warm: a private Net, its arena with every node's engine
     compiled in one batch (the per-node compile amortisation from
     BENCH_PR6), and lazily a stitched family for partitioned batches. *)
  let net = Net.make ~loop_prevention:t.loop_prevention t.assignment in
  let arena = Arena.create net in
  (match t.engine with
  | `Reference -> ()
  | (`Fast | `Bitsliced | `Auto) as e -> Arena.warm arena e);
  let w =
    {
      w_id = id;
      w_net = net;
      w_arena = arena;
      w_stitched = None;
      w_tick = 0;
      w_jobs = 0;
      w_steals = 0;
      w_sampled = 0;
      w_traversals = 0;
      w_fps = 0;
      w_tests = 0;
      w_fill = 0;
      w_loop = 0;
      w_local = 0;
      w_reached = 0;
      w_minor = 0.0;
    }
  in
  Mutex.protect t.mu (fun () ->
      t.slots.(id) <- Some w;
      t.registered <- t.registered + 1;
      Condition.broadcast t.cv_done);
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.mu;
    while (not t.stop) && t.seq = !seen do
      Condition.wait t.cv_work t.mu
    done;
    let stop = t.stop in
    seen := t.seq;
    Mutex.unlock t.mu;
    if stop then running := false
    else begin
      reset_wctx w;
      let m0 = Gc.minor_words () in
      work_batch t w;
      w.w_minor <- Gc.minor_words () -. m0;
      Mutex.protect t.mu (fun () ->
          t.active <- t.active - 1;
          if t.active = 0 then Condition.broadcast t.cv_done)
    end
  done

let create ?workers ?(engine = `Fast) ?(loop_prevention = false) ?adaptive
    assignment =
  let n_workers =
    match workers with
    | Some k ->
      if k < 1 then invalid_arg "Service.create: workers must be >= 1";
      k
    | None -> max 1 (Domain.recommended_domain_count ())
  in
  warm_graph (Assignment.graph assignment);
  let t =
    {
      assignment;
      adaptive;
      engine;
      loop_prevention;
      n_workers;
      mu = Mutex.create ();
      cv_work = Condition.create ();
      cv_done = Condition.create ();
      seq = 0;
      stop = false;
      exec = Exec_none;
      cursors = Array.init n_workers (fun _ -> Atomic.make 0);
      his = Array.make n_workers 0;
      active = 0;
      registered = 0;
      slots = Array.make n_workers None;
      domains = [||];
    }
  in
  t.domains <-
    Array.init n_workers (fun id ->
        Obs.Counter.incr m_spawned;
        Domain.spawn (fun () -> worker_main t id));
  (* Wait for every worker to publish its warmed context, so [run]
     observes a fully-formed pool and stats aggregation can rely on
     every slot being occupied. *)
  Mutex.protect t.mu (fun () ->
      while t.registered < t.n_workers do
        Condition.wait t.cv_done t.mu
      done);
  t

let zero_stats ~workers ~elapsed =
  {
    st_jobs = 0;
    st_workers = workers;
    st_steals = 0;
    st_link_traversals = 0;
    st_false_positives = 0;
    st_membership_tests = 0;
    st_fill_drops = 0;
    st_loop_drops = 0;
    st_local_deliveries = 0;
    st_nodes_reached = 0;
    st_sampled = 0;
    st_minor_words = 0.0;
    st_elapsed_s = elapsed;
  }

let dispatch t ~n exec_v =
  Obs.Counter.incr m_batches;
  let t0 = Unix.gettimeofday () in
  Mutex.lock t.mu;
  if t.stop then begin
    Mutex.unlock t.mu;
    invalid_arg "Service: the pool is shut down"
  end;
  let chunk = (n + t.n_workers - 1) / t.n_workers in
  let obs = Obs.enabled () in
  for i = 0 to t.n_workers - 1 do
    let lo = min n (i * chunk) in
    let hi = min n ((i + 1) * chunk) in
    Atomic.set t.cursors.(i) lo;
    t.his.(i) <- hi;
    if obs then begin
      Obs.Counter.add (Obs.Counter.cell v_shard_jobs i) (hi - lo);
      Obs.Gauge.set (Obs.Gauge.cell g_queue i) (hi - lo)
    end
  done;
  t.exec <- exec_v;
  t.active <- t.n_workers;
  t.seq <- t.seq + 1;
  Condition.broadcast t.cv_work;
  while t.active > 0 do
    Condition.wait t.cv_done t.mu
  done;
  t.exec <- Exec_none;
  Mutex.unlock t.mu;
  let elapsed = Unix.gettimeofday () -. t0 in
  let st = ref (zero_stats ~workers:t.n_workers ~elapsed) in
  Array.iter
    (function
      | None -> ()
      | Some w ->
        st :=
          {
            !st with
            st_jobs = !st.st_jobs + w.w_jobs;
            st_steals = !st.st_steals + w.w_steals;
            st_link_traversals = !st.st_link_traversals + w.w_traversals;
            st_false_positives = !st.st_false_positives + w.w_fps;
            st_membership_tests = !st.st_membership_tests + w.w_tests;
            st_fill_drops = !st.st_fill_drops + w.w_fill;
            st_loop_drops = !st.st_loop_drops + w.w_loop;
            st_local_deliveries = !st.st_local_deliveries + w.w_local;
            st_nodes_reached = !st.st_nodes_reached + w.w_reached;
            st_sampled = !st.st_sampled + w.w_sampled;
            st_minor_words = !st.st_minor_words +. w.w_minor;
          })
    t.slots;
  !st

let run t jobs = dispatch t ~n:(Array.length jobs) (Exec_count jobs)

let run_collect t jobs ~f =
  dispatch t ~n:(Array.length jobs) (Exec_collect (jobs, f))

let run_partitioned t parts ~f =
  (match t.adaptive with
  | None ->
    invalid_arg "Service.run_partitioned: create the service with ~adaptive"
  | Some _ -> ());
  dispatch t ~n:(Array.length parts) (Exec_partition (parts, f))

let shutdown t =
  let joined =
    Mutex.protect t.mu (fun () ->
        if t.stop then false
        else begin
          t.stop <- true;
          Condition.broadcast t.cv_work;
          true
        end)
  in
  if joined then Array.iter Domain.join t.domains
