module Rng = Lipsin_util.Rng
module Lit = Lipsin_bloom.Lit
module Zfilter = Lipsin_bloom.Zfilter
module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module Assignment = Lipsin_core.Assignment
module Candidate = Lipsin_core.Candidate
module Select = Lipsin_core.Select
module Net = Lipsin_sim.Net
module Run = Lipsin_sim.Run

type leg = {
  table : int;
  zfilter : Zfilter.t;
  tree : Graph.link list;
  dst_attach : Graph.node;
}

type t = {
  underlay_net : Net.t;
  overlay_graph : Graph.t;
  overlay_assignment : Assignment.t;
  overlay_net : Net.t;
  attach : Graph.node array;
  legs : leg array;  (* by overlay directed link index *)
}

let create ?(params = Lit.default) ?(seed = 313) ~underlay ~attach ~edges () =
  let underlay_graph = Assignment.graph underlay in
  let n = Array.length attach in
  if n < 2 then Error "overlay needs at least two nodes"
  else if
    Array.exists
      (fun v -> v < 0 || v >= Graph.node_count underlay_graph)
      attach
  then Error "attach point outside the underlay"
  else begin
    let overlay_graph = Graph.create ~nodes:n in
    match
      List.iter (fun (u, v) -> Graph.add_edge overlay_graph u v) edges
    with
    | exception Invalid_argument msg -> Error msg
    | () ->
      let overlay_assignment =
        Assignment.make params (Rng.of_int seed) overlay_graph
      in
      let make_leg (l : Graph.link) =
        let src_attach = attach.(l.Graph.src) in
        let dst_attach = attach.(l.Graph.dst) in
        if src_attach = dst_attach then
          (* Co-located overlay nodes: a zero-cost leg. *)
          Ok { table = 0; zfilter = Zfilter.create ~m:1; tree = []; dst_attach }
        else begin
          let tree =
            match
              Spt.delivery_tree underlay_graph ~root:src_attach
                ~subscribers:[ dst_attach ]
            with
            | tree -> tree
            | exception Invalid_argument _ -> []
          in
          if tree = [] then Error "overlay edge's attach points are disconnected"
          else
            match Select.select_fpa (Candidate.build underlay ~tree) with
            | Some c ->
              Ok
                {
                  table = c.Candidate.table;
                  zfilter = c.Candidate.zfilter;
                  tree;
                  dst_attach;
                }
            | None -> Error "overlay edge's underlay path overfills"
        end
      in
      let links = Graph.links overlay_graph in
      let legs = Array.map make_leg links in
      (match
         Array.fold_left
           (fun acc leg -> match (acc, leg) with
             | Error e, _ -> Error e
             | Ok (), Error e -> Error e
             | Ok (), Ok _ -> Ok ())
           (Ok ()) legs
       with
      | Error e -> Error e
      | Ok () ->
        Ok
          {
            underlay_net = Net.make underlay;
            overlay_graph;
            overlay_assignment;
            overlay_net = Net.make overlay_assignment;
            attach;
            legs =
              Array.map
                (function Ok leg -> leg | Error _ -> assert false)
                legs;
          })
  end

let overlay_graph t = t.overlay_graph
let assignment t = t.overlay_assignment
let attach_point t i = t.attach.(i)

type delivery = {
  delivered : int list;
  missed : int list;
  overlay_traversals : int;
  underlay_traversals : int;
  stretch : float;
}

let publish t ~src ~subscribers =
  let subscribers =
    List.sort_uniq Int.compare (List.filter (fun s -> s <> src) subscribers)
  in
  if subscribers = [] then Error "no overlay subscribers"
  else begin
    let tree = Spt.delivery_tree t.overlay_graph ~root:src ~subscribers in
    match Select.select_fpa (Candidate.build t.overlay_assignment ~tree) with
    | None -> Error "overlay tree overfills"
    | Some c ->
      (* Overlay-level forwarding... *)
      let overlay_outcome =
        Run.deliver t.overlay_net ~src ~table:c.Candidate.table
          ~zfilter:c.Candidate.zfilter ~tree
      in
      (* ...and every overlay hop executed as an underlay delivery. *)
      let underlay = ref 0 in
      let all_legs_ok = ref true in
      List.iter
        (fun (l : Graph.link) ->
          let leg = t.legs.(l.Graph.index) in
          if leg.tree <> [] then begin
            let o =
              Run.deliver t.underlay_net
                ~src:t.attach.(l.Graph.src)
                ~table:leg.table ~zfilter:leg.zfilter ~tree:leg.tree
            in
            underlay := !underlay + o.Run.link_traversals;
            if not o.Run.reached.(leg.dst_attach) then all_legs_ok := false
          end)
        overlay_outcome.Run.traversed;
      let delivered, missed =
        List.partition
          (fun s -> !all_legs_ok && overlay_outcome.Run.reached.(s))
          subscribers
      in
      (* The stacking-cost reference: delivering directly in the
         underlay to the same attach points. *)
      let direct_tree =
        Spt.delivery_tree (Net.graph t.underlay_net) ~root:t.attach.(src)
          ~subscribers:
            (List.sort_uniq Int.compare (List.map (fun s -> t.attach.(s)) subscribers))
      in
      Ok
        {
          delivered;
          missed;
          overlay_traversals = overlay_outcome.Run.link_traversals;
          underlay_traversals = !underlay;
          stretch =
            (if direct_tree = [] then 1.0
             else float_of_int !underlay /. float_of_int (List.length direct_tree));
        }
  end
