(** Benchmark-trajectory reporting: parse the repo's [BENCH_PR*.json]
    files, sanity-check their shape, and render one markdown report so
    every PR's perf story is auditable at a glance (ROADMAP item 4's
    reporting half).  Consumed by the [lipsin_report] binary and the CI
    report/schema steps. *)

(** A dependency-free JSON value and recursive-descent parser covering
    the subset the bench suite emits. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val parse : string -> (t, string) result
  val member : string -> t -> t option
  val to_float : t -> float option
  val to_string_lit : t -> string option
end

val check_bench : file:string -> Json.t -> string list
(** Schema findings for one bench file: top level must be an object,
    all numbers finite, every array-of-objects table non-empty with
    row-consistent keys, plus required fields for the known
    [BENCH_PR<n>.json] shapes.  [[]] is a clean file. *)

val render :
  ?title:string ->
  ?obs_snapshot:string ->
  (string * Json.t) list ->
  string
(** Renders the markdown report: file inventory, extracted conclusions
    for the known files (speedups, gates, overhead ratios), one section
    of tables per file (arrays of objects become markdown tables), and
    an optional Obs snapshot appendix. *)
