(* Benchmark-trajectory reporting: parse every BENCH_PR*.json the repo
   carries, sanity-check its shape, and render one markdown report —
   config, per-file tables, gate verdicts, conclusions — so a PR's perf
   story is auditable at a glance.  The JSON parser is a dependency-free
   recursive descent over the subset our benches emit (no surrogate
   escapes, numbers as floats). *)

(* ---- json ------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Parse_error of string

  let parse (s : string) : (t, string) result =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some x when x = c -> advance ()
      | _ -> fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word v =
      let l = String.length word in
      if !pos + l <= n && String.equal (String.sub s !pos l) word then begin
        pos := !pos + l;
        v
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' ->
          advance ();
          (match peek () with
          | Some 'n' -> Buffer.add_char b '\n'; advance ()
          | Some 't' -> Buffer.add_char b '\t'; advance ()
          | Some 'r' -> Buffer.add_char b '\r'; advance ()
          | Some 'b' -> Buffer.add_char b '\b'; advance ()
          | Some 'f' -> Buffer.add_char b '\012'; advance ()
          | Some '/' -> Buffer.add_char b '/'; advance ()
          | Some '\\' -> Buffer.add_char b '\\'; advance ()
          | Some '"' -> Buffer.add_char b '"'; advance ()
          | Some 'u' ->
            advance ();
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            (match int_of_string_opt ("0x" ^ hex) with
            | None -> fail "bad \\u escape"
            | Some code ->
              (* Good enough for our ASCII-bench payloads: encode the
                 code point as UTF-8. *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char b
                  (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end)
          | _ -> fail "bad escape");
          go ()
        | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> num_char c | None -> false) do
        advance ()
      done;
      let raw = String.sub s start (!pos - start) in
      match float_of_string_opt raw with
      | Some f -> Num f
      | None -> fail (Printf.sprintf "bad number %S" raw)
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let elems = ref [] in
          let rec items () =
            let v = parse_value () in
            elems := v :: !elems;
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              items ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          items ();
          Arr (List.rev !elems)
        end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> parse_number ()
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Parse_error msg -> Error msg

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None

  let to_float = function
    | Num f -> Some f
    | _ -> None

  let to_string_lit = function
    | Str s -> Some s
    | _ -> None
end

(* ---- schema checks --------------------------------------------------- *)

(* Shape invariants every BENCH file must satisfy, plus per-known-file
   clauses.  Findings are human-readable; [] is a clean file. *)

let rec check_numbers_finite path v findings =
  match v with
  | Json.Num f when not (Float.is_finite f) ->
    Printf.sprintf "%s: non-finite number" path :: findings
  | Json.Arr items ->
    List.fold_left
      (fun acc (i, item) ->
        check_numbers_finite (Printf.sprintf "%s[%d]" path i) item acc)
      findings
      (List.mapi (fun i x -> (i, x)) items)
  | Json.Obj fields ->
    List.fold_left
      (fun acc (k, item) ->
        check_numbers_finite (Printf.sprintf "%s.%s" path k) item acc)
      findings fields
  | _ -> findings

let row_keys = function
  | Json.Obj fields -> List.map fst fields
  | _ -> []

let check_tables path v findings =
  (* every array of objects must be non-empty with consistent keys *)
  let rec go path v findings =
    match v with
    | Json.Arr [] ->
      Printf.sprintf "%s: empty table" path :: findings
    | Json.Arr (first :: _ as rows)
      when match first with Json.Obj _ -> true | _ -> false ->
      let keys = row_keys first in
      List.fold_left
        (fun acc (i, row) ->
          let acc =
            match row with
            | Json.Obj _ ->
              let rk = row_keys row in
              if
                List.for_all (fun k -> List.mem k rk) keys
                && List.for_all (fun k -> List.mem k keys) rk
              then acc
              else
                Printf.sprintf "%s[%d]: row keys differ from first row" path i
                :: acc
            | _ ->
              Printf.sprintf "%s[%d]: mixed table (non-object row)" path i
              :: acc
          in
          go (Printf.sprintf "%s[%d]" path i) row acc)
        findings
        (List.mapi (fun i r -> (i, r)) rows)
    | Json.Arr rows ->
      List.fold_left
        (fun acc (i, row) -> go (Printf.sprintf "%s[%d]" path i) row acc)
        findings
        (List.mapi (fun i r -> (i, r)) rows)
    | Json.Obj fields ->
      List.fold_left
        (fun acc (k, item) -> go (Printf.sprintf "%s.%s" path k) item acc)
        findings fields
    | _ -> findings
  in
  go path v findings

let require_fields file obj fields findings =
  List.fold_left
    (fun acc f ->
      match Json.member f obj with
      | Some _ -> acc
      | None -> Printf.sprintf "%s: missing required field %S" file f :: acc)
    findings fields

let check_bench ~file json =
  let findings = [] in
  let findings =
    match json with
    | Json.Obj _ -> findings
    | _ -> [ Printf.sprintf "%s: top level is not an object" file ]
  in
  let findings = check_numbers_finite file json findings in
  let findings = check_tables file json findings in
  let base = Filename.basename file in
  let findings =
    if String.equal base "BENCH_PR5.json" then
      require_fields file json [ "sweep" ] findings
    else if String.equal base "BENCH_PR6.json" then
      require_fields file json [ "subscriber_sweep" ] findings
    else if String.equal base "BENCH_PR7.json" then
      require_fields file json [ "entries"; "gate" ] findings
    else if String.equal base "BENCH_PR8.json" then
      require_fields file json [ "sweep"; "agree" ] findings
    else if
      String.equal base "BENCH_PR4.json" || String.equal base "BENCH_PR9.json"
    then require_fields file json [ "overhead" ] findings
    else if String.equal base "BENCH_PR10.json" then
      require_fields file json [ "trajectory"; "summary" ] findings
    else findings
  in
  List.rev findings

(* ---- markdown rendering ---------------------------------------------- *)

let fmt_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else if Float.abs f >= 1000.0 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.4g" f

let rec cell_text = function
  | Json.Null -> ""
  | Json.Bool b -> if b then "true" else "false"
  | Json.Num f -> fmt_float f
  | Json.Str s -> s
  | Json.Arr items ->
    String.concat "; " (List.map cell_text items)
  | Json.Obj fields ->
    String.concat "; "
      (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k (cell_text v)) fields)

let md_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '|' -> Buffer.add_string b "\\|"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let table_of_rows buf rows =
  match rows with
  | [] -> ()
  | first :: _ ->
    let keys = row_keys first in
    Buffer.add_string buf
      ("| " ^ String.concat " | " (List.map md_escape keys) ^ " |\n");
    Buffer.add_string buf
      ("|" ^ String.concat "|" (List.map (fun _ -> "---") keys) ^ "|\n");
    List.iter
      (fun row ->
        let cells =
          List.map
            (fun k ->
              match Json.member k row with
              | Some v -> md_escape (cell_text v)
              | None -> "")
            keys
        in
        Buffer.add_string buf ("| " ^ String.concat " | " cells ^ " |\n"))
      rows;
    Buffer.add_char buf '\n'

let render_value buf ~heading v =
  let rec go level name v =
    match v with
    | Json.Arr (Json.Obj _ :: _ as rows) ->
      Buffer.add_string buf
        (Printf.sprintf "%s %s\n\n" (String.make level '#') name);
      table_of_rows buf rows
    | Json.Obj fields ->
      let scalars, nested =
        List.partition
          (fun (_, v) ->
            match v with
            | Json.Arr (Json.Obj _ :: _) | Json.Obj _ -> false
            | _ -> true)
          fields
      in
      Buffer.add_string buf
        (Printf.sprintf "%s %s\n\n" (String.make level '#') name);
      if scalars <> [] then begin
        List.iter
          (fun (k, v) ->
            Buffer.add_string buf
              (Printf.sprintf "- **%s**: %s\n" k (md_escape (cell_text v))))
          scalars;
        Buffer.add_char buf '\n'
      end
      else if nested = [] then Buffer.add_string buf "(empty)\n\n";
      List.iter (fun (k, v) -> go (min 6 (level + 1)) k v) nested
    | other ->
      Buffer.add_string buf
        (Printf.sprintf "%s %s\n\n%s\n\n" (String.make level '#') name
           (md_escape (cell_text other)))
  in
  go 2 heading v

(* Narrative one-liners for the files we know, so the report reads as
   conclusions rather than raw tables. *)
let known_conclusion ~file json =
  let base = Filename.basename file in
  let fnum path =
    Option.bind path Json.to_float
  in
  if String.equal base "BENCH_PR5.json" then
    match Json.member "sweep" json with
    | Some (Json.Arr rows) when rows <> [] ->
      let last = List.nth rows (List.length rows - 1) in
      (match
         (fnum (Json.member "ports" last), fnum (Json.member "speedup" last))
       with
      | Some p, Some s ->
        Some
          (Printf.sprintf
             "Bit-sliced engine peaks at %.2fx over the scalar fast path at \
              %.0f ports."
             s p)
      | _ -> None)
    | _ -> None
  else if String.equal base "BENCH_PR6.json" then
    match Json.member "subscriber_sweep" json with
    | Some (Json.Arr rows) when rows <> [] ->
      let last = List.nth rows (List.length rows - 1) in
      (match
         ( fnum (Json.member "subscribers" last),
           fnum (Json.member "stages" last) )
       with
      | Some subs, Some stages ->
        Some
          (Printf.sprintf
             "Partitioned delivery carries %.0f subscribers across %.0f \
              stages%s."
             subs stages
             (match Json.member "exactly_once" last with
             | Some (Json.Bool true) -> " with exactly-once verified"
             | _ -> ""))
      | _ -> None)
    | _ -> None
  else if String.equal base "BENCH_PR7.json" then
    match Json.member "entries" json with
    | Some (Json.Arr rows) ->
      let gated, clean =
        List.fold_left
          (fun (g, c) row ->
            match Json.member "noalloc_gated" row with
            | Some (Json.Bool true) ->
              ( g + 1,
                c
                +
                match fnum (Json.member "minor_words_per_op" row) with
                | Some 0.0 -> 1
                | _ -> 0 )
            | _ -> (g, c))
          (0, 0) rows
      in
      Some
        (Printf.sprintf
           "%d of %d noalloc-gated kernels measure 0.0 minor words/op." clean
           gated)
    | _ -> None
  else if String.equal base "BENCH_PR8.json" then
    match Json.member "agree" json with
    | Some (Json.Bool true) ->
      Some
        "Checked and bounds-certified unchecked kernels agree bit-for-bit \
         across the sweep."
    | _ -> Some "WARNING: checked/unchecked kernels disagreed."
  else if
    String.equal base "BENCH_PR9.json" || String.equal base "BENCH_PR4.json"
  then
    match Json.member "overhead" json with
    | Some (Json.Arr rows) ->
      let parts =
        List.filter_map
          (fun row ->
            match
              ( Option.bind (Json.member "config" row) Json.to_string_lit,
                fnum (Json.member "ratio" row) )
            with
            | Some cfg, Some r ->
              Some (Printf.sprintf "%s %.2f%%" cfg ((r -. 1.0) *. 100.0))
            | _ -> None)
          rows
      in
      if parts = [] then None
      else
        Some
          ("Observability overhead vs the no-op sink: "
          ^ String.concat ", " parts ^ ".")
    | _ -> None
  else if String.equal base "BENCH_PR10.json" then
    match Json.member "summary" json with
    | Some summary ->
      (match
         ( fnum (Json.member "measured_ops" summary),
           fnum (Json.member "ops_per_sec" summary),
           fnum (Json.member "minor_words_per_op" summary) )
       with
      | Some ops, Some rate, Some words ->
        Some
          (Printf.sprintf
             "The persistent service sustained %.0f publications at %.0f \
              ops/sec and %.1f minor words/op%s%s."
             ops rate words
             (match fnum (Json.member "speedup_vs_pr4" summary) with
             | Some s -> Printf.sprintf " (%.2fx the spawn-per-batch PR4 baseline)" s
             | None -> "")
             (match Json.member "counters_match_sequential" summary with
             | Some (Json.Bool true) -> ", counters bit-for-bit sequential"
             | _ -> ""))
      | _ -> None)
    | _ -> None
  else None

let render ?(title = "LIPSIN benchmark trajectory") ?obs_snapshot files =
  let buf = Buffer.create 16384 in
  Buffer.add_string buf (Printf.sprintf "# %s\n\n" title);
  Buffer.add_string buf
    "Generated by `lipsin_report` from the repo's `BENCH_PR*.json` files; \
     each file is one PR's CI-gated measurement.\n\n";
  (match files with
  | [] -> Buffer.add_string buf "_No benchmark files found._\n\n"
  | _ ->
    Buffer.add_string buf "## Files\n\n";
    List.iter
      (fun (file, _) ->
        Buffer.add_string buf
          (Printf.sprintf "- `%s`\n" (Filename.basename file)))
      files;
    Buffer.add_char buf '\n');
  let conclusions =
    (* PR4 and PR9 both carry the overhead table; keep the first copy. *)
    List.filter_map (fun (file, json) -> known_conclusion ~file json) files
    |> List.fold_left
         (fun acc c -> if List.mem c acc then acc else c :: acc)
         []
    |> List.rev
  in
  if conclusions <> [] then begin
    Buffer.add_string buf "## Conclusions\n\n";
    List.iter
      (fun c -> Buffer.add_string buf (Printf.sprintf "- %s\n" c))
      conclusions;
    Buffer.add_char buf '\n'
  end;
  List.iter
    (fun (file, json) ->
      render_value buf ~heading:(Filename.basename file) json)
    files;
  (match obs_snapshot with
  | None -> ()
  | Some payload ->
    Buffer.add_string buf "## Obs snapshot\n\n";
    Buffer.add_string buf "```\n";
    Buffer.add_string buf payload;
    if not (String.length payload > 0
            && payload.[String.length payload - 1] = '\n')
    then Buffer.add_char buf '\n';
    Buffer.add_string buf "```\n");
  Buffer.contents buf
