(** LIPSIN — Line Speed Publish/Subscribe Inter-Networking.

    The umbrella entry point: one alias per subsystem, so applications
    can depend on the [lipsin] library alone and write
    [Lipsin.Pubsub.System.create], [Lipsin.Core.Candidate.build], etc.
    Each alias's own documentation describes its subsystem; DESIGN.md
    maps them to the paper's sections. *)

(** Deterministic PRNG, statistics, Zipf sampling. *)
module Util = Lipsin_util

(** Fixed-width bit vectors (word-parallel AND/OR/subset). *)
module Bitvec = Lipsin_bitvec

(** Link ID Tags and in-packet Bloom filters (zFilters). *)
module Bloom = Lipsin_bloom

(** Graphs of unidirectional links, trees, metrics, generators. *)
module Topology = Lipsin_topology

(** The LIPSIN packet wire format. *)
module Packet = Lipsin_packet

(** LIT assignment, candidate construction and selection, splitting,
    adaptive widths, Link ID rotation, multipath. *)
module Core = Lipsin_core

(** The forwarding node: Algorithm 1, virtual links, loop prevention,
    blocking, fast recovery. *)
module Forwarding = Lipsin_forwarding

(** Packet-level, time-domain and fluid simulation. *)
module Sim = Lipsin_sim

(** Topics, rendezvous, and the publish/subscribe system. *)
module Pubsub = Lipsin_pubsub

(** Virtual links and stateful dense multicast. *)
module Stateful = Lipsin_stateful

(** Comparators: LPM router, multiple unicast, IP SSM state, Xcast. *)
module Baseline = Lipsin_baseline

(** Inter-domain forwarding, routing policy, the topic directory. *)
module Interdomain = Lipsin_interdomain

(** Zipf workload generation and evaluation. *)
module Workload = Lipsin_workload

(** Attack models and defences. *)
module Security = Lipsin_security

(** In-band control messages and operations. *)
module Control = Lipsin_control

(** Link-state bootstrap of the topology/rendezvous functions. *)
module Bootstrap = Lipsin_bootstrap

(** Opportunistic in-network caching. *)
module Cache = Lipsin_cache

(** LIPSIN as an IP forwarding fabric (unicast LPM + SSM). *)
module Ip = Lipsin_ip

(** End-node hosts: publication file systems and mailboxes. *)
module Node = Lipsin_node

(** Lateral error correction (XOR parity windows). *)
module Fec = Lipsin_fec

(** Recursive layering: overlays whose links are underlay deliveries. *)
module Recursive = Lipsin_recursive
