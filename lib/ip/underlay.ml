module Rng = Lipsin_util.Rng
module Lit = Lipsin_bloom.Lit
module Zfilter = Lipsin_bloom.Zfilter
module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module Assignment = Lipsin_core.Assignment
module Candidate = Lipsin_core.Candidate
module Select = Lipsin_core.Select
module Net = Lipsin_sim.Net
module Run = Lipsin_sim.Run
module Lpm = Lipsin_baseline.Lpm

type route = { egress : Graph.node; table : int; zfilter : Zfilter.t }

module Group_key = struct
  type t = int * Graph.node  (* group, source ingress *)
end

type t = {
  graph : Graph.t;
  assignment : Assignment.t;
  net : Net.t;
  edge_list : Graph.node list;
  is_edge : bool array;
  (* Unicast: per-ingress LPM, next_hop indexes into the route table. *)
  fibs : (Graph.node, Lpm.t * route array ref) Hashtbl.t;
  (* SSM: joins tracked only at the source's ingress edge. *)
  ssm : (Group_key.t, Graph.node list ref) Hashtbl.t;
}

let create ?(params = Lit.default) ?(seed = 5) graph ~edges =
  if edges = [] then invalid_arg "Underlay.create: no edge routers";
  let is_edge = Array.make (Graph.node_count graph) false in
  List.iter
    (fun v ->
      if v < 0 || v >= Graph.node_count graph then
        invalid_arg "Underlay.create: edge router out of range";
      is_edge.(v) <- true)
    edges;
  let assignment = Assignment.make params (Rng.of_int seed) graph in
  {
    graph;
    assignment;
    net = Net.make assignment;
    edge_list = List.sort_uniq Int.compare edges;
    is_edge;
    fibs = Hashtbl.create 8;
    ssm = Hashtbl.create 32;
  }

let edges t = t.edge_list

let check_edge t v =
  if not t.is_edge.(v) then invalid_arg "Underlay: node is not an edge router"

let path_zfilter t ~src ~dst =
  let tree = Spt.delivery_tree t.graph ~root:src ~subscribers:[ dst ] in
  let candidates = Candidate.build t.assignment ~tree in
  match Select.select_fpa candidates with
  | Some c -> (c.Candidate.table, c.Candidate.zfilter, List.length tree)
  | None -> invalid_arg "Underlay: path overfills every candidate"

let fib_of t ingress =
  match Hashtbl.find_opt t.fibs ingress with
  | Some entry -> entry
  | None ->
    let entry = (Lpm.create (), ref [||]) in
    Hashtbl.replace t.fibs ingress entry;
    entry

let add_unicast_route t ~ingress ~prefix ~len ~egress =
  check_edge t ingress;
  check_edge t egress;
  let lpm, routes = fib_of t ingress in
  let table, zfilter, _ = path_zfilter t ~src:ingress ~dst:egress in
  let index = Array.length !routes in
  routes := Array.append !routes [| { egress; table; zfilter } |];
  Lpm.add lpm ~prefix ~len ~next_hop:index

type unicast_result = { egress : Graph.node; delivered : bool; hops : int }

let forward_unicast t ~ingress ~dst =
  check_edge t ingress;
  match Hashtbl.find_opt t.fibs ingress with
  | None -> None
  | Some (lpm, routes) -> (
    match Lpm.lookup lpm dst with
    | None -> None
    | Some index ->
      let route = !routes.(index) in
      let tree =
        Spt.delivery_tree t.graph ~root:ingress ~subscribers:[ route.egress ]
      in
      let outcome =
        Run.deliver t.net ~src:ingress ~table:route.table ~zfilter:route.zfilter
          ~tree
      in
      Some
        {
          egress = route.egress;
          delivered = outcome.Run.reached.(route.egress);
          hops = outcome.Run.link_traversals;
        })

let members t ~group ~source_ingress =
  match Hashtbl.find_opt t.ssm (group, source_ingress) with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.replace t.ssm (group, source_ingress) r;
    r

let ssm_join t ~group ~source_ingress ~egress =
  check_edge t source_ingress;
  check_edge t egress;
  let r = members t ~group ~source_ingress in
  if not (List.mem egress !r) then r := egress :: !r

let ssm_leave t ~group ~source_ingress ~egress =
  let r = members t ~group ~source_ingress in
  r := List.filter (fun e -> e <> egress) !r

type ssm_result = {
  reached : Graph.node list;
  missed : Graph.node list;
  traversals : int;
}

let forward_ssm t ~group ~source_ingress =
  check_edge t source_ingress;
  let targets =
    List.filter
      (fun e -> e <> source_ingress)
      !(members t ~group ~source_ingress)
  in
  if targets = [] then Error "group has no (remote) members"
  else begin
    let tree = Spt.delivery_tree t.graph ~root:source_ingress ~subscribers:targets in
    match Select.select_fpa (Candidate.build t.assignment ~tree) with
    | None -> Error "group tree overfills every candidate zFilter"
    | Some c ->
      let outcome =
        Run.deliver t.net ~src:source_ingress ~table:c.Candidate.table
          ~zfilter:c.Candidate.zfilter ~tree
      in
      let reached, missed =
        List.partition (fun e -> outcome.Run.reached.(e)) targets
      in
      Ok { reached; missed; traversals = outcome.Run.link_traversals }
  end

let ssm_state_entries t =
  Hashtbl.fold (fun _ r acc -> if !r = [] then acc else acc + 1) t.ssm 0
