module Rng = Lipsin_util.Rng
module Bitvec = Lipsin_bitvec.Bitvec
module Lit = Lipsin_bloom.Lit
module Zfilter = Lipsin_bloom.Zfilter
module Graph = Lipsin_topology.Graph
module Assignment = Lipsin_core.Assignment
module Obs = Lipsin_obs.Obs

(* Telemetry twins of Fastpath's fast-labelled metrics: same names and
   per-decision semantics under [engine="reference"], so the
   differential suite can assert the two engines produce identical
   counter deltas for the same packet history. *)
let m_decisions =
  Obs.Counter.make ~help:"Reference (slow path) forwarding decisions"
    "lipsin_node_engine_decisions_total"

let m_drop_fill =
  Obs.Counter.make ~help:"Packets dropped, by engine and reason"
    ~labels:[ ("engine", "reference"); ("reason", "fill") ]
    "lipsin_drops_total"

let m_drop_loop =
  Obs.Counter.make ~help:"Packets dropped, by engine and reason"
    ~labels:[ ("engine", "reference"); ("reason", "loop") ]
    "lipsin_drops_total"

let m_drop_bad_table =
  Obs.Counter.make ~help:"Packets dropped, by engine and reason"
    ~labels:[ ("engine", "reference"); ("reason", "bad-table") ]
    "lipsin_drops_total"

let m_loop_hits =
  Obs.Counter.make ~help:"Loop-cache lookups that found a live entry"
    ~labels:[ ("engine", "reference") ]
    "lipsin_loop_cache_hits_total"

let m_loop_suspected =
  Obs.Counter.make ~help:"Decisions that cached a suspected loop"
    ~labels:[ ("engine", "reference") ]
    "lipsin_loop_suspected_total"

let m_block_vetoes =
  Obs.Counter.make ~help:"Matched ports suppressed by a negative Link ID"
    ~labels:[ ("engine", "reference") ]
    "lipsin_block_vetoes_total"

let m_local =
  Obs.Counter.make ~help:"Decisions that matched the node-local LIT"
    ~labels:[ ("engine", "reference") ]
    "lipsin_local_deliveries_total"

let m_services =
  Obs.Counter.make ~help:"Service endpoints matched"
    ~labels:[ ("engine", "reference") ]
    "lipsin_service_matches_total"

let m_stitches =
  Obs.Counter.make ~help:"Partition stitch entries matched"
    ~labels:[ ("engine", "reference") ]
    "lipsin_stitch_matches_total"

let h_admitted =
  Obs.Histogram.make ~help:"Out-links admitted per forwarding decision"
    ~labels:[ ("engine", "reference") ]
    "lipsin_admitted_links"

type drop_reason = Fill_limit_exceeded | Loop_detected | Bad_table

type verdict = {
  forward_on : Graph.link list;
  deliver_local : bool;
  services_matched : string list;
  stitches_matched : (int * int) list;
  loop_suspected : bool;
  drop : drop_reason option;
  false_positive_tests : int;
}

type port = {
  link : Graph.link;
  tags : Bitvec.t array;  (* one per table *)
  in_tags : Bitvec.t array;  (* reverse direction's tags: incoming LITs *)
  mutable up : bool;
  (* Negative Link IDs: per-table optional veto patterns (Sec. 3.3.4).
     [None] in a slot means that table carries no veto for this
     entry. *)
  mutable blocks : Bitvec.t option array list;
}

type virtual_entry = {
  v_nonce : int64;
  v_tags : Bitvec.t array;
  v_out : Graph.link list;
}

type service = { s_nonce : int64; s_tags : Bitvec.t array; s_name : string }

(* Stitch entries for partitioned zFilters: when a packet's filter
   covers the parent stage's egress LIT, delivery restarts here with
   stage [st_next] of partition [st_partition]. *)
type stitch = {
  st_nonce : int64;
  st_tags : Bitvec.t array;
  st_partition : int;
  st_next : int;
}

type t = {
  node : Graph.node;
  params : Lit.params;
  d : int;
  fill_limit : float;
  ports : port array;
  mutable virtuals : virtual_entry list;
  mutable services : service list;
  mutable stitches : stitch list;
  local : Lit.t;
  loop_prevention : bool;
  (* zFilter bytes -> (arrival link index, insertion tick).  The paper
     caches "for a short period of time": a loop is the SAME packet
     returning, so entries are valid within the current tick (one
     packet flight — the simulator ticks once per delivery) plus
     [loop_ttl] extra ticks of grace. *)
  loop_cache : (string, int * int) Hashtbl.t;
  loop_queue : string Queue.t;  (* FIFO eviction *)
  loop_capacity : int;
  loop_ttl : int;
  mutable tick_count : int;
}

let create ?(fill_limit = 0.7) ?(loop_cache_capacity = 1024)
    ?(loop_cache_ttl = 0) ?(loop_prevention = true) assignment node =
  let graph = Assignment.graph assignment in
  let params = Assignment.params assignment in
  let make_port link =
    let reverse = Graph.reverse_link graph link in
    {
      link;
      tags = Lit.tags (Assignment.lit assignment link);
      in_tags = Lit.tags (Assignment.lit assignment reverse);
      up = true;
      blocks = [];
    }
  in
  let ports = Array.of_list (List.map make_port (Graph.out_links graph node)) in
  (* The local Link ID's nonce is derived from the node id so that
     control-plane tools can recompute it; uniqueness only needs to be
     statistical. *)
  let local =
    Lit.generate params ~nonce:(Rng.mix64 (Int64.of_int (node + 0x51EE7)))
  in
  {
    node;
    params;
    d = params.Lit.d;
    fill_limit;
    ports;
    virtuals = [];
    services = [];
    stitches = [];
    local;
    loop_prevention;
    loop_cache = Hashtbl.create 64;
    loop_queue = Queue.create ();
    loop_capacity = loop_cache_capacity;
    loop_ttl = loop_cache_ttl;
    tick_count = 0;
  }

let node t = t.node
let local_lit t = t.local
let table_count t = t.d
let tick t = t.tick_count <- t.tick_count + 1

let find_port t link =
  let found = ref None in
  Array.iter
    (fun p -> if p.link.Graph.index = link.Graph.index then found := Some p)
    t.ports;
  match !found with
  | Some p -> p
  | None -> invalid_arg "Node_engine: link is not an outgoing link of this node"

let fail_link t link = (find_port t link).up <- false
let restore_link t link = (find_port t link).up <- true

let install_virtual t lit ~out_links =
  List.iter (fun l -> ignore (find_port t l)) out_links;
  t.virtuals <-
    { v_nonce = Lit.nonce lit; v_tags = Lit.tags lit; v_out = out_links }
    :: t.virtuals

let remove_virtual t lit =
  let nonce = Lit.nonce lit in
  t.virtuals <- List.filter (fun v -> not (Int64.equal v.v_nonce nonce)) t.virtuals

let virtual_count t = List.length t.virtuals

let install_service t lit ~name =
  t.services <-
    { s_nonce = Lit.nonce lit; s_tags = Lit.tags lit; s_name = name }
    :: t.services

let remove_service t lit =
  let nonce = Lit.nonce lit in
  t.services <- List.filter (fun s -> not (Int64.equal s.s_nonce nonce)) t.services

let install_stitch t lit ~partition ~next =
  t.stitches <-
    {
      st_nonce = Lit.nonce lit;
      st_tags = Lit.tags lit;
      st_partition = partition;
      st_next = next;
    }
    :: t.stitches

let remove_stitch t lit =
  let nonce = Lit.nonce lit in
  t.stitches <- List.filter (fun s -> not (Int64.equal s.st_nonce nonce)) t.stitches

let install_block t link lit =
  let p = find_port t link in
  p.blocks <- Array.map Option.some (Lit.tags lit) :: p.blocks

let install_block_pattern t link ~table pattern =
  if table < 0 || table >= t.d then
    invalid_arg "Node_engine.install_block_pattern: table out of range";
  let p = find_port t link in
  let entry = Array.make t.d None in
  entry.(table) <- Some pattern;
  p.blocks <- entry :: p.blocks

let clear_blocks t link = (find_port t link).blocks <- []

let loop_cache_add t key in_index =
  if not (Hashtbl.mem t.loop_cache key) then begin
    if Queue.length t.loop_queue >= t.loop_capacity then begin
      let victim = Queue.take t.loop_queue in
      Hashtbl.remove t.loop_cache victim
    end;
    Hashtbl.replace t.loop_cache key (in_index, t.tick_count);
    Queue.add key t.loop_queue
  end

let loop_cache_find t key =
  match Hashtbl.find_opt t.loop_cache key with
  | Some (in_index, inserted_at) when t.tick_count - inserted_at <= t.loop_ttl ->
    Some in_index
  | Some _ ->
    Hashtbl.remove t.loop_cache key;
    None
  | None -> None

let forward t ~table ~zfilter ~in_link =
  let obs = Obs.enabled () in
  if obs then Obs.Counter.incr m_decisions;
  let no_forward ?(tests = 0) drop =
    (if obs then
       match drop with
       | Some Bad_table -> Obs.Counter.incr m_drop_bad_table
       | Some Fill_limit_exceeded -> Obs.Counter.incr m_drop_fill
       | Some Loop_detected -> Obs.Counter.incr m_drop_loop
       | None -> ());
    {
      forward_on = [];
      deliver_local = false;
      services_matched = [];
      stitches_matched = [];
      loop_suspected = false;
      drop;
      false_positive_tests = tests;
    }
  in
  if table < 0 || table >= t.d then no_forward (Some Bad_table)
  else if not (Zfilter.within_fill_limit zfilter ~limit:t.fill_limit) then
    no_forward (Some Fill_limit_exceeded)
  else begin
    let in_index = Option.map (fun l -> l.Graph.index) in_link in
    (* Loop prevention (Sec. 3.3.3): if any incoming LIT other than the
       arrival interface matches, the packet may come back; remember the
       (zFilter, arrival) pair.  If it is already cached with a
       different arrival link, a loop is happening: drop. *)
    let loop_suspected = ref false in
    let loop_detected = ref false in
    if t.loop_prevention then begin
      let key = Bytes.to_string (Bitvec.to_bytes (Zfilter.to_bitvec zfilter)) in
      (match (loop_cache_find t key, in_index) with
      | Some cached, Some arriving ->
        if obs then Obs.Counter.incr m_loop_hits;
        if cached <> arriving then loop_detected := true
      | Some _, None -> if obs then Obs.Counter.incr m_loop_hits
      | None, _ -> ());
      if not !loop_detected then begin
        let risky = ref false in
        Array.iter
          (fun p ->
            if Some p.link.Graph.index <> in_index then
              let reverse_in = p.in_tags.(table) in
              if Zfilter.matches zfilter ~lit:reverse_in then risky := true)
          t.ports;
        if !risky then begin
          loop_suspected := true;
          if obs then Obs.Counter.incr m_loop_suspected;
          match in_index with
          | Some arriving -> loop_cache_add t key arriving
          | None -> ()
        end
      end
    end;
    if !loop_detected then no_forward (Some Loop_detected)
    else begin
      let tests = ref 0 in
      let chosen = Hashtbl.create 8 in
      let out = ref [] in
      let consider_link l =
        if not (Hashtbl.mem chosen l.Graph.index) then begin
          Hashtbl.replace chosen l.Graph.index ();
          out := l :: !out
        end
      in
      (* Physical entries: Algorithm 1, plus negative Link IDs. *)
      Array.iter
        (fun p ->
          incr tests;
          if p.up && Zfilter.matches zfilter ~lit:p.tags.(table) then begin
            let blocked =
              List.exists
                (fun neg ->
                  match neg.(table) with
                  | Some pattern -> Zfilter.matches zfilter ~lit:pattern
                  | None -> false)
                p.blocks
            in
            if blocked then begin
              if obs then Obs.Counter.incr m_block_vetoes
            end
            else consider_link p.link
          end)
        t.ports;
      (* Virtual entries. *)
      List.iter
        (fun v ->
          incr tests;
          if Zfilter.matches zfilter ~lit:v.v_tags.(table) then
            List.iter
              (fun l ->
                let p = find_port t l in
                if p.up then consider_link l)
              v.v_out)
        t.virtuals;
      let deliver_local = Zfilter.matches zfilter ~lit:(Lit.tag t.local table) in
      (* Service endpoints (Sec. 3.4): virtual Link IDs whose egress is
         a named local service rather than a wire. *)
      let services_matched =
        List.filter_map
          (fun s ->
            if Zfilter.matches zfilter ~lit:s.s_tags.(table) then Some s.s_name
            else None)
          t.services
      in
      (* Stitch entries: the partitioned-tree handoff points. *)
      let stitches_matched =
        List.filter_map
          (fun s ->
            if Zfilter.matches zfilter ~lit:s.st_tags.(table) then
              Some (s.st_partition, s.st_next)
            else None)
          t.stitches
      in
      if obs then begin
        Obs.Histogram.observe_int h_admitted (List.length !out);
        if deliver_local then Obs.Counter.incr m_local;
        Obs.Counter.add m_services (List.length services_matched);
        Obs.Counter.add m_stitches (List.length stitches_matched)
      end;
      {
        forward_on = List.rev !out;
        deliver_local;
        services_matched;
        stitches_matched;
        loop_suspected = !loop_suspected;
        drop = None;
        false_positive_tests = !tests;
      }
    end
  end

type port_state = {
  port_link : Graph.link;
  port_up : bool;
  port_tags : Bitvec.t array;
  port_in_tags : Bitvec.t array;
  port_blocks : Bitvec.t option array list;
}

type state = {
  state_node : Graph.node;
  state_params : Lit.params;
  state_fill_limit : float;
  state_local : Lit.t;
  state_ports : port_state array;
  state_virtuals : (Bitvec.t array * Graph.link list) list;
  state_services : (Bitvec.t array * string) list;
  state_stitches : (Bitvec.t array * int * int) list;
  state_loop_prevention : bool;
  state_loop_capacity : int;
  state_loop_ttl : int;
  state_tick : int;
}

let state t =
  {
    state_node = t.node;
    state_params = t.params;
    state_fill_limit = t.fill_limit;
    state_local = t.local;
    state_ports =
      Array.map
        (fun p ->
          {
            port_link = p.link;
            port_up = p.up;
            port_tags = p.tags;
            port_in_tags = p.in_tags;
            port_blocks = p.blocks;
          })
        t.ports;
    state_virtuals = List.map (fun v -> (v.v_tags, v.v_out)) t.virtuals;
    state_services = List.map (fun s -> (s.s_tags, s.s_name)) t.services;
    state_stitches =
      List.map (fun s -> (s.st_tags, s.st_partition, s.st_next)) t.stitches;
    state_loop_prevention = t.loop_prevention;
    state_loop_capacity = t.loop_capacity;
    state_loop_ttl = t.loop_ttl;
    state_tick = t.tick_count;
  }

let forwarding_table_bits t ~sparse =
  let m = t.params.Lit.m in
  let entries = Array.length t.ports + List.length t.virtuals in
  if sparse then begin
    let log2m =
      let rec bits n acc = if n <= 1 then acc else bits (n lsr 1) (acc + 1) in
      bits (m - 1) 1
    in
    (* Each table-i entry stores its k_i set-bit positions of log2(m)
       bits each, plus the 8-bit out port (Sec. 4.2). *)
    let per_table i = entries * ((t.params.Lit.k_for_table.(i) * log2m) + 8) in
    let total = ref 0 in
    for i = 0 to t.d - 1 do
      total := !total + per_table i
    done;
    !total
  end
  else t.d * entries * (m + 8)
