(** The compiled line-speed forwarding engine.

    {!Node_engine} is the reference implementation: per decision it
    walks per-link entry lists and allocates a verdict record.  This
    module {e compiles} a node's forwarding state into the layout the
    paper's hardware discussion assumes (Sec. 4.2–4.3): the d
    forwarding tables — physical links, virtual links, negative Link
    IDs, the local slow-path ID and service endpoints — are flattened
    at {!compile} time into contiguous 64-bit-word arrays, one padded
    entry per row, and a decision is a branch-light word-wise AND/compare
    sweep over those rows that writes into a preallocated
    {!type-decision} buffer.  After the scratch buffers are warm, a
    {!decide} call allocates nothing (when loop prevention is off; the
    loop cache keys one small string per decision otherwise).

    Down links are compiled to never-matching rows: each entry carries
    a spare {e kill bit} in its word padding which the (zero-padded)
    packet filter can never cover, so link state costs no branch in the
    hot loop.

    A compiled engine is a {e snapshot}: mutations to the source
    {!Node_engine.t} after {!compile} (failures, virtual installs,
    blocks) are not seen — recompile instead ({!Lipsin_sim.Net} does
    this automatically).  The loop-prevention cache starts empty at
    compile time and then evolves with the same FIFO/TTL semantics as
    the reference engine's, so both engines agree decision-for-decision
    when fed the same packet history from creation. *)

type t

type decision = {
  mutable forward : int array;
      (** Ports to forward on: indexes valid in \[0, [n_forward]), in
          first-match order; map with {!out_link}. *)
  mutable n_forward : int;
  mutable deliver_local : bool;
  mutable services : int array;
      (** Matched service indexes, valid in \[0, [n_services]). *)
  mutable n_services : int;
  mutable stitches : int array;
      (** Matched stitch-entry indexes, valid in \[0, [n_stitch]);
          resolve payloads with {!stitch_targets}. *)
  mutable n_stitch : int;
  mutable loop_suspected : bool;
  mutable drop : int;  (** One of the [drop_*] codes below. *)
  mutable tests : int;
      (** Membership tests charged (= physical + virtual entries). *)
}

val no_drop : int
val drop_fill : int
val drop_loop : int
val drop_bad_table : int

val compile : Node_engine.t -> t
(** Flattens the engine's current state ({!Node_engine.state}) into the
    compiled table layout. *)

val node : t -> Lipsin_topology.Graph.node
val table_count : t -> int
val port_count : t -> int

val out_link : t -> int -> Lipsin_topology.Graph.link
(** The physical link behind a port index from [decision.forward]. *)

val out_index : t -> int -> int
(** The dense link index behind a port — [
    (out_link t p).index] without the record hop; allocation-free, for
    recycled-buffer delivery loops. *)

val out_dst : t -> int -> int
(** The destination node behind a port — [(out_link t p).dst];
    allocation-free. *)

val tick : t -> unit
(** Advances the loop-cache clock (mirror of {!Node_engine.tick}). *)

val decide :
  t -> table:int -> zfilter:Lipsin_bloom.Zfilter.t -> in_link_index:int -> decision
(** One forwarding decision; [in_link_index] is the dense index of the
    arrival link, or [-1] when the packet originates here.  Returns the
    engine's scratch decision buffer — read it before the next [decide]
    on this engine, and do not hold onto it.
    @raise Invalid_argument if the zFilter width differs from the
    compiled [m]. *)

val decide_batch :
  t ->
  table:int ->
  (Lipsin_bloom.Zfilter.t * int) array ->
  f:(int -> decision -> unit) ->
  unit
(** [decide_batch t ~table inputs ~f] runs {!decide} over an array of
    (zFilter, arrival-link index) pairs in one pass, invoking [f i d]
    with the scratch decision for input [i].  The batch entry point for
    the sharded serving path. *)

val drop_reason : decision -> Node_engine.drop_reason option
(** The decision's drop code as the reference engine's type. *)

val forward_links : t -> decision -> Lipsin_topology.Graph.link list
val service_names : t -> decision -> string list

val stitch_targets : t -> decision -> (int * int) list
(** Matched stitch entries as [(partition id, next stage)] pairs, in
    match order — the partitioned-zFilter handoff payloads. *)

val verdict : t -> decision -> Node_engine.verdict
(** Re-materialises a reference-engine verdict (allocates); the bridge
    the differential tests compare across. *)

val table_bytes : t -> int
(** Total compiled table footprint in bytes (all d tables: physical,
    incoming, block, virtual, local, service and stitch rows). *)

(** {1 Introspection}

    A structural window onto the compiled blobs for the invariant
    auditor ([Lipsin_analysis.Audit]) and its mutation tests.  The
    arrays and [Bytes.t] values are {e shared} with the live engine, not
    copies — treat them as read-only unless you are deliberately
    injecting corruption in a test. *)

type view = {
  view_m : int;  (** Filter width in bits. *)
  view_d : int;  (** Number of forwarding tables. *)
  view_k_for_table : int array;  (** Bits set per LIT, per table. *)
  view_words : int;  (** 64-bit words per entry, [m/64 + 1]. *)
  view_stride : int;  (** Bytes per entry, [8 * words]. *)
  view_data_len : int;  (** Live filter bytes, [ceil(m/8)]. *)
  view_n_ports : int;
  view_up : bool array;  (** Per-port link state at compile time. *)
  view_out_index : int array;  (** Port -> dense link index. *)
  view_phys : Bytes.t array;  (** Per table: [n_ports] LIT entries. *)
  view_in_tags : Bytes.t array;  (** Per table: [n_ports] incoming LITs. *)
  view_blocks : Bytes.t array;  (** Per table: concatenated veto patterns. *)
  view_block_off : int array array;
      (** Per table: [n_ports + 1] prefix offsets into the block blob. *)
  view_n_virt : int;
  view_virt : Bytes.t array;  (** Per table: [n_virt] virtual entries. *)
  view_v_out_off : int array;  (** [n_virt + 1] prefix offsets. *)
  view_v_out_ports : int array;  (** Flattened virtual egress ports. *)
  view_local : Bytes.t array;  (** Per table: the node-local LIT. *)
  view_svc : Bytes.t array;  (** Per table: one entry per service. *)
  view_svc_names : string array;
  view_stitch : Bytes.t array;  (** Per table: one entry per stitch point. *)
  view_stitch_partition : int array;  (** Stitch payloads: partition ids. *)
  view_stitch_next : int array;  (** Stitch payloads: next stage indexes. *)
  view_forward_cap : int;  (** Decision buffer capacity for ports. *)
  view_services_cap : int;  (** Decision buffer capacity for services. *)
  view_stitch_cap : int;  (** Decision buffer capacity for stitches. *)
  view_seen_cap : int;  (** Dedup stamp array capacity. *)
  view_digest : int;  (** Integrity digest recorded at {!compile}. *)
}

val view : t -> view

val digest : t -> int
(** Recomputes the FNV-1a integrity digest over the current blob
    contents and geometry.  Equal to [(view t).view_digest] iff no blob
    byte changed since {!compile}. *)
