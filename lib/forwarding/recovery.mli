(** Fast re-routing around failures (Sec. 3.3.2).

    Two schemes, both with zero convergence time:

    - {b VLId-based}: every physical link has a pre-configured virtual
      backup path carrying the *same* Link ID and LITs; on failure the
      detecting node activates it and unmodified packets flow over the
      replacement path.
    - {b zFilter rewrite}: the detecting node ORs a pre-computed
      backup-path LIT set into the packet's zFilter — no signalling, no
      node state, at the price of a higher fill factor.

    Backup paths are computed as shortest paths in the graph with the
    failed link (both directions) removed. *)

type link = Lipsin_topology.Graph.link

val backup_path : Lipsin_topology.Graph.t -> link:link -> link list option
(** Shortest path from [link.src] to [link.dst] avoiding the link
    itself (either direction); [None] when the link is a bridge. *)

val is_bridge : Lipsin_topology.Graph.t -> link:link -> bool
(** [true] iff removing the link (both directions) disconnects its
    endpoints, i.e. {!backup_path} is [None] and no zero-convergence
    recovery scheme can protect it.  Deployment verifiers
    ({!Lipsin_analysis.Netcheck}) flag such links. *)

val vlid_activate :
  Lipsin_core.Assignment.t ->
  engine_of:(Lipsin_topology.Graph.node -> Node_engine.t) ->
  failed:link ->
  (unit, string) result
(** VLId-based recovery: marks [failed] down at its source node and
    installs, at every node along the backup path, a virtual entry
    whose identity *is* the failed link's identity, forwarding to the
    next backup hop.  Packets built before the failure keep working. *)

val vlid_deactivate :
  Lipsin_core.Assignment.t ->
  engine_of:(Lipsin_topology.Graph.node -> Node_engine.t) ->
  failed:link ->
  unit
(** Removes the virtual entries and restores the physical link. *)

val zfilter_patch :
  Lipsin_core.Assignment.t -> table:int -> backup:link list -> Lipsin_bitvec.Bitvec.t
(** The LIT union to OR into a packet's zFilter so that it follows
    [backup] (zFilter-rewrite recovery).  The caller typically obtains
    [backup] from {!backup_path} at pre-computation time. *)

val apply_patch :
  Lipsin_bloom.Zfilter.t -> Lipsin_bitvec.Bitvec.t -> Lipsin_bloom.Zfilter.t
(** Fresh zFilter with the patch ORed in (the in-flight packet is
    rewritten, not mutated in place). *)

val node_backup_paths :
  Lipsin_topology.Graph.t -> failed:Lipsin_topology.Graph.node -> (link * link list) list
(** For a whole-node failure: for every link INTO the failed node, the
    backup route its traffic needs — a path from the link's source to
    the failed node's other neighbours' side... concretely, per the
    paper, "multiple backup paths or a backup tree towards all the
    neighbours of the failed node": for each transit pair (in-link
    u→f, out-link f→w) a path u→w avoiding f.  Entries are
    (replaced in-link, path) for each neighbour pair that remains
    connected without f. *)

val node_failure_activate :
  Lipsin_core.Assignment.t ->
  engine_of:(Lipsin_topology.Graph.node -> Node_engine.t) ->
  failed:Lipsin_topology.Graph.node ->
  (int, string) result
(** Node-failure recovery (Sec. 3.3.2): marks every link towards the
    failed node down at its neighbours and installs, for each transit
    pair that survives without the node, a virtual path impersonating
    the two-link identity through it (the identity of the f→w link is
    installed along u's detour, so in-flight zFilters keep working).
    Returns the number of transit pairs protected; [Error] when the
    node's removal disconnects all pairs. *)

val node_failure_deactivate :
  Lipsin_core.Assignment.t ->
  engine_of:(Lipsin_topology.Graph.node -> Node_engine.t) ->
  failed:Lipsin_topology.Graph.node ->
  unit
