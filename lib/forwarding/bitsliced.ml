module Idx = Lipsin_bitvec.Idx
module Bitvec = Lipsin_bitvec.Bitvec
module Lit = Lipsin_bloom.Lit
module Zfilter = Lipsin_bloom.Zfilter
module Graph = Lipsin_topology.Graph
module Obs = Lipsin_obs.Obs

(* Telemetry twins of the scalar engines' metrics, labelled
   engine="bitsliced"; the differential suite checks the deltas agree
   decision for decision with both scalar engines. *)
let m_decisions =
  Obs.Counter.make ~help:"Bit-sliced forwarding decisions"
    "lipsin_bitsliced_decisions_total"

let m_drop_fill =
  Obs.Counter.make ~help:"Packets dropped, by engine and reason"
    ~labels:[ ("engine", "bitsliced"); ("reason", "fill") ]
    "lipsin_drops_total"

let m_drop_loop =
  Obs.Counter.make ~help:"Packets dropped, by engine and reason"
    ~labels:[ ("engine", "bitsliced"); ("reason", "loop") ]
    "lipsin_drops_total"

let m_drop_bad_table =
  Obs.Counter.make ~help:"Packets dropped, by engine and reason"
    ~labels:[ ("engine", "bitsliced"); ("reason", "bad-table") ]
    "lipsin_drops_total"

let m_loop_hits =
  Obs.Counter.make ~help:"Loop-cache lookups that found a live entry"
    ~labels:[ ("engine", "bitsliced") ]
    "lipsin_loop_cache_hits_total"

let m_loop_suspected =
  Obs.Counter.make ~help:"Decisions that cached a suspected loop"
    ~labels:[ ("engine", "bitsliced") ]
    "lipsin_loop_suspected_total"

let m_block_vetoes =
  Obs.Counter.make ~help:"Matched ports suppressed by a negative Link ID"
    ~labels:[ ("engine", "bitsliced") ]
    "lipsin_block_vetoes_total"

let m_local =
  Obs.Counter.make ~help:"Decisions that matched the node-local LIT"
    ~labels:[ ("engine", "bitsliced") ]
    "lipsin_local_deliveries_total"

let m_services =
  Obs.Counter.make ~help:"Service endpoints matched"
    ~labels:[ ("engine", "bitsliced") ]
    "lipsin_service_matches_total"

let m_stitches =
  Obs.Counter.make ~help:"Partition stitch entries matched"
    ~labels:[ ("engine", "bitsliced") ]
    "lipsin_stitch_matches_total"

let h_admitted =
  Obs.Histogram.make ~help:"Out-links admitted per forwarding decision"
    ~labels:[ ("engine", "bitsliced") ]
    "lipsin_admitted_links"

type meters = {
  md : int array;
  mfill : int array;
  mloop : int array;
  mbad : int array;
  mhits : int array;
  msusp : int array;
  mveto : int array;
  mlocal : int array;
  msvc : int array;
  mstitch : int array;
  hadm : Obs.Histogram.cells;
}

let make_meters () =
  {
    md = Obs.Counter.local m_decisions;
    mfill = Obs.Counter.local m_drop_fill;
    mloop = Obs.Counter.local m_drop_loop;
    mbad = Obs.Counter.local m_drop_bad_table;
    mhits = Obs.Counter.local m_loop_hits;
    msusp = Obs.Counter.local m_loop_suspected;
    mveto = Obs.Counter.local m_block_vetoes;
    mlocal = Obs.Counter.local m_local;
    msvc = Obs.Counter.local m_services;
    mstitch = Obs.Counter.local m_stitches;
    hadm = Obs.Histogram.local h_admitted;
  }

let bump c = Idx.set c 0 (Idx.get c 0 + 1)

type decision = {
  mutable forward : int array;
  mutable n_forward : int;
  mutable deliver_local : bool;
  mutable services : int array;
  mutable n_services : int;
  mutable stitches : int array;
  mutable n_stitch : int;
  mutable loop_suspected : bool;
  mutable drop : int;
  mutable tests : int;
}

let no_drop = 0
let drop_fill = 1
let drop_loop = 2
let drop_bad_table = 3

(* Engine crossover, re-measured after the certified-index conversion
   (BENCH_PR8): dropping the bounds checks sped the scalar fast path up
   more at low degree — its per-port row loop is all compares — moving
   the crossover from the (12, 16] bracket of the BENCH_PR5 sweep to
   (16, 32]: at 16 ports the scalar engine now wins (0.88x) and the
   bit-sliced engine leads from 32 ports up (1.18x at 32, ~2x at 64+).
   [`Auto] picks the bit-sliced engine from [auto_threshold] ports, set
   mid-bracket; the byte-plane (8-bit sweep) layout only pays for
   itself once the sweep dominates, from [byte_plane_threshold] ports —
   one full column block. *)
let auto_threshold = 24
let byte_plane_threshold = 64

(* ------------------------------------------------------------------ *)
(* Transposed table layout.

   The canonical blob of a slice stores the entries column-major: word
   [col[b][blk]] (at byte offset [((b * blocks) + blk) * 8]) holds bit
   position [b] of the entries for slots [64*blk .. 64*blk + 63].  A
   decision starts from an all-ones alive mask per block and, for every
   filter bit position that is zero, clears the slots whose entry sets
   that bit: [alive &= ~col[b]].  Surviving bits are exactly the slots
   with [zFilter AND LIT = LIT].

   The hot loop runs an equivalent formulation over a *derived* plane:
   group the columns [bits] at a time (one filter nibble or byte per
   group) and precompute, for every group [pos] and every possible
   group value [v],

     plane[pos][v] = OR of col[b] over the columns b of the group
                     whose bit is clear in v

   so a decision ORs one precomputed word per group into a dead mask
   and finishes with [alive = valid & ~dead] — the same result as the
   per-bit sweep, in ncols/bits steps instead of ncols.  The planes are
   native int arrays over 32-slot sub-blocks because ocamlopt without
   flambda boxes Int64 in hot loops; the canonical 64-bit-word column
   blob remains the audited layout contract and the transpose source.

   [bits] is 4 (nibble planes) for low-degree nodes and 8 (byte planes,
   16x the memory, half the sweep steps) from [byte_plane_threshold]
   ports up, where the sweep dominates the decision. *)

type slice = {
  sl_n : int;  (* entries (ports / virtuals / services) *)
  sl_blocks : int;  (* 64-slot column blocks = ceil(n/64) *)
  sl_sub : int;  (* 32-slot sub-blocks = ceil(n/32) *)
  sl_cols : Bytes.t;  (* canonical column-major blob, ncols * blocks words *)
  sl_used : Bytes.t;  (* stride bytes; bit b set iff column b is nonzero *)
  sl_active : int array;  (* ascending plane positions with a used column *)
  sl_plane : int array;  (* ((pos << bits) | v) * sub + s -> dead mask *)
  sl_valid : int array;  (* per sub-block: mask of slots < n *)
}

let build_slice ~stride ~bits ~n blob =
  let ncols = stride * 8 in
  let blocks = (n + 63) lsr 6 in
  let sub = (n + 31) lsr 5 in
  let cols = Bytes.make (ncols * blocks * 8) '\000' in
  let used = Bytes.make stride '\000' in
  for slot = 0 to n - 1 do
    let blk = slot lsr 6 and bit = slot land 63 in
    for i = 0 to stride - 1 do
      let byte = Char.code (Bytes.get blob ((slot * stride) + i)) in
      if byte <> 0 then
        for j = 0 to 7 do
          if byte land (1 lsl j) <> 0 then begin
            let b = (i lsl 3) lor j in
            let off = ((b * blocks) + blk) lsl 3 in
            Bytes.set_int64_le cols off
              (Int64.logor (Bytes.get_int64_le cols off)
                 (Int64.shift_left 1L bit));
            Bytes.set used i
              (Char.chr (Char.code (Bytes.get used i) lor (1 lsl j)))
          end
        done
    done
  done;
  let npos = ncols / bits in
  let vmask = (1 lsl bits) - 1 in
  let plane = Array.make (npos * (vmask + 1) * sub) 0 in
  for b = 0 to ncols - 1 do
    let pos = b / bits and tb = b mod bits in
    for blk = 0 to blocks - 1 do
      let w = Bytes.get_int64_le cols (((b * blocks) + blk) lsl 3) in
      if not (Int64.equal w 0L) then begin
        let lo = Int64.to_int (Int64.logand w 0xFFFFFFFFL) in
        let hi = Int64.to_int (Int64.shift_right_logical w 32) in
        let s0 = blk lsl 1 in
        for v = 0 to vmask do
          if v land (1 lsl tb) = 0 then begin
            let base = (((pos lsl bits) lor v) * sub) + s0 in
            plane.(base) <- plane.(base) lor lo;
            if s0 + 1 < sub then plane.(base + 1) <- plane.(base + 1) lor hi
          end
        done
      end
    done
  done;
  let active =
    let acc = ref [] in
    for pos = npos - 1 downto 0 do
      let any = ref false in
      for tb = 0 to bits - 1 do
        let b = (pos * bits) + tb in
        if Char.code (Bytes.get used (b lsr 3)) land (1 lsl (b land 7)) <> 0
        then any := true
      done;
      if !any then acc := pos :: !acc
    done;
    Array.of_list !acc
  in
  let valid =
    Array.init sub (fun s ->
        let remaining = n - (s lsl 5) in
        if remaining >= 32 then 0xFFFFFFFF else (1 lsl remaining) - 1)
  in
  {
    sl_n = n;
    sl_blocks = blocks;
    sl_sub = sub;
    sl_cols = cols;
    sl_used = used;
    sl_active = active;
    sl_plane = plane;
    sl_valid = valid;
  }

type t = {
  node : Graph.node;
  m : int;
  d : int;
  k_for_table : int array;
  words : int;  (* 64-bit words per row entry; >= m/64 + 1 (kill bit) *)
  stride : int;  (* bytes per row entry = 8 * words *)
  data_len : int;  (* live filter bytes = ceil(m/8) *)
  plane_bits : int;  (* 4 or 8: filter bits consumed per sweep step *)
  npos : int;  (* plane positions per filter = stride * 8 / plane_bits *)
  fill_limit : float;
  fill_threshold : int;  (* max popcount passing the fill limit *)
  n_ports : int;
  out_links : Graph.link array;
  out_index : int array;
  up : bool array;
  (* Row-major blobs: same layout (and same compile contract) as
     Fastpath's — the transpose source, the block/local test operands,
     and one side of Audit's column/row cross-check. *)
  phys : Bytes.t array;
  in_tags : Bytes.t array;
  blocks : Bytes.t array;
  block_off : int array array;
  n_virt : int;
  virt : Bytes.t array;
  v_out_off : int array;
  v_out_ports : int array;
  local : Bytes.t array;
  svc : Bytes.t array;
  svc_names : string array;
  stitch : Bytes.t array;
  stitch_partition : int array;
  stitch_next : int array;
  (* Transposed slices, per table. *)
  sl_phys : slice array;
  sl_in : slice array;
  sl_virt : slice array;
  sl_svc : slice array;
  sl_stitch : slice array;
  loop_prevention : bool;
  loop_cache : (string, int * int) Hashtbl.t;
  loop_queue : string Queue.t;
  loop_capacity : int;
  loop_ttl : int;
  mutable tick_count : int;
  zf : Bytes.t;  (* scratch: current zFilter widened to stride bytes *)
  vals : int array;  (* scratch: the filter cut into plane-index values *)
  dead_phys : int array;  (* scratch dead masks, physical slice *)
  dead_in : int array;  (* scratch dead masks, incoming-LIT slice *)
  dead_aux : int array;  (* scratch dead masks, virtual/service slices *)
  seen : int array;
  mutable gen : int;
  decision : decision;
  (* decide_batch scratch: one chunk of widened filters, plane values
     and precomputed dead masks, swept position-outer so each plane row
     stays hot across the packets of the chunk. *)
  batch_cap : int;
  batch_zf : Bytes.t;
  batch_vals : int array;
  batch_dead_phys : int array;
  batch_dead_in : int array;
  batch_ok : bool array;
  mutable blob_digest : int;
  obs : meters;
}

(* Integrity fingerprint Analysis.Audit compares against to catch
   post-compile corruption — covering the row blobs, the canonical
   column blobs and every derived array.  Unlike Fastpath's byte-wise
   FNV-1a, this engine hashes a word at a time (multiply-xorshift over
   63-bit lanes): the transposed tables are ~50x larger than the row
   blobs they mirror, and the byte loop dominated compile time at
   whole-graph delivery scale.  The digest is compared only against
   its own recomputation, so the function choice is free. *)
let fnv_offset = 0xcbf29ce484222
let mix_prime = 0x2545F4914F6CDD1D

let fnv_int h i =
  let x = (h lxor i) * mix_prime in
  x lxor (x lsr 32)

let fnv_bytes h blob =
  let n = Bytes.length blob in
  let h = ref (fnv_int h n) in
  let i = ref 0 in
  while !i + 8 <= n do
    let w = Bytes.get_int64_le blob !i in
    (* Int64.to_int keeps the low 63 bits; fold the top bit in
       separately so no flip is invisible. *)
    h := fnv_int !h (Int64.to_int w);
    h := fnv_int !h (Int64.to_int (Int64.shift_right_logical w 62));
    i := !i + 8
  done;
  while !i < n do
    h := fnv_int !h (Char.code (Bytes.get blob !i));
    incr i
  done;
  !h

let fnv_ints h a =
  let h = ref h in
  Array.iter (fun i -> h := fnv_int !h i) a;
  !h

let digest t =
  let h = ref fnv_offset in
  let ints =
    [ t.m; t.d; t.words; t.stride; t.n_ports; t.n_virt; t.plane_bits;
      t.fill_threshold ]
  in
  List.iter (fun i -> h := fnv_int !h i) ints;
  h := fnv_ints !h t.k_for_table;
  let blobs tbl_array = Array.iter (fun b -> h := fnv_bytes !h b) tbl_array in
  blobs t.phys;
  blobs t.in_tags;
  blobs t.blocks;
  blobs t.virt;
  blobs t.local;
  blobs t.svc;
  blobs t.stitch;
  h := fnv_ints !h t.stitch_partition;
  h := fnv_ints !h t.stitch_next;
  let slices sls =
    Array.iter
      (fun sl ->
        h := fnv_int !h sl.sl_n;
        h := fnv_bytes !h sl.sl_cols;
        h := fnv_bytes !h sl.sl_used;
        h := fnv_ints !h sl.sl_active;
        h := fnv_ints !h sl.sl_plane;
        h := fnv_ints !h sl.sl_valid)
      sls
  in
  slices t.sl_phys;
  slices t.sl_in;
  slices t.sl_virt;
  slices t.sl_svc;
  slices t.sl_stitch;
  !h land max_int

let compile engine =
  let st = Node_engine.state engine in
  let params = st.Node_engine.state_params in
  let m = params.Lit.m in
  let d = params.Lit.d in
  (* Same row geometry as Fastpath: bit m of the word padding is the
     kill bit, so a down link's entry can never be covered by the
     (zero-padded) packet filter — and, transposed, column m is exactly
     the set of down ports. *)
  let words = (m / 64) + 1 in
  let stride = 8 * words in
  let data_len = (m + 7) / 8 in
  let ports = st.Node_engine.state_ports in
  let n_ports = Array.length ports in
  let entry_blob n = Bytes.make (n * stride) '\000' in
  let write blob slot vec = Bitvec.blit_into vec blob ~pos:(slot * stride) in
  let kill blob slot =
    let pos = (slot * stride) + (m lsr 3) in
    Bytes.set blob pos
      (Char.chr (Char.code (Bytes.get blob pos) lor (1 lsl (m land 7))))
  in
  let phys =
    Array.init d (fun tbl ->
        let blob = entry_blob n_ports in
        Array.iteri
          (fun p ps ->
            write blob p ps.Node_engine.port_tags.(tbl);
            if not ps.Node_engine.port_up then kill blob p)
          ports;
        blob)
  in
  let in_tags =
    Array.init d (fun tbl ->
        let blob = entry_blob n_ports in
        Array.iteri (fun p ps -> write blob p ps.Node_engine.port_in_tags.(tbl)) ports;
        blob)
  in
  let block_off =
    Array.init d (fun tbl ->
        let off = Array.make (n_ports + 1) 0 in
        for p = 0 to n_ports - 1 do
          let count =
            List.fold_left
              (fun acc entry -> if entry.(tbl) <> None then acc + 1 else acc)
              0 ports.(p).Node_engine.port_blocks
          in
          off.(p + 1) <- off.(p) + count
        done;
        off)
  in
  let blocks =
    Array.init d (fun tbl ->
        let off = block_off.(tbl) in
        let blob = entry_blob off.(n_ports) in
        Array.iteri
          (fun p ps ->
            let slot = ref off.(p) in
            List.iter
              (fun entry ->
                match entry.(tbl) with
                | Some pattern ->
                  write blob !slot pattern;
                  incr slot
                | None -> ())
              ps.Node_engine.port_blocks)
          ports;
        blob)
  in
  let port_of_link = Hashtbl.create (2 * n_ports) in
  Array.iteri
    (fun p ps ->
      Hashtbl.replace port_of_link ps.Node_engine.port_link.Graph.index p)
    ports;
  let virtuals = Array.of_list st.Node_engine.state_virtuals in
  let n_virt = Array.length virtuals in
  let virt =
    Array.init d (fun tbl ->
        let blob = entry_blob n_virt in
        Array.iteri (fun v (tags, _) -> write blob v tags.(tbl)) virtuals;
        blob)
  in
  let v_out_off = Array.make (n_virt + 1) 0 in
  Array.iteri
    (fun v (_, out) -> v_out_off.(v + 1) <- v_out_off.(v) + List.length out)
    virtuals;
  let v_out_ports = Array.make v_out_off.(n_virt) 0 in
  Array.iteri
    (fun v (_, out) ->
      List.iteri
        (fun j l -> v_out_ports.(v_out_off.(v) + j) <- Hashtbl.find port_of_link l.Graph.index)
        out)
    virtuals;
  let local =
    Array.init d (fun tbl ->
        let blob = entry_blob 1 in
        write blob 0 (Lit.tag st.Node_engine.state_local tbl);
        blob)
  in
  let services = Array.of_list st.Node_engine.state_services in
  let n_services = Array.length services in
  let svc =
    Array.init d (fun tbl ->
        let blob = entry_blob n_services in
        Array.iteri (fun s (tags, _) -> write blob s tags.(tbl)) services;
        blob)
  in
  let stitches = Array.of_list st.Node_engine.state_stitches in
  let n_stitch = Array.length stitches in
  let stitch =
    Array.init d (fun tbl ->
        let blob = entry_blob n_stitch in
        Array.iteri (fun s (tags, _, _) -> write blob s tags.(tbl)) stitches;
        blob)
  in
  let plane_bits = if n_ports >= byte_plane_threshold then 8 else 4 in
  let npos = stride * 8 / plane_bits in
  let slice_of blobs n = Array.map (build_slice ~stride ~bits:plane_bits ~n) blobs in
  let sl_phys = slice_of phys n_ports in
  let sl_in = slice_of in_tags n_ports in
  let sl_virt = slice_of virt n_virt in
  let sl_svc = slice_of svc n_services in
  let sl_stitch = slice_of stitch n_stitch in
  let sub_ports = (n_ports + 31) lsr 5 in
  let sub_aux = (max n_virt (max n_services n_stitch) + 31) lsr 5 in
  let batch_cap = 32 in
  let t =
    {
      node = st.Node_engine.state_node;
      m;
      d;
      k_for_table = Array.copy params.Lit.k_for_table;
      words;
      stride;
      data_len;
      plane_bits;
      npos;
      fill_limit = st.Node_engine.state_fill_limit;
      fill_threshold =
        Zfilter.fill_threshold ~m ~limit:st.Node_engine.state_fill_limit;
      n_ports;
      out_links = Array.map (fun ps -> ps.Node_engine.port_link) ports;
      out_index =
        Array.map (fun ps -> ps.Node_engine.port_link.Graph.index) ports;
      up = Array.map (fun ps -> ps.Node_engine.port_up) ports;
      phys;
      in_tags;
      blocks;
      block_off;
      n_virt;
      virt;
      v_out_off;
      v_out_ports;
      local;
      svc;
      svc_names = Array.map snd services;
      stitch;
      stitch_partition = Array.map (fun (_, pid, _) -> pid) stitches;
      stitch_next = Array.map (fun (_, _, next) -> next) stitches;
      sl_phys;
      sl_in;
      sl_virt;
      sl_svc;
      sl_stitch;
      loop_prevention = st.Node_engine.state_loop_prevention;
      loop_cache = Hashtbl.create 64;
      loop_queue = Queue.create ();
      loop_capacity = st.Node_engine.state_loop_capacity;
      loop_ttl = st.Node_engine.state_loop_ttl;
      tick_count = st.Node_engine.state_tick;
      zf = Bytes.make stride '\000';
      vals = Array.make npos 0;
      dead_phys = Array.make (max 1 sub_ports) 0;
      dead_in = Array.make (max 1 sub_ports) 0;
      dead_aux = Array.make (max 1 sub_aux) 0;
      seen = Array.make (max 1 n_ports) 0;
      gen = 0;
      decision =
        {
          forward = Array.make (max 1 n_ports) 0;
          n_forward = 0;
          deliver_local = false;
          services = Array.make (max 1 n_services) 0;
          n_services = 0;
          stitches = Array.make (max 1 n_stitch) 0;
          n_stitch = 0;
          loop_suspected = false;
          drop = no_drop;
          tests = 0;
        };
      batch_cap;
      batch_zf = Bytes.make (batch_cap * stride) '\000';
      batch_vals = Array.make (batch_cap * npos) 0;
      batch_dead_phys = Array.make (max 1 (batch_cap * sub_ports)) 0;
      batch_dead_in = Array.make (max 1 (batch_cap * sub_ports)) 0;
      batch_ok = Array.make batch_cap false;
      blob_digest = 0;
      obs = make_meters ();
    }
  in
  t.blob_digest <- digest t;
  t

let node t = t.node
let table_count t = t.d
let port_count t = t.n_ports
let out_link t p = t.out_links.(p)

(* Scalar port views for zero-alloc consumers, mirroring Fastpath. *)
let[@lipsin.noalloc] out_index t p = Array.get t.out_index p

let[@lipsin.noalloc] out_dst t p =
  (Array.get t.out_links p).Graph.dst
let plane_bits t = t.plane_bits
let tick t = t.tick_count <- t.tick_count + 1

(* Same FIFO + tick-TTL loop cache as the scalar engines, entry for
   entry. *)

let loop_cache_add t key in_index =
  if not (Hashtbl.mem t.loop_cache key) then begin
    if Queue.length t.loop_queue >= t.loop_capacity then begin
      let victim = Queue.take t.loop_queue in
      Hashtbl.remove t.loop_cache victim
    end;
    Hashtbl.replace t.loop_cache key (in_index, t.tick_count);
    Queue.add key t.loop_queue
  end

let loop_cache_find t key =
  match Hashtbl.find_opt t.loop_cache key with
  | Some (in_index, inserted_at) when t.tick_count - inserted_at <= t.loop_ttl ->
    Some in_index
  | Some _ ->
    Hashtbl.remove t.loop_cache key;
    None
  | None -> None

(* Row-wise Algorithm 1, for the (sparse) entry kinds the sweep does
   not cover: block vetoes and the node-local LIT.  Native-int 4-byte
   groups ([words] counts 8-byte row words): the int64 reads this
   replaced boxed one block per load on non-flambda ocamlopt. *)
let[@lipsin.noalloc] subset_entry blob ~off zf ~zoff ~words =
  let ok = ref true in
  let w = ref 0 in
  while !ok && !w < words do
    let lo = Idx.bget_u32 blob (off + (!w lsl 3)) in
    let hi = Idx.bget_u32 blob (off + (!w lsl 3) + 4) in
    if
      lo land Idx.bget_u32 zf (zoff + (!w lsl 3)) <> lo
      || hi land Idx.bget_u32 zf (zoff + (!w lsl 3) + 4) <> hi
    then ok := false;
    incr w
  done;
  !ok

(* De Bruijn count-trailing-zeros over a 32-bit mask: recovers the
   surviving slot indexes in ascending order, matching the scalar
   engines' port visit order. *)
let tz_table =
  [| 0; 1; 28; 2; 29; 14; 24; 3; 30; 22; 20; 15; 25; 17; 4; 8; 31; 27; 13;
     23; 21; 19; 16; 7; 26; 12; 18; 6; 11; 5; 10; 9 |]

let ctz32 x = Idx.get tz_table ((((x land (-x)) * 0x077CB531) land 0xFFFFFFFF) lsr 27)

let fill_vals ~bits ~stride zf ~zoff vals ~voff =
  if bits = 8 then
    for i = 0 to stride - 1 do
      Idx.set vals (voff + i) (Char.code (Idx.bget zf (zoff + i)))
    done
  else
    (for i = 0 to stride - 1 do
       let b = Char.code (Idx.bget zf (zoff + i)) in
       Idx.set vals (voff + (i lsl 1)) (b land 0xF);
       Idx.set vals (voff + (i lsl 1) + 1) (b lsr 4)
     done
    [@lipsin.allow_unchecked
      "nibble planes: this branch runs only when plane_bits = 4, where \
       npos = 2 * stride exactly; npos = 8 * stride / plane_bits is a \
       division the affine layout facts cannot carry, so only npos >= \
       stride is available statically"])

(* The column sweep: OR one plane row per active position into the dead
   masks.  Specialised for the one- and two-sub-block shapes (<= 64
   entries) so the accumulators live in registers. *)
let[@lipsin.allow_unchecked
     "column sweep: build_slice sizes each plane row set as npos * \
      2^plane_bits * sl_sub, every position in sl_active is < npos, and \
      the packed (pos lsl bits) lor value row index plus the dead-mask \
      scratch (sized to the largest sl_sub at build time) are bit-level \
      invariants the affine domain cannot carry; Audit checks the plane \
      geometry and used maps"] sweep ~bits sl vals ~voff dead ~doff =
  let plane = sl.sl_plane in
  let act = sl.sl_active in
  let n_act = Array.length act in
  match sl.sl_sub with
  | 0 -> ()
  | 1 ->
    let acc = ref (Idx.get dead doff) in
    for i = 0 to n_act - 1 do
      let pos = Idx.get act i in
      acc := !acc lor Idx.get plane ((pos lsl bits) lor Idx.get vals (voff + pos))
    done;
    Idx.set dead doff !acc
  | 2 ->
    let a0 = ref (Idx.get dead doff) and a1 = ref (Idx.get dead (doff + 1)) in
    for i = 0 to n_act - 1 do
      let pos = Idx.get act i in
      let base = ((pos lsl bits) lor Idx.get vals (voff + pos)) lsl 1 in
      a0 := !a0 lor Idx.get plane base;
      a1 := !a1 lor Idx.get plane (base + 1)
    done;
    Idx.set dead doff !a0;
    Idx.set dead (doff + 1) !a1
  | sub ->
    for i = 0 to n_act - 1 do
      let pos = Idx.get act i in
      let base = ((pos lsl bits) lor Idx.get vals (voff + pos)) * sub in
      for s = 0 to sub - 1 do
        Idx.set dead (doff + s) (Idx.get dead (doff + s) lor Idx.get plane (base + s))
      done
    done

(* Position-outer sweep over a chunk of packets: each plane row is
   reused across the whole chunk before moving on — the batch
   amortisation of the column sweep. *)
let[@lipsin.allow_unchecked
     "batch column sweep: the same plane-row and dead-scratch geometry \
      as [sweep], with per-packet offsets i * npos and i * sl_sub that \
      stay inside the batch_cap-sized compile scratch; Audit checks the \
      plane geometry and used maps"] sweep_batch ~bits sl batch_vals
    ~npos batch_dead ~len ok =
  let plane = sl.sl_plane in
  let act = sl.sl_active in
  let sub = sl.sl_sub in
  if sub > 0 then
    for ai = 0 to Array.length act - 1 do
      let pos = Idx.get act ai in
      let prow = (pos lsl bits) * sub in
      for i = 0 to len - 1 do
        if Idx.get ok i then begin
          let base = prow + (Idx.get batch_vals ((i * npos) + pos) * sub) in
          let doff = i * sub in
          for s = 0 to sub - 1 do
            Idx.set batch_dead (doff + s)
              (Idx.get batch_dead (doff + s) lor Idx.get plane (base + s))
          done
        end
      done
    done

(* Everything after the width/fill gates: loop prevention, recovery of
   the surviving ports from the precomputed dead masks, block vetoes,
   virtual and service slices, local delivery and the Obs tail.  The
   control flow and meter increments mirror Fastpath.decide statement
   for statement; only the membership mechanism differs. *)
let finish t ~obs ~table ~in_link_index ~zf ~zoff ~vals ~voff ~pdead ~pdoff
    ~idead ~idoff =
  let d = t.decision in
  let bits = t.plane_bits in
  if t.loop_prevention then
    (begin
       let key = Bytes.sub_string zf zoff t.data_len in
       (match loop_cache_find t key with
       | Some cached ->
         if obs then bump t.obs.mhits;
         if in_link_index >= 0 && cached <> in_link_index then
           d.drop <- drop_loop
       | None -> ());
       if d.drop = no_drop then begin
         let sl = Idx.get t.sl_in table in
         let risky = ref false in
         (for s = 0 to sl.sl_sub - 1 do
            let a =
              ref (Idx.get sl.sl_valid s land lnot (Idx.get idead (idoff + s)))
            in
            while !a <> 0 do
              let p = (s lsl 5) + ctz32 !a in
              a := !a land (!a - 1);
              if Idx.get t.out_index p <> in_link_index then risky := true
            done
          done
         [@lipsin.allow_unchecked
           "survivor recovery: the dead scratch is sized to the largest \
            sl_sub across tables (and batch_cap chunks) at build time, \
            and p = 32 s + ctz32 mask stays below n_ports because \
            sl_valid only populates bits for real entries (Audit checks \
            the valid masks); both are bit-mask facts outside the affine \
            domain"]);
         if !risky then begin
           d.loop_suspected <- true;
           if obs then bump t.obs.msusp;
           if in_link_index >= 0 then loop_cache_add t key in_link_index
         end
       end
     end
    [@lipsin.allow_alloc
      "loop-prevention cache key (5-word Bytes.sub_string) and FIFO \
       bookkeeping; engines benchmarked for zero allocation run with \
       loop_prevention off"]);
  if d.drop <> no_drop then begin
    if obs then bump t.obs.mloop;
    d
  end
  else begin
    t.gen <- t.gen + 1;
    let gen = t.gen in
    d.tests <- t.n_ports + t.n_virt;
    let sl = Idx.get t.sl_phys table in
    let btab = Idx.get t.blocks table in
    let boff = Idx.get t.block_off table in
    (for s = 0 to sl.sl_sub - 1 do
       let a =
         ref (Idx.get sl.sl_valid s land lnot (Idx.get pdead (pdoff + s)))
       in
       while !a <> 0 do
         let p = (s lsl 5) + ctz32 !a in
         a := !a land (!a - 1);
         let blocked = ref false in
         for b = Idx.get boff p to Idx.get boff (p + 1) - 1 do
           if subset_entry btab ~off:(b * t.stride) zf ~zoff ~words:t.words
           then blocked := true
         done;
         if obs && !blocked then bump t.obs.mveto;
         if (not !blocked) && Idx.get t.seen p <> gen then begin
           Idx.set t.seen p gen;
           Idx.set d.forward d.n_forward p;
           d.n_forward <- d.n_forward + 1
         end
       done
     done
    [@lipsin.allow_unchecked
      "survivor recovery: p = 32 s + ctz32 mask is < n_ports via the \
       audited valid masks and the dead scratch is sized to the largest \
       sl_sub at build time; boff rows are monotone offsets into the \
       per-table blocks blob of boff.(n_ports) stride-wide entries \
       (Audit invariant), seen has at least n_ports entries, and \
       forward holds at most n_ports entries because the seen \
       generation stamp admits each port once per decision"]);
    let slv = Idx.get t.sl_virt table in
    if slv.sl_n > 0 then begin
      Array.fill t.dead_aux 0 slv.sl_sub 0;
      sweep ~bits slv vals ~voff t.dead_aux ~doff:0;
      (for s = 0 to slv.sl_sub - 1 do
         let a = ref (Idx.get slv.sl_valid s land lnot (Idx.get t.dead_aux s)) in
         while !a <> 0 do
           let v = (s lsl 5) + ctz32 !a in
           a := !a land (!a - 1);
           for j = Idx.get t.v_out_off v to Idx.get t.v_out_off (v + 1) - 1 do
             let p = Idx.get t.v_out_ports j in
             if Idx.get t.up p && Idx.get t.seen p <> gen then begin
               Idx.set t.seen p gen;
               Idx.set d.forward d.n_forward p;
               d.n_forward <- d.n_forward + 1
             end
           done
         done
       done
      [@lipsin.allow_unchecked
        "virtual-link recovery: v = 32 s + ctz32 mask is < n_virt via \
         the audited valid masks, v_out_off carries n_virt + 1 monotone \
         offsets bounding j inside v_out_ports, and every port read \
         from v_out_ports is < n_ports (Audit checks the indirection); \
         all content-dependent"])
    end;
    d.deliver_local <-
      subset_entry (Idx.get t.local table) ~off:0 zf ~zoff ~words:t.words;
    let sls = Idx.get t.sl_svc table in
    if sls.sl_n > 0 then begin
      Array.fill t.dead_aux 0 sls.sl_sub 0;
      sweep ~bits sls vals ~voff t.dead_aux ~doff:0;
      (for s = 0 to sls.sl_sub - 1 do
         let a = ref (Idx.get sls.sl_valid s land lnot (Idx.get t.dead_aux s)) in
         while !a <> 0 do
           let sv = (s lsl 5) + ctz32 !a in
           a := !a land (!a - 1);
           Idx.set d.services d.n_services sv;
           d.n_services <- d.n_services + 1
         done
       done
      [@lipsin.allow_unchecked
        "service recovery: sv = 32 s + ctz32 mask is < sl_n <= length \
         svc_names via the audited valid masks, and services holds \
         sl_n entries because each valid bit is drained once per \
         decision; content-dependent"])
    end;
    let slx = Idx.get t.sl_stitch table in
    if slx.sl_n > 0 then begin
      Array.fill t.dead_aux 0 slx.sl_sub 0;
      sweep ~bits slx vals ~voff t.dead_aux ~doff:0;
      (for s = 0 to slx.sl_sub - 1 do
         let a = ref (Idx.get slx.sl_valid s land lnot (Idx.get t.dead_aux s)) in
         while !a <> 0 do
           let sx = (s lsl 5) + ctz32 !a in
           a := !a land (!a - 1);
           Idx.set d.stitches d.n_stitch sx;
           d.n_stitch <- d.n_stitch + 1
         done
       done
      [@lipsin.allow_unchecked
        "stitch recovery: sx = 32 s + ctz32 mask is < sl_n <= length \
         stitch_next via the audited valid masks, and stitches holds \
         sl_n entries because each valid bit is drained once per \
         decision; content-dependent"])
    end;
    if obs then begin
      Obs.Histogram.record_int t.obs.hadm d.n_forward;
      if d.deliver_local then bump t.obs.mlocal;
      Idx.set t.obs.msvc 0 (Idx.get t.obs.msvc 0 + d.n_services);
      Idx.set t.obs.mstitch 0 (Idx.get t.obs.mstitch 0 + d.n_stitch)
    end;
    d
  end

let reset_decision d =
  d.n_forward <- 0;
  d.deliver_local <- false;
  d.n_services <- 0;
  d.n_stitch <- 0;
  d.loop_suspected <- false;
  d.drop <- no_drop;
  d.tests <- 0

let[@lipsin.noalloc] [@lipsin.inbounds] decide t ~table ~zfilter ~in_link_index =
  let obs = Obs.enabled () in
  if obs then bump t.obs.md;
  let d = t.decision in
  reset_decision d;
  if table < 0 || table >= t.d then begin
    d.drop <- drop_bad_table;
    if obs then bump t.obs.mbad;
    d
  end
  else if Zfilter.m zfilter <> t.m then
    invalid_arg "Bitsliced.decide: zFilter width mismatch"
  else if Zfilter.popcount zfilter > t.fill_threshold then begin
    d.drop <- drop_fill;
    if obs then bump t.obs.mfill;
    d
  end
  else begin
    Bitvec.blit_into (Zfilter.to_bitvec zfilter) t.zf ~pos:0;
    fill_vals ~bits:t.plane_bits ~stride:t.stride t.zf ~zoff:0 t.vals ~voff:0;
    let slp = Idx.get t.sl_phys table in
    Array.fill t.dead_phys 0 slp.sl_sub 0;
    sweep ~bits:t.plane_bits slp t.vals ~voff:0 t.dead_phys ~doff:0;
    if t.loop_prevention then begin
      let sli = Idx.get t.sl_in table in
      Array.fill t.dead_in 0 sli.sl_sub 0;
      sweep ~bits:t.plane_bits sli t.vals ~voff:0 t.dead_in ~doff:0
    end;
    finish t ~obs ~table ~in_link_index ~zf:t.zf ~zoff:0 ~vals:t.vals ~voff:0
      ~pdead:t.dead_phys ~pdoff:0 ~idead:t.dead_in ~idoff:0
  end

let[@lipsin.noalloc] [@lipsin.inbounds] decide_batch t ~table inputs ~f =
  if table < 0 || table >= t.d then
    for i = 0 to Array.length inputs - 1 do
      let zfilter, in_link_index = Idx.get inputs i in
      (f i (decide t ~table ~zfilter ~in_link_index)
      [@lipsin.allow_alloc "sink callback supplied by the caller"])
    done
  else begin
    let slp = Idx.get t.sl_phys table in
    let sli = Idx.get t.sl_in table in
    let npos = t.npos in
    let n = Array.length inputs in
    let start = ref 0 in
    while !start < n do
      let len = min t.batch_cap (n - !start) in
      (* Phase 1: widen and slice the chunk's admissible filters.  A
         packet failing the width or fill gate is left to the scalar
         entry point in phase 2, which re-checks (and raises or drops)
         at its proper sequential position. *)
      for i = 0 to len - 1 do
        let zfilter, _ =
          (Idx.get inputs (!start + i)
          [@lipsin.allow_unchecked
            "chunk cursor: start advances by len = min batch_cap (n - \
             start) >= 1 and stays inside [0, n); the non-constant step \
             defeats the monotone-counter write classification"])
        in
        let ok =
          Zfilter.m zfilter = t.m && Zfilter.popcount zfilter <= t.fill_threshold
        in
        Idx.set t.batch_ok i ok;
        if ok then begin
          Bitvec.blit_into (Zfilter.to_bitvec zfilter) t.batch_zf
            ~pos:(i * t.stride);
          fill_vals ~bits:t.plane_bits ~stride:t.stride t.batch_zf
            ~zoff:(i * t.stride) t.batch_vals ~voff:(i * npos)
        end
      done;
      Array.fill t.batch_dead_phys 0 (len * slp.sl_sub) 0;
      sweep_batch ~bits:t.plane_bits slp t.batch_vals ~npos t.batch_dead_phys
        ~len t.batch_ok;
      if t.loop_prevention then begin
        Array.fill t.batch_dead_in 0 (len * sli.sl_sub) 0;
        sweep_batch ~bits:t.plane_bits sli t.batch_vals ~npos t.batch_dead_in
          ~len t.batch_ok
      end;
      (* Phase 2: sequential decisions off the precomputed masks, so
         loop-cache evolution matches packet-by-packet semantics. *)
      for i = 0 to len - 1 do
        let zfilter, in_link_index =
          (Idx.get inputs (!start + i)
          [@lipsin.allow_unchecked
            "chunk cursor: start advances by len = min batch_cap (n - \
             start) >= 1 and stays inside [0, n); the non-constant step \
             defeats the monotone-counter write classification"])
        in
        if not (Idx.get t.batch_ok i) then
          (f (!start + i) (decide t ~table ~zfilter ~in_link_index)
          [@lipsin.allow_alloc "sink callback supplied by the caller"])
        else begin
          let obs = Obs.enabled () in
          if obs then bump t.obs.md;
          reset_decision t.decision;
          (f (!start + i)
             (finish t ~obs ~table ~in_link_index ~zf:t.batch_zf
                ~zoff:(i * t.stride) ~vals:t.batch_vals ~voff:(i * npos)
                ~pdead:t.batch_dead_phys ~pdoff:(i * slp.sl_sub)
                ~idead:t.batch_dead_in ~idoff:(i * sli.sl_sub))
          [@lipsin.allow_alloc "sink callback supplied by the caller"])
        end
      done;
      start := !start + len
    done
  end

let drop_reason d =
  if d.drop = no_drop then None
  else if d.drop = drop_fill then Some Node_engine.Fill_limit_exceeded
  else if d.drop = drop_loop then Some Node_engine.Loop_detected
  else Some Node_engine.Bad_table

let forward_links t d = List.init d.n_forward (fun i -> t.out_links.(d.forward.(i)))
let service_names t d = List.init d.n_services (fun i -> t.svc_names.(d.services.(i)))

let stitch_targets t d =
  List.init d.n_stitch (fun i ->
      let s = d.stitches.(i) in
      (t.stitch_partition.(s), t.stitch_next.(s)))

let verdict t d =
  {
    Node_engine.forward_on = forward_links t d;
    deliver_local = d.deliver_local;
    services_matched = service_names t d;
    stitches_matched = stitch_targets t d;
    loop_suspected = d.loop_suspected;
    drop = drop_reason d;
    false_positive_tests = d.tests;
  }

type slice_view = {
  sv_entry : string;
  sv_n : int;
  sv_blocks : int;
  sv_sub : int;
  sv_cols : Bytes.t;
  sv_used : Bytes.t;
  sv_active : int array;
  sv_plane : int array;
  sv_valid : int array;
}

type view = {
  view_m : int;
  view_d : int;
  view_k_for_table : int array;
  view_words : int;
  view_stride : int;
  view_data_len : int;
  view_plane_bits : int;
  view_n_ports : int;
  view_up : bool array;
  view_out_index : int array;
  view_phys : Bytes.t array;
  view_in_tags : Bytes.t array;
  view_blocks : Bytes.t array;
  view_block_off : int array array;
  view_n_virt : int;
  view_virt : Bytes.t array;
  view_v_out_off : int array;
  view_v_out_ports : int array;
  view_local : Bytes.t array;
  view_svc : Bytes.t array;
  view_svc_names : string array;
  view_stitch : Bytes.t array;
  view_stitch_partition : int array;
  view_stitch_next : int array;
  view_forward_cap : int;
  view_services_cap : int;
  view_stitch_cap : int;
  view_seen_cap : int;
  view_slices : slice_view array array;
  view_digest : int;
}

let view t =
  let slice_view entry sl =
    {
      sv_entry = entry;
      sv_n = sl.sl_n;
      sv_blocks = sl.sl_blocks;
      sv_sub = sl.sl_sub;
      sv_cols = sl.sl_cols;
      sv_used = sl.sl_used;
      sv_active = sl.sl_active;
      sv_plane = sl.sl_plane;
      sv_valid = sl.sl_valid;
    }
  in
  {
    view_m = t.m;
    view_d = t.d;
    view_k_for_table = t.k_for_table;
    view_words = t.words;
    view_stride = t.stride;
    view_data_len = t.data_len;
    view_plane_bits = t.plane_bits;
    view_n_ports = t.n_ports;
    view_up = t.up;
    view_out_index = t.out_index;
    view_phys = t.phys;
    view_in_tags = t.in_tags;
    view_blocks = t.blocks;
    view_block_off = t.block_off;
    view_n_virt = t.n_virt;
    view_virt = t.virt;
    view_v_out_off = t.v_out_off;
    view_v_out_ports = t.v_out_ports;
    view_local = t.local;
    view_svc = t.svc;
    view_svc_names = t.svc_names;
    view_stitch = t.stitch;
    view_stitch_partition = t.stitch_partition;
    view_stitch_next = t.stitch_next;
    view_forward_cap = Array.length t.decision.forward;
    view_services_cap = Array.length t.decision.services;
    view_stitch_cap = Array.length t.decision.stitches;
    view_seen_cap = Array.length t.seen;
    view_slices =
      Array.init t.d (fun tbl ->
          [|
            slice_view "phys" t.sl_phys.(tbl);
            slice_view "in" t.sl_in.(tbl);
            slice_view "virt" t.sl_virt.(tbl);
            slice_view "svc" t.sl_svc.(tbl);
            slice_view "stitch" t.sl_stitch.(tbl);
          |]);
    view_digest = t.blob_digest;
  }

let table_bytes t =
  let row = ref 0 in
  for tbl = 0 to t.d - 1 do
    row :=
      !row
      + t.stride
        * ((2 * t.n_ports)
          + t.block_off.(tbl).(t.n_ports)
          + t.n_virt + 1 + Array.length t.svc_names
          + Array.length t.stitch_next)
  done;
  let cols = ref 0 in
  let add sls =
    Array.iter
      (fun sl ->
        cols :=
          !cols + Bytes.length sl.sl_cols + Bytes.length sl.sl_used
          + (8 * Array.length sl.sl_plane))
      sls
  in
  add t.sl_phys;
  add t.sl_in;
  add t.sl_virt;
  add t.sl_svc;
  add t.sl_stitch;
  !row + !cols
