(** The bit-sliced (transposed) compiled forwarding engine.

    {!Fastpath} stores each table row-major — one padded LIT entry per
    link — and tests links one at a time, O(ports x words) per
    decision.  This engine stores the same tables {e column-major}:
    word [col[b][blk]] of a table's canonical blob holds filter-bit
    position [b] for the links [64*blk .. 64*blk + 63].  A decision
    starts from an all-ones alive mask per 64-link block and, for every
    zFilter bit position that is zero, clears the links whose LIT sets
    that bit ([alive &= ~col[b]]); the surviving mask bits are exactly
    the links with [zFilter AND LIT = LIT] — one word operation answers
    the membership question for 64 links at once, and survivors are
    recovered in ascending order with count-trailing-zeros iteration.

    The hot loop actually consumes a derived {e plane} of the columns
    (grouping them one filter nibble or byte at a time with a
    precomputed OR per group value — an algebraically identical
    reformulation of the per-bit sweep), held in native [int] arrays of
    32-link sub-blocks so that the sweep runs unboxed without flambda.
    Nodes with at least {!byte_plane_threshold} ports get
    byte-granularity planes (half the sweep steps, 16x the table
    memory); smaller nodes get nibble planes.

    Kill bits, negative/blocking Link IDs, the node-local LIT, service
    endpoints, fill-limit and loop-cache semantics match the scalar
    engines bit for bit: the differential suite checks all three
    engines agree decision for decision, including their Obs meter
    deltas (registered here under [engine="bitsliced"]).  Like
    {!Fastpath}, a compiled engine is a snapshot of the source
    {!Node_engine.t}; recompile after mutating it. *)

type t

type decision = {
  mutable forward : int array;
      (** Ports to forward on: indexes valid in \[0, [n_forward]), in
          ascending port order; map with {!out_link}. *)
  mutable n_forward : int;
  mutable deliver_local : bool;
  mutable services : int array;
      (** Matched service indexes, valid in \[0, [n_services]). *)
  mutable n_services : int;
  mutable stitches : int array;
      (** Matched stitch-entry indexes, valid in \[0, [n_stitch]);
          resolve payloads with {!stitch_targets}. *)
  mutable n_stitch : int;
  mutable loop_suspected : bool;
  mutable drop : int;  (** One of the [drop_*] codes below. *)
  mutable tests : int;
      (** Membership tests charged (= physical + virtual entries),
          matching the scalar engines' accounting. *)
}

val no_drop : int
val drop_fill : int
val drop_loop : int
val drop_bad_table : int

val auto_threshold : int
(** Port count from which the bit-sliced engine beats the scalar fast
    path, so [Run]'s [`Auto] engine picks it: 16.  Tuned from the
    BENCH_PR5 engine sweep (scalar ahead at 8 ports, bit-sliced ahead
    from 64 up, crossover between 12 and 16) and pinned by a
    bench-derived unit test. *)

val byte_plane_threshold : int
(** Port count from which compile chooses byte-granularity sweep planes
    instead of nibble planes: 64, one full column block.  Distinct from
    {!auto_threshold} — engine choice and plane granularity cross over
    at different sizes. *)

val compile : Node_engine.t -> t
(** Flattens the engine's current state into row blobs (the same
    layout as {!Fastpath.compile}) and transposes them into the
    column-major blobs and sweep planes. *)

val node : t -> Lipsin_topology.Graph.node
val table_count : t -> int
val port_count : t -> int

val out_link : t -> int -> Lipsin_topology.Graph.link
(** The physical link behind a port index from [decision.forward]. *)

val out_index : t -> int -> int
(** The dense link index behind a port; allocation-free (see
    {!Fastpath.out_index}). *)

val out_dst : t -> int -> int
(** The destination node behind a port; allocation-free. *)

val plane_bits : t -> int
(** Sweep granularity chosen at compile: 4 (nibble planes) or 8 (byte
    planes). *)

val tick : t -> unit
(** Advances the loop-cache clock (mirror of {!Node_engine.tick}). *)

val decide :
  t -> table:int -> zfilter:Lipsin_bloom.Zfilter.t -> in_link_index:int -> decision
(** One forwarding decision; [in_link_index] is the dense index of the
    arrival link, or [-1] when the packet originates here.  Returns the
    engine's scratch decision buffer — read it before the next [decide]
    on this engine, and do not hold onto it.
    @raise Invalid_argument if the zFilter width differs from the
    compiled [m]. *)

val decide_batch :
  t ->
  table:int ->
  (Lipsin_bloom.Zfilter.t * int) array ->
  f:(int -> decision -> unit) ->
  unit
(** [decide_batch t ~table inputs ~f] decides a whole array of
    (zFilter, arrival-link index) pairs, amortising the column sweep:
    packets are processed in chunks whose dead masks are computed
    position-outer, so each sweep plane row is reused across the chunk
    while the per-packet logic (loop cache included) still runs in
    input order — the observable semantics are exactly those of calling
    {!decide} in a loop.  [f i d] receives the scratch decision for
    input [i]. *)

val drop_reason : decision -> Node_engine.drop_reason option
(** The decision's drop code as the reference engine's type. *)

val forward_links : t -> decision -> Lipsin_topology.Graph.link list
val service_names : t -> decision -> string list

val stitch_targets : t -> decision -> (int * int) list
(** Matched stitch entries as [(partition id, next stage)] pairs, in
    match order — the partitioned-zFilter handoff payloads. *)

val verdict : t -> decision -> Node_engine.verdict
(** Re-materialises a reference-engine verdict (allocates); the bridge
    the differential tests compare across. *)

val table_bytes : t -> int
(** Total compiled footprint in bytes: row blobs plus canonical column
    blobs, used maps and sweep planes, over all d tables. *)

(** {1 Introspection}

    The window [Lipsin_analysis.Audit] uses to cross-check the
    transposed layout against the row blobs.  Arrays and [Bytes.t]
    values are {e shared} with the live engine — treat them as
    read-only unless deliberately injecting corruption in a test. *)

type slice_view = {
  sv_entry : string;
      (** ["phys"], ["in"], ["virt"], ["svc"] or ["stitch"]. *)
  sv_n : int;  (** Entries (ports, virtuals, services or stitches). *)
  sv_blocks : int;  (** 64-entry column blocks, [ceil (n/64)]. *)
  sv_sub : int;  (** 32-entry plane sub-blocks, [ceil (n/32)]. *)
  sv_cols : Bytes.t;
      (** Canonical column-major blob: the word at byte offset
          [((b * blocks) + blk) * 8] holds filter-bit position [b] of
          entries [64*blk .. 64*blk + 63]. *)
  sv_used : Bytes.t;  (** [stride] bytes; bit [b] set iff column [b] is
          nonzero. *)
  sv_active : int array;  (** Ascending plane positions with a used
          column. *)
  sv_plane : int array;
      (** Sweep plane: [((pos << plane_bits) | v) * sub + s] is the
          32-bit dead mask contributed by group [pos] holding value
          [v]. *)
  sv_valid : int array;  (** Per sub-block mask of slots [< n]. *)
}

type view = {
  view_m : int;
  view_d : int;
  view_k_for_table : int array;
  view_words : int;
  view_stride : int;
  view_data_len : int;
  view_plane_bits : int;
  view_n_ports : int;
  view_up : bool array;
  view_out_index : int array;
  view_phys : Bytes.t array;
  view_in_tags : Bytes.t array;
  view_blocks : Bytes.t array;
  view_block_off : int array array;
  view_n_virt : int;
  view_virt : Bytes.t array;
  view_v_out_off : int array;
  view_v_out_ports : int array;
  view_local : Bytes.t array;
  view_svc : Bytes.t array;
  view_svc_names : string array;
  view_stitch : Bytes.t array;
  view_stitch_partition : int array;
  view_stitch_next : int array;
  view_forward_cap : int;
  view_services_cap : int;
  view_stitch_cap : int;
  view_seen_cap : int;
  view_slices : slice_view array array;
      (** Per table: the phys, in, virt, svc and stitch slices, in
          that order. *)
  view_digest : int;  (** Integrity digest recorded at {!compile}. *)
}

val view : t -> view

val digest : t -> int
(** Recomputes the integrity digest (word-wise multiply-xorshift) over
    geometry, row blobs, column blobs and derived arrays.  Equal to
    [(view t).view_digest] iff nothing changed since {!compile}. *)
