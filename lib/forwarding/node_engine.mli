(** The LIPSIN forwarding node.

    Implements Algorithm 1 over d forwarding tables (Fig. 4) plus the
    design extensions of Sec. 3:

    - {b virtual links} (3.3.1): extra table entries whose match sends
      the packet over a set of this node's physical links;
    - {b link failure} marking, used by both recovery schemes (3.3.2);
    - {b loop prevention} (3.3.3): incoming-LIT check with a bounded
      cache of (zFilter, arrival link) pairs;
    - {b explicit blocking} (3.3.4): "negative" Link IDs attached to a
      physical link that veto forwarding on match;
    - {b slow path} (3.4): a node-local Link ID addressing the control
      processor;
    - the {b fill-factor limit} (4.4): over-full zFilters are dropped
      before any matching ("implemented in hardware, without causing
      any additional delay"). *)

type drop_reason =
  | Fill_limit_exceeded  (** Contamination defence tripped. *)
  | Loop_detected        (** Cached zFilter returned over another link. *)
  | Bad_table            (** d index outside the node's tables. *)

type verdict = {
  forward_on : Lipsin_topology.Graph.link list;
      (** Physical links to forward the packet on, deduplicated, in
          port order; empty when dropped or nothing matches. *)
  deliver_local : bool;
      (** The node-local (slow-path) Link ID matched: hand the packet
          to the control processor. *)
  services_matched : string list;
      (** Named local services whose identities matched (Sec. 3.4:
          "the egress points of a virtual link can be basically
          anything: nodes, processor cards within nodes, or even
          specific services"). *)
  stitches_matched : (int * int) list;
      (** Partition stitch entries whose egress LIT matched, as
          [(partition id, next stage index)] pairs in match order: the
          packet's delivery continues here under the child stage's
          filter (XBF-style partitioned zFilters). *)
  loop_suspected : bool;
      (** An incoming LIT other than the arrival link matched; the
          (zFilter, in-link) pair was cached. *)
  drop : drop_reason option;
      (** When [Some _], the packet was discarded and [forward_on] is
          empty. *)
  false_positive_tests : int;
      (** Membership tests performed on physical+virtual entries
          (denominator of Eq. 2); bookkeeping for experiments. *)
}

type t

val create :
  ?fill_limit:float ->
  ?loop_cache_capacity:int ->
  ?loop_cache_ttl:int ->
  ?loop_prevention:bool ->
  Lipsin_core.Assignment.t ->
  Lipsin_topology.Graph.node ->
  t
(** Builds the node's forwarding state from the assignment: one entry
    per outgoing physical link in each of the d tables, a fresh local
    Link ID, and the incoming LITs of its interfaces (for loop
    prevention, enabled by default).  [fill_limit] defaults to 0.7;
    [loop_cache_capacity] to 1024 entries.  Cached (zFilter, arrival)
    pairs are valid for the current {!tick} plus [loop_cache_ttl]
    further ticks (default 0) — the paper's "short period of time".
    The simulator ticks every engine once per packet delivery, so a
    loop (the same packet returning) is caught while traffic
    re-routed between deliveries is not misread as looping. *)

val tick : t -> unit
(** Advances the engine's notion of time, aging the loop cache.  Call
    once per packet flight (the Net/Run layers do this). *)

val node : t -> Lipsin_topology.Graph.node
val local_lit : t -> Lipsin_bloom.Lit.t
val table_count : t -> int

val forward :
  t ->
  table:int ->
  zfilter:Lipsin_bloom.Zfilter.t ->
  in_link:Lipsin_topology.Graph.link option ->
  verdict
(** One forwarding decision.  Never forwards back on the arrival
    link's reverse direction unless a virtual entry demands it. *)

val fail_link : t -> Lipsin_topology.Graph.link -> unit
(** Marks an outgoing physical link down: its entries stop matching.
    @raise Invalid_argument if the link is not an outgoing link of this
    node. *)

val restore_link : t -> Lipsin_topology.Graph.link -> unit

val install_virtual :
  t -> Lipsin_bloom.Lit.t -> out_links:Lipsin_topology.Graph.link list -> unit
(** Installs a virtual-link entry: when the given identity's table-i
    tag matches a packet using table i, the packet is forwarded over
    [out_links] (this node's physical links belonging to the virtual
    link).  [out_links] may be empty for pure egress membership.
    @raise Invalid_argument if some link is not outgoing here. *)

val remove_virtual : t -> Lipsin_bloom.Lit.t -> unit
(** Removes entries installed for this identity (by nonce). *)

val install_service : t -> Lipsin_bloom.Lit.t -> name:string -> unit
(** Registers a service endpoint: packets whose zFilter contains the
    identity's tag are handed to the named local service (reported in
    [services_matched]). *)

val remove_service : t -> Lipsin_bloom.Lit.t -> unit

val install_stitch : t -> Lipsin_bloom.Lit.t -> partition:int -> next:int -> unit
(** Registers a partition stitch entry: packets whose zFilter covers
    the identity's tag report [(partition, next)] in
    [stitches_matched], telling the delivery layer to hand the packet
    over to stage [next] of the partition rooted at this node. *)

val remove_stitch : t -> Lipsin_bloom.Lit.t -> unit
(** Removes stitch entries installed for this identity (by nonce). *)

val virtual_count : t -> int

val install_block : t -> Lipsin_topology.Graph.link -> Lipsin_bloom.Lit.t -> unit
(** Attaches a negative Link ID to an outgoing physical link: packets
    whose zFilter contains the negative tag are not forwarded over that
    link (Sec. 3.3.4). *)

val install_block_pattern :
  t ->
  Lipsin_topology.Graph.link ->
  table:int ->
  Lipsin_bitvec.Bitvec.t ->
  unit
(** Like {!install_block} but vetoes a single raw pattern in one
    forwarding table only — the form carried by in-band
    {!Lipsin_control.Message.Block_request}s, where the victim knows
    the offending zFilter but not a full identity.
    @raise Invalid_argument if [table] is out of range. *)

val clear_blocks : t -> Lipsin_topology.Graph.link -> unit

(** {2 State snapshot}

    A read-only view of everything the engine's decision depends on, in
    the exact order the decision consults it.  {!Fastpath.compile}
    flattens this into contiguous word arrays; tests use it to assert
    table contents.  The [Bitvec.t] values are shared with the engine —
    callers must not mutate them. *)

type port_state = {
  port_link : Lipsin_topology.Graph.link;
  port_up : bool;
  port_tags : Lipsin_bitvec.Bitvec.t array;      (** One LIT per table. *)
  port_in_tags : Lipsin_bitvec.Bitvec.t array;   (** Reverse direction's LITs. *)
  port_blocks : Lipsin_bitvec.Bitvec.t option array list;
      (** Negative Link IDs: per-table optional veto patterns. *)
}

type state = {
  state_node : Lipsin_topology.Graph.node;
  state_params : Lipsin_bloom.Lit.params;
  state_fill_limit : float;
  state_local : Lipsin_bloom.Lit.t;
  state_ports : port_state array;  (** In port (decision) order. *)
  state_virtuals :
    (Lipsin_bitvec.Bitvec.t array * Lipsin_topology.Graph.link list) list;
      (** (per-table tags, out links), in match order. *)
  state_services : (Lipsin_bitvec.Bitvec.t array * string) list;
      (** (per-table tags, name), in match order. *)
  state_stitches : (Lipsin_bitvec.Bitvec.t array * int * int) list;
      (** (per-table tags, partition id, next stage), in match order. *)
  state_loop_prevention : bool;
  state_loop_capacity : int;
  state_loop_ttl : int;
  state_tick : int;
}

val state : t -> state

val forwarding_table_bits : t -> sparse:bool -> int
(** Memory footprint of the node's forwarding tables per Sec. 4.2:
    dense = d·entries·(m + 8) bits; sparse stores only the k set-bit
    positions, k·ceil(log2 m) + 8 bits per entry. *)
