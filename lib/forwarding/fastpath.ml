module Idx = Lipsin_bitvec.Idx
module Bitvec = Lipsin_bitvec.Bitvec
module Lit = Lipsin_bloom.Lit
module Zfilter = Lipsin_bloom.Zfilter
module Graph = Lipsin_topology.Graph
module Obs = Lipsin_obs.Obs

(* Telemetry: registered once per process; each compiled engine caches
   its own domain's cells (see [meters]) so the hot loop's increments
   are plain int stores behind a single Obs.enabled load.  Metric names
   and semantics mirror Node_engine's reference-labelled twins — the
   differential suite checks the deltas agree decision for decision. *)
let m_decisions =
  Obs.Counter.make ~help:"Compiled fast-path forwarding decisions"
    "lipsin_fastpath_decisions_total"

let m_drop_fill =
  Obs.Counter.make ~help:"Packets dropped, by engine and reason"
    ~labels:[ ("engine", "fast"); ("reason", "fill") ]
    "lipsin_drops_total"

let m_drop_loop =
  Obs.Counter.make ~help:"Packets dropped, by engine and reason"
    ~labels:[ ("engine", "fast"); ("reason", "loop") ]
    "lipsin_drops_total"

let m_drop_bad_table =
  Obs.Counter.make ~help:"Packets dropped, by engine and reason"
    ~labels:[ ("engine", "fast"); ("reason", "bad-table") ]
    "lipsin_drops_total"

let m_loop_hits =
  Obs.Counter.make ~help:"Loop-cache lookups that found a live entry"
    ~labels:[ ("engine", "fast") ]
    "lipsin_loop_cache_hits_total"

let m_loop_suspected =
  Obs.Counter.make ~help:"Decisions that cached a suspected loop"
    ~labels:[ ("engine", "fast") ]
    "lipsin_loop_suspected_total"

let m_block_vetoes =
  Obs.Counter.make ~help:"Matched ports suppressed by a negative Link ID"
    ~labels:[ ("engine", "fast") ]
    "lipsin_block_vetoes_total"

let m_local =
  Obs.Counter.make ~help:"Decisions that matched the node-local LIT"
    ~labels:[ ("engine", "fast") ]
    "lipsin_local_deliveries_total"

let m_services =
  Obs.Counter.make ~help:"Service endpoints matched"
    ~labels:[ ("engine", "fast") ]
    "lipsin_service_matches_total"

let m_stitches =
  Obs.Counter.make ~help:"Partition stitch entries matched"
    ~labels:[ ("engine", "fast") ]
    "lipsin_stitch_matches_total"

let h_admitted =
  Obs.Histogram.make ~help:"Out-links admitted per forwarding decision"
    ~labels:[ ("engine", "fast") ]
    "lipsin_admitted_links"

(* The calling domain's cells, fetched once per compile: compiled
   engines are domain-local (each Net lives on one domain), so the
   cells never cross a domain boundary. *)
type meters = {
  md : int array;
  mfill : int array;
  mloop : int array;
  mbad : int array;
  mhits : int array;
  msusp : int array;
  mveto : int array;
  mlocal : int array;
  msvc : int array;
  mstitch : int array;
  hadm : Obs.Histogram.cells;
}

let make_meters () =
  {
    md = Obs.Counter.local m_decisions;
    mfill = Obs.Counter.local m_drop_fill;
    mloop = Obs.Counter.local m_drop_loop;
    mbad = Obs.Counter.local m_drop_bad_table;
    mhits = Obs.Counter.local m_loop_hits;
    msusp = Obs.Counter.local m_loop_suspected;
    mveto = Obs.Counter.local m_block_vetoes;
    mlocal = Obs.Counter.local m_local;
    msvc = Obs.Counter.local m_services;
    mstitch = Obs.Counter.local m_stitches;
    hadm = Obs.Histogram.local h_admitted;
  }

let bump c = Idx.set c 0 (Idx.get c 0 + 1)

type decision = {
  mutable forward : int array;
  mutable n_forward : int;
  mutable deliver_local : bool;
  mutable services : int array;
  mutable n_services : int;
  mutable stitches : int array;
  mutable n_stitch : int;
  mutable loop_suspected : bool;
  mutable drop : int;
  mutable tests : int;
}

let no_drop = 0
let drop_fill = 1
let drop_loop = 2
let drop_bad_table = 3

type t = {
  node : Graph.node;
  m : int;
  d : int;
  k_for_table : int array;  (* bits per LIT, per table — audit bound *)
  words : int;  (* 64-bit words per entry; >= m/64 + 1 so a kill bit exists *)
  stride : int;  (* bytes per entry = 8 * words *)
  data_len : int;  (* live filter bytes = ceil(m/8) *)
  fill_limit : float;
  fill_threshold : int;  (* max popcount passing the fill limit *)
  n_ports : int;
  out_links : Graph.link array;
  out_index : int array;  (* port -> dense index of the outgoing link *)
  up : bool array;
  phys : Bytes.t array;  (* per table: n_ports LIT entries, kill bit if down *)
  in_tags : Bytes.t array;  (* per table: n_ports incoming LITs *)
  blocks : Bytes.t array;  (* per table: concatenated veto patterns *)
  block_off : int array array;  (* per table: n_ports+1 prefix offsets *)
  n_virt : int;
  virt : Bytes.t array;  (* per table: n_virt virtual-entry LITs *)
  v_out_off : int array;  (* n_virt+1 prefix offsets into v_out_ports *)
  v_out_ports : int array;
  local : Bytes.t array;  (* per table: the node-local (slow path) LIT *)
  svc : Bytes.t array;  (* per table: one entry per service *)
  svc_names : string array;
  stitch : Bytes.t array;  (* per table: one entry per stitch point *)
  stitch_partition : int array;  (* payloads parallel to stitch entries *)
  stitch_next : int array;
  loop_prevention : bool;
  loop_cache : (string, int * int) Hashtbl.t;
  loop_queue : string Queue.t;
  loop_capacity : int;
  loop_ttl : int;
  mutable tick_count : int;
  zf : Bytes.t;  (* scratch: the current zFilter widened to stride bytes *)
  zlo : int array;  (* scratch: zf's even 4-byte groups as native ints *)
  zhi : int array;  (* scratch: zf's odd 4-byte groups as native ints *)
  seen : int array;  (* per-decision dedup stamps *)
  mutable gen : int;
  decision : decision;
  mutable blob_digest : int;  (* FNV over all blobs, recorded at compile *)
  obs : meters;
}

(* FNV-1a in native int arithmetic (the 64-bit basis truncated to the
   63-bit int range); the integrity fingerprint Analysis.Audit compares
   against to catch any post-compile byte corruption. *)
let fnv_offset = 0xcbf29ce484222
let fnv_prime = 0x100000001b3
let fnv_byte h b = (h lxor b) * fnv_prime

let fnv_bytes h blob =
  let h = ref h in
  for i = 0 to Bytes.length blob - 1 do
    h := fnv_byte !h (Char.code (Bytes.get blob i))
  done;
  !h

let fnv_int h i =
  let h = ref h in
  for shift = 0 to 7 do
    h := fnv_byte !h ((i lsr (8 * shift)) land 0xff)
  done;
  !h

let digest t =
  let h = ref fnv_offset in
  let ints = [ t.m; t.d; t.words; t.stride; t.n_ports; t.n_virt ] in
  List.iter (fun i -> h := fnv_int !h i) ints;
  Array.iter (fun k -> h := fnv_int !h k) t.k_for_table;
  let blobs tbl_array = Array.iter (fun b -> h := fnv_bytes !h b) tbl_array in
  blobs t.phys;
  blobs t.in_tags;
  blobs t.blocks;
  blobs t.virt;
  blobs t.local;
  blobs t.svc;
  blobs t.stitch;
  Array.iter (fun p -> h := fnv_int !h p) t.stitch_partition;
  Array.iter (fun p -> h := fnv_int !h p) t.stitch_next;
  !h land max_int

let compile engine =
  let st = Node_engine.state engine in
  let params = st.Node_engine.state_params in
  let m = params.Lit.m in
  let d = params.Lit.d in
  (* Always leave at least one spare bit per entry: bit m (the first
     padding bit) is the kill bit.  The scratch filter keeps its padding
     at zero, so an entry with the kill bit set can never be a subset of
     it — down links compile to never-matching entries and the hot loop
     needs no up/down branch. *)
  let words = (m / 64) + 1 in
  let stride = 8 * words in
  let data_len = (m + 7) / 8 in
  let ports = st.Node_engine.state_ports in
  let n_ports = Array.length ports in
  let entry_blob n = Bytes.make (n * stride) '\000' in
  let write blob slot vec = Bitvec.blit_into vec blob ~pos:(slot * stride) in
  let kill blob slot =
    let pos = (slot * stride) + (m lsr 3) in
    Bytes.set blob pos
      (Char.chr (Char.code (Bytes.get blob pos) lor (1 lsl (m land 7))))
  in
  let phys =
    Array.init d (fun tbl ->
        let blob = entry_blob n_ports in
        Array.iteri
          (fun p ps ->
            write blob p ps.Node_engine.port_tags.(tbl);
            if not ps.Node_engine.port_up then kill blob p)
          ports;
        blob)
  in
  let in_tags =
    Array.init d (fun tbl ->
        let blob = entry_blob n_ports in
        Array.iteri (fun p ps -> write blob p ps.Node_engine.port_in_tags.(tbl)) ports;
        blob)
  in
  let block_off =
    Array.init d (fun tbl ->
        let off = Array.make (n_ports + 1) 0 in
        for p = 0 to n_ports - 1 do
          let count =
            List.fold_left
              (fun acc entry -> if entry.(tbl) <> None then acc + 1 else acc)
              0 ports.(p).Node_engine.port_blocks
          in
          off.(p + 1) <- off.(p) + count
        done;
        off)
  in
  let blocks =
    Array.init d (fun tbl ->
        let off = block_off.(tbl) in
        let blob = entry_blob off.(n_ports) in
        Array.iteri
          (fun p ps ->
            let slot = ref off.(p) in
            List.iter
              (fun entry ->
                match entry.(tbl) with
                | Some pattern ->
                  write blob !slot pattern;
                  incr slot
                | None -> ())
              ps.Node_engine.port_blocks)
          ports;
        blob)
  in
  let port_of_link = Hashtbl.create (2 * n_ports) in
  Array.iteri
    (fun p ps ->
      Hashtbl.replace port_of_link ps.Node_engine.port_link.Graph.index p)
    ports;
  let virtuals = Array.of_list st.Node_engine.state_virtuals in
  let n_virt = Array.length virtuals in
  let virt =
    Array.init d (fun tbl ->
        let blob = entry_blob n_virt in
        Array.iteri (fun v (tags, _) -> write blob v tags.(tbl)) virtuals;
        blob)
  in
  let v_out_off = Array.make (n_virt + 1) 0 in
  Array.iteri
    (fun v (_, out) -> v_out_off.(v + 1) <- v_out_off.(v) + List.length out)
    virtuals;
  let v_out_ports = Array.make v_out_off.(n_virt) 0 in
  Array.iteri
    (fun v (_, out) ->
      List.iteri
        (fun j l -> v_out_ports.(v_out_off.(v) + j) <- Hashtbl.find port_of_link l.Graph.index)
        out)
    virtuals;
  let local =
    Array.init d (fun tbl ->
        let blob = entry_blob 1 in
        write blob 0 (Lit.tag st.Node_engine.state_local tbl);
        blob)
  in
  let services = Array.of_list st.Node_engine.state_services in
  let n_services = Array.length services in
  let svc =
    Array.init d (fun tbl ->
        let blob = entry_blob n_services in
        Array.iteri (fun s (tags, _) -> write blob s tags.(tbl)) services;
        blob)
  in
  let stitches = Array.of_list st.Node_engine.state_stitches in
  let n_stitch = Array.length stitches in
  let stitch =
    Array.init d (fun tbl ->
        let blob = entry_blob n_stitch in
        Array.iteri (fun s (tags, _, _) -> write blob s tags.(tbl)) stitches;
        blob)
  in
  let t =
  {
    node = st.Node_engine.state_node;
    m;
    d;
    k_for_table = Array.copy params.Lit.k_for_table;
    words;
    stride;
    data_len;
    fill_limit = st.Node_engine.state_fill_limit;
    fill_threshold =
      Zfilter.fill_threshold ~m ~limit:st.Node_engine.state_fill_limit;
    n_ports;
    out_links = Array.map (fun ps -> ps.Node_engine.port_link) ports;
    out_index =
      Array.map (fun ps -> ps.Node_engine.port_link.Graph.index) ports;
    up = Array.map (fun ps -> ps.Node_engine.port_up) ports;
    phys;
    in_tags;
    blocks;
    block_off;
    n_virt;
    virt;
    v_out_off;
    v_out_ports;
    local;
    svc;
    svc_names = Array.map snd services;
    stitch;
    stitch_partition = Array.map (fun (_, pid, _) -> pid) stitches;
    stitch_next = Array.map (fun (_, _, next) -> next) stitches;
    loop_prevention = st.Node_engine.state_loop_prevention;
    loop_cache = Hashtbl.create 64;
    loop_queue = Queue.create ();
    loop_capacity = st.Node_engine.state_loop_capacity;
    loop_ttl = st.Node_engine.state_loop_ttl;
    tick_count = st.Node_engine.state_tick;
    zf = Bytes.make stride '\000';
    zlo = Array.make words 0;
    zhi = Array.make words 0;
    seen = Array.make (max 1 n_ports) 0;
    gen = 0;
    decision =
      {
        forward = Array.make (max 1 n_ports) 0;
        n_forward = 0;
        deliver_local = false;
        services = Array.make (max 1 n_services) 0;
        n_services = 0;
        stitches = Array.make (max 1 n_stitch) 0;
        n_stitch = 0;
        loop_suspected = false;
        drop = no_drop;
        tests = 0;
      };
    blob_digest = 0;
    obs = make_meters ();
  }
  in
  t.blob_digest <- digest t;
  t

let node t = t.node
let table_count t = t.d
let port_count t = t.n_ports
let out_link t p = t.out_links.(p)

(* Reuse-friendly scalar views of a port for zero-alloc consumers
   (Arena's recycled delivery loop): the dense link index and the
   destination node without touching the link record through a list. *)
let[@lipsin.noalloc] out_index t p = Array.get t.out_index p

let[@lipsin.noalloc] out_dst t p =
  (Array.get t.out_links p).Graph.dst
let tick t = t.tick_count <- t.tick_count + 1

(* The same FIFO + tick-TTL cache as Node_engine's, entry for entry, so
   the two engines drop the same packets given the same history. *)

let loop_cache_add t key in_index =
  if not (Hashtbl.mem t.loop_cache key) then begin
    if Queue.length t.loop_queue >= t.loop_capacity then begin
      let victim = Queue.take t.loop_queue in
      Hashtbl.remove t.loop_cache victim
    end;
    Hashtbl.replace t.loop_cache key (in_index, t.tick_count);
    Queue.add key t.loop_queue
  end

let loop_cache_find t key =
  match Hashtbl.find_opt t.loop_cache key with
  | Some (in_index, inserted_at) when t.tick_count - inserted_at <= t.loop_ttl ->
    Some in_index
  | Some _ ->
    Hashtbl.remove t.loop_cache key;
    None
  | None -> None

(* Algorithm 1 on one padded entry: every word of the LIT must be
   covered by the corresponding zFilter word.  Native-int 4-byte groups
   ([words] counts 8-byte row words, so [2 * words] groups): the int64
   reads this replaced boxed one block per load on non-flambda
   ocamlopt, the allocation the soak gate caught.  The zFilter side
   arrives pre-hoisted into the [zlo]/[zhi] scratch arrays ([decide]
   fills them once per call), so each group costs one bytes read and
   one array load instead of two bytes reads. *)
let[@lipsin.noalloc] subset_entry blob ~off zlo zhi ~words =
  let ok = ref true in
  let w = ref 0 in
  while !ok && !w < words do
    let lo = Idx.bget_u32 blob (off + (!w lsl 3)) in
    if lo land Idx.get zlo !w <> lo then ok := false
    else begin
      (* Only read the odd group once the even one is covered: most
         non-matching entries miss on group 0, so the second bytes read
         never happens on the reject path. *)
      let hi = Idx.bget_u32 blob (off + (!w lsl 3) + 4) in
      if hi land Idx.get zhi !w <> hi then ok := false
    end;
    incr w
  done;
  !ok

let[@lipsin.noalloc] [@lipsin.inbounds] decide t ~table ~zfilter ~in_link_index =
  let obs = Obs.enabled () in
  if obs then bump t.obs.md;
  let d = t.decision in
  d.n_forward <- 0;
  d.deliver_local <- false;
  d.n_services <- 0;
  d.n_stitch <- 0;
  d.loop_suspected <- false;
  d.drop <- no_drop;
  d.tests <- 0;
  if table < 0 || table >= t.d then begin
    d.drop <- drop_bad_table;
    if obs then bump t.obs.mbad;
    d
  end
  else if Zfilter.m zfilter <> t.m then
    invalid_arg "Fastpath.decide: zFilter width mismatch"
  else begin
    Bitvec.blit_into (Zfilter.to_bitvec zfilter) t.zf ~pos:0;
    let zf = t.zf in
    let words = t.words in
    let zlo = t.zlo in
    let zhi = t.zhi in
    (* One pass hoists the zFilter's 4-byte groups into native-int
       scratch for the subset kernels below and counts the set bits on
       the way: the padded tail of [zf] is all-zero, so the sum equals
       [Zfilter.popcount zfilter] and decides the fill gate with the
       same integer stand-in for [within_fill_limit] (the threshold was
       precomputed at compile with the same float comparison). *)
    let pop = ref 0 in
    for w = 0 to words - 1 do
      let lo = Idx.bget_u32 zf (w lsl 3) in
      let hi = Idx.bget_u32 zf ((w lsl 3) + 4) in
      Idx.set zlo w lo;
      Idx.set zhi w hi;
      pop := !pop + Bitvec.popcount56 lo + Bitvec.popcount56 hi
    done;
    if !pop > t.fill_threshold then begin
      d.drop <- drop_fill;
      if obs then bump t.obs.mfill;
      d
    end
    else begin
      let stride = t.stride in
      if t.loop_prevention then
        (begin
           let key = Bytes.sub_string zf 0 t.data_len in
           (match loop_cache_find t key with
           | Some cached ->
             if obs then bump t.obs.mhits;
             if in_link_index >= 0 && cached <> in_link_index then
               d.drop <- drop_loop
           | None -> ());
           if d.drop = no_drop then begin
             let risky = ref false in
             let itab = Idx.get t.in_tags table in
             for p = 0 to t.n_ports - 1 do
               if Idx.get t.out_index p <> in_link_index then
                 if subset_entry itab ~off:(p * stride) zlo zhi ~words then
                   risky := true
             done;
             if !risky then begin
               d.loop_suspected <- true;
               if obs then bump t.obs.msusp;
               if in_link_index >= 0 then loop_cache_add t key in_link_index
             end
           end
         end
        [@lipsin.allow_alloc
          "loop-prevention cache key (5-word Bytes.sub_string) and FIFO \
           bookkeeping; engines benchmarked for zero allocation run with \
           loop_prevention off"]);
      if d.drop <> no_drop then begin
        if obs then bump t.obs.mloop;
        d
      end
      else begin
        t.gen <- t.gen + 1;
        let gen = t.gen in
        d.tests <- t.n_ports + t.n_virt;
        let ptab = Idx.get t.phys table in
        let btab = Idx.get t.blocks table in
        let boff = Idx.get t.block_off table in
        for p = 0 to t.n_ports - 1 do
          if subset_entry ptab ~off:(p * stride) zlo zhi ~words then begin
            let blocked = ref false in
            for b = Idx.get boff p to Idx.get boff (p + 1) - 1 do
              if
                (subset_entry btab ~off:(b * stride) zlo zhi ~words
                [@lipsin.allow_unchecked
                  "audit invariant: block_off rows are monotone offsets into                  the block blob (Audit checks offsets and blob length =                  block_off.(n_ports) * stride), so b * stride stays inside                  btab; the offsets live in array content, outside the                  affine domain"])
              then blocked := true
            done;
            if obs && !blocked then bump t.obs.mveto;
            if (not !blocked) && Idx.get t.seen p <> gen then begin
              Idx.set t.seen p gen;
              (Idx.set d.forward d.n_forward p
              [@lipsin.allow_unchecked
                "capacity invariant: forward holds max 1 n_ports entries                (compile) and the seen generation stamp admits each port at                most once per decide, so n_forward < n_ports here"]);
              d.n_forward <- d.n_forward + 1
            end
          end
        done;
        let vtab = Idx.get t.virt table in
        for v = 0 to t.n_virt - 1 do
          if subset_entry vtab ~off:(v * stride) zlo zhi ~words then
            for j = Idx.get t.v_out_off v to Idx.get t.v_out_off (v + 1) - 1 do
              let p =
                (Idx.get t.v_out_ports j
                [@lipsin.allow_unchecked
                  "audit invariant: v_out_off is a monotone offset table with                  v_out_off.(n_virt) = length v_out_ports (compile), so j                  stays inside v_out_ports; offsets live in array content,                  outside the affine domain"])
              in
              if
                (Idx.get t.up p
                [@lipsin.allow_unchecked
                  "compile invariant: v_out_ports entries are valid port                  indices < n_ports by construction; the port value is array                  content, outside the affine domain"])
                && (Idx.get t.seen p
                   [@lipsin.allow_unchecked
                     "compile invariant: v_out_ports entries are valid port                     indices < n_ports by construction"])
                   <> gen
              then begin
                (Idx.set t.seen p gen
                [@lipsin.allow_unchecked
                  "compile invariant: v_out_ports entries are valid port                  indices < n_ports by construction"]);
                (Idx.set d.forward d.n_forward p
                [@lipsin.allow_unchecked
                  "capacity invariant: forward holds max 1 n_ports entries                  and the seen stamp admits each port at most once per                  decide"]);
                d.n_forward <- d.n_forward + 1
              end
            done
        done;
        d.deliver_local <- subset_entry (Idx.get t.local table) ~off:0 zlo zhi ~words;
        let stab = Idx.get t.svc table in
        for s = 0 to Array.length t.svc_names - 1 do
          if subset_entry stab ~off:(s * stride) zlo zhi ~words then begin
            (Idx.set d.services d.n_services s
            [@lipsin.allow_unchecked
              "capacity invariant: services holds max 1 (length svc_names)              entries (compile) and s ranges over svc_names, each matched              at most once"]);
            d.n_services <- d.n_services + 1
          end
        done;
        let xtab = Idx.get t.stitch table in
        for s = 0 to Array.length t.stitch_next - 1 do
          if subset_entry xtab ~off:(s * stride) zlo zhi ~words then begin
            (Idx.set d.stitches d.n_stitch s
            [@lipsin.allow_unchecked
              "capacity invariant: stitches holds max 1 (length stitch_next)              entries (compile) and s ranges over stitch_next, each matched              at most once"]);
            d.n_stitch <- d.n_stitch + 1
          end
        done;
        if obs then begin
          Obs.Histogram.record_int t.obs.hadm d.n_forward;
          if d.deliver_local then bump t.obs.mlocal;
          Idx.set t.obs.msvc 0 (Idx.get t.obs.msvc 0 + d.n_services);
          Idx.set t.obs.mstitch 0 (Idx.get t.obs.mstitch 0 + d.n_stitch)
        end;
        d
      end
    end
  end

let[@lipsin.noalloc] [@lipsin.inbounds] decide_batch t ~table inputs ~f =
  (* for-loop rather than [Array.iteri]: the iteration closure would be
     the only allocation in an otherwise alloc-free batch. *)
  for i = 0 to Array.length inputs - 1 do
    let zfilter, in_link_index = Idx.get inputs i in
    (f i (decide t ~table ~zfilter ~in_link_index)
    [@lipsin.allow_alloc "sink callback supplied by the caller"])
  done

let drop_reason d =
  if d.drop = no_drop then None
  else if d.drop = drop_fill then Some Node_engine.Fill_limit_exceeded
  else if d.drop = drop_loop then Some Node_engine.Loop_detected
  else Some Node_engine.Bad_table

let forward_links t d = List.init d.n_forward (fun i -> t.out_links.(d.forward.(i)))
let service_names t d = List.init d.n_services (fun i -> t.svc_names.(d.services.(i)))

let stitch_targets t d =
  List.init d.n_stitch (fun i ->
      let s = d.stitches.(i) in
      (t.stitch_partition.(s), t.stitch_next.(s)))

let verdict t d =
  {
    Node_engine.forward_on = forward_links t d;
    deliver_local = d.deliver_local;
    services_matched = service_names t d;
    stitches_matched = stitch_targets t d;
    loop_suspected = d.loop_suspected;
    drop = drop_reason d;
    false_positive_tests = d.tests;
  }

type view = {
  view_m : int;
  view_d : int;
  view_k_for_table : int array;
  view_words : int;
  view_stride : int;
  view_data_len : int;
  view_n_ports : int;
  view_up : bool array;
  view_out_index : int array;
  view_phys : Bytes.t array;
  view_in_tags : Bytes.t array;
  view_blocks : Bytes.t array;
  view_block_off : int array array;
  view_n_virt : int;
  view_virt : Bytes.t array;
  view_v_out_off : int array;
  view_v_out_ports : int array;
  view_local : Bytes.t array;
  view_svc : Bytes.t array;
  view_svc_names : string array;
  view_stitch : Bytes.t array;
  view_stitch_partition : int array;
  view_stitch_next : int array;
  view_forward_cap : int;
  view_services_cap : int;
  view_stitch_cap : int;
  view_seen_cap : int;
  view_digest : int;
}

let view t =
  {
    view_m = t.m;
    view_d = t.d;
    view_k_for_table = t.k_for_table;
    view_words = t.words;
    view_stride = t.stride;
    view_data_len = t.data_len;
    view_n_ports = t.n_ports;
    view_up = t.up;
    view_out_index = t.out_index;
    view_phys = t.phys;
    view_in_tags = t.in_tags;
    view_blocks = t.blocks;
    view_block_off = t.block_off;
    view_n_virt = t.n_virt;
    view_virt = t.virt;
    view_v_out_off = t.v_out_off;
    view_v_out_ports = t.v_out_ports;
    view_local = t.local;
    view_svc = t.svc;
    view_svc_names = t.svc_names;
    view_stitch = t.stitch;
    view_stitch_partition = t.stitch_partition;
    view_stitch_next = t.stitch_next;
    view_forward_cap = Array.length t.decision.forward;
    view_services_cap = Array.length t.decision.services;
    view_stitch_cap = Array.length t.decision.stitches;
    view_seen_cap = Array.length t.seen;
    view_digest = t.blob_digest;
  }

let table_bytes t =
  let total = ref 0 in
  for tbl = 0 to t.d - 1 do
    total :=
      !total
      + t.stride
        * ((2 * t.n_ports) (* phys + in_tags *)
          + t.block_off.(tbl).(t.n_ports)
          + t.n_virt + 1 (* local *) + Array.length t.svc_names
          + Array.length t.stitch_next)
  done;
  !total
