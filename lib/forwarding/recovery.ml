module Bitvec = Lipsin_bitvec.Bitvec
module Zfilter = Lipsin_bloom.Zfilter
module Graph = Lipsin_topology.Graph
module Assignment = Lipsin_core.Assignment
module Obs = Lipsin_obs.Obs

type link = Graph.link

(* Telemetry: recovery activations are rare control-plane events, so
   plain Obs calls (no cached cells) are fine here. *)
let m_vlid_activations =
  Obs.Counter.make ~help:"VLId fast-recovery activations installed"
    ~labels:[ ("scheme", "vlid") ]
    "lipsin_recovery_activations_total"

let m_node_activations =
  Obs.Counter.make ~help:"Node-failure recovery activations installed"
    ~labels:[ ("scheme", "node") ]
    "lipsin_recovery_activations_total"

let m_activation_failures =
  Obs.Counter.make ~help:"Recovery activations refused (bridge / no detour)"
    "lipsin_recovery_failures_total"

let h_patch_fill =
  Obs.Histogram.make
    ~help:"Fill factor (percent) of zFilters after a rewrite patch"
    "lipsin_recovery_patch_fill_percent"

(* BFS from src to dst skipping the failed physical link in both
   directions. *)
let backup_path g ~link =
  let avoid = link.Graph.index in
  let avoid_rev = (Graph.reverse_link g link).Graph.index in
  let n = Graph.node_count g in
  let parent_link = Array.make n None in
  let visited = Array.make n false in
  let src = link.Graph.src and dst = link.Graph.dst in
  visited.(src) <- true;
  let queue = Queue.create () in
  Queue.add src queue;
  let finished = ref false in
  while (not !finished) && not (Queue.is_empty queue) do
    let u = Queue.take queue in
    let try_link l =
      let skip = l.Graph.index = avoid || l.Graph.index = avoid_rev in
      let v = l.Graph.dst in
      if (not skip) && not visited.(v) then begin
        visited.(v) <- true;
        parent_link.(v) <- Some l;
        if v = dst then finished := true;
        Queue.add v queue
      end
    in
    List.iter try_link (Graph.out_links g u)
  done;
  if not visited.(dst) then None
  else begin
    let rec climb v acc =
      match parent_link.(v) with
      | None -> acc
      | Some l -> climb l.Graph.src (l :: acc)
    in
    Some (climb dst [])
  end

let is_bridge g ~link =
  match backup_path g ~link with None -> true | Some _ -> false

let trace_activation ~node path =
  if Obs.Trace.recording () then
    Obs.Trace.record (Obs.Trace.local ()) ~packet:(-1) ~node
      ~in_link:(-1) ~kind:Obs.Trace.Recovery_activation
      ~out_links:(Array.of_list (List.map (fun l -> l.Graph.index) path))
      ~false_positive:false ~loop_suspected:false ~deliver_local:false
      ~ttl_expired:0

let vlid_activate assignment ~engine_of ~failed =
  let g = Assignment.graph assignment in
  match backup_path g ~link:failed with
  | None ->
    Obs.Counter.incr m_activation_failures;
    Error "no backup path: failed link is a bridge"
  | Some path ->
    Obs.Counter.incr m_vlid_activations;
    trace_activation ~node:failed.Graph.src path;
    let identity = Assignment.lit assignment failed in
    (* The detecting node stops using the physical port... *)
    Node_engine.fail_link (engine_of failed.Graph.src) failed;
    (* ...and the activation message installs the failed link's
       identity as a virtual entry pointing at the next backup hop, at
       every node along the path. *)
    List.iter
      (fun l ->
        Node_engine.install_virtual (engine_of l.Graph.src) identity
          ~out_links:[ l ])
      path;
    Ok ()

let vlid_deactivate assignment ~engine_of ~failed =
  let g = Assignment.graph assignment in
  let identity = Assignment.lit assignment failed in
  Node_engine.restore_link (engine_of failed.Graph.src) failed;
  match backup_path g ~link:failed with
  | None -> ()
  | Some path ->
    List.iter
      (fun l -> Node_engine.remove_virtual (engine_of l.Graph.src) identity)
      path

let zfilter_patch assignment ~table ~backup =
  let params = Assignment.params assignment in
  let patch = Bitvec.create params.Lipsin_bloom.Lit.m in
  List.iter
    (fun l -> Bitvec.logor_into ~dst:patch (Assignment.tag assignment l ~table))
    backup;
  patch

let apply_patch zfilter patch =
  let fresh = Zfilter.copy zfilter in
  Zfilter.add fresh patch;
  Obs.Histogram.observe h_patch_fill (100.0 *. Zfilter.fill_factor fresh);
  fresh

(* BFS path u -> w that never touches node [banned]. *)
let path_avoiding_node g ~src ~dst ~banned =
  if src = banned || dst = banned then None
  else begin
    let n = Graph.node_count g in
    let parent_link = Array.make n None in
    let visited = Array.make n false in
    visited.(src) <- true;
    let queue = Queue.create () in
    Queue.add src queue;
    let found = ref (src = dst) in
    while (not !found) && not (Queue.is_empty queue) do
      let u = Queue.take queue in
      List.iter
        (fun l ->
          let v = l.Graph.dst in
          if v <> banned && not visited.(v) then begin
            visited.(v) <- true;
            parent_link.(v) <- Some l;
            if v = dst then found := true;
            Queue.add v queue
          end)
        (Graph.out_links g u)
    done;
    if not visited.(dst) then None
    else begin
      let rec climb v acc =
        match parent_link.(v) with
        | None -> acc
        | Some l -> climb l.Graph.src (l :: acc)
      in
      Some (climb dst [])
    end
  end

let node_backup_paths g ~failed =
  let neighbors = Graph.neighbors g failed in
  List.concat_map
    (fun u ->
      List.filter_map
        (fun w ->
          if u = w then None
          else
            match Graph.find_link g ~src:failed ~dst:w with
            | None -> None
            | Some out_link -> (
              match path_avoiding_node g ~src:u ~dst:w ~banned:failed with
              | Some detour -> Some (out_link, detour)
              | None -> None))
        neighbors)
    neighbors

let node_failure_activate assignment ~engine_of ~failed =
  let g = Assignment.graph assignment in
  let neighbors = Graph.neighbors g failed in
  if neighbors = [] then begin
    Obs.Counter.incr m_activation_failures;
    Error "failed node has no neighbours"
  end
  else begin
    (* Stop feeding the dead node. *)
    List.iter
      (fun u ->
        match Graph.find_link g ~src:u ~dst:failed with
        | Some l -> Node_engine.fail_link (engine_of u) l
        | None -> ())
      neighbors;
    let pairs = node_backup_paths g ~failed in
    if pairs = [] then begin
      Obs.Counter.incr m_activation_failures;
      Error "no transit pair survives without the node"
    end
    else begin
      Obs.Counter.incr m_node_activations;
      trace_activation ~node:failed
        (List.concat_map (fun (_, detour) -> detour) pairs);
      List.iter
        (fun (out_link, detour) ->
          (* The detour impersonates the dead node's outgoing link so
             in-flight zFilters (which contain f->w) keep working. *)
          let identity = Assignment.lit assignment out_link in
          List.iter
            (fun l ->
              Node_engine.install_virtual (engine_of l.Graph.src) identity
                ~out_links:[ l ])
            detour)
        pairs;
      Ok (List.length pairs)
    end
  end

let node_failure_deactivate assignment ~engine_of ~failed =
  let g = Assignment.graph assignment in
  List.iter
    (fun u ->
      match Graph.find_link g ~src:u ~dst:failed with
      | Some l -> Node_engine.restore_link (engine_of u) l
      | None -> ())
    (Graph.neighbors g failed);
  List.iter
    (fun (out_link, detour) ->
      let identity = Assignment.lit assignment out_link in
      List.iter
        (fun l -> Node_engine.remove_virtual (engine_of l.Graph.src) identity)
        detour)
    (node_backup_paths g ~failed)
