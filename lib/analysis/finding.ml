type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
}

let make ~file ~line ~col ~rule message = { file; line; col; rule; message }

let compare_locs a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let to_human f =
  Printf.sprintf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.message

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json f =
  Printf.sprintf
    "{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"rule\":\"%s\",\"message\":\"%s\"}"
    (json_escape f.file) f.line f.col (json_escape f.rule) (json_escape f.message)

let report_human findings =
  String.concat ""
    (List.map (fun f -> to_human f ^ "\n") findings)
  ^
  match List.length findings with
  | 0 -> "no findings\n"
  | 1 -> "1 finding\n"
  | n -> Printf.sprintf "%d findings\n" n

let report_json findings =
  match findings with
  | [] -> "{\"findings\": [],\n \"count\": 0}\n"
  | _ :: _ ->
    let body = String.concat ",\n  " (List.map to_json findings) in
    Printf.sprintf "{\"findings\": [\n  %s\n ],\n \"count\": %d}\n" body
      (List.length findings)
