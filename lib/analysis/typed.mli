(** Shared machinery for the typed-tree passes: .cmt loading, in-memory
    typing for test fixtures, path normalisation, toplevel binding and
    module-alias extraction, and attribute lookup. *)

type unit_info = {
  unit_name : string;  (** short module name, e.g. "Fastpath" *)
  unit_source : string;  (** source path recorded in the cmt *)
  unit_str : Typedtree.structure;
}

val short_name : string -> string
(** Strip dune's wrapped-library mangling: ["Lib__Mod"] -> ["Mod"]. *)

val load_cmt : string -> unit_info option
(** Read one .cmt file; [None] if unreadable or not an implementation. *)

val scan : string list -> string list
(** All .cmt files under the given roots (descends into _build). *)

val load_units : string list -> unit_info list
(** [load_cmt] over [scan]. *)

val type_impl : name:string -> string -> unit_info
(** Parse and type a source fragment against the initial (stdlib-only)
    environment; used by the test fixtures.  Raises on type errors. *)

val flatten_path : Path.t -> string list

val key_of_segments :
  aliases:(string, string list) Hashtbl.t -> string list -> string
(** [key_of_path] on an already-flattened segment list (used when the
    segments come from somewhere other than a [Path.t], e.g. a type
    constructor name). *)

val key_of_path : aliases:(string, string list) Hashtbl.t -> Path.t -> string
(** Canonical dotted key for a path: segments de-mangled, leading
    [Stdlib] / dune wrapper modules dropped, local module aliases
    substituted.  E.g. "Stdlib.incr" -> "incr", a local [module B =
    Lipsin_x.Y] makes "B.f" -> "Y.f". *)

type binding = {
  b_key : string;  (** e.g. "Fastpath.decide", "Obs.Counter.add" *)
  b_unit : unit_info;
  b_vb : Typedtree.value_binding;
  b_aliases : (string, string list) Hashtbl.t;
}

type index = {
  idx_bindings : (string, binding) Hashtbl.t;
  idx_units : unit_info list;
}

val index_units : unit_info list -> index
(** Toplevel (and nested-structure) value bindings of every unit,
    keyed "Unit.name" / "Unit.Sub.name", plus per-unit alias tables. *)

val find_binding : index -> string -> binding option

val resolve_binding : index -> string -> binding option
(** [find_binding], falling back to the unique same-unit binding with
    the same trailing name — resolves a bare name used inside a nested
    module ("Obs.bucket_slow" -> "Obs.Histogram.bucket_slow"). *)

val has_attr : string -> Parsetree.attributes -> bool
val attr_payload_string : string -> Parsetree.attributes -> string option

val noalloc_attr : string
val allow_alloc_attr : string
val allow_race_attr : string
val inbounds_attr : string
val allow_unchecked_attr : string

val finding_of_loc :
  file:string -> rule:string -> Location.t -> string -> Finding.t

val pat_idents : 'k Typedtree.general_pattern -> Ident.t list
