(** Semantic invariant auditor for compiled fast-path state.

    The compiled engine ({!Lipsin_forwarding.Fastpath}) trades safety
    for speed: its hot loop assumes a [stride = 8 * (m/64 + 1)]-byte
    entry layout, zero padding beyond bit [m], a kill bit exactly at
    position [m] on down links, LITs with exactly [k] live bits, and
    in-bounds indirection tables.  None of that is visible to the type
    system, and in-packet-Bloom-filter systems historically fail by
    silent encoding drift rather than algorithmic error — so this module
    re-derives every invariant structurally from the blob bytes.

    Checks, by [check] name:
    - ["geometry"] — [words], [stride], [data_len] and [k] consistent
      with [m] and [d];
    - ["d-consistency"] — every per-table array has one blob per
      candidate table;
    - ["blob-size"] — each blob is exactly [entries * stride] bytes;
    - ["offsets"] — block and virtual-egress prefix tables start at 0
      and are monotone, and the flattened arrays match their totals;
    - ["padding"] — no stray bit at or beyond position [m] (the scratch
      filter keeps padding zero, so a stray bit could silently veto
      matches);
    - ["kill-bit"] — bit [m] is set on a physical entry iff its port is
      down, and never on any other entry kind;
    - ["popcount"] — physical, incoming, local and service entries carry
      exactly [k_for_table.(i)] live bits (virtual entries are ORs of
      whole trees and block entries arbitrary veto patterns, so only the
      layout checks apply to them);
    - ["port-bounds"] — virtual egress ports and per-port metadata
      arrays stay inside [\[0, n_ports)];
    - ["capacity"] — the preallocated decision buffers hold the
      worst-case decision;
    - ["digest"] — the FNV-1a fingerprint recorded at compile time still
      matches the blob bytes.  This catches {e any} single-byte
      corruption, including flips inside virtual or block live bits that
      the structural checks cannot distinguish from a legitimate tree.

    {!audit_bitsliced} runs the same row checks against the bit-sliced
    engine ({!Lipsin_forwarding.Bitsliced}) — its row blobs follow the
    identical compile contract — and then verifies the transposed
    layout on top:
    - ["col-size"] — slice dimensions (entries, column blocks, plane
      sub-blocks) and blob/array lengths agree with the row geometry;
    - ["col-mirror"] — every canonical column word is the exact
      transpose of the row blob;
    - ["kill-column"] — transposed, column [m] of a physical slice is
      exactly the set of down ports;
    - ["col-used"] — the used map marks precisely the nonzero columns;
    - ["col-active"] — the active position list matches the used map;
    - ["col-valid"] — the per-sub-block validity masks cover exactly
      the slots below the entry count;
    - ["col-plane"] — every derived sweep-plane word is the OR of the
      canonical columns its group value leaves uncovered.

    Run it offline with [lipsin_lint --audit], after every compile in
    debug runs by setting [LIPSIN_FASTPATH_AUDIT=1] (see
    {!Lipsin_sim.Net.fastpath} and [Net.bitsliced]), or directly from
    tests. *)

type violation = {
  check : string;  (** Which invariant family failed (names above). *)
  table : int;  (** Candidate table index, or [-1] if table-independent. *)
  entry : string;
      (** Entry kind: ["phys"], ["in"], ["block"], ["virt"], ["local"],
          ["svc"], or [""] if not entry-specific. *)
  index : int;  (** Entry slot within the blob, or [-1]. *)
  offset : int;
      (** Byte offset of the finding inside the flagged blob (word
          offset for plane findings), or [-1] when the finding is not
          byte-addressable.  Together with [table] this makes layout
          findings on multi-table blobs actionable. *)
  detail : string;  (** Human-readable explanation. *)
}

val audit : ?check_digest:bool -> Lipsin_forwarding.Fastpath.t -> violation list
(** Runs every check and returns all violations (empty = sound).
    [check_digest] (default [true]) additionally compares the recorded
    compile-time digest against the current blob bytes; pass [false] to
    exercise the purely structural checks. *)

val audit_ok : ?check_digest:bool -> Lipsin_forwarding.Fastpath.t -> bool
(** [audit] returned no violation. *)

val audit_bitsliced :
  ?check_digest:bool -> Lipsin_forwarding.Bitsliced.t -> violation list
(** {!audit}'s row checks plus the transposed-layout checks above, for
    the bit-sliced engine. *)

val audit_bitsliced_ok :
  ?check_digest:bool -> Lipsin_forwarding.Bitsliced.t -> bool
(** [audit_bitsliced] returned no violation. *)

val to_string : violation -> string
val pp : Format.formatter -> violation -> unit
