(** The lint driver: suppressions, parsing, rule orchestration.

    Feed it an in-memory file set (path, contents) — the CLI loads one
    from disk with {!load_paths}; tests hand-craft theirs.  Dune files
    in the set supply the library graph the [domain-safety] rule scopes
    itself with.

    {2 Suppression}

    A comment anywhere in a file of the form
    [(* lint: allow <rule> — justification *)]
    suppresses [<rule>] for that whole file.  The justification text is
    free-form but expected by convention; the scan is textual, so the
    comment works even in files the parser rejects. *)

val parse_error_rule : string
(** The pseudo-rule name (["parse-error"]) attached to files the
    compiler front-end cannot parse. *)

val suppressions : string -> string list
(** Rule names suppressed by [lint: allow] comments in the given source
    text, in order of appearance. *)

val default_domain_root : string
(** ["lipsin_sim"] — the library owning the Domain-parallel delivery
    path, the root of the [domain-safety] reachability scope. *)

val default_rules :
  ?domain_root:string -> dune_files:(string * string) list -> unit -> Rules.t list
(** The four project rules, with [domain-safety] scoped to the library
    closure of [domain_root] in the given dune files. *)

val rule_names : ?domain_root:string -> unit -> string list

val run :
  ?domain_root:string ->
  ?rules:Rules.t list ->
  files:(string * string) list ->
  unit ->
  Finding.t list
(** Lints every [.ml] entry of [files]: parses (emitting a
    {!parse_error_rule} finding on failure), applies each rule in scope,
    filters suppressed findings, and returns the rest sorted by
    location.  [rules] overrides the {!default_rules}. *)

val load_paths : string list -> (string * string) list
(** Recursively collects [.ml], [.mli] and [dune] files under the given
    roots (skipping [_build] and dot-directories) and reads them. *)
