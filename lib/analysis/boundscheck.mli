(** Index-bounds certifier over typed trees (.cmt files).

    Discharges an in-bounds obligation for every index expression
    reachable from a [@lipsin.inbounds] root, by abstract interpretation
    in a domain of linear (degree <= 2) integer inequalities: control
    flow contributes comparison facts, let-bindings contribute
    substitutions or shape facts (lsr / land / mod / min), and the blob
    layout invariants the Audit pass enforces at runtime (stride = 8 *
    words, plane widths, table counts) are trusted as environment facts
    keyed by record type.  Writes invalidate facts sign-aware, so
    monotone counters keep their lower bounds across loop bodies.

    Unprovable accesses are findings with a witness access path;
    suppression is [@lipsin.allow_unchecked "reason"] (a reason string
    is mandatory, at expression or binding granularity).  Any binding
    that uses unsafe accessors without being reachable from a root is
    itself a finding, so the certificate covers every unchecked access
    in the tree, not just the annotated ones. *)

val rule : string

type stats = {
  st_roots : string list;  (** [@lipsin.inbounds] roots, sorted *)
  st_obligations : int;  (** index obligations encountered *)
  st_proved : int;
  st_suppressed : int;  (** discharged by a reasoned suppression *)
}

val run : roots:string list -> stats * Finding.t list
(** Load every .cmt under [roots]; returns proof statistics and the
    findings (empty when every obligation is proved or justified). *)

val run_units : Typed.unit_info list -> stats * Finding.t list
(** Same, over already-loaded units (used by tests with in-memory
    fixtures). *)
