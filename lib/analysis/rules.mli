(** The project-invariant lint rules.

    Each rule is a syntactic check over the compiler-libs Parsetree —
    no type inference — tuned so that a finding is almost always a real
    hazard in this codebase:

    - {b no-poly-compare}: in any Bitvec/Zfilter-bearing module (a file
      that mentions either module, or lives under [lib/bitvec] /
      [lib/bloom]), bans [Stdlib.compare], bare [compare] (unless the
      file defines its own), [Hashtbl.hash], and [=]/[<>] applied to an
      expression that syntactically yields a [Bitvec.t]/[Zfilter.t].
      Polymorphic structural operations read the Bytes representation
      and silently diverge from [Bitvec.equal] semantics the day the
      representation grows a cache field.
    - {b domain-safety}: in modules reachable from the Domain-parallel
      delivery path (dune library closure), bans top-level [ref] /
      [Hashtbl.create] / [Buffer.create] / [Queue.create] evaluated at
      module initialization unless the binding mentions
      [Atomic]/[Mutex]/[Domain], plus any use of the global [Random]
      state ([Random.State] is exempt).
    - {b no-debug-io}: bans stdout printers ([print_endline],
      [Printf.printf], [Format.printf], ...) anywhere under [lib/].
    - {b mli-coverage}: every [lib/**/*.ml] must have a matching
      [.mli].

    Suppression and orchestration live in {!Lint}. *)

type source = { src_path : string; src_text : string }

type project = {
  proj_paths : string list;
      (** Every path the driver saw, including [.mli] and dune files. *)
  proj_sources : source list;  (** The [.ml] sources. *)
}

type t =
  | File_rule of {
      name : string;
      describe : string;
      applies : source -> bool;
      check : source -> Parsetree.structure -> Finding.t list;
    }
  | Project_rule of {
      name : string;
      describe : string;
      check : project -> Finding.t list;
    }

val name : t -> string
val describe : t -> string

val no_poly_compare : unit -> t
val domain_safety : in_scope:(string -> bool) -> t
(** [in_scope path] decides reachability; the driver derives it from the
    dune dependency graph via {!Deps.reachable_dirs}. *)

val no_debug_io : unit -> t
val mli_coverage : unit -> t
