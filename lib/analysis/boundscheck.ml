(* Boundscheck: interval/affine abstract interpretation over the typed
   tree, discharging an in-bounds obligation for every index expression
   reachable from a [@lipsin.inbounds] root.

   The abstract domain is conjunctions of integer-linear inequalities
   [L >= 0] where L is a degree-<=2 polynomial over symbolic values:
   function parameters, let-bound values, loop counters, record fields
   (["t.stride"]), array/bytes lengths (["len:t.zf"]) and array element
   values (["t.block_off[p]"]).  Facts come from four places:

   - control flow: comparison guards, for-loop ranges, while conditions
     and aborting branches (raise/invalid_arg) refine the environment
     along the surviving path;
   - let shapes: [let words = len lsr 3] and friends generate the
     scaled facts the shift/div/mask semantics justify;
   - blob-layout invariants that Analysis.Audit already enforces at
     runtime (stride = 8*words, per-table blob length = n_ports*stride,
     plane widths, ...), trusted as environment facts and instantiated
     when a field of an engine record is touched;
   - toplevel constant arrays ([let small = Array.init 1025 ...]).

   Mutation is handled by sign-aware fact stripping: a write to a
   symbol kills every strippable fact mentioning it, except that a
   provably non-decreasing write ([incr w]) keeps lower bounds and a
   non-increasing one keeps upper bounds — which is exactly the
   monotone-counter invariant the while-loop kernels need.  Loop bodies
   are analyzed against a pre-stripped environment so facts from before
   the loop cannot leak across iterations.

   The entailment check eliminates one monomial at a time by
   substituting a bound from a matching fact (products additionally
   need the cofactor proved non-negative), with an integrality bonus of
   [|a| - 1] per elimination so ceiling facts like [8*len >= bits,
   bits >= 1 |- len >= 1] go through.  Anything unprovable is reported
   with a witness access path, suppressible only via
   [@lipsin.allow_unchecked "reason"]. *)

let rule = "boundscheck"

module SS = Set.Make (String)
module SM = Map.Make (String)

module MM = Map.Make (struct
  type t = string list

  let compare = List.compare String.compare
end)

(* ---- linear (degree <= 2) expressions ------------------------------- *)

type lin = { k : int; tm : int MM.t }

let lconst k = { k; tm = MM.empty }
let lzero = lconst 0
let lsym s = { k = 0; tm = MM.singleton [ s ] 0 |> MM.map (fun _ -> 1) }

let lnorm l = { l with tm = MM.filter (fun _ c -> c <> 0) l.tm }

let ladd a b =
  lnorm
    {
      k = a.k + b.k;
      tm = MM.union (fun _ x y -> Some (x + y)) a.tm b.tm;
    }

let lscale c l =
  if c = 0 then lzero else { k = c * l.k; tm = MM.map (fun x -> c * x) l.tm }

let lsub a b = ladd a (lscale (-1) b)

(* product; None when the degree would exceed 2 *)
let lmul a b =
  let exception Too_deep in
  try
    let acc = ref (lconst (a.k * b.k)) in
    let addm m c = acc := ladd !acc { k = 0; tm = MM.singleton m c } in
    MM.iter (fun m c -> addm m (c * b.k)) a.tm;
    MM.iter (fun m c -> addm m (c * a.k)) b.tm;
    MM.iter
      (fun ma ca ->
        MM.iter
          (fun mb cb ->
            let m = List.sort String.compare (ma @ mb) in
            if List.length m > 2 then raise Too_deep;
            addm m (ca * cb))
          b.tm)
      a.tm;
    Some (lnorm !acc)
  with Too_deep -> None

let lin_to_string l =
  let b = Buffer.create 32 in
  let first = ref true in
  MM.iter
    (fun m c ->
      if c <> 0 then begin
        if (not !first) && c > 0 then Buffer.add_char b '+';
        first := false;
        if c = -1 then Buffer.add_char b '-'
        else if c <> 1 then Buffer.add_string b (string_of_int c ^ "*");
        Buffer.add_string b (String.concat "*" m)
      end)
    l.tm;
  if l.k <> 0 || !first then begin
    if (not !first) && l.k > 0 then Buffer.add_char b '+';
    Buffer.add_string b (string_of_int l.k)
  end;
  Buffer.contents b

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* Divide the variable coefficients by their gcd and floor the
   constant: [8x - 8y + 7 >= 0  ->  x - y >= 0]. *)
let tighten l =
  let l = lnorm l in
  let g = MM.fold (fun _ c acc -> gcd c acc) l.tm 0 in
  if g <= 1 then l
  else
    {
      k = (if l.k >= 0 then l.k / g else -(((-l.k) + g - 1) / g));
      tm = MM.map (fun c -> c / g) l.tm;
    }

(* ---- facts ----------------------------------------------------------- *)

(* [fl >= 0]; strippable facts die when a mentioned symbol is written,
   invariant facts (layout, globals) never do. *)
type fact = { fl : lin; fstrip : bool }

let fact l = { fl = tighten l; fstrip = true }
let invariant l = { fl = tighten l; fstrip = false }
let fact_key f = (if f.fstrip then "s:" else "i:") ^ lin_to_string f.fl

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let mentions_prefix f p =
  MM.exists
    (fun m _ -> List.exists (fun s -> starts_with ~prefix:p s) m)
    f.fl.tm

(* write classes: non-decreasing, non-increasing, arbitrary *)
type wclass = Up | Down | Any

let merge_wclass a b = if a = b then a else Any

(* Does writing [s] with class [cls] invalidate fact [f]?  A fact with
   a positive coefficient on [s] is (part of) a lower bound for [s] and
   survives non-decreasing writes; negative coefficient dually.  A
   product mention always dies. *)
let write_kills f s cls =
  if not f.fstrip then false
  else
    match MM.fold
            (fun m c acc ->
              if not (List.mem s m) then acc
              else if List.length m > 1 then `Product
              else
                match acc with
                | `No -> if c > 0 then `Pos else `Neg
                | a -> a)
            f.fl.tm `No
    with
    | `No -> false
    | `Product -> true
    | `Pos -> cls <> Up
    | `Neg -> cls <> Down

type wtarget = Wsym of string * wclass | Wprefix of string | Wall

let strip_write env tgt =
  match tgt with
  | Wall -> List.filter (fun f -> not f.fstrip) env
  | Wprefix p -> List.filter (fun f -> (not f.fstrip) || not (mentions_prefix f p)) env
  | Wsym (s, cls) -> List.filter (fun f -> not (write_kills f s cls)) env

let inter_env a b =
  let keys = List.fold_left (fun acc f -> SS.add (fact_key f) acc) SS.empty b in
  List.filter (fun f -> SS.mem (fact_key f) keys) a

(* ---- analysis state -------------------------------------------------- *)

type gstate = {
  idx : Typed.index;
  mutable subst : lin SM.t;  (* immutable value syms only *)
  mutable psubst : string SM.t;  (* local sym -> access path *)
  mutable refsyms : SS.t;  (* symbols that name local refs *)
  mutable gfacts : fact list;  (* layout + toplevel invariants *)
  mutable elem_len : (string * lin) list;  (* path prefix -> elem length *)
  mutable inst : int;  (* per-inline instantiation counter *)
  mutable gensym : int;
  mutable visited : SS.t;  (* binding keys walked from some root *)
  mutable obligations : int;
  mutable proved : int;
  mutable suppressed : int;
  mutable findings : Finding.t list;
  mutable layout_done : SS.t;  (* type-key ^ "@" ^ base memo *)
}

type scope = {
  g : gstate;
  aliases : (string, string list) Hashtbl.t;
  unit_name : string;
  prefixes : string list;
  file : string;
  mutable locals : (Ident.t * string) list;  (* ident -> symbol *)
  chain : string list;  (* inline chain, for witness messages *)
  depth : int;
}

let fresh_sym g base =
  g.gensym <- g.gensym + 1;
  base ^ "?" ^ string_of_int g.gensym

let local_sym sc id =
  List.find_map
    (fun (i, s) -> if Ident.same i id then Some s else None)
    sc.locals

let bind_local sc id =
  let s = Ident.unique_name id ^ "@" ^ string_of_int sc.g.inst in
  sc.locals <- (id, s) :: sc.locals;
  s

(* Innermost-first enclosing-module prefixes of a binding key, as in
   Alloccheck: "Obs.Histogram.record" -> ["Obs.Histogram."; "Obs."]. *)
let prefixes_of_key key =
  match List.rev (String.split_on_char '.' key) with
  | [] | [ _ ] -> []
  | _ :: mods ->
    let rec go acc = function
      | [] -> acc
      | _ :: rest as segs ->
        go ((String.concat "." (List.rev segs) ^ ".") :: acc) rest
    in
    List.rev (go [] mods)

let is_local sc id = Option.is_some (local_sym sc id)

let scoped_key sc (p : Path.t) =
  match p with
  | Path.Pident id when not (is_local sc id) -> (
    let bare = Typed.key_of_path ~aliases:sc.aliases p in
    if String.contains bare '.' then bare
    else
      match
        List.find_opt
          (fun pre ->
            Option.is_some (Typed.find_binding sc.g.idx (pre ^ bare)))
          sc.prefixes
      with
      | Some pre -> pre ^ bare
      | None -> sc.unit_name ^ "." ^ bare)
  | _ -> Typed.key_of_path ~aliases:sc.aliases p

let bare_key sc (p : Path.t) = Typed.key_of_path ~aliases:sc.aliases p

(* ---- layout invariants ----------------------------------------------- *)

(* Trusted mirrors of what Analysis.Audit enforces on compiled blobs.
   Instantiated once per (type, base path) when a field is accessed. *)

let fld b f = lsym (b ^ "." ^ f)
let flen b f = lsym ("len:" ^ b ^ "." ^ f)

let eqf a b = [ invariant (lsub a b); invariant (lsub b a) ]
let gef a b = [ invariant (lsub a b) ]  (* a >= b *)

(* returns (facts, elem-length templates) *)
let layout_table : (string * (string -> fact list * (string * lin) list)) list
    =
  let bitvec b =
    ( eqf (lscale 8 (flen b "data")) (fld b "bits")
      |> List.filteri (fun i _ -> i = 0)  (* 8*len >= bits *)
      |> fun up ->
      up
      @ gef (ladd (fld b "bits") (lconst 7)) (lscale 8 (flen b "data"))
      @ gef (fld b "bits") (lconst 1),
      [] )
  in
  let meters b =
    ( List.concat_map
        (fun f -> gef (flen b f) (lconst 1))
        [ "md"; "mfill"; "mloop"; "mbad"; "mhits"; "msusp"; "mveto";
          "mlocal"; "msvc"; "mstitch" ],
      [] )
  in
  let engine_geometry b =
    eqf (fld b "stride") (lscale 8 (fld b "words"))
    @ gef (fld b "words") (lconst 1)
    @ gef (fld b "d") (lconst 1)
    @ gef (fld b "n_ports") lzero
    @ gef (fld b "n_virt") lzero
    @ gef (fld b "data_len") lzero
    @ gef (fld b "stride") (fld b "data_len")
    @ eqf (flen b "zf") (fld b "stride")
    @ eqf (flen b "zlo") (fld b "words")
    @ eqf (flen b "zhi") (fld b "words")
    @ gef (flen b "seen") (fld b "n_ports")
    @ List.concat_map
        (fun f -> eqf (flen b f) (fld b "d"))
        [ "phys"; "in_tags"; "blocks"; "block_off"; "virt"; "local"; "svc";
          "stitch"; "k_for_table" ]
    @ List.concat_map
        (fun f -> eqf (flen b f) (fld b "n_ports"))
        [ "out_links"; "out_index"; "up" ]
    @ eqf (flen b "v_out_off") (ladd (fld b "n_virt") (lconst 1))
  in
  let stride_elems b =
    let n_stride f n = (b ^ "." ^ f ^ "[", Option.get (lmul n (fld b "stride"))) in
    [
      n_stride "phys" (fld b "n_ports");
      n_stride "in_tags" (fld b "n_ports");
      n_stride "virt" (fld b "n_virt");
      n_stride "svc" (flen b "svc_names");
      n_stride "stitch" (flen b "stitch_next");
      (b ^ ".block_off[", ladd (fld b "n_ports") (lconst 1));
    ]
  in
  let fastpath b =
    ( engine_geometry b,
      stride_elems b
      (* local[] holds exactly one stride-wide entry *)
      @ [ (b ^ ".local[", fld b "stride") ] )
  in
  let bitsliced b =
    let facts, elems = fastpath b in
    ( facts
      @ List.concat_map
          (fun f -> eqf (flen b f) (fld b "d"))
          [ "sl_phys"; "sl_in"; "sl_virt"; "sl_svc"; "sl_stitch" ]
      (* npos = 8 * stride / plane_bits with plane_bits in {4, 8}; only
         the division-free consequences are affine *)
      @ eqf (flen b "vals") (fld b "npos")
      @ gef (fld b "npos") (fld b "stride")
      @ gef (lscale 2 (fld b "stride")) (fld b "npos")
      @ gef (fld b "plane_bits") (lconst 4)
      @ gef (lconst 8) (fld b "plane_bits")
      @ eqf (flen b "batch_ok") (fld b "batch_cap")
      @ gef (fld b "batch_cap") (lconst 1)
      @ eqf (flen b "batch_zf")
          (Option.get (lmul (fld b "batch_cap") (fld b "stride")))
      @ eqf (flen b "batch_vals")
          (Option.get (lmul (fld b "batch_cap") (fld b "npos"))),
      elems )
  in
  let slice b =
    ( eqf (flen b "sl_valid") (fld b "sl_sub")
      @ gef (fld b "sl_sub") lzero
      @ gef (fld b "sl_n") lzero,
      [] )
  in
  [
    ("Bitvec.t", bitvec);
    ("Fastpath.t", fastpath);
    ("Bitsliced.t", bitsliced);
    ("Bitsliced.slice", slice);
    ("Fastpath.meters", meters);
    ("Bitsliced.meters", meters);
  ]

(* ---- typed-tree helpers ---------------------------------------------- *)

let type_key sc (e : Typedtree.expression) =
  match Types.get_desc (Ctype.expand_head e.exp_env e.exp_type) with
  | Types.Tconstr (p, _, _) ->
    let k = Typed.key_of_segments ~aliases:sc.aliases (Typed.flatten_path p) in
    Some (if String.contains k '.' then k else sc.unit_name ^ "." ^ k)
  | _ -> None
  | exception _ -> None

let is_int_expr sc (e : Typedtree.expression) =
  match Types.get_desc (Ctype.expand_head e.exp_env e.exp_type) with
  | Types.Tconstr (p, _, _) -> (
    match List.rev (Typed.flatten_path p) with
    | "int" :: _ -> true
    | _ -> false)
  | _ -> false
  | exception _ -> ignore sc; false

let instantiate_layout sc (e : Typedtree.expression) base =
  match type_key sc e with
  | None -> ()
  | Some tk -> (
    match List.assoc_opt tk layout_table with
    | None -> ()
    | Some mk ->
      let memo = tk ^ "@" ^ base in
      if not (SS.mem memo sc.g.layout_done) then begin
        sc.g.layout_done <- SS.add memo sc.g.layout_done;
        let facts, elems = mk base in
        sc.g.gfacts <- facts @ sc.g.gfacts;
        sc.g.elem_len <- elems @ sc.g.elem_len
      end)

(* Access path of an expression, if it is a chain of idents, record
   fields and array reads.  Field access also instantiates the layout
   invariants for the record's type. *)
let rec path_of sc (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) when is_local sc id -> (
    let s = Option.get (local_sym sc id) in
    match SM.find_opt s sc.g.psubst with Some p -> Some p | None -> Some s)
  | Texp_ident (p, _, _) -> Some ("g:" ^ scoped_key sc p)
  | Texp_field (b, _, lbl) -> (
    match path_of sc b with
    | None -> None
    | Some pb ->
      instantiate_layout sc b pb;
      Some (pb ^ "." ^ lbl.lbl_name))
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
    match (bare_key sc p, args) with
    | ( ("Array.get" | "Array.unsafe_get" | "Idx.get"),
        [ (_, Some a); (_, Some i) ] ) -> (
      match path_of sc a with
      | None -> None
      | Some pa ->
        let is =
          match lin_of sc i with
          | Some l -> lin_to_string l
          | None -> fresh_sym sc.g "i"
        in
        Some (pa ^ "[" ^ is ^ "]"))
    | _ -> None)
  | _ -> None

(* Linear view of an int expression. *)
and lin_of sc (e : Typedtree.expression) : lin option =
  match e.exp_desc with
  | Texp_constant (Const_int n) -> Some (lconst n)
  | Texp_ident _ | Texp_field _ -> (
    match path_of sc e with Some p -> Some (lookup_sym sc p) | None -> None)
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
    let bare = bare_key sc p in
    let two f =
      match args with
      | [ (_, Some a); (_, Some b) ] -> (
        match (lin_of sc a, lin_of sc b) with
        | Some la, Some lb -> f la lb
        | _ -> None)
      | _ -> None
    in
    match bare with
    | "+" -> two (fun a b -> Some (ladd a b))
    | "-" -> two (fun a b -> Some (lsub a b))
    | "*" -> two lmul
    | "succ" -> (
      match args with
      | [ (_, Some a) ] -> Option.map (fun l -> ladd l (lconst 1)) (lin_of sc a)
      | _ -> None)
    | "pred" -> (
      match args with
      | [ (_, Some a) ] -> Option.map (fun l -> lsub l (lconst 1)) (lin_of sc a)
      | _ -> None)
    | "~-" -> (
      match args with
      | [ (_, Some a) ] -> Option.map (lscale (-1)) (lin_of sc a)
      | _ -> None)
    | "lsl" -> (
      match args with
      | [ (_, Some a); (_, Some { exp_desc = Texp_constant (Const_int k); _ }) ]
        when k >= 0 && k < 30 ->
        Option.map (lscale (1 lsl k)) (lin_of sc a)
      | _ -> None)
    | "!" -> (
      match args with
      | [ (_, Some r) ] -> (
        match path_of sc r with Some p -> Some (lookup_sym sc p) | None -> None)
      | _ -> None)
    | "Array.get" | "Array.unsafe_get" | "Idx.get" -> (
      match path_of sc e with Some p -> Some (lookup_sym sc p) | None -> None)
    | "Array.length" | "Bytes.length" | "String.length" -> (
      match args with
      | [ (_, Some a) ] -> Some (len_lin sc a)
      | _ -> None)
    | _ -> None)
  | _ -> None

and lookup_sym sc s =
  match SM.find_opt s sc.g.subst with Some l -> l | None -> lsym s

(* Length of a container expression: an element-length template if the
   path matches one, else the shared [len:path] symbol. *)
and len_lin sc (a : Typedtree.expression) =
  match path_of sc a with
  | None -> lsym (fresh_sym sc.g "len")
  | Some p -> (
    match
      List.find_opt (fun (pre, _) -> starts_with ~prefix:pre p) sc.g.elem_len
    with
    | Some (_, l) -> l
    | None -> lsym ("len:" ^ p))

(* ---- entailment ------------------------------------------------------ *)

let is_len_sym s = starts_with ~prefix:"len:" s

(* env |- goal >= 0.  One monomial is eliminated per step by
   substituting a bound from a fact with the opposite-sign coefficient;
   the conclusion [a*G >= V] plus integrality of G licenses the
   [|a| - 1] constant bonus on the new goal. *)
let entail_facts facts goal =
  let memo = Hashtbl.create 64 in
  let bonus a l = { l with k = l.k + a - 1 } in
  (* step budget: a refutable goal otherwise explores the fact set
     near-exhaustively; proofs of true goals stay far below this *)
  let steps = ref 0 in
  let rec go depth goal =
    incr steps;
    let goal = tighten goal in
    if MM.is_empty goal.tm then goal.k >= 0
    else if depth <= 0 || !steps > 60_000 then false
    else
      let key = lin_to_string goal in
      match Hashtbl.find_opt memo key with
      | Some r -> r
      | None ->
        Hashtbl.replace memo key false;
        let monos = MM.bindings goal.tm in
        let negs, poss = List.partition (fun (_, c) -> c < 0) monos in
        let r = List.exists (try_mono depth goal) (negs @ poss) in
        if r then Hashtbl.replace memo key true;
        r
  and try_mono depth goal (m, c) =
    let rest = lnorm { goal with tm = MM.remove m goal.tm } in
    let nonneg s =
      is_len_sym s || go (depth - 1) (lsym s)
    in
    let drop_ok =
      c > 0
      && (match m with
         | [ s ] -> nonneg s
         | [ x; y ] -> nonneg x && nonneg y
         | _ -> false)
      && go (depth - 1) rest
    in
    drop_ok
    || List.exists
         (fun f ->
           let a = try MM.find m f.fl.tm with Not_found -> 0 in
           if a = 0 then false
           else
             let r = lnorm { f.fl with tm = MM.remove m f.fl.tm } in
             if c > 0 && a > 0 then
               go (depth - 1)
                 (bonus a (lsub (lscale a rest) (lscale c r)))
             else if c < 0 && a < 0 then
               go (depth - 1)
                 (bonus (-a) (ladd (lscale (-a) rest) (lscale c r)))
             else false)
         facts
    ||
    (* product monomial: bound one factor, cofactor must be >= 0 *)
    match m with
    | [ x; y ] ->
      let via fx fy =
        List.exists
          (fun f ->
            let a = try MM.find [ fx ] f.fl.tm with Not_found -> 0 in
            if a = 0 then false
            else
              let r = lnorm { f.fl with tm = MM.remove [ fx ] f.fl.tm } in
              match lmul r (lsym fy) with
              | None -> false
              | Some ry ->
                if c > 0 && a > 0 then
                  go (depth - 1) (lsym fy)
                  && go (depth - 1)
                       (bonus a (lsub (lscale a rest) (lscale c ry)))
                else if c < 0 && a < 0 then
                  go (depth - 1) (lsym fy)
                  && go (depth - 1)
                       (bonus (-a) (ladd (lscale (-a) rest) (lscale c ry)))
                else false)
          facts
      in
      via x y || via y x
    | _ -> false
  in
  go 14 goal

let entail sc env goal = entail_facts (env @ sc.g.gfacts) goal

(* ---- goal-directed bounds on non-linear index expressions ------------ *)

let const_of sc e =
  match lin_of sc e with
  | Some l when MM.is_empty l.tm -> Some l.k
  | _ -> None

let head_bare sc (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) ->
    Some (bare_key sc p, args)
  | _ -> None

(* prove e <= b / e >= b, descending through lsr/asr, division and
   masking by constants, mod, min/max and +/- with one linear side. *)
let rec prove_le sc env (e : Typedtree.expression) (b : lin) =
  (match lin_of sc e with
  | Some l -> entail sc env (lsub b l)
  | None -> false)
  ||
  match head_bare sc e with
  | Some (("lsr" | "asr"), [ (_, Some a); (_, Some k) ]) -> (
    match const_of sc k with
    | Some k when k >= 0 && k < 30 ->
      let f = 1 lsl k in
      prove_ge sc env a lzero
      && prove_le sc env a (ladd (lscale f b) (lconst (f - 1)))
    | _ -> false)
  | Some ("/", [ (_, Some a); (_, Some c) ]) -> (
    match const_of sc c with
    | Some c when c > 0 ->
      prove_ge sc env a lzero
      && prove_le sc env a (ladd (lscale c b) (lconst (c - 1)))
    | _ -> false)
  | Some ("land", [ (_, Some x); (_, Some y) ]) ->
    let masked a c =
      match const_of sc c with
      | Some c when c >= 0 ->
        entail sc env (lsub b (lconst c))
        || (prove_ge sc env a lzero && prove_le sc env a b)
      | _ -> false
    in
    masked x y || masked y x
  | Some ("mod", [ (_, Some a); (_, Some c) ]) -> (
    match const_of sc c with
    | Some c when c > 0 ->
      prove_ge sc env a lzero && entail sc env (lsub b (lconst (c - 1)))
    | _ -> false)
  | Some ("min", [ (_, Some x); (_, Some y) ]) ->
    prove_le sc env x b || prove_le sc env y b
  | Some ("max", [ (_, Some x); (_, Some y) ]) ->
    prove_le sc env x b && prove_le sc env y b
  | Some ("+", [ (_, Some x); (_, Some y) ]) ->
    (match lin_of sc x with
    | Some lx -> prove_le sc env y (lsub b lx)
    | None -> false)
    ||
    (match lin_of sc y with
    | Some ly -> prove_le sc env x (lsub b ly)
    | None -> false)
  | Some ("-", [ (_, Some x); (_, Some y) ]) ->
    (match lin_of sc y with
    | Some ly -> prove_le sc env x (ladd b ly)
    | None -> false)
    ||
    (match lin_of sc x with
    | Some lx -> prove_ge sc env y (lsub lx b)
    | None -> false)
  | Some ("lor", [ (_, Some x); (_, Some y) ]) -> (
    prove_ge sc env x lzero && prove_ge sc env y lzero
    &&
    match (lin_of sc x, lin_of sc y) with
    | Some lx, Some ly -> entail sc env (lsub b (ladd lx ly))
    | _ -> false)
  | _ -> false

and prove_ge sc env (e : Typedtree.expression) (b : lin) =
  (match lin_of sc e with
  | Some l -> entail sc env (lsub l b)
  | None -> false)
  ||
  match head_bare sc e with
  | Some ("lsr", [ (_, Some a); (_, Some k) ]) -> (
    (* logical shift: always >= 0 *)
    entail sc env (lscale (-1) b)
    ||
    match const_of sc k with
    | Some k when k >= 0 && k < 30 ->
      prove_ge sc env a (lscale (1 lsl k) b)
    | _ -> false)
  | Some ("asr", [ (_, Some a); (_, Some _) ]) ->
    prove_ge sc env a lzero && entail sc env (lscale (-1) b)
  | Some ("/", [ (_, Some a); (_, Some c) ]) -> (
    match const_of sc c with
    | Some c when c > 0 ->
      prove_ge sc env a lzero
      && (entail sc env (lscale (-1) b) || prove_ge sc env a (lscale c b))
    | _ -> false)
  | Some ("land", [ (_, Some x); (_, Some y) ]) ->
    let masked _a c =
      match const_of sc c with Some c when c >= 0 -> true | _ -> false
    in
    (masked x y || masked y x) && entail sc env (lscale (-1) b)
  | Some ("mod", [ (_, Some a); (_, Some c) ]) -> (
    match const_of sc c with
    | Some c when c > 0 ->
      prove_ge sc env a lzero && entail sc env (lscale (-1) b)
    | _ -> false)
  | Some ("min", [ (_, Some x); (_, Some y) ]) ->
    prove_ge sc env x b && prove_ge sc env y b
  | Some ("max", [ (_, Some x); (_, Some y) ]) ->
    prove_ge sc env x b || prove_ge sc env y b
  | Some ("+", [ (_, Some x); (_, Some y) ]) ->
    (match lin_of sc x with
    | Some lx -> prove_ge sc env y (lsub b lx)
    | None -> false)
    ||
    (match lin_of sc y with
    | Some ly -> prove_ge sc env x (lsub b ly)
    | None -> false)
  | Some ("-", [ (_, Some x); (_, Some y) ]) ->
    (match lin_of sc y with
    | Some ly -> prove_ge sc env x (ladd b ly)
    | None -> false)
  | Some ("lor", [ (_, Some x); (_, Some y) ]) ->
    prove_ge sc env x lzero && prove_ge sc env y lzero
    && (entail sc env (lscale (-1) b) || prove_ge sc env x b)
  | _ -> false

(* ---- flow refinement ------------------------------------------------- *)

(* Facts known when [e] evaluated to [truth].  Only int comparisons
   produce facts; &&/||/not follow the truth table. *)
let rec facts_of_cond sc ~truth (e : Typedtree.expression) =
  match head_bare sc e with
  | Some ("not", [ (_, Some a) ]) -> facts_of_cond sc ~truth:(not truth) a
  | Some ("&&", [ (_, Some a); (_, Some b) ]) when truth ->
    facts_of_cond sc ~truth a @ facts_of_cond sc ~truth b
  | Some ("||", [ (_, Some a); (_, Some b) ]) when not truth ->
    facts_of_cond sc ~truth a @ facts_of_cond sc ~truth b
  | Some ((("<" | "<=" | ">" | ">=" | "=" | "<>") as op),
          [ (_, Some a); (_, Some b) ])
    when is_int_expr sc a || is_int_expr sc b -> (
    match (lin_of sc a, lin_of sc b) with
    | Some la, Some lb -> (
      let le x y = [ fact (lsub y x) ] in  (* x <= y *)
      let lt x y = [ fact (lsub (lsub y x) (lconst 1)) ] in  (* x < y *)
      match (op, truth) with
      | "<", true -> lt la lb
      | "<", false -> le lb la
      | "<=", true -> le la lb
      | "<=", false -> lt lb la
      | ">", true -> lt lb la
      | ">", false -> le la lb
      | ">=", true -> le lb la
      | ">=", false -> lt la lb
      | "=", true | "<>", false -> le la lb @ le lb la
      | _ -> [])
    | _ -> [])
  | _ -> []

let abort_head = function
  | "raise" | "raise_notrace" | "failwith" | "invalid_arg" | "exit" -> true
  | _ -> false

let rec always_aborts sc (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) ->
    abort_head (bare_key sc p)
  | Texp_assert ({ exp_desc = Texp_construct (_, { cstr_name = "false"; _ }, _); _ }, _)
    -> true
  | Texp_sequence (_, b) | Texp_let (_, _, b) | Texp_open (_, b) ->
    always_aborts sc b
  | Texp_ifthenelse (_, t, Some f) -> always_aborts sc t && always_aborts sc f
  | Texp_match (_, cases, _) ->
    cases <> []
    && List.for_all (fun (c : _ Typedtree.case) -> always_aborts sc c.c_rhs) cases
  | _ -> false

(* ---- obligations ----------------------------------------------------- *)

(* accessor -> (container position, index position, width) *)
let accessor_table =
  [
    ("Array.get", (0, 1, 1)); ("Array.unsafe_get", (0, 1, 1));
    ("Array.set", (0, 1, 1)); ("Array.unsafe_set", (0, 1, 1));
    ("Bytes.get", (0, 1, 1)); ("Bytes.unsafe_get", (0, 1, 1));
    ("Bytes.set", (0, 1, 1)); ("Bytes.unsafe_set", (0, 1, 1));
    ("String.get", (0, 1, 1)); ("String.unsafe_get", (0, 1, 1));
    ("Bytes.get_int64_le", (0, 1, 8)); ("Bytes.get_int64_be", (0, 1, 8));
    ("Bytes.get_int64_ne", (0, 1, 8)); ("Bytes.set_int64_le", (0, 1, 8));
    ("Bytes.set_int64_be", (0, 1, 8)); ("Bytes.set_int64_ne", (0, 1, 8));
    ("Bytes.get_int32_le", (0, 1, 4)); ("Bytes.set_int32_le", (0, 1, 4));
    ("Bytes.get_uint16_le", (0, 1, 2)); ("Bytes.set_uint16_le", (0, 1, 2));
    ("Bytes.get_uint8", (0, 1, 1)); ("Bytes.set_uint8", (0, 1, 1));
    ("Bytes.get_int8", (0, 1, 1));
    ("Idx.get", (0, 1, 1)); ("Idx.set", (0, 1, 1));
    ("Idx.bget", (0, 1, 1)); ("Idx.bset", (0, 1, 1));
    ("Idx.bget_u32", (0, 1, 4));
    ("Idx.bget_i64", (0, 1, 8)); ("Idx.bset_i64", (0, 1, 8));
  ]

let is_setter bare =
  starts_with ~prefix:"Array.set" bare
  || starts_with ~prefix:"Array.unsafe_set" bare
  || starts_with ~prefix:"Bytes.set" bare
  || starts_with ~prefix:"Bytes.unsafe_set" bare
  || bare = "Idx.set" || bare = "Idx.bset" || bare = "Idx.bset_i64"

(* unsafe-family heads whose presence makes a binding require
   certification (coverage scan) *)
let unsafe_family bare =
  starts_with ~prefix:"Array.unsafe_" bare
  || starts_with ~prefix:"Bytes.unsafe_" bare
  || starts_with ~prefix:"String.unsafe_" bare
  || List.mem bare
       [ "Idx.get"; "Idx.set"; "Idx.bget"; "Idx.bset"; "Idx.bget_u32";
         "Idx.bget_i64"; "Idx.bset_i64" ]

let via_of chain =
  match chain with
  | [] | [ _ ] -> ""
  | _ -> " [via " ^ String.concat " -> " chain ^ "]"

let oblige sc ~allow ~loc env bare container index width =
  let g = sc.g in
  g.obligations <- g.obligations + 1;
  match allow with
  | Some _ -> g.suppressed <- g.suppressed + 1
  | None ->
    let len = len_lin sc container in
    let lo = prove_ge sc env index lzero in
    let hi = prove_le sc env index (lsub len (lconst width)) in
    if lo && hi then g.proved <- g.proved + 1
    else
      let idx_s =
        match lin_of sc index with
        | Some l -> lin_to_string l
        | None -> "<dynamic>"
      in
      let side =
        if not lo then "index >= 0"
        else "index <= " ^ lin_to_string (lsub len (lconst width))
      in
      let what =
        "unproven bounds: " ^ bare ^ " at index " ^ idx_s
        ^ " -- cannot show " ^ side ^ via_of sc.chain
      in
      g.findings <-
        Typed.finding_of_loc ~file:sc.file ~rule loc what :: g.findings

(* ---- write prescan --------------------------------------------------- *)

(* Syntactic collection of the mutations a loop body can perform, so
   the body is analyzed against an environment that is stable across
   iterations.  Unresolvable targets degrade to Wall. *)
let prescan_writes sc (e : Typedtree.expression) =
  let acc = ref [] in
  let push t = acc := t :: !acc in
  let target_sym (r : Typedtree.expression) =
    match path_of sc r with Some p -> Some p | None -> None
  in
  let classify_assign r _rhs =
    match target_sym r with
    | None -> push Wall
    | Some s -> push (Wsym (s, Any))
  in
  let module I = Tast_iterator in
  let it =
    {
      I.default_iterator with
      expr =
        (fun self ex ->
          (match ex.Typedtree.exp_desc with
          | Texp_setfield (dst, _, lbl, _) -> (
            match path_of sc dst with
            | Some p -> push (Wsym (p ^ "." ^ lbl.lbl_name, Any))
            | None -> push Wall)
          | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
            let bare = bare_key sc p in
            match (bare, args) with
            | "incr", [ (_, Some r) ] -> (
              match target_sym r with
              | Some s -> push (Wsym (s, Up))
              | None -> push Wall)
            | "decr", [ (_, Some r) ] -> (
              match target_sym r with
              | Some s -> push (Wsym (s, Down))
              | None -> push Wall)
            | ":=", [ (_, Some r); (_, Some rhs) ] -> (
              match target_sym r with
              | None -> push Wall
              | Some s -> (
                (* r := !r + c / !r - c keeps monotone bounds *)
                match lin_of sc rhs with
                | Some l
                  when MM.for_all (fun m _ -> m = [ s ]) l.tm
                       && (try MM.find [ s ] l.tm with Not_found -> 0) = 1 ->
                  push (Wsym (s, if l.k >= 0 then Up else Down))
                | _ -> classify_assign r rhs))
            | bare, args
              when List.mem_assoc bare accessor_table && is_setter bare -> (
              let cpos, _, _ = List.assoc bare accessor_table in
              match List.nth_opt args cpos with
              | Some (_, Some a) -> (
                match path_of sc a with
                | Some pa -> push (Wprefix (pa ^ "["))
                | None -> push Wall)
              | _ -> push Wall)
            | _ -> ())
          | _ -> ());
          I.default_iterator.expr self ex);
    }
  in
  it.expr it e;
  (* merge duplicate symbol targets to the weakest class *)
  let tbl = Hashtbl.create 8 in
  let other = ref [] in
  List.iter
    (function
      | Wsym (s, c) ->
        let c' =
          match Hashtbl.find_opt tbl s with
          | Some c0 -> merge_wclass c0 c
          | None -> c
        in
        Hashtbl.replace tbl s c'
      | t -> other := t :: !other)
    !acc;
  Hashtbl.fold (fun s c l -> Wsym (s, c) :: l) tbl !other

let apply_writes env writes = List.fold_left strip_write env writes

(* ---- walk ------------------------------------------------------------ *)

let max_inline_depth = 8

(* A lin over immutable value symbols only may become a substitution;
   anything touching a ref, field or element must go through
   (strippable) equality facts instead. *)
let is_value_lin sc l =
  MM.for_all
    (fun m _ ->
      List.for_all
        (fun s ->
          not
            (String.contains s '.' || String.contains s '['
            || SS.mem s sc.g.refsyms))
        m)
    l.tm

let lin_mentions l s = MM.exists (fun m _ -> List.mem s m) l.tm

(* r := r + k / r := r - k style right-hand sides *)
let lin_is_shift_of l s =
  MM.cardinal l.tm = 1
  && (match MM.find_opt [ s ] l.tm with Some 1 -> true | _ -> false)

(* Facts justified by the shape of a non-linear right-hand side:
   [let words = len lsr 3] and friends. *)
let shape_facts sc env sym (rhs : Typedtree.expression) =
  let s = lsym sym in
  match head_bare sc rhs with
  | Some (("lsr" | "asr" | "/") as op, [ (_, Some a); (_, Some k) ]) -> (
    let factor =
      match (op, const_of sc k) with
      | ("lsr" | "asr"), Some k when k >= 0 && k < 30 -> Some (1 lsl k)
      | "/", Some c when c > 0 -> Some c
      | _ -> None
    in
    let base = if op = "lsr" then [ fact s ] else [] in
    match (factor, lin_of sc a) with
    | Some f, Some la when prove_ge sc env a lzero ->
      fact s
      :: fact (lsub la (lscale f s))  (* f*sym <= a *)
      :: fact (lsub (lscale f s) (lsub la (lconst (f - 1))))
      :: []
    | _ -> base)
  | Some ("land", [ (_, Some x); (_, Some y) ]) -> (
    let masked a c =
      match const_of sc c with
      | Some c when c >= 0 ->
        Some
          (fact s :: fact (lsub (lconst c) s)
          :: (match lin_of sc a with
             | Some la when prove_ge sc env a lzero ->
               [ fact (lsub la s) ]
             | _ -> []))
      | _ -> None
    in
    match masked x y with
    | Some fs -> fs
    | None -> ( match masked y x with Some fs -> fs | None -> []))
  | Some ("mod", [ (_, Some a); (_, Some c) ]) -> (
    match const_of sc c with
    | Some c when c > 0 && prove_ge sc env a lzero ->
      [ fact s; fact (lsub (lconst (c - 1)) s) ]
    | _ -> [])
  | Some ("min", [ (_, Some x); (_, Some y) ]) ->
    (match lin_of sc x with Some lx -> [ fact (lsub lx s) ] | None -> [])
    @ (match lin_of sc y with Some ly -> [ fact (lsub ly s) ] | None -> [])
    @
    if prove_ge sc env x lzero && prove_ge sc env y lzero then [ fact s ]
    else []
  | Some ("max", [ (_, Some x); (_, Some y) ]) ->
    (match lin_of sc x with Some lx -> [ fact (lsub s lx) ] | None -> [])
    @ (match lin_of sc y with Some ly -> [ fact (lsub s ly) ] | None -> [])
  | _ -> []

(* Bind [sym] to [rhs] (resolved in scope [rsc]): a pure access path
   becomes an alias, a linear value over immutable symbols a
   substitution, anything else equality or shape facts. *)
let bind_sym rsc env sym (rhs : Typedtree.expression) =
  match path_of rsc rhs with
  | Some p -> rsc.g.psubst <- SM.add sym p rsc.g.psubst; []
  | None -> (
    match lin_of rsc rhs with
    | Some l ->
      if is_value_lin rsc l then begin
        rsc.g.subst <- SM.add sym l rsc.g.subst;
        []
      end
      else [ fact (lsub (lsym sym) l); fact (lsub l (lsym sym)) ]
    | None -> shape_facts rsc env sym rhs)

let rec walk sc ~allow env (e : Typedtree.expression) =
  let allow =
    match
      Typed.attr_payload_string Typed.allow_unchecked_attr e.exp_attributes
    with
    | Some r -> Some r
    | None -> allow  (* reasonless suppressions flagged by the scan *)
  in
  match e.exp_desc with
  | Texp_ident _ | Texp_constant _ | Texp_instvar _ | Texp_unreachable -> env
  | Texp_let (_, vbs, body) ->
    let env = List.fold_left (walk_vb sc ~allow) env vbs in
    walk sc ~allow env body
  | Texp_function { param; cases; _ } ->
    (* the closure may run at any later time: judge its body under no
       flow facts, and charge its writes against the current env *)
    ignore (bind_local sc param);
    let writes = prescan_writes sc e in
    List.iter
      (fun (c : _ Typedtree.case) ->
        List.iter
          (fun id -> ignore (bind_local sc id))
          (Typed.pat_idents c.c_lhs);
        Option.iter (fun g -> ignore (walk sc ~allow [] g)) c.c_guard;
        ignore (walk sc ~allow [] c.c_rhs))
      cases;
    apply_writes env writes
  | Texp_apply (fn, args) -> walk_apply sc ~allow env e fn args
  | Texp_match (scrut, cases, _) ->
    let env = walk sc ~allow env scrut in
    walk_cases sc ~allow env cases
  | Texp_try (body, cases) ->
    let envb = walk sc ~allow env body in
    let envc = walk_cases sc ~allow env cases in
    inter_env envb envc
  | Texp_tuple es | Texp_array es -> List.fold_left (walk sc ~allow) env es
  | Texp_construct (_, _, es) -> List.fold_left (walk sc ~allow) env es
  | Texp_variant (_, eo) -> (
    match eo with Some x -> walk sc ~allow env x | None -> env)
  | Texp_record { fields; extended_expression; _ } ->
    let env =
      match extended_expression with
      | Some x -> walk sc ~allow env x
      | None -> env
    in
    Array.fold_left
      (fun env (_, def) ->
        match def with
        | Typedtree.Overridden (_, ex) -> walk sc ~allow env ex
        | Typedtree.Kept _ -> env)
      env fields
  | Texp_field (b, _, _) ->
    ignore (path_of sc e);  (* instantiate layout invariants *)
    walk sc ~allow env b
  | Texp_setfield (dst, _, lbl, v) -> (
    let env = walk sc ~allow env dst in
    let env = walk sc ~allow env v in
    match path_of sc dst with
    | None -> strip_write env Wall
    | Some p -> (
      let s = p ^ "." ^ lbl.lbl_name in
      let rl = lin_of sc v in
      let cls =
        match rl with
        | Some l when lin_is_shift_of l s -> if l.k >= 0 then Up else Down
        | _ -> Any
      in
      let env = strip_write env (Wsym (s, cls)) in
      match rl with
      | Some l when cls = Any && not (lin_mentions l s) ->
        fact (lsub (lsym s) l) :: fact (lsub l (lsym s)) :: env
      | _ -> env))
  | Texp_ifthenelse (c, t, fo) -> (
    let env = walk sc ~allow env c in
    let ft = facts_of_cond sc ~truth:true c in
    let ff = facts_of_cond sc ~truth:false c in
    let env_t = walk sc ~allow (ft @ env) t in
    match fo with
    | None -> if always_aborts sc t then ff @ env else inter_env env_t env
    | Some f ->
      let env_f = walk sc ~allow (ff @ env) f in
      if always_aborts sc t then env_f
      else if always_aborts sc f then env_t
      else inter_env env_t env_f)
  | Texp_sequence (a, b) ->
    let env = walk sc ~allow env a in
    walk sc ~allow env b
  | Texp_while (c, body) ->
    let env = walk sc ~allow env c in
    let writes = prescan_writes sc body in
    let env0 = apply_writes env writes in
    let envb = facts_of_cond sc ~truth:true c @ env0 in
    ignore (walk sc ~allow envb body);
    facts_of_cond sc ~truth:false c @ env0
  | Texp_for (id, _, lo, hi, dir, body) ->
    let env = walk sc ~allow env lo in
    let env = walk sc ~allow env hi in
    let writes = prescan_writes sc body in
    let env0 = apply_writes env writes in
    let s = bind_local sc id in
    let lol = lin_of sc lo and hil = lin_of sc hi in
    let lo_f, hi_f =
      match dir with
      | Asttypes.Upto -> (lol, hil)
      | Asttypes.Downto -> (hil, lol)
    in
    let ls = lsym s in
    let ifacts =
      (match lo_f with Some l -> [ fact (lsub ls l) ] | None -> [])
      @ (match hi_f with Some h -> [ fact (lsub h ls) ] | None -> [])
    in
    let ifacts = apply_writes ifacts writes in
    ignore (walk sc ~allow (ifacts @ env0) body);
    env0
  | Texp_assert (a, _) -> (
    match a.exp_desc with
    | Texp_construct (_, { cstr_name = "false"; _ }, _) -> env
    | _ ->
      let env = walk sc ~allow env a in
      facts_of_cond sc ~truth:true a @ env)
  | Texp_lazy _ -> env
  | Texp_letmodule (_, _, _, _, body) | Texp_open (_, body) ->
    walk sc ~allow env body
  | _ -> env

and walk_vb sc ~allow env (vb : Typedtree.value_binding) =
  let allow =
    match
      Typed.attr_payload_string Typed.allow_unchecked_attr vb.vb_attributes
    with
    | Some r -> Some r
    | None -> allow
  in
  match vb.vb_pat.pat_desc with
  | Tpat_var (id, _) -> (
    match vb.vb_expr.exp_desc with
    | Texp_apply
        ({ exp_desc = Texp_ident (rp, _, _); _ }, [ (_, Some seed) ])
      when String.equal (bare_key sc rp) "ref" ->
      let env = walk sc ~allow env seed in
      let s = bind_local sc id in
      sc.g.refsyms <- SS.add s sc.g.refsyms;
      (match lin_of sc seed with
      | Some l when not (lin_mentions l s) ->
        fact (lsub (lsym s) l) :: fact (lsub l (lsym s)) :: env
      | _ -> env)
    | _ ->
      let env = walk sc ~allow env vb.vb_expr in
      let s = bind_local sc id in
      bind_sym sc env s vb.vb_expr @ env)
  | _ ->
    let env = walk sc ~allow env vb.vb_expr in
    List.iter
      (fun id -> ignore (bind_local sc id))
      (Typed.pat_idents vb.vb_pat);
    env

and walk_cases :
    type k. scope -> allow:string option -> fact list ->
    k Typedtree.case list -> fact list =
 fun sc ~allow env cases ->
  let envs =
    List.filter_map
      (fun (c : k Typedtree.case) ->
        List.iter
          (fun id -> ignore (bind_local sc id))
          (Typed.pat_idents c.c_lhs);
        Option.iter (fun g -> ignore (walk sc ~allow env g)) c.c_guard;
        let e' = walk sc ~allow env c.c_rhs in
        if always_aborts sc c.c_rhs then None else Some e')
      cases
  in
  match envs with
  | [] -> env
  | e0 :: rest -> List.fold_left inter_env e0 rest

and walk_args sc ~allow env args =
  List.fold_left
    (fun env (_, a) ->
      match a with Some x -> walk sc ~allow env x | None -> env)
    env args

and walk_apply sc ~allow env whole fn args =
  match fn.exp_desc with
  | Texp_ident (p, _, _) -> (
    let bare = bare_key sc p in
    match bare with
    | "@@" -> (
      match args with
      | (_, Some f) :: rest -> walk_apply sc ~allow env whole f rest
      | _ -> env)
    | "|>" -> (
      match args with
      | [ (l1, Some arg); (_, Some f) ] ->
        walk_apply sc ~allow env whole f [ (l1, Some arg) ]
      | _ -> walk_args sc ~allow env args)
    | _ when abort_head bare -> env  (* cold path *)
    | "incr" | "decr" -> (
      match args with
      | [ (_, Some r) ] -> (
        match path_of sc r with
        | Some s ->
          strip_write env (Wsym (s, if bare = "incr" then Up else Down))
        | None -> strip_write env Wall)
      | _ -> env)
    | ":=" -> (
      match args with
      | [ (_, Some r); (_, Some rhs) ] -> (
        let env = walk sc ~allow env rhs in
        match path_of sc r with
        | None -> strip_write env Wall
        | Some s -> (
          let rl = lin_of sc rhs in
          let cls =
            match rl with
            | Some l when lin_is_shift_of l s ->
              if l.k >= 0 then Up else Down
            | _ -> Any
          in
          let env = strip_write env (Wsym (s, cls)) in
          match rl with
          | Some l when cls = Any && not (lin_mentions l s) ->
            fact (lsub (lsym s) l) :: fact (lsub l (lsym s)) :: env
          | _ -> env))
      | _ -> env)
    | "!" | "ref" -> walk_args sc ~allow env args
    | _ when List.mem_assoc bare accessor_table -> (
      let cpos, ipos, width = List.assoc bare accessor_table in
      let env = walk_args sc ~allow env args in
      match (List.nth_opt args cpos, List.nth_opt args ipos) with
      | Some (_, Some cont), Some (_, Some index) -> (
        oblige sc ~allow ~loc:whole.Typedtree.exp_loc env bare cont index
          width;
        if is_setter bare then
          match path_of sc cont with
          | Some pa -> strip_write env (Wprefix (pa ^ "["))
          | None -> strip_write env Wall
        else env)
      | _ -> env)
    | _ ->
      let env = walk_args sc ~allow env args in
      try_inline sc ~allow env (scoped_key sc p) args)
  | _ ->
    let env = walk sc ~allow env fn in
    walk_args sc ~allow env args

(* Contextual inlining: a fully-applied call to a binding we can
   resolve is analyzed in the caller's environment, with formals bound
   to the actual arguments.  Abort guards inside the callee
   (check_index and friends) refine the caller's env on return. *)
and try_inline sc ~allow env key args =
  if sc.depth >= max_inline_depth || List.mem key sc.chain then env
  else
    match Typed.resolve_binding sc.g.idx key with
    | None -> env
    | Some b ->
      if List.exists (fun (_, a) -> Option.is_none a) args then env
      else begin
        sc.g.visited <- SS.add b.b_key sc.g.visited;
        sc.g.inst <- sc.g.inst + 1;
        let sub =
          {
            g = sc.g;
            aliases = b.b_aliases;
            unit_name = b.b_unit.unit_name;
            prefixes = prefixes_of_key b.b_key;
            file = b.b_unit.unit_source;
            locals = [];
            chain = sc.chain @ [ key ];
            depth = sc.depth + 1;
          }
        in
        let ballow =
          match
            Typed.attr_payload_string Typed.allow_unchecked_attr
              b.b_vb.vb_attributes
          with
          | Some r -> Some r
          | None -> allow
        in
        let rec spine acc (e : Typedtree.expression) =
          match e.exp_desc with
          | Texp_function
              { arg_label; cases = [ { c_lhs; c_guard = None; c_rhs } ]; _ }
            ->
            spine ((arg_label, c_lhs) :: acc) c_rhs
          | _ -> (List.rev acc, e)
        in
        let params, body = spine [] b.b_vb.vb_expr in
        if params = [] then env
        else begin
          let lbl_name = function
            | Asttypes.Nolabel -> ""
            | Asttypes.Labelled s | Asttypes.Optional s -> s
          in
          let remaining = ref params in
          let binds = ref [] in
          List.iter
            (fun (al, ae) ->
              match ae with
              | None -> ()
              | Some ae -> (
                let n = lbl_name al in
                let rec take acc = function
                  | [] -> None
                  | (pl, pat) :: rest when String.equal (lbl_name pl) n ->
                    Some (pat, List.rev_append acc rest)
                  | x :: rest -> take (x :: acc) rest
                in
                match take [] !remaining with
                | Some (pat, rest) ->
                  remaining := rest;
                  binds := (pat, ae) :: !binds
                | None -> ()))
            args;
          let env =
            List.fold_left
              (fun env ((pat : Typedtree.pattern), ae) ->
                match pat.pat_desc with
                | Tpat_var (id, _) ->
                  let s = bind_local sub id in
                  bind_sym sc env s ae @ env
                | _ ->
                  List.iter
                    (fun id -> ignore (bind_local sub id))
                    (Typed.pat_idents pat);
                  env)
              env (List.rev !binds)
          in
          List.iter
            (fun (_, (pat : Typedtree.pattern)) ->
              List.iter
                (fun id -> ignore (bind_local sub id))
                (Typed.pat_idents pat))
            !remaining;
          walk sub ~allow:ballow env body
        end
      end

(* ---- roots, coverage, entry points ----------------------------------- *)

let check_root g (b : Typed.binding) =
  g.inst <- g.inst + 1;
  let sc =
    {
      g;
      aliases = b.b_aliases;
      unit_name = b.b_unit.unit_name;
      prefixes = prefixes_of_key b.b_key;
      file = b.b_unit.unit_source;
      locals = [];
      chain = [ b.b_key ];
      depth = 0;
    }
  in
  let allow =
    Typed.attr_payload_string Typed.allow_unchecked_attr b.b_vb.vb_attributes
  in
  let rec spine (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_function { param; cases = [ { c_lhs; c_guard = None; c_rhs } ]; _ }
      ->
      ignore (bind_local sc param);
      List.iter (fun id -> ignore (bind_local sc id)) (Typed.pat_idents c_lhs);
      spine c_rhs
    | _ -> e
  in
  let body = spine b.b_vb.vb_expr in
  ignore (walk sc ~allow [] body)

(* Toplevel constant-size arrays become global length facts:
   [let small = Array.init 1025 f] licenses len:g:Obs.Histogram.small. *)
let scan_globals g =
  Hashtbl.iter
    (fun key (b : Typed.binding) ->
      let add n =
        let s = lsym ("len:g:" ^ key) in
        g.gfacts <-
          invariant (lsub s (lconst n))
          :: invariant (lsub (lconst n) s)
          :: g.gfacts
      in
      match b.b_vb.vb_expr.exp_desc with
      | Texp_array es -> add (List.length es)
      | Texp_apply
          ( { exp_desc = Texp_ident (p, _, _); _ },
            (_, Some { exp_desc = Texp_constant (Const_int n); _ }) :: _ )
        when n >= 0 -> (
        match Typed.key_of_path ~aliases:b.b_aliases p with
        | "Array.make" | "Array.init" | "Bytes.make" | "Bytes.create" ->
          add n
        | _ -> ())
      | _ -> ())
    g.idx.Typed.idx_bindings

(* Every binding using unsafe accessors must have been certified from
   some root (or carry a reasoned binding-level suppression), and every
   [@lipsin.allow_unchecked] anywhere must carry a reason. *)
let coverage_scan g =
  Hashtbl.iter
    (fun key (b : Typed.binding) ->
      let sc =
        {
          g;
          aliases = b.b_aliases;
          unit_name = b.b_unit.unit_name;
          prefixes = prefixes_of_key key;
          file = b.b_unit.unit_source;
          locals = [];
          chain = [];
          depth = 0;
        }
      in
      let has_unsafe = ref false in
      let reasonless = ref [] in
      let module I = Tast_iterator in
      let it =
        {
          I.default_iterator with
          expr =
            (fun self ex ->
              (match ex.Typedtree.exp_desc with
              | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) ->
                if unsafe_family (bare_key sc p) then has_unsafe := true
              | _ -> ());
              List.iter
                (fun (a : Parsetree.attribute) ->
                  if
                    String.equal a.attr_name.txt Typed.allow_unchecked_attr
                    && Option.is_none
                         (Typed.attr_payload_string
                            Typed.allow_unchecked_attr [ a ])
                  then reasonless := ex.Typedtree.exp_loc :: !reasonless)
                ex.Typedtree.exp_attributes;
              I.default_iterator.expr self ex);
        }
      in
      it.value_binding it b.b_vb;
      let file = b.b_unit.unit_source in
      let badge loc msg =
        g.findings <- Typed.finding_of_loc ~file ~rule loc msg :: g.findings
      in
      let battrs = b.b_vb.vb_attributes in
      if
        Typed.has_attr Typed.allow_unchecked_attr battrs
        && Option.is_none
             (Typed.attr_payload_string Typed.allow_unchecked_attr battrs)
      then
        badge b.b_vb.vb_loc
          ("unjustified [@lipsin.allow_unchecked] on " ^ key
         ^ ": a reason string is required");
      List.iter
        (fun loc ->
          badge loc
            ("unjustified [@lipsin.allow_unchecked] in " ^ key
           ^ ": a reason string is required"))
        !reasonless;
      let suppressed =
        Option.is_some
          (Typed.attr_payload_string Typed.allow_unchecked_attr battrs)
      in
      let is_root = Typed.has_attr Typed.inbounds_attr battrs in
      if
        !has_unsafe
        && (not (SS.mem key g.visited))
        && (not suppressed) && not is_root
      then
        badge b.b_vb.vb_loc
          ("uncertified unsafe access: " ^ key
         ^ " uses unchecked indexing but is not reachable from any \
            [@lipsin.inbounds] root"))
    g.idx.Typed.idx_bindings

type stats = {
  st_roots : string list;
  st_obligations : int;
  st_proved : int;
  st_suppressed : int;
}

let check idx =
  let g =
    {
      idx;
      subst = SM.empty;
      psubst = SM.empty;
      refsyms = SS.empty;
      gfacts = [];
      elem_len = [];
      inst = 0;
      gensym = 0;
      visited = SS.empty;
      obligations = 0;
      proved = 0;
      suppressed = 0;
      findings = [];
      layout_done = SS.empty;
    }
  in
  scan_globals g;
  let roots =
    Hashtbl.fold
      (fun key (b : Typed.binding) acc ->
        if Typed.has_attr Typed.inbounds_attr b.b_vb.vb_attributes then
          (key, b) :: acc
        else acc)
      idx.Typed.idx_bindings []
  in
  let roots =
    List.sort (fun (a, _) (b, _) -> String.compare a b) roots
  in
  List.iter
    (fun (key, b) ->
      g.visited <- SS.add key g.visited;
      check_root g b)
    roots;
  coverage_scan g;
  ( {
      st_roots = List.map fst roots;
      st_obligations = g.obligations;
      st_proved = g.proved;
      st_suppressed = g.suppressed;
    },
    List.sort_uniq Finding.compare_locs g.findings )

let run ~roots =
  let units = Typed.load_units roots in
  check (Typed.index_units units)

let run_units units = check (Typed.index_units units)
