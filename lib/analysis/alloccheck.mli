(** Allocation-freedom checker over typed trees (.cmt files).

    Proves that every [@lipsin.noalloc]-annotated function contains no
    allocating constructs (closures, tuples, records, arrays, boxed
    returns, partial applications, escaping refs) and only calls
    noalloc-or-whitelisted callees, via a memoised call-graph walk.
    Per-site suppression: [@lipsin.allow_alloc "reason"].

    Soundness caveats (see DESIGN.md 5h): local refs used only under
    [!]/[:=]/[incr]/[decr] are accepted (Simplif.eliminate_ref), and
    float/boxed-int primitives are whitelisted under the cmmgen
    straight-line-unboxing assumption — the runtime [bench --alloc]
    gate cross-checks both. *)

val rule : string

val run : roots:string list -> string list * Finding.t list
(** Load every .cmt under [roots]; returns the noalloc root keys found
    and the findings (empty when all proofs go through). *)

val run_units : Typed.unit_info list -> string list * Finding.t list
(** Same, over already-loaded units (used by tests with in-memory
    fixtures). *)
