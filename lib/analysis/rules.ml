(* The project-invariant rules, each a syntactic check over the
   compiler-libs Parsetree.  They are heuristics with a deliberately
   low false-positive rate: LIPSIN's correctness bugs historically come
   from polymorphic structural operations on Bytes-backed filters, from
   unsynchronized global state touched by worker domains, and from
   debug prints left in library code — all patterns a parse tree can
   see without type inference. *)

type source = { src_path : string; src_text : string }

type project = {
  proj_paths : string list;  (* every file the walk saw, incl. .mli *)
  proj_sources : source list;  (* parsed .ml files *)
}

type t =
  | File_rule of {
      name : string;
      describe : string;
      applies : source -> bool;
      check : source -> Parsetree.structure -> Finding.t list;
    }
  | Project_rule of {
      name : string;
      describe : string;
      check : project -> Finding.t list;
    }

let name = function File_rule r -> r.name | Project_rule r -> r.name
let describe = function File_rule r -> r.describe | Project_rule r -> r.describe

let finding_of_loc ~path ~rule (loc : Location.t) message =
  Finding.make ~file:path ~line:loc.loc_start.pos_lnum
    ~col:(loc.loc_start.pos_cnum - loc.loc_start.pos_bol)
    ~rule message

let contains_substring text sub =
  let n = String.length text and m = String.length sub in
  let rec at i = if i + m > n then false else String.sub text i m = sub || at (i + 1) in
  m > 0 && at 0

let under_lib path =
  String.length path >= 4 && String.sub path 0 4 = "lib/"
  || contains_substring path "/lib/"

let flatten_ident lid = Longident.flatten lid

(* ---- no-poly-compare ------------------------------------------------ *)

(* Applies to Bitvec/Zfilter-bearing modules: any file that names either
   module (or lives in their home directories).  Flags the polymorphic
   structural operations that silently compare Bytes-backed filters by
   representation: Stdlib.compare (and bare [compare] where the file
   does not define its own), Hashtbl.hash, and [=]/[<>] applied to an
   expression that syntactically yields a Bitvec.t or Zfilter.t. *)

let bitvec_home path =
  contains_substring path "lib/bitvec" || contains_substring path "lib/bloom"

let bearing src =
  bitvec_home src.src_path
  || contains_substring src.src_text "Bitvec."
  || contains_substring src.src_text "Zfilter."

let bitvec_returning =
  [ "create"; "copy"; "logor"; "logand"; "of_positions"; "of_hex"; "of_bytes" ]

let zfilter_returning = [ "create"; "of_bitvec"; "to_bitvec"; "copy"; "of_tags"; "of_hex" ]

let yields_filter (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constraint (_, ty) -> (
    match ty.ptyp_desc with
    | Ptyp_constr ({ txt; _ }, _) -> (
      match List.rev (flatten_ident txt) with
      | "t" :: md :: _ -> String.equal md "Bitvec" || String.equal md "Zfilter"
      | _ -> false)
    | _ -> false)
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
    match flatten_ident txt with
    | [ "Bitvec"; f ] -> List.mem f bitvec_returning
    | [ "Zfilter"; f ] -> List.mem f zfilter_returning
    | _ -> false)
  | _ -> false

let defines_value name ast =
  let found = ref false in
  let super = Ast_iterator.default_iterator in
  let pat self (p : Parsetree.pattern) =
    (match p.ppat_desc with
    | Ppat_var { txt; _ } when String.equal txt name -> found := true
    | _ -> ());
    super.pat self p
  in
  let iter = { super with pat } in
  iter.structure iter ast;
  !found

let no_poly_compare () =
  let check src ast =
    let path = src.src_path in
    let acc = ref [] in
    let has_own_compare = defines_value "compare" ast in
    let flag loc msg = acc := finding_of_loc ~path ~rule:"no-poly-compare" loc msg :: !acc in
    let super = Ast_iterator.default_iterator in
    let expr self (e : Parsetree.expression) =
      (match e.pexp_desc with
      | Pexp_ident { txt; loc } -> (
        match flatten_ident txt with
        | [ "Stdlib"; "compare" ] | [ "Pervasives"; "compare" ] ->
          flag loc
            "polymorphic Stdlib.compare in a Bitvec/Zfilter-bearing module; use \
             Bitvec.compare or a typed comparator (Int.compare, String.compare, ...)"
        | [ "Hashtbl"; "hash" ]
        | [ "Stdlib"; "Hashtbl"; "hash" ]
        | [ "Hashtbl"; "seeded_hash" ] ->
          flag loc
            "polymorphic Hashtbl.hash in a Bitvec/Zfilter-bearing module; use \
             Bitvec.hash (content FNV-1a) or a typed hash"
        | [ "compare" ] when not has_own_compare ->
          flag loc
            "bare polymorphic [compare] in a Bitvec/Zfilter-bearing module; use a \
             typed comparator (Int.compare, String.compare, Bitvec.compare, ...)"
        | _ -> ())
      | Pexp_apply
          ( { pexp_desc = Pexp_ident { txt; loc }; _ },
            [ (Asttypes.Nolabel, a); (Asttypes.Nolabel, b) ] ) -> (
        match flatten_ident txt with
        | [ ("=" | "<>" | "==" | "!=") ] | [ "Stdlib"; ("=" | "<>" | "==" | "!=") ]
          when yields_filter a || yields_filter b ->
          flag loc
            "structural equality on a Bitvec.t/Zfilter.t; use Bitvec.equal or \
             Zfilter.equal"
        | _ -> ())
      | _ -> ());
      super.expr self e
    in
    let iter = { super with expr } in
    iter.structure iter ast;
    List.rev !acc
  in
  File_rule
    {
      name = "no-poly-compare";
      describe =
        "ban polymorphic =/compare/Hashtbl.hash in Bitvec/Zfilter-bearing modules";
      applies = bearing;
      check;
    }

(* ---- domain-safety -------------------------------------------------- *)

(* Applies to modules reachable from the Domain-parallel delivery path
   (library closure over dune files).  Flags top-level mutable state —
   ref / Hashtbl.create / Buffer.create / Queue.create evaluated at
   module initialization, i.e. outside any function body — and any use
   of the global Random state, unless the binding is Atomic/Mutex
   guarded or an Obs telemetry cell (per-domain storage aggregated on
   read — sanctioned by construction).  Worker domains share module
   state; unsynchronized writes are data races OCaml 5 will not
   diagnose for you. *)

let head_module lid =
  match flatten_ident lid with md :: _ :: _ -> Some md | _ -> None

let state_maker lid =
  match flatten_ident lid with
  | [ "ref" ] | [ "Stdlib"; "ref" ] -> Some "ref"
  | [ "Hashtbl"; "create" ] | [ "Stdlib"; "Hashtbl"; "create" ] -> Some "Hashtbl.create"
  | [ "Buffer"; "create" ] -> Some "Buffer.create"
  | [ "Queue"; "create" ] -> Some "Queue.create"
  | _ -> None

let expr_mentions_guard (e : Parsetree.expression) =
  let found = ref false in
  let super = Ast_iterator.default_iterator in
  let expr self (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } -> (
      match head_module txt with
      | Some ("Atomic" | "Mutex" | "Domain" | "Obs" | "Lipsin_obs") ->
        (* Obs cells are sanctioned mutable state: per-domain, padded,
           aggregated on read (lib/obs). *)
        found := true
      | _ -> ())
    | _ -> ());
    super.expr self e
  in
  let iter = { super with expr } in
  iter.expr iter e;
  !found

(* Scan an expression for state constructors evaluated eagerly: stop at
   function boundaries, where evaluation is deferred to call time and
   the state becomes per-call. *)
let eager_state_makers (e : Parsetree.expression) =
  let acc = ref [] in
  let super = Ast_iterator.default_iterator in
  let expr self (inner : Parsetree.expression) =
    match inner.pexp_desc with
    | Pexp_fun _ | Pexp_function _ -> ()  (* evaluation deferred: stop *)
    | Pexp_ident { txt; loc } ->
      (match state_maker txt with
      | Some what -> acc := (what, loc) :: !acc
      | None -> ());
      super.expr self inner
    | _ -> super.expr self inner
  in
  let iter = { super with expr } in
  iter.expr iter e;
  List.rev !acc

let domain_safety ~in_scope =
  let check src ast =
    let path = src.src_path in
    let acc = ref [] in
    let flag loc msg = acc := finding_of_loc ~path ~rule:"domain-safety" loc msg :: !acc in
    (* Top-level bindings, including inside nested module structures. *)
    let rec walk_items (items : Parsetree.structure) =
      List.iter
        (fun (item : Parsetree.structure_item) ->
          match item.pstr_desc with
          | Pstr_value (_, bindings) ->
            List.iter
              (fun (vb : Parsetree.value_binding) ->
                if not (expr_mentions_guard vb.pvb_expr) then
                  List.iter
                    (fun (what, loc) ->
                      flag loc
                        (Printf.sprintf
                           "top-level %s in a module reachable from the \
                            Domain-parallel delivery path; guard it with \
                            Atomic/Mutex, use an Obs per-domain cell, or \
                            allocate it per call"
                           what))
                    (eager_state_makers vb.pvb_expr))
              bindings
          | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure inner; _ }; _ } ->
            walk_items inner
          | Pstr_recmodule mbs ->
            List.iter
              (fun (mb : Parsetree.module_binding) ->
                match mb.pmb_expr.pmod_desc with
                | Pmod_structure inner -> walk_items inner
                | _ -> ())
              mbs
          | _ -> ())
        items
    in
    walk_items ast;
    (* Global Random state anywhere in the module (top level or not):
       the shared PRNG is racy and non-reproducible across domains. *)
    let super = Ast_iterator.default_iterator in
    let expr self (e : Parsetree.expression) =
      (match e.pexp_desc with
      | Pexp_ident { txt; loc } -> (
        match flatten_ident txt with
        | "Random" :: second :: _ when not (String.equal second "State") ->
          flag loc
            "global Random state in a module reachable from the Domain-parallel \
             delivery path; thread a Lipsin_util.Rng.t or Random.State.t instead"
        | _ -> ())
      | _ -> ());
      super.expr self e
    in
    let iter = { super with expr } in
    iter.structure iter ast;
    List.sort Finding.compare_locs !acc
  in
  File_rule
    {
      name = "domain-safety";
      describe =
        "ban unguarded top-level mutable state in modules reachable from \
         lib/sim/parallel";
      applies = (fun src -> in_scope src.src_path);
      check;
    }

(* ---- no-debug-io ---------------------------------------------------- *)

let stdout_printers =
  [
    [ "print_endline" ];
    [ "print_string" ];
    [ "print_newline" ];
    [ "print_int" ];
    [ "print_char" ];
    [ "print_float" ];
    [ "Stdlib"; "print_endline" ];
    [ "Stdlib"; "print_string" ];
    [ "Stdlib"; "print_newline" ];
    [ "Printf"; "printf" ];
    [ "Stdlib"; "Printf"; "printf" ];
    [ "Format"; "printf" ];
    [ "Format"; "print_string" ];
    [ "Format"; "print_newline" ];
  ]

let no_debug_io () =
  let check src ast =
    let path = src.src_path in
    let acc = ref [] in
    let super = Ast_iterator.default_iterator in
    let expr self (e : Parsetree.expression) =
      (match e.pexp_desc with
      | Pexp_ident { txt; loc } ->
        let parts = flatten_ident txt in
        if List.exists (fun p -> List.equal String.equal p parts) stdout_printers
        then
          acc :=
            finding_of_loc ~path ~rule:"no-debug-io" loc
              (Printf.sprintf
                 "%s prints to stdout from library code; return data or take a \
                  Format.formatter"
                 (String.concat "." parts))
            :: !acc
      | _ -> ());
      super.expr self e
    in
    let iter = { super with expr } in
    iter.structure iter ast;
    List.rev !acc
  in
  File_rule
    {
      name = "no-debug-io";
      describe = "no Printf.printf / print_endline under lib/";
      applies = (fun src -> under_lib src.src_path);
      check;
    }

(* ---- mli-coverage --------------------------------------------------- *)

let mli_coverage () =
  let check proj =
    let have = Hashtbl.create 64 in
    List.iter (fun p -> Hashtbl.replace have p ()) proj.proj_paths;
    List.filter_map
      (fun src ->
        let p = src.src_path in
        if under_lib p && Filename.check_suffix p ".ml" then
          if Hashtbl.mem have (p ^ "i") then None
          else
            Some
              (Finding.make ~file:p ~line:1 ~col:0 ~rule:"mli-coverage"
                 "library module has no .mli interface; add one (or suppress with \
                  a justification) so the public surface stays deliberate")
        else None)
      proj.proj_sources
  in
  Project_rule
    {
      name = "mli-coverage";
      describe = "every lib/**/*.ml has a matching .mli";
      check;
    }
