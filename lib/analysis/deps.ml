(* A deliberately small s-expression reader: just enough to pull
   (library (name X) (libraries ...)) stanzas out of dune files.  It
   understands atoms, quoted strings and ;-comments, which covers every
   dune file in this repository. *)

type sexp = Atom of string | List of sexp list

let tokenize text =
  let n = String.length text in
  let tokens = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = text.[!i] in
    if c = ';' then begin
      while !i < n && text.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '(' || c = ')' then begin
      tokens := String.make 1 c :: !tokens;
      incr i
    end
    else if c = '"' then begin
      let buf = Buffer.create 16 in
      incr i;
      while !i < n && text.[!i] <> '"' do
        if text.[!i] = '\\' && !i + 1 < n then begin
          Buffer.add_char buf text.[!i + 1];
          i := !i + 2
        end
        else begin
          Buffer.add_char buf text.[!i];
          incr i
        end
      done;
      incr i;
      tokens := Buffer.contents buf :: !tokens
    end
    else if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else begin
      let start = !i in
      while
        !i < n
        &&
        let c = text.[!i] in
        c <> '(' && c <> ')' && c <> ';' && c <> '"' && c <> ' ' && c <> '\t'
        && c <> '\n' && c <> '\r'
      do
        incr i
      done;
      tokens := String.sub text start (!i - start) :: !tokens
    end
  done;
  List.rev !tokens

let parse_sexps text =
  let rec parse_list acc tokens =
    match tokens with
    | [] -> (List.rev acc, [])
    | ")" :: rest -> (List.rev acc, rest)
    | "(" :: rest ->
      let inner, rest = parse_list [] rest in
      parse_list (List inner :: acc) rest
    | atom :: rest -> parse_list (Atom atom :: acc) rest
  in
  let rec top acc tokens =
    match tokens with
    | [] -> List.rev acc
    | "(" :: rest ->
      let inner, rest = parse_list [] rest in
      top (List inner :: acc) rest
    | ")" :: rest -> top acc rest
    | _ :: rest -> top acc rest
  in
  top [] (tokenize text)

type library = { lib_name : string; lib_dir : string; lib_deps : string list }

let field name items =
  List.find_map
    (function
      | List (Atom n :: rest) when String.equal n name -> Some rest
      | _ -> None)
    items

let atoms items =
  List.filter_map (function Atom a -> Some a | List _ -> None) items

let libraries_of_dune ~path text =
  let dir = Filename.dirname path in
  List.filter_map
    (function
      | List (Atom "library" :: fields) -> (
        match field "name" fields with
        | Some (Atom name :: _) ->
          let deps =
            match field "libraries" fields with Some l -> atoms l | None -> []
          in
          Some { lib_name = name; lib_dir = dir; lib_deps = deps }
        | _ -> None)
      | _ -> None)
    (parse_sexps text)

let libraries_of_files dune_files =
  List.concat_map (fun (path, text) -> libraries_of_dune ~path text) dune_files

let owner libraries path =
  let dir = Filename.dirname path in
  List.find_opt (fun l -> String.equal l.lib_dir dir) libraries

let reachable_dirs libraries ~root =
  let tbl = Hashtbl.create 16 in
  List.iter (fun l -> Hashtbl.replace tbl l.lib_name l) libraries;
  let seen = Hashtbl.create 16 in
  let rec visit name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.replace seen name ();
      match Hashtbl.find_opt tbl name with
      | Some l -> List.iter visit l.lib_deps
      | None -> ()
    end
  in
  visit root;
  List.filter_map
    (fun l -> if Hashtbl.mem seen l.lib_name then Some l.lib_dir else None)
    libraries
