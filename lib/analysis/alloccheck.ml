(* lint: allow domain-safety — the callee whitelist table is built once
   at module initialization and never written afterwards; the linter
   itself runs single-domain. *)

(* Alloccheck: intraprocedural allocation-effect analysis over the
   typed tree, proving that [@lipsin.noalloc]-annotated functions
   contain no allocating constructs, with a call-graph walk so a
   noalloc function only calls noalloc-or-whitelisted callees.

   The pass emulates two compiler facts so that idiomatic zero-alloc
   OCaml passes clean:

   - [Simplif.eliminate_ref]: a local [let r = ref e] whose every use
     is directly under [!]/[:=]/[incr]/[decr] becomes a mutable stack
     variable and never allocates.  The checker tracks such refs and
     flags only refs that escape that discipline.

   - cmmgen unboxing: float/int64/int32/nativeint primitives
     (Int64.logand, +., Bytes.get_int64_le, ...) return boxed values
     in general but compile unboxed in straight-line arithmetic.
     These are whitelisted; the residual risk (a boxed value crossing
     a non-inlined call boundary) is exactly what [bench --alloc]
     measures at runtime, so the static and dynamic verdicts check
     each other.  A noalloc function whose own return type is
     float/int64/int32/nativeint is still flagged: its result is
     boxed at every call site. *)

let rule = "alloccheck"

(* Calls with these (normalised) heads never allocate on the success
   path.  Float/boxed-int arithmetic is included under the cmmgen
   caveat documented above. *)
let whitelist =
  let ops =
    [
      "+"; "-"; "*"; "/"; "mod"; "land"; "lor"; "lxor"; "lnot"; "lsl";
      "lsr"; "asr"; "~-"; "~+"; "succ"; "pred"; "abs"; "not"; "&&"; "&";
      "||"; "or"; "="; "<>"; "<"; ">"; "<="; ">="; "=="; "!="; "min";
      "max"; "ignore"; "incr"; "decr"; "!"; ":="; "fst"; "snd";
      "+."; "-."; "*."; "/."; "**"; "~-."; "float_of_int"; "int_of_float";
      "truncate"; "sqrt"; "ceil"; "floor"; "log"; "exp"; "abs_float";
      "mod_float"; "char_of_int"; "int_of_char"; "int_of_string_opt";
    ]
  in
  let mods =
    [
      ("Char", [ "code"; "chr"; "unsafe_chr"; "equal"; "compare" ]);
      ("Bool", [ "not"; "equal"; "compare" ]);
      ( "Int",
        [ "compare"; "equal"; "min"; "max"; "abs"; "to_float"; "of_float";
          "logand"; "logor"; "logxor"; "lognot"; "shift_left";
          "shift_right"; "shift_right_logical"; "add"; "sub"; "mul"; "div";
          "rem"; "neg"; "succ"; "pred" ] );
      ( "Int64",
        [ "add"; "sub"; "mul"; "div"; "rem"; "logand"; "logor"; "logxor";
          "lognot"; "neg"; "shift_left"; "shift_right";
          "shift_right_logical"; "of_int"; "to_int"; "of_int32";
          "to_int32"; "of_nativeint"; "to_nativeint"; "of_float";
          "to_float"; "bits_of_float"; "float_of_bits"; "equal"; "compare";
          "min"; "max"; "succ"; "pred"; "abs" ] );
      ( "Int32",
        [ "add"; "sub"; "mul"; "div"; "rem"; "logand"; "logor"; "logxor";
          "lognot"; "neg"; "shift_left"; "shift_right";
          "shift_right_logical"; "of_int"; "to_int"; "equal"; "compare" ] );
      ( "Nativeint",
        [ "add"; "sub"; "mul"; "div"; "rem"; "logand"; "logor"; "logxor";
          "lognot"; "neg"; "shift_left"; "shift_right";
          "shift_right_logical"; "of_int"; "to_int"; "equal"; "compare" ] );
      ( "Float",
        [ "add"; "sub"; "mul"; "div"; "neg"; "abs"; "of_int"; "to_int";
          "equal"; "compare"; "min"; "max"; "ceil"; "floor"; "round";
          "trunc"; "ldexp" ] );
      ( "Bytes",
        [ "get"; "set"; "unsafe_get"; "unsafe_set"; "length"; "fill";
          "blit"; "blit_string"; "unsafe_blit"; "unsafe_fill"; "equal";
          "compare"; "get_int64_le"; "set_int64_le"; "get_int64_be";
          "get_int32_le"; "set_int32_le"; "get_uint8"; "set_uint8";
          "get_int8"; "get_uint16_le"; "set_uint16_le" ] );
      ( "String",
        [ "length"; "get"; "unsafe_get"; "equal"; "compare"; "blit" ] );
      ( "Array",
        [ "get"; "set"; "unsafe_get"; "unsafe_set"; "length"; "fill";
          "blit" ] );
      ( "Atomic",
        [ "get"; "set"; "exchange"; "compare_and_set"; "fetch_and_add";
          "incr"; "decr" ] );
      (* Certified index primitives (PR 8): thin [@inline always]
         wrappers over the unsafe stdlib accessors above; the int64 pair
         compiles unboxed in straight-line code like Bytes.get_int64_le *)
      ( "Idx",
        [ "get"; "set"; "bget"; "bset"; "bget_u32"; "bget_i64";
          "bset_i64"; "is_checking" ] );
      ("Hashtbl", [ "mem"; "length" ]);
      ("Queue", [ "length"; "is_empty" ]);
      ("Domain", [ "is_main_domain" ]);
      ("Obs", [ "enabled" ]);
    ]
  in
  let tbl = Hashtbl.create 256 in
  List.iter (fun k -> Hashtbl.replace tbl k ()) ops;
  List.iter
    (fun (m, fs) ->
      List.iter (fun f -> Hashtbl.replace tbl (m ^ "." ^ f) ()) fs)
    mods;
  tbl

let whitelisted key = Hashtbl.mem whitelist key

(* Applications of these heads abort (raise/exit): their argument
   expressions are cold and exempt from the allocation judgement. *)
let aborts key =
  match key with
  | "raise" | "raise_notrace" | "failwith" | "invalid_arg" | "exit" -> true
  | _ -> false

type event =
  | Ealloc of string * Location.t  (* what allocates, where *)
  | Ecall of string * Location.t  (* normalised callee key *)

(* ---- per-function event extraction --------------------------------- *)

type scope = {
  idx : Typed.index;
  aliases : (string, string list) Hashtbl.t;
  unit_name : string;
  prefixes : string list;  (* innermost-first module prefixes, "Obs.Counter." *)
  mutable locals : Ident.t list;  (* params, lets, loop vars *)
  mutable elimrefs : Ident.t list;  (* eliminate_ref candidates *)
  mutable events : (event * bool) list;  (* event, allowed? *)
}

(* Innermost-first enclosing-module prefixes of a binding key:
   "Obs.Counter.incr" -> ["Obs.Counter."; "Obs."].  An unqualified
   name in the body resolves against these in scoping order. *)
let prefixes_of_key key =
  match List.rev (String.split_on_char '.' key) with
  | [] | [ _ ] -> []
  | _ :: mods ->
    let rec go acc = function
      | [] -> acc
      | _ :: rest as segs ->
        go ((String.concat "." (List.rev segs) ^ ".") :: acc) rest
    in
    List.rev (go [] mods)

let is_local sc id = List.exists (Ident.same id) sc.locals
let is_elimref sc id = List.exists (Ident.same id) sc.elimrefs

(* Key for a callee/ident path as seen in this scope.  A unit-local
   toplevel name ("subset_entry" inside fastpath.ml) is qualified with
   the unit short name so the call-graph finds its binding. *)
let scoped_key sc (p : Path.t) =
  match p with
  | Path.Pident id when not (is_local sc id) -> (
    let bare = Typed.key_of_path ~aliases:sc.aliases p in
    if String.contains bare '.' then bare
    else
      match
        List.find_opt
          (fun pre -> Option.is_some (Typed.find_binding sc.idx (pre ^ bare)))
          sc.prefixes
      with
      | Some pre -> pre ^ bare
      | None -> sc.unit_name ^ "." ^ bare)
  | _ -> Typed.key_of_path ~aliases:sc.aliases p

let boxed_type_name ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> (
    match List.rev (Typed.flatten_path p) with
    | ("float" | "int64" | "int32" | "nativeint") :: _ ->
      Some (List.hd (List.rev (Typed.flatten_path p)))
    | _ -> None)
  | _ -> None

(* Does this application leave the function under-applied?  Omitted
   optional arguments show as [None] in the argument list; a result
   type that is still an arrow means a partial application closure. *)
let partial_apply (e : Typedtree.expression) args =
  List.exists (fun (_, a) -> Option.is_none a) args
  ||
  match
    Types.get_desc (Ctype.expand_head e.exp_env e.exp_type)
  with
  | Types.Tarrow _ -> true
  | _ -> false
  | exception _ -> false

let add sc ~allowed ev = sc.events <- (ev, allowed) :: sc.events

let rec walk sc ~allowed (e : Typedtree.expression) =
  let allowed =
    allowed || Typed.has_attr Typed.allow_alloc_attr e.exp_attributes
  in
  let loc = e.exp_loc in
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) when is_elimref sc id ->
    (* Any use outside !/:=/incr/decr heapifies the ref. *)
    add sc ~allowed
      (Ealloc ("ref " ^ Ident.name id ^ " escapes (not eliminable)", loc))
  | Texp_ident _ | Texp_constant _ | Texp_instvar _ | Texp_unreachable -> ()
  | Texp_let (_, vbs, body) ->
    List.iter (fun vb -> walk_vb sc ~allowed vb) vbs;
    walk sc ~allowed body
  | Texp_function { param; cases; _ } ->
    add sc ~allowed (Ealloc ("closure allocation", loc));
    sc.locals <- param :: sc.locals;
    walk_cases sc ~allowed cases
  | Texp_apply (fn, args) -> walk_apply sc ~allowed ~loc e fn args
  | Texp_match (scrut, cases, _) ->
    walk sc ~allowed scrut;
    walk_cases sc ~allowed cases
  | Texp_try (body, cases) ->
    walk sc ~allowed body;
    walk_cases sc ~allowed cases
  | Texp_tuple es ->
    add sc ~allowed (Ealloc ("tuple allocation", loc));
    List.iter (walk sc ~allowed) es
  | Texp_construct (_, cd, args) ->
    if not (List.is_empty args) then
      add sc ~allowed
        (Ealloc ("constructor " ^ cd.cstr_name ^ " allocation", loc));
    List.iter (walk sc ~allowed) args
  | Texp_variant (_, arg) ->
    Option.iter
      (fun a ->
        add sc ~allowed (Ealloc ("polymorphic variant allocation", loc));
        walk sc ~allowed a)
      arg
  | Texp_record { fields; extended_expression; _ } ->
    add sc ~allowed (Ealloc ("record allocation", loc));
    Option.iter (walk sc ~allowed) extended_expression;
    Array.iter
      (fun (_, def) ->
        match def with
        | Typedtree.Overridden (_, e) -> walk sc ~allowed e
        | Typedtree.Kept _ -> ())
      fields
  | Texp_field (e, _, _) -> walk sc ~allowed e
  | Texp_setfield (dst, _, _, v) ->
    walk sc ~allowed dst;
    walk sc ~allowed v
  | Texp_array es ->
    add sc ~allowed (Ealloc ("array allocation", loc));
    List.iter (walk sc ~allowed) es
  | Texp_ifthenelse (c, t, f) ->
    walk sc ~allowed c;
    walk sc ~allowed t;
    Option.iter (walk sc ~allowed) f
  | Texp_sequence (a, b) ->
    walk sc ~allowed a;
    walk sc ~allowed b
  | Texp_while (c, body) ->
    walk sc ~allowed c;
    walk sc ~allowed body
  | Texp_for (id, _, lo, hi, _, body) ->
    sc.locals <- id :: sc.locals;
    walk sc ~allowed lo;
    walk sc ~allowed hi;
    walk sc ~allowed body
  | Texp_assert (e, _) ->
    (* [assert false] and friends are cold; a live condition runs hot. *)
    (match e.exp_desc with
    | Texp_construct (_, { cstr_name = "false"; _ }, _) -> ()
    | _ -> walk sc ~allowed e)
  | Texp_lazy _ -> add sc ~allowed (Ealloc ("lazy allocation", loc))
  | Texp_letmodule (_, _, _, _, body) ->
    add sc ~allowed (Ealloc ("local module", loc));
    walk sc ~allowed body
  | Texp_open (_, body) -> walk sc ~allowed body
  | _ -> add sc ~allowed (Ealloc ("unrecognised construct (conservative)", loc))

and walk_cases : type k. scope -> allowed:bool -> k Typedtree.case list -> unit
    =
 fun sc ~allowed cases ->
  List.iter
    (fun (c : _ Typedtree.case) ->
      sc.locals <- Typed.pat_idents c.c_lhs @ sc.locals;
      Option.iter (walk sc ~allowed) c.c_guard;
      walk sc ~allowed c.c_rhs)
    cases

and walk_vb sc ~allowed (vb : Typedtree.value_binding) =
  let allowed =
    allowed || Typed.has_attr Typed.allow_alloc_attr vb.vb_attributes
  in
  match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
  | ( Tpat_var (id, _),
      Texp_apply
        ( { exp_desc = Texp_ident (rp, _, _); _ },
          [ (_, Some seed) ] ) )
    when String.equal (scoped_key sc rp) "ref"
         || String.equal (Typed.key_of_path ~aliases:sc.aliases rp) "ref" ->
    (* eliminate_ref candidate: allocation charged only if a use
       escapes the deref/assign discipline (checked during the walk). *)
    sc.elimrefs <- id :: sc.elimrefs;
    sc.locals <- id :: sc.locals;
    walk sc ~allowed seed
  | _ ->
    sc.locals <- Typed.pat_idents vb.vb_pat @ sc.locals;
    walk sc ~allowed vb.vb_expr

and walk_apply sc ~allowed ~loc whole fn args =
  match fn.exp_desc with
  | Texp_ident (p, _, _) -> (
    let key = scoped_key sc p in
    let bare = Typed.key_of_path ~aliases:sc.aliases p in
    match bare with
    | "!" | ":=" | "incr" | "decr" -> (
      (* deref/assign: an elimref ident in destination position is the
         sanctioned pattern, not an escape. *)
      match args with
      | (_, Some { exp_desc = Texp_ident (Path.Pident id, _, _); _ }) :: rest
        when is_elimref sc id ->
        List.iter (fun (_, a) -> Option.iter (walk sc ~allowed) a) rest
      | _ -> List.iter (fun (_, a) -> Option.iter (walk sc ~allowed) a) args)
    | "@@" -> (
      (* f @@ x is direct application of f *)
      match args with
      | (_, Some real_fn) :: rest -> walk_apply sc ~allowed ~loc whole real_fn rest
      | _ -> ())
    | "|>" -> (
      (* x |> f: argument first, then direct application of f *)
      match args with
      | [ (l1, Some arg); (_, Some real_fn) ] ->
        walk_apply sc ~allowed ~loc whole real_fn [ (l1, Some arg) ]
      | _ -> List.iter (fun (_, a) -> Option.iter (walk sc ~allowed) a) args)
    | _ when aborts bare -> ()
    | _ ->
      if partial_apply whole args then
        add sc ~allowed (Ealloc ("partial application of " ^ key, loc));
      (match p with
      | Path.Pident id when is_local sc id ->
        add sc ~allowed (Ealloc ("indirect call through " ^ Ident.name id, loc))
      | _ ->
        if String.equal bare "ref" then
          add sc ~allowed (Ealloc ("ref allocation (not bound to a local let)", loc))
        else if not (whitelisted bare) then add sc ~allowed (Ecall (key, loc)));
      List.iter (fun (_, a) -> Option.iter (walk sc ~allowed) a) args)
  | _ ->
    (* computed callee: conservatively a closure-valued expression *)
    walk sc ~allowed fn;
    if partial_apply whole args then
      add sc ~allowed (Ealloc ("partial application", loc));
    List.iter (fun (_, a) -> Option.iter (walk sc ~allowed) a) args

(* Descend the curried [fun]-spine of a binding; returns the body and
   registers the parameters as locals. *)
let rec spine sc (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_function { param; cases = [ { c_lhs; c_guard = None; c_rhs } ]; _ }
    ->
    sc.locals <- (param :: Typed.pat_idents c_lhs) @ sc.locals;
    spine sc c_rhs
  | _ -> e

(* Events of one binding's body (spine descent, then full walk).  A
   bare-ident body ([let popcount = Other.f]) is an eta-reduced alias:
   treat it as a call so the graph walk chains through. *)
let analyze idx (b : Typed.binding) =
  let sc =
    {
      idx;
      aliases = b.b_aliases;
      unit_name = b.b_unit.unit_name;
      prefixes = prefixes_of_key b.b_key;
      locals = [];
      elimrefs = [];
      events = [];
    }
  in
  let allowed =
    Typed.has_attr Typed.allow_alloc_attr b.b_vb.vb_attributes
  in
  let body = spine sc b.b_vb.vb_expr in
  (match body.exp_desc with
  | Texp_ident (p, _, _)
    when (match p with
         | Path.Pident id -> not (is_local sc id)
         | _ -> true) -> (
    let bare = Typed.key_of_path ~aliases:sc.aliases p in
    if not (whitelisted bare) then
      add sc ~allowed (Ecall (scoped_key sc p, body.exp_loc)))
  | _ -> walk sc ~allowed body);
  (* A noalloc function returning float/int64/... boxes its result at
     every call site. *)
  (match boxed_type_name body.exp_type with
  | Some ty ->
    add sc ~allowed
      (Ealloc ("returns boxed " ^ ty ^ " (result boxed at call sites)",
               body.exp_loc))
  | None -> ());
  List.rev sc.events

(* ---- call-graph walk ------------------------------------------------ *)

let check_roots idx =
  let memo : (string, Finding.t list) Hashtbl.t = Hashtbl.create 64 in
  let rec visit ~chain key =
    match Hashtbl.find_opt memo key with
    | Some fs -> fs
    | None when List.mem key chain -> []  (* recursion: judged once *)
    | None -> (
      match Typed.resolve_binding idx key with
      | None -> [] (* caller reports the unknown callee *)
      | Some b ->
        Hashtbl.replace memo key [];  (* cut cycles *)
        let file = b.b_unit.unit_source in
        let chain = chain @ [ key ] in
        let via =
          match chain with
          | [ _ ] -> ""
          | _ -> " [via " ^ String.concat " -> " chain ^ "]"
        in
        let fs =
          List.concat_map
            (fun (ev, allowed) ->
              if allowed then []
              else
                match ev with
                | Ealloc (what, loc) ->
                  [ Typed.finding_of_loc ~file ~rule loc (what ^ via) ]
                | Ecall (callee, loc) -> (
                  match Typed.resolve_binding idx callee with
                  | Some _ -> visit ~chain callee
                  | None ->
                    [
                      Typed.finding_of_loc ~file ~rule loc
                        ("calls " ^ callee
                       ^ ", which is neither whitelisted nor analyzable"
                       ^ via);
                    ]))
            (analyze idx b)
        in
        Hashtbl.replace memo key fs;
        fs)
  in
  let roots =
    Hashtbl.fold
      (fun key (b : Typed.binding) acc ->
        if Typed.has_attr Typed.noalloc_attr b.b_vb.vb_attributes then
          key :: acc
        else acc)
      idx.Typed.idx_bindings []
  in
  let findings =
    List.concat_map (fun key -> visit ~chain:[] key) (List.sort String.compare roots)
  in
  (List.sort String.compare roots, List.sort_uniq Finding.compare_locs findings)

(* Entry point: load cmts under [roots] (directories), return the
   noalloc roots found and the findings. *)
let run ~roots =
  let units = Typed.load_units roots in
  let idx = Typed.index_units units in
  check_roots idx

let run_units units = check_roots (Typed.index_units units)
