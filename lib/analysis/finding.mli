(** A single lint finding and the two reporters.

    Locations are 1-based lines and 0-based columns, matching the
    compiler's own convention so editors can jump to them. *)

type t = {
  file : string;  (** Path as given to the driver (repo-relative). *)
  line : int;
  col : int;
  rule : string;  (** Rule name, e.g. ["no-poly-compare"]. *)
  message : string;
}

val make : file:string -> line:int -> col:int -> rule:string -> string -> t

val compare_locs : t -> t -> int
(** Orders by file, then line, column and rule — the report order. *)

val to_human : t -> string
(** [file:line:col: [rule] message]. *)

val to_json : t -> string
(** One finding as a JSON object. *)

val report_human : t list -> string
(** All findings, one per line, followed by a count summary. *)

val report_json : t list -> string
(** [{"findings": [...], "count": n}] — the [--format json] output. *)
