(* Shared machinery for the typed-tree passes (Alloccheck, Racecheck):
   .cmt loading, in-memory typing for test fixtures, path
   normalisation, toplevel binding/alias extraction and attribute
   lookup.  Everything here is pure bookkeeping over [Typedtree]; the
   allocation and race judgements live in their own modules. *)

type unit_info = {
  unit_name : string;  (* short module name, e.g. "Fastpath" *)
  unit_source : string;  (* source path recorded in the cmt *)
  unit_str : Typedtree.structure;
}

(* dune mangles wrapped-library modules as "Lipsin_forwarding__Fastpath";
   the short name is the part after the last "__". *)
let short_name s =
  let n = String.length s in
  let cut = ref 0 in
  for i = 0 to n - 2 do
    if s.[i] = '_' && s.[i + 1] = '_' then cut := i + 2
  done;
  if !cut > 0 && !cut < n then String.sub s !cut (n - !cut) else s

let load_cmt path =
  match Cmt_format.read_cmt path with
  | exception _ -> None
  | infos -> (
    match infos.Cmt_format.cmt_annots with
    | Cmt_format.Implementation str ->
      Some
        {
          unit_name = short_name infos.Cmt_format.cmt_modname;
          unit_source =
            (match infos.Cmt_format.cmt_sourcefile with
            | Some f -> f
            | None -> path);
          unit_str = str;
        }
    | _ -> None)

(* Walk [roots] (directories or single .cmt files) collecting every
   .cmt below them; unlike the parse-level linter this deliberately
   descends into _build, where dune puts the cmts. *)
let rec scan_paths acc path =
  if (not (Sys.file_exists path)) then acc
  else if Sys.is_directory path then
    Array.fold_left
      (fun acc name -> scan_paths acc (Filename.concat path name))
      acc
      (let entries = Sys.readdir path in
       Array.sort String.compare entries;
       entries)
  else if Filename.check_suffix path ".cmt" then path :: acc
  else acc

let scan roots = List.rev (List.fold_left scan_paths [] roots)

let load_units roots =
  List.filter_map load_cmt (scan roots)

(* In-memory typing for test fixtures: parse and type [text] against
   the initial environment (stdlib only). *)
let type_impl ~name text =
  Compmisc.init_path ();
  let env = Compmisc.initial_env () in
  let lexbuf = Lexing.from_string text in
  Lexing.set_filename lexbuf (name ^ ".ml");
  let ast = Parse.implementation lexbuf in
  let str, _, _, _, _ = Typemod.type_structure env ast in
  { unit_name = name; unit_source = name ^ ".ml"; unit_str = str }

(* ---- path normalisation -------------------------------------------- *)

let rec flatten_path p =
  match p with
  | Path.Pident id -> [ Ident.name id ]
  | Path.Pdot (p, s) -> flatten_path p @ [ s ]
  | Path.Papply (p, _) -> flatten_path p
  | Path.Pextra_ty (p, _) -> flatten_path p

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

(* Canonical dotted key for a path seen from inside some unit:
   - each segment is de-mangled ("Lib__Mod" -> "Mod");
   - a leading "Stdlib" is dropped ("Stdlib.incr" -> "incr");
   - a leading dune wrapper module ("Lipsin_bitvec") is dropped when
     followed by the real module;
   - a leading local alias ("module B = Lipsin_x.Y" -> B) is replaced
     by its target. *)
let key_of_segments ~aliases segs =
  let segs = List.map short_name segs in
  let segs =
    match segs with
    | "Stdlib" :: (_ :: _ as rest) -> rest
    | hd :: (_ :: _ as rest) when starts_with ~prefix:"Lipsin_" hd -> rest
    | segs -> segs
  in
  let segs =
    match segs with
    | hd :: rest -> (
      match Hashtbl.find_opt aliases hd with
      | Some target -> target @ rest
      | None -> segs)
    | [] -> []
  in
  String.concat "." segs

let key_of_path ~aliases p = key_of_segments ~aliases (flatten_path p)

(* ---- binding extraction -------------------------------------------- *)

type binding = {
  b_key : string;  (* e.g. "Fastpath.decide", "Obs.Counter.add" *)
  b_unit : unit_info;
  b_vb : Typedtree.value_binding;
  b_aliases : (string, string list) Hashtbl.t;  (* unit's alias table *)
}

type index = {
  idx_bindings : (string, binding) Hashtbl.t;
  idx_units : unit_info list;
}

let rec collect_structure ~unit ~prefix ~tbl ~aliases str =
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            match vb.vb_pat.pat_desc with
            | Tpat_var (id, _) ->
              let key = prefix ^ Ident.name id in
              Hashtbl.replace tbl key
                { b_key = key; b_unit = unit; b_vb = vb; b_aliases = aliases }
            | _ -> ())
          vbs
      | Tstr_module mb -> collect_module ~unit ~prefix ~tbl ~aliases mb
      | Tstr_recmodule mbs ->
        List.iter (collect_module ~unit ~prefix ~tbl ~aliases) mbs
      | _ -> ())
    str.Typedtree.str_items

and collect_module ~unit ~prefix ~tbl ~aliases (mb : Typedtree.module_binding) =
  match mb.mb_id with
  | None -> ()
  | Some id -> (
    let name = Ident.name id in
    let rec of_mexpr (me : Typedtree.module_expr) =
      match me.mod_desc with
      | Tmod_ident (p, _) ->
        (* [module B = Lipsin_x.Y]: record the alias so later paths
           through B normalise to Y's canonical key. *)
        let target = key_of_segments ~aliases (flatten_path p) in
        if not (String.equal target "") then
          Hashtbl.replace aliases name (String.split_on_char '.' target)
      | Tmod_structure s ->
        collect_structure ~unit ~prefix:(prefix ^ name ^ ".") ~tbl ~aliases s
      | Tmod_constraint (me, _, _, _) -> of_mexpr me
      | _ -> ()
    in
    of_mexpr mb.mb_expr)

let index_units units =
  let tbl = Hashtbl.create 512 in
  List.iter
    (fun u ->
      let aliases = Hashtbl.create 16 in
      collect_structure ~unit:u ~prefix:(u.unit_name ^ ".") ~tbl ~aliases
        u.unit_str)
    units;
  { idx_bindings = tbl; idx_units = units }

let find_binding idx key = Hashtbl.find_opt idx.idx_bindings key

(* A bare name used inside a nested module ("bucket_slow" inside
   [Obs.Histogram]) normalises to "Obs.bucket_slow", but the binding
   was collected as "Obs.Histogram.bucket_slow".  Fall back to the
   unique same-unit binding with that trailing name, if any. *)
let resolve_binding idx key =
  match find_binding idx key with
  | Some b -> Some b
  | None -> (
    match String.split_on_char '.' key with
    | [ unit_name; name ] -> (
      let prefix = unit_name ^ "." in
      let suffix = "." ^ name in
      match
        Hashtbl.fold
          (fun k b acc ->
            if
              starts_with ~prefix k
              && String.length k >= String.length suffix
              && String.equal
                   (String.sub k
                      (String.length k - String.length suffix)
                      (String.length suffix))
                   suffix
            then b :: acc
            else acc)
          idx.idx_bindings []
      with
      | [ b ] -> Some b
      | _ -> None)
    | _ -> None)

(* Aliases were populated during collection; expose the table used for
   a given unit by re-deriving it (collection stores one table per
   unit, shared by all its bindings). *)

(* ---- attributes ----------------------------------------------------- *)

let attr_named name (a : Parsetree.attribute) = String.equal a.attr_name.txt name
let has_attr name attrs = List.exists (attr_named name) attrs

(* Extract the string payload of [@name "reason"], if any. *)
let attr_payload_string name attrs =
  List.find_map
    (fun (a : Parsetree.attribute) ->
      if not (String.equal a.attr_name.txt name) then None
      else
        match a.attr_payload with
        | Parsetree.PStr
            [
              {
                pstr_desc =
                  Pstr_eval
                    ( {
                        pexp_desc =
                          Pexp_constant (Pconst_string (s, _, _));
                        _;
                      },
                      _ );
                _;
              };
            ] ->
          Some s
        | _ -> None)
    attrs

let noalloc_attr = "lipsin.noalloc"
let allow_alloc_attr = "lipsin.allow_alloc"
let allow_race_attr = "lipsin.allow_race"
let inbounds_attr = "lipsin.inbounds"
let allow_unchecked_attr = "lipsin.allow_unchecked"

(* ---- misc shared helpers ------------------------------------------- *)

let finding_of_loc ~file ~rule (loc : Location.t) msg =
  let line = max 1 loc.loc_start.pos_lnum in
  let col = max 0 (loc.loc_start.pos_cnum - loc.loc_start.pos_bol) in
  Finding.make ~file ~line ~col ~rule msg

(* Bound idents of a (general) pattern, for scope tracking. *)
let pat_idents : type k. k Typedtree.general_pattern -> Ident.t list =
 fun p -> Typedtree.pat_bound_idents p
