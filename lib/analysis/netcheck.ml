(* Whole-deployment static verification (see netcheck.mli and
   DESIGN.md Sec. 5d).

   The key modelling fact, taken from Node_engine.forward: the set of
   out-links a zFilter is copied to at a node depends only on the
   node's table state and the filter — never on the arrival link.  So
   the links one packet can traverse form a fixed point computable by
   node-level BFS ("delivery closure"), a loop exists iff that closure
   contains a directed cycle, and the incoming-LIT check (Sec. 3.3.3)
   catches a cycle iff some node on it receives the packet over two
   distinct in-links (the cache keys on the first arrival and drops on
   a different one; a source-entered pure ring never triggers it). *)

module Bitvec = Lipsin_bitvec.Bitvec
module Lit = Lipsin_bloom.Lit
module Zfilter = Lipsin_bloom.Zfilter
module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module Assignment = Lipsin_core.Assignment
module Candidate = Lipsin_core.Candidate
module Node_engine = Lipsin_forwarding.Node_engine
module Recovery = Lipsin_forwarding.Recovery
module Rng = Lipsin_util.Rng
module Finding = Lipsin_linter.Finding

type severity = Info | Warning | Error

type finding = {
  check : string;
  severity : severity;
  table : int;
  node : int;
  links : int list;
  detail : string;
}

type virtual_entry = {
  v_tags : Bitvec.t array;
  v_out : Graph.link list;
}

type model = {
  assignment : Assignment.t;
  net_graph : Graph.t;
  params : Lit.params;
  limit : float;
  loop_prevention : bool;
  up : bool array;  (* by link index *)
  tags : Bitvec.t array array;  (* tags.(link index).(table) *)
  blocks : Bitvec.t option array list array;  (* by link index *)
  virtuals : virtual_entry list array;  (* by node *)
}

let graph t = t.net_graph
let fill_limit t = t.limit

let mk ?(table = -1) ?(node = -1) ?(links = []) check severity detail =
  { check; severity; table; node; links; detail }

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let lstr g i =
  let l = Graph.link g i in
  Printf.sprintf "%d->%d#%d" l.Graph.src l.Graph.dst i

let links_str g indices = String.concat " " (List.map (lstr g) indices)

let anchor_string f =
  let anchors =
    List.filter_map Fun.id
      [
        (if f.table >= 0 then Some (Printf.sprintf "table %d" f.table) else None);
        (if f.node >= 0 then Some (Printf.sprintf "node %d" f.node) else None);
        (match f.links with
        | [] -> None
        | ls ->
          Some
            (Printf.sprintf "links %s"
               (String.concat "," (List.map string_of_int ls))));
      ]
  in
  match anchors with
  | [] -> ""
  | _ -> " (" ^ String.concat ", " anchors ^ ")"

let to_string f =
  Printf.sprintf "%s [%s]%s: %s"
    (severity_to_string f.severity)
    f.check (anchor_string f) f.detail

let to_lint_finding ~deployment f =
  Finding.make ~file:deployment ~line:0 ~col:0 ~rule:f.check
    (Printf.sprintf "%s%s: %s"
       (severity_to_string f.severity)
       (anchor_string f) f.detail)

let errors findings =
  List.filter (fun f -> match f.severity with Error -> true | _ -> false)
    findings

(* ---------------------------------------------------------------- *)
(* Models                                                           *)
(* ---------------------------------------------------------------- *)

let model_of_assignment ?(fill_limit = 0.7) ?(loop_prevention = true)
    assignment =
  let g = Assignment.graph assignment in
  let nl = Graph.link_count g in
  let tags = Array.make nl [||] in
  Graph.iter_links g (fun l ->
      tags.(l.Graph.index) <- Lit.tags (Assignment.lit assignment l));
  {
    assignment;
    net_graph = g;
    params = Assignment.params assignment;
    limit = fill_limit;
    loop_prevention;
    up = Array.make nl true;
    tags;
    blocks = Array.make nl [];
    virtuals = Array.make (Graph.node_count g) [];
  }

let model_of_engines assignment ~engine_of =
  let g = Assignment.graph assignment in
  let nl = Graph.link_count g in
  let up = Array.make nl true in
  let tags = Array.make nl [||] in
  let blocks = Array.make nl [] in
  let virtuals = Array.make (Graph.node_count g) [] in
  let limit = ref infinity in
  let loop_prevention = ref true in
  for v = 0 to Graph.node_count g - 1 do
    let st = Node_engine.state (engine_of v) in
    if st.Node_engine.state_fill_limit < !limit then
      limit := st.Node_engine.state_fill_limit;
    if not st.Node_engine.state_loop_prevention then loop_prevention := false;
    Array.iter
      (fun p ->
        let i = p.Node_engine.port_link.Graph.index in
        up.(i) <- p.Node_engine.port_up;
        tags.(i) <- p.Node_engine.port_tags;
        blocks.(i) <- p.Node_engine.port_blocks)
      st.Node_engine.state_ports;
    virtuals.(v) <-
      List.map
        (fun (v_tags, v_out) -> { v_tags; v_out })
        st.Node_engine.state_virtuals
  done;
  {
    assignment;
    net_graph = g;
    params = Assignment.params assignment;
    limit = !limit;
    loop_prevention = !loop_prevention;
    up;
    tags;
    blocks;
    virtuals;
  }

(* ---------------------------------------------------------------- *)
(* Delivery closure (abstract Algorithm 1)                          *)
(* ---------------------------------------------------------------- *)

let blocked t i ~table ~zbv =
  List.exists
    (fun neg ->
      match neg.(table) with
      | Some pattern -> Bitvec.subset pattern ~of_:zbv
      | None -> false)
    t.blocks.(i)

(* Out-links the packet is copied to at [v] — exactly the physical and
   virtual scans of Node_engine.forward, which are arrival-independent. *)
let admitted_out t ~table ~zbv v =
  let out = ref [] in
  List.iter
    (fun l ->
      let i = l.Graph.index in
      if
        t.up.(i)
        && Bitvec.subset t.tags.(i).(table) ~of_:zbv
        && not (blocked t i ~table ~zbv)
      then out := l :: !out)
    (Graph.out_links t.net_graph v);
  List.iter
    (fun ve ->
      if Bitvec.subset ve.v_tags.(table) ~of_:zbv then
        List.iter
          (fun l -> if t.up.(l.Graph.index) then out := l :: !out)
          ve.v_out)
    t.virtuals.(v);
  List.sort_uniq (fun a b -> Int.compare a.Graph.index b.Graph.index) !out

(* Fixed point: (reached links, reached nodes) of the packet from
   [src].  Node-level BFS is exact because admission is
   arrival-independent. *)
let closure t ~table ~zbv ~src =
  let reached_links = Array.make (Graph.link_count t.net_graph) false in
  let reached_nodes = Array.make (Graph.node_count t.net_graph) false in
  reached_nodes.(src) <- true;
  let q = Queue.create () in
  Queue.add src q;
  while not (Queue.is_empty q) do
    let v = Queue.take q in
    List.iter
      (fun l ->
        if not reached_links.(l.Graph.index) then begin
          reached_links.(l.Graph.index) <- true;
          if not reached_nodes.(l.Graph.dst) then begin
            reached_nodes.(l.Graph.dst) <- true;
            Queue.add l.Graph.dst q
          end
        end)
      (admitted_out t ~table ~zbv v)
  done;
  (reached_links, reached_nodes)

(* Cyclic strongly connected components of the reached link digraph
   (Tarjan).  Self-loops don't exist, so cyclic means >= 2 nodes. *)
let cyclic_sccs t ~reached_links =
  let g = t.net_graph in
  let n = Graph.node_count g in
  let adj v =
    List.filter (fun l -> reached_links.(l.Graph.index)) (Graph.out_links g v)
  in
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let sccs = ref [] in
  let rec strong v =
    index.(v) <- !counter;
    low.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun l ->
        let w = l.Graph.dst in
        if index.(w) < 0 then begin
          strong w;
          if low.(w) < low.(v) then low.(v) <- low.(w)
        end
        else if on_stack.(w) && index.(w) < low.(v) then low.(v) <- index.(w))
      (adj v);
    if low.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      let comp = pop [] in
      if List.length comp > 1 then sccs := comp :: !sccs
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strong v
  done;
  !sccs

(* One concrete cycle (shortest through an arbitrary member) inside a
   cyclic SCC, as a link list in traversal order. *)
let cycle_in_scc t ~reached_links scc =
  let g = t.net_graph in
  let n = Graph.node_count g in
  let in_scc = Array.make n false in
  List.iter (fun v -> in_scc.(v) <- true) scc;
  let v0 = List.hd scc in
  let parent = Array.make n None in
  let visited = Array.make n false in
  visited.(v0) <- true;
  let q = Queue.create () in
  Queue.add v0 q;
  let found = ref None in
  while Option.is_none !found && not (Queue.is_empty q) do
    let u = Queue.take q in
    List.iter
      (fun l ->
        if
          Option.is_none !found
          && reached_links.(l.Graph.index)
          && in_scc.(l.Graph.dst)
        then begin
          if l.Graph.dst = v0 then found := Some l
          else if not visited.(l.Graph.dst) then begin
            visited.(l.Graph.dst) <- true;
            parent.(l.Graph.dst) <- Some l;
            Queue.add l.Graph.dst q
          end
        end)
      (Graph.out_links g u)
  done;
  match !found with
  | None -> []
  | Some closing ->
    let rec climb v acc =
      if v = v0 then acc
      else
        match parent.(v) with
        | Some l -> climb l.Graph.src (l :: acc)
        | None -> acc
    in
    climb closing.Graph.src [ closing ]

(* The incoming-LIT check fires at a node only when the packet arrives
   there over two distinct in-links: the first arrival caches
   (zFilter, in-link), the second drops.  With the closure's reached
   in-link counts this is decidable exactly. *)
let scc_catch_node t ~reached_links scc =
  let g = t.net_graph in
  let indeg = Array.make (Graph.node_count g) 0 in
  Graph.iter_links g (fun l ->
      if reached_links.(l.Graph.index) then
        indeg.(l.Graph.dst) <- indeg.(l.Graph.dst) + 1);
  List.find_opt (fun v -> indeg.(v) >= 2) scc

(* ---------------------------------------------------------------- *)
(* Per-zFilter verification                                         *)
(* ---------------------------------------------------------------- *)

let loop_findings t ~table ~reached_links =
  List.map
    (fun scc ->
      let cycle = cycle_in_scc t ~reached_links scc in
      let links = List.map (fun l -> l.Graph.index) cycle in
      match
        if t.loop_prevention then scc_catch_node t ~reached_links scc
        else None
      with
      | Some v ->
        mk "loop" Warning ~table ~node:v ~links
          (Printf.sprintf
             "admitted cycle %s: caught by the incoming-LIT check at node %d \
              after one revolution (duplicate deliveries until then)"
             (links_str t.net_graph links) v)
      | None ->
        mk "loop" Error ~table ~links
          (Printf.sprintf
             "admitted cycle %s: %s — the packet circulates indefinitely"
             (links_str t.net_graph links)
             (if t.loop_prevention then
                "every node on it has a single in-link, so the incoming-LIT \
                 check never fires"
              else "loop prevention is disabled")))
    (cyclic_sccs t ~reached_links)

let check_zfilter t ~table ~zfilter ~src ~tree =
  let d = t.params.Lit.d in
  if table < 0 || table >= d then
    [
      mk "bad-table" Error ~table
        (Printf.sprintf "table index outside [0, %d): packets are dropped" d);
    ]
  else if Zfilter.m zfilter <> t.params.Lit.m then
    [
      mk "bad-zfilter" Error ~table
        (Printf.sprintf "zFilter width %d does not match the deployment's m = %d"
           (Zfilter.m zfilter) t.params.Lit.m);
    ]
  else begin
    let rho = Zfilter.fill_factor zfilter in
    let k = t.params.Lit.k_for_table.(table) in
    if rho > t.limit then
      [
        mk "fill-limit" Error ~table ~node:src
          (Printf.sprintf
             "fill factor %.3f exceeds the limit %.2f: every node drops the \
              packet before matching (Sec. 4.4)"
             rho t.limit);
      ]
    else begin
      let zbv = Zfilter.to_bitvec zfilter in
      let reached_links, reached_nodes = closure t ~table ~zbv ~src in
      let on_tree = Array.make (Graph.link_count t.net_graph) false in
      List.iter (fun l -> on_tree.(l.Graph.index) <- true) tree;
      let loops = loop_findings t ~table ~reached_links in
      let false_deliveries = ref [] in
      Array.iteri
        (fun i r ->
          if r && not on_tree.(i) then
            false_deliveries :=
              mk "false-delivery" Warning ~table ~links:[ i ]
                ~node:(Graph.link t.net_graph i).Graph.src
                (Printf.sprintf
                   "off-tree delivery over %s (fill %.3f, expected rho^k = \
                    %.2e per test)"
                   (lstr t.net_graph i) rho (rho ** float_of_int k))
              :: !false_deliveries)
        reached_links;
      let intended = if tree = [] then [ src ] else Spt.tree_nodes tree in
      let missing = List.filter (fun v -> not reached_nodes.(v)) intended in
      let under =
        match missing with
        | [] -> []
        | _ ->
          let dead_tree_links =
            List.filter_map
              (fun l ->
                if not reached_links.(l.Graph.index) then Some l.Graph.index
                else None)
              tree
          in
          [
            mk "under-delivery" Error ~table ~links:dead_tree_links
              (Printf.sprintf
                 "%d intended node(s) outside the delivery closure: %s"
                 (List.length missing)
                 (String.concat "," (List.map string_of_int missing)));
          ]
      in
      loops @ under @ List.rev !false_deliveries
    end
  end

let check_tree t ~src ~tree =
  if tree = [] then []
  else
    Candidate.build t.assignment ~tree
    |> Array.to_list
    |> List.concat_map (fun c ->
           check_zfilter t ~table:c.Candidate.table ~zfilter:c.Candidate.zfilter
             ~src ~tree)

let check_sampled t ~rng ~samples =
  let g = t.net_graph in
  let n = Graph.node_count g in
  let acc = ref [] in
  for _ = 1 to samples do
    let src = Rng.int rng n in
    let dist = Spt.distances g ~root:src in
    let reachable = ref [] in
    Array.iteri
      (fun v dv -> if v <> src && dv <> max_int then reachable := v :: !reachable)
      dist;
    let arr = Array.of_list !reachable in
    if Array.length arr > 0 then begin
      Rng.shuffle rng arr;
      let count = 1 + Rng.int rng (min 8 (Array.length arr)) in
      let subscribers = Array.to_list (Array.sub arr 0 count) in
      let tree = Spt.delivery_tree g ~root:src ~subscribers in
      acc := check_tree t ~src ~tree @ !acc
    end
  done;
  List.rev !acc

(* ---------------------------------------------------------------- *)
(* LIT anomalies                                                    *)
(* ---------------------------------------------------------------- *)

let tables_suffix = function
  | [ t ] -> Printf.sprintf "table %d" t
  | ts ->
    Printf.sprintf "tables %s" (String.concat "," (List.map string_of_int ts))

let check_lits t =
  let g = t.net_graph in
  let d = t.params.Lit.d in
  let out = ref [] in
  let add f = out := f :: !out in
  (* Duplicate nonces: identical identities in every table. *)
  let nonces = Assignment.nonces t.assignment in
  let seen = Hashtbl.create (Array.length nonces) in
  Array.iteri
    (fun i n ->
      match Hashtbl.find_opt seen n with
      | Some j ->
        add
          (mk "nonce-duplicate" Error ~links:[ j; i ]
             (Printf.sprintf
                "links %s and %s share nonce %Lx: identical LITs in every \
                 table, every delivery over one falsely reaches the other"
                (lstr g j) (lstr g i) n))
      | None -> Hashtbl.add seen n i)
    nonces;
  (* Sibling out-link relations, per node. *)
  for v = 0 to Graph.node_count g - 1 do
    let outs = Array.of_list (Graph.out_links g v) in
    let deg = Array.length outs in
    for a = 0 to deg - 1 do
      let ia = outs.(a).Graph.index in
      for b = a + 1 to deg - 1 do
        let ib = outs.(b).Graph.index in
        let eq = ref [] and sub_ab = ref [] and sub_ba = ref [] in
        for tb = d - 1 downto 0 do
          let ta_ = t.tags.(ia).(tb) and tb_ = t.tags.(ib).(tb) in
          if Bitvec.equal ta_ tb_ then eq := tb :: !eq
          else if Bitvec.subset ta_ ~of_:tb_ then sub_ab := tb :: !sub_ab
          else if Bitvec.subset tb_ ~of_:ta_ then sub_ba := tb :: !sub_ba
        done;
        (match !eq with
        | [] -> ()
        | ts ->
          add
            (mk "lit-collision" Error ~table:(List.hd ts) ~node:v
               ~links:[ ia; ib ]
               (Printf.sprintf
                  "sibling out-links %s and %s have identical LITs in %s: \
                   they always forward together"
                  (lstr g ia) (lstr g ib) (tables_suffix ts))));
        let subset_finding lo hi ts =
          add
            (mk "lit-subset" Warning ~table:(List.hd ts) ~node:v
               ~links:[ lo; hi ]
               (Printf.sprintf
                  "LIT of %s is contained in the LIT of %s in %s: admitting \
                   the latter always admits the former"
                  (lstr g lo) (lstr g hi) (tables_suffix ts)))
        in
        (match !sub_ab with [] -> () | ts -> subset_finding ia ib ts);
        (match !sub_ba with [] -> () | ts -> subset_finding ib ia ts)
      done;
      (* Union cover: the OR of the other siblings implies this link. *)
      if deg >= 3 then begin
        let covered = ref [] in
        for tb = d - 1 downto 0 do
          let union = Bitvec.create t.params.Lit.m in
          let single = ref false in
          for b = 0 to deg - 1 do
            if b <> a then begin
              let tb_ = t.tags.(outs.(b).Graph.index).(tb) in
              Bitvec.logor_into ~dst:union tb_;
              if Bitvec.subset t.tags.(ia).(tb) ~of_:tb_ then single := true
            end
          done;
          if (not !single) && Bitvec.subset t.tags.(ia).(tb) ~of_:union then
            covered := tb :: !covered
        done;
        match !covered with
        | [] -> ()
        | ts ->
          add
            (mk "lit-union-cover" Info ~table:(List.hd ts) ~node:v
               ~links:[ ia ]
               (Printf.sprintf
                  "LIT of %s is covered by the OR of its %d sibling LITs in \
                   %s: any zFilter addressing all siblings also forwards here"
                  (lstr g ia) (deg - 1) (tables_suffix ts)))
      end
    done;
    (* Virtual entries shadowing physical siblings. *)
    List.iteri
      (fun vi ve ->
        Array.iter
          (fun l ->
            let i = l.Graph.index in
            let v_in_p = ref [] and p_in_v = ref [] in
            for tb = d - 1 downto 0 do
              let vt = ve.v_tags.(tb) and pt = t.tags.(i).(tb) in
              if Bitvec.subset vt ~of_:pt then v_in_p := tb :: !v_in_p;
              if Bitvec.subset pt ~of_:vt then p_in_v := tb :: !p_in_v
            done;
            let shadow direction ts =
              add
                (mk "virtual-shadow" Warning ~table:(List.hd ts) ~node:v
                   ~links:[ i ]
                   (Printf.sprintf
                      "virtual entry %d at node %d %s physical sibling %s in \
                       %s"
                      vi v direction (lstr g i) (tables_suffix ts)))
            in
            (match !v_in_p with
            | [] -> ()
            | ts -> shadow "is implied by (fires on every packet for)" ts);
            match !p_in_v with
            | [] -> ()
            | ts -> shadow "implies (every packet for it also forwards over)" ts)
          outs)
      t.virtuals.(v)
  done;
  List.rev !out

(* ---------------------------------------------------------------- *)
(* Deployment-wide loop admissibility                               *)
(* ---------------------------------------------------------------- *)

(* Shortest non-backtracking cycle through [start] over up links, by
   link-level BFS.  The immediate reverse is excluded (the 2-link
   ping-pong every edge admits is reported once, separately). *)
let shortest_cycle t start =
  let g = t.net_graph in
  let nl = Graph.link_count g in
  let rev i = (Graph.reverse_link g (Graph.link g i)).Graph.index in
  let start_rev = rev start.Graph.index in
  let target = start.Graph.src in
  let parent = Array.make nl (-1) in
  let visited = Array.make nl false in
  let q = Queue.create () in
  let push pl l =
    let i = l.Graph.index in
    if (not visited.(i)) && t.up.(i) && i <> start_rev then begin
      visited.(i) <- true;
      parent.(i) <- pl;
      Queue.add i q
    end
  in
  List.iter (push (-1)) (Graph.out_links g start.Graph.dst);
  let result = ref None in
  while Option.is_none !result && not (Queue.is_empty q) do
    let i = Queue.take q in
    let l = Graph.link g i in
    if l.Graph.dst = target then begin
      let rec climb j acc =
        if j < 0 then acc else climb parent.(j) (Graph.link g j :: acc)
      in
      result := Some (start :: climb i [])
    end
    else
      List.iter
        (fun l2 -> if l2.Graph.index <> rev i then push i l2)
        (Graph.out_links g l.Graph.dst)
  done;
  !result

let cycle_union t ~table cycle =
  let union = Bitvec.create t.params.Lit.m in
  List.iter
    (fun l -> Bitvec.logor_into ~dst:union t.tags.(l.Graph.index).(table))
    cycle;
  union

(* Exact catchability of the minimal witness: flood the cycle's OR'd
   zFilter from a cycle node and look for a cycle node with two distinct
   reached in-links — only there can the incoming-LIT check observe a
   second arrival.  On the minimal cycle the closure usually IS the
   cycle (single in-links everywhere), so the witness circulates
   uncaught on any cyclic deployment; that is inherent to stateless iBF
   forwarding, hence loop admissibility is a Warning (not an Error)
   whenever loop prevention is at least armed. *)
let witness_catch_node t ~table ~union cycle =
  let src = (List.hd cycle).Graph.src in
  let reached_links, _ = closure t ~table ~zbv:union ~src in
  let indeg = Array.make (Graph.node_count t.net_graph) 0 in
  Graph.iter_links t.net_graph (fun l ->
      if reached_links.(l.Graph.index) then
        indeg.(l.Graph.dst) <- indeg.(l.Graph.dst) + 1);
  List.find_opt
    (fun v -> indeg.(v) >= 2)
    (List.map (fun l -> l.Graph.dst) cycle)

let check_loops t =
  let g = t.net_graph in
  let nl = Graph.link_count g in
  let d = t.params.Lit.d in
  let out = ref [] in
  (* Distinct shortest non-backtracking cycles. *)
  let cycles = ref [] in
  let seen = Hashtbl.create 16 in
  for i = 0 to nl - 1 do
    if t.up.(i) then
      match shortest_cycle t (Graph.link g i) with
      | None -> ()
      | Some cyc ->
        let key =
          String.concat ","
            (List.map string_of_int
               (List.sort Int.compare (List.map (fun l -> l.Graph.index) cyc)))
        in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          cycles := cyc :: !cycles
        end
  done;
  for table = 0 to d - 1 do
    let admissible =
      List.filter_map
        (fun cyc ->
          let union = cycle_union t ~table cyc in
          let fill = Bitvec.fill_ratio union in
          if
            fill <= t.limit
            && not
                 (List.exists
                    (fun l -> blocked t l.Graph.index ~table ~zbv:union)
                    cyc)
          then Some (cyc, fill)
          else None)
        !cycles
    in
    match admissible with
    | [] -> ()
    | _ ->
      let cyc, fill =
        List.fold_left
          (fun ((_, bf) as best) ((_, f) as cand) ->
            if f < bf then cand else best)
          (List.hd admissible) (List.tl admissible)
      in
      let links = List.map (fun l -> l.Graph.index) cyc in
      let severity = if t.loop_prevention then Warning else Error in
      let fate =
        if not t.loop_prevention then
          "loop prevention is disabled: only the TTL stops it"
        else
          match
            witness_catch_node t ~table ~union:(cycle_union t ~table cyc) cyc
          with
          | Some v ->
            Printf.sprintf
              "the incoming-LIT check can catch it at node %d (second \
               in-link in its closure)"
              v
          | None ->
            "its closure gives every cycle node a single in-link, so the \
             incoming-LIT check never fires and only the TTL stops it"
      in
      out :=
        mk "loop-admissible" severity ~table ~links
          (Printf.sprintf
             "a zFilter ORing the LITs of cycle %s (fill %.3f <= limit %.2f) \
              self-admits on every hop; %d admissible cycle(s) in this table; \
              %s"
             (links_str g links) fill t.limit (List.length admissible) fate)
        :: !out
  done;
  (* The engine applies no reverse-interface suppression: both
     directions of any edge in one zFilter ping-pong forever (caught
     only as above).  Report the cheapest witness once. *)
  let best = ref None in
  for i = 0 to nl - 1 do
    let l = Graph.link g i in
    let r = Graph.reverse_link g l in
    if i < r.Graph.index && t.up.(i) && t.up.(r.Graph.index) then begin
      let union = Bitvec.logor t.tags.(i).(0) t.tags.(r.Graph.index).(0) in
      let fill = Bitvec.fill_ratio union in
      match !best with
      | Some (_, _, bf) when bf <= fill -> ()
      | _ -> best := Some (i, r.Graph.index, fill)
    end
  done;
  (match !best with
  | Some (i, ri, fill) when fill <= t.limit ->
    out :=
      mk "reverse-ping-pong" Info ~table:0 ~links:[ i; ri ]
        (Printf.sprintf
           "the engine has no reverse-interface suppression: a zFilter \
            holding both directions of an edge (e.g. %s + %s, fill %.3f) \
            bounces until the incoming-LIT check or the TTL stops it"
           (lstr g i) (lstr g ri) fill)
      :: !out
  | _ -> ());
  List.rev !out

(* ---------------------------------------------------------------- *)
(* Recovery soundness                                               *)
(* ---------------------------------------------------------------- *)

(* Overlay: the model after VLId activation of [path] for [failed] —
   the failed port down at its source, the failed link's identity
   installed as a virtual next-hop entry along the path (mirrors
   Recovery.vlid_activate). *)
let with_vlid t ~failed ~path =
  let up = Array.copy t.up in
  up.(failed.Graph.index) <- false;
  let virtuals = Array.copy t.virtuals in
  let v_tags = Lit.tags (Assignment.lit t.assignment failed) in
  List.iter
    (fun l ->
      virtuals.(l.Graph.src) <- { v_tags; v_out = [ l ] } :: virtuals.(l.Graph.src))
    path;
  { t with up; virtuals }

let check_recovery t =
  let g = t.net_graph in
  let d = t.params.Lit.d in
  let out = ref [] in
  Graph.iter_links g (fun failed ->
      let fi = failed.Graph.index in
      match Recovery.backup_path g ~link:failed with
      | None ->
        out :=
          mk "recovery-bridge" Warning ~node:failed.Graph.src ~links:[ fi ]
            (Printf.sprintf
               "link %s is a bridge: no backup path exists, neither VLId nor \
                zFilter-rewrite recovery can protect it"
               (lstr g fi))
          :: !out
      | Some path ->
        (* zFilter-rewrite fill headroom. *)
        let over = ref [] in
        for table = d - 1 downto 0 do
          let patch = Recovery.zfilter_patch t.assignment ~table ~backup:path in
          Bitvec.logor_into ~dst:patch (Assignment.tag t.assignment failed ~table);
          let fill = Bitvec.fill_ratio patch in
          if fill > t.limit then over := (table, fill) :: !over
        done;
        (match !over with
        | [] -> ()
        | (tb, fill) :: _ as all ->
          out :=
            mk "recovery-fill" Warning ~table:tb ~links:[ fi ]
              (Printf.sprintf
                 "zFilter-rewrite patch for %s (backup of %d links) alone \
                  reaches fill %.3f > limit %.2f in %s: rewritten packets \
                  are dropped"
                 (lstr g fi) (List.length path) fill t.limit
                 (tables_suffix (List.map fst all)))
            :: !out);
        (* VLId activation: the failed link's own tags must still reach
           the far endpoint, loop-free, on the overlay. *)
        let overlay = with_vlid t ~failed ~path in
        for table = 0 to d - 1 do
          let z =
            Zfilter.of_tags ~m:t.params.Lit.m
              [ Assignment.tag t.assignment failed ~table ]
          in
          List.iter
            (fun f ->
              let renamed =
                match f.check with
                | "loop" -> Some { f with check = "recovery-loop" }
                | "under-delivery" ->
                  Some { f with check = "recovery-unreachable" }
                | _ -> None
              in
              match renamed with
              | Some f ->
                out :=
                  {
                    f with
                    links = fi :: f.links;
                    detail =
                      Printf.sprintf "after VLId activation for %s: %s"
                        (lstr g fi) f.detail;
                  }
                  :: !out
              | None -> ())
            (check_zfilter overlay ~table ~zfilter:z ~src:failed.Graph.src
               ~tree:[ failed ])
        done);
  List.rev !out

(* ---------------------------------------------------------------- *)
(* Everything                                                       *)
(* ---------------------------------------------------------------- *)

let check_deployment ?(samples = 0) ?rng t =
  let base = check_lits t @ check_loops t @ check_recovery t in
  if samples <= 0 then base
  else
    let rng = match rng with Some r -> r | None -> Rng.of_int 0x11 in
    base @ check_sampled t ~rng ~samples

(* ---------------------------------------------------------------- *)
(* Partitioned (stitched) zFilters                                  *)
(* ---------------------------------------------------------------- *)

module Adaptive = Lipsin_core.Adaptive
module Partition = Lipsin_bloom.Partition

(* Exactly-once verification of a Stagecut plan: structural validity,
   per-stage fill/coverage/closure, subscriber multiplicity across
   stages, and the runtime stage digraph implied by the stitch entries
   the partition installs.  An extra stitch firing at a node the stage
   *intends* to traverse is an Error (the compiler's nonce repair rules
   these out); one only reachable through a false-positive link is the
   statistical background the fill limit bounds, reported as a
   Warning. *)
let check_partition ?(fill_limit = 0.7) ?loop_prevention ?subscribers adaptive
    part =
  let out = ref [] in
  let flag f = out := f :: !out in
  (match Partition.validate part with
  | Ok () -> ()
  | Error e -> flag (mk "partition-structure" Error e));
  let widths = Adaptive.widths adaptive in
  let models = Hashtbl.create 4 in
  let model_for m =
    match Hashtbl.find_opt models m with
    | Some mo -> mo
    | None ->
      let mo =
        model_of_assignment ~fill_limit ?loop_prevention
          (Adaptive.assignment adaptive ~m)
      in
      Hashtbl.add models m mo;
      mo
  in
  let stages = part.Partition.stages in
  let n_stages = Array.length stages in
  let stage_ok = Array.make n_stages false in
  Array.iter
    (fun (s : Partition.stage) ->
      let i = s.Partition.index in
      if not (List.mem s.Partition.m widths) then
        flag
          (mk "stage-width" Error
             (Printf.sprintf "stage %d uses width %d outside the family [%s]" i
                s.Partition.m
                (String.concat ";" (List.map string_of_int widths))))
      else begin
        let asg = Adaptive.assignment adaptive ~m:s.Partition.m in
        let d = (Assignment.params asg).Lit.d in
        if s.Partition.table >= d then
          flag
            (mk "bad-table" Error ~table:s.Partition.table
               (Printf.sprintf "stage %d uses table %d of %d" i
                  s.Partition.table d))
        else begin
          if i >= 0 && i < n_stages then stage_ok.(i) <- true;
          if not (Zfilter.within_fill_limit s.Partition.filter ~limit:fill_limit)
          then
            flag
              (mk "fill-limit" Error ~table:s.Partition.table
                 (Printf.sprintf "stage %d fill factor %.3f exceeds limit %.3f" i
                    (Zfilter.fill_factor s.Partition.filter)
                    fill_limit))
        end
      end)
    stages;
  (* Subscriber multiplicity across stages: the intent-level
     exactly-once law. *)
  let owners = Hashtbl.create 256 in
  Array.iter
    (fun (s : Partition.stage) ->
      List.iter
        (fun w ->
          Hashtbl.replace owners w
            (s.Partition.index
            :: Option.value ~default:[] (Hashtbl.find_opt owners w)))
        s.Partition.subscribers)
    stages;
  Hashtbl.iter
    (fun w ss ->
      if List.length ss > 1 then
        flag
          (mk "double-delivery" Error ~node:w
             (Printf.sprintf "subscriber %d is claimed by stages %s" w
                (String.concat "," (List.rev_map string_of_int ss)))))
    owners;
  (match subscribers with
  | None -> ()
  | Some subs ->
    List.iter
      (fun w ->
        if not (Hashtbl.mem owners w) then
          flag
            (mk "under-delivery" Error ~node:w
               (Printf.sprintf "subscriber %d is in no stage" w)))
      subs);
  (* Every stitch entry the partition installs, across all stages. *)
  let entries =
    Array.to_list stages
    |> List.concat_map (fun (p : Partition.stage) ->
           List.map
             (fun (h : Partition.handoff) -> (p, h))
             p.Partition.handoffs)
  in
  let parent = Array.make n_stages (-1) in
  List.iter
    (fun ((p : Partition.stage), (h : Partition.handoff)) ->
      if h.Partition.next >= 0 && h.Partition.next < n_stages then
        parent.(h.Partition.next) <- p.Partition.index)
    entries;
  let rec is_ancestor a s =
    s >= 0 && (s = a || is_ancestor a parent.(s))
  in
  (* Per-stage closure work: under-delivery, handoff reachability, and
     the firing scan against every installed entry. *)
  Array.iter
    (fun (s : Partition.stage) ->
      let i = s.Partition.index in
      if i >= 0 && i < n_stages && stage_ok.(i) then begin
        let mo = model_for s.Partition.m in
        let g = mo.net_graph in
        let zbv = Zfilter.to_bitvec s.Partition.filter in
        let asg = mo.assignment in
        (* Coverage: the filter must contain its own tree links. *)
        List.iter
          (fun li ->
            let l = Graph.link g li in
            if
              not
                (Bitvec.subset
                   (Assignment.tag asg l ~table:s.Partition.table)
                   ~of_:zbv)
            then
              flag
                (mk "stage-coverage" Error ~table:s.Partition.table
                   ~links:[ li ]
                   (Printf.sprintf "stage %d filter does not cover its link %s" i
                      (lstr g li))))
          s.Partition.links;
        let egress_tag_at ~m ~table nonce =
          Lit.tag
            (Partition.egress_lit
               (Assignment.params (Adaptive.assignment adaptive ~m))
               ~nonce)
            table
        in
        if s.Partition.handoffs <> [] then begin
          let tag =
            egress_tag_at ~m:s.Partition.m ~table:s.Partition.table
              s.Partition.nonce
          in
          if not (Bitvec.subset tag ~of_:zbv) then
            flag
              (mk "stage-egress" Error ~table:s.Partition.table
                 (Printf.sprintf "stage %d filter lacks its egress tag" i))
        end;
        let _links_r, nodes_r =
          closure mo ~table:s.Partition.table ~zbv ~src:s.Partition.root
        in
        List.iter
          (fun w ->
            if w < Array.length nodes_r && not nodes_r.(w) then
              flag
                (mk "under-delivery" Error ~table:s.Partition.table ~node:w
                   (Printf.sprintf "stage %d does not reach subscriber %d" i w)))
          s.Partition.subscribers;
        (* Intended tree nodes, for Error/Warning classification. *)
        let on_tree = Array.make (Graph.node_count g) false in
        on_tree.(s.Partition.root) <- true;
        List.iter
          (fun li ->
            let l = Graph.link g li in
            on_tree.(l.Graph.src) <- true;
            on_tree.(l.Graph.dst) <- true)
          s.Partition.links;
        List.iter
          (fun (h : Partition.handoff) ->
            if h.Partition.next >= 0 && h.Partition.next < n_stages then begin
              if stages.(h.Partition.next).Partition.root <> h.Partition.at then
                flag
                  (mk "stitch-misrooted" Error ~node:h.Partition.at
                     (Printf.sprintf
                        "handoff to stage %d at node %d but that stage roots at \
                         node %d"
                        h.Partition.next h.Partition.at
                        stages.(h.Partition.next).Partition.root));
              if
                h.Partition.at < Array.length nodes_r
                && not nodes_r.(h.Partition.at)
              then
                flag
                  (mk "stitch-unreachable" Error ~node:h.Partition.at
                     (Printf.sprintf
                        "handoff to stage %d at node %d is outside stage %d's \
                         delivery closure"
                        h.Partition.next h.Partition.at i))
            end)
          s.Partition.handoffs;
        (* Runtime stage digraph: which installed entries fire during
           this stage's traversal.  Only entries of the same width are
           visible to the packet. *)
        List.iter
          (fun ((p : Partition.stage), (h : Partition.handoff)) ->
            if
              p.Partition.index <> i
              && p.Partition.m = s.Partition.m
              && h.Partition.at < Array.length nodes_r
              && nodes_r.(h.Partition.at)
            then
              let tag =
                egress_tag_at ~m:s.Partition.m ~table:s.Partition.table
                  p.Partition.nonce
              in
              if Bitvec.subset tag ~of_:zbv then begin
                let sev =
                  if on_tree.(h.Partition.at) then Error else Warning
                in
                let looping = is_ancestor h.Partition.next i in
                flag
                  (mk
                     (if looping then "cross-stage-loop"
                      else "cross-stage-duplicate")
                     sev ~table:s.Partition.table ~node:h.Partition.at
                     (Printf.sprintf
                        "stage %d's filter falsely fires the handoff of stage \
                         %d at node %d (enters stage %d %s)"
                        i p.Partition.index h.Partition.at h.Partition.next
                        (if looping then "again — a stage cycle"
                         else "a second time")))
              end)
          entries
      end)
    stages;
  List.rev !out
