(* The lint driver: file collection, suppression comments, parsing,
   rule orchestration and reporting.  Kept filesystem-light so tests
   can feed it in-memory file sets. *)

let parse_error_rule = "parse-error"

(* [(* lint: allow <rule> — justification *)] anywhere in a file
   suppresses that rule for the whole file.  The scan is textual (the
   parser drops comments): find "lint:", expect "allow", then take the
   rule name. *)
let suppressions text =
  let n = String.length text in
  let names = ref [] in
  let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r' in
  let is_name c = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-' in
  let rec skip_spaces i = if i < n && is_space text.[i] then skip_spaces (i + 1) else i in
  let marker = "lint:" in
  let m = String.length marker in
  let rec scan i =
    if i + m > n then List.rev !names
    else if String.sub text i m = marker then begin
      let j = skip_spaces (i + m) in
      let allow = "allow" in
      let a = String.length allow in
      if j + a <= n && String.sub text j a = allow then begin
        let j = skip_spaces (j + a) in
        let k = ref j in
        while !k < n && is_name text.[!k] do
          incr k
        done;
        if !k > j then names := String.sub text j (!k - j) :: !names;
        scan !k
      end
      else scan (i + m)
    end
    else scan (i + 1)
  in
  scan 0

let parse_impl ~path text =
  let lexbuf = Lexing.from_string text in
  Lexing.set_filename lexbuf path;
  Parse.implementation lexbuf

let parse_error_finding ~path exn =
  let loc, msg =
    match exn with
    | Syntaxerr.Error err -> (Syntaxerr.location_of_error err, "syntax error")
    | Lexer.Error (_, loc) -> (loc, "lexical error")
    | _ -> (Location.none, Printexc.to_string exn)
  in
  let line = max 1 loc.Location.loc_start.pos_lnum in
  let col = max 0 (loc.Location.loc_start.pos_cnum - loc.Location.loc_start.pos_bol) in
  Finding.make ~file:path ~line ~col ~rule:parse_error_rule
    (Printf.sprintf "file does not parse (%s); the linter cannot check it" msg)

let dune_basename path = String.equal (Filename.basename path) "dune"
let ml_file path = Filename.check_suffix path ".ml"

(* The library that owns the Domain-parallel delivery path: the
   domain-safety scope is everything reachable from it. *)
let default_domain_root = "lipsin_sim"

let default_rules ?(domain_root = default_domain_root) ~dune_files () =
  let libraries = Deps.libraries_of_files dune_files in
  let reachable = Deps.reachable_dirs libraries ~root:domain_root in
  let in_scope path = List.mem (Filename.dirname path) reachable in
  [
    Rules.no_poly_compare ();
    Rules.domain_safety ~in_scope;
    Rules.no_debug_io ();
    Rules.mli_coverage ();
  ]

let rule_names ?domain_root () =
  List.map Rules.name (default_rules ?domain_root ~dune_files:[] ())

let run ?domain_root ?rules ~files () =
  let dune_files = List.filter (fun (p, _) -> dune_basename p) files in
  let rules =
    match rules with
    | Some rs -> rs
    | None -> default_rules ?domain_root ~dune_files ()
  in
  let sources =
    List.filter_map
      (fun (p, text) ->
        if ml_file p then Some { Rules.src_path = p; src_text = text } else None)
      files
  in
  let project =
    { Rules.proj_paths = List.map fst files; proj_sources = sources }
  in
  let suppressed_tbl = Hashtbl.create 64 in
  List.iter
    (fun src ->
      List.iter
        (fun rule -> Hashtbl.replace suppressed_tbl (src.Rules.src_path, rule) ())
        (suppressions src.Rules.src_text))
    sources;
  let suppressed file rule = Hashtbl.mem suppressed_tbl (file, rule) in
  let findings = ref [] in
  let add fs = findings := fs @ !findings in
  List.iter
    (fun src ->
      match parse_impl ~path:src.Rules.src_path src.Rules.src_text with
      | exception exn -> add [ parse_error_finding ~path:src.Rules.src_path exn ]
      | ast ->
        List.iter
          (function
            | Rules.File_rule r when r.applies src -> add (r.check src ast)
            | Rules.File_rule _ | Rules.Project_rule _ -> ())
          rules)
    sources;
  List.iter
    (function
      | Rules.Project_rule r -> add (r.check project)
      | Rules.File_rule _ -> ())
    rules;
  List.sort Finding.compare_locs
    (List.filter
       (fun f -> not (suppressed f.Finding.file f.Finding.rule))
       !findings)

(* ---- filesystem loading (for the CLI and the @lint alias) ---------- *)

let readable_source path =
  ml_file path || Filename.check_suffix path ".mli" || dune_basename path

let rec walk acc path =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc name ->
        if String.length name > 0 && name.[0] = '.' then acc
        else if String.equal name "_build" then acc
        else walk acc (Filename.concat path name))
      acc
      (let entries = Sys.readdir path in
       Array.sort String.compare entries;
       entries)
  else if readable_source path then path :: acc
  else acc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_paths roots =
  let paths = List.rev (List.fold_left walk [] roots) in
  List.map (fun p -> (p, read_file p)) paths
