(** Cross-module shared-state (domain-race) analysis over typed trees.

    Collects every mutable write reachable from a [Domain.spawn] body
    and classifies it: domain-local, atomic, mutex-guarded,
    obs-padded-cell, DLS-backed, or an unsanctioned shared write —
    the latter reported with a witness access path and the call chain
    from the spawn site.  Per-site suppression:
    [@lipsin.allow_race "reason"].

    Approximations (see DESIGN.md 5h): values returned by calls count
    as domain-local (fresh-value assumption, operationally backed by
    [Parallel.warm_graph] pre-forcing shared memos), closures are
    analysed in their definition scope, and unknown external callees
    are assumed read-only. *)

val rule : string

val run : roots:string list -> int * Finding.t list
(** Load every .cmt under [roots]; returns the number of spawn sites
    analysed and the findings. *)

val run_units : Typed.unit_info list -> int * Finding.t list
(** Same, over already-loaded units (used by tests). *)

val debug_summary : Typed.index -> Typed.binding -> string
(** Render one binding's write/call summary; debug aid for tuning. *)
