(* lint: allow domain-safety — the write-primitive table is built once
   at module initialization and never written afterwards; the linter
   itself runs single-domain. *)

(* Racecheck: cross-module shared-state analysis.  Every mutable
   location written by code reachable from a [Domain.spawn] body is
   classified as domain-local, atomic, mutex-guarded, obs-padded-cell,
   DLS-backed, or an *unsanctioned shared write*, reported with a
   witness access path and the call chain from the spawn site.

   Per-function summaries record each write's *root* — the base value
   the written location hangs off (walking down field projections and
   array/bytes reads).  Parameter roots are re-rooted at every call
   site; a root produced by a function call inside the body counts as
   domain-local (fresh-value approximation: [Parallel.run_shard]
   builds a private [Net] per shard, and graph memos that alias shared
   state through such containers are pre-forced by
   [Parallel.warm_graph] and annotated [@lipsin.allow_race] at the
   write site — see DESIGN.md 5h for the soundness discussion). *)

let rule = "racecheck"

type root =
  | Rlocal  (* defined (or built) inside the function *)
  | Rparam of int  (* positional index among the spine parameters *)
  | Rcaptured of string  (* free ident: captured by a spawn closure *)
  | Rglobal of string  (* toplevel state, e.g. "Graph.some_table" *)
  | Runknown

type kind = Kplain | Katomic | Kguarded | Kobs | Kdls | Krandom

type wevent = {
  w_path : string;  (* witness access path, e.g. "t.out_rev.(u)" *)
  w_loc : Location.t;
  w_root : root;
  w_kind : kind;
  w_allowed : bool;
}

type cevent = {
  c_key : string;
  c_loc : Location.t;
  c_args : (Asttypes.arg_label * root) list;
  c_allowed : bool;
}

type summary = { s_writes : wevent list; s_calls : cevent list }

(* Write-through functions: normalised key -> destination argument
   position (among the [Some _] arguments, in order). *)
let write_table =
  let entries =
    [
      ("Array.set", 0); ("Array.unsafe_set", 0); ("Array.fill", 0);
      ("Array.blit", 2); ("Bytes.set", 0); ("Bytes.unsafe_set", 0);
      ("Bytes.fill", 0); ("Bytes.blit", 2); ("Bytes.blit_string", 2);
      ("Bytes.set_int64_le", 0); ("Bytes.set_int32_le", 0);
      ("Bytes.set_uint8", 0); ("Bytes.set_uint16_le", 0);
      (":=", 0); ("incr", 0); ("decr", 0);
      ("Hashtbl.replace", 0); ("Hashtbl.add", 0); ("Hashtbl.remove", 0);
      ("Hashtbl.clear", 0); ("Hashtbl.reset", 0);
      ("Queue.add", 1); ("Queue.push", 1); ("Queue.pop", 0);
      ("Queue.take", 0); ("Queue.clear", 0);
      ("Buffer.add_string", 0); ("Buffer.add_char", 0); ("Buffer.clear", 0);
      ("Stack.push", 1); ("Stack.pop", 0);
    ]
  in
  let tbl = Hashtbl.create 64 in
  List.iter (fun (k, i) -> Hashtbl.replace tbl k i) entries;
  tbl

let atomic_write key =
  match key with
  | "Atomic.set" | "Atomic.exchange" | "Atomic.compare_and_set"
  | "Atomic.fetch_and_add" | "Atomic.incr" | "Atomic.decr" -> true
  | _ -> false

(* Obs per-domain cells: padded per-domain storage handed out by these
   accessors; writes rooted there are the telemetry design working as
   intended.  Their own implementation (registry under a Mutex, DLS
   key) is audited by the same pass when lib/obs cmts are loaded. *)
let obs_cell_source key =
  match key with
  | "Obs.Counter.local" | "Obs.Histogram.local" | "Obs.Trace.local" -> true
  | _ ->
    (* unit-local uses inside lib/obs itself: Counter.local etc. *)
    (match String.split_on_char '.' key with
    | [ "Obs"; ("local_cell" | "cell_of") ] -> true
    | _ -> false)

(* Calls whose internal writes are per-domain or synchronised by
   construction; the graph walk does not descend into them. *)
let sanctioned_call key =
  match key with
  | "Obs.Counter.add" | "Obs.Counter.incr" | "Obs.Gauge.set"
  | "Obs.Gauge.add" | "Obs.Histogram.observe" | "Obs.Histogram.observe_int"
  | "Obs.Histogram.record" | "Obs.Histogram.record_int"
  | "Obs.Trace.record" | "Obs.Trace.next_packet_id" -> true
  | _ -> false

let dls_call key =
  match String.split_on_char '.' key with
  | "Domain" :: "DLS" :: _ -> true
  | _ -> false

let random_global key =
  match String.split_on_char '.' key with
  | [ "Random"; f ] -> not (String.equal f "State")
  | "Random" :: "State" :: _ -> false
  | _ -> false

(* Calls that run their function argument inline exactly once (or per
   element) in the caller's domain: the closure body is analysed as if
   it were the caller's own code. *)
let inline_iterators key =
  match key with
  | "Array.iter" | "Array.iteri" | "Array.map" | "Array.mapi"
  | "Array.fold_left" | "Array.fold_right" | "List.iter" | "List.iteri"
  | "List.map" | "List.fold_left" | "List.fold_right" | "Hashtbl.iter"
  | "Hashtbl.fold" | "Queue.iter" | "Fun.protect" | "Option.iter"
  | "Option.map" -> true
  | _ -> false

(* ---- summary extraction --------------------------------------------- *)

type scope = {
  idx : Typed.index;
  aliases : (string, string list) Hashtbl.t;
  unit_name : string;
  prefixes : string list;  (* innermost-first module prefixes *)
  mutable params : (Ident.t * int) list;  (* spine param -> position *)
  mutable nparams : int;
  mutable locals : Ident.t list;
  mutable writes : wevent list;
  mutable calls : cevent list;
}

(* Innermost-first enclosing-module prefixes of a binding key:
   "Obs.Counter.incr" -> ["Obs.Counter."; "Obs."]. *)
let prefixes_of_key key =
  match List.rev (String.split_on_char '.' key) with
  | [] | [ _ ] -> []
  | _ :: mods ->
    let rec go acc = function
      | [] -> acc
      | _ :: rest as segs ->
        go ((String.concat "." (List.rev segs) ^ ".") :: acc) rest
    in
    List.rev (go [] mods)

let is_local sc id = List.exists (Ident.same id) sc.locals

let param_index sc id =
  List.find_map
    (fun (p, i) -> if Ident.same p id then Some i else None)
    sc.params

let scoped_key sc (p : Path.t) =
  match p with
  | Path.Pident id when not (is_local sc id || Option.is_some (param_index sc id))
    -> (
    let bare = Typed.key_of_path ~aliases:sc.aliases p in
    if String.contains bare '.' then bare
    else
      match
        List.find_opt
          (fun pre -> Option.is_some (Typed.find_binding sc.idx (pre ^ bare)))
          sc.prefixes
      with
      | Some pre -> pre ^ bare
      | None -> sc.unit_name ^ "." ^ bare)
  | _ -> Typed.key_of_path ~aliases:sc.aliases p

(* Access-path rendering for witnesses. *)
let rec path_str sc (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> String.concat "." (Typed.flatten_path p)
  | Texp_field (b, _, lbl) -> path_str sc b ^ "." ^ lbl.lbl_name
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
    let key = Typed.key_of_path ~aliases:sc.aliases p in
    match (key, args) with
    | ( ("Array.get" | "Array.unsafe_get" | "Bytes.get" | "Bytes.unsafe_get"),
        (_, Some b) :: _ ) ->
      path_str sc b ^ ".(_)"
    | "!", (_, Some b) :: _ -> "!" ^ path_str sc b
    | _ -> key ^ "(..)")
  | _ -> "<expr>"

(* The root of a destination expression: walk down projections. *)
let rec root_of sc (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> (
    match param_index sc id with
    | Some i -> Rparam i
    | None ->
      if is_local sc id then Rlocal else Rcaptured (Ident.name id))
  | Texp_ident (p, _, _) -> Rglobal (scoped_key sc p)
  | Texp_field (b, _, _) -> root_of sc b
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
    let key = Typed.key_of_path ~aliases:sc.aliases p in
    match key with
    | "Array.get" | "Array.unsafe_get" | "Bytes.get" | "Bytes.unsafe_get"
    | "!" -> (
      match args with
      | (_, Some b) :: _ -> root_of sc b
      | _ -> Runknown)
    | _ ->
      if obs_cell_source (scoped_key sc p) then Rlocal (* obs cell: kind set by caller *)
      else if dls_call key then Rlocal
      else Rlocal (* fresh-value approximation for call results *))
  | Texp_constant _ -> Rlocal
  | _ -> Runknown

(* Is the destination a per-domain obs cell or DLS value?  Checked on
   the *source* of the root (the projection chain's base call). *)
let rec cell_kind sc (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_field (b, _, _) -> cell_kind sc b
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
    let key = Typed.key_of_path ~aliases:sc.aliases p in
    if obs_cell_source (scoped_key sc p) || obs_cell_source key then Some Kobs
    else if dls_call key then Some Kdls
    else
      match key with
      | "Array.get" | "Array.unsafe_get" | "Bytes.get" | "Bytes.unsafe_get"
      | "!" -> (
        match args with
        | (_, Some b) :: _ -> cell_kind sc b
        | _ -> None)
      | _ -> None)
  | _ -> None

let add_write sc ~allowed ~guarded ~kind ~loc dst_path dst_root =
  let kind = if guarded && kind = Kplain then Kguarded else kind in
  sc.writes <-
    {
      w_path = dst_path;
      w_loc = loc;
      w_root = dst_root;
      w_kind = kind;
      w_allowed = allowed;
    }
    :: sc.writes

let rec walk sc ~allowed ~guarded (e : Typedtree.expression) =
  let allowed =
    allowed || Typed.has_attr Typed.allow_race_attr e.exp_attributes
  in
  let loc = e.exp_loc in
  match e.exp_desc with
  | Texp_ident _ | Texp_constant _ | Texp_instvar _ | Texp_unreachable -> ()
  | Texp_let (_, vbs, body) ->
    List.iter
      (fun (vb : Typedtree.value_binding) ->
        let allowed =
          allowed || Typed.has_attr Typed.allow_race_attr vb.vb_attributes
        in
        walk sc ~allowed ~guarded vb.vb_expr;
        sc.locals <- Typed.pat_idents vb.vb_pat @ sc.locals)
      vbs;
    walk sc ~allowed ~guarded body
  | Texp_function { param; cases; _ } ->
    (* A closure that is not an argument of spawn/protect/iterator is
       analysed inline: its writes resolve in this scope (it may run
       here or escape; escaping closures are the documented
       approximation). *)
    sc.locals <- param :: sc.locals;
    walk_cases sc ~allowed ~guarded cases
  | Texp_apply (fn, args) -> walk_apply sc ~allowed ~guarded ~loc fn args
  | Texp_match (scrut, cases, _) ->
    walk sc ~allowed ~guarded scrut;
    walk_cases sc ~allowed ~guarded cases
  | Texp_try (body, cases) ->
    walk sc ~allowed ~guarded body;
    walk_cases sc ~allowed ~guarded cases
  | Texp_tuple es | Texp_array es -> List.iter (walk sc ~allowed ~guarded) es
  | Texp_construct (_, _, es) -> List.iter (walk sc ~allowed ~guarded) es
  | Texp_variant (_, e) -> Option.iter (walk sc ~allowed ~guarded) e
  | Texp_record { fields; extended_expression; _ } ->
    Option.iter (walk sc ~allowed ~guarded) extended_expression;
    Array.iter
      (fun (_, def) ->
        match def with
        | Typedtree.Overridden (_, e) -> walk sc ~allowed ~guarded e
        | Typedtree.Kept _ -> ())
      fields
  | Texp_field (e, _, _) -> walk sc ~allowed ~guarded e
  | Texp_setfield (dst, _, lbl, v) ->
    let kind =
      match cell_kind sc dst with Some k -> k | None -> Kplain
    in
    add_write sc ~allowed ~guarded ~kind ~loc
      (path_str sc dst ^ "." ^ lbl.lbl_name)
      (root_of sc dst);
    walk sc ~allowed ~guarded dst;
    walk sc ~allowed ~guarded v
  | Texp_ifthenelse (c, t, f) ->
    walk sc ~allowed ~guarded c;
    walk sc ~allowed ~guarded t;
    Option.iter (walk sc ~allowed ~guarded) f
  | Texp_sequence (a, b) ->
    walk sc ~allowed ~guarded a;
    walk sc ~allowed ~guarded b
  | Texp_while (c, body) ->
    walk sc ~allowed ~guarded c;
    walk sc ~allowed ~guarded body
  | Texp_for (id, _, lo, hi, _, body) ->
    sc.locals <- id :: sc.locals;
    walk sc ~allowed ~guarded lo;
    walk sc ~allowed ~guarded hi;
    walk sc ~allowed ~guarded body
  | Texp_assert (e, _) -> walk sc ~allowed ~guarded e
  | Texp_lazy e -> walk sc ~allowed ~guarded e
  | Texp_letmodule (_, _, _, _, body) -> walk sc ~allowed ~guarded body
  | Texp_open (_, body) -> walk sc ~allowed ~guarded body
  | _ -> ()

and walk_cases :
    type k. scope -> allowed:bool -> guarded:bool -> k Typedtree.case list ->
    unit =
 fun sc ~allowed ~guarded cases ->
  List.iter
    (fun (c : _ Typedtree.case) ->
      sc.locals <- Typed.pat_idents c.c_lhs @ sc.locals;
      Option.iter (walk sc ~allowed ~guarded) c.c_guard;
      walk sc ~allowed ~guarded c.c_rhs)
    cases

and walk_closure_body sc ~allowed ~guarded (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_function { param; cases; _ } ->
    sc.locals <- param :: sc.locals;
    walk_cases sc ~allowed ~guarded cases
  | _ -> walk sc ~allowed ~guarded e

and walk_apply sc ~allowed ~guarded ~loc fn args =
  match fn.exp_desc with
  | Texp_ident (p, _, _) -> (
    let bare = Typed.key_of_path ~aliases:sc.aliases p in
    let key = scoped_key sc p in
    let some_args = List.filter_map (fun (l, a) -> Option.map (fun a -> (l, a)) a) args in
    if atomic_write bare then (
      match some_args with
      | (_, dst) :: rest ->
        add_write sc ~allowed ~guarded ~kind:Katomic ~loc (path_str sc dst)
          (root_of sc dst);
        List.iter (fun (_, a) -> walk sc ~allowed ~guarded a) rest
      | [] -> ())
    else if random_global bare then
      (* the shared Random state is a hidden global write *)
      add_write sc ~allowed ~guarded ~kind:Krandom ~loc ("(" ^ bare ^ ")")
        (Rglobal "Random.state")
    else
      match Hashtbl.find_opt write_table bare with
      | Some dst_pos -> (
        match List.nth_opt some_args dst_pos with
        | Some (_, dst) ->
          let kind =
            match cell_kind sc dst with Some k -> k | None -> Kplain
          in
          add_write sc ~allowed ~guarded ~kind ~loc (path_str sc dst)
            (root_of sc dst);
          List.iter (fun (_, a) -> walk sc ~allowed ~guarded a) some_args
        | None ->
          List.iter (fun (_, a) -> walk sc ~allowed ~guarded a) some_args)
      | None ->
        if String.equal bare "Mutex.protect" then (
          (* Mutex.protect mu (fun () -> body): body is synchronised. *)
          match some_args with
          | [ (_, mu); (_, body) ] ->
            walk sc ~allowed ~guarded mu;
            walk_closure_body sc ~allowed ~guarded:true body
          | _ -> List.iter (fun (_, a) -> walk sc ~allowed ~guarded a) some_args)
        else if String.equal bare "Domain.spawn" then
          (* nested spawn bodies are found by the top-level scan *)
          ()
        else if inline_iterators bare then
          (* closure args run in this domain: analyse inline *)
          List.iter
            (fun (_, a) ->
              match (a : Typedtree.expression).exp_desc with
              | Texp_function _ -> walk_closure_body sc ~allowed ~guarded a
              | _ -> walk sc ~allowed ~guarded a)
            some_args
        else if sanctioned_call key || sanctioned_call bare || dls_call bare
        then List.iter (fun (_, a) -> walk sc ~allowed ~guarded a) some_args
        else begin
          (* record the call edge with the root of each argument *)
          (match p with
          | Path.Pident id when is_local sc id -> ()
          | _ ->
            sc.calls <-
              {
                c_key = key;
                c_loc = loc;
                c_args =
                  List.map (fun (l, a) -> (l, root_of sc a)) some_args;
                c_allowed = allowed;
              }
              :: sc.calls);
          List.iter
            (fun (_, a) ->
              match (a : Typedtree.expression).exp_desc with
              | Texp_function _ -> walk_closure_body sc ~allowed ~guarded a
              | _ -> walk sc ~allowed ~guarded a)
            some_args
        end)
  | _ ->
    walk sc ~allowed ~guarded fn;
    List.iter (fun (_, a) -> Option.iter (walk sc ~allowed ~guarded) a) args

let rec spine sc (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_function { param; cases = [ { c_lhs; c_guard = None; c_rhs } ]; _ }
    ->
    (* the function's [param] ident and the pattern's idents name the
       same position: record them all under one index *)
    let k = sc.nparams in
    sc.nparams <- k + 1;
    sc.params <-
      sc.params
      @ ((param, k) :: List.map (fun id -> (id, k)) (Typed.pat_idents c_lhs));
    spine sc c_rhs
  | _ -> e

let summarize_binding idx (b : Typed.binding) =
  let sc =
    {
      idx;
      aliases = b.b_aliases;
      unit_name = b.b_unit.unit_name;
      prefixes = prefixes_of_key b.b_key;
      params = [];
      nparams = 0;
      locals = [];
      writes = [];
      calls = [];
    }
  in
  let allowed = Typed.has_attr Typed.allow_race_attr b.b_vb.vb_attributes in
  let body = spine sc b.b_vb.vb_expr in
  walk sc ~allowed ~guarded:false body;
  { s_writes = List.rev sc.writes; s_calls = List.rev sc.calls }

(* A spawn closure body, summarised with no params: free idents
   surface as [Rcaptured]. *)
let summarize_spawn_body idx ~aliases ~unit_name (e : Typedtree.expression) =
  let sc =
    {
      idx;
      aliases;
      unit_name;
      prefixes = [ unit_name ^ "." ];
      params = [];
      nparams = 0;
      locals = [];
      writes = [];
      calls = [];
    }
  in
  walk_closure_body sc ~allowed:false ~guarded:false e;
  { s_writes = List.rev sc.writes; s_calls = List.rev sc.calls }

(* ---- spawn-site discovery ------------------------------------------- *)

type spawn_site = {
  sp_unit : Typed.unit_info;
  sp_loc : Location.t;
  sp_summary : summary;
}

let find_spawns (idx : Typed.index) =
  let sites = ref [] in
  List.iter
    (fun (u : Typed.unit_info) ->
      (* the unit's alias table is shared by its bindings; rebuild an
         empty one if the unit has none indexed *)
      let aliases =
        match
          Hashtbl.fold
            (fun _ (b : Typed.binding) acc ->
              if b.b_unit == u then Some b.b_aliases else acc)
            idx.Typed.idx_bindings None
        with
        | Some t -> t
        | None -> Hashtbl.create 1
      in
      let super = Tast_iterator.default_iterator in
      let expr self (e : Typedtree.expression) =
        (match e.exp_desc with
        | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args)
          when String.equal
                 (Typed.key_of_path ~aliases p)
                 "Domain.spawn" -> (
          match List.filter_map (fun (_, a) -> a) args with
          | body :: _ ->
            sites :=
              {
                sp_unit = u;
                sp_loc = e.exp_loc;
                sp_summary =
                  summarize_spawn_body idx ~aliases ~unit_name:u.unit_name body;
              }
              :: !sites
          | [] -> ())
        | _ -> ());
        super.expr self e
      in
      let iter = { super with expr } in
      iter.structure iter u.unit_str)
    idx.Typed.idx_units;
  List.rev !sites

(* ---- transitive classification -------------------------------------- *)

let kind_name = function
  | Kplain -> "shared write"
  | Katomic -> "atomic"
  | Kguarded -> "mutex-guarded"
  | Kobs -> "obs-padded-cell"
  | Kdls -> "domain-local-storage"
  | Krandom -> "global Random state"

let root_name = function
  | Rlocal -> "domain-local"
  | Rparam i -> "parameter " ^ Int.to_string i
  | Rcaptured n -> "captured " ^ n
  | Rglobal k -> "global " ^ k
  | Runknown -> "unresolved"

(* Resolve one function's summary in a calling context: [argof] maps
   the callee's parameter index to the caller-side root. *)
let check_spawns idx =
  let summaries : (string, summary) Hashtbl.t = Hashtbl.create 64 in
  let summary_of key =
    match Hashtbl.find_opt summaries key with
    | Some s -> Some s
    | None -> (
      match Typed.resolve_binding idx key with
      | None -> None
      | Some b ->
        let s = summarize_binding idx b in
        Hashtbl.replace summaries key s;
        Some s)
  in
  let findings = ref [] in
  let visiting = ref [] in
  let report ~file ~chain (w : wevent) root =
    let via =
      if List.is_empty chain then ""
      else " [spawn -> " ^ String.concat " -> " (List.rev chain) ^ "]"
    in
    findings :=
      Typed.finding_of_loc ~file ~rule w.w_loc
        ("unsanctioned " ^ kind_name w.w_kind ^ " to " ^ w.w_path ^ " ("
       ^ root_name root ^ ")" ^ via)
      :: !findings
  in
  let rec resolve ~file ~chain ~argof (s : summary) =
    List.iter
      (fun (w : wevent) ->
        if not w.w_allowed then
          match w.w_kind with
          | Katomic | Kguarded | Kobs | Kdls -> ()
          | Kplain | Krandom -> (
            let root =
              match w.w_root with Rparam i -> argof i | r -> r
            in
            match root with
            | Rlocal -> ()
            | Rparam _ | Rcaptured _ | Rglobal _ | Runknown ->
              report ~file ~chain w root))
      s.s_writes;
    List.iter
      (fun (c : cevent) ->
        if not c.c_allowed && not (List.mem c.c_key !visiting) then
          match summary_of c.c_key with
          | None -> ()  (* unknown external: reads-only assumption *)
          | Some callee ->
            let file' =
              match Typed.resolve_binding idx c.c_key with
              | Some b -> b.b_unit.unit_source
              | None -> file
            in
            let args =
              List.map
                (fun (_, r) -> match r with Rparam i -> argof i | r -> r)
                c.c_args
            in
            let argof i =
              match List.nth_opt args i with Some r -> r | None -> Runknown
            in
            visiting := c.c_key :: !visiting;
            resolve ~file:file' ~chain:(c.c_key :: chain) ~argof callee;
            visiting := List.tl !visiting)
      s.s_calls
  in
  let sites = find_spawns idx in
  List.iter
    (fun site ->
      resolve ~file:site.sp_unit.Typed.unit_source ~chain:[]
        ~argof:(fun _ -> Runknown)
        site.sp_summary)
    sites;
  (List.length sites, List.sort_uniq Finding.compare_locs !findings)

let run ~roots =
  let units = Typed.load_units roots in
  check_spawns (Typed.index_units units)

let run_units units = check_spawns (Typed.index_units units)

(* Debug rendering of one binding's summary (used by scratch tooling
   while tuning the pass; not part of the CLI surface). *)
let debug_summary idx b =
  let s = summarize_binding idx b in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (b.Typed.b_key ^ ":\n");
  List.iter
    (fun w ->
      Buffer.add_string buf
        (Printf.sprintf "  write %s root=%s kind=%s allowed=%b\n" w.w_path
           (root_name w.w_root) (kind_name w.w_kind) w.w_allowed))
    s.s_writes;
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "  call %s args=[%s]\n" c.c_key
           (String.concat "; "
              (List.map (fun (_, r) -> root_name r) c.c_args))))
    s.s_calls;
  Buffer.contents buf
