(** Whole-deployment static verification of compiled forwarding state.

    The paper argues LIPSIN's safety properties statistically: loops are
    "caught" by the incoming-LIT check (Sec. 3.3.3), false deliveries
    stay near rho^k (Sec. 3.2), and pre-computed recovery paths "keep
    packets working" (Sec. 3.3.2).  Netcheck checks them for a {e
    concrete} deployment before any traffic flows, by abstract
    interpretation of Algorithm 1 over the link graph:

    - {b Loop-freedom}.  A forwarding decision in this implementation
      depends only on the node's table state and the zFilter — never on
      the arrival link (the mli's reverse-suppression claim is not what
      the code does, and Netcheck models the code).  The set of links a
      zFilter can traverse is therefore a fixed point computable by
      node-level BFS; a packet can loop iff the reachable admitted link
      sub-digraph has a directed cycle.  Per cycle Netcheck decides
      whether the incoming-LIT check {e can} catch it: the loop cache
      keys on (zFilter bytes, first arrival link), so a revolution is
      only detected at a node that sees the packet arrive over two
      distinct in-links.  A cycle all of whose nodes have exactly one
      reachable in-link (e.g. a pure ring entered at the source) spins
      undetected — an [Error] even with prevention enabled.
    - {b False-delivery reachability}.  Exact delivery closure of a
      candidate zFilter vs. its intended tree: per-link false-positive
      attribution, unreachable intended nodes, and fill-factor /
      rho^k violations against the deployment's fill limit.
    - {b LIT anomalies}.  Duplicate nonces, equal or subset LIT pairs
      among sibling out-links of one node (one link's admission implies
      the other's), sibling LITs covered by the OR of their peers, and
      virtual-link tags that shadow a physical sibling's.
    - {b Recovery soundness}.  Per directed link: a backup path exists
      (the link is not a bridge); VLId activation of that path yields a
      loop-free, delivering closure for the failed link's own tags; and
      the zFilter-rewrite patch does not push a minimal filter past the
      fill limit.

    The abstraction is exact for a single zFilter (closure = what
    {!Lipsin_sim.Run.deliver} traverses, modulo drops by the loop
    cache), and sound-but-incomplete deployment-wide: [check_loops]
    searches single non-backtracking cycles whose OR'd LITs self-admit
    under the fill limit, so a reported cycle is a real looping packet,
    while compound zFilters (tree + cycle) can loop without being
    reported there — [check_zfilter]/[check_sampled] cover those per
    filter.  See DESIGN.md Sec. 5d. *)

type severity = Info | Warning | Error

type finding = {
  check : string;  (** e.g. ["loop"], ["lit-collision"], ["recovery-bridge"]. *)
  severity : severity;
  table : int;  (** Forwarding table index, [-1] when table-independent. *)
  node : int;  (** Node the finding anchors to, [-1] when network-wide. *)
  links : int list;  (** Dense link indices involved (cycle in order, pair, ...). *)
  detail : string;  (** Human explanation with endpoints and metrics. *)
}

type model
(** Immutable abstract view of one deployment: per node the physical
    port LITs with up/down and block state, the virtual entries, plus
    the fill limit and loop-prevention setting the engines enforce. *)

val model_of_assignment :
  ?fill_limit:float ->
  ?loop_prevention:bool ->
  Lipsin_core.Assignment.t ->
  model
(** The pristine deployment implied by the assignment alone: every link
    up, no virtual entries, no blocks — what {!Lipsin_sim.Net.make}
    would build before any mutation.  [fill_limit] defaults to 0.7 and
    [loop_prevention] to [true], matching {!Node_engine.create}. *)

val model_of_engines :
  Lipsin_core.Assignment.t ->
  engine_of:(Lipsin_topology.Graph.node ->
             Lipsin_forwarding.Node_engine.t) ->
  model
(** Snapshot of live engines via {!Node_engine.state} — includes failed
    links, installed virtual entries and block patterns.  The model's
    fill limit is the minimum over nodes (strictest drop point) and
    loop prevention is the conjunction (a cycle is only caught if the
    catching node has the check enabled). *)

val graph : model -> Lipsin_topology.Graph.t
val fill_limit : model -> float

val check_lits : model -> finding list
(** LIT anomaly scan: [nonce-duplicate] ([Error]), [lit-collision]
    (equal sibling LITs, [Error]), [lit-subset] (one sibling LIT
    contained in another, [Warning]), [lit-union-cover] (a sibling LIT
    covered by the OR of its peers, [Info]), [virtual-shadow] (a
    virtual entry's tag in a subset relation with a physical sibling's,
    [Warning]). *)

val check_loops : model -> finding list
(** Deployment-wide loop admissibility, per table: searches shortest
    non-backtracking cycles over up links and reports, per table, the
    minimal-fill cycle whose OR'd LITs pass [zFilter AND LIT = LIT] on
    every hop within the fill limit and past every block
    ([loop-admissible]).  Such a witness exists on every cyclic
    deployment — it is inherent to stateless iBF forwarding — so the
    severity is [Warning] when loop prevention is armed (the detail
    reports whether the incoming-LIT check can ever catch the minimal
    witness, by exact closure) and [Error] only when prevention is
    off.  Also emits one [reverse-ping-pong] [Info] noting
    that the engine applies no reverse-interface suppression, so every
    edge whose two directions' tags fit the fill limit admits a 2-link
    loop. *)

val check_zfilter :
  model ->
  table:int ->
  zfilter:Lipsin_bloom.Zfilter.t ->
  src:Lipsin_topology.Graph.node ->
  tree:Lipsin_topology.Graph.link list ->
  finding list
(** Exact verification of one packet: [bad-table] / [fill-limit]
    ([Error], the packet is dropped everywhere), [loop] per directed
    cycle of the reachable admitted links ([Error] if uncatchable,
    [Warning] if the incoming-LIT check catches it after one
    revolution), [false-delivery] per admitted off-tree link
    ([Warning], with rho^k context), and [under-delivery] ([Error])
    when intended tree nodes are not in the delivery closure.  A node
    rerouted around a failure (e.g. via a VLId detour) counts as
    delivered — intent is node coverage, not link identity. *)

val check_tree :
  model ->
  src:Lipsin_topology.Graph.node ->
  tree:Lipsin_topology.Graph.link list ->
  finding list
(** {!check_zfilter} over all d candidates of the tree
    ({!Lipsin_core.Candidate.build}). *)

val check_recovery : model -> finding list
(** Recovery soundness per directed link: [recovery-bridge] ([Warning])
    when no backup path exists; otherwise simulates VLId activation on
    an overlay of the model (failed link down, virtual identities along
    the backup path) and checks, per table, that the failed link's own
    tag set still reaches the far endpoint without admitting an
    uncaught cycle ([recovery-unreachable] / [recovery-loop],
    [Error]); and flags tables whose zFilter-rewrite patch
    (path LITs OR failed LIT) already exceeds the fill limit on its
    own ([recovery-fill], [Warning]). *)

val check_sampled :
  model -> rng:Lipsin_util.Rng.t -> samples:int -> finding list
(** [samples] random publisher/subscriber sets, shortest-path delivery
    trees ({!Lipsin_topology.Spt.delivery_tree}), {!check_tree} on
    each.  Deterministic for a given generator state. *)

val check_deployment :
  ?samples:int -> ?rng:Lipsin_util.Rng.t -> model -> finding list
(** Everything: {!check_lits}, {!check_loops}, {!check_recovery}, and
    {!check_sampled} when [samples] > 0 (default 0; [rng] defaults to a
    fixed seed). *)

val errors : finding list -> finding list
(** The [Error]-severity subset — the gate condition for
    [LIPSIN_NETCHECK] and the CLI's exit status. *)

val severity_to_string : severity -> string

val to_string : finding -> string
(** One line: [severity [check] (table t, node n, links a->b#i ...) detail]. *)

val to_lint_finding : deployment:string -> finding -> Lipsin_linter.Finding.t
(** Adapts a finding to the linter's reporting pipeline: [file] is the
    deployment path, [line]/[col] are 0, [rule] is the check name and
    the message carries severity, table/node anchors and link list. *)

val check_partition :
  ?fill_limit:float ->
  ?loop_prevention:bool ->
  ?subscribers:Lipsin_topology.Graph.node list ->
  Lipsin_core.Adaptive.t ->
  Lipsin_bloom.Partition.t ->
  finding list
(** Exactly-once verification of a partitioned (stitched) zFilter plan
    ({!Lipsin_core.Stagecut}) against the pristine deployment of each
    width in the family:

    - [partition-structure] ([Error]): {!Lipsin_bloom.Partition.validate}
      failures — handoff cycles, double-entered or orphaned stages;
    - [stage-width] / [bad-table] / [fill-limit] ([Error]): a stage
      outside the adaptive family, table range or fill limit;
    - [stage-coverage] / [stage-egress] ([Error]): a stage filter that
      lost one of its own tree links or its egress tag (the mutation
      props corrupt filters to trigger exactly these);
    - [double-delivery] ([Error]): a subscriber claimed by two stages;
      [under-delivery] ([Error]): a subscriber of [subscribers] in no
      stage, or one a stage's delivery closure cannot reach;
    - [stitch-misrooted] / [stitch-unreachable] ([Error]): a handoff
      whose child roots elsewhere, or whose stitch node the parent's
      closure never visits;
    - [cross-stage-loop] / [cross-stage-duplicate]: a stage's filter
      falsely firing another stage's stitch entry, re-entering a stage
      (ancestor: loop; otherwise: duplicate subtree delivery).
      [Error] when the stitch node lies on the stage's intended tree —
      {!Lipsin_core.Stagecut}'s nonce repair guarantees none — and
      [Warning] when it is only reachable through a false-positive
      link, the statistical background the fill limit bounds.

    No [Error] findings means every subscriber is delivered exactly
    once at the intent level: stages partition the subscriber set, the
    stage digraph is the intended tree, and every stage's filter covers
    exactly its stage. *)
