(** The project's internal library dependency graph, read from dune
    files.

    The [domain-safety] rule needs to know which modules can run on a
    worker domain: anything in a library reachable (transitively,
    through [libraries] fields) from the library that owns the
    Domain-parallel delivery path.  This module parses just enough of
    dune's s-expression syntax to recover that graph; external library
    names simply have no stanza and terminate the traversal. *)

type library = {
  lib_name : string;  (** dune [(name ...)]. *)
  lib_dir : string;  (** Directory of the defining dune file. *)
  lib_deps : string list;  (** dune [(libraries ...)], verbatim. *)
}

val libraries_of_dune : path:string -> string -> library list
(** All [(library ...)] stanzas of one dune file ([path] supplies the
    directory). *)

val libraries_of_files : (string * string) list -> library list
(** Stanzas of many [(path, contents)] dune files. *)

val owner : library list -> string -> library option
(** The library whose directory contains the given source path, if
    any. *)

val reachable_dirs : library list -> root:string -> string list
(** Directories of every internal library reachable from the library
    named [root] (including itself).  Unknown [root] yields []. *)
