module Fastpath = Lipsin_forwarding.Fastpath
module Bitsliced = Lipsin_forwarding.Bitsliced
module Bitvec = Lipsin_bitvec.Bitvec
module Partition = Lipsin_bloom.Partition

type violation = {
  check : string;
  table : int;
  entry : string;
  index : int;
  offset : int;
  detail : string;
}

let to_string v =
  let where =
    (if v.table >= 0 then Printf.sprintf " table %d" v.table else "")
    ^ (if v.entry <> "" then Printf.sprintf " %s" v.entry else "")
    ^ (if v.index >= 0 then Printf.sprintf "[%d]" v.index else "")
    ^ if v.offset >= 0 then Printf.sprintf " @byte %d" v.offset else ""
  in
  Printf.sprintf "[%s]%s: %s" v.check where v.detail

let pp ppf v = Format.pp_print_string ppf (to_string v)

(* All checks work on the shared introspection views; nothing here
   mutates engine state. *)

(* Popcount of one (possibly masked) byte; blob ranges go through the
   shared SWAR helper instead. *)
let popcount_byte b =
  let rec go b acc = if b = 0 then acc else go (b lsr 1) (acc + (b land 1)) in
  go b 0

(* Popcount of the live bits [0, m) of the entry at [slot]. *)
let live_popcount blob ~slot ~stride ~m =
  let base = slot * stride in
  let full = m / 8 in
  let count = Bitvec.popcount_bytes blob ~pos:base ~len:full in
  let rem = m land 7 in
  if rem = 0 then count
  else
    count
    + popcount_byte (Char.code (Bytes.get blob (base + full)) land ((1 lsl rem) - 1))

(* Popcount of the padding bits [m, 8*stride), excluding the kill bit
   at position m; also reports whether the kill bit itself is set. *)
let padding_state blob ~slot ~stride ~m =
  let base = slot * stride in
  let kill_byte = m lsr 3 in
  let kill_mask = 1 lsl (m land 7) in
  let kill_set = Char.code (Bytes.get blob (base + kill_byte)) land kill_mask <> 0 in
  let stray = ref 0 in
  for i = m lsr 3 to stride - 1 do
    let b = Char.code (Bytes.get blob (base + i)) in
    let live_mask = if i = m lsr 3 then (1 lsl (m land 7)) - 1 else 0 in
    let pad = b land lnot live_mask land 0xff in
    let pad = if i = kill_byte then pad land lnot kill_mask land 0xff else pad in
    stray := !stray + popcount_byte pad
  done;
  (kill_set, !stray)

(* The row-major layout both compiled engines share, abstracted over
   which engine's view it came from so the row checks run once. *)
type rowview = {
  rv_m : int;
  rv_d : int;
  rv_k_for_table : int array;
  rv_words : int;
  rv_stride : int;
  rv_data_len : int;
  rv_n_ports : int;
  rv_up : bool array;
  rv_out_index : int array;
  rv_phys : Bytes.t array;
  rv_in_tags : Bytes.t array;
  rv_blocks : Bytes.t array;
  rv_block_off : int array array;
  rv_n_virt : int;
  rv_virt : Bytes.t array;
  rv_v_out_off : int array;
  rv_v_out_ports : int array;
  rv_local : Bytes.t array;
  rv_svc : Bytes.t array;
  rv_svc_names : string array;
  rv_stitch : Bytes.t array;
  rv_stitch_partition : int array;
  rv_stitch_next : int array;
  rv_forward_cap : int;
  rv_services_cap : int;
  rv_stitch_cap : int;
  rv_seen_cap : int;
}

let rowview_of_fastpath (v : Fastpath.view) =
  {
    rv_m = v.Fastpath.view_m;
    rv_d = v.Fastpath.view_d;
    rv_k_for_table = v.Fastpath.view_k_for_table;
    rv_words = v.Fastpath.view_words;
    rv_stride = v.Fastpath.view_stride;
    rv_data_len = v.Fastpath.view_data_len;
    rv_n_ports = v.Fastpath.view_n_ports;
    rv_up = v.Fastpath.view_up;
    rv_out_index = v.Fastpath.view_out_index;
    rv_phys = v.Fastpath.view_phys;
    rv_in_tags = v.Fastpath.view_in_tags;
    rv_blocks = v.Fastpath.view_blocks;
    rv_block_off = v.Fastpath.view_block_off;
    rv_n_virt = v.Fastpath.view_n_virt;
    rv_virt = v.Fastpath.view_virt;
    rv_v_out_off = v.Fastpath.view_v_out_off;
    rv_v_out_ports = v.Fastpath.view_v_out_ports;
    rv_local = v.Fastpath.view_local;
    rv_svc = v.Fastpath.view_svc;
    rv_svc_names = v.Fastpath.view_svc_names;
    rv_stitch = v.Fastpath.view_stitch;
    rv_stitch_partition = v.Fastpath.view_stitch_partition;
    rv_stitch_next = v.Fastpath.view_stitch_next;
    rv_forward_cap = v.Fastpath.view_forward_cap;
    rv_services_cap = v.Fastpath.view_services_cap;
    rv_stitch_cap = v.Fastpath.view_stitch_cap;
    rv_seen_cap = v.Fastpath.view_seen_cap;
  }

let rowview_of_bitsliced (v : Bitsliced.view) =
  {
    rv_m = v.Bitsliced.view_m;
    rv_d = v.Bitsliced.view_d;
    rv_k_for_table = v.Bitsliced.view_k_for_table;
    rv_words = v.Bitsliced.view_words;
    rv_stride = v.Bitsliced.view_stride;
    rv_data_len = v.Bitsliced.view_data_len;
    rv_n_ports = v.Bitsliced.view_n_ports;
    rv_up = v.Bitsliced.view_up;
    rv_out_index = v.Bitsliced.view_out_index;
    rv_phys = v.Bitsliced.view_phys;
    rv_in_tags = v.Bitsliced.view_in_tags;
    rv_blocks = v.Bitsliced.view_blocks;
    rv_block_off = v.Bitsliced.view_block_off;
    rv_n_virt = v.Bitsliced.view_n_virt;
    rv_virt = v.Bitsliced.view_virt;
    rv_v_out_off = v.Bitsliced.view_v_out_off;
    rv_v_out_ports = v.Bitsliced.view_v_out_ports;
    rv_local = v.Bitsliced.view_local;
    rv_svc = v.Bitsliced.view_svc;
    rv_svc_names = v.Bitsliced.view_svc_names;
    rv_stitch = v.Bitsliced.view_stitch;
    rv_stitch_partition = v.Bitsliced.view_stitch_partition;
    rv_stitch_next = v.Bitsliced.view_stitch_next;
    rv_forward_cap = v.Bitsliced.view_forward_cap;
    rv_services_cap = v.Bitsliced.view_services_cap;
    rv_stitch_cap = v.Bitsliced.view_stitch_cap;
    rv_seen_cap = v.Bitsliced.view_seen_cap;
  }

type flagger =
  ?table:int -> ?entry:string -> ?index:int -> ?offset:int -> string -> string -> unit

let check_rows (flag : flagger) v =
  let m = v.rv_m in
  let d = v.rv_d in
  let words = v.rv_words in
  let stride = v.rv_stride in
  let n_ports = v.rv_n_ports in
  let n_virt = v.rv_n_virt in
  let n_svc = Array.length v.rv_svc_names in
  let n_stitch = Array.length v.rv_stitch_next in
  (* Geometry: the stride layout the hot loops assume.  Entries always
     carry at least one spare word bit so the kill bit exists. *)
  if m <= 0 then flag "geometry" (Printf.sprintf "non-positive width m=%d" m);
  if d <= 0 then flag "geometry" (Printf.sprintf "non-positive table count d=%d" d);
  if words <> (m / 64) + 1 then
    flag "geometry" (Printf.sprintf "words=%d, expected m/64+1=%d" words ((m / 64) + 1));
  if stride <> 8 * words then
    flag "geometry" (Printf.sprintf "stride=%d, expected 8*words=%d" stride (8 * words));
  if v.rv_data_len <> (m + 7) / 8 then
    flag "geometry"
      (Printf.sprintf "data_len=%d, expected ceil(m/8)=%d" v.rv_data_len ((m + 7) / 8));
  if Array.length v.rv_k_for_table <> d then
    flag "geometry"
      (Printf.sprintf "k_for_table has %d entries for d=%d tables"
         (Array.length v.rv_k_for_table)
         d);
  Array.iteri
    (fun tbl k ->
      if k <= 0 || k > m then
        flag "geometry" ~table:tbl (Printf.sprintf "k=%d outside (0, m=%d]" k m))
    v.rv_k_for_table;
  (* d-consistency: every candidate table must be present with the same
     per-kind dimensions. *)
  let expect_tables name arr =
    if Array.length arr <> d then
      flag "d-consistency" ~entry:name
        (Printf.sprintf "%d per-table blobs for d=%d tables" (Array.length arr) d)
  in
  expect_tables "phys" v.rv_phys;
  expect_tables "in" v.rv_in_tags;
  expect_tables "block" v.rv_blocks;
  expect_tables "virt" v.rv_virt;
  expect_tables "local" v.rv_local;
  expect_tables "svc" v.rv_svc;
  expect_tables "stitch" v.rv_stitch;
  (* Stitch payload arrays ride side by side with the tag rows. *)
  if Array.length v.rv_stitch_partition <> n_stitch then
    flag "d-consistency" ~entry:"stitch"
      (Printf.sprintf "partition payloads %d <> stitch entries %d"
         (Array.length v.rv_stitch_partition)
         n_stitch);
  if Array.length v.rv_block_off <> d then
    flag "d-consistency" ~entry:"block"
      (Printf.sprintf "%d offset tables for d=%d tables"
         (Array.length v.rv_block_off)
         d);
  (* Port metadata arrays. *)
  if Array.length v.rv_up <> n_ports then
    flag "port-bounds"
      (Printf.sprintf "up array length %d <> n_ports %d" (Array.length v.rv_up) n_ports);
  if Array.length v.rv_out_index <> n_ports then
    flag "port-bounds"
      (Printf.sprintf "out_index length %d <> n_ports %d"
         (Array.length v.rv_out_index)
         n_ports);
  (* Virtual egress indirection: monotone prefix offsets, every egress a
     valid port. *)
  let voff = v.rv_v_out_off in
  if Array.length voff <> n_virt + 1 then
    flag "offsets" ~entry:"virt"
      (Printf.sprintf "v_out_off length %d <> n_virt+1=%d" (Array.length voff)
         (n_virt + 1))
  else begin
    if n_virt >= 0 && voff.(0) <> 0 then
      flag "offsets" ~entry:"virt" (Printf.sprintf "v_out_off.(0)=%d <> 0" voff.(0));
    for i = 0 to n_virt - 1 do
      if voff.(i + 1) < voff.(i) then
        flag "offsets" ~entry:"virt" ~index:i
          (Printf.sprintf "v_out_off decreases: %d then %d" voff.(i) voff.(i + 1))
    done;
    if Array.length v.rv_v_out_ports <> voff.(n_virt) then
      flag "offsets" ~entry:"virt"
        (Printf.sprintf "v_out_ports length %d <> v_out_off.(n_virt)=%d"
           (Array.length v.rv_v_out_ports)
           voff.(n_virt))
  end;
  Array.iteri
    (fun j p ->
      if p < 0 || p >= n_ports then
        flag "port-bounds" ~entry:"virt" ~index:j
          (Printf.sprintf "virtual egress port %d outside [0, %d)" p n_ports))
    v.rv_v_out_ports;
  (* Decision buffers must hold the worst-case decision. *)
  if v.rv_forward_cap < n_ports then
    flag "capacity"
      (Printf.sprintf "forward buffer %d < n_ports %d" v.rv_forward_cap n_ports);
  if v.rv_services_cap < n_svc then
    flag "capacity"
      (Printf.sprintf "service buffer %d < n_services %d" v.rv_services_cap n_svc);
  if v.rv_stitch_cap < n_stitch then
    flag "capacity"
      (Printf.sprintf "stitch buffer %d < n_stitch %d" v.rv_stitch_cap n_stitch);
  if v.rv_seen_cap < n_ports then
    flag "capacity"
      (Printf.sprintf "seen stamps %d < n_ports %d" v.rv_seen_cap n_ports);
  (* Per-table blob scan: sizes, padding, kill bits, LIT popcounts. *)
  let tables = min d (Array.length v.rv_phys) in
  let scan ~entry ~n ~exact_k ~kill_for tbl blob =
    if Bytes.length blob <> n * stride then
      flag "blob-size" ~table:tbl ~entry
        (Printf.sprintf "blob is %d bytes, expected %d entries * stride %d = %d"
           (Bytes.length blob) n stride (n * stride))
    else
      for slot = 0 to n - 1 do
        let kill_set, stray = padding_state blob ~slot ~stride ~m in
        if stray <> 0 then
          flag "padding" ~table:tbl ~entry ~index:slot
            ~offset:((slot * stride) + (m lsr 3))
            (Printf.sprintf "%d stray bits set beyond position m=%d" stray m);
        (match kill_for with
        | None ->
          if kill_set then
            flag "kill-bit" ~table:tbl ~entry ~index:slot
              ~offset:((slot * stride) + (m lsr 3))
              "kill bit set on an entry kind that never carries one"
        | Some down ->
          if kill_set && not (down slot) then
            flag "kill-bit" ~table:tbl ~entry ~index:slot
              ~offset:((slot * stride) + (m lsr 3))
              "kill bit set but the port is up";
          if (not kill_set) && down slot then
            flag "kill-bit" ~table:tbl ~entry ~index:slot
              ~offset:((slot * stride) + (m lsr 3))
              "port is down but its kill bit is clear");
        match exact_k with
        | Some k ->
          let pc = live_popcount blob ~slot ~stride ~m in
          if pc <> k then
            flag "popcount" ~table:tbl ~entry ~index:slot ~offset:(slot * stride)
              (Printf.sprintf "LIT has %d live bits, expected k=%d" pc k)
        | None -> ()
      done
  in
  for tbl = 0 to tables - 1 do
    let k =
      if tbl < Array.length v.rv_k_for_table then Some v.rv_k_for_table.(tbl)
      else None
    in
    let down slot = slot < Array.length v.rv_up && not v.rv_up.(slot) in
    scan ~entry:"phys" ~n:n_ports ~exact_k:k ~kill_for:(Some down) tbl
      v.rv_phys.(tbl);
    if tbl < Array.length v.rv_in_tags then
      scan ~entry:"in" ~n:n_ports ~exact_k:k ~kill_for:None tbl v.rv_in_tags.(tbl);
    if tbl < Array.length v.rv_local then
      scan ~entry:"local" ~n:1 ~exact_k:k ~kill_for:None tbl v.rv_local.(tbl);
    if tbl < Array.length v.rv_svc then
      scan ~entry:"svc" ~n:n_svc ~exact_k:k ~kill_for:None tbl v.rv_svc.(tbl);
    (* Stitch tags are single egress LITs, so the exact-k law holds —
       at the strengthened egress bit count, not the link LITs' k. *)
    if tbl < Array.length v.rv_stitch then
      scan ~entry:"stitch" ~n:n_stitch
        ~exact_k:(Option.map (Partition.egress_k ~m) k)
        ~kill_for:None tbl v.rv_stitch.(tbl);
    (* Virtual entries are ORs of whole trees and block entries are
       arbitrary veto patterns, so only layout invariants apply. *)
    if tbl < Array.length v.rv_virt then
      scan ~entry:"virt" ~n:n_virt ~exact_k:None ~kill_for:None tbl v.rv_virt.(tbl);
    if tbl < Array.length v.rv_blocks && tbl < Array.length v.rv_block_off then begin
      let off = v.rv_block_off.(tbl) in
      if Array.length off <> n_ports + 1 then
        flag "offsets" ~table:tbl ~entry:"block"
          (Printf.sprintf "offset table length %d <> n_ports+1=%d" (Array.length off)
             (n_ports + 1))
      else begin
        if off.(0) <> 0 then
          flag "offsets" ~table:tbl ~entry:"block"
            (Printf.sprintf "block_off.(0)=%d <> 0" off.(0));
        for p = 0 to n_ports - 1 do
          if off.(p + 1) < off.(p) then
            flag "offsets" ~table:tbl ~entry:"block" ~index:p
              (Printf.sprintf "block_off decreases: %d then %d" off.(p) off.(p + 1))
        done;
        scan ~entry:"block" ~n:off.(n_ports) ~exact_k:None ~kill_for:None tbl
          v.rv_blocks.(tbl)
      end
    end
  done

let audit ?(check_digest = true) fp =
  let v = Fastpath.view fp in
  let out = ref [] in
  let flag ?(table = -1) ?(entry = "") ?(index = -1) ?(offset = -1) check detail =
    out := { check; table; entry; index; offset; detail } :: !out
  in
  check_rows flag (rowview_of_fastpath v);
  if check_digest then begin
    let now = Fastpath.digest fp in
    if now <> v.Fastpath.view_digest then
      flag "digest"
        (Printf.sprintf "blob digest %#x no longer matches the compile-time %#x" now
           v.Fastpath.view_digest)
  end;
  List.rev !out

let audit_ok ?check_digest fp =
  match audit ?check_digest fp with [] -> true | _ :: _ -> false

(* ---- transposed-layout checks ------------------------------------- *)

(* One column word recomputed from the row blob: bit [slot - 64*blk] is
   set iff row [slot] sets filter-bit [b]. *)
let expected_col rows ~stride ~n ~b ~blk =
  let w = ref 0L in
  let lo = blk * 64 in
  let hi = min n (lo + 64) in
  for slot = lo to hi - 1 do
    if
      Char.code (Bytes.get rows ((slot * stride) + (b lsr 3))) land (1 lsl (b land 7))
      <> 0
    then w := Int64.logor !w (Int64.shift_left 1L (slot - lo))
  done;
  !w

let audit_bitsliced ?(check_digest = true) bs =
  let v = Bitsliced.view bs in
  let out = ref [] in
  let flag ?(table = -1) ?(entry = "") ?(index = -1) ?(offset = -1) check detail =
    out := { check; table; entry; index; offset; detail } :: !out
  in
  let rv = rowview_of_bitsliced v in
  check_rows flag rv;
  let stride = rv.rv_stride in
  let ncols = stride * 8 in
  let bits = v.Bitsliced.view_plane_bits in
  if bits <> 4 && bits <> 8 then
    flag "geometry" (Printf.sprintf "plane_bits=%d, expected 4 or 8" bits)
  else begin
    let npos = ncols / bits in
    let vmask = (1 lsl bits) - 1 in
    let n_svc = Array.length rv.rv_svc_names in
    let slices = v.Bitsliced.view_slices in
    if Array.length slices <> rv.rv_d then
      flag "d-consistency" ~entry:"slices"
        (Printf.sprintf "%d per-table slice sets for d=%d tables"
           (Array.length slices) rv.rv_d);
    Array.iteri
      (fun tbl per_table ->
        Array.iter
          (fun sv ->
            let entry = sv.Bitsliced.sv_entry in
            let expect_n, rows =
              match entry with
              | "phys" ->
                ( rv.rv_n_ports,
                  if tbl < Array.length rv.rv_phys then Some rv.rv_phys.(tbl)
                  else None )
              | "in" ->
                ( rv.rv_n_ports,
                  if tbl < Array.length rv.rv_in_tags then Some rv.rv_in_tags.(tbl)
                  else None )
              | "virt" ->
                ( rv.rv_n_virt,
                  if tbl < Array.length rv.rv_virt then Some rv.rv_virt.(tbl)
                  else None )
              | "stitch" ->
                ( Array.length rv.rv_stitch_next,
                  if tbl < Array.length rv.rv_stitch then Some rv.rv_stitch.(tbl)
                  else None )
              | _ ->
                ( n_svc,
                  if tbl < Array.length rv.rv_svc then Some rv.rv_svc.(tbl)
                  else None )
            in
            let n = sv.Bitsliced.sv_n in
            let blocks = (n + 63) / 64 in
            let sub = (n + 31) / 32 in
            if n <> expect_n then
              flag "col-size" ~table:tbl ~entry
                (Printf.sprintf "slice has %d entries, expected %d" n expect_n);
            if sv.Bitsliced.sv_blocks <> blocks then
              flag "col-size" ~table:tbl ~entry
                (Printf.sprintf "blocks=%d, expected ceil(n/64)=%d"
                   sv.Bitsliced.sv_blocks blocks);
            if sv.Bitsliced.sv_sub <> sub then
              flag "col-size" ~table:tbl ~entry
                (Printf.sprintf "sub=%d, expected ceil(n/32)=%d" sv.Bitsliced.sv_sub
                   sub);
            if Bytes.length sv.Bitsliced.sv_cols <> ncols * blocks * 8 then
              flag "col-size" ~table:tbl ~entry
                (Printf.sprintf "column blob is %d bytes, expected %d cols * %d blocks * 8 = %d"
                   (Bytes.length sv.Bitsliced.sv_cols)
                   ncols blocks (ncols * blocks * 8));
            if Bytes.length sv.Bitsliced.sv_used <> stride then
              flag "col-size" ~table:tbl ~entry
                (Printf.sprintf "used map is %d bytes, expected stride %d"
                   (Bytes.length sv.Bitsliced.sv_used)
                   stride);
            if Array.length sv.Bitsliced.sv_valid <> sub then
              flag "col-size" ~table:tbl ~entry
                (Printf.sprintf "valid masks %d, expected sub %d"
                   (Array.length sv.Bitsliced.sv_valid)
                   sub);
            if Array.length sv.Bitsliced.sv_plane <> npos * (vmask + 1) * sub then
              flag "col-size" ~table:tbl ~entry
                (Printf.sprintf "plane has %d words, expected %d pos * %d values * %d sub = %d"
                   (Array.length sv.Bitsliced.sv_plane)
                   npos (vmask + 1) sub
                   (npos * (vmask + 1) * sub));
            let sizes_ok =
              sv.Bitsliced.sv_blocks = blocks
              && sv.Bitsliced.sv_sub = sub
              && Bytes.length sv.Bitsliced.sv_cols = ncols * blocks * 8
              && Bytes.length sv.Bitsliced.sv_used = stride
              && Array.length sv.Bitsliced.sv_valid = sub
              && Array.length sv.Bitsliced.sv_plane = npos * (vmask + 1) * sub
            in
            let rows_ok =
              match rows with
              | Some r -> Bytes.length r = n * stride
              | None -> false
            in
            if sizes_ok then begin
              (* Column/row mirror: every canonical column word must be
                 the exact transpose of the row blob. *)
              (match rows with
              | Some rows when rows_ok ->
                for b = 0 to ncols - 1 do
                  for blk = 0 to blocks - 1 do
                    let off = ((b * blocks) + blk) * 8 in
                    let actual = Bytes.get_int64_le sv.Bitsliced.sv_cols off in
                    let expected = expected_col rows ~stride ~n ~b ~blk in
                    if not (Int64.equal actual expected) then
                      flag "col-mirror" ~table:tbl ~entry ~index:blk ~offset:off
                        (Printf.sprintf
                           "column %d block %d is %Lx, transpose of rows gives %Lx"
                           b blk actual expected)
                  done
                done
              | _ -> ());
              (* Kill column: transposed, column m is exactly the down
                 ports. *)
              if entry = "phys" && Array.length rv.rv_up = n then begin
                let b = rv.rv_m in
                for blk = 0 to blocks - 1 do
                  let expected = ref 0L in
                  let lo = blk * 64 in
                  for slot = lo to min n (lo + 64) - 1 do
                    if not rv.rv_up.(slot) then
                      expected := Int64.logor !expected (Int64.shift_left 1L (slot - lo))
                  done;
                  let off = ((b * blocks) + blk) * 8 in
                  let actual = Bytes.get_int64_le sv.Bitsliced.sv_cols off in
                  if not (Int64.equal actual !expected) then
                    flag "kill-column" ~table:tbl ~entry ~index:blk ~offset:off
                      (Printf.sprintf
                         "kill column block %d is %Lx, down ports give %Lx" blk
                         actual !expected)
                done
              end;
              (* Used map: bit b set iff column b is nonzero. *)
              for b = 0 to ncols - 1 do
                let nonzero = ref false in
                for blk = 0 to blocks - 1 do
                  if
                    not
                      (Int64.equal
                         (Bytes.get_int64_le sv.Bitsliced.sv_cols
                            (((b * blocks) + blk) * 8))
                         0L)
                  then nonzero := true
                done;
                let marked =
                  Char.code (Bytes.get sv.Bitsliced.sv_used (b lsr 3))
                  land (1 lsl (b land 7))
                  <> 0
                in
                if marked <> !nonzero then
                  flag "col-used" ~table:tbl ~entry ~offset:(b lsr 3)
                    (Printf.sprintf "used bit %d is %b but column is %s" b marked
                       (if !nonzero then "nonzero" else "zero"))
              done;
              (* Active positions: ascending, exactly those with a used
                 column. *)
              let expected_active = ref [] in
              for pos = npos - 1 downto 0 do
                let any = ref false in
                for tb = 0 to bits - 1 do
                  let b = (pos * bits) + tb in
                  if
                    Char.code (Bytes.get sv.Bitsliced.sv_used (b lsr 3))
                    land (1 lsl (b land 7))
                    <> 0
                  then any := true
                done;
                if !any then expected_active := pos :: !expected_active
              done;
              let expected_active = Array.of_list !expected_active in
              if sv.Bitsliced.sv_active <> expected_active then
                flag "col-active" ~table:tbl ~entry
                  (Printf.sprintf "active positions [%s], used map gives [%s]"
                     (String.concat ";"
                        (Array.to_list
                           (Array.map string_of_int sv.Bitsliced.sv_active)))
                     (String.concat ";"
                        (Array.to_list (Array.map string_of_int expected_active))));
              (* Valid masks: slots < n per 32-slot sub-block. *)
              Array.iteri
                (fun s mask ->
                  let remaining = n - (s lsl 5) in
                  let expected =
                    if remaining >= 32 then 0xFFFFFFFF else (1 lsl remaining) - 1
                  in
                  if mask <> expected then
                    flag "col-valid" ~table:tbl ~entry ~index:s
                      (Printf.sprintf "valid mask %#x, expected %#x" mask expected))
                sv.Bitsliced.sv_valid;
              (* Plane: every word must be the OR of the canonical
                 columns its group value leaves uncovered. *)
              for pos = 0 to npos - 1 do
                for value = 0 to vmask do
                  for s = 0 to sub - 1 do
                    let expected = ref 0 in
                    for tb = 0 to bits - 1 do
                      if value land (1 lsl tb) = 0 then begin
                        let b = (pos * bits) + tb in
                        let blk = s lsr 1 in
                        let w =
                          Bytes.get_int64_le sv.Bitsliced.sv_cols
                            (((b * blocks) + blk) * 8)
                        in
                        let part =
                          if s land 1 = 0 then
                            Int64.to_int (Int64.logand w 0xFFFFFFFFL)
                          else Int64.to_int (Int64.shift_right_logical w 32)
                        in
                        expected := !expected lor part
                      end
                    done;
                    let idx = (((pos lsl bits) lor value) * sub) + s in
                    if sv.Bitsliced.sv_plane.(idx) <> !expected then
                      flag "col-plane" ~table:tbl ~entry ~index:pos ~offset:idx
                        (Printf.sprintf
                           "plane word for value %#x sub-block %d is %#x, columns give %#x"
                           value s sv.Bitsliced.sv_plane.(idx) !expected)
                  done
                done
              done
            end)
          per_table)
      slices
  end;
  if check_digest then begin
    let now = Bitsliced.digest bs in
    if now <> v.Bitsliced.view_digest then
      flag "digest"
        (Printf.sprintf "blob digest %#x no longer matches the compile-time %#x" now
           v.Bitsliced.view_digest)
  end;
  List.rev !out

let audit_bitsliced_ok ?check_digest bs =
  match audit_bitsliced ?check_digest bs with [] -> true | _ :: _ -> false
