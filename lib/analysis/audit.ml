module Fastpath = Lipsin_forwarding.Fastpath

type violation = {
  check : string;
  table : int;
  entry : string;
  index : int;
  detail : string;
}

let to_string v =
  let where =
    (if v.table >= 0 then Printf.sprintf " table %d" v.table else "")
    ^ (if v.entry <> "" then Printf.sprintf " %s" v.entry else "")
    ^ if v.index >= 0 then Printf.sprintf "[%d]" v.index else ""
  in
  Printf.sprintf "[%s]%s: %s" v.check where v.detail

let pp ppf v = Format.pp_print_string ppf (to_string v)

(* All checks work on the shared introspection view; nothing here
   mutates engine state. *)

let popcount_byte b =
  let rec go b acc = if b = 0 then acc else go (b lsr 1) (acc + (b land 1)) in
  go b 0

(* Popcount of the live bits [0, m) of the entry at [slot]. *)
let live_popcount blob ~slot ~stride ~m =
  let base = slot * stride in
  let full = m / 8 in
  let count = ref 0 in
  for i = 0 to full - 1 do
    count := !count + popcount_byte (Char.code (Bytes.get blob (base + i)))
  done;
  let rem = m land 7 in
  if rem <> 0 then
    count :=
      !count
      + popcount_byte (Char.code (Bytes.get blob (base + full)) land ((1 lsl rem) - 1));
  !count

(* Popcount of the padding bits [m, 8*stride), excluding the kill bit
   at position m; also reports whether the kill bit itself is set. *)
let padding_state blob ~slot ~stride ~m =
  let base = slot * stride in
  let kill_byte = m lsr 3 in
  let kill_mask = 1 lsl (m land 7) in
  let kill_set = Char.code (Bytes.get blob (base + kill_byte)) land kill_mask <> 0 in
  let stray = ref 0 in
  for i = m lsr 3 to stride - 1 do
    let b = Char.code (Bytes.get blob (base + i)) in
    let live_mask = if i = m lsr 3 then (1 lsl (m land 7)) - 1 else 0 in
    let pad = b land lnot live_mask land 0xff in
    let pad = if i = kill_byte then pad land lnot kill_mask land 0xff else pad in
    stray := !stray + popcount_byte pad
  done;
  (kill_set, !stray)

let audit ?(check_digest = true) fp =
  let v = Fastpath.view fp in
  let out = ref [] in
  let flag ?(table = -1) ?(entry = "") ?(index = -1) check detail =
    out := { check; table; entry; index; detail } :: !out
  in
  let m = v.Fastpath.view_m in
  let d = v.Fastpath.view_d in
  let words = v.Fastpath.view_words in
  let stride = v.Fastpath.view_stride in
  let n_ports = v.Fastpath.view_n_ports in
  let n_virt = v.Fastpath.view_n_virt in
  let n_svc = Array.length v.Fastpath.view_svc_names in
  (* Geometry: the stride layout the hot loop assumes.  Entries always
     carry at least one spare word bit so the kill bit exists. *)
  if m <= 0 then flag "geometry" (Printf.sprintf "non-positive width m=%d" m);
  if d <= 0 then flag "geometry" (Printf.sprintf "non-positive table count d=%d" d);
  if words <> (m / 64) + 1 then
    flag "geometry" (Printf.sprintf "words=%d, expected m/64+1=%d" words ((m / 64) + 1));
  if stride <> 8 * words then
    flag "geometry" (Printf.sprintf "stride=%d, expected 8*words=%d" stride (8 * words));
  if v.Fastpath.view_data_len <> (m + 7) / 8 then
    flag "geometry"
      (Printf.sprintf "data_len=%d, expected ceil(m/8)=%d" v.Fastpath.view_data_len
         ((m + 7) / 8));
  if Array.length v.Fastpath.view_k_for_table <> d then
    flag "geometry"
      (Printf.sprintf "k_for_table has %d entries for d=%d tables"
         (Array.length v.Fastpath.view_k_for_table)
         d);
  Array.iteri
    (fun tbl k ->
      if k <= 0 || k > m then
        flag "geometry" ~table:tbl (Printf.sprintf "k=%d outside (0, m=%d]" k m))
    v.Fastpath.view_k_for_table;
  (* d-consistency: every candidate table must be present with the same
     per-kind dimensions. *)
  let expect_tables name arr =
    if Array.length arr <> d then
      flag "d-consistency" ~entry:name
        (Printf.sprintf "%d per-table blobs for d=%d tables" (Array.length arr) d)
  in
  expect_tables "phys" v.Fastpath.view_phys;
  expect_tables "in" v.Fastpath.view_in_tags;
  expect_tables "block" v.Fastpath.view_blocks;
  expect_tables "virt" v.Fastpath.view_virt;
  expect_tables "local" v.Fastpath.view_local;
  expect_tables "svc" v.Fastpath.view_svc;
  if Array.length v.Fastpath.view_block_off <> d then
    flag "d-consistency" ~entry:"block"
      (Printf.sprintf "%d offset tables for d=%d tables"
         (Array.length v.Fastpath.view_block_off)
         d);
  (* Port metadata arrays. *)
  if Array.length v.Fastpath.view_up <> n_ports then
    flag "port-bounds"
      (Printf.sprintf "up array length %d <> n_ports %d"
         (Array.length v.Fastpath.view_up) n_ports);
  if Array.length v.Fastpath.view_out_index <> n_ports then
    flag "port-bounds"
      (Printf.sprintf "out_index length %d <> n_ports %d"
         (Array.length v.Fastpath.view_out_index)
         n_ports);
  (* Virtual egress indirection: monotone prefix offsets, every egress a
     valid port. *)
  let voff = v.Fastpath.view_v_out_off in
  if Array.length voff <> n_virt + 1 then
    flag "offsets" ~entry:"virt"
      (Printf.sprintf "v_out_off length %d <> n_virt+1=%d" (Array.length voff)
         (n_virt + 1))
  else begin
    if n_virt >= 0 && voff.(0) <> 0 then
      flag "offsets" ~entry:"virt" (Printf.sprintf "v_out_off.(0)=%d <> 0" voff.(0));
    for i = 0 to n_virt - 1 do
      if voff.(i + 1) < voff.(i) then
        flag "offsets" ~entry:"virt" ~index:i
          (Printf.sprintf "v_out_off decreases: %d then %d" voff.(i) voff.(i + 1))
    done;
    if Array.length v.Fastpath.view_v_out_ports <> voff.(n_virt) then
      flag "offsets" ~entry:"virt"
        (Printf.sprintf "v_out_ports length %d <> v_out_off.(n_virt)=%d"
           (Array.length v.Fastpath.view_v_out_ports)
           voff.(n_virt))
  end;
  Array.iteri
    (fun j p ->
      if p < 0 || p >= n_ports then
        flag "port-bounds" ~entry:"virt" ~index:j
          (Printf.sprintf "virtual egress port %d outside [0, %d)" p n_ports))
    v.Fastpath.view_v_out_ports;
  (* Decision buffers must hold the worst-case decision. *)
  if v.Fastpath.view_forward_cap < n_ports then
    flag "capacity"
      (Printf.sprintf "forward buffer %d < n_ports %d" v.Fastpath.view_forward_cap
         n_ports);
  if v.Fastpath.view_services_cap < n_svc then
    flag "capacity"
      (Printf.sprintf "service buffer %d < n_services %d"
         v.Fastpath.view_services_cap n_svc);
  if v.Fastpath.view_seen_cap < n_ports then
    flag "capacity"
      (Printf.sprintf "seen stamps %d < n_ports %d" v.Fastpath.view_seen_cap n_ports);
  (* Per-table blob scan: sizes, padding, kill bits, LIT popcounts. *)
  let tables = min d (Array.length v.Fastpath.view_phys) in
  let scan ~entry ~n ~exact_k ~kill_for tbl blob =
    if Bytes.length blob <> n * stride then
      flag "blob-size" ~table:tbl ~entry
        (Printf.sprintf "blob is %d bytes, expected %d entries * stride %d = %d"
           (Bytes.length blob) n stride (n * stride))
    else
      for slot = 0 to n - 1 do
        let kill_set, stray = padding_state blob ~slot ~stride ~m in
        if stray <> 0 then
          flag "padding" ~table:tbl ~entry ~index:slot
            (Printf.sprintf "%d stray bits set beyond position m=%d" stray m);
        (match kill_for with
        | None ->
          if kill_set then
            flag "kill-bit" ~table:tbl ~entry ~index:slot
              "kill bit set on an entry kind that never carries one"
        | Some down ->
          if kill_set && not (down slot) then
            flag "kill-bit" ~table:tbl ~entry ~index:slot
              "kill bit set but the port is up";
          if (not kill_set) && down slot then
            flag "kill-bit" ~table:tbl ~entry ~index:slot
              "port is down but its kill bit is clear");
        match exact_k with
        | Some k ->
          let pc = live_popcount blob ~slot ~stride ~m in
          if pc <> k then
            flag "popcount" ~table:tbl ~entry ~index:slot
              (Printf.sprintf "LIT has %d live bits, expected k=%d" pc k)
        | None -> ()
      done
  in
  for tbl = 0 to tables - 1 do
    let k =
      if tbl < Array.length v.Fastpath.view_k_for_table then
        Some v.Fastpath.view_k_for_table.(tbl)
      else None
    in
    let down slot =
      slot < Array.length v.Fastpath.view_up && not v.Fastpath.view_up.(slot)
    in
    scan ~entry:"phys" ~n:n_ports ~exact_k:k ~kill_for:(Some down) tbl
      v.Fastpath.view_phys.(tbl);
    if tbl < Array.length v.Fastpath.view_in_tags then
      scan ~entry:"in" ~n:n_ports ~exact_k:k ~kill_for:None tbl
        v.Fastpath.view_in_tags.(tbl);
    if tbl < Array.length v.Fastpath.view_local then
      scan ~entry:"local" ~n:1 ~exact_k:k ~kill_for:None tbl
        v.Fastpath.view_local.(tbl);
    if tbl < Array.length v.Fastpath.view_svc then
      scan ~entry:"svc" ~n:n_svc ~exact_k:k ~kill_for:None tbl
        v.Fastpath.view_svc.(tbl);
    (* Virtual entries are ORs of whole trees and block entries are
       arbitrary veto patterns, so only layout invariants apply. *)
    if tbl < Array.length v.Fastpath.view_virt then
      scan ~entry:"virt" ~n:n_virt ~exact_k:None ~kill_for:None tbl
        v.Fastpath.view_virt.(tbl);
    if
      tbl < Array.length v.Fastpath.view_blocks
      && tbl < Array.length v.Fastpath.view_block_off
    then begin
      let off = v.Fastpath.view_block_off.(tbl) in
      if Array.length off <> n_ports + 1 then
        flag "offsets" ~table:tbl ~entry:"block"
          (Printf.sprintf "offset table length %d <> n_ports+1=%d" (Array.length off)
             (n_ports + 1))
      else begin
        if off.(0) <> 0 then
          flag "offsets" ~table:tbl ~entry:"block"
            (Printf.sprintf "block_off.(0)=%d <> 0" off.(0));
        for p = 0 to n_ports - 1 do
          if off.(p + 1) < off.(p) then
            flag "offsets" ~table:tbl ~entry:"block" ~index:p
              (Printf.sprintf "block_off decreases: %d then %d" off.(p) off.(p + 1))
        done;
        scan ~entry:"block" ~n:off.(n_ports) ~exact_k:None ~kill_for:None tbl
          v.Fastpath.view_blocks.(tbl)
      end
    end
  done;
  if check_digest then begin
    let now = Fastpath.digest fp in
    if now <> v.Fastpath.view_digest then
      flag "digest"
        (Printf.sprintf "blob digest %#x no longer matches the compile-time %#x" now
           v.Fastpath.view_digest)
  end;
  List.rev !out

let audit_ok ?check_digest fp =
  match audit ?check_digest fp with [] -> true | _ :: _ -> false
