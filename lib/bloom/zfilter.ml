module Bitvec = Lipsin_bitvec.Bitvec

type t = Bitvec.t

let create ~m = Bitvec.create m
let of_bitvec v = v
let to_bitvec t = t
let copy = Bitvec.copy
let m = Bitvec.length
let add t lit = Bitvec.logor_into ~dst:t lit

let of_tags ~m tags =
  let t = create ~m in
  List.iter (add t) tags;
  t

let matches t ~lit = Bitvec.subset lit ~of_:t
let fill_factor = Bitvec.fill_ratio
let fpa t ~k = fill_factor t ** float_of_int k
let within_fill_limit t ~limit = fill_factor t <= limit

let fill_threshold ~m ~limit =
  (* The ratio [p/m] is monotone in p, so the largest popcount passing
     the *same float comparison* as [within_fill_limit] is an exact
     integer stand-in for it; precomputing it once lets the compiled
     engines replace the per-decision float divide with an int compare
     without ever disagreeing with the reference engine on a rounding
     edge. *)
  let thr = ref (-1) in
  for p = 0 to m do
    if float_of_int p /. float_of_int m <= limit then thr := p
  done;
  !thr
let equal = Bitvec.equal
let popcount = Bitvec.popcount
let to_hex = Bitvec.to_hex
let of_hex ~m s = Bitvec.of_hex m s
let pp = Bitvec.pp
