(** In-packet Bloom filters — zFilters.

    A zFilter is the OR of the LITs of the links of a delivery tree, for
    one forwarding-table index.  This module wraps the bit vector with
    the metrics the paper defines: fill factor ρ and the
    false-positive-after-hashing estimate fpa = ρ^k (Eq. 1). *)

type t
(** A zFilter; carries its width m.  Mutable (construction ORs tags in
    place). *)

val create : m:int -> t
(** All-zero filter of width [m]. *)

val of_bitvec : Lipsin_bitvec.Bitvec.t -> t
(** Adopts (does not copy) the given vector. *)

val to_bitvec : t -> Lipsin_bitvec.Bitvec.t
(** The underlying vector (shared, not a copy). *)

val copy : t -> t
val m : t -> int

val add : t -> Lipsin_bitvec.Bitvec.t -> unit
(** ORs a LIT into the filter.  @raise Invalid_argument on width
    mismatch. *)

val of_tags : m:int -> Lipsin_bitvec.Bitvec.t list -> t
(** Builds a filter holding all the given tags. *)

val matches : t -> lit:Lipsin_bitvec.Bitvec.t -> bool
(** Algorithm 1's test: [zFilter AND LIT = LIT]. *)

val fill_factor : t -> float
(** ρ — fraction of bits set. *)

val fpa : t -> k:int -> float
(** Eq. (1): ρ^k, the expected false-positive probability for a
    membership test with k bits. *)

val within_fill_limit : t -> limit:float -> bool
(** Security check of Sec. 4.4: [fill_factor <= limit].  Forwarding
    nodes drop packets over the limit to defeat contamination attacks. *)

val fill_threshold : m:int -> limit:float -> int
(** [fill_threshold ~m ~limit] is the largest popcount [p] such that a
    width-[m] filter with [p] set bits satisfies {!within_fill_limit}
    (or [-1] if none does).  Computed with the same float comparison as
    [within_fill_limit], so [popcount z <= fill_threshold ~m ~limit]
    decides exactly like [within_fill_limit z ~limit] — the compiled
    engines hoist this to compile time. *)

val equal : t -> t -> bool
val popcount : t -> int
val to_hex : t -> string
val of_hex : m:int -> string -> t
val pp : Format.formatter -> t -> unit
