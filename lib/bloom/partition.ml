type handoff = { at : int; next : int }

type stage = {
  index : int;
  m : int;
  table : int;
  root : int;
  nonce : int64;
  filter : Zfilter.t;
  links : int list;
  subscribers : int list;
  handoffs : handoff list;
}

type t = { id : int; root : int; stages : stage array }

let stage_count t = Array.length t.stages

let validate t =
  let n = Array.length t.stages in
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  if n = 0 then Error "partition has no stages"
  else if t.stages.(0).root <> t.root then
    Error "stage 0 is not rooted at the partition root"
  else begin
    let entered = Array.make n 0 in
    entered.(0) <- 1;
    let rec check_stage i =
      if i >= n then Ok ()
      else
        let s = t.stages.(i) in
        if s.index <> i then err "stage %d carries index %d" i s.index
        else if s.table < 0 then err "stage %d has a negative table" i
        else if Zfilter.m s.filter <> s.m then
          err "stage %d filter width %d does not match m %d" i
            (Zfilter.m s.filter) s.m
        else
          let rec check_handoffs = function
            | [] -> check_stage (i + 1)
            | { at = _; next } :: rest ->
              if next <= 0 || next >= n then
                err "stage %d hands off to missing stage %d" i next
              else begin
                entered.(next) <- entered.(next) + 1;
                check_handoffs rest
              end
          in
          check_handoffs s.handoffs
    in
    match check_stage 0 with
    | Error _ as e -> e
    | Ok () ->
      let orphan = ref None in
      Array.iteri
        (fun i c ->
          if c <> 1 && !orphan = None then orphan := Some (i, c))
        entered;
      (match !orphan with
      | Some (i, 0) -> err "stage %d is never entered" i
      | Some (i, c) -> err "stage %d is entered %d times" i c
      | None ->
        (* in-degree exactly one everywhere + stage 0 as the unique
           source makes the handoff graph a forest; reachability from
           stage 0 rules out disconnected cycles. *)
        let seen = Array.make n false in
        let rec walk i =
          if not seen.(i) then begin
            seen.(i) <- true;
            List.iter (fun h -> walk h.next) t.stages.(i).handoffs
          end
        in
        walk 0;
        let unreachable = ref None in
        Array.iteri
          (fun i s -> if not s && !unreachable = None then unreachable := Some i)
          seen;
        (match !unreachable with
        | Some i -> err "stage %d is unreachable from stage 0 (handoff cycle)" i
        | None -> Ok ()))
  end

(* A falsely fired stitch entry re-delivers a whole child subtree and,
   during Stagecut's nonce repair, one containment anywhere forces a
   redraw — so egress LITs spend 4x a link LIT's hash bits, dropping
   the per-test false-positive rate from rho^k to rho^4k (0.7^20 ~ 8e-4
   at the fill limit, vs 0.168 for a link tag). *)
let egress_k ~m k = min m (4 * k)

let egress_lit (p : Lit.params) ~nonce =
  Lit.generate
    { p with Lit.k_for_table = Array.map (egress_k ~m:p.Lit.m) p.Lit.k_for_table }
    ~nonce

let parent t i =
  if i = 0 then None
  else
    let found = ref None in
    Array.iter
      (fun s ->
        List.iter (fun h -> if h.next = i then found := Some h) s.handoffs)
      t.stages;
    !found

let total_filter_bits t =
  Array.fold_left (fun acc s -> acc + s.m) 0 t.stages

let max_fill t =
  Array.fold_left (fun acc s -> max acc (Zfilter.fill_factor s.filter)) 0.0
    t.stages

let nodes (s : stage) = s.root :: s.subscribers

let pp fmt t =
  Format.fprintf fmt "partition %d root %d (%d stages)@\n" t.id t.root
    (Array.length t.stages);
  Array.iter
    (fun s ->
      Format.fprintf fmt
        "  stage %d: m=%d table=%d root=%d fill=%.3f links=%d subs=%d%s@\n"
        s.index s.m s.table s.root
        (Zfilter.fill_factor s.filter)
        (List.length s.links)
        (List.length s.subscribers)
        (match s.handoffs with
        | [] -> ""
        | hs ->
          " handoffs=" ^ String.concat ","
            (List.map (fun h -> Printf.sprintf "%d->%d" h.at h.next) hs)))
    t.stages
