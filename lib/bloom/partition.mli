(** Partitioned (XBF-style) zFilters — stage filters + stitch points.

    A single zFilter saturates at [fill_limit * m] set bits, capping a
    delivery tree at a few dozen links (Sec. 3.2).  Following XBF
    (arXiv:1602.05853) a large tree is cut into {e stages}: each stage
    carries its own zFilter, possibly at its own width drawn from the
    {!Adaptive}-style same-nonce family (arXiv:0908.3574), and hands the
    packet over to child stages at {e stitch nodes}.

    Handoff encoding: every stage owns one {e egress LIT} (a fresh
    nonce, expanded to per-table tags at the stage's width).  A stage
    with children ORs its own egress tag into its filter — k bits total,
    independent of how many children it has.  At each stitch node the
    forwarding engine holds a {e stitch entry} mapping the parent
    stage's egress LIT to [(partition id, next stage index)]; when a
    packet whose zFilter covers the egress tags reaches the stitch node,
    delivery restarts there with the child stage's filter.  Two stages
    rooted at the same node are distinguished by their distinct egress
    nonces.

    This module is the passive data type (graph-free: nodes and links
    are integer ids); the compiler lives in [Lipsin_core.Stagecut], the
    engines' stitch entries in [Lipsin_forwarding], and the exactly-once
    verifier in [Lipsin_analysis.Netcheck]. *)

type handoff = {
  at : int;    (** Stitch node where the child stage is entered. *)
  next : int;  (** Child stage index. *)
}

type stage = {
  index : int;          (** Position in {!t}'s [stages]. *)
  m : int;              (** Filter width of this stage. *)
  table : int;          (** d-table the stage's filter was built from. *)
  root : int;           (** Node where this stage's delivery starts. *)
  nonce : int64;        (** Egress-LIT nonce shared by all children. *)
  filter : Zfilter.t;   (** OR of link tags + own egress tag if parent. *)
  links : int list;     (** Graph link indexes of the stage's tree. *)
  subscribers : int list;  (** Subscribers whose home stage this is. *)
  handoffs : handoff list;
}

type t = {
  id : int;        (** Partition id carried in stitch entries. *)
  root : int;      (** Root of the whole stitched tree = stage 0 root. *)
  stages : stage array;
}

val stage_count : t -> int

val validate : t -> (unit, string) result
(** Structural checks: stage [index] fields match positions, stage 0 is
    rooted at [t.root], every handoff target is a real non-zero stage,
    every stage except 0 is entered by exactly one handoff, the stage
    graph is acyclic (every stage reachable from stage 0), each stage's
    filter width equals its [m], and each [table] is non-negative. *)

val egress_k : m:int -> int -> int
(** Hash bits an egress LIT spends per table, given the link LITs' [k]:
    [min m (4 * k)].  An egress false positive costs a whole duplicate
    child subtree (not one link), and every containment of a stage's
    egress tag in a same-width stage traversing its stitch nodes forces
    a nonce redraw in [Stagecut] — so egress membership gets 4x the
    budget, taking the per-test rate from rho{^ k} to rho{^ 4k}
    (~8e-4 at the 0.7 fill limit with k=5, vs 0.168 for a link tag). *)

val egress_lit : Lit.params -> nonce:int64 -> Lit.t
(** The egress LIT for a stage nonce under a family's link-LIT params:
    same width and table count, but {!egress_k} bits per table.  The
    single derivation shared by the compiler ([Stagecut]), the stitch
    installer ([Stitched]), the verifier ([Netcheck.check_partition])
    and the blob auditor ([Audit]) — they must agree bit for bit. *)

val parent : t -> int -> handoff option
(** [parent t i] is the handoff entering stage [i] ([None] for stage 0).
    Only meaningful on a validated partition. *)

val total_filter_bits : t -> int
(** Σ stage widths — the header budget of the stitched tree. *)

val max_fill : t -> float
(** Largest per-stage fill factor, the quantity the fill limit caps. *)

val nodes : stage -> int list
(** Home nodes of a stage: its root plus its subscribers (the stage's
    links cover more nodes; this is the delivery-relevant set). *)

val pp : Format.formatter -> t -> unit
(** One line per stage: width, fill, link count, handoffs. *)
