(** Topic workload generation (Sec. 4.3).

    The paper argues from measured popularity distributions — RSS
    subscriptions, YouTube views, IPTV channels are all Zipf-like — that
    the vast majority of topics have few receivers and need no
    forwarding state, while only the few most popular topics need
    virtual links or multiple sending.  This module samples such
    workloads over a topology. *)

type config = {
  topics : int;           (** Topic population size. *)
  zipf_s : float;         (** Popularity exponent (1.0 = classic Zipf). *)
  max_subscribers : int;  (** Subscriber count of the most popular topic. *)
  seed : int;
}

val default : config
(** 10_000 topics, s = 1.0, max 64 subscribers, seed 42. *)

type topic_load = {
  rank : int;  (** Popularity rank, 1 = most popular. *)
  publisher : Lipsin_topology.Graph.node;
  subscribers : Lipsin_topology.Graph.node list;  (** Distinct, ≠ publisher. *)
}

val sample_topic : config -> Lipsin_util.Rng.t -> Lipsin_topology.Graph.t -> topic_load
(** Draws one topic: a Zipf rank, a subscriber count scaled by
    popularity, and uniform distinct publisher/subscriber placements. *)

val sample : config -> Lipsin_topology.Graph.t -> n:int -> topic_load array
(** [n] independent topics from the configured distribution. *)

type aggregate = {
  sampled : int;
  stateless_ok : int;
      (** Topics whose whole tree fits one zFilter under the fill
          limit — no network state needed. *)
  needs_state : int;  (** The popular tail that needs splitting/state. *)
  mean_efficiency : float;  (** Over stateless-deliverable topics. *)
  mean_fpr : float;
  mean_subscribers : float;
  ssm_state_entries : int;
      (** (S,G) router-state entries IP SSM would install for the SAME
          workload (LIPSIN: zero for the stateless topics). *)
}

val evaluate :
  config -> Lipsin_core.Assignment.t -> n:int -> ?fill_limit:float -> unit -> aggregate
(** Samples [n] topics, delivers each through a fresh Net, and
    aggregates the state-vs-stateless accounting. *)

(** {1 Internet-scale partitioned topics}

    The paper's popular tail — the few topics with very large audiences
    — is exactly where one zFilter hits the fill limit.  These helpers
    build the two-tier topologies such topics live on (a
    Rocketfuel-like router core plus per-subscriber access hosts) and
    evaluate the {!Lipsin_core.Stagecut} partitioned-zFilter pipeline
    end to end. *)

val two_tier :
  ?seed:int ->
  core:int ->
  core_edges:int ->
  max_degree:int ->
  hosts:int ->
  unit ->
  Lipsin_topology.Graph.t * Lipsin_topology.Graph.node list
(** A preferential-attachment backbone of [core] routers
    ({!Lipsin_topology.Generator.pref_attach} shape) with [hosts] leaf
    host nodes, each on a dedicated access edge to a uniformly chosen
    core router.  Returns the graph and the host nodes (subscriber
    candidates). *)

type partitioned_report = {
  p_subscribers : int;
  p_stages : int;
  p_widths : (int * int) list;  (** (width, stage count), ascending. *)
  p_filter_bits : int;  (** Σ stage widths — total header budget. *)
  p_max_fill : float;
  p_single_filter_ok : bool;
      (** Whether one zFilter (any width) could have carried the whole
          tree — false is the regime partitioning exists for. *)
  p_exactly_once : bool;  (** {!Lipsin_sim.Stitched.exactly_once}. *)
  p_netcheck_errors : int;
      (** [Error] findings from
          {!Lipsin_analysis.Netcheck.check_partition} (0 when
          [netcheck] is off). *)
  p_tree_links : int;
  p_traversals : int;
  p_redraws : int;  (** Egress nonces re-drawn by conflict repair. *)
}

val evaluate_partitioned :
  ?fill_limit:float ->
  ?engine:Lipsin_sim.Run.engine ->
  ?netcheck:bool ->
  ?seed:int ->
  Lipsin_core.Adaptive.t ->
  root:Lipsin_topology.Graph.node ->
  subscribers:Lipsin_topology.Graph.node list ->
  unit ->
  (partitioned_report, string) result
(** Plans the partition ({!Lipsin_core.Stagecut.plan}), statically
    verifies it ([netcheck], default on), installs its stitch entries,
    delivers through {!Lipsin_sim.Stitched} and reports.  [Error] is
    the planner's error. *)
