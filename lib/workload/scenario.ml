module Rng = Lipsin_util.Rng
module Zipf = Lipsin_util.Zipf
module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module Assignment = Lipsin_core.Assignment
module Candidate = Lipsin_core.Candidate
module Select = Lipsin_core.Select
module Net = Lipsin_sim.Net
module Run = Lipsin_sim.Run
module Ip_multicast = Lipsin_baseline.Ip_multicast

type config = {
  topics : int;
  zipf_s : float;
  max_subscribers : int;
  seed : int;
}

let default = { topics = 10_000; zipf_s = 1.0; max_subscribers = 64; seed = 42 }

type topic_load = {
  rank : int;
  publisher : Graph.node;
  subscribers : Graph.node list;
}

let sample_topic =
  (* The CDF over the topic population is big (one float per topic);
     memoise it per configuration rather than rebuilding per draw. *)
  let cache : (int * float, Zipf.t) Hashtbl.t = Hashtbl.create 4 in
  fun config rng graph ->
  let key = (config.topics, config.zipf_s) in
  let zipf =
    match Hashtbl.find_opt cache key with
    | Some z -> z
    | None ->
      let z = Zipf.create ~n:config.topics ~s:config.zipf_s in
      Hashtbl.replace cache key z;
      z
  in
  let rank = Zipf.draw zipf rng in
  let nodes = Graph.node_count graph in
  let count =
    let scaled =
      int_of_float
        (ceil (float_of_int config.max_subscribers /. float_of_int rank))
    in
    min (nodes - 1) (max 1 scaled)
  in
  let picks = Rng.sample rng (count + 1) nodes in
  let publisher = picks.(0) in
  let subscribers = Array.to_list (Array.sub picks 1 count) in
  { rank; publisher; subscribers }

let sample config graph ~n =
  let rng = Rng.of_int config.seed in
  Array.init n (fun _ -> sample_topic config rng graph)

type aggregate = {
  sampled : int;
  stateless_ok : int;
  needs_state : int;
  mean_efficiency : float;
  mean_fpr : float;
  mean_subscribers : float;
  ssm_state_entries : int;
}

let evaluate config assignment ~n ?(fill_limit = 0.7) () =
  let graph = Assignment.graph assignment in
  let net = Net.make ~fill_limit assignment in
  let ssm = Ip_multicast.create graph in
  let loads = sample config graph ~n in
  let stateless_ok = ref 0 in
  let eff_acc = ref 0.0 and fpr_acc = ref 0.0 and subs_acc = ref 0 in
  Array.iteri
    (fun i load ->
      subs_acc := !subs_acc + List.length load.subscribers;
      let group = { Ip_multicast.source = load.publisher; group_id = i } in
      List.iter (fun r -> Ip_multicast.join ssm group ~receiver:r) load.subscribers;
      let tree =
        Spt.delivery_tree graph ~root:load.publisher ~subscribers:load.subscribers
      in
      let candidates = Candidate.build assignment ~tree in
      match Select.select_fpa ~fill_limit candidates with
      | None -> ()
      | Some c ->
        incr stateless_ok;
        let outcome =
          Run.deliver net ~src:load.publisher ~table:c.Candidate.table
            ~zfilter:c.Candidate.zfilter ~tree
        in
        eff_acc := !eff_acc +. Run.forwarding_efficiency outcome ~tree;
        fpr_acc := !fpr_acc +. Run.false_positive_rate outcome)
    loads;
  let ok = max 1 !stateless_ok in
  {
    sampled = n;
    stateless_ok = !stateless_ok;
    needs_state = n - !stateless_ok;
    mean_efficiency = !eff_acc /. float_of_int ok;
    mean_fpr = !fpr_acc /. float_of_int ok;
    mean_subscribers = float_of_int !subs_acc /. float_of_int n;
    ssm_state_entries = Ip_multicast.total_state ssm;
  }

(* ---- internet-scale partitioned topics ----------------------------- *)

let two_tier ?(seed = 7) ~core ~core_edges ~max_degree ~hosts () =
  let rng = Rng.of_int seed in
  let backbone =
    Lipsin_topology.Generator.pref_attach ~rng ~nodes:core ~edges:core_edges
      ~max_degree ()
  in
  let g = Graph.create ~nodes:(core + hosts) in
  Graph.iter_links backbone (fun l ->
      if l.Graph.src < l.Graph.dst then Graph.add_edge g l.Graph.src l.Graph.dst);
  let host_nodes =
    List.init hosts (fun i ->
        let h = core + i in
        Graph.add_edge g (Rng.int rng core) h;
        h)
  in
  (g, host_nodes)

type partitioned_report = {
  p_subscribers : int;
  p_stages : int;
  p_widths : (int * int) list;
  p_filter_bits : int;
  p_max_fill : float;
  p_single_filter_ok : bool;
  p_exactly_once : bool;
  p_netcheck_errors : int;
  p_tree_links : int;
  p_traversals : int;
  p_redraws : int;
}

let evaluate_partitioned ?(fill_limit = 0.7) ?engine ?(netcheck = true)
    ?(seed = 11) adaptive ~root ~subscribers () =
  let rng = Rng.of_int seed in
  match
    Lipsin_core.Stagecut.plan ~fill_limit adaptive ~rng ~root ~subscribers
  with
  | Error e -> Error e
  | Ok (part, diag) ->
    let tree =
      let widest = List.hd (List.rev (Lipsin_core.Adaptive.widths adaptive)) in
      Spt.delivery_tree
        (Assignment.graph (Lipsin_core.Adaptive.assignment adaptive ~m:widest))
        ~root ~subscribers
    in
    let single_filter_ok =
      Option.is_some
        (Lipsin_core.Adaptive.choose adaptive ~tree ~target_fpa:1.0 ~fill_limit ())
    in
    let errors =
      if netcheck then
        List.length
          (Lipsin_analysis.Netcheck.errors
             (Lipsin_analysis.Netcheck.check_partition ~fill_limit ~subscribers
                adaptive part))
      else 0
    in
    let stitched = Lipsin_sim.Stitched.make ~fill_limit adaptive in
    Lipsin_sim.Stitched.install stitched part;
    let outcome = Lipsin_sim.Stitched.deliver ?engine stitched part in
    Lipsin_sim.Stitched.uninstall stitched part;
    Ok
      {
        p_subscribers = List.length subscribers;
        p_stages = diag.Lipsin_core.Stagecut.stages;
        p_widths = diag.Lipsin_core.Stagecut.widths_used;
        p_filter_bits = Lipsin_bloom.Partition.total_filter_bits part;
        p_max_fill = Lipsin_bloom.Partition.max_fill part;
        p_single_filter_ok = single_filter_ok;
        p_exactly_once =
          Result.is_ok (Lipsin_sim.Stitched.exactly_once outcome part);
        p_netcheck_errors = errors;
        p_tree_links = List.length tree;
        p_traversals = outcome.Lipsin_sim.Stitched.link_traversals;
        p_redraws = diag.Lipsin_core.Stagecut.redraws;
      }
