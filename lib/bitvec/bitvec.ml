type t = { bits : int; data : Bytes.t }

(* Bytes rather than an int array keeps the representation identical to
   the wire format; the padding bits in the final byte are kept at zero
   as an invariant so that byte-wise comparison and popcount need no
   masking. *)

let bytes_for bits = (bits + 7) / 8

let create bits =
  if bits <= 0 then invalid_arg "Bitvec.create: length must be positive";
  { bits; data = Bytes.make (bytes_for bits) '\000' }

let length t = t.bits
let copy t = { bits = t.bits; data = Bytes.copy t.data }

let check_index t i =
  if i < 0 || i >= t.bits then invalid_arg "Bitvec: index out of range"

let[@lipsin.inbounds] get t i =
  check_index t i;
  Char.code (Idx.bget t.data (i lsr 3)) land (1 lsl (i land 7)) <> 0

let[@lipsin.inbounds] set t i =
  check_index t i;
  let b = i lsr 3 in
  Idx.bset t.data b (Char.chr (Char.code (Idx.bget t.data b) lor (1 lsl (i land 7))))

let[@lipsin.inbounds] clear t i =
  check_index t i;
  let b = i lsr 3 in
  Idx.bset t.data b (Char.chr (Char.code (Idx.bget t.data b) land lnot (1 lsl (i land 7)) land 0xff))

let[@lipsin.inbounds] mask_padding t =
  (* Keep bits beyond [t.bits] in the last byte at zero. *)
  let rem = t.bits land 7 in
  if rem <> 0 then begin
    let last = Bytes.length t.data - 1 in
    let m = (1 lsl rem) - 1 in
    Idx.bset t.data last (Char.chr (Char.code (Idx.bget t.data last) land m))
  end

let set_all t =
  Bytes.fill t.data 0 (Bytes.length t.data) '\255';
  mask_padding t

let reset t = Bytes.fill t.data 0 (Bytes.length t.data) '\000'

(* SWAR popcount on a native int holding at most 56 significant bits
   (a 4-byte group from Idx.bget_u32 or a <4-byte tail).  Native int
   throughout: the int64 SWAR this replaced boxed one 3-word block per
   word read on non-flambda ocamlopt, which was the entire allocation
   budget of the forwarding hot path.  The masks fit OCaml's 63-bit int
   range, and the final multiply folds the per-byte counts into the top
   byte. *)
let[@inline always] [@lipsin.noalloc] popcount56 x =
  let x = x - ((x lsr 1) land 0x55555555555555) in
  let x = (x land 0x33333333333333) + ((x lsr 2) land 0x33333333333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F0F0F0F in
  ((x * 0x01010101010101) lsr 48) land 0xff

let[@lipsin.noalloc] [@lipsin.inbounds] popcount_bytes b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Bitvec.popcount_bytes: range out of bounds";
  let words = len lsr 2 in
  let count = ref 0 in
  for w = 0 to words - 1 do
    count := !count + popcount56 (Idx.bget_u32 b (pos + (w lsl 2)))
  done;
  (* Assemble the <4-byte tail into one native int and SWAR it too,
     rather than walking it byte by byte. *)
  let tail = ref 0 and shift = ref 0 in
  for i = pos + (words lsl 2) to pos + len - 1 do
    tail := !tail lor (Char.code (Idx.bget b i) lsl !shift);
    shift := !shift + 8
  done;
  !count + popcount56 !tail

let[@lipsin.noalloc] [@lipsin.inbounds] popcount t =
  popcount_bytes t.data ~pos:0 ~len:(Bytes.length t.data)

let fill_ratio t = float_of_int (popcount t) /. float_of_int t.bits

let check_same_length a b =
  if a.bits <> b.bits then invalid_arg "Bitvec: length mismatch"

let logor a b =
  check_same_length a b;
  let out = copy a in
  for i = 0 to Bytes.length out.data - 1 do
    Bytes.set out.data i
      (Char.chr (Char.code (Bytes.get out.data i) lor Char.code (Bytes.get b.data i)))
  done;
  out

let logand a b =
  check_same_length a b;
  let out = copy a in
  for i = 0 to Bytes.length out.data - 1 do
    Bytes.set out.data i
      (Char.chr (Char.code (Bytes.get out.data i) land Char.code (Bytes.get b.data i)))
  done;
  out

let[@lipsin.inbounds] logor_into ~dst src =
  check_same_length dst src;
  for i = 0 to Bytes.length dst.data - 1 do
    Idx.bset dst.data i
      (Char.chr (Char.code (Idx.bget dst.data i) lor Char.code (Idx.bget src.data i)))
  done

let[@lipsin.noalloc] [@lipsin.inbounds] subset a ~of_ =
  check_same_length a of_;
  let n = Bytes.length a.data in
  let words = n / 4 in
  (* while/ref loops instead of local recursive functions: the closures
     those allocate are the only heap traffic on this path.  Native-int
     4-byte groups (Idx.bget_u32): the int64 reads this replaced boxed
     on non-flambda ocamlopt. *)
  let ok = ref true in
  let w = ref 0 in
  while !ok && !w < words do
    let x = Idx.bget_u32 a.data (4 * !w) in
    let y = Idx.bget_u32 of_.data (4 * !w) in
    if x land y <> x then ok := false;
    incr w
  done;
  let i = ref (4 * words) in
  while !ok && !i < n do
    let x = Char.code (Idx.bget a.data !i) in
    let y = Char.code (Idx.bget of_.data !i) in
    if x land y <> x then ok := false;
    incr i
  done;
  !ok

let[@lipsin.noalloc] [@lipsin.inbounds] intersects a b =
  check_same_length a b;
  let n = Bytes.length a.data in
  let words = n / 4 in
  let hit = ref false in
  let w = ref 0 in
  while (not !hit) && !w < words do
    if Idx.bget_u32 a.data (4 * !w) land Idx.bget_u32 b.data (4 * !w) <> 0
    then hit := true;
    incr w
  done;
  let i = ref (4 * words) in
  while (not !hit) && !i < n do
    if Char.code (Idx.bget a.data !i) land Char.code (Idx.bget b.data !i) <> 0 then
      hit := true;
    incr i
  done;
  !hit

let equal a b = a.bits = b.bits && Bytes.equal a.data b.data

let compare a b =
  let c = Int.compare a.bits b.bits in
  if c <> 0 then c else Bytes.compare a.data b.data

let[@lipsin.inbounds] iter_set t f =
  for i = 0 to t.bits - 1 do
    if Char.code (Idx.bget t.data (i lsr 3)) land (1 lsl (i land 7)) <> 0 then f i
  done

let set_positions t =
  let acc = ref [] in
  iter_set t (fun i -> acc := i :: !acc);
  List.rev !acc

let of_positions n ps =
  let t = create n in
  List.iter (fun p -> set t p) ps;
  t

let to_hex t =
  let n = Bytes.length t.data in
  let buf = Buffer.create (2 * n) in
  for i = n - 1 downto 0 do
    Buffer.add_string buf (Printf.sprintf "%02x" (Char.code (Bytes.get t.data i)))
  done;
  Buffer.contents buf

let of_hex n s =
  let bytes = bytes_for n in
  if String.length s <> 2 * bytes then invalid_arg "Bitvec.of_hex: length mismatch";
  let t = create n in
  let hex_val c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Bitvec.of_hex: not a hex digit"
  in
  for i = 0 to bytes - 1 do
    let hi = hex_val s.[2 * i] and lo = hex_val s.[(2 * i) + 1] in
    Bytes.set t.data (bytes - 1 - i) (Char.chr ((hi lsl 4) lor lo))
  done;
  let padded = copy t in
  mask_padding padded;
  if not (Bytes.equal padded.data t.data) then
    invalid_arg "Bitvec.of_hex: padding bits set";
  t

let to_bytes t = Bytes.copy t.data

let[@lipsin.noalloc] blit_into t dst ~pos =
  let n = Bytes.length t.data in
  if pos < 0 || pos + n > Bytes.length dst then
    invalid_arg "Bitvec.blit_into: range out of bounds";
  Bytes.blit t.data 0 dst pos n

let of_bytes n b =
  if Bytes.length b <> bytes_for n then invalid_arg "Bitvec.of_bytes: size mismatch";
  let t = { bits = n; data = Bytes.copy b } in
  let masked = copy t in
  mask_padding masked;
  if not (Bytes.equal masked.data t.data) then
    invalid_arg "Bitvec.of_bytes: padding bits set";
  t

(* FNV-1a over the backing bytes (plus the width), in native int
   arithmetic so hashing allocates nothing.  The offset basis is the
   64-bit FNV basis truncated to OCaml's 63-bit int range; wrap-around
   multiplication stands in for mod-2^64. *)
let fnv_offset = 0xcbf29ce484222
let fnv_prime = 0x100000001b3

let[@lipsin.noalloc] [@lipsin.inbounds] hash t =
  let h = ref fnv_offset in
  h := (!h lxor (t.bits land 0xff)) * fnv_prime;
  h := (!h lxor ((t.bits lsr 8) land 0xff)) * fnv_prime;
  for i = 0 to Bytes.length t.data - 1 do
    h := (!h lxor Char.code (Idx.bget t.data i)) * fnv_prime
  done;
  !h land max_int

let pp ppf t =
  Format.fprintf ppf "<%d bits, %d set: %s>" t.bits (popcount t) (to_hex t)
