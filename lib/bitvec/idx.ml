(* lint: allow domain-safety — [checking] is written once at startup
   (env) or from the single-domain differential bench before any domain
   spawns; delivery domains only ever read it, and a stale read merely
   re-enables a bounds check. *)

(* Certified index primitives.

   Every hot-path access that Boundscheck has proved in range goes
   through this module instead of the stdlib accessors.  The default
   implementation is the unchecked one — the static certificate
   (`lipsin_lint --bounds`, exit 6) is what stands between us and
   undefined behaviour.  Setting LIPSIN_SAFE_INDEX=1 in the environment
   (or calling [set_checking true]) re-enables dynamic checks on every
   access, which the differential suite in `bench --bounds` uses to
   cross-validate the certificate at runtime: both modes must agree
   bit-for-bit and the unchecked mode must not be slower.

   The flag is a runtime ref rather than a compile-time constant so a
   single process can compare both modes (bench needs that); the branch
   on an immutable-in-practice ref predicts perfectly and costs far
   less than the two-sided compare of a real bounds check. *)

let checking = ref (Sys.getenv_opt "LIPSIN_SAFE_INDEX" = Some "1")
let set_checking b = checking := b
let is_checking () = !checking

let[@inline always][@lipsin.allow_unchecked "primitive layer: call sites carry the obligation via the accessor table; this body is the unchecked implementation itself"] get a i =
  if !checking && (i < 0 || i >= Array.length a) then
    invalid_arg "Idx.get: index out of range";
  Array.unsafe_get a i

let[@inline always][@lipsin.allow_unchecked "primitive layer: call sites carry the obligation via the accessor table; this body is the unchecked implementation itself"] set a i v =
  if !checking && (i < 0 || i >= Array.length a) then
    invalid_arg "Idx.set: index out of range";
  Array.unsafe_set a i v

let[@inline always][@lipsin.allow_unchecked "primitive layer: call sites carry the obligation via the accessor table; this body is the unchecked implementation itself"] bget b i =
  if !checking && (i < 0 || i >= Bytes.length b) then
    invalid_arg "Idx.bget: index out of range";
  Bytes.unsafe_get b i

let[@inline always][@lipsin.allow_unchecked "primitive layer: call sites carry the obligation via the accessor table; this body is the unchecked implementation itself"] bset b i c =
  if !checking && (i < 0 || i >= Bytes.length b) then
    invalid_arg "Idx.bset: index out of range";
  Bytes.unsafe_set b i c

(* 64-bit loads/stores read 8 bytes, so the last valid offset is
   [Bytes.length b - 8].  The unchecked variants go through
   Bytes.get_int64_ne/set_int64_ne on an unsafe re-dispatch: OCaml has
   no public unsafe_get_int64, so we reuse the checked primitive when
   checking and the %caml_bytes_get64u primitive otherwise. *)
external unsafe_get_int64_ne : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external unsafe_set_int64_ne : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

let[@inline always] swap64 x = if Sys.big_endian then Int64.(
    let b = logand x 0xffL in
    let x = shift_right_logical x 8 in
    let b = logor (shift_left b 8) (logand x 0xffL) in
    let x = shift_right_logical x 8 in
    let b = logor (shift_left b 8) (logand x 0xffL) in
    let x = shift_right_logical x 8 in
    let b = logor (shift_left b 8) (logand x 0xffL) in
    let x = shift_right_logical x 8 in
    let b = logor (shift_left b 8) (logand x 0xffL) in
    let x = shift_right_logical x 8 in
    let b = logor (shift_left b 8) (logand x 0xffL) in
    let x = shift_right_logical x 8 in
    let b = logor (shift_left b 8) (logand x 0xffL) in
    let x = shift_right_logical x 8 in
    logor (shift_left b 8) (logand x 0xffL))
  else x

(* 16-bit loads are compiler primitives returning a tagged native int,
   so — unlike the int64 pair below — no OCaml compiler, flambda or
   not, ever boxes their result. *)
external unsafe_get16 : Bytes.t -> int -> int = "%caml_bytes_get16u"

(* A 32-bit group assembled from two 16-bit reads into one native int.
   The group's internal byte order is platform-dependent (native-endian
   16-bit halves), which the bitwise kernels (subset / intersects /
   popcount) never observe: both operands of every kernel go through
   this same accessor, and the operations are bit-order independent.
   Do not use it where the numeric value of the word matters. *)
let[@inline always][@lipsin.allow_unchecked "primitive layer: call sites carry the obligation via the accessor table; this body is the unchecked implementation itself"] bget_u32 b i =
  if !checking && (i < 0 || i > Bytes.length b - 4) then
    invalid_arg "Idx.bget_u32: index out of range";
  unsafe_get16 b i lor (unsafe_get16 b (i + 2) lsl 16)

let[@inline always][@lipsin.allow_unchecked "primitive layer: call sites carry the obligation via the accessor table; this body is the unchecked implementation itself"] bget_i64 b i =
  if !checking && (i < 0 || i > Bytes.length b - 8) then
    invalid_arg "Idx.bget_i64: index out of range";
  swap64 (unsafe_get_int64_ne b i)

let[@inline always][@lipsin.allow_unchecked "primitive layer: call sites carry the obligation via the accessor table; this body is the unchecked implementation itself"] bset_i64 b i v =
  if !checking && (i < 0 || i > Bytes.length b - 8) then
    invalid_arg "Idx.bset_i64: index out of range";
  unsafe_set_int64_ne b i (swap64 v)
