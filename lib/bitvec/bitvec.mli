(** Fixed-width bit vectors.

    The substrate for Link IDs, LITs and zFilters: an immutable-length,
    mutable-content vector of [length] bits backed by [Bytes].  Bit 0 is
    the least-significant bit of byte 0.  All binary operations require
    operands of equal length and raise [Invalid_argument] otherwise.

    The hot operation for LIPSIN forwarding is {!subset}, the
    [zFilter AND LIT == LIT] test of Algorithm 1; it is implemented
    word-wise without allocation. *)

type t

val create : int -> t
(** [create n] is an all-zero vector of [n] bits.
    @raise Invalid_argument if [n <= 0]. *)

val length : t -> int
(** Number of bits. *)

val copy : t -> t

val get : t -> int -> bool
(** @raise Invalid_argument on out-of-range index. *)

val set : t -> int -> unit
val clear : t -> int -> unit

val set_all : t -> unit
(** Sets every bit (used by contamination-attack models). *)

val reset : t -> unit
(** Clears every bit. *)

val popcount : t -> int
(** Number of set bits. *)

val popcount56 : int -> int
(** Set bits in a native int holding at most 56 significant bits — the
    SWAR kernel under {!popcount_bytes}, exported so compiled engines
    can count a 4-byte group (e.g. one [Idx.bget_u32] read) without a
    second pass over the bytes.  Bits 56..62, if set, are counted
    incorrectly: callers must mask to 56 bits first. *)

val popcount_bytes : bytes -> pos:int -> len:int -> int
(** [popcount_bytes b ~pos ~len] counts the set bits in the byte range
    [pos .. pos+len-1] of [b] with 64-bit SWAR arithmetic (full words
    first, then one SWAR pass over the assembled tail) — the shared
    popcount primitive for the compiled engines and the blob auditor.
    @raise Invalid_argument if the range does not fit in [b]. *)

val fill_ratio : t -> float
(** [popcount / length] — the Bloom-filter fill factor ρ. *)

val logor : t -> t -> t
(** Fresh vector, bitwise OR. *)

val logand : t -> t -> t
(** Fresh vector, bitwise AND. *)

val logor_into : dst:t -> t -> unit
(** [logor_into ~dst src] ORs [src] into [dst] in place (zFilter
    construction, reverse-path collection). *)

val subset : t -> of_:t -> bool
(** [subset a ~of_:b] is [a AND b = a]: every set bit of [a] is set in
    [b].  This is the LIPSIN forwarding decision with [a] the LIT and
    [b] the in-packet zFilter. *)

val intersects : t -> t -> bool
(** At least one common set bit. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val iter_set : t -> (int -> unit) -> unit
(** Applies the function to each set bit index, ascending. *)

val set_positions : t -> int list
(** Ascending list of set bit indexes (sparse representation, Sec. 4.2). *)

val of_positions : int -> int list -> t
(** [of_positions n ps] builds an [n]-bit vector with bits [ps] set.
    @raise Invalid_argument if any position is out of range. *)

val to_hex : t -> string
(** Lowercase hex, most-significant byte first. *)

val of_hex : int -> string -> t
(** [of_hex n s] parses [to_hex] output back into an [n]-bit vector.
    @raise Invalid_argument on malformed input or length mismatch. *)

val to_bytes : t -> bytes
(** Raw little-endian copy of the backing store, ceil(n/8) bytes. *)

val blit_into : t -> bytes -> pos:int -> unit
(** [blit_into t dst ~pos] copies the ceil(n/8) backing bytes into
    [dst] starting at [pos] without allocating — the primitive the
    compiled fast path uses to widen filters into padded word arrays.
    @raise Invalid_argument if the range does not fit in [dst]. *)

val of_bytes : int -> bytes -> t
(** Inverse of {!to_bytes}.  @raise Invalid_argument on size mismatch or
    if padding bits beyond [n] are set. *)

val hash : t -> int
(** Content hash, compatible with {!equal}: FNV-1a over the backing
    bytes in native int arithmetic, no allocation. *)

val pp : Format.formatter -> t -> unit
(** Prints [<n bits, p set: hex>]. *)
