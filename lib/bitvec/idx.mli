(** Certified index primitives.

    Accessors that skip the dynamic bounds check by default; the static
    certificate produced by [lipsin_lint --bounds] (Boundscheck over the
    typed trees, exit 6 on any unproven site) is what makes that safe.
    Setting the environment variable [LIPSIN_SAFE_INDEX=1] — or calling
    {!set_checking}[ true] at runtime — restores a full check on every
    access, which the [bench --bounds] differential suite uses to
    cross-validate the certificate. *)

val set_checking : bool -> unit
(** Toggle dynamic checking at runtime (used by the differential bench
    to compare both modes in one process). *)

val is_checking : unit -> bool
(** Whether accesses are currently dynamically checked. *)

val get : 'a array -> int -> 'a
(** [get a i] is [a.(i)] without the bounds check (unless checking). *)

val set : 'a array -> int -> 'a -> unit
(** [set a i v] is [a.(i) <- v] without the bounds check. *)

val bget : Bytes.t -> int -> char
(** [bget b i] is [Bytes.get b i] without the bounds check. *)

val bset : Bytes.t -> int -> char -> unit
(** [bset b i c] is [Bytes.set b i c] without the bounds check. *)

val bget_u32 : Bytes.t -> int -> int
(** [bget_u32 b i] reads the 4 bytes at [i .. i + 3] into one native
    int (two native-endian 16-bit halves) — a tagged value no compiler
    boxes, unlike the int64 accessors.  The in-word byte order is
    platform-dependent: use it only in bitwise kernels where both
    operands come through this accessor and bit order cancels out
    (subset, intersects, popcount), never where the numeric value
    matters.  Valid offsets are [0 .. Bytes.length b - 4]. *)

val bget_i64 : Bytes.t -> int -> int64
(** [bget_i64 b i] is [Bytes.get_int64_le b i] without the bounds
    check; valid offsets are [0 .. Bytes.length b - 8]. *)

val bset_i64 : Bytes.t -> int -> int64 -> unit
(** [bset_i64 b i v] is [Bytes.set_int64_le b i v] without the bounds
    check; valid offsets are [0 .. Bytes.length b - 8]. *)
