module Rng = Lipsin_util.Rng
module Lit = Lipsin_bloom.Lit
module Zfilter = Lipsin_bloom.Zfilter
module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module Assignment = Lipsin_core.Assignment
module Candidate = Lipsin_core.Candidate
module Select = Lipsin_core.Select
module Net = Lipsin_sim.Net
module Run = Lipsin_sim.Run

type address = { domain : int; node : Graph.node }

let compare_address a b =
  let c = Int.compare a.domain b.domain in
  if c <> 0 then c else Int.compare a.node b.node

type domain = {
  graph : Graph.t;
  assignment : Assignment.t;
  net : Net.t;
  (* topic -> local subscriber nodes *)
  local_subs : (int64, Graph.node list ref) Hashtbl.t;
}

type t = {
  params : Lit.params;
  domain_graph : Graph.t;
  domains : domain array;
  inter_assignment : Assignment.t;  (* IdLIds over the domain graph *)
  local_lits : Lit.t array;  (* per-domain "local receivers" IdLId *)
  borders : (int * int, Graph.node) Hashtbl.t;  (* (src,dst) domain pair *)
}

let create ?(params = Lit.default) ?(seed = 7) ~domain_graph ~intra () =
  if Graph.node_count domain_graph <> Array.length intra then
    invalid_arg "Internet.create: domain graph size <> number of intra graphs";
  let rng = Rng.of_int seed in
  let domains =
    Array.map
      (fun graph ->
        let assignment = Assignment.make params (Rng.split rng) graph in
        {
          graph;
          assignment;
          net = Net.make assignment;
          local_subs = Hashtbl.create 16;
        })
      intra
  in
  let inter_assignment = Assignment.make params (Rng.split rng) domain_graph in
  let local_lits =
    Array.init (Array.length intra) (fun _ -> Lit.fresh params (Rng.split rng))
  in
  let borders = Hashtbl.create 64 in
  Graph.iter_links domain_graph (fun l ->
      let src = l.Graph.src and dst = l.Graph.dst in
      (* Deterministic border choice inside the source domain. *)
      let n = Graph.node_count intra.(src) in
      let pick =
        Int64.to_int
          (Int64.rem
             (Int64.logand
                (Rng.mix64 (Int64.of_int ((src * 65_537) + dst + 1)))
                0x7FFFFFFFFFFFFFFFL)
             (Int64.of_int n))
      in
      Hashtbl.replace borders (src, dst) pick);
  { params; domain_graph; domains; inter_assignment; local_lits; borders }

let domain_count t = Array.length t.domains
let intra_graph t i = t.domains.(i).graph

let border t ~src_domain ~dst_domain =
  match Hashtbl.find_opt t.borders (src_domain, dst_domain) with
  | Some b -> b
  | None -> invalid_arg "Internet.border: domains do not peer"

let subs_ref t ~topic domain =
  let d = t.domains.(domain) in
  match Hashtbl.find_opt d.local_subs topic with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.replace d.local_subs topic r;
    r

let subscribe t ~topic addr =
  let r = subs_ref t ~topic addr.domain in
  if not (List.mem addr.node !r) then r := addr.node :: !r

let unsubscribe t ~topic addr =
  let r = subs_ref t ~topic addr.domain in
  r := List.filter (fun n -> n <> addr.node) !r

let subscribers t ~topic =
  let acc = ref [] in
  Array.iteri
    (fun domain d ->
      match Hashtbl.find_opt d.local_subs topic with
      | Some r -> List.iter (fun node -> acc := { domain; node } :: !acc) !r
      | None -> ())
    t.domains;
  List.rev !acc

type delivery = {
  delivered : address list;
  missed : address list;
  domains_visited : int list;
  intra_traversals : int;
  inter_traversals : int;
  false_domain_entries : int;
  intra_false_positives : int;
}

(* Intra-domain leg: deliver from [entry] to [targets] inside domain
   [d]; returns (traversals, false positives, reached targets). *)
let intra_leg t domain_index ~entry ~targets =
  let d = t.domains.(domain_index) in
  let targets =
    List.sort_uniq Int.compare (List.filter (fun v -> v <> entry) targets)
  in
  if targets = [] then (0, 0, [ entry ])
  else begin
    let tree = Spt.delivery_tree d.graph ~root:entry ~subscribers:targets in
    let candidates = Candidate.build d.assignment ~tree in
    match Select.select_fpa candidates with
    | None ->
      (* Tree too large for a single intra zFilter: fall back to
         per-target unicast legs (the paper's multiple-sending
         escape hatch). *)
      let total = ref 0 and fps = ref 0 and reached = ref [ entry ] in
      List.iter
        (fun target ->
          let path = Spt.delivery_tree d.graph ~root:entry ~subscribers:[ target ] in
          let candidates = Candidate.build d.assignment ~tree:path in
          match Select.select_fpa candidates with
          | None -> ()
          | Some c ->
            let o =
              Run.deliver d.net ~src:entry ~table:c.Candidate.table
                ~zfilter:c.Candidate.zfilter ~tree:path
            in
            total := !total + o.Run.link_traversals;
            fps := !fps + o.Run.false_positives;
            if o.Run.reached.(target) then reached := target :: !reached)
        targets;
      (!total, !fps, !reached)
    | Some c ->
      let o =
        Run.deliver d.net ~src:entry ~table:c.Candidate.table
          ~zfilter:c.Candidate.zfilter ~tree
      in
      let reached = List.filter (fun v -> o.Run.reached.(v)) targets in
      (o.Run.link_traversals, o.Run.false_positives, entry :: reached)
  end

let interdomain_tree t ~publisher_domain ~sub_domains =
  let others = List.filter (fun d -> d <> publisher_domain) sub_domains in
  if others = [] then []
  else Spt.delivery_tree t.domain_graph ~root:publisher_domain ~subscribers:others

let build_inter_zfilter t ~tree ~sub_domains ~table =
  let z = Zfilter.create ~m:t.params.Lit.m in
  List.iter
    (fun l -> Zfilter.add z (Assignment.tag t.inter_assignment l ~table))
    tree;
  List.iter
    (fun d -> Zfilter.add z (Lit.tag t.local_lits.(d) table))
    sub_domains;
  z

let publish t ~topic ~publisher =
  let subs = subscribers t ~topic in
  let subs = List.filter (fun a -> a <> publisher) subs in
  if subs = [] then Error "topic has no remote subscribers"
  else begin
    let sub_domains =
      List.sort_uniq Int.compare (List.map (fun a -> a.domain) subs)
    in
    let table = 0 in
    let tree = interdomain_tree t ~publisher_domain:publisher.domain ~sub_domains in
    let inter_z = build_inter_zfilter t ~tree ~sub_domains ~table in
    let on_tree = Hashtbl.create 16 in
    List.iter (fun l -> Hashtbl.replace on_tree l.Graph.index ()) tree;
    let visited = Array.make (domain_count t) false in
    let order = ref [] in
    let intra_traversals = ref 0 in
    let inter_traversals = ref 0 in
    let false_entries = ref 0 in
    let intra_fps = ref 0 in
    let delivered = ref [] in
    let queue = Queue.create () in
    Queue.add (publisher.domain, publisher.node, true) queue;
    visited.(publisher.domain) <- true;
    while not (Queue.is_empty queue) do
      let domain_index, entry, genuine = Queue.take queue in
      order := domain_index :: !order;
      if not genuine then incr false_entries;
      (* Local delivery when the domain's local-receivers IdLId is in
         the inter zFilter. *)
      let local_lit = Lit.tag t.local_lits.(domain_index) table in
      let local_targets =
        if Zfilter.matches inter_z ~lit:local_lit then
          match Hashtbl.find_opt t.domains.(domain_index).local_subs topic with
          | Some r -> !r
          | None -> []
        else []
      in
      let next_hops = ref [] in
      (* Outgoing IdLIds: where must the packet go next? *)
      List.iter
        (fun l ->
          let lit = Assignment.tag t.inter_assignment l ~table in
          if Zfilter.matches inter_z ~lit then begin
            let next = l.Graph.dst in
            if not visited.(next) then begin
              visited.(next) <- true;
              incr inter_traversals;
              let exit_border = border t ~src_domain:domain_index ~dst_domain:next in
              let entry_border = border t ~src_domain:next ~dst_domain:domain_index in
              next_hops := (exit_border, next, entry_border, Hashtbl.mem on_tree l.Graph.index) :: !next_hops
            end
          end)
        (Graph.out_links t.domain_graph domain_index);
      (* One intra leg covers local subscribers and all exit borders. *)
      let targets =
        local_targets @ List.map (fun (exit_border, _, _, _) -> exit_border) !next_hops
      in
      let traversals, fps, reached = intra_leg t domain_index ~entry ~targets in
      intra_traversals := !intra_traversals + traversals;
      intra_fps := !intra_fps + fps;
      List.iter
        (fun node ->
          if List.mem node local_targets then
            delivered := { domain = domain_index; node } :: !delivered)
        reached;
      List.iter
        (fun (exit_border, next, entry_border, genuine) ->
          if List.mem exit_border reached then
            Queue.add (next, entry_border, genuine) queue)
        !next_hops
    done;
    let delivered = List.sort_uniq compare_address !delivered in
    let missed = List.filter (fun a -> not (List.mem a delivered)) subs in
    Ok
      {
        delivered;
        missed;
        domains_visited = List.rev !order;
        intra_traversals = !intra_traversals;
        inter_traversals = !inter_traversals;
        false_domain_entries = !false_entries;
        intra_false_positives = !intra_fps;
      }
  end

let interdomain_fill t ~topic ~publisher =
  let subs = List.filter (fun a -> a <> publisher) (subscribers t ~topic) in
  if subs = [] then None
  else begin
    let sub_domains = List.sort_uniq Int.compare (List.map (fun a -> a.domain) subs) in
    let tree = interdomain_tree t ~publisher_domain:publisher.domain ~sub_domains in
    let z = build_inter_zfilter t ~tree ~sub_domains ~table:0 in
    Some (Zfilter.fill_factor z)
  end
