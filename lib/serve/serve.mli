(** Live metrics serving over a minimal HTTP/1.1 TCP responder — no
    dependencies beyond [unix] and [threads].

    Endpoints:
    - [/metrics] — the Obs registry in Prometheus text exposition
      format;
    - [/healthz] — liveness, flagging a frozen flight recorder;
    - [/snapshot] — JSON diff of what moved since the previous
      [/snapshot] scrape (counter deltas, gauge transitions, histogram
      count deltas with fresh quantiles).

    The accept loop runs on one posix thread and only ever {e reads}
    the registry; every response closes the connection. *)

type t
(** Snapshot-diff state: remembers the previous scrape. *)

val make : unit -> t

type response = { status : int; content_type : string; body : string }

val route : t -> string -> response
(** Pure request dispatch ([path] → response), exposed for tests. *)

val snapshot : t -> string
(** The [/snapshot] JSON body (advances the diff state). *)

(** {2 Server} *)

type server

val start : ?host:string -> ?port:int -> t -> server
(** Binds [host:port] (defaults [127.0.0.1:0] — an ephemeral port) and
    serves on a background thread.
    @raise Unix.Unix_error when the bind fails. *)

val port : server -> int
(** The actually-bound port (useful with [port:0]). *)

val stop : server -> unit
(** Stops the accept loop and joins the serving thread. *)

(** {2 Client} *)

val get : ?host:string -> port:int -> string -> int * string
(** One-shot [GET path] returning (status, body); enough for the self
    check and the CI smoke step. *)

val self_check : server -> (string * int * string) list
(** Scrapes [/healthz], [/metrics] and [/snapshot] through a real
    client connection; returns [(path, status, body)] per endpoint. *)

(** {2 Exposition lint} *)

val lint_exposition : string -> string list
(** Prometheus text-format conformance findings over a payload: HELP /
    TYPE placement and uniqueness, metric-name and label syntax,
    parseable sample values, histogram [_bucket]/[_sum]/[_count]
    suffix discipline ([le] label present), duplicate series.  [[]] is
    a clean payload. *)
