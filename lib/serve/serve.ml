(* Live metrics serving: a minimal HTTP/1.1 responder over a TCP
   socket, exposing the Obs registry on /metrics (Prometheus text
   exposition), /healthz and /snapshot (JSON diff since the previous
   scrape).  No dependencies beyond unix and threads: the request
   parser only needs the request line, and every response closes the
   connection.  The accept loop runs on one posix thread; handlers
   read the registry, they never write it, so no coordination with the
   forwarding domains is required beyond what Obs already does. *)

module Obs = Lipsin_obs.Obs

(* ---- responses ------------------------------------------------------- *)

type response = { status : int; content_type : string; body : string }

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | _ -> "Internal Server Error"

let text_response ?(status = 200) body =
  { status; content_type = "text/plain; version=0.0.4; charset=utf-8"; body }

let json_response ?(status = 200) body =
  { status; content_type = "application/json"; body }

(* ---- snapshot diffs -------------------------------------------------- *)

(* The /snapshot endpoint reports what moved since the caller's last
   scrape: counter deltas, gauge transitions, histogram count deltas
   with fresh quantiles.  State is one previous-sample map guarded by a
   mutex (scrapes are rare; contention is irrelevant). *)

type t = {
  mu : Mutex.t;
  mutable scrapes : int;
  mutable last : (string * Obs.Export.value) list;  (* keyed rendered id *)
}

let make () = { mu = Mutex.create (); scrapes = 0; last = [] }

let key name labels =
  name ^ "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> k ^ "=" ^ String.escaped v) labels)
  ^ "}"

let json_str s = "\"" ^ Obs.Export.escape_label s ^ "\""

let labels_json labels =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> json_str k ^ ":" ^ json_str v) labels)
  ^ "}"

let sample_json name labels ~delta value =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "{\"name\":%s,\"labels\":%s," (json_str name)
       (labels_json labels));
  (match value with
  | Obs.Export.Vcounter v ->
    Buffer.add_string b
      (Printf.sprintf "\"type\":\"counter\",\"value\":%d,\"delta\":%d" v
         (match delta with Some d -> d | None -> v))
  | Obs.Export.Vgauge v ->
    Buffer.add_string b (Printf.sprintf "\"type\":\"gauge\",\"value\":%d" v)
  | Obs.Export.Vhistogram s ->
    Buffer.add_string b
      (Printf.sprintf
         "\"type\":\"histogram\",\"count\":%d,\"delta\":%d,\"mean\":%g,\"p50\":%g,\"p95\":%g,\"p99\":%g,\"p999\":%g,\"max\":%g"
         s.Obs.Histogram.count
         (match delta with Some d -> d | None -> s.Obs.Histogram.count)
         s.Obs.Histogram.mean s.Obs.Histogram.p50 s.Obs.Histogram.p95
         s.Obs.Histogram.p99 s.Obs.Histogram.p999 s.Obs.Histogram.max));
  Buffer.add_string b "}";
  Buffer.contents b

let value_count = function
  | Obs.Export.Vcounter v | Obs.Export.Vgauge v -> v
  | Obs.Export.Vhistogram s -> s.Obs.Histogram.count

let snapshot t =
  let samples = Obs.Export.samples () in
  Mutex.protect t.mu (fun () ->
      let prev = t.last in
      let changed = ref [] in
      List.iter
        (fun (name, labels, value) ->
          let k = key name labels in
          let before =
            match List.assoc_opt k prev with
            | Some old -> Some (value_count old)
            | None -> None
          in
          let cur = value_count value in
          let delta = cur - (match before with Some v -> v | None -> 0) in
          let moved =
            match before with None -> cur <> 0 | Some v -> v <> cur
          in
          if moved then
            changed := sample_json name labels ~delta:(Some delta) value
                       :: !changed)
        samples;
      t.scrapes <- t.scrapes + 1;
      t.last <- List.map (fun (n, l, v) -> (key n l, v)) samples;
      Printf.sprintf
        "{\"scrape\":%d,\"trace_dropped\":%d,\"flight_dumps\":%d,\"flight_frozen\":%b,\"changed\":[%s]}"
        t.scrapes (Obs.Trace.dropped ()) (Obs.Flight.dump_count ())
        (Obs.Flight.frozen ())
        (String.concat "," (List.rev !changed)))

(* ---- routing --------------------------------------------------------- *)

let route t path =
  match path with
  | "/metrics" -> text_response (Obs.Export.prometheus ())
  | "/healthz" ->
    (* Liveness plus the one degraded state worth flagging: a frozen
       flight recorder means an anomaly dump is waiting for a human. *)
    if Obs.Flight.frozen () then
      text_response "ok (flight recorder frozen: anomaly dump pending)\n"
    else text_response "ok\n"
  | "/snapshot" -> json_response (snapshot t)
  | "/" ->
    text_response "lipsin: /metrics /healthz /snapshot\n"
  | _ -> text_response ~status:404 "not found\n"

(* ---- exposition lint ------------------------------------------------- *)

(* Prometheus text-format conformance checks, used by the test suite
   and the CI serve-smoke step.  Returns human-readable findings; [] is
   a clean payload. *)

let is_metric_name s =
  String.length s > 0
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       s

let base_family name =
  let strip suffix =
    let n = String.length name and sn = String.length suffix in
    if n > sn && String.equal (String.sub name (n - sn) sn) suffix then
      Some (String.sub name 0 (n - sn))
    else None
  in
  match strip "_bucket" with
  | Some f -> Some (f, `Bucket)
  | None ->
    (match strip "_sum" with
    | Some f -> Some (f, `Sum)
    | None ->
      (match strip "_count" with
      | Some f -> Some (f, `Count)
      | None -> None))

(* Splits a sample line into (name, label-block option, value string);
   validates label syntax as it goes. *)
let parse_sample line =
  let err msg = Error msg in
  match String.index_opt line '{' with
  | Some i ->
    let name = String.sub line 0 i in
    (match String.index_opt line '}' with
    | None -> err "unterminated label block"
    | Some j when j < i -> err "malformed label block"
    | Some j ->
      let labels = String.sub line (i + 1) (j - i - 1) in
      let rest = String.sub line (j + 1) (String.length line - j - 1) in
      let value = String.trim rest in
      if String.equal value "" then err "missing sample value"
      else Ok (name, Some labels, value))
  | None ->
    (match String.index_opt line ' ' with
    | None -> err "sample line without a value"
    | Some i ->
      let name = String.sub line 0 i in
      let value = String.trim (String.sub line i (String.length line - i)) in
      if String.equal value "" then err "missing sample value"
      else Ok (name, None, value))

let valid_labels s =
  (* k="v" pairs separated by commas; values may contain escaped
     quotes.  A tiny state machine rather than a regex. *)
  let n = String.length s in
  let ok = ref true and i = ref 0 in
  if n = 0 then true
  else begin
    while !ok && !i < n do
      (* key *)
      let start = !i in
      while !i < n && (match s.[!i] with
                       | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
                       | _ -> false) do incr i done;
      if !i = start || !i >= n || s.[!i] <> '=' then ok := false
      else begin
        incr i;
        if !i >= n || s.[!i] <> '"' then ok := false
        else begin
          incr i;
          let closed = ref false in
          while (not !closed) && !i < n do
            if s.[!i] = '\\' then i := !i + 2
            else if s.[!i] = '"' then closed := true
            else incr i
          done;
          if not !closed then ok := false
          else begin
            incr i;
            if !i < n then
              if s.[!i] = ',' then incr i else ok := false
          end
        end
      end
    done;
    !ok
  end

let valid_value v =
  match v with
  | "+Inf" | "-Inf" | "NaN" -> true
  | _ -> (match float_of_string_opt v with Some _ -> true | None -> false)

let lint_exposition payload =
  let findings = ref [] in
  let note fmt = Printf.ksprintf (fun s -> findings := s :: !findings) fmt in
  let types : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let helped : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let sampled : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let family_started : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let lines = String.split_on_char '\n' payload in
  List.iteri
    (fun ln line ->
      let ln = ln + 1 in
      if String.equal line "" then ()
      else if String.length line >= 7 && String.equal (String.sub line 0 7) "# HELP "
      then begin
        let rest = String.sub line 7 (String.length line - 7) in
        match String.index_opt rest ' ' with
        | None -> note "line %d: HELP without text" ln
        | Some i ->
          let name = String.sub rest 0 i in
          if not (is_metric_name name) then
            note "line %d: HELP for invalid metric name %S" ln name;
          if Hashtbl.mem helped name then
            note "line %d: duplicate HELP for %s" ln name;
          Hashtbl.replace helped name ()
      end
      else if String.length line >= 7 && String.equal (String.sub line 0 7) "# TYPE "
      then begin
        let rest = String.sub line 7 (String.length line - 7) in
        match String.split_on_char ' ' rest with
        | [ name; ty ] ->
          if not (is_metric_name name) then
            note "line %d: TYPE for invalid metric name %S" ln name;
          (match ty with
          | "counter" | "gauge" | "histogram" | "summary" | "untyped" -> ()
          | _ -> note "line %d: unknown TYPE %S for %s" ln ty name);
          if Hashtbl.mem types name then
            note "line %d: duplicate TYPE for %s" ln name;
          if Hashtbl.mem family_started name then
            note "line %d: TYPE for %s after its samples" ln name;
          Hashtbl.replace types name ty
        | _ -> note "line %d: malformed TYPE line" ln
      end
      else if String.length line >= 1 && line.[0] = '#' then ()
      else
        match parse_sample line with
        | Error msg -> note "line %d: %s" ln msg
        | Ok (name, labels, value) ->
          if not (is_metric_name name) then
            note "line %d: invalid metric name %S" ln name;
          (match labels with
          | Some l when not (valid_labels l) ->
            note "line %d: malformed labels {%s}" ln l
          | _ -> ());
          if not (valid_value value) then
            note "line %d: unparseable sample value %S" ln value;
          let family, role =
            match base_family name with
            | Some (f, role) when Hashtbl.mem types f -> (f, Some role)
            | _ -> (name, None)
          in
          Hashtbl.replace family_started family ();
          (match Hashtbl.find_opt types family with
          | None -> note "line %d: sample %s without a TYPE" ln name
          | Some ty ->
            (match role with
            | Some _ when not (String.equal ty "histogram") ->
              note "line %d: %s suffix on non-histogram family %s" ln name
                family
            | Some `Bucket ->
              let has_le =
                match labels with
                | Some l ->
                  (* crude but sufficient: an le label key present *)
                  let rec find i =
                    match String.index_from_opt l i 'l' with
                    | Some j when j + 2 < String.length l
                                  && l.[j + 1] = 'e' && l.[j + 2] = '=' ->
                      j = 0 || l.[j - 1] = ',' || find (j + 1)
                    | Some j -> find (j + 1)
                    | None -> false
                  in
                  find 0
                | None -> false
              in
              if not has_le then
                note "line %d: histogram bucket without an le label" ln
            | _ -> ()));
          let series = name ^ (match labels with Some l -> "{" ^ l ^ "}" | None -> "") in
          if Hashtbl.mem sampled series then
            note "line %d: duplicate series %s" ln series;
          Hashtbl.replace sampled series ())
    lines;
  List.rev !findings

(* ---- http ------------------------------------------------------------ *)

let respond oc r =
  output_string oc
    (Printf.sprintf
       "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n"
       r.status (status_text r.status) r.content_type (String.length r.body));
  output_string oc r.body;
  flush oc

let handle_connection t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match input_line ic with
      | exception End_of_file -> ()
      | request_line ->
        let r =
          match String.split_on_char ' ' (String.trim request_line) with
          | [ "GET"; path; _version ] -> route t path
          | [ meth; _; _ ] ->
            text_response ~status:405
              (Printf.sprintf "method %s not allowed\n" meth)
          | _ -> text_response ~status:400 "bad request\n"
        in
        (* Drain remaining headers so the client's write isn't reset
           before it finishes sending. *)
        (try
           let rec drain () =
             let l = input_line ic in
             if not (String.equal (String.trim l) "") then drain ()
           in
           drain ()
         with End_of_file | Sys_error _ -> ());
        (try respond oc r with Sys_error _ -> ()))

type server = {
  sv_fd : Unix.file_descr;
  sv_port : int;
  sv_stop : bool Atomic.t;
  sv_thread : Thread.t;
}

let start ?(host = "127.0.0.1") ?(port = 0) state =
  let addr = Unix.inet_addr_of_string host in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (addr, port));
  Unix.listen fd 16;
  let actual_port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let stop_flag = Atomic.make false in
  let thread =
    Thread.create
      (fun () ->
        let continue = ref true in
        while !continue do
          match Unix.accept fd with
          | client, _ ->
            if Atomic.get stop_flag then begin
              (try Unix.close client with Unix.Unix_error _ -> ());
              continue := false
            end
            else handle_connection state client
          | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
            continue := false
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        done)
      ()
  in
  { sv_fd = fd; sv_port = actual_port; sv_stop = stop_flag; sv_thread = thread }

let port s = s.sv_port

let stop s =
  Atomic.set s.sv_stop true;
  (* Unblock the accept: connect to ourselves, then close the listener. *)
  (try
     let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
     Fun.protect
       ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
       (fun () ->
         Unix.connect fd
           (Unix.ADDR_INET (Unix.inet_addr_loopback, s.sv_port)))
   with Unix.Unix_error _ -> ());
  (try Unix.close s.sv_fd with Unix.Unix_error _ -> ());
  Thread.join s.sv_thread

(* ---- client ---------------------------------------------------------- *)

(* A one-shot GET, enough for the self check and the CI smoke step. *)
let get ?(host = "127.0.0.1") ~port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      let oc = Unix.out_channel_of_descr fd in
      output_string oc
        (Printf.sprintf "GET %s HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n"
           path host);
      flush oc;
      let ic = Unix.in_channel_of_descr fd in
      let status =
        match String.split_on_char ' ' (input_line ic) with
        | _ :: code :: _ ->
          (match int_of_string_opt code with Some c -> c | None -> 0)
        | _ -> 0
      in
      (* headers until the blank line, then the body to EOF *)
      let rec headers () =
        let l = input_line ic in
        if not (String.equal (String.trim l) "") then headers ()
      in
      (try headers () with End_of_file -> ());
      let body = Buffer.create 4096 in
      (try
         while true do
           Buffer.add_channel body ic 1
         done
       with End_of_file -> ());
      (status, Buffer.contents body))

let self_check server =
  List.map
    (fun path ->
      let status, body = get ~port:server.sv_port path in
      (path, status, body))
    [ "/healthz"; "/metrics"; "/snapshot" ]
