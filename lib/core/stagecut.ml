module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module Bitvec = Lipsin_bitvec.Bitvec
module Zfilter = Lipsin_bloom.Zfilter
module Lit = Lipsin_bloom.Lit
module Partition = Lipsin_bloom.Partition
module Rng = Lipsin_util.Rng

type diag = {
  stages : int;
  redraws : int;
  widths_used : (int * int) list;
}

(* One (width, table) cell of a stage's viability matrix.  [vec] is the
   working filter; a cell dies when admitting the stage's content would
   push it over its capacity. *)
type cell = {
  c_m : int;
  c_table : int;
  c_k : int;  (* bits per tag in this cell's table *)
  c_thr : int;  (* popcount ceiling from the fill limit *)
  c_vec : Bitvec.t;
  mutable c_pop : int;
  mutable c_alive : bool;
}

type build_stage = {
  bs_index : int;
  bs_root : int;
  mutable bs_nonce : int64;
  mutable bs_links : Graph.link list;  (* reversed *)
  mutable bs_subs : int list;  (* reversed *)
  mutable bs_handoffs : (int * int) list;  (* (at node, child index), reversed *)
  mutable bs_has_egress : bool;
  bs_cells : cell array;
  (* Filled at close: *)
  mutable bs_m : int;
  mutable bs_table : int;
  mutable bs_vec : Bitvec.t;
}

let stage_link = Graph.link

(* Capacity of a cell right now: while the stage has not yet ORed its
   egress tag in, egress_k bits stay reserved so spawning a child later
   cannot overfill. *)
let cap cell ~has_egress =
  if has_egress then cell.c_thr
  else cell.c_thr - Partition.egress_k ~m:cell.c_m cell.c_k

(* Popcount the cell would have after ORing [tag] in. *)
let pop_after cell tag =
  cell.c_pop + Bitvec.popcount tag - Bitvec.popcount (Bitvec.logand tag cell.c_vec)

let plan ?(fill_limit = 0.7) ?(id = 0) adaptive ~rng ~root ~subscribers =
  if subscribers = [] then Error "no subscribers to partition over"
  else begin
    let widths = Adaptive.widths adaptive in
    let assign_of_m =
      List.map (fun m -> (m, Adaptive.assignment adaptive ~m)) widths
    in
    let graph = Assignment.graph (List.assoc (List.hd widths) assign_of_m) in
    let tree = Spt.delivery_tree graph ~root ~subscribers in
    (* BFS order: parents' links strictly before their children's. *)
    let dist = Spt.distances graph ~root in
    let tree =
      List.stable_sort
        (fun (a : Graph.link) (b : Graph.link) ->
          Int.compare dist.(a.src) dist.(b.src))
        tree
    in
    let fresh_cells () =
      Array.of_list
        (List.concat_map
           (fun (m, asg) ->
             let p = Assignment.params asg in
             List.init p.Lit.d (fun t ->
                 {
                   c_m = m;
                   c_table = t;
                   c_k = p.Lit.k_for_table.(t);
                   c_thr = Zfilter.fill_threshold ~m ~limit:fill_limit;
                   c_vec = Bitvec.create m;
                   c_pop = 0;
                   c_alive = true;
                 }))
           assign_of_m)
    in
    let stages = ref [] (* reversed *) and n_stages = ref 0 in
    let new_stage ~root:r =
      let s =
        {
          bs_index = !n_stages;
          bs_root = r;
          bs_nonce = Rng.int64 rng;
          bs_links = [];
          bs_subs = [];
          bs_handoffs = [];
          bs_has_egress = false;
          bs_cells = fresh_cells ();
          bs_m = 0;
          bs_table = 0;
          bs_vec = Bitvec.create 1;
        }
      in
      incr n_stages;
      stages := s :: !stages;
      s
    in
    let root_stage = new_stage ~root in
    (* (parent index, handoff node) -> child stage, for chain reuse. *)
    let children : (int * int, build_stage) Hashtbl.t = Hashtbl.create 64 in
    (* Tag of [link] at a cell's width and table. *)
    let tag_at cell (link : Graph.link) =
      Assignment.tag (List.assoc cell.c_m assign_of_m) link ~table:cell.c_table
    in
    let egress_tag_at ~m ~table nonce =
      let p = Assignment.params (List.assoc m assign_of_m) in
      Lit.tag (Partition.egress_lit p ~nonce) table
    in
    (* All-or-nothing admission: commit only if >= 1 cell survives the
       insert; surviving cells absorb the tag, the rest die. *)
    let admit s (link : Graph.link) =
      let fits =
        Array.exists
          (fun c ->
            c.c_alive && pop_after c (tag_at c link) <= cap c ~has_egress:s.bs_has_egress)
          s.bs_cells
      in
      if fits then begin
        Array.iter
          (fun c ->
            if c.c_alive then begin
              let tag = tag_at c link in
              let pop = pop_after c tag in
              if pop <= cap c ~has_egress:s.bs_has_egress then begin
                Bitvec.logor_into ~dst:c.c_vec tag;
                c.c_pop <- pop
              end
              else c.c_alive <- false
            end)
          s.bs_cells;
        s.bs_links <- link :: s.bs_links
      end;
      fits
    in
    (* Spawning the first child ORs the parent's egress tag into every
       live cell; the reserve guarantees no cell dies here. *)
    let mark_egress s =
      if not s.bs_has_egress then begin
        Array.iter
          (fun c ->
            if c.c_alive then begin
              let tag = egress_tag_at ~m:c.c_m ~table:c.c_table s.bs_nonce in
              c.c_pop <- pop_after c tag;
              Bitvec.logor_into ~dst:c.c_vec tag
            end)
          s.bs_cells;
        s.bs_has_egress <- true
      end
    in
    let stage_of = Array.make (Graph.node_count graph) (-1) in
    stage_of.(root) <- root_stage.bs_index;
    let by_index = Hashtbl.create 64 in
    Hashtbl.add by_index root_stage.bs_index root_stage;
    (* Place link u->v into the stage chain at u, descending through
       same-root children until one admits it. *)
    let exception Single_link_overflow in
    let rec place s (link : Graph.link) =
      if admit s link then stage_of.(link.Graph.dst) <- s.bs_index
      else
        match Hashtbl.find_opt children (s.bs_index, link.Graph.src) with
        | Some child -> place child link
        | None ->
          mark_egress s;
          let child = new_stage ~root:link.Graph.src in
          Hashtbl.add by_index child.bs_index child;
          Hashtbl.add children (s.bs_index, link.Graph.src) child;
          s.bs_handoffs <- (link.Graph.src, child.bs_index) :: s.bs_handoffs;
          if not (admit child link) then raise Single_link_overflow
          else stage_of.(link.Graph.dst) <- child.bs_index
    in
    match
      List.iter
        (fun (link : Graph.link) ->
          let s = Hashtbl.find by_index stage_of.(link.Graph.src) in
          place s link)
        tree
    with
    | exception Single_link_overflow ->
      Error "a single link tag exceeds every stage budget"
    | () ->
      (* Assign every subscriber to the stage that reaches it. *)
      List.iter
        (fun w ->
          if w <> root then begin
            let s = Hashtbl.find by_index stage_of.(w) in
            if not (List.mem w s.bs_subs) then s.bs_subs <- w :: s.bs_subs
          end
          else if not (List.mem w root_stage.bs_subs) then
            root_stage.bs_subs <- w :: root_stage.bs_subs)
        subscribers;
      let all = Array.of_list (List.rev !stages) in
      (* Close: narrowest surviving width, then emptiest filter, then
         lowest table. *)
      Array.iter
        (fun s ->
          let best = ref None in
          Array.iter
            (fun c ->
              if c.c_alive then
                match !best with
                | None -> best := Some c
                | Some b ->
                  if
                    c.c_m < b.c_m
                    || (c.c_m = b.c_m
                        && (c.c_pop < b.c_pop
                            || (c.c_pop = b.c_pop && c.c_table < b.c_table)))
                  then best := Some c)
            s.bs_cells;
          match !best with
          | None -> assert false (* admission keeps >= 1 cell alive *)
          | Some c ->
            s.bs_m <- c.c_m;
            s.bs_table <- c.c_table;
            s.bs_vec <- Bitvec.copy c.c_vec)
        all;
      (* Node -> stages whose tree touches it, for conflict scanning. *)
      let touching = Hashtbl.create 256 in
      let touch node idx =
        let cur = Option.value ~default:[] (Hashtbl.find_opt touching node) in
        if not (List.mem idx cur) then Hashtbl.replace touching node (idx :: cur)
      in
      Array.iter
        (fun s ->
          touch s.bs_root s.bs_index;
          List.iter
            (fun (l : Graph.link) ->
              touch l.Graph.src s.bs_index;
              touch l.Graph.dst s.bs_index)
            s.bs_links)
        all;
      (* Conflict: stage s traverses node u where stage p (<> s) has a
         stitch entry, the widths coincide, and s's filter falsely
         contains p's egress tag at s's table — the packet would enter
         p's child a second time.  Re-draw p's nonce until clean. *)
      let find_conflict () =
        let found = ref None in
        Array.iter
          (fun p ->
            if !found = None && p.bs_handoffs <> [] then
              List.iter
                (fun (u, _child) ->
                  if !found = None then
                    List.iter
                      (fun si ->
                        if !found = None && si <> p.bs_index then begin
                          let s = all.(si) in
                          if s.bs_m = p.bs_m then
                            let tag =
                              egress_tag_at ~m:s.bs_m ~table:s.bs_table p.bs_nonce
                            in
                            if Bitvec.subset tag ~of_:s.bs_vec then
                              found := Some p
                        end)
                      (Option.value ~default:[] (Hashtbl.find_opt touching u)))
                p.bs_handoffs)
          all;
        !found
      in
      let rebuild p =
        (* Filters are pure functions of (links, egress nonce, m, table),
           so a nonce re-draw just re-ORs from scratch. *)
        let asg = List.assoc p.bs_m assign_of_m in
        let vec = Bitvec.create p.bs_m in
        List.iter
          (fun l -> Bitvec.logor_into ~dst:vec (Assignment.tag asg l ~table:p.bs_table))
          p.bs_links;
        if p.bs_has_egress then
          Bitvec.logor_into ~dst:vec
            (egress_tag_at ~m:p.bs_m ~table:p.bs_table p.bs_nonce);
        vec
      in
      let thr_of p = Zfilter.fill_threshold ~m:p.bs_m ~limit:fill_limit in
      let redraws = ref 0 in
      let rec resolve budget =
        if budget <= 0 then Error "could not resolve stitch tag conflicts"
        else
          match find_conflict () with
          | None -> Ok ()
          | Some p ->
            let rec redraw tries =
              if tries <= 0 then false
              else begin
                p.bs_nonce <- Rng.int64 rng;
                incr redraws;
                let vec = rebuild p in
                if Bitvec.popcount vec <= thr_of p then begin
                  p.bs_vec <- vec;
                  true
                end
                else redraw (tries - 1)
              end
            in
            if redraw 64 then resolve (budget - 1)
            else Error "could not resolve stitch tag conflicts"
      in
      (match resolve (64 + (4 * Array.length all)) with
      | Error _ as e -> e
      | Ok () ->
        let stages =
          Array.map
            (fun s ->
              {
                Partition.index = s.bs_index;
                m = s.bs_m;
                table = s.bs_table;
                root = s.bs_root;
                nonce = s.bs_nonce;
                filter = Zfilter.of_bitvec s.bs_vec;
                links =
                  List.rev_map (fun (l : Graph.link) -> l.Graph.index) s.bs_links;
                subscribers = List.rev s.bs_subs;
                handoffs =
                  List.rev_map
                    (fun (at, next) -> { Partition.at; next })
                    s.bs_handoffs;
              })
            all
        in
        let part = { Partition.id; root; stages } in
        (match Partition.validate part with
        | Error e -> Error (Printf.sprintf "internal: invalid partition: %s" e)
        | Ok () ->
          let widths_used =
            List.filter_map
              (fun m ->
                let n =
                  Array.fold_left
                    (fun acc (s : Partition.stage) ->
                      if s.Partition.m = m then acc + 1 else acc)
                    0 stages
                in
                if n > 0 then Some (m, n) else None)
              widths
          in
          Ok (part, { stages = Array.length stages; redraws = !redraws; widths_used })))
  end
