(** Persistence of LIT assignments.

    A deployment's link identities must survive restarts — zFilters in
    flight and pre-computed FIB entries reference them.  The format is
    a plain-text header (version, m, d, k per table) followed by one
    hex nonce per directed link in index order; the graph itself is
    stored separately ({!Lipsin_topology.Edge_list}). *)

val to_string : Assignment.t -> string

val of_string :
  Lipsin_topology.Graph.t -> string -> (Assignment.t, string) result
(** Rebinds a stored assignment to (an identical copy of) its graph.
    Errors on version/parameter malformations or a nonce-count
    mismatch with the graph. *)

val save : Assignment.t -> string -> unit
(** Writes [to_string] to a file. *)

val load :
  Lipsin_topology.Graph.t -> string -> (Assignment.t, string) result
(** Reads and parses; I/O failures raise [Sys_error]. *)

(** {1 Partitioned deployments}

    A {!Stagecut} plan is durable state too: stage filters, egress
    nonces and stitch metadata must survive restarts or in-flight
    packets lose their handoffs.  Same style of format —
    ["lipsin-partition v1"], a header (id, root, stage count) and five
    lines per stage (geometry + nonce, filter hex, link indexes,
    subscribers, [at:next] handoffs). *)

val to_string_partition : Lipsin_bloom.Partition.t -> string

val of_string_partition :
  Lipsin_topology.Graph.t ->
  string ->
  (Lipsin_bloom.Partition.t, string) result
(** Parses and re-validates ({!Lipsin_bloom.Partition.validate}).
    Errors on version/shape malformations, a link index outside the
    graph, or a structurally invalid stage forest. *)

val save_partition : Lipsin_bloom.Partition.t -> string -> unit

val load_partition :
  Lipsin_topology.Graph.t ->
  string ->
  (Lipsin_bloom.Partition.t, string) result
(** Reads and parses; I/O failures raise [Sys_error]. *)
