module Rng = Lipsin_util.Rng
module Lit = Lipsin_bloom.Lit
module Graph = Lipsin_topology.Graph

type t = {
  widths : int list;  (* ascending *)
  views : (int * Assignment.t) list;
}

let make_with_nonces ?(widths = [ 120; 248; 504 ]) ~d ~k nonces graph =
  if widths = [] then invalid_arg "Adaptive.make: empty width list";
  if List.sort compare widths <> widths then
    invalid_arg "Adaptive.make: widths must be ascending";
  let views =
    List.map
      (fun m ->
        (m, Assignment.make_with_nonces (Lit.constant_k ~m ~d ~k) nonces graph))
      widths
  in
  { widths; views }

let make ?widths ~d ~k rng graph =
  (* One nonce per directed link, shared by every width. *)
  let nonces = Array.init (Graph.link_count graph) (fun _ -> Rng.int64 rng) in
  make_with_nonces ?widths ~d ~k nonces graph

let widths t = t.widths

let assignment t ~m =
  match List.assoc_opt m t.views with
  | Some a -> a
  | None -> invalid_arg "Adaptive.assignment: unsupported width"

type choice = { m : int; candidate : Candidate.t; header_bytes : int }

let header_bytes m = 5 + ((m + 7) / 8)

let best_at t ~m ~tree ~fill_limit =
  let asg = assignment t ~m in
  Select.select_fpa ~fill_limit (Candidate.build asg ~tree)

let choose t ~tree ~target_fpa ?(fill_limit = 0.7) () =
  let rec scan = function
    | [] -> None
    | m :: rest -> (
      match best_at t ~m ~tree ~fill_limit with
      | Some c when Candidate.fpa c <= target_fpa ->
        Some { m; candidate = c; header_bytes = header_bytes m }
      | Some c when rest = [] ->
        (* Widest width: take its best in-limit candidate even above
           the target — better a few false positives than no
           delivery. *)
        Some { m; candidate = c; header_bytes = header_bytes m }
      | Some _ | None -> scan rest)
  in
  scan t.widths
