module Lit = Lipsin_bloom.Lit
module Graph = Lipsin_topology.Graph

let to_string assignment =
  let params = Assignment.params assignment in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "lipsin-assignment v1\n";
  Buffer.add_string buf (Printf.sprintf "m %d\n" params.Lit.m);
  Buffer.add_string buf
    (Printf.sprintf "k %s\n"
       (String.concat ","
          (Array.to_list (Array.map string_of_int params.Lit.k_for_table))));
  Array.iter
    (fun nonce -> Buffer.add_string buf (Printf.sprintf "%016Lx\n" nonce))
    (Assignment.nonces assignment);
  Buffer.contents buf

let of_string graph s =
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' s)
  in
  match lines with
  | magic :: m_line :: k_line :: nonce_lines ->
    if String.trim magic <> "lipsin-assignment v1" then
      Error "bad magic line"
    else begin
      let parse_m () =
        match String.split_on_char ' ' (String.trim m_line) with
        | [ "m"; v ] -> int_of_string_opt v
        | _ -> None
      in
      let parse_k () =
        match String.split_on_char ' ' (String.trim k_line) with
        | [ "k"; ks ] -> (
          let parts = String.split_on_char ',' ks in
          let parsed = List.filter_map int_of_string_opt parts in
          if List.length parsed = List.length parts then
            Some (Array.of_list parsed)
          else None)
        | _ -> None
      in
      match (parse_m (), parse_k ()) with
      | Some m, Some k_for_table when Array.length k_for_table > 0 -> (
        let params = { Lit.m; d = Array.length k_for_table; k_for_table } in
        match Lit.validate params with
        | exception Invalid_argument msg -> Error msg
        | () ->
          if List.length nonce_lines <> Graph.link_count graph then
            Error "nonce count does not match the graph's links"
          else begin
            let parse_nonce line =
              let trimmed = String.trim line in
              if String.length trimmed = 16 then
                Int64.of_string_opt ("0x" ^ trimmed)
              else None
            in
            let nonces = List.map parse_nonce nonce_lines in
            if List.exists Option.is_none nonces then Error "malformed nonce line"
            else
              Ok
                (Assignment.make_with_nonces params
                   (Array.of_list (List.map Option.get nonces))
                   graph)
          end)
      | _ -> Error "malformed parameter lines"
    end
  | _ -> Error "truncated assignment file"

let save assignment path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string assignment))

let load graph path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string graph (In_channel.input_all ic))

(* ---- partitioned deployments -------------------------------------- *)

module Partition = Lipsin_bloom.Partition
module Zfilter = Lipsin_bloom.Zfilter

let ints_to_csv = function
  | [] -> ""
  | l -> String.concat "," (List.map string_of_int l)

let to_string_partition (part : Partition.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "lipsin-partition v1\n";
  Buffer.add_string buf (Printf.sprintf "id %d\n" part.Partition.id);
  Buffer.add_string buf (Printf.sprintf "root %d\n" part.Partition.root);
  Buffer.add_string buf
    (Printf.sprintf "stages %d\n" (Array.length part.Partition.stages));
  Array.iter
    (fun (s : Partition.stage) ->
      Buffer.add_string buf
        (Printf.sprintf "stage %d m %d table %d root %d nonce %016Lx\n"
           s.Partition.index s.Partition.m s.Partition.table s.Partition.root
           s.Partition.nonce);
      Buffer.add_string buf
        (Printf.sprintf "filter %s\n" (Zfilter.to_hex s.Partition.filter));
      Buffer.add_string buf
        (Printf.sprintf "links %s\n" (ints_to_csv s.Partition.links));
      Buffer.add_string buf
        (Printf.sprintf "subscribers %s\n" (ints_to_csv s.Partition.subscribers));
      Buffer.add_string buf
        (Printf.sprintf "handoffs %s\n"
           (String.concat ","
              (List.map
                 (fun (h : Partition.handoff) ->
                   Printf.sprintf "%d:%d" h.Partition.at h.Partition.next)
                 s.Partition.handoffs))))
    part.Partition.stages;
  Buffer.contents buf

let parse_csv_ints s =
  let s = String.trim s in
  if s = "" then Some []
  else
    let parts = String.split_on_char ',' s in
    let parsed = List.filter_map int_of_string_opt parts in
    if List.length parsed = List.length parts then Some parsed else None

(* A "key v1,v2,..." line; the list may be empty ("key" alone or with
   trailing whitespace). *)
let parse_int_list_line ~key line =
  let line = String.trim line in
  if line = key then Some []
  else
    match String.index_opt line ' ' with
    | Some i when String.sub line 0 i = key ->
      parse_csv_ints (String.sub line (i + 1) (String.length line - i - 1))
    | _ -> None

let of_string_partition graph s =
  let ( let* ) = Result.bind in
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' s)
  in
  let parse_kv key line =
    match String.split_on_char ' ' (String.trim line) with
    | [ k; v ] when k = key -> int_of_string_opt v
    | _ -> None
  in
  match lines with
  | magic :: id_line :: root_line :: count_line :: rest ->
    if String.trim magic <> "lipsin-partition v1" then Error "bad magic line"
    else begin
      match
        (parse_kv "id" id_line, parse_kv "root" root_line,
         parse_kv "stages" count_line)
      with
      | Some id, Some root, Some count when count >= 0 ->
        let parse_stage = function
          | stage_line :: filter_line :: links_line :: subs_line
            :: handoffs_line :: rest -> (
            let* index, m, table, sroot, nonce =
              match String.split_on_char ' ' (String.trim stage_line) with
              | [ "stage"; i; "m"; m; "table"; t; "root"; r; "nonce"; nx ]
                when String.length nx = 16 -> (
                match
                  ( int_of_string_opt i, int_of_string_opt m,
                    int_of_string_opt t, int_of_string_opt r,
                    Int64.of_string_opt ("0x" ^ nx) )
                with
                | Some i, Some m, Some t, Some r, Some n -> Ok (i, m, t, r, n)
                | _ -> Error "malformed stage line")
              | _ -> Error "malformed stage line"
            in
            let* filter =
              match String.split_on_char ' ' (String.trim filter_line) with
              | [ "filter"; hx ] -> (
                match Zfilter.of_hex ~m hx with
                | f -> Ok f
                | exception Invalid_argument _ -> Error "malformed filter line")
              | _ -> Error "malformed filter line"
            in
            let* links =
              match parse_int_list_line ~key:"links" links_line with
              | Some l -> Ok l
              | None -> Error "malformed links line"
            in
            let* subscribers =
              match parse_int_list_line ~key:"subscribers" subs_line with
              | Some l -> Ok l
              | None -> Error "malformed subscribers line"
            in
            let* handoffs =
              let line = String.trim handoffs_line in
              let body =
                if line = "handoffs" then Some ""
                else
                  match String.index_opt line ' ' with
                  | Some i when String.sub line 0 i = "handoffs" ->
                    Some (String.sub line (i + 1) (String.length line - i - 1))
                  | _ -> None
              in
              match body with
              | None -> Error "malformed handoffs line"
              | Some "" -> Ok []
              | Some body ->
                let parts = String.split_on_char ',' (String.trim body) in
                let parsed =
                  List.filter_map
                    (fun p ->
                      match String.split_on_char ':' p with
                      | [ a; n ] -> (
                        match (int_of_string_opt a, int_of_string_opt n) with
                        | Some at, Some next -> Some { Partition.at; next }
                        | _ -> None)
                      | _ -> None)
                    parts
                in
                if List.length parsed = List.length parts then Ok parsed
                else Error "malformed handoffs line"
            in
            if
              List.exists
                (fun li -> li < 0 || li >= Graph.link_count graph)
                links
            then Error "link index out of range"
            else
              Ok
                ( {
                    Partition.index;
                    m;
                    table;
                    root = sroot;
                    nonce;
                    filter;
                    links;
                    subscribers;
                    handoffs;
                  },
                  rest ))
          | _ -> Error "truncated partition file"
        in
        let rec parse_stages acc n rest =
          if n = 0 then
            if rest <> [] then Error "stage count mismatch"
            else Ok (List.rev acc)
          else
            let* stage, rest = parse_stage rest in
            parse_stages (stage :: acc) (n - 1) rest
        in
        let* stages = parse_stages [] count rest in
        let part = { Partition.id; root; stages = Array.of_list stages } in
        let* () = Partition.validate part in
        Ok part
      | _ -> Error "malformed header line"
    end
  | _ -> Error "truncated partition file"

let save_partition part path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string_partition part))

let load_partition graph path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string_partition graph (In_channel.input_all ic))
