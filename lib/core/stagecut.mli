(** Partitioned zFilters — cutting one delivery tree into stitched
    stages.

    {!Split} implements the paper's multiple sending (Sec. 4.3):
    several independent trees, duplicate traffic on shared links.  This
    module implements the alternative that scales to internet-size
    subscriber sets: ONE tree cut into {e stages}, each stage encoded
    in its own (variable-width) zFilter that respects the fill limit,
    with explicit {e stitch points} where a stage hands the packet off
    to the next stage's filter.  No link is traversed twice; the price
    is a stitch-table entry per handoff instead of duplicate bandwidth.

    {2 Encoding}

    Stages are grown greedily over the BFS-ordered tree links.  Each
    open stage keeps a viability matrix over (width x table) — one
    working filter per cell, fed from the same per-link nonces via
    {!Adaptive} — and a link is admitted while at least one cell stays
    under the fill threshold.  Every stage reserves headroom for ONE
    {e egress LIT}: a fresh-nonce tag, shared by all of the stage's
    children, ORed into the filter when the first child is spawned.
    Admission uses the reduced threshold until that happens, the full
    threshold afterwards, so spawning a child can never overfill a
    stage.  A rejected link u->v opens (or extends) a child stage
    rooted at u; if that child is itself full the cut recurses,
    chaining stages at the same root under distinct egress nonces.

    At close each stage picks its narrowest surviving width (ties: the
    emptiest filter, then the lowest table), and a
    conflict-resolution pass re-draws egress nonces until no stage's
    filter falsely contains another stage's egress tag at a node the
    first stage traverses — the static guarantee behind Netcheck's
    exactly-once verdict. *)

type diag = {
  stages : int;
  redraws : int;  (** Egress nonces re-drawn by conflict resolution. *)
  widths_used : (int * int) list;  (** (width, stage count), ascending. *)
}

val plan :
  ?fill_limit:float ->
  ?id:int ->
  Adaptive.t ->
  rng:Lipsin_util.Rng.t ->
  root:Lipsin_topology.Graph.node ->
  subscribers:Lipsin_topology.Graph.node list ->
  (Lipsin_bloom.Partition.t * diag, string) result
(** Cuts the shortest-path delivery tree for [subscribers] into a
    stitched stage partition.  [id] (default 0) is stamped into the
    partition for stitch-entry payloads.  Stage filters always contain
    their tree links and (when the stage has children) their egress
    tag; the result passes {!Lipsin_bloom.Partition.validate}.

    Errors: ["no subscribers to partition over"] on an empty set;
    ["a single link tag exceeds every stage budget"] when one LIT
    overfills even the widest width minus the egress reserve (only
    possible with degenerate custom widths); ["could not resolve
    stitch tag conflicts"] when nonce re-drawing fails to converge
    (astronomically unlikely).
    @raise Invalid_argument if a subscriber is unreachable from
    [root]. *)

val stage_link : Lipsin_topology.Graph.t -> int -> Lipsin_topology.Graph.link
(** Decode one stored link index back to the graph's link — stage
    [links] are kept as dense indexes so {!Lipsin_bloom.Partition}
    stays topology-free. *)
