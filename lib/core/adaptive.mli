(** Variable filter width per packet — the paper's "more flexible
    design, allowing m to vary per packet, is left for further study"
    (Sec. 4.2), implemented.

    Every link keeps ONE nonce but derives tag sets at several widths;
    the packet header already carries m (see
    {!Lipsin_packet.Header}), so a sender can pick the narrowest width
    whose best candidate still meets a false-positive target, and
    forwarding nodes select the width-matched table set.  Small trees
    ride in 120-bit headers; only large ones pay for 504 bits. *)

type t

val make :
  ?widths:int list ->
  d:int ->
  k:int ->
  Lipsin_util.Rng.t ->
  Lipsin_topology.Graph.t ->
  t
(** Default widths: 120, 248, 504 (ascending order enforced).  All
    widths share per-link nonces, so a node stores one nonce per link
    and derives any width's tags.
    @raise Invalid_argument on an empty or unsorted width list. *)

val make_with_nonces :
  ?widths:int list ->
  d:int ->
  k:int ->
  int64 array ->
  Lipsin_topology.Graph.t ->
  t
(** Rebuilds the family from explicit per-directed-link nonces (index =
    link index) — the way to recover the exact same family, all widths
    included, from a persisted {!Assignment} ({!Assignment.nonces}):
    the nonces are the whole identity of a constant-k deployment. *)

val widths : t -> int list

val assignment : t -> m:int -> Assignment.t
(** The width-m view of the shared assignment.
    @raise Invalid_argument for an unsupported width. *)

type choice = {
  m : int;
  candidate : Candidate.t;
  header_bytes : int;  (** Wire cost of this width. *)
}

val choose :
  t ->
  tree:Lipsin_topology.Graph.link list ->
  target_fpa:float ->
  ?fill_limit:float ->
  unit ->
  choice option
(** The narrowest width whose fpa-best candidate has
    [fpa <= target_fpa] and respects the fill limit; falls back to the
    widest width's best in-limit candidate if none meets the target.
    [None] if even the widest width overfills. *)
