(** Runtime telemetry for the live forwarding plane.

    Every Algorithm-1 decision, delivery and recovery activation can be
    turned into measurable events: monotonic counters, gauges,
    log-scale histograms with quantile summaries, and a bounded
    per-domain trace ring from which per-packet delivery traces are
    reconstructable.  The module has zero dependencies so every layer —
    {!Lipsin_forwarding.Fastpath}'s hot loop included — can instrument
    itself.

    {b Concurrency.}  A metric owns one {e cell} per domain, created
    lazily through domain-local storage and padded to a cache line, so
    the hot path is an atomic-free plain-int increment into the calling
    domain's private cell.  Aggregation happens on read by summing the
    cells.  Values read while other domains are actively writing are a
    consistent-enough snapshot for monitoring; exact readings (as the
    test suite takes) require quiescence.

    {b Cost.}  The global sink switch is one [Atomic.t bool]: with the
    default {!Sink.Noop} sink every instrument site is a single atomic
    load and an untaken branch, a budget the bench suite's [--obs] mode
    verifies stays under 3% of fast-path throughput. *)

val enabled : unit -> bool
(** [true] iff the memory sink is installed. *)

module Sink : sig
  type t =
    | Noop  (** Default: all instrumentation compiles to a dead branch. *)
    | Memory  (** Record into in-process per-domain cells. *)

  val set : t -> unit
  val current : unit -> t
end

(** Monotonic counters.  Increments from distinct domains go to
    distinct cells; {!Counter.value} sums them. *)
module Counter : sig
  type t

  val make : ?help:string -> ?labels:(string * string) list -> string -> t
  (** Registers (or retrieves — registration is idempotent per
      (name, labels)) a counter in the global registry. *)

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int

  val local : t -> int array
  (** The calling domain's raw cell for zero-overhead hot loops: bump
      index 0 with plain stores {e after} checking {!enabled} yourself.
      The array is domain-private — never share it across domains. *)

  type vec
  (** A counter family keyed by a small integer label (e.g. the
      forwarding-table index). *)

  val vec : ?help:string -> string -> label:string -> vec
  val cell : vec -> int -> t
  (** [cell v i] is the counter labelled [{label="i"}], memoized. *)
end

(** Gauges: last-written-wins values (rare writes — one atomic). *)
module Gauge : sig
  type t

  val make : ?help:string -> ?labels:(string * string) list -> string -> t
  val set : t -> int -> unit
  val value : t -> int
end

(** Log-scale histograms: 64 power-of-two buckets spanning
    (2^-32, 2^32], exact sum and max, quantiles by linear interpolation
    inside the bucket (clamped to the tracked max). *)
module Histogram : sig
  type t

  val make : ?help:string -> ?labels:(string * string) list -> string -> t
  val observe : t -> float -> unit
  val observe_int : t -> int -> unit

  type cells
  (** The calling domain's cell, for hot loops. *)

  val local : t -> cells
  val record : cells -> float -> unit
  (** Unconditional observe into a domain-local cell: the caller
      checked {!enabled}. *)

  val record_int : cells -> int -> unit
  (** Like {!record} for small non-negative ints (hop and link counts):
      the bucket is one table lookup. *)

  type summary = {
    count : int;
    sum : float;
    mean : float;
    p50 : float;
    p95 : float;
    p99 : float;
    max : float;
  }

  val summary : t -> summary

  (**/**)

  val bucket_of : float -> int
  val le_bound : int -> float
end

(** Bounded lock-free per-domain trace ring of per-hop forwarding
    events.  Each domain writes only its own ring; when the ring is
    full the oldest event is overwritten and counted in {!dropped}.  A
    whole delivery runs on one domain, so a packet's events live in one
    ring and replay in order. *)
module Trace : sig
  type kind =
    | Hop  (** A forwarding decision (possibly admitting zero links). *)
    | Drop_fill
    | Drop_loop
    | Drop_bad_table
    | Recovery_activation  (** A VLId/backup-path install, not a hop. *)

  type event = {
    ev_seq : int;  (** Ring-local write index: orders a domain's events. *)
    ev_packet : int;  (** Publication id from {!next_packet_id}. *)
    ev_node : int;
    ev_in_link : int;  (** Dense arrival-link index; -1 at the origin. *)
    ev_kind : kind;
    ev_out_links : int array;
        (** Dense indexes of the links a copy actually took (admitted,
            not deduplicated away, and not lost). *)
    ev_false_positive : bool;
        (** Some admitted link was off the intended tree. *)
    ev_loop_suspected : bool;
    ev_deliver_local : bool;
    ev_ttl_expired : int;  (** Admitted links the TTL refused. *)
  }

  type ring

  val set_recording : bool -> unit
  (** Tracing on/off independently of the sink (default on): counters
      can stay cheap while the ring is silenced. *)

  val recording : unit -> bool
  (** [enabled () && the tracing flag]. *)

  val set_capacity : int -> unit
  (** Per-domain ring capacity for rings created {e after} the call
      (default 16384 events). *)

  val next_packet_id : unit -> int
  (** Fresh process-wide publication id. *)

  val local : unit -> ring
  (** The calling domain's ring (created on first use). *)

  val record :
    ring ->
    packet:int ->
    node:int ->
    in_link:int ->
    kind:kind ->
    out_links:int array ->
    false_positive:bool ->
    loop_suspected:bool ->
    deliver_local:bool ->
    ttl_expired:int ->
    unit

  val events : unit -> event list
  (** Snapshot of every ring, sorted by (packet, seq). *)

  val packet_events : int -> event list

  val dropped : unit -> int
  (** Events lost to ring overflow, over all rings. *)

  val delivery_set : dst_of:(int -> int) -> event list -> int list
  (** Replays an event stream into the sorted set of nodes the packet
      visited: origin nodes plus [dst_of l] for every recorded
      out-link.  [dst_of] maps a dense link index to its destination
      (the trace itself is graph-agnostic). *)

  val to_string : event -> string
  val clear : unit -> unit
end

val reset : unit -> unit
(** Zeroes every cell and gauge and clears all trace rings (packet ids
    keep advancing).  Call only while instrumented code is quiescent. *)

module Export : sig
  val prometheus : unit -> string
  (** Prometheus text exposition format: counters and gauges as single
      samples, histograms as cumulative [_bucket{le=...}] series plus
      [_sum]/[_count]. *)

  val json : unit -> string
  (** The same registry as one JSON object; histograms carry their
      quantile summaries. *)

  val dump_on_exit : path:string -> unit
  (** Registers an [at_exit] hook writing {!prometheus} to [path]. *)
end
