(** Runtime telemetry for the live forwarding plane.

    Every Algorithm-1 decision, delivery and recovery activation can be
    turned into measurable events: monotonic counters, gauges,
    log-scale histograms with quantile summaries, and a bounded
    per-domain trace ring from which per-packet delivery traces are
    reconstructable.  The module has zero dependencies so every layer —
    {!Lipsin_forwarding.Fastpath}'s hot loop included — can instrument
    itself.

    {b Concurrency.}  A metric owns one {e cell} per domain, created
    lazily through domain-local storage and padded to a cache line, so
    the hot path is an atomic-free plain-int increment into the calling
    domain's private cell.  Aggregation happens on read by summing the
    cells.  Values read while other domains are actively writing are a
    consistent-enough snapshot for monitoring; exact readings (as the
    test suite takes) require quiescence.

    {b Cost.}  The global sink switch is one [Atomic.t bool]: with the
    default {!Sink.Noop} sink every instrument site is a single atomic
    load and an untaken branch, a budget the bench suite's [--obs] mode
    verifies stays under 3% of fast-path throughput. *)

val enabled : unit -> bool
(** [true] iff the memory sink is installed. *)

module Sink : sig
  type t =
    | Noop  (** Default: all instrumentation compiles to a dead branch. *)
    | Memory  (** Record into in-process per-domain cells. *)

  val set : t -> unit
  val current : unit -> t
end

(** Monotonic counters.  Increments from distinct domains go to
    distinct cells; {!Counter.value} sums them. *)
module Counter : sig
  type t

  val make : ?help:string -> ?labels:(string * string) list -> string -> t
  (** Registers (or retrieves — registration is idempotent per
      (name, labels)) a counter in the global registry. *)

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int

  val local : t -> int array
  (** The calling domain's raw cell for zero-overhead hot loops: bump
      index 0 with plain stores {e after} checking {!enabled} yourself.
      The array is domain-private — never share it across domains. *)

  type vec
  (** A counter family keyed by a small integer label (e.g. the
      forwarding-table index). *)

  val vec : ?help:string -> string -> label:string -> vec
  val cell : vec -> int -> t
  (** [cell v i] is the counter labelled [{label="i"}], memoized. *)
end

(** Gauges: last-written-wins values (rare writes — one atomic). *)
module Gauge : sig
  type t

  val make : ?help:string -> ?labels:(string * string) list -> string -> t
  val set : t -> int -> unit
  val value : t -> int

  type vec
  (** A gauge family keyed by a small integer label (e.g. the shard
      index of a forwarding-service queue). *)

  val vec : ?help:string -> string -> label:string -> vec
  val cell : vec -> int -> t
  (** [cell v i] is the gauge labelled [{label="i"}], memoized. *)
end

(** Log-scale histograms: 64 power-of-two buckets spanning
    (2^-32, 2^32], exact sum and max, quantiles by linear interpolation
    inside the bucket (clamped to the tracked max). *)
module Histogram : sig
  type t

  val make : ?help:string -> ?labels:(string * string) list -> string -> t
  val observe : t -> float -> unit
  val observe_int : t -> int -> unit

  type cells
  (** The calling domain's cell, for hot loops. *)

  val local : t -> cells
  val record : cells -> float -> unit
  (** Unconditional observe into a domain-local cell: the caller
      checked {!enabled}. *)

  val record_int : cells -> int -> unit
  (** Like {!record} for small non-negative ints (hop and link counts):
      the bucket is one table lookup. *)

  type summary = {
    count : int;
    sum : float;
    mean : float;
    p50 : float;
    p95 : float;
    p99 : float;
    p999 : float;
    max : float;
  }

  val summary : t -> summary

  (**/**)

  val bucket_of : float -> int
  val le_bound : int -> float
end

(** Bounded lock-free per-domain trace ring of per-hop forwarding
    events.  Each domain writes only its own ring; when the ring is
    full the oldest event is overwritten and counted in {!dropped}.  A
    whole delivery runs on one domain, so a packet's events live in one
    ring and replay in order. *)
module Trace : sig
  type kind =
    | Hop  (** A forwarding decision (possibly admitting zero links). *)
    | Drop_fill
    | Drop_loop
    | Drop_bad_table
    | Recovery_activation  (** A VLId/backup-path install, not a hop. *)
    | Stitch_handoff
        (** A partitioned-delivery stage boundary: [ev_out_links] names
            the {e stage} being activated, not dense links. *)

  type event = {
    ev_seq : int;  (** Ring-local write index: orders a domain's events. *)
    ev_packet : int;  (** Publication id from {!next_packet_id}. *)
    ev_node : int;
    ev_in_link : int;  (** Dense arrival-link index; -1 at the origin. *)
    ev_kind : kind;
    ev_out_links : int array;
        (** Dense indexes of the links a copy actually took (admitted,
            not deduplicated away, and not lost); for {!Stitch_handoff}
            the single activated stage. *)
    ev_false_positive : bool;
        (** Some admitted link was off the intended tree. *)
    ev_loop_suspected : bool;
    ev_deliver_local : bool;
    ev_ttl_expired : int;  (** Admitted links the TTL refused. *)
    ev_table : int;  (** Forwarding table of the decision; -1 unknown. *)
    ev_engine : int;  (** Engine code ({!engine_reference} etc.); -1 unknown. *)
    ev_stage : int;  (** Partition stage of a stitched delivery; -1 unstaged. *)
    ev_depth : int;  (** Hop depth from the (stage) root. *)
  }

  type ring

  (** {2 Engine codes}

      Small ints carried in [ev_engine] so the hot path never formats a
      string. *)

  val engine_reference : int
  val engine_fast : int
  val engine_bitsliced : int
  val engine_name : int -> string

  (** {2 Sampling}

      Per-publication trace contexts: {!start} grants a context to
      1-in-N publications (N from {!set_sampling}, default 1 = trace
      everything).  The decision counter is process-wide, so domains
      share the sampling budget. *)

  type ctx = {
    tc_packet : int;  (** Publication id; -1 when not sampled. *)
    tc_sampled : bool;
  }

  val set_sampling : int -> unit
  val sampling : unit -> int

  val off : ctx
  (** The never-sampled context. *)

  val start : unit -> ctx
  (** Sampling decision for a new publication: a fresh sampled context
      1-in-N times when {!recording}, {!off} otherwise. *)

  val forced : unit -> ctx
  (** A sampled context regardless of the sampling rate (tests,
      anomaly replay). *)

  val set_recording : bool -> unit
  (** Tracing on/off independently of the sink (default on): counters
      can stay cheap while the ring is silenced. *)

  val recording : unit -> bool
  (** [enabled () && the tracing flag]. *)

  val set_capacity : int -> unit
  (** Per-domain ring capacity for rings created {e after} the call
      (default 16384 events). *)

  val next_packet_id : unit -> int
  (** Fresh process-wide publication id. *)

  val local : unit -> ring
  (** The calling domain's ring (created on first use). *)

  val record :
    ?table:int ->
    ?engine:int ->
    ?stage:int ->
    ?depth:int ->
    ring ->
    packet:int ->
    node:int ->
    in_link:int ->
    kind:kind ->
    out_links:int array ->
    false_positive:bool ->
    loop_suspected:bool ->
    deliver_local:bool ->
    ttl_expired:int ->
    unit

  val events : unit -> event list
  (** Snapshot of every ring, sorted by (packet, seq). *)

  val packet_events : int -> event list

  val dropped : unit -> int
  (** Events lost to ring overflow, over all rings. *)

  val delivery_set : dst_of:(int -> int) -> event list -> int list
  (** Replays an event stream into the sorted set of nodes the packet
      visited: origin nodes plus [dst_of l] for every recorded
      out-link.  [dst_of] maps a dense link index to its destination
      (the trace itself is graph-agnostic). *)

  val to_string : event -> string
  val clear : unit -> unit
end

(** Off-hot-path reconstruction of a sampled publication's trace events
    into a per-publication span tree, with a runtime cross-check
    against the expected delivery set — the dynamic twin of
    [Netcheck.check_partition].  Everything here walks ring snapshots;
    nothing runs per forwarding decision. *)
module Span : sig
  type t = { sp_event : Trace.event; mutable sp_children : t list }

  type anomaly =
    | Loop of int
        (** The loop cache vetoed an arrival at this node ([Drop_loop]).
            The softer [loop_suspected] flag is honest Bloom background
            and does not raise an anomaly. *)
    | Revisit of int  (** Node reached more than once within one stage. *)
    | Duplicate_activation of int  (** Stage handed off more than once. *)
    | Orphan of int  (** Parent event missing: ring overflow or gap. *)

  type severity = Warning | Error

  val severity : anomaly -> severity
  (** Loops and duplicate activations are delivery-semantics violations
      ([Error]); revisits happen under honest Bloom false positives and
      orphans under ring overflow ([Warning]). *)

  val anomaly_to_string : anomaly -> string

  type tree = {
    tr_packet : int;
    tr_roots : t list;
    tr_events : Trace.event list;
    tr_anomalies : anomaly list;
  }

  val reconstruct : Trace.event list -> tree
  (** Builds the span forest of one publication from its events (in
      ring order).  An event arriving over link [l] in stage [s]
      becomes a child of the event that last emitted [l] in [s]; events
      with no arrival link are stage roots. *)

  val of_packet : int -> tree
  (** [reconstruct (Trace.packet_events pid)]. *)

  val size : t -> int
  val depth : t -> int
  val has_errors : tree -> bool

  type verdict = {
    vd_ok : bool;
    vd_complete : bool;
        (** No orphans: the rings held the publication's whole trace. *)
    vd_delivered : int list;  (** Sorted nodes the trace reached. *)
    vd_missing : int list;  (** Expected but not reached. *)
    vd_unexpected : int list;  (** Reached but not expected. *)
    vd_anomalies : anomaly list;
  }

  val crosscheck :
    dst_of:(int -> int) -> expected:int list -> tree -> verdict
  (** Replays the tree's events into a delivery set and compares with
      the intended [expected] nodes; [vd_ok] additionally requires a
      complete trace and no [Error]-severity anomalies. *)

  val verdict_to_string : verdict -> string
end

val reset : unit -> unit
(** Zeroes every cell and gauge and clears all trace rings (packet ids
    keep advancing).  Call only while instrumented code is quiescent. *)

module Export : sig
  val escape_help : string -> string
  (** Exposition-format HELP escaping: backslash and newline. *)

  val escape_label : string -> string
  (** Exposition-format label-value escaping: backslash, double quote
      and newline. *)

  val prometheus : unit -> string
  (** Prometheus text exposition format: counters and gauges as single
      samples, histograms as cumulative [_bucket{le=...}] series plus
      [_sum]/[_count].  Families are emitted in deterministic
      (name, labels) order with one [# TYPE] line each and the HELP of
      the first member that has one, so exports are diffable. *)

  val json : unit -> string
  (** The same registry as one JSON object; histograms carry their
      quantile summaries (p50/p95/p99/p999). *)

  type value =
    | Vcounter of int
    | Vgauge of int
    | Vhistogram of Histogram.summary

  val samples : unit -> (string * (string * string) list * value) list
  (** Structured snapshot in the same deterministic order as
      {!prometheus}; the serve snapshot-diff endpoint feeds on this. *)

  val write_file : path:string -> string -> bool
  (** Writes [content] to [path], creating missing parent directories;
      failures are reported on stderr (never raised) and return
      [false]. *)

  val dump_on_exit : path:string -> unit
  (** Registers an [at_exit] hook writing {!prometheus} to [path] via
      {!write_file}. *)
end

(** Anomaly flight recorder: an always-on bounded ring of recent
    per-publication frames.  A trigger (delivery mismatch, duplicate
    stage activation, suspected loop, p99 latency jump) freezes the
    ring — preserving the publications leading up to the incident — and
    dumps a post-mortem JSON bundle (frames, the offending packet's
    trace, a full metrics snapshot) for offline replay.  All entry
    points are gated on {!enabled} and run once per publication, off
    the per-decision hot path. *)
module Flight : sig
  type trigger =
    | Delivery_mismatch
    | Duplicate_activation
    | Loop_detected
    | Latency_jump
    | Manual

  val trigger_to_string : trigger -> string

  type frame = {
    fr_packet : int;  (** -1 when the publication was not sampled. *)
    fr_latency : float;  (** Seconds for the whole publication. *)
    fr_events : int;  (** Trace events the publication produced. *)
    fr_anomalies : string list;
  }

  type dump = {
    dm_seq : int;
    dm_trigger : trigger;
    dm_packet : int;
    dm_detail : string;
    dm_path : string option;
        (** [None]: no dump dir configured, or the write failed. *)
  }

  val configure :
    ?dir:string ->
    ?capacity:int ->
    ?latency_factor:float ->
    ?min_samples:int ->
    unit ->
    unit
  (** [dir]: where post-mortem bundles land (default: in-memory only).
      [capacity]: frame-ring size (default 512; resets the ring).
      [latency_factor]: the latency trigger fires at p99 × factor
      (default 8.0).  [min_samples]: frames required before the latency
      trigger arms (default 256). *)

  val want_note : unit -> bool
  (** Lock-free 1-in-16 subsampling decision for untraced publications:
      callers ask this up front and skip the clock reads and {!note}
      entirely when it answers [false], keeping the counters-only fast
      path inside its overhead budget.  Traced publications should
      always note. *)

  val note :
    ?anomalies:string list ->
    ?events:int ->
    packet:int ->
    latency:float ->
    unit ->
    unit
  (** Records one publication's frame and evaluates the latency-jump
      trigger (threshold cached, recomputed every 128 notes). *)

  val fire : ?detail:string -> trigger -> packet:int -> unit
  (** Freezes the recorder (first trigger wins until {!thaw}) and dumps
      the post-mortem bundle. *)

  val frames : unit -> frame list
  val frozen : unit -> bool
  val thaw : unit -> unit
  val dumps : unit -> dump list
  val dump_count : unit -> int
  val last_dump : unit -> dump option
  val reset : unit -> unit
end
