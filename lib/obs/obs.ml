(* Runtime telemetry: domain-safe counters, gauges, log-scale
   histograms, a bounded per-domain trace ring, and Prometheus/JSON
   exporters.  Zero dependencies so every layer can instrument itself.

   Concurrency model: each metric owns one *cell* per domain, created
   lazily through domain-local storage and padded so neighbouring cells
   never share a cache line.  The hot path is therefore an atomic-free
   plain-int increment into this domain's private cell; aggregation
   happens only on read, by summing the cell list under the registry
   mutex.  The global sink switch is a single [Atomic.t bool]: with the
   no-op sink installed every instrument site is one atomic load and a
   branch. *)

(* ---- sink ----------------------------------------------------------- *)

let live = Atomic.make false

let enabled () = Atomic.get live

module Sink = struct
  type t = Noop | Memory

  let set = function
    | Noop -> Atomic.set live false
    | Memory -> Atomic.set live true

  let current () = if Atomic.get live then Memory else Noop
end

(* ---- registry ------------------------------------------------------- *)

type kind = Kcounter | Kgauge | Khistogram

(* One per-domain storage block.  [ints] is padded to a cache line for
   counters; histograms use the tail of [ints] as bucket slots and
   [floats] for the exact sum/max. *)
type cell = { ints : int array; floats : float array }

type item = {
  id : int;
  name : string;
  help : string;
  labels : (string * string) list;
  kind : kind;
  gauge : int Atomic.t;  (* gauges are rare-write: a single atomic *)
  mutable cells : cell list;  (* appended under [mu] *)
}

let mu = Mutex.create ()
let items : item list Atomic.t = Atomic.make []
let next_id = Atomic.make 0

let n_buckets = 64
let pad = 8  (* ints of padding = one 64-byte line *)

let alloc_cell = function
  | Kcounter | Kgauge -> { ints = Array.make pad 0; floats = [||] }
  | Khistogram ->
    (* bucket counts + a padding tail; floats: [|sum; max; pad...|] *)
    { ints = Array.make (n_buckets + pad) 0; floats = Array.make pad 0.0 }

let same_labels a b =
  List.length a = List.length b
  && List.for_all2
       (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && String.equal v1 v2)
       a b

let register kind ?(help = "") ?(labels = []) name =
  Mutex.protect mu (fun () ->
      let existing =
        List.find_opt
          (fun it ->
            it.kind = kind && String.equal it.name name
            && same_labels it.labels labels)
          (Atomic.get items)
      in
      match existing with
      | Some it -> it
      | None ->
        let it =
          {
            id = Atomic.fetch_and_add next_id 1;
            name;
            help;
            labels;
            kind;
            gauge = Atomic.make 0;
            cells = [];
          }
        in
        Atomic.set items (it :: Atomic.get items);
        it)

(* ---- domain-local cell lookup --------------------------------------- *)

type ring = {
  mutable buf : event array;
  cap : int;
  mutable written : int;  (* total events ever recorded *)
}

and event = {
  ev_seq : int;  (* ring-local write index: orders events of one domain *)
  ev_packet : int;
  ev_node : int;
  ev_in_link : int;  (* dense link index, -1 when the packet originates *)
  ev_kind : event_kind;
  ev_out_links : int array;  (* dense indexes of links the copy took;
                                for Stitch_handoff, [|next stage|] *)
  ev_false_positive : bool;  (* some admitted link was off the intended tree *)
  ev_loop_suspected : bool;
  ev_deliver_local : bool;
  ev_ttl_expired : int;  (* admitted links the TTL refused *)
  ev_table : int;  (* forwarding table the decision ran against, -1 unknown *)
  ev_engine : int;  (* engine code (Trace.engine_reference etc), -1 unknown *)
  ev_stage : int;  (* partition stage of a stitched delivery, -1 unstaged *)
  ev_depth : int;  (* hop depth from the (stage) root *)
}

and event_kind =
  | Hop
  | Drop_fill
  | Drop_loop
  | Drop_bad_table
  | Recovery_activation
  | Stitch_handoff

type local_table = { mutable tbl : cell option array; mutable ring : ring option }

let dls = Domain.DLS.new_key (fun () -> { tbl = [||]; ring = None })

let[@lipsin.allow_alloc
     "first-touch registration allocates the per-domain cell; \
      steady-state lookups return the cached cell (checked at 0 \
      words/op by bench --alloc)"] local_cell it =
  let lt = Domain.DLS.get dls in
  let n = Array.length lt.tbl in
  if it.id >= n then begin
    let grown = Array.make (it.id + 8) None in
    Array.blit lt.tbl 0 grown 0 n;
    lt.tbl <- grown
  end;
  match lt.tbl.(it.id) with
  | Some c -> c
  | None ->
    let c = alloc_cell it.kind in
    lt.tbl.(it.id) <- Some c;
    Mutex.protect mu (fun () -> it.cells <- c :: it.cells);
    c

let cells_of it = Mutex.protect mu (fun () -> it.cells)

(* ---- counters ------------------------------------------------------- *)

module Counter = struct
  type t = item

  let make ?help ?labels name = register Kcounter ?help ?labels name

  (* The domain-local raw cell, for hot loops that checked {!enabled}
     once: bump index 0 with plain int stores. *)
  let local t = (local_cell t).ints

  let[@lipsin.noalloc] add t n =
    if Atomic.get live then begin
      let c = (local_cell t).ints in
      c.(0) <- c.(0) + n
    end

  let[@lipsin.noalloc] incr t = add t 1

  let value t = List.fold_left (fun acc c -> acc + c.ints.(0)) 0 (cells_of t)

  type vec = {
    v_name : string;
    v_help : string;
    v_label : string;
    v_mu : Mutex.t;  (* guards v_cells growth and slot initialisation *)
    mutable v_cells : t option array;
  }

  let vec ?(help = "") name ~label =
    {
      v_name = name;
      v_help = help;
      v_label = label;
      v_mu = Mutex.create ();
      v_cells = Array.make 8 None;
    }

  (* The unlocked fast-path read is safe under the OCaml memory model
     (no tearing of mutable-field reads); a stale miss just falls
     through to the locked slow path.  [v_mu] nests outside the
     registry's [mu] (taken by [make]) and never the other way, so
     there is no lock-order cycle. *)
  let cell v i =
    let i = max 0 i in
    match if i < Array.length v.v_cells then v.v_cells.(i) else None with
    | Some c -> c
    | None ->
      Mutex.protect v.v_mu (fun () ->
          if i >= Array.length v.v_cells then begin
            let grown = Array.make (i + 8) None in
            Array.blit v.v_cells 0 grown 0 (Array.length v.v_cells);
            v.v_cells <- grown
          end;
          match v.v_cells.(i) with
          | Some c -> c
          | None ->
            let c =
              make
                ~help:v.v_help
                ~labels:[ (v.v_label, string_of_int i) ]
                v.v_name
            in
            v.v_cells.(i) <- Some c;
            c)
end

module Gauge = struct
  type t = item

  let make ?help ?labels name = register Kgauge ?help ?labels name
  let set t n = if Atomic.get live then Atomic.set t.gauge n
  let value t = Atomic.get t.gauge

  type vec = {
    v_name : string;
    v_help : string;
    v_label : string;
    v_mu : Mutex.t;  (* guards v_cells growth and slot initialisation *)
    mutable v_cells : t option array;
  }

  let vec ?(help = "") name ~label =
    {
      v_name = name;
      v_help = help;
      v_label = label;
      v_mu = Mutex.create ();
      v_cells = Array.make 8 None;
    }

  (* Same discipline as {!Counter.cell}: unlocked fast-path read, locked
     grow + registration on miss; [v_mu] nests outside the registry's
     [mu] only. *)
  let cell v i =
    let i = max 0 i in
    match if i < Array.length v.v_cells then v.v_cells.(i) else None with
    | Some c -> c
    | None ->
      Mutex.protect v.v_mu (fun () ->
          if i >= Array.length v.v_cells then begin
            let grown = Array.make (i + 8) None in
            Array.blit v.v_cells 0 grown 0 (Array.length v.v_cells);
            v.v_cells <- grown
          end;
          match v.v_cells.(i) with
          | Some c -> c
          | None ->
            let c =
              make
                ~help:v.v_help
                ~labels:[ (v.v_label, string_of_int i) ]
                v.v_name
            in
            v.v_cells.(i) <- Some c;
            c)
end

(* ---- histograms ----------------------------------------------------- *)

(* Log-scale buckets: bucket [i] holds observations in
   (2^(i-32), 2^(i-31)], i.e. the upper bound of bucket [i] is
   2^(i-31) — bucket 31 is (0.5, 1], bucket 34 is (4, 8].  Everything
   non-positive lands in bucket 0, everything above 2^32 in the last.
   Quantiles interpolate linearly inside the bucket and are clamped to
   the exact tracked max. *)

module Histogram = struct
  type t = item

  let make ?help ?labels name = register Khistogram ?help ?labels name

  (* Allocation-free on purpose: [Float.frexp] boxes a tuple per call
     and this runs once per forwarding decision.  Doubling/halving a
     local float compiles to unboxed arithmetic, and the hot
     observations — hop counts, admitted links, traversals — are small
     integers resolved by one table lookup. *)
  let bucket_slow v =
    let i = ref 31 and x = ref 1.0 in
    if v <= 1.0 then
      while !i > 0 && v <= !x /. 2.0 do
        x := !x /. 2.0;
        decr i
      done
    else
      while !i < n_buckets - 1 && v > !x do
        x := !x *. 2.0;
        incr i
      done;
    !i

  (* Bucket boundaries above 1.0 are integer powers of two, so any v in
     (1, 1024] shares its bucket with [ceil v]. *)
  let small =
    Array.init 1025 (fun i -> if i = 0 then 0 else bucket_slow (float_of_int i))

  let[@lipsin.inbounds] bucket_of v =
    if v <= 0.0 then 0
    else if v >= 1.0 && v <= 1024.0 then
      (Array.unsafe_get small
         (int_of_float (Float.ceil v))
       [@lipsin.allow_unchecked
         "float-guarded: 1.0 <= v <= 1024.0 so ceil v lands in [1, 1024] \
          and small has 1025 entries; the guard is float arithmetic the \
          affine domain cannot see"])
    else bucket_slow v

  let le_bound i = Float.ldexp 1.0 (i - 31)

  type cells = cell

  let local t = local_cell t

  (* Unconditional: for hot paths that checked {!enabled} themselves.
     The unsafe accesses are covered by construction: [bucket_of] clamps
     to [0, n_buckets) and cells carry [n_buckets + pad] ints and [pad]
     floats. *)
  let[@lipsin.noalloc]
     [@lipsin.allow_unchecked
       "covered by construction: bucket_of clamps to [0, n_buckets) and \
        histogram cells carry n_buckets + pad ints and pad >= 2 floats \
        (cell_of_kind); the cell type is shared with counters, so the \
        bound is not expressible as a type-keyed layout fact"] record c v
      =
    let i = bucket_of v in
    Array.unsafe_set c.ints i (Array.unsafe_get c.ints i + 1);
    Array.unsafe_set c.floats 0 (Array.unsafe_get c.floats 0 +. v);
    if v > Array.unsafe_get c.floats 1 then Array.unsafe_set c.floats 1 v

  (* The per-decision fast lane: hop counts and admitted-link counts are
     small non-negative ints, so the bucket is one table load and no
     float rounding runs at all. *)
  let[@lipsin.noalloc] [@lipsin.inbounds] record_int c n =
    (* the small-table read is statically certified: 1 <= n <= 1024
       against the 1025-entry toplevel array *)
    let i =
      if n <= 0 then 0
      else if n <= 1024 then Array.unsafe_get small n
      else bucket_slow (float_of_int n)
    in
    let v = float_of_int n in
    (Array.unsafe_set c.ints i (Array.unsafe_get c.ints i + 1)
     [@lipsin.allow_unchecked
       "covered by construction: bucket indices stay in [0, n_buckets) \
        and histogram cells carry n_buckets + pad ints (cell_of_kind); \
        the cell type is shared with counters, so the bound is not \
        expressible as a type-keyed layout fact"]);
    (Array.unsafe_set c.floats 0 (Array.unsafe_get c.floats 0 +. v)
     [@lipsin.allow_unchecked
       "covered by construction: histogram cells carry pad >= 2 floats \
        (cell_of_kind); shared cell type, see above"]);
    if v > (Array.unsafe_get c.floats 1
            [@lipsin.allow_unchecked
              "covered by construction: histogram cells carry pad >= 2 \
               floats (cell_of_kind); shared cell type, see above"])
    then
      (Array.unsafe_set c.floats 1 v
       [@lipsin.allow_unchecked
         "covered by construction: histogram cells carry pad >= 2 floats \
          (cell_of_kind); shared cell type, see above"])

  let observe t v = if Atomic.get live then record (local_cell t) v
  let observe_int t n = if Atomic.get live then record_int (local_cell t) n

  type summary = {
    count : int;
    sum : float;
    mean : float;
    p50 : float;
    p95 : float;
    p99 : float;
    p999 : float;
    max : float;
  }

  let merged t =
    let buckets = Array.make n_buckets 0 in
    let sum = ref 0.0 and mx = ref 0.0 in
    List.iter
      (fun c ->
        for i = 0 to n_buckets - 1 do
          buckets.(i) <- buckets.(i) + c.ints.(i)
        done;
        sum := !sum +. c.floats.(0);
        if c.floats.(1) > !mx then mx := c.floats.(1))
      (cells_of t);
    (buckets, !sum, !mx)

  let quantile buckets total mx q =
    if total = 0 then 0.0
    else begin
      let rank = q *. float_of_int total in
      let cum = ref 0 and result = ref mx and stop = ref false in
      for i = 0 to n_buckets - 1 do
        if not !stop then begin
          let c = buckets.(i) in
          if c > 0 && float_of_int (!cum + c) >= rank then begin
            let lo = if i = 0 then 0.0 else le_bound (i - 1) in
            let hi = le_bound i in
            let within = (rank -. float_of_int !cum) /. float_of_int c in
            result := lo +. ((hi -. lo) *. within);
            stop := true
          end;
          cum := !cum + c
        end
      done;
      if !result > mx then mx else !result
    end

  let summary t =
    let buckets, sum, mx = merged t in
    let total = Array.fold_left ( + ) 0 buckets in
    {
      count = total;
      sum;
      mean = (if total = 0 then 0.0 else sum /. float_of_int total);
      p50 = quantile buckets total mx 0.50;
      p95 = quantile buckets total mx 0.95;
      p99 = quantile buckets total mx 0.99;
      p999 = quantile buckets total mx 0.999;
      max = mx;
    }
end

(* ---- trace ring ----------------------------------------------------- *)

module Trace = struct
  type nonrec event = event = {
    ev_seq : int;
    ev_packet : int;
    ev_node : int;
    ev_in_link : int;
    ev_kind : event_kind;
    ev_out_links : int array;
    ev_false_positive : bool;
    ev_loop_suspected : bool;
    ev_deliver_local : bool;
    ev_ttl_expired : int;
    ev_table : int;
    ev_engine : int;
    ev_stage : int;
    ev_depth : int;
  }

  type kind = event_kind =
    | Hop
    | Drop_fill
    | Drop_loop
    | Drop_bad_table
    | Recovery_activation
    | Stitch_handoff

  type nonrec ring = ring

  let recording_flag = Atomic.make true
  let default_capacity = Atomic.make 16384
  let rings : ring list Atomic.t = Atomic.make []
  let packet_ids = Atomic.make 0

  let set_recording b = Atomic.set recording_flag b
  let recording () = Atomic.get live && Atomic.get recording_flag
  let set_capacity n = Atomic.set default_capacity (max 1 n)
  let next_packet_id () = Atomic.fetch_and_add packet_ids 1

  (* Engine codes carried in [ev_engine]: small ints so the hot path
     never formats a string. *)
  let engine_reference = 0
  let engine_fast = 1
  let engine_bitsliced = 2

  let engine_name = function
    | 0 -> "reference"
    | 1 -> "fast"
    | 2 -> "bitsliced"
    | _ -> "unknown"

  (* ---- sampling ------------------------------------------------------ *)

  (* The per-publication sampling decision: 1-in-N publications get a
     trace context.  The counter is a single process-wide atomic, so
     domains fan-out the sampling budget between them; N = 1 (the
     default) traces everything, preserving pre-sampling behaviour. *)

  type ctx = { tc_packet : int; tc_sampled : bool }

  let sample_every = Atomic.make 1
  let sample_seq = Atomic.make 0

  let set_sampling n = Atomic.set sample_every (max 1 n)
  let sampling () = Atomic.get sample_every
  let off = { tc_packet = -1; tc_sampled = false }

  let start () =
    if not (Atomic.get live && Atomic.get recording_flag) then off
    else begin
      let n = Atomic.get sample_every in
      if n <= 1 || Atomic.fetch_and_add sample_seq 1 mod n = 0 then
        { tc_packet = Atomic.fetch_and_add packet_ids 1; tc_sampled = true }
      else off
    end

  let forced () =
    { tc_packet = Atomic.fetch_and_add packet_ids 1; tc_sampled = true }

  let dummy =
    {
      ev_seq = -1;
      ev_packet = -1;
      ev_node = -1;
      ev_in_link = -1;
      ev_kind = Hop;
      ev_out_links = [||];
      ev_false_positive = false;
      ev_loop_suspected = false;
      ev_deliver_local = false;
      ev_ttl_expired = 0;
      ev_table = -1;
      ev_engine = -1;
      ev_stage = -1;
      ev_depth = 0;
    }

  let local () =
    let lt = Domain.DLS.get dls in
    match lt.ring with
    | Some r -> r
    | None ->
      let cap = Atomic.get default_capacity in
      let r = { buf = Array.make cap dummy; cap; written = 0 } in
      lt.ring <- Some r;
      Mutex.protect mu (fun () -> Atomic.set rings (r :: Atomic.get rings));
      r

  (* Lock-free: only the owning domain writes its ring; when full the
     oldest event is overwritten and accounted in {!dropped}. *)
  let record ?(table = -1) ?(engine = -1) ?(stage = -1) ?(depth = 0) r ~packet
      ~node ~in_link ~kind ~out_links ~false_positive ~loop_suspected
      ~deliver_local ~ttl_expired =
    let e =
      {
        ev_seq = r.written;
        ev_packet = packet;
        ev_node = node;
        ev_in_link = in_link;
        ev_kind = kind;
        ev_out_links = out_links;
        ev_false_positive = false_positive;
        ev_loop_suspected = loop_suspected;
        ev_deliver_local = deliver_local;
        ev_ttl_expired = ttl_expired;
        ev_table = table;
        ev_engine = engine;
        ev_stage = stage;
        ev_depth = depth;
      }
    in
    r.buf.(r.written mod r.cap) <- e;
    r.written <- r.written + 1

  let ring_events r =
    let n = min r.written r.cap in
    let first = r.written - n in
    List.init n (fun i -> r.buf.((first + i) mod r.cap))

  let events () =
    let all =
      List.concat_map ring_events (Atomic.get rings)
    in
    List.stable_sort
      (fun a b ->
        let c = Int.compare a.ev_packet b.ev_packet in
        if c <> 0 then c else Int.compare a.ev_seq b.ev_seq)
      all

  let packet_events pid =
    List.filter (fun e -> e.ev_packet = pid) (events ())

  let dropped () =
    List.fold_left
      (fun acc r -> acc + max 0 (r.written - r.cap))
      0 (Atomic.get rings)

  (* Replay a per-packet event stream back into the set of nodes the
     packet visited: the origin event's node plus the destination of
     every link a copy actually took.  [dst_of] maps a dense link index
     to its destination node (the trace itself is graph-agnostic). *)
  let delivery_set ~dst_of evs =
    let nodes = Hashtbl.create 32 in
    List.iter
      (fun e ->
        match e.ev_kind with
        | Stitch_handoff -> ()  (* out_links names a stage, not links *)
        | Hop | Drop_fill | Drop_loop | Drop_bad_table | Recovery_activation ->
          if e.ev_in_link < 0 then Hashtbl.replace nodes e.ev_node ();
          Array.iter
            (fun l -> Hashtbl.replace nodes (dst_of l) ())
            e.ev_out_links)
      evs;
    List.sort Int.compare (Hashtbl.fold (fun v () acc -> v :: acc) nodes [])

  let kind_to_string = function
    | Hop -> "hop"
    | Drop_fill -> "drop-fill"
    | Drop_loop -> "drop-loop"
    | Drop_bad_table -> "drop-bad-table"
    | Recovery_activation -> "recovery-activation"
    | Stitch_handoff -> "stitch-handoff"

  let to_string e =
    Printf.sprintf
      "pkt=%d seq=%d node=%d in=%d %s out=[%s]%s%s%s%s%s%s%s%s"
      e.ev_packet e.ev_seq e.ev_node e.ev_in_link (kind_to_string e.ev_kind)
      (String.concat ","
         (Array.to_list (Array.map string_of_int e.ev_out_links)))
      (if e.ev_false_positive then " fp" else "")
      (if e.ev_loop_suspected then " loop-suspected" else "")
      (if e.ev_deliver_local then " local" else "")
      (if e.ev_ttl_expired > 0 then
         Printf.sprintf " ttl-expired=%d" e.ev_ttl_expired
       else "")
      (if e.ev_table >= 0 then Printf.sprintf " table=%d" e.ev_table else "")
      (if e.ev_engine >= 0 then
         Printf.sprintf " engine=%s" (engine_name e.ev_engine)
       else "")
      (if e.ev_stage >= 0 then Printf.sprintf " stage=%d" e.ev_stage else "")
      (if e.ev_depth > 0 then Printf.sprintf " depth=%d" e.ev_depth else "")

  let clear () =
    List.iter
      (fun r ->
        Array.fill r.buf 0 r.cap dummy;
        r.written <- 0)
      (Atomic.get rings)
end

(* ---- span trees ------------------------------------------------------ *)

(* Off-hot-path reconstruction of one publication's trace events into a
   span tree, plus the runtime cross-check against the expected delivery
   set — the dynamic twin of [Netcheck.check_partition].  Parent
   resolution is structural: an event that arrived over dense link [l]
   in stage [s] is a child of the event that last emitted [l] in [s].
   All of this walks ring snapshots; nothing here runs per decision. *)

module Span = struct
  type t = { sp_event : Trace.event; mutable sp_children : t list }

  type anomaly =
    | Loop of int  (* a decision at this node flagged a suspected loop *)
    | Revisit of int  (* node reached more than once within one stage *)
    | Duplicate_activation of int  (* stage handed off more than once *)
    | Orphan of int  (* parent event missing: ring overflow or gap *)

  type severity = Warning | Error

  (* Revisits happen under honest Bloom false positives and orphans
     under ring overflow, so both only warn; loops and duplicate stage
     activations violate delivery semantics outright. *)
  let severity = function
    | Loop _ | Duplicate_activation _ -> Error
    | Revisit _ | Orphan _ -> Warning

  let anomaly_to_string = function
    | Loop n -> Printf.sprintf "loop suspected at node %d" n
    | Revisit n -> Printf.sprintf "node %d reached more than once" n
    | Duplicate_activation s ->
      Printf.sprintf "stage %d activated more than once" s
    | Orphan n ->
      Printf.sprintf "orphan span at node %d (parent event lost)" n

  type tree = {
    tr_packet : int;
    tr_roots : t list;
    tr_events : Trace.event list;
    tr_anomalies : anomaly list;
  }

  let reconstruct evs =
    let pid = match evs with [] -> -1 | e :: _ -> e.ev_packet in
    let by_link : (int * int, t) Hashtbl.t = Hashtbl.create 64 in
    let arrivals : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
    let activations : (int, int) Hashtbl.t = Hashtbl.create 8 in
    let roots = ref [] and anomalies = ref [] in
    let bump tbl k =
      let n = match Hashtbl.find_opt tbl k with Some n -> n | None -> 0 in
      Hashtbl.replace tbl k (n + 1);
      n + 1
    in
    List.iter
      (fun e ->
        let sp = { sp_event = e; sp_children = [] } in
        (match e.ev_kind with
         | Stitch_handoff ->
           Array.iter
             (fun stage ->
               if bump activations stage = 2 then
                 anomalies := Duplicate_activation stage :: !anomalies)
             e.ev_out_links
         | Hop | Drop_fill | Drop_loop | Drop_bad_table | Recovery_activation
           ->
           if bump arrivals (e.ev_stage, e.ev_node) = 2 then
             anomalies := Revisit e.ev_node :: !anomalies);
        (* Only an actual loop-cache veto is a Loop anomaly.  The
           loop_suspected flag is honest Bloom background — dense
           filters suspect loops on every reverse link — and is
           already metered by the engines' suspicion counters. *)
        (match e.ev_kind with
         | Drop_loop -> anomalies := Loop e.ev_node :: !anomalies
         | _ -> ());
        (if e.ev_in_link < 0 then roots := sp :: !roots
         else
           match Hashtbl.find_opt by_link (e.ev_stage, e.ev_in_link) with
           | Some parent -> parent.sp_children <- sp :: parent.sp_children
           | None ->
             anomalies := Orphan e.ev_node :: !anomalies;
             roots := sp :: !roots);
        match e.ev_kind with
        | Stitch_handoff -> ()
        | Hop | Drop_fill | Drop_loop | Drop_bad_table | Recovery_activation
          ->
          Array.iter
            (fun l -> Hashtbl.replace by_link (e.ev_stage, l) sp)
            e.ev_out_links)
      evs;
    {
      tr_packet = pid;
      tr_roots = List.rev !roots;
      tr_events = evs;
      tr_anomalies = List.rev !anomalies;
    }

  let of_packet pid = reconstruct (Trace.packet_events pid)

  let rec size sp = List.fold_left (fun acc c -> acc + size c) 1 sp.sp_children

  let rec depth sp =
    1 + List.fold_left (fun acc c -> max acc (depth c)) 0 sp.sp_children

  let has_errors t =
    List.exists
      (fun a -> match severity a with Error -> true | Warning -> false)
      t.tr_anomalies

  (* ---- runtime cross-check ------------------------------------------- *)

  type verdict = {
    vd_ok : bool;
    vd_complete : bool;  (* no orphans: the ring held the whole trace *)
    vd_delivered : int list;  (* sorted nodes the trace says were reached *)
    vd_missing : int list;  (* expected but not reached *)
    vd_unexpected : int list;  (* reached but not expected *)
    vd_anomalies : anomaly list;
  }

  let crosscheck ~dst_of ~expected t =
    let delivered = Trace.delivery_set ~dst_of t.tr_events in
    let missing =
      List.filter
        (fun n -> not (List.exists (Int.equal n) delivered))
        expected
    and unexpected =
      List.filter
        (fun n -> not (List.exists (Int.equal n) expected))
        delivered
    in
    let complete =
      not
        (List.exists
           (function Orphan _ -> true | _ -> false)
           t.tr_anomalies)
    in
    let set_ok =
      match (missing, unexpected) with [], [] -> true | _ -> false
    in
    {
      vd_ok = set_ok && complete && not (has_errors t);
      vd_complete = complete;
      vd_delivered = delivered;
      vd_missing = missing;
      vd_unexpected = unexpected;
      vd_anomalies = t.tr_anomalies;
    }

  let verdict_to_string v =
    let ints l = String.concat "," (List.map string_of_int l) in
    Printf.sprintf "ok=%b complete=%b delivered=[%s] missing=[%s] \
                    unexpected=[%s] anomalies=[%s]"
      v.vd_ok v.vd_complete (ints v.vd_delivered) (ints v.vd_missing)
      (ints v.vd_unexpected)
      (String.concat "; " (List.map anomaly_to_string v.vd_anomalies))
end

(* ---- reset ---------------------------------------------------------- *)

let reset () =
  List.iter
    (fun it ->
      Atomic.set it.gauge 0;
      List.iter
        (fun c ->
          Array.fill c.ints 0 (Array.length c.ints) 0;
          if Array.length c.floats > 0 then
            Array.fill c.floats 0 (Array.length c.floats) 0.0)
        (cells_of it))
    (Atomic.get items);
  Trace.clear ()

(* ---- exporters ------------------------------------------------------ *)

module Export = struct
  (* Exposition-format escaping is position-dependent: HELP text escapes
     only backslash and newline, label values additionally escape the
     double quote.  One shared routine used to over-escape HELP. *)
  let escape_with ~quote s =
    let b = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '"' when quote -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let escape_help s = escape_with ~quote:false s
  let escape_label s = escape_with ~quote:true s

  (* Kept for callers that predate the split; label-value semantics. *)
  let escape = escape_label

  let label_string ?extra labels =
    let labels = match extra with None -> labels | Some kv -> labels @ [ kv ] in
    if labels = [] then ""
    else
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v))
             labels)
      ^ "}"

  (* Deterministic family order: by metric name, then by the rendered
     label set (so vec members don't shuffle with registration order),
     then registration id as the tie-break — exports diff cleanly. *)
  let sorted_items () =
    List.stable_sort
      (fun a b ->
        let c = String.compare a.name b.name in
        if c <> 0 then c
        else
          let c =
            String.compare (label_string a.labels) (label_string b.labels)
          in
          if c <> 0 then c else Int.compare a.id b.id)
      (Atomic.get items)

  (* Items grouped into metric families (equal names), preserving the
     sorted order above.  A family shares one TYPE line and takes its
     HELP from the first member that has one. *)
  let families () =
    let rec group = function
      | [] -> []
      | it :: _ as l ->
        let same, rest =
          List.partition (fun x -> String.equal x.name it.name) l
        in
        same :: group rest
    in
    group (sorted_items ())

  let float_str v =
    if Float.is_integer v && Float.abs v < 1e15 then
      Printf.sprintf "%.0f" v
    else Printf.sprintf "%g" v

  (* Structured samples for programmatic consumers (the serve snapshot
     diff); same deterministic order as the text exposition. *)
  type value =
    | Vcounter of int
    | Vgauge of int
    | Vhistogram of Histogram.summary

  let samples () =
    List.map
      (fun it ->
        let v =
          match it.kind with
          | Kcounter -> Vcounter (Counter.value it)
          | Kgauge -> Vgauge (Gauge.value it)
          | Khistogram -> Vhistogram (Histogram.summary it)
        in
        (it.name, it.labels, v))
      (sorted_items ())

  let prometheus () =
    let b = Buffer.create 4096 in
    List.iter
      (fun family ->
        match family with
        | [] -> ()
        | first :: _ ->
          let ty =
            match first.kind with
            | Kcounter -> "counter"
            | Kgauge -> "gauge"
            | Khistogram -> "histogram"
          in
          (match
             List.find_opt
               (fun it -> not (String.equal it.help ""))
               family
           with
          | Some it ->
            Buffer.add_string b
              (Printf.sprintf "# HELP %s %s\n" first.name
                 (escape_help it.help))
          | None -> ());
          Buffer.add_string b
            (Printf.sprintf "# TYPE %s %s\n" first.name ty);
          List.iter
            (fun it ->
              match it.kind with
              | Kcounter ->
                Buffer.add_string b
                  (Printf.sprintf "%s%s %d\n" it.name
                     (label_string it.labels) (Counter.value it))
              | Kgauge ->
                Buffer.add_string b
                  (Printf.sprintf "%s%s %d\n" it.name
                     (label_string it.labels) (Gauge.value it))
              | Khistogram ->
                let buckets, sum, _ = Histogram.merged it in
                let cum = ref 0 in
                for i = 0 to n_buckets - 1 do
                  if buckets.(i) > 0 then begin
                    cum := !cum + buckets.(i);
                    Buffer.add_string b
                      (Printf.sprintf "%s_bucket%s %d\n" it.name
                         (label_string it.labels
                            ~extra:("le", float_str (Histogram.le_bound i)))
                         !cum)
                  end
                done;
                Buffer.add_string b
                  (Printf.sprintf "%s_bucket%s %d\n" it.name
                     (label_string it.labels ~extra:("le", "+Inf"))
                     !cum);
                Buffer.add_string b
                  (Printf.sprintf "%s_sum%s %s\n" it.name
                     (label_string it.labels) (float_str sum));
                Buffer.add_string b
                  (Printf.sprintf "%s_count%s %d\n" it.name
                     (label_string it.labels) !cum))
            family)
      (families ());
    Buffer.contents b

  let json () =
    let b = Buffer.create 4096 in
    Buffer.add_string b "{\"metrics\":[";
    let first = ref true in
    let sep () = if !first then first := false else Buffer.add_string b "," in
    let labels_json labels =
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v))
             labels)
      ^ "}"
    in
    List.iter
      (fun it ->
        sep ();
        match it.kind with
        | Kcounter ->
          Buffer.add_string b
            (Printf.sprintf
               "{\"name\":\"%s\",\"type\":\"counter\",\"labels\":%s,\"value\":%d}"
               (escape it.name) (labels_json it.labels) (Counter.value it))
        | Kgauge ->
          Buffer.add_string b
            (Printf.sprintf
               "{\"name\":\"%s\",\"type\":\"gauge\",\"labels\":%s,\"value\":%d}"
               (escape it.name) (labels_json it.labels) (Gauge.value it))
        | Khistogram ->
          let s = Histogram.summary it in
          Buffer.add_string b
            (Printf.sprintf
               "{\"name\":\"%s\",\"type\":\"histogram\",\"labels\":%s,\"count\":%d,\"sum\":%g,\"mean\":%g,\"p50\":%g,\"p95\":%g,\"p99\":%g,\"p999\":%g,\"max\":%g}"
               (escape it.name) (labels_json it.labels) s.Histogram.count
               s.Histogram.sum s.Histogram.mean s.Histogram.p50 s.Histogram.p95
               s.Histogram.p99 s.Histogram.p999 s.Histogram.max))
      (sorted_items ());
    Buffer.add_string b
      (Printf.sprintf "],\"trace_dropped\":%d}" (Trace.dropped ()));
    Buffer.contents b

  (* ---- robust file dumps --------------------------------------------- *)

  let rec mkdir_p dir =
    if
      not
        (String.equal dir "" || String.equal dir "." || String.equal dir "/"
        || Sys.file_exists dir)
    then begin
      mkdir_p (Filename.dirname dir);
      try Sys.mkdir dir 0o755 with Sys_error _ -> ()
    end

  (* Creates missing parent directories; failures go to stderr instead
     of vanishing (an at_exit dump used to drop its exception on the
     floor).  Returns whether the write landed. *)
  let write_file ~path content =
    try
      mkdir_p (Filename.dirname path);
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc content);
      true
    with Sys_error msg ->
      Printf.eprintf "obs: dump to %s failed: %s\n%!" path msg;
      false

  let dump_on_exit ~path =
    at_exit (fun () -> ignore (write_file ~path (prometheus ())))
end

(* ---- flight recorder ------------------------------------------------- *)

(* Always-on bounded ring of per-publication frames (latency, event
   count, anomaly notes).  When an anomaly trigger fires the ring
   freezes — no more frames are pushed, so the buffer preserves the
   publications leading up to the incident — and a post-mortem JSON
   bundle (frames + the offending packet's trace + a full metrics
   snapshot) is dumped for offline replay.  [note] runs once per
   publication, off the per-decision hot path, and is gated on
   {!enabled}; with the no-op sink it is one atomic load. *)

module Flight = struct
  type trigger =
    | Delivery_mismatch
    | Duplicate_activation
    | Loop_detected
    | Latency_jump
    | Manual

  let trigger_to_string = function
    | Delivery_mismatch -> "delivery-mismatch"
    | Duplicate_activation -> "duplicate-activation"
    | Loop_detected -> "loop-detected"
    | Latency_jump -> "latency-jump"
    | Manual -> "manual"

  type frame = {
    fr_packet : int;  (* -1 when the publication was not sampled *)
    fr_latency : float;  (* seconds for the whole publication *)
    fr_events : int;  (* trace events the publication produced *)
    fr_anomalies : string list;
  }

  type dump = {
    dm_seq : int;
    dm_trigger : trigger;
    dm_packet : int;
    dm_detail : string;
    dm_path : string option;  (* None: no dir configured or write failed *)
  }

  let dummy_frame =
    { fr_packet = -1; fr_latency = 0.0; fr_events = 0; fr_anomalies = [] }

  type state = {
    fl_mu : Mutex.t;  (* guards every mutable field below *)
    fl_seq : int Atomic.t;  (* lock-free note subsampling counter *)
    mutable fl_frames : frame array;  (* bounded ring *)
    mutable fl_written : int;
    mutable fl_frozen : bool;
    mutable fl_dir : string option;
    mutable fl_factor : float;  (* latency trigger: p99 * factor *)
    mutable fl_min_samples : int;
    mutable fl_threshold : float;  (* cached; 0 = not yet armed *)
    mutable fl_dumps : dump list;  (* newest first *)
  }

  let state =
    {
      fl_mu = Mutex.create ();
      fl_seq = Atomic.make 0;
      fl_frames = Array.make 512 dummy_frame;
      fl_written = 0;
      fl_frozen = false;
      fl_dir = None;
      fl_factor = 8.0;
      fl_min_samples = 256;
      fl_threshold = 0.0;
      fl_dumps = [];
    }

  let configure ?dir ?capacity ?latency_factor ?min_samples () =
    Mutex.protect state.fl_mu (fun () ->
        (match dir with Some d -> state.fl_dir <- Some d | None -> ());
        (match capacity with
        | Some c when c > 0 ->
          state.fl_frames <- Array.make c dummy_frame;
          state.fl_written <- 0
        | _ -> ());
        (match latency_factor with
        | Some f when f > 1.0 -> state.fl_factor <- f
        | _ -> ());
        (match min_samples with
        | Some n when n > 0 -> state.fl_min_samples <- n
        | _ -> ());
        state.fl_threshold <- 0.0)

  (* Taking the recorder mutex and reading the clock on every delivery
     costs more than the whole counters budget, so untraced publications
     are subsampled 1-in-16 with one lock-free fetch_and_add: callers
     ask [want_note] up front and skip timing entirely when it says no.
     Traced publications always note (they already paid for tracing and
     carry the events a post-mortem wants); anomaly dumps bypass the
     subsampling via [fire]. *)
  let note_every = 16

  let want_note () =
    enabled () && Atomic.fetch_and_add state.fl_seq 1 land (note_every - 1) = 0

  let frames_locked () =
    let cap = Array.length state.fl_frames in
    let n = min state.fl_written cap in
    let first = state.fl_written - n in
    List.init n (fun i -> state.fl_frames.((first + i) mod cap))

  let frames () = Mutex.protect state.fl_mu frames_locked
  let frozen () = Mutex.protect state.fl_mu (fun () -> state.fl_frozen)
  let thaw () = Mutex.protect state.fl_mu (fun () -> state.fl_frozen <- false)
  let dumps () = Mutex.protect state.fl_mu (fun () -> state.fl_dumps)
  let dump_count () = List.length (dumps ())

  let last_dump () =
    Mutex.protect state.fl_mu (fun () ->
        match state.fl_dumps with [] -> None | d :: _ -> Some d)

  let reset () =
    Atomic.set state.fl_seq 0;
    Mutex.protect state.fl_mu (fun () ->
        Array.fill state.fl_frames 0 (Array.length state.fl_frames)
          dummy_frame;
        state.fl_written <- 0;
        state.fl_frozen <- false;
        state.fl_threshold <- 0.0;
        state.fl_dumps <- [])

  (* Recomputed every 128 notes so the per-publication cost stays O(1)
     amortised: sort the live frame latencies once, cache p99 * factor. *)
  let[@lipsin.allow_race
       "fl_threshold is written only here and in [reset], both under \
        fl_mu; the _locked suffix is the calling convention ([note] \
        holds the mutex at the only call site), which the lexical \
        guard analysis cannot see across the call"] recompute_threshold_locked
      () =
    let cap = Array.length state.fl_frames in
    let n = min state.fl_written cap in
    if n >= state.fl_min_samples then begin
      let lat = Array.init n (fun i -> state.fl_frames.(i).fr_latency) in
      Array.sort Float.compare lat;
      let p99 = lat.(min (n - 1) (int_of_float (0.99 *. float_of_int n))) in
      if p99 > 0.0 then state.fl_threshold <- p99 *. state.fl_factor
    end

  let json_str s = "\"" ^ Export.escape_label s ^ "\""

  let frame_json f =
    Printf.sprintf
      "{\"packet\":%d,\"latency\":%g,\"events\":%d,\"anomalies\":[%s]}"
      f.fr_packet f.fr_latency f.fr_events
      (String.concat "," (List.map json_str f.fr_anomalies))

  let bundle ~seq ~trigger ~packet ~detail ~frames ~trace =
    let b = Buffer.create 8192 in
    Buffer.add_string b
      (Printf.sprintf
         "{\"flight\":%d,\"trigger\":%s,\"packet\":%d,\"detail\":%s,"
         seq
         (json_str (trigger_to_string trigger))
         packet (json_str detail));
    Buffer.add_string b
      (Printf.sprintf "\"sampling\":%d,\"trace_dropped\":%d,"
         (Trace.sampling ()) (Trace.dropped ()));
    Buffer.add_string b "\"frames\":[";
    Buffer.add_string b (String.concat "," (List.map frame_json frames));
    Buffer.add_string b "],\"trace\":[";
    Buffer.add_string b (String.concat "," (List.map json_str trace));
    Buffer.add_string b "],\"metrics\":";
    Buffer.add_string b (Export.json ());
    Buffer.add_string b "}";
    Buffer.contents b

  (* Freeze-then-dump.  The freeze decision is taken under the lock; the
     bundle (which reads the registry and rings) is built outside it, so
     there is no lock-order interaction with the registry mutex. *)
  let fire ?(detail = "") trigger ~packet =
    if enabled () then begin
      let decision =
        Mutex.protect state.fl_mu (fun () ->
            if state.fl_frozen then None
            else begin
              state.fl_frozen <- true;
              Some (List.length state.fl_dumps, frames_locked ())
            end)
      in
      match decision with
      | None -> ()
      | Some (seq, frames) ->
        let trace =
          if packet >= 0 then
            List.map Trace.to_string (Trace.packet_events packet)
          else []
        in
        let body = bundle ~seq ~trigger ~packet ~detail ~frames ~trace in
        let path =
          match state.fl_dir with
          | None -> None
          | Some dir ->
            let p = Filename.concat dir (Printf.sprintf "flight-%d.json" seq)
            in
            if Export.write_file ~path:p body then Some p else None
        in
        Mutex.protect state.fl_mu (fun () ->
            state.fl_dumps <-
              {
                dm_seq = seq;
                dm_trigger = trigger;
                dm_packet = packet;
                dm_detail = detail;
                dm_path = path;
              }
              :: state.fl_dumps)
    end

  (* Per-publication entry point.  Pushes a frame unless frozen, then
     fires the latency trigger if this publication overshot the cached
     p99-based threshold. *)
  let note ?(anomalies = []) ?(events = 0) ~packet ~latency () =
    if enabled () then begin
      let jump =
        Mutex.protect state.fl_mu (fun () ->
            if not state.fl_frozen then begin
              let cap = Array.length state.fl_frames in
              state.fl_frames.(state.fl_written mod cap) <-
                {
                  fr_packet = packet;
                  fr_latency = latency;
                  fr_events = events;
                  fr_anomalies = anomalies;
                };
              state.fl_written <- state.fl_written + 1;
              if state.fl_written mod 128 = 0 then
                recompute_threshold_locked ()
            end;
            state.fl_threshold > 0.0 && latency > state.fl_threshold)
      in
      if jump then
        fire Latency_jump ~packet
          ~detail:
            (Printf.sprintf "latency %.9fs above threshold %.9fs" latency
               (Mutex.protect state.fl_mu (fun () -> state.fl_threshold)))
    end
end
