(* Runtime telemetry: domain-safe counters, gauges, log-scale
   histograms, a bounded per-domain trace ring, and Prometheus/JSON
   exporters.  Zero dependencies so every layer can instrument itself.

   Concurrency model: each metric owns one *cell* per domain, created
   lazily through domain-local storage and padded so neighbouring cells
   never share a cache line.  The hot path is therefore an atomic-free
   plain-int increment into this domain's private cell; aggregation
   happens only on read, by summing the cell list under the registry
   mutex.  The global sink switch is a single [Atomic.t bool]: with the
   no-op sink installed every instrument site is one atomic load and a
   branch. *)

(* ---- sink ----------------------------------------------------------- *)

let live = Atomic.make false

let enabled () = Atomic.get live

module Sink = struct
  type t = Noop | Memory

  let set = function
    | Noop -> Atomic.set live false
    | Memory -> Atomic.set live true

  let current () = if Atomic.get live then Memory else Noop
end

(* ---- registry ------------------------------------------------------- *)

type kind = Kcounter | Kgauge | Khistogram

(* One per-domain storage block.  [ints] is padded to a cache line for
   counters; histograms use the tail of [ints] as bucket slots and
   [floats] for the exact sum/max. *)
type cell = { ints : int array; floats : float array }

type item = {
  id : int;
  name : string;
  help : string;
  labels : (string * string) list;
  kind : kind;
  gauge : int Atomic.t;  (* gauges are rare-write: a single atomic *)
  mutable cells : cell list;  (* appended under [mu] *)
}

let mu = Mutex.create ()
let items : item list Atomic.t = Atomic.make []
let next_id = Atomic.make 0

let n_buckets = 64
let pad = 8  (* ints of padding = one 64-byte line *)

let alloc_cell = function
  | Kcounter | Kgauge -> { ints = Array.make pad 0; floats = [||] }
  | Khistogram ->
    (* bucket counts + a padding tail; floats: [|sum; max; pad...|] *)
    { ints = Array.make (n_buckets + pad) 0; floats = Array.make pad 0.0 }

let same_labels a b =
  List.length a = List.length b
  && List.for_all2
       (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && String.equal v1 v2)
       a b

let register kind ?(help = "") ?(labels = []) name =
  Mutex.protect mu (fun () ->
      let existing =
        List.find_opt
          (fun it ->
            it.kind = kind && String.equal it.name name
            && same_labels it.labels labels)
          (Atomic.get items)
      in
      match existing with
      | Some it -> it
      | None ->
        let it =
          {
            id = Atomic.fetch_and_add next_id 1;
            name;
            help;
            labels;
            kind;
            gauge = Atomic.make 0;
            cells = [];
          }
        in
        Atomic.set items (it :: Atomic.get items);
        it)

(* ---- domain-local cell lookup --------------------------------------- *)

type ring = {
  mutable buf : event array;
  cap : int;
  mutable written : int;  (* total events ever recorded *)
}

and event = {
  ev_seq : int;  (* ring-local write index: orders events of one domain *)
  ev_packet : int;
  ev_node : int;
  ev_in_link : int;  (* dense link index, -1 when the packet originates *)
  ev_kind : event_kind;
  ev_out_links : int array;  (* dense indexes of links the copy took *)
  ev_false_positive : bool;  (* some admitted link was off the intended tree *)
  ev_loop_suspected : bool;
  ev_deliver_local : bool;
  ev_ttl_expired : int;  (* admitted links the TTL refused *)
}

and event_kind =
  | Hop
  | Drop_fill
  | Drop_loop
  | Drop_bad_table
  | Recovery_activation

type local_table = { mutable tbl : cell option array; mutable ring : ring option }

let dls = Domain.DLS.new_key (fun () -> { tbl = [||]; ring = None })

let[@lipsin.allow_alloc
     "first-touch registration allocates the per-domain cell; \
      steady-state lookups return the cached cell (checked at 0 \
      words/op by bench --alloc)"] local_cell it =
  let lt = Domain.DLS.get dls in
  let n = Array.length lt.tbl in
  if it.id >= n then begin
    let grown = Array.make (it.id + 8) None in
    Array.blit lt.tbl 0 grown 0 n;
    lt.tbl <- grown
  end;
  match lt.tbl.(it.id) with
  | Some c -> c
  | None ->
    let c = alloc_cell it.kind in
    lt.tbl.(it.id) <- Some c;
    Mutex.protect mu (fun () -> it.cells <- c :: it.cells);
    c

let cells_of it = Mutex.protect mu (fun () -> it.cells)

(* ---- counters ------------------------------------------------------- *)

module Counter = struct
  type t = item

  let make ?help ?labels name = register Kcounter ?help ?labels name

  (* The domain-local raw cell, for hot loops that checked {!enabled}
     once: bump index 0 with plain int stores. *)
  let local t = (local_cell t).ints

  let[@lipsin.noalloc] add t n =
    if Atomic.get live then begin
      let c = (local_cell t).ints in
      c.(0) <- c.(0) + n
    end

  let[@lipsin.noalloc] incr t = add t 1

  let value t = List.fold_left (fun acc c -> acc + c.ints.(0)) 0 (cells_of t)

  type vec = {
    v_name : string;
    v_help : string;
    v_label : string;
    v_mu : Mutex.t;  (* guards v_cells growth and slot initialisation *)
    mutable v_cells : t option array;
  }

  let vec ?(help = "") name ~label =
    {
      v_name = name;
      v_help = help;
      v_label = label;
      v_mu = Mutex.create ();
      v_cells = Array.make 8 None;
    }

  (* The unlocked fast-path read is safe under the OCaml memory model
     (no tearing of mutable-field reads); a stale miss just falls
     through to the locked slow path.  [v_mu] nests outside the
     registry's [mu] (taken by [make]) and never the other way, so
     there is no lock-order cycle. *)
  let cell v i =
    let i = max 0 i in
    match if i < Array.length v.v_cells then v.v_cells.(i) else None with
    | Some c -> c
    | None ->
      Mutex.protect v.v_mu (fun () ->
          if i >= Array.length v.v_cells then begin
            let grown = Array.make (i + 8) None in
            Array.blit v.v_cells 0 grown 0 (Array.length v.v_cells);
            v.v_cells <- grown
          end;
          match v.v_cells.(i) with
          | Some c -> c
          | None ->
            let c =
              make
                ~help:v.v_help
                ~labels:[ (v.v_label, string_of_int i) ]
                v.v_name
            in
            v.v_cells.(i) <- Some c;
            c)
end

module Gauge = struct
  type t = item

  let make ?help ?labels name = register Kgauge ?help ?labels name
  let set t n = if Atomic.get live then Atomic.set t.gauge n
  let value t = Atomic.get t.gauge
end

(* ---- histograms ----------------------------------------------------- *)

(* Log-scale buckets: bucket [i] holds observations in
   (2^(i-32), 2^(i-31)], i.e. the upper bound of bucket [i] is
   2^(i-31) — bucket 31 is (0.5, 1], bucket 34 is (4, 8].  Everything
   non-positive lands in bucket 0, everything above 2^32 in the last.
   Quantiles interpolate linearly inside the bucket and are clamped to
   the exact tracked max. *)

module Histogram = struct
  type t = item

  let make ?help ?labels name = register Khistogram ?help ?labels name

  (* Allocation-free on purpose: [Float.frexp] boxes a tuple per call
     and this runs once per forwarding decision.  Doubling/halving a
     local float compiles to unboxed arithmetic, and the hot
     observations — hop counts, admitted links, traversals — are small
     integers resolved by one table lookup. *)
  let bucket_slow v =
    let i = ref 31 and x = ref 1.0 in
    if v <= 1.0 then
      while !i > 0 && v <= !x /. 2.0 do
        x := !x /. 2.0;
        decr i
      done
    else
      while !i < n_buckets - 1 && v > !x do
        x := !x *. 2.0;
        incr i
      done;
    !i

  (* Bucket boundaries above 1.0 are integer powers of two, so any v in
     (1, 1024] shares its bucket with [ceil v]. *)
  let small =
    Array.init 1025 (fun i -> if i = 0 then 0 else bucket_slow (float_of_int i))

  let[@lipsin.inbounds] bucket_of v =
    if v <= 0.0 then 0
    else if v >= 1.0 && v <= 1024.0 then
      (Array.unsafe_get small
         (int_of_float (Float.ceil v))
       [@lipsin.allow_unchecked
         "float-guarded: 1.0 <= v <= 1024.0 so ceil v lands in [1, 1024] \
          and small has 1025 entries; the guard is float arithmetic the \
          affine domain cannot see"])
    else bucket_slow v

  let le_bound i = Float.ldexp 1.0 (i - 31)

  type cells = cell

  let local t = local_cell t

  (* Unconditional: for hot paths that checked {!enabled} themselves.
     The unsafe accesses are covered by construction: [bucket_of] clamps
     to [0, n_buckets) and cells carry [n_buckets + pad] ints and [pad]
     floats. *)
  let[@lipsin.noalloc]
     [@lipsin.allow_unchecked
       "covered by construction: bucket_of clamps to [0, n_buckets) and \
        histogram cells carry n_buckets + pad ints and pad >= 2 floats \
        (cell_of_kind); the cell type is shared with counters, so the \
        bound is not expressible as a type-keyed layout fact"] record c v
      =
    let i = bucket_of v in
    Array.unsafe_set c.ints i (Array.unsafe_get c.ints i + 1);
    Array.unsafe_set c.floats 0 (Array.unsafe_get c.floats 0 +. v);
    if v > Array.unsafe_get c.floats 1 then Array.unsafe_set c.floats 1 v

  (* The per-decision fast lane: hop counts and admitted-link counts are
     small non-negative ints, so the bucket is one table load and no
     float rounding runs at all. *)
  let[@lipsin.noalloc] [@lipsin.inbounds] record_int c n =
    (* the small-table read is statically certified: 1 <= n <= 1024
       against the 1025-entry toplevel array *)
    let i =
      if n <= 0 then 0
      else if n <= 1024 then Array.unsafe_get small n
      else bucket_slow (float_of_int n)
    in
    let v = float_of_int n in
    (Array.unsafe_set c.ints i (Array.unsafe_get c.ints i + 1)
     [@lipsin.allow_unchecked
       "covered by construction: bucket indices stay in [0, n_buckets) \
        and histogram cells carry n_buckets + pad ints (cell_of_kind); \
        the cell type is shared with counters, so the bound is not \
        expressible as a type-keyed layout fact"]);
    (Array.unsafe_set c.floats 0 (Array.unsafe_get c.floats 0 +. v)
     [@lipsin.allow_unchecked
       "covered by construction: histogram cells carry pad >= 2 floats \
        (cell_of_kind); shared cell type, see above"]);
    if v > (Array.unsafe_get c.floats 1
            [@lipsin.allow_unchecked
              "covered by construction: histogram cells carry pad >= 2 \
               floats (cell_of_kind); shared cell type, see above"])
    then
      (Array.unsafe_set c.floats 1 v
       [@lipsin.allow_unchecked
         "covered by construction: histogram cells carry pad >= 2 floats \
          (cell_of_kind); shared cell type, see above"])

  let observe t v = if Atomic.get live then record (local_cell t) v
  let observe_int t n = if Atomic.get live then record_int (local_cell t) n

  type summary = {
    count : int;
    sum : float;
    mean : float;
    p50 : float;
    p95 : float;
    p99 : float;
    max : float;
  }

  let merged t =
    let buckets = Array.make n_buckets 0 in
    let sum = ref 0.0 and mx = ref 0.0 in
    List.iter
      (fun c ->
        for i = 0 to n_buckets - 1 do
          buckets.(i) <- buckets.(i) + c.ints.(i)
        done;
        sum := !sum +. c.floats.(0);
        if c.floats.(1) > !mx then mx := c.floats.(1))
      (cells_of t);
    (buckets, !sum, !mx)

  let quantile buckets total mx q =
    if total = 0 then 0.0
    else begin
      let rank = q *. float_of_int total in
      let cum = ref 0 and result = ref mx and stop = ref false in
      for i = 0 to n_buckets - 1 do
        if not !stop then begin
          let c = buckets.(i) in
          if c > 0 && float_of_int (!cum + c) >= rank then begin
            let lo = if i = 0 then 0.0 else le_bound (i - 1) in
            let hi = le_bound i in
            let within = (rank -. float_of_int !cum) /. float_of_int c in
            result := lo +. ((hi -. lo) *. within);
            stop := true
          end;
          cum := !cum + c
        end
      done;
      if !result > mx then mx else !result
    end

  let summary t =
    let buckets, sum, mx = merged t in
    let total = Array.fold_left ( + ) 0 buckets in
    {
      count = total;
      sum;
      mean = (if total = 0 then 0.0 else sum /. float_of_int total);
      p50 = quantile buckets total mx 0.50;
      p95 = quantile buckets total mx 0.95;
      p99 = quantile buckets total mx 0.99;
      max = mx;
    }
end

(* ---- trace ring ----------------------------------------------------- *)

module Trace = struct
  type nonrec event = event = {
    ev_seq : int;
    ev_packet : int;
    ev_node : int;
    ev_in_link : int;
    ev_kind : event_kind;
    ev_out_links : int array;
    ev_false_positive : bool;
    ev_loop_suspected : bool;
    ev_deliver_local : bool;
    ev_ttl_expired : int;
  }

  type kind = event_kind =
    | Hop
    | Drop_fill
    | Drop_loop
    | Drop_bad_table
    | Recovery_activation

  type nonrec ring = ring

  let recording_flag = Atomic.make true
  let default_capacity = Atomic.make 16384
  let rings : ring list Atomic.t = Atomic.make []
  let packet_ids = Atomic.make 0

  let set_recording b = Atomic.set recording_flag b
  let recording () = Atomic.get live && Atomic.get recording_flag
  let set_capacity n = Atomic.set default_capacity (max 1 n)
  let next_packet_id () = Atomic.fetch_and_add packet_ids 1

  let dummy =
    {
      ev_seq = -1;
      ev_packet = -1;
      ev_node = -1;
      ev_in_link = -1;
      ev_kind = Hop;
      ev_out_links = [||];
      ev_false_positive = false;
      ev_loop_suspected = false;
      ev_deliver_local = false;
      ev_ttl_expired = 0;
    }

  let local () =
    let lt = Domain.DLS.get dls in
    match lt.ring with
    | Some r -> r
    | None ->
      let cap = Atomic.get default_capacity in
      let r = { buf = Array.make cap dummy; cap; written = 0 } in
      lt.ring <- Some r;
      Mutex.protect mu (fun () -> Atomic.set rings (r :: Atomic.get rings));
      r

  (* Lock-free: only the owning domain writes its ring; when full the
     oldest event is overwritten and accounted in {!dropped}. *)
  let record r ~packet ~node ~in_link ~kind ~out_links ~false_positive
      ~loop_suspected ~deliver_local ~ttl_expired =
    let e =
      {
        ev_seq = r.written;
        ev_packet = packet;
        ev_node = node;
        ev_in_link = in_link;
        ev_kind = kind;
        ev_out_links = out_links;
        ev_false_positive = false_positive;
        ev_loop_suspected = loop_suspected;
        ev_deliver_local = deliver_local;
        ev_ttl_expired = ttl_expired;
      }
    in
    r.buf.(r.written mod r.cap) <- e;
    r.written <- r.written + 1

  let ring_events r =
    let n = min r.written r.cap in
    let first = r.written - n in
    List.init n (fun i -> r.buf.((first + i) mod r.cap))

  let events () =
    let all =
      List.concat_map ring_events (Atomic.get rings)
    in
    List.stable_sort
      (fun a b ->
        let c = Int.compare a.ev_packet b.ev_packet in
        if c <> 0 then c else Int.compare a.ev_seq b.ev_seq)
      all

  let packet_events pid =
    List.filter (fun e -> e.ev_packet = pid) (events ())

  let dropped () =
    List.fold_left
      (fun acc r -> acc + max 0 (r.written - r.cap))
      0 (Atomic.get rings)

  (* Replay a per-packet event stream back into the set of nodes the
     packet visited: the origin event's node plus the destination of
     every link a copy actually took.  [dst_of] maps a dense link index
     to its destination node (the trace itself is graph-agnostic). *)
  let delivery_set ~dst_of evs =
    let nodes = Hashtbl.create 32 in
    List.iter
      (fun e ->
        if e.ev_in_link < 0 then Hashtbl.replace nodes e.ev_node ();
        Array.iter (fun l -> Hashtbl.replace nodes (dst_of l) ()) e.ev_out_links)
      evs;
    List.sort Int.compare (Hashtbl.fold (fun v () acc -> v :: acc) nodes [])

  let kind_to_string = function
    | Hop -> "hop"
    | Drop_fill -> "drop-fill"
    | Drop_loop -> "drop-loop"
    | Drop_bad_table -> "drop-bad-table"
    | Recovery_activation -> "recovery-activation"

  let to_string e =
    Printf.sprintf
      "pkt=%d seq=%d node=%d in=%d %s out=[%s]%s%s%s%s"
      e.ev_packet e.ev_seq e.ev_node e.ev_in_link (kind_to_string e.ev_kind)
      (String.concat ","
         (Array.to_list (Array.map string_of_int e.ev_out_links)))
      (if e.ev_false_positive then " fp" else "")
      (if e.ev_loop_suspected then " loop-suspected" else "")
      (if e.ev_deliver_local then " local" else "")
      (if e.ev_ttl_expired > 0 then
         Printf.sprintf " ttl-expired=%d" e.ev_ttl_expired
       else "")

  let clear () =
    List.iter
      (fun r ->
        Array.fill r.buf 0 r.cap dummy;
        r.written <- 0)
      (Atomic.get rings)
end

(* ---- reset ---------------------------------------------------------- *)

let reset () =
  List.iter
    (fun it ->
      Atomic.set it.gauge 0;
      List.iter
        (fun c ->
          Array.fill c.ints 0 (Array.length c.ints) 0;
          if Array.length c.floats > 0 then
            Array.fill c.floats 0 (Array.length c.floats) 0.0)
        (cells_of it))
    (Atomic.get items);
  Trace.clear ()

(* ---- exporters ------------------------------------------------------ *)

module Export = struct
  let escape s =
    let b = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let label_string ?extra labels =
    let labels = match extra with None -> labels | Some kv -> labels @ [ kv ] in
    if labels = [] then ""
    else
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape v)) labels)
      ^ "}"

  let sorted_items () =
    List.stable_sort
      (fun a b ->
        let c = String.compare a.name b.name in
        if c <> 0 then c else Int.compare a.id b.id)
      (Atomic.get items)

  let float_str v =
    if Float.is_integer v && Float.abs v < 1e15 then
      Printf.sprintf "%.0f" v
    else Printf.sprintf "%g" v

  let prometheus () =
    let b = Buffer.create 4096 in
    let last_name = ref "" in
    let header it ty =
      if not (String.equal !last_name it.name) then begin
        last_name := it.name;
        if not (String.equal it.help "") then
          Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" it.name (escape it.help));
        Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" it.name ty)
      end
    in
    List.iter
      (fun it ->
        match it.kind with
        | Kcounter ->
          header it "counter";
          Buffer.add_string b
            (Printf.sprintf "%s%s %d\n" it.name (label_string it.labels)
               (Counter.value it))
        | Kgauge ->
          header it "gauge";
          Buffer.add_string b
            (Printf.sprintf "%s%s %d\n" it.name (label_string it.labels)
               (Gauge.value it))
        | Khistogram ->
          header it "histogram";
          let buckets, sum, _ = Histogram.merged it in
          let cum = ref 0 in
          for i = 0 to n_buckets - 1 do
            if buckets.(i) > 0 then begin
              cum := !cum + buckets.(i);
              Buffer.add_string b
                (Printf.sprintf "%s_bucket%s %d\n" it.name
                   (label_string it.labels
                      ~extra:("le", float_str (Histogram.le_bound i)))
                   !cum)
            end
          done;
          Buffer.add_string b
            (Printf.sprintf "%s_bucket%s %d\n" it.name
               (label_string it.labels ~extra:("le", "+Inf"))
               !cum);
          Buffer.add_string b
            (Printf.sprintf "%s_sum%s %s\n" it.name (label_string it.labels)
               (float_str sum));
          Buffer.add_string b
            (Printf.sprintf "%s_count%s %d\n" it.name (label_string it.labels)
               !cum))
      (sorted_items ());
    Buffer.contents b

  let json () =
    let b = Buffer.create 4096 in
    Buffer.add_string b "{\"metrics\":[";
    let first = ref true in
    let sep () = if !first then first := false else Buffer.add_string b "," in
    let labels_json labels =
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v))
             labels)
      ^ "}"
    in
    List.iter
      (fun it ->
        sep ();
        match it.kind with
        | Kcounter ->
          Buffer.add_string b
            (Printf.sprintf
               "{\"name\":\"%s\",\"type\":\"counter\",\"labels\":%s,\"value\":%d}"
               (escape it.name) (labels_json it.labels) (Counter.value it))
        | Kgauge ->
          Buffer.add_string b
            (Printf.sprintf
               "{\"name\":\"%s\",\"type\":\"gauge\",\"labels\":%s,\"value\":%d}"
               (escape it.name) (labels_json it.labels) (Gauge.value it))
        | Khistogram ->
          let s = Histogram.summary it in
          Buffer.add_string b
            (Printf.sprintf
               "{\"name\":\"%s\",\"type\":\"histogram\",\"labels\":%s,\"count\":%d,\"sum\":%g,\"mean\":%g,\"p50\":%g,\"p95\":%g,\"p99\":%g,\"max\":%g}"
               (escape it.name) (labels_json it.labels) s.Histogram.count
               s.Histogram.sum s.Histogram.mean s.Histogram.p50 s.Histogram.p95
               s.Histogram.p99 s.Histogram.max))
      (sorted_items ());
    Buffer.add_string b
      (Printf.sprintf "],\"trace_dropped\":%d}" (Trace.dropped ()));
    Buffer.contents b

  let dump_on_exit ~path =
    at_exit (fun () ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc (prometheus ())))
end
