module Zfilter = Lipsin_bloom.Zfilter
module Lit = Lipsin_bloom.Lit
module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module Assignment = Lipsin_core.Assignment
module Net = Lipsin_sim.Net
module Run = Lipsin_sim.Run

type plan = {
  publisher : Graph.node;
  subscribers : Graph.node list;
  cores : Graph.node list;
  core_links : Graph.link list;
  virtuals : Virtual_link.t list;
  reference_tree : Graph.link list;
}

let top_degree_nodes graph ~count ~excluding =
  let nodes =
    List.init (Graph.node_count graph) (fun v -> (Graph.out_degree graph v, v))
  in
  nodes
  |> List.filter (fun (_, v) -> v <> excluding)
  |> List.sort (fun (da, va) (db, vb) ->
         if da <> db then Int.compare db da else Int.compare va vb)
  |> List.filteri (fun i _ -> i < count)
  |> List.map snd

let plan assignment rng ~publisher ~subscribers ~cores =
  if subscribers = [] then invalid_arg "Dense.plan: no subscribers";
  if cores <= 0 then invalid_arg "Dense.plan: cores must be positive";
  let graph = Assignment.graph assignment in
  let core_nodes = top_degree_nodes graph ~count:cores ~excluding:publisher in
  (* Hop distance from every core, for nearest-core assignment. *)
  let core_distances =
    List.map (fun c -> (c, Spt.distances graph ~root:c)) core_nodes
  in
  let nearest_core sub =
    List.fold_left
      (fun (best_core, best_dist) (core, dists) ->
        if dists.(sub) < best_dist then (core, dists.(sub))
        else (best_core, best_dist))
      (-1, max_int) core_distances
    |> fst
  in
  let by_core = Hashtbl.create 8 in
  List.iter
    (fun sub ->
      if sub <> publisher then begin
        let core = nearest_core sub in
        let existing = Option.value ~default:[] (Hashtbl.find_opt by_core core) in
        Hashtbl.replace by_core core (sub :: existing)
      end)
    subscribers;
  let vrng = rng in
  let virtuals =
    Hashtbl.fold
      (fun core subs acc ->
        let members = List.filter (fun s -> s <> core) subs in
        if members = [] then acc
        else
          let links = Spt.delivery_tree graph ~root:core ~subscribers:members in
          Virtual_link.define assignment vrng ~links :: acc)
      by_core []
  in
  let used_cores =
    Hashtbl.fold (fun core _ acc -> core :: acc) by_core [] |> List.sort Int.compare
  in
  let core_links =
    Spt.delivery_tree graph ~root:publisher ~subscribers:used_cores
  in
  let reference_tree = Spt.delivery_tree graph ~root:publisher ~subscribers in
  { publisher; subscribers; cores = used_cores; core_links; virtuals; reference_tree }

let zfilter assignment plan ~table =
  let params = Assignment.params assignment in
  let z = Zfilter.create ~m:params.Lit.m in
  List.iter (fun l -> Zfilter.add z (Assignment.tag assignment l ~table)) plan.core_links;
  List.iter (fun v -> Zfilter.add z (Virtual_link.tag v ~table)) plan.virtuals;
  z

type result = {
  outcome : Run.outcome;
  efficiency : float;
  all_delivered : bool;
  fill : float;
  stateless_fill : float;
}

let execute net plan ~table =
  let assignment = Net.assignment net in
  let z = zfilter assignment plan ~table in
  List.iter (Virtual_link.install net) plan.virtuals;
  let intended =
    (* For false-positive classification, the intended links are the
       core paths plus everything the virtual links cover. *)
    plan.core_links @ List.concat_map (fun v -> v.Virtual_link.links) plan.virtuals
  in
  let outcome =
    Run.deliver net ~src:plan.publisher ~table ~zfilter:z ~tree:intended
  in
  List.iter (Virtual_link.uninstall net) plan.virtuals;
  let stateless_fill =
    let params = Assignment.params assignment in
    let full = Zfilter.create ~m:params.Lit.m in
    List.iter
      (fun l -> Zfilter.add full (Assignment.tag assignment l ~table))
      plan.reference_tree;
    Zfilter.fill_factor full
  in
  {
    outcome;
    efficiency = Run.forwarding_efficiency outcome ~tree:plan.reference_tree;
    all_delivered = Run.all_reached outcome plan.subscribers;
    fill = Zfilter.fill_factor z;
    stateless_fill;
  }
