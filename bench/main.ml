(* Microbenchmarks for the LIPSIN reproduction, one group per paper
   table/figure plus the design-choice ablations DESIGN.md calls out.

   Groups:
   - alg1        per-decision cost of the forwarding primitive (Table 4/5's
                 inner loop), vs the LPM IP baselines
   - alg1-fast   the same decisions through the compiled Fastpath engine
                 (contiguous word tables, preallocated decision buffer)
   - delivery-fast  whole-tree deliveries through the fast path, plus the
                 Domain-parallel batch front-end
   - construct   zFilter construction + candidate selection (Sec. 3.2),
                 the sender-side cost behind Tables 2/3 and Fig. 5
   - header      wire encode/decode (the per-hop rewrite of Table 4)
   - delivery    whole-tree simulated deliveries (the unit of work behind
                 Tables 2/3 and Fig. 6)
   - ablation-m  Algorithm 1 at m = 120 / 248 / 504 (Sec. 4.2 discussion)
   - topology    tree computation + graph generation (the topology layer) *)

open Bechamel
open Toolkit
module Rng = Lipsin_util.Rng
module Bitvec = Lipsin_bitvec.Bitvec
module Lit = Lipsin_bloom.Lit
module Zfilter = Lipsin_bloom.Zfilter
module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module Generator = Lipsin_topology.Generator
module As_presets = Lipsin_topology.As_presets
module Assignment = Lipsin_core.Assignment
module Candidate = Lipsin_core.Candidate
module Select = Lipsin_core.Select
module Net = Lipsin_sim.Net
module Run = Lipsin_sim.Run
module Parallel = Lipsin_sim.Parallel
module Node_engine = Lipsin_forwarding.Node_engine
module Fastpath = Lipsin_forwarding.Fastpath
module Bitsliced = Lipsin_forwarding.Bitsliced
module Header = Lipsin_packet.Header
module Lpm = Lipsin_baseline.Lpm

(* Shared fixtures, built once. *)

let graph = As_presets.as6461 ()
let assignment = Assignment.make Lit.default (Rng.of_int 1) graph
let net = Net.make ~loop_prevention:false assignment

let tree_of users =
  let rng = Rng.of_int (users * 131) in
  let picks = Rng.sample rng users (Graph.node_count graph) in
  ( picks.(0),
    Spt.delivery_tree graph ~root:picks.(0)
      ~subscribers:(Array.to_list (Array.sub picks 1 (users - 1))) )

let src16, tree16 = tree_of 16
let candidate16 = Candidate.build_one assignment ~tree:tree16 ~table:0
let zfilter16 = candidate16.Candidate.zfilter
let test_set16 = Select.default_test_set assignment ~tree:tree16

(* The hub's port LITs for the bare Algorithm 1 loop. *)
let hub =
  Graph.fold_nodes graph ~init:0 ~f:(fun best v ->
      if Graph.out_degree graph v > Graph.out_degree graph best then v else best)

let hub_lits =
  Array.of_list
    (List.map
       (fun l -> Assignment.tag assignment l ~table:0)
       (Graph.out_links graph hub))

let hub_engine = Node_engine.create assignment hub
let hub_fast = Fastpath.compile hub_engine
let hub_bits = Bitsliced.compile hub_engine
let fib5 = Lpm.reference_fib ()

let fib_full =
  let fib = Lpm.create () in
  let rng = Rng.of_int 2 in
  for _ = 1 to 200_000 do
    let len = 16 + Rng.int rng 9 in
    Lpm.add fib ~prefix:(Int64.to_int32 (Rng.int64 rng)) ~len
      ~next_hop:(Rng.int rng 16)
  done;
  fib

let alg1 =
  Test.make_grouped ~name:"alg1"
    [
      Test.make ~name:"zfilter-match-per-port"
        (Staged.stage (fun () -> Zfilter.matches zfilter16 ~lit:hub_lits.(0)));
      Test.make ~name:"alg1-all-ports"
        (Staged.stage (fun () ->
             Array.iter (fun lit -> ignore (Zfilter.matches zfilter16 ~lit)) hub_lits));
      Test.make ~name:"fill-limit-gate"
        (Staged.stage (fun () -> Zfilter.within_fill_limit zfilter16 ~limit:0.7));
      Test.make ~name:"engine-forward-full"
        (Staged.stage (fun () ->
             Node_engine.forward hub_engine ~table:0 ~zfilter:zfilter16
               ~in_link:None));
      Test.make ~name:"lpm-5-routes"
        (Staged.stage (fun () -> Lpm.lookup fib5 0xC0A80142l));
      Test.make ~name:"lpm-200k-routes"
        (Staged.stage (fun () -> Lpm.lookup fib_full 0xC0A80142l));
    ]

let alg1_fast =
  let batch256 = Array.make 256 (zfilter16, -1) in
  Test.make_grouped ~name:"alg1-fast"
    [
      Test.make ~name:"fastpath-decide-full"
        (Staged.stage (fun () ->
             Fastpath.decide hub_fast ~table:0 ~zfilter:zfilter16
               ~in_link_index:(-1)));
      Test.make ~name:"fastpath-batch-256"
        (Staged.stage (fun () ->
             Fastpath.decide_batch hub_fast ~table:0 batch256 ~f:(fun _ _ -> ())));
    ]

let alg1_bitsliced =
  let batch256 = Array.make 256 (zfilter16, -1) in
  Test.make_grouped ~name:"alg1-bitsliced"
    [
      Test.make ~name:"bitsliced-decide-full"
        (Staged.stage (fun () ->
             Bitsliced.decide hub_bits ~table:0 ~zfilter:zfilter16
               ~in_link_index:(-1)));
      Test.make ~name:"bitsliced-batch-256"
        (Staged.stage (fun () ->
             Bitsliced.decide_batch hub_bits ~table:0 batch256 ~f:(fun _ _ -> ())));
    ]

(* The SWAR popcount (satellite of the bit-sliced engine PR) vs the
   per-byte table loop it replaced, over a zFilter-sized span (31 bytes
   for m = 248). *)
let bitvec_group =
  let popbytes =
    Bytes.init 31 (fun i -> Char.chr (((i * 37) + 11) land 0xff))
  in
  let byte_table =
    Array.init 256 (fun i ->
        let rec pop n = if n = 0 then 0 else (n land 1) + pop (n lsr 1) in
        pop i)
  in
  Test.make_grouped ~name:"bitvec"
    [
      Test.make ~name:"popcount-swar-31B"
        (Staged.stage (fun () ->
             Bitvec.popcount_bytes popbytes ~pos:0 ~len:31));
      Test.make ~name:"popcount-per-byte-31B"
        (Staged.stage (fun () ->
             let count = ref 0 in
             for i = 0 to 30 do
               count := !count + byte_table.(Char.code (Bytes.get popbytes i))
             done;
             !count));
    ]

let construct =
  Test.make_grouped ~name:"construct"
    [
      Test.make ~name:"zfilter-build-16-users"
        (Staged.stage (fun () -> Candidate.build_one assignment ~tree:tree16 ~table:0));
      Test.make ~name:"candidates-d8"
        (Staged.stage (fun () -> Candidate.build assignment ~tree:tree16));
      Test.make ~name:"select-fpa"
        (let candidates = Candidate.build assignment ~tree:tree16 in
         Staged.stage (fun () -> Select.select_fpa candidates));
      Test.make ~name:"select-fpr"
        (let candidates = Candidate.build assignment ~tree:tree16 in
         Staged.stage (fun () ->
             Select.select_fpr assignment candidates ~test:test_set16));
    ]

let header =
  let h = Header.make ~d_index:0 ~zfilter:zfilter16 "0123456789abcdef" in
  let encoded = Header.encode h in
  Test.make_grouped ~name:"header"
    [
      Test.make ~name:"encode" (Staged.stage (fun () -> Header.encode h));
      Test.make ~name:"decode" (Staged.stage (fun () -> Header.decode encoded));
    ]

let delivery =
  let src4, tree4 = tree_of 4 in
  let c4 = Candidate.build_one assignment ~tree:tree4 ~table:0 in
  let src32, tree32 = tree_of 32 in
  let c32 = Candidate.build_one assignment ~tree:tree32 ~table:0 in
  Test.make_grouped ~name:"delivery"
    [
      Test.make ~name:"deliver-4-users"
        (Staged.stage (fun () ->
             Run.deliver net ~src:src4 ~table:0 ~zfilter:c4.Candidate.zfilter
               ~tree:tree4));
      Test.make ~name:"deliver-16-users"
        (Staged.stage (fun () ->
             Run.deliver net ~src:src16 ~table:0 ~zfilter:zfilter16 ~tree:tree16));
      Test.make ~name:"deliver-32-users"
        (Staged.stage (fun () ->
             Run.deliver net ~src:src32 ~table:0 ~zfilter:c32.Candidate.zfilter
               ~tree:tree32));
    ]

let delivery_fast =
  let src4, tree4 = tree_of 4 in
  let c4 = Candidate.build_one assignment ~tree:tree4 ~table:0 in
  let src32, tree32 = tree_of 32 in
  let c32 = Candidate.build_one assignment ~tree:tree32 ~table:0 in
  let jobs =
    Array.init 64 (fun i ->
        let users = 4 + (i mod 13) in
        let src, tree = tree_of users in
        let c = Candidate.build_one assignment ~tree ~table:0 in
        {
          Parallel.job_src = src;
          job_table = 0;
          job_zfilter = c.Candidate.zfilter;
          job_tree = tree;
        })
  in
  Test.make_grouped ~name:"delivery-fast"
    [
      Test.make ~name:"deliver-4-users-fast"
        (Staged.stage (fun () ->
             Run.deliver ~engine:`Fast net ~src:src4 ~table:0
               ~zfilter:c4.Candidate.zfilter ~tree:tree4));
      Test.make ~name:"deliver-16-users-fast"
        (Staged.stage (fun () ->
             Run.deliver ~engine:`Fast net ~src:src16 ~table:0 ~zfilter:zfilter16
               ~tree:tree16));
      Test.make ~name:"deliver-32-users-fast"
        (Staged.stage (fun () ->
             Run.deliver ~engine:`Fast net ~src:src32 ~table:0
               ~zfilter:c32.Candidate.zfilter ~tree:tree32));
      Test.make ~name:"parallel-64-jobs-4-domains"
        (Staged.stage (fun () ->
             Parallel.deliver_all ~domains:4 ~engine:`Fast assignment jobs));
    ]

let ablation_m =
  let bench_for m =
    let params = Lit.constant_k ~m ~d:1 ~k:5 in
    let asg = Assignment.make params (Rng.of_int 3) graph in
    let c = Candidate.build_one asg ~tree:tree16 ~table:0 in
    let lits =
      Array.of_list
        (List.map (fun l -> Assignment.tag asg l ~table:0) (Graph.out_links graph hub))
    in
    Test.make
      ~name:(Printf.sprintf "alg1-m%d" m)
      (Staged.stage (fun () ->
           Array.iter
             (fun lit -> ignore (Zfilter.matches c.Candidate.zfilter ~lit))
             lits))
  in
  Test.make_grouped ~name:"ablation-m" [ bench_for 120; bench_for 248; bench_for 504 ]

let topology =
  Test.make_grouped ~name:"topology"
    [
      Test.make ~name:"delivery-tree-16"
        (Staged.stage (fun () ->
             let rng = Rng.of_int 5 in
             let picks = Rng.sample rng 16 (Graph.node_count graph) in
             Spt.delivery_tree graph ~root:picks.(0)
               ~subscribers:(Array.to_list (Array.sub picks 1 15))));
      Test.make ~name:"generate-pref-attach-100"
        (Staged.stage (fun () ->
             Generator.pref_attach ~rng:(Rng.of_int 7) ~nodes:100 ~edges:170
               ~max_degree:16 ()));
    ]

let extensions =
  let module Split = Lipsin_core.Split in
  let module Adaptive = Lipsin_core.Adaptive in
  let module Message = Lipsin_control.Message in
  let module Store = Lipsin_cache.Store in
  let module Discovery = Lipsin_bootstrap.Discovery in
  let module Timed = Lipsin_sim.Timed in
  let _, tree40 =
    let rng = Rng.of_int 211 in
    let picks = Rng.sample rng 40 (Graph.node_count graph) in
    ( picks.(0),
      Spt.delivery_tree graph ~root:picks.(0)
        ~subscribers:(Array.to_list (Array.sub picks 1 39)) )
  in
  let adaptive = Adaptive.make ~d:4 ~k:5 (Rng.of_int 223) graph in
  let activate_msg =
    let lit = Lit.fresh Lit.default (Rng.of_int 227) in
    Message.Vlid_activate { nonce = Lit.nonce lit; tags = Lit.tags lit }
  in
  let encoded_msg = Message.encode activate_msg in
  let store = Store.create ~capacity:256 in
  for i = 0 to 255 do
    Store.insert store ~topic:(Int64.of_int i) ~payload:"seed"
  done;
  Test.make_grouped ~name:"extensions"
    [
      Test.make ~name:"split-plan-40-subs"
        (Staged.stage (fun () ->
             Split.plan ~fill_limit:0.4 assignment ~root:0
               ~subscribers:(Lipsin_topology.Spt.tree_nodes tree40)));
      Test.make ~name:"adaptive-choose"
        (Staged.stage (fun () ->
             Adaptive.choose adaptive ~tree:tree16 ~target_fpa:0.001 ()));
      Test.make ~name:"control-msg-encode"
        (Staged.stage (fun () -> Message.encode activate_msg));
      Test.make ~name:"control-msg-decode"
        (Staged.stage (fun () -> Message.decode encoded_msg));
      Test.make ~name:"cache-lookup-hit"
        (Staged.stage (fun () -> Store.lookup store ~topic:128L));
      Test.make ~name:"cache-insert-evict"
        (let counter = ref 1000 in
         Staged.stage (fun () ->
             incr counter;
             Store.insert store ~topic:(Int64.of_int !counter) ~payload:"x"));
      Test.make ~name:"discovery-full-run-ta2"
        (Staged.stage (fun () ->
             let d = Discovery.create (As_presets.ta2 ()) in
             Discovery.run d));
      Test.make ~name:"timed-deliver-16-users"
        (Staged.stage (fun () ->
             Timed.deliver net ~src:src16 ~table:0 ~zfilter:zfilter16));
    ]

let more_extensions =
  let module Multipath = Lipsin_core.Multipath in
  let module Persist = Lipsin_core.Persist in
  let module Fragment = Lipsin_packet.Fragment in
  let module Xor_code = Lipsin_fec.Xor_code in
  let persisted = Persist.to_string assignment in
  let message = String.init 4000 (fun i -> Char.chr (i mod 256)) in
  let fragments = Fragment.split ~mtu:1500 ~m:248 ~message_id:1l message in
  let window = List.init 8 (fun i -> String.make 1400 (Char.chr (65 + i))) in
  let repair_frame = Xor_code.repair window in
  let received = List.filteri (fun i _ -> i <> 3) (List.mapi (fun i p -> (i, p)) window) in
  Test.make_grouped ~name:"more-extensions"
    [
      Test.make ~name:"multipath-plan"
        (Staged.stage (fun () -> Multipath.plan assignment ~src:0 ~dst:100));
      Test.make ~name:"persist-encode"
        (Staged.stage (fun () -> Persist.to_string assignment));
      Test.make ~name:"persist-decode"
        (Staged.stage (fun () -> Persist.of_string graph persisted));
      Test.make ~name:"fragment-split-4k"
        (Staged.stage (fun () ->
             Fragment.split ~mtu:1500 ~m:248 ~message_id:1l message));
      Test.make ~name:"fragment-reassemble-4k"
        (Staged.stage (fun () ->
             let r = Fragment.reassembler () in
             List.iter (fun f -> ignore (Fragment.offer r f)) fragments));
      Test.make ~name:"xor-repair-8x1400"
        (Staged.stage (fun () -> Xor_code.repair window));
      Test.make ~name:"xor-recover-8x1400"
        (Staged.stage (fun () ->
             Xor_code.recover ~window_size:8 ~received ~repair:repair_frame));
    ]

let layering =
  let module Weights = Lipsin_topology.Weights in
  let module Overlay = Lipsin_recursive.Overlay in
  let weights = Weights.random graph (Rng.of_int 401) ~min:1.0 ~max:10.0 in
  let overlay =
    match
      Overlay.create ~underlay:assignment
        ~attach:(Rng.sample (Rng.of_int 409) 6 (Graph.node_count graph))
        ~edges:[ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 0) ]
        ()
    with
    | Ok o -> o
    | Error e -> failwith e
  in
  Test.make_grouped ~name:"layering"
    [
      Test.make ~name:"dijkstra-tree-16"
        (Staged.stage (fun () ->
             let rng = Rng.of_int 419 in
             let picks = Rng.sample rng 16 (Graph.node_count graph) in
             Weights.delivery_tree weights ~root:picks.(0)
               ~subscribers:(Array.to_list (Array.sub picks 1 15))));
      Test.make ~name:"overlay-publish-3-subs"
        (Staged.stage (fun () ->
             Overlay.publish overlay ~src:0 ~subscribers:[ 2; 4 ]));
    ]

(* --smoke: a one-iteration CI budget — proves every benchmark still
   runs without burning minutes of runner time. *)
let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv

(* --alloc: the runtime half of the allocation-freedom contract.  For
   every [@lipsin.noalloc] entry point `lipsin_lint --alloc` proves
   statically allocation-free, measure Gc.minor_words per op and fail
   if any gated entry allocates: static proof and runtime measurement
   must agree.  The loop-prevention variant is reported but not gated —
   its cache key is the one [@lipsin.allow_alloc]-suppressed site, so
   a non-zero reading there is the suppression working as documented,
   not drift.  Emits BENCH_PR7.json for the CI artifact. *)
let alloc_mode = Array.exists (fun a -> a = "--alloc") Sys.argv

let run_alloc () =
  let module Obs = Lipsin_obs.Obs in
  (* Engines without loop prevention: the configuration the noalloc
     proof covers end to end (decide's only suppressed allocation is
     the loop-cache key, which this build never takes). *)
  let hot_engine = Node_engine.create ~loop_prevention:false assignment hub in
  let hot_fast = Fastpath.compile hot_engine in
  let hot_bits = Bitsliced.compile hot_engine in
  let batch256 = Array.make 256 (zfilter16, -1) in
  let iters_hot = if smoke then 10_000 else 100_000 in
  let iters_batch = if smoke then 200 else 1_000 in
  let results = ref [] in
  let failures = ref [] in
  let measure name ~iters ~gated f =
    for _ = 1 to 100 do
      f ()
    done;
    let minor0 = Gc.minor_words () in
    for _ = 1 to iters do
      f ()
    done;
    let per_op = (Gc.minor_words () -. minor0) /. float_of_int iters in
    Printf.printf "  %-28s %8.3f minor words/op%s\n%!" name per_op
      (if gated then "  [gated: must be 0]" else "");
    results := (name, iters, per_op, gated) :: !results;
    if gated && per_op > 0.0 then failures := name :: !failures
  in
  Printf.printf "allocation-freedom check (Gc.minor_words per op)\n%!";
  measure "fastpath-decide" ~iters:iters_hot ~gated:true (fun () ->
      ignore
        (Fastpath.decide hot_fast ~table:0 ~zfilter:zfilter16
           ~in_link_index:(-1)));
  measure "fastpath-decide-batch" ~iters:iters_batch ~gated:true (fun () ->
      Fastpath.decide_batch hot_fast ~table:0 batch256 ~f:(fun _ _ -> ()));
  measure "bitsliced-decide" ~iters:iters_hot ~gated:true (fun () ->
      ignore
        (Bitsliced.decide hot_bits ~table:0 ~zfilter:zfilter16
           ~in_link_index:(-1)));
  measure "bitsliced-decide-batch" ~iters:iters_batch ~gated:true (fun () ->
      Bitsliced.decide_batch hot_bits ~table:0 batch256 ~f:(fun _ _ -> ()));
  measure "bitvec-popcount" ~iters:iters_hot ~gated:true (fun () ->
      ignore (Zfilter.popcount zfilter16));
  measure "bitvec-subset" ~iters:iters_hot ~gated:true (fun () ->
      ignore
        (Bitvec.subset
           (Zfilter.to_bitvec zfilter16)
           ~of_:(Zfilter.to_bitvec zfilter16)));
  (* Obs fast lanes, counters live: first touch registers the
     per-domain cell (the [@lipsin.allow_alloc] site in local_cell);
     the measured steady state must be allocation-free. *)
  Obs.Sink.set Obs.Sink.Memory;
  let c = Obs.Counter.make "bench_alloc_counter" in
  let h = Obs.Histogram.make "bench_alloc_hist" in
  let hc = Obs.Histogram.local h in
  measure "obs-counter-add" ~iters:iters_hot ~gated:true (fun () ->
      Obs.Counter.add c 1);
  measure "obs-hist-record-int" ~iters:iters_hot ~gated:true (fun () ->
      Obs.Histogram.record_int hc 7);
  Obs.Sink.set Obs.Sink.Noop;
  (* Context row: the suppressed loop-prevention cache key.  Reported,
     not gated — see the [@lipsin.allow_alloc] annotations. *)
  measure "fastpath-decide-loop-prevention" ~iters:iters_hot ~gated:false
    (fun () ->
      ignore
        (Fastpath.decide hub_fast ~table:0 ~zfilter:zfilter16
           ~in_link_index:(-1)));
  let entries = List.rev !results in
  let oc = open_out "BENCH_PR7.json" in
  Printf.fprintf oc "{\n  \"entries\": [\n";
  List.iteri
    (fun i (name, iters, per_op, gated) ->
      Printf.fprintf oc
        "    { \"name\": \"%s\", \"iters\": %d, \
         \"minor_words_per_op\": %.3f, \"noalloc_gated\": %b }%s\n"
        name iters per_op gated
        (if i = List.length entries - 1 then "" else ","))
    entries;
  Printf.fprintf oc "  ],\n  \"gate\": \"every noalloc_gated entry at 0.0\"\n}\n";
  close_out oc;
  match !failures with
  | [] -> Printf.printf "alloc check OK: all gated entries at 0 words/op\n%!"
  | names ->
    Printf.printf
      "FAIL: static noalloc proof disagrees with runtime allocation: %s\n%!"
      (String.concat ", " (List.rev names));
    exit 1

(* --obs: paired telemetry-overhead measurement.  Runs the fast-path
   delivery workload with the no-op sink, the memory sink (counters
   only), and the memory sink with tracing, interleaved in fine-grained
   slices (sub-millisecond) so scheduler bursts and clock drift land on
   all three configurations alike.  The reported overhead is the median
   of per-round counters/noop time ratios: a burst hitting one slice of
   a pair makes that round an outlier the median discards.  The
   counters-only overhead is the contract DESIGN.md states: > 3% fails
   the run.  Emits BENCH_PR4.json for the CI artifact. *)
let obs_mode = Array.exists (fun a -> a = "--obs") Sys.argv

let run_obs () =
  let module Obs = Lipsin_obs.Obs in
  let module Stats = Lipsin_util.Stats in
  let iters = if smoke then 50 else 120 in
  let rounds = if smoke then 60 else 250 in
  let deliver () =
    ignore
      (Run.deliver ~engine:`Fast net ~src:src16 ~table:0 ~zfilter:zfilter16
         ~tree:tree16)
  in
  let time_slice () =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      deliver ()
    done;
    Unix.gettimeofday () -. t0
  in
  let sample_every = 1024 in
  let configure = function
    | `Noop -> Obs.Sink.set Obs.Sink.Noop
    | `Counters ->
      Obs.Sink.set Obs.Sink.Memory;
      Obs.Trace.set_recording false
    | `Traced ->
      Obs.Sink.set Obs.Sink.Memory;
      Obs.Trace.set_recording true;
      Obs.Trace.set_sampling 1
    | `Sampled ->
      Obs.Sink.set Obs.Sink.Memory;
      Obs.Trace.set_recording true;
      Obs.Trace.set_sampling sample_every
  in
  let configs = [| `Noop; `Counters; `Traced; `Sampled |] in
  let n_cfg = Array.length configs in
  let samples = Array.make_matrix n_cfg rounds 0.0 in
  (* Warm every sink (engine compiles, Obs cells, trace ring). *)
  Array.iter (fun c -> configure c; ignore (time_slice ())) configs;
  (* Shuffle the order within each round: with a fixed order, slice i
     always inherits slice i-1's GC debt and the comparison tilts. *)
  let order_rng = Rng.of_int 0x0b5 in
  for r = 0 to rounds - 1 do
    let order = Rng.sample order_rng n_cfg n_cfg in
    Array.iter
      (fun i ->
        configure configs.(i);
        samples.(i).(r) <- time_slice ())
      order
  done;
  Obs.Trace.set_sampling 1;
  let median xs = Stats.percentile xs 50.0 in
  let ratios i =
    median (Array.init rounds (fun r -> samples.(i).(r) /. samples.(0).(r)))
  in
  let noop = median samples.(0) /. float_of_int iters *. 1e9 in
  let counters = noop *. ratios 1 in
  let traced = noop *. ratios 2 in
  let sampled = noop *. ratios 3 in
  (* Per-delivery latency distribution and allocation rate, measured
     with the instrumented (counters) configuration. *)
  configure `Counters;
  let lat_n = if smoke then 500 else 3000 in
  let lat = Array.init lat_n (fun _ ->
      let t0 = Unix.gettimeofday () in
      deliver ();
      (Unix.gettimeofday () -. t0) *. 1e9)
  in
  let minor0 = Gc.minor_words () in
  for _ = 1 to lat_n do deliver () done;
  let minor_per_op = (Gc.minor_words () -. minor0) /. float_of_int lat_n in
  configure `Noop;
  Obs.Trace.set_recording true;
  let p99 = Stats.percentile lat 99.0 in
  let overhead_counters = 100.0 *. ((counters -. noop) /. noop) in
  let overhead_traced = 100.0 *. ((traced -. noop) /. noop) in
  let overhead_sampled = 100.0 *. ((sampled -. noop) /. noop) in
  Printf.printf "telemetry overhead (deliver-16-users-fast, %d iters x %d rounds)\n" iters rounds;
  Printf.printf "  noop sink      %12.1f ns/op\n" noop;
  Printf.printf "  counters       %12.1f ns/op  (%+.2f%%)\n" counters overhead_counters;
  Printf.printf "  counters+trace %12.1f ns/op  (%+.2f%%)\n" traced overhead_traced;
  Printf.printf "  sampled 1/%-4d %12.1f ns/op  (%+.2f%%)\n" sample_every sampled
    overhead_sampled;
  Printf.printf "  p99 latency    %12.1f ns     minor words/op %.1f\n%!" p99 minor_per_op;
  (* `overhead` rows (config, ratio-vs-noop) are the shape lipsin_report
     extracts conclusions from; both files carry them. *)
  let overhead_rows =
    Printf.sprintf
      "  \"overhead\": [\n\
      \    { \"config\": \"counters\", \"ratio\": %.5f, \"ns_per_op\": %.1f },\n\
      \    { \"config\": \"traced\", \"ratio\": %.5f, \"ns_per_op\": %.1f },\n\
      \    { \"config\": \"sampled-1-in-%d\", \"ratio\": %.5f, \"ns_per_op\": %.1f }\n\
      \  ]"
      (counters /. noop) counters (traced /. noop) traced sample_every
      (sampled /. noop) sampled
  in
  let oc = open_out "BENCH_PR4.json" in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"deliver-16-users-fast\",\n\
    \  \"iters_per_round\": %d,\n\
    \  \"rounds\": %d,\n\
    \  \"noop_ns_per_op\": %.1f,\n\
    \  \"counters_ns_per_op\": %.1f,\n\
    \  \"traced_ns_per_op\": %.1f,\n\
    \  \"ops_per_sec\": %.1f,\n\
    \  \"p99_ns\": %.1f,\n\
    \  \"minor_words_per_op\": %.1f,\n\
    \  \"overhead_counters_pct\": %.3f,\n\
    \  \"overhead_traced_pct\": %.3f,\n\
     %s\n\
     }\n"
    iters rounds noop counters traced
    (1e9 /. counters)
    p99 minor_per_op overhead_counters overhead_traced overhead_rows;
  close_out oc;
  let oc = open_out "BENCH_PR9.json" in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"deliver-16-users-fast\",\n\
    \  \"iters_per_round\": %d,\n\
    \  \"rounds\": %d,\n\
    \  \"sample_every\": %d,\n\
    \  \"noop_ns_per_op\": %.1f,\n\
     %s,\n\
    \  \"gate\": \"sampled 1-in-%d tracing ratio < 1.03 vs noop sink\"\n\
     }\n"
    iters rounds sample_every noop overhead_rows sample_every;
  close_out oc;
  if overhead_counters > 3.0 then begin
    Printf.printf "FAIL: counters-only telemetry overhead %.2f%% > 3%%\n%!"
      overhead_counters;
    exit 1
  end;
  if sampled /. noop >= 1.03 then begin
    Printf.printf
      "FAIL: sampled 1-in-%d tracing overhead %.2f%% breaks the < 3%% gate\n%!"
      sample_every overhead_sampled;
    exit 1
  end

(* --sweep: two sweeps back to back.

   1. Scalar-vs-bit-sliced decision cost over node degree.  Star
      topologies isolate the per-port sweep (one hub, deg leaves, no
      other structure); the zFilter pool mixes sparse and denser
      filters so both engines run their survivor-recovery paths.  The
      16- and 32-port rows bracket `Auto's crossover
      (Bitsliced.auto_threshold): below it the scalar fast path must
      win, above it the bit-sliced engine.  Emits BENCH_PR5.json and
      fails if the bit-sliced engine is not ahead from 64 ports up —
      the premise behind `Auto's threshold.

   2. Single-filter vs partitioned zFilters over subscriber count
      (10^3 up to 10^5; 10^6 with LIPSIN_SWEEP_HUGE=1) on two-tier
      Rocketfuel-like topologies.  Per point: Stagecut.plan, Netcheck
      exactly-once verification, and a stitched delivery through each
      engine with bit-for-bit agreement of the delivered sets.  Emits
      BENCH_PR6.json and fails if any point misses exactly-once, has
      Netcheck errors, or shows engine disagreement. *)
let sweep_mode = Array.exists (fun a -> a = "--sweep") Sys.argv

let run_sweep () =
  let module Stats = Lipsin_util.Stats in
  let degrees = [| 8; 16; 32; 64; 256; 1024 |] in
  let rounds = 5 in
  let iters = if smoke then 400 else 5000 in
  let results =
    Array.map
      (fun deg ->
        let g = Graph.create ~nodes:(deg + 1) in
        for leaf = 1 to deg do
          Graph.add_edge g 0 leaf
        done;
        let asg = Assignment.make Lit.default (Rng.of_int (deg + 5)) g in
        let engine = Node_engine.create ~loop_prevention:false asg 0 in
        let fp = Fastpath.compile engine in
        let bs = Bitsliced.compile engine in
        let out = Array.of_list (Graph.out_links g 0) in
        let rng = Rng.of_int (0x5eed + deg) in
        let n_pool = 64 in
        let pool =
          Array.init n_pool (fun _ ->
              let nsel = min 16 deg in
              let picks = Rng.sample rng nsel deg in
              Zfilter.of_tags ~m:Lit.default.Lit.m
                (Array.to_list
                   (Array.map (fun i -> Assignment.tag asg out.(i) ~table:0) picks)))
        in
        let batch = Array.map (fun z -> (z, -1)) pool in
        let time_engine decide =
          let samples =
            Array.init rounds (fun _ ->
                let t0 = Unix.gettimeofday () in
                for _ = 1 to iters do
                  Array.iter decide pool
                done;
                (Unix.gettimeofday () -. t0)
                /. float_of_int (iters * n_pool) *. 1e9)
          in
          Stats.percentile samples 50.0
        in
        let scalar_ns =
          time_engine (fun z ->
              ignore (Fastpath.decide fp ~table:0 ~zfilter:z ~in_link_index:(-1)))
        in
        let bits_ns =
          time_engine (fun z ->
              ignore (Bitsliced.decide bs ~table:0 ~zfilter:z ~in_link_index:(-1)))
        in
        let batch_ns =
          let samples =
            Array.init rounds (fun _ ->
                let t0 = Unix.gettimeofday () in
                for _ = 1 to iters do
                  Bitsliced.decide_batch bs ~table:0 batch ~f:(fun _ _ -> ())
                done;
                (Unix.gettimeofday () -. t0)
                /. float_of_int (iters * n_pool) *. 1e9)
          in
          Stats.percentile samples 50.0
        in
        (deg, Bitsliced.plane_bits bs, scalar_ns, bits_ns, batch_ns))
      degrees
  in
  Printf.printf "engine sweep over hub degree (%d zFilters x %d iters, median of %d rounds)\n"
    64 iters rounds;
  Printf.printf "%6s %6s %14s %14s %14s %9s\n" "ports" "plane" "scalar ns/op"
    "bitsliced ns" "batch ns/op" "speedup";
  Array.iter
    (fun (deg, plane, s, b, bb) ->
      Printf.printf "%6d %6d %14.1f %14.1f %14.1f %8.2fx\n%!" deg plane s b bb
        (s /. b))
    results;
  let oc = open_out "BENCH_PR5.json" in
  Printf.fprintf oc "{\n  \"sweep\": [\n";
  Array.iteri
    (fun i (deg, plane, s, b, bb) ->
      Printf.fprintf oc
        "    { \"ports\": %d, \"plane_bits\": %d, \"scalar_ns\": %.1f, \
         \"bitsliced_ns\": %.1f, \"batch_ns\": %.1f, \"speedup\": %.2f }%s\n"
        deg plane s b bb (s /. b)
        (if i = Array.length results - 1 then "" else ","))
    results;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  let regressed =
    Array.exists (fun (deg, _, s, b, _) -> deg >= 64 && b > s) results
  in
  if regressed then begin
    Printf.printf
      "FAIL: bit-sliced engine slower than the scalar fast path at >= 64 ports\n%!";
    exit 1
  end

let run_partition_sweep () =
  let module Adaptive = Lipsin_core.Adaptive in
  let module Stagecut = Lipsin_core.Stagecut in
  let module Partition = Lipsin_bloom.Partition in
  let module Netcheck = Lipsin_analysis.Netcheck in
  let module Stitched = Lipsin_sim.Stitched in
  let module Scenario = Lipsin_workload.Scenario in
  let counts =
    if smoke then [ 1_000; 10_000 ]
    else if Sys.getenv_opt "LIPSIN_SWEEP_HUGE" <> None then
      [ 1_000; 10_000; 100_000; 1_000_000 ]
    else [ 1_000; 10_000; 100_000 ]
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1e3)
  in
  let widths_str ws =
    String.concat ","
      (List.map (fun (m, n) -> Printf.sprintf "%d:%d" m n) ws)
  in
  Printf.printf
    "\npartition sweep: single-filter vs stitched stages over subscribers\n";
  Printf.printf "%9s %7s %7s %6s %9s %6s %5s %8s %8s %9s %7s %5s\n" "subs"
    "nodes" "stages" "single" "bits" "fill" "nchk" "plan ms" "chk ms"
    "deliver" "extra" "dup";
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let points =
    List.map
      (fun count ->
        (* Backbone scale tracks the audience: ~Rocketfuel-core size
           for the large points.  d = 2 at the extreme point keeps the
           per-width tag tables inside CI memory. *)
        let core = max 100 (min 1_000 (count / 100)) in
        let d = if count >= 1_000_000 then 2 else 8 in
        let g, hosts =
          Scenario.two_tier ~seed:(5 + count) ~core ~core_edges:(2 * core)
            ~max_degree:32 ~hosts:count ()
        in
        let adaptive = Adaptive.make ~d ~k:5 (Rng.of_int (0xcafe + count)) g in
        let root = 0 in
        let tree = Spt.delivery_tree g ~root ~subscribers:hosts in
        let single_ok =
          Option.is_some (Adaptive.choose adaptive ~tree ~target_fpa:1.0 ())
        in
        if single_ok then
          fail "%d subscribers: a single zFilter fits — sweep premise broken"
            count;
        let planned, plan_ms =
          time (fun () ->
              Stagecut.plan adaptive ~rng:(Rng.of_int (0xd1ce + count)) ~root
                ~subscribers:hosts)
        in
        match planned with
        | Error e ->
          fail "%d subscribers: Stagecut.plan failed: %s" count e;
          `Failed (count, e)
        | Ok (part, diag) ->
          let findings, check_ms =
            time (fun () ->
                Netcheck.check_partition ~subscribers:hosts adaptive part)
          in
          let n_errors = List.length (Netcheck.errors findings) in
          if n_errors > 0 then
            fail "%d subscribers: %d Netcheck error(s), first: %s" count
              n_errors
              (Netcheck.to_string (List.hd (Netcheck.errors findings)));
          let stitched = Stitched.make adaptive in
          Stitched.install stitched part;
          let engines =
            List.map
              (fun (name, engine) ->
                let o, ms =
                  time (fun () -> Stitched.deliver ~engine stitched part)
                in
                (match Stitched.exactly_once o part with
                | Ok () -> ()
                | Error e ->
                  fail "%d subscribers (%s): exactly-once violated: %s" count
                    name e);
                (name, o, ms))
              [ ("reference", `Reference); ("fast", `Fast);
                ("bitsliced", `Bitsliced); ("auto", `Auto) ]
          in
          Stitched.uninstall stitched part;
          let _, ref_o, _ = List.hd engines in
          List.iter
            (fun (name, o, _) ->
              if o.Stitched.delivered <> ref_o.Stitched.delivered then
                fail
                  "%d subscribers: %s engine delivered set differs from \
                   reference"
                  count name)
            (List.tl engines);
          let agree =
            List.for_all
              (fun (_, o, _) -> o.Stitched.delivered = ref_o.Stitched.delivered)
              engines
          in
          let deliver_ms =
            List.map (fun (name, _, ms) -> (name, ms)) engines
          in
          let extra = Stitched.extra_deliveries ref_o part in
          let eo = Result.is_ok (Stitched.exactly_once ref_o part) in
          Printf.printf
            "%9d %7d %7d %6s %9d %6.3f %5d %8.1f %8.1f %9.1f %7d %5d\n%!"
            count (Graph.node_count g) diag.Stagecut.stages
            (if single_ok then "yes" else "no")
            (Partition.total_filter_bits part)
            (Partition.max_fill part) n_errors plan_ms check_ms
            (List.assoc "auto" deliver_ms) extra
            ref_o.Stitched.duplicate_handoffs;
          `Point
            ( count, core, Graph.node_count g, Graph.link_count g, d,
              List.length tree, single_ok, diag, part, n_errors, plan_ms,
              check_ms, deliver_ms, ref_o, extra, eo, agree ))
      counts
  in
  let oc = open_out "BENCH_PR6.json" in
  Printf.fprintf oc "{\n  \"subscriber_sweep\": [\n";
  let n_points = List.length points in
  List.iteri
    (fun i point ->
      let sep = if i = n_points - 1 then "" else "," in
      match point with
      | `Failed (count, e) ->
        Printf.fprintf oc
          "    { \"subscribers\": %d, \"plan_error\": %S }%s\n" count e sep
      | `Point
          ( count, core, nodes, links, d, tree_links, single_ok, diag, part,
            n_errors, plan_ms, check_ms, deliver_ms, ref_o, extra, eo, agree )
        ->
        Printf.fprintf oc
          "    { \"subscribers\": %d, \"core\": %d, \"nodes\": %d, \
           \"links\": %d, \"d\": %d, \"tree_links\": %d,\n\
          \      \"single_filter_ok\": %b, \"stages\": %d, \"widths\": %S, \
           \"filter_bits\": %d, \"max_fill\": %.4f, \"redraws\": %d,\n\
          \      \"netcheck_errors\": %d, \"plan_ms\": %.1f, \
           \"netcheck_ms\": %.1f,\n\
          \      \"deliver_ms\": { %s },\n\
          \      \"traversals\": %d, \"extra_deliveries\": %d, \
           \"duplicate_handoffs\": %d, \"exactly_once\": %b, \
           \"engines_agree\": %b }%s\n"
          count core nodes links d tree_links single_ok diag.Stagecut.stages
          (widths_str diag.Stagecut.widths_used)
          (Partition.total_filter_bits part)
          (Partition.max_fill part) diag.Stagecut.redraws n_errors plan_ms
          check_ms
          (String.concat ", "
             (List.map
                (fun (name, ms) -> Printf.sprintf "\"%s\": %.1f" name ms)
                deliver_ms))
          ref_o.Stitched.link_traversals extra
          ref_o.Stitched.duplicate_handoffs eo agree sep)
    points;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  if !failures <> [] then begin
    List.iter (Printf.printf "FAIL: %s\n") (List.rev !failures);
    Printf.printf "FAIL: partition sweep gate (%d violation(s))\n%!"
      (List.length !failures);
    exit 1
  end

(* --bounds: the runtime half of the bounds certificate.  Every kernel
   Boundscheck certifies runs twice — once with dynamic index checks on
   (Idx.set_checking, the LIPSIN_SAFE_INDEX path) and once unchecked —
   and must agree bit for bit: Bitvec kernels on random vectors, both
   engines and the batch entry point verdict-for-verdict over a degree
   sweep.  Then both modes are timed; the certificate is pointless
   unless dropping the checks is at least free, so the gate fails on
   any divergence or on the unchecked mode running slower than the
   checked one (beyond 2% timing noise) at >= 64 ports.  Emits
   BENCH_PR8.json for the CI artifact. *)
let bounds_mode = Array.exists (fun a -> a = "--bounds") Sys.argv

let run_bounds () =
  let module Stats = Lipsin_util.Stats in
  let module Idx = Lipsin_bitvec.Idx in
  let was_checking = Idx.is_checking () in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  (* Bitvec kernel differential: random vectors through every certified
     kernel, both modes, structural equality of all results. *)
  let kernel_trials = if smoke then 100 else 1_000 in
  let rng = Rng.of_int 0xb04d5 in
  for _ = 1 to kernel_trials do
    let bits = 1 + Rng.int rng 300 in
    let a = Bitvec.create bits and b = Bitvec.create bits in
    for _ = 0 to bits / 4 do
      Bitvec.set a (Rng.int rng bits);
      Bitvec.set b (Rng.int rng bits)
    done;
    let run () =
      let seen = ref [] in
      Bitvec.iter_set a (fun i -> seen := i :: !seen);
      let u = Bitvec.copy a in
      Bitvec.logor_into ~dst:u b;
      ( Bitvec.popcount a, Bitvec.popcount u, Bitvec.subset a ~of_:u,
        Bitvec.intersects a b, Bitvec.hash a, Bitvec.get a (bits - 1),
        !seen )
    in
    Idx.set_checking true;
    let safe = run () in
    Idx.set_checking false;
    let unsafe = run () in
    if safe <> unsafe then
      fail "bitvec kernels: checked and unchecked results diverge at %d bits"
        bits
  done;
  (* Engine differential + timing over the same star-hub degree sweep
     as BENCH_PR5, restricted to the certified decision kernels. *)
  let degrees = [| 16; 64; 256; 1024 |] in
  let rounds = 5 in
  let iters = if smoke then 200 else 2_000 in
  let results =
    Array.map
      (fun deg ->
        let g = Graph.create ~nodes:(deg + 1) in
        for leaf = 1 to deg do
          Graph.add_edge g 0 leaf
        done;
        let asg = Assignment.make Lit.default (Rng.of_int (deg + 7)) g in
        let engine = Node_engine.create ~loop_prevention:false asg 0 in
        let fp = Fastpath.compile engine in
        let bs = Bitsliced.compile engine in
        let out = Array.of_list (Graph.out_links g 0) in
        let rng = Rng.of_int (0xb0c4 + deg) in
        let n_pool = 64 in
        let pool =
          Array.init n_pool (fun _ ->
              let nsel = min 16 deg in
              let picks = Rng.sample rng nsel deg in
              Zfilter.of_tags ~m:Lit.default.Lit.m
                (Array.to_list
                   (Array.map
                      (fun i -> Assignment.tag asg out.(i) ~table:0)
                      picks)))
        in
        let batch = Array.map (fun z -> (z, -1)) pool in
        let verdicts_fast () =
          Array.map
            (fun z ->
              Fastpath.verdict fp
                (Fastpath.decide fp ~table:0 ~zfilter:z ~in_link_index:(-1)))
            pool
        in
        let verdicts_bits () =
          Array.map
            (fun z ->
              Bitsliced.verdict bs
                (Bitsliced.decide bs ~table:0 ~zfilter:z ~in_link_index:(-1)))
            pool
        in
        let verdicts_batch () =
          let acc = Array.make n_pool None in
          Bitsliced.decide_batch bs ~table:0 batch ~f:(fun i d ->
              acc.(i) <- Some (Bitsliced.verdict bs d));
          Array.map (function Some v -> v | None -> assert false) acc
        in
        let differential name f =
          Idx.set_checking true;
          let safe = f () in
          Idx.set_checking false;
          let unsafe = f () in
          if safe <> unsafe then
            fail "%s: checked and unchecked verdicts diverge at %d ports"
              name deg
        in
        differential "fastpath.decide" verdicts_fast;
        differential "bitsliced.decide" verdicts_bits;
        differential "bitsliced.decide_batch" verdicts_batch;
        (* Interleave checked/unchecked rounds (cancels thermal and
           scheduler drift) and keep the minimum per mode: the noise
           floor is the honest estimate when asking "is the unchecked
           mode at least as fast". *)
        let once f =
          let t0 = Unix.gettimeofday () in
          for _ = 1 to iters do
            f ()
          done;
          (Unix.gettimeofday () -. t0) /. float_of_int (iters * n_pool) *. 1e9
        in
        let fast_all () =
          Array.iter
            (fun z ->
              ignore
                (Fastpath.decide fp ~table:0 ~zfilter:z ~in_link_index:(-1)))
            pool
        in
        let bits_all () =
          Array.iter
            (fun z ->
              ignore
                (Bitsliced.decide bs ~table:0 ~zfilter:z ~in_link_index:(-1)))
            pool
        in
        let batch_all () =
          Bitsliced.decide_batch bs ~table:0 batch ~f:(fun _ _ -> ())
        in
        (* Per-round adjacent checked/unchecked ratios: the two slices
           run back to back, so drift cancels inside each ratio and the
           median over rounds is robust to the odd descheduled slice. *)
        let measure f =
          let best_s = ref infinity and best_u = ref infinity in
          let ratios =
            Array.init rounds (fun _ ->
                Idx.set_checking true;
                let s = once f in
                Idx.set_checking false;
                let u = once f in
                if s < !best_s then best_s := s;
                if u < !best_u then best_u := u;
                u /. s)
          in
          (!best_s, !best_u, Stats.percentile ratios 50.0)
        in
        let f_s, f_u, f_r = measure fast_all in
        let b_s, b_u, b_r = measure bits_all in
        let t_s, t_u, t_r = measure batch_all in
        (deg, (f_s, f_u, f_r), (b_s, b_u, b_r), (t_s, t_u, t_r)))
      degrees
  in

  Idx.set_checking was_checking;
  Printf.printf
    "bounds differential (%d bitvec kernel trials) and safe/unsafe sweep \
     (%d zFilters x %d iters, best of %d interleaved rounds)\n"
    kernel_trials 64 iters rounds;
  Printf.printf "%6s %10s %10s %6s %10s %10s %6s %10s %10s %6s\n" "ports"
    "fast chk" "fast un" "ratio" "bits chk" "bits un" "ratio" "batch chk"
    "batch un" "ratio";
  Array.iter
    (fun (deg, (f_s, f_u, f_r), (b_s, b_u, b_r), (t_s, t_u, t_r)) ->
      Printf.printf
        "%6d %10.1f %10.1f %6.3f %10.1f %10.1f %6.3f %10.1f %10.1f %6.3f\n%!"
        deg f_s f_u f_r b_s b_u b_r t_s t_u t_r)
    results;
  let oc = open_out "BENCH_PR8.json" in
  Printf.fprintf oc "{\n  \"kernel_trials\": %d,\n  \"sweep\": [\n"
    kernel_trials;
  Array.iteri
    (fun i (deg, (f_s, f_u, f_r), (b_s, b_u, b_r), (t_s, t_u, t_r)) ->
      Printf.fprintf oc
        "    { \"ports\": %d, \"fastpath_checked_ns\": %.1f, \
         \"fastpath_unchecked_ns\": %.1f, \"fastpath_ratio\": %.3f, \
         \"bitsliced_checked_ns\": %.1f, \"bitsliced_unchecked_ns\": %.1f, \
         \"bitsliced_ratio\": %.3f, \"batch_checked_ns\": %.1f, \
         \"batch_unchecked_ns\": %.1f, \"batch_ratio\": %.3f }%s\n"
        deg f_s f_u f_r b_s b_u b_r t_s t_u t_r
        (if i = Array.length results - 1 then "" else ","))
    results;
  Printf.fprintf oc "  ],\n  \"agree\": %b\n}\n" (!failures = []);
  close_out oc;
  (* The unchecked mode still reads the [checking] flag, so the true
     delta is the elided compares only — a few percent.  Gate on the
     median adjacent-pair ratio with a 5% noise allowance: unchecked
     must never be meaningfully slower than checked at >= 64 ports. *)
  Array.iter
    (fun (deg, (_, _, f_r), (_, _, b_r), (_, _, t_r)) ->
      if deg >= 64 then begin
        let tolerance = 1.05 in
        if f_r > tolerance then
          fail "fastpath.decide unchecked slower than checked at %d ports \
                (ratio %.3f)" deg f_r;
        if b_r > tolerance then
          fail "bitsliced.decide unchecked slower than checked at %d ports \
                (ratio %.3f)" deg b_r;
        if t_r > tolerance then
          fail "bitsliced.decide_batch unchecked slower than checked at %d \
                ports (ratio %.3f)" deg t_r
      end)
    results;
  if !failures <> [] then begin
    List.iter (Printf.printf "FAIL: %s\n") (List.rev !failures);
    Printf.printf "FAIL: bounds certificate gate (%d violation(s))\n%!"
      (List.length !failures);
    exit 1
  end

(* --soak: the sustained-throughput gate.  Drives the persistent
   forwarding service (Service: long-lived domain pool, work-stealing
   shards, arena-recycled zero-alloc delivery) with the exact PR4
   workload shape — the deliver-16-users-fast publication — for tens of
   millions of publications in one process.  Warmup is excluded; the
   measured run is split into trajectory windows so drift (a leak, a
   degrading pool) shows up as a trend, not an average.  Gates:

   - ops/sec >= 2x BENCH_PR4's sequential deliver-16-users-fast
     ops_per_sec (the spawn-free pool must beat one core by more than
     the core count excuse);
   - minor words/op <= 64 on the steady-state path (vs ~6.8k/op for
     the allocating Run.deliver the arena replaced) — worker Gc deltas
     plus dispatcher-side allocation, nothing exempted;
   - service counter totals bit-for-bit equal measured_ops x the
     sequential Run.deliver counters for the same publication (a
     silent-corruption tripwire at scale).

   Emits BENCH_PR10.json (trajectory + summary + gates) for the CI
   artifact.  Smoke mode runs ~150k publications in 1-2 s; env
   overrides: LIPSIN_SOAK_OPS, LIPSIN_SOAK_WORKERS. *)
let soak_mode = Array.exists (fun a -> a = "--soak") Sys.argv

let getenv_pos_int name default =
  match Sys.getenv_opt name with
  | Some s ->
    (match int_of_string_opt s with Some v when v > 0 -> v | _ -> default)
  | None -> default

let run_soak () =
  let module Obs = Lipsin_obs.Obs in
  let module Service = Lipsin_sim.Service in
  let module Json = Lipsin_reporting.Report.Json in
  Obs.Sink.set Obs.Sink.Memory;
  Obs.Trace.set_recording true;
  Obs.Trace.set_sampling 1024;
  let workers =
    getenv_pos_int "LIPSIN_SOAK_WORKERS" (Domain.recommended_domain_count ())
  in
  let total_ops =
    getenv_pos_int "LIPSIN_SOAK_OPS" (if smoke then 150_000 else 10_000_000)
  in
  let batch = 8_192 in
  let windows = 10 in
  let warmup = max batch (min (total_ops / 20) 100_000) in
  let jobs =
    Array.make batch
      {
        Service.job_src = src16;
        job_table = 0;
        job_zfilter = zfilter16;
        job_tree = tree16;
      }
  in
  (* The sequential ground truth for the correctness tripwire: every
     soak job is this exact publication, so service totals must be
     measured_ops multiples of these counters. *)
  let seq =
    Run.deliver ~engine:`Fast net ~src:src16 ~table:0 ~zfilter:zfilter16
      ~tree:tree16
  in
  let seq_reached =
    Array.fold_left (fun n r -> if r then n + 1 else n) 0 seq.Run.reached
  in
  (* Registration is idempotent per (name, labels): this is the same
     histogram the service's workers feed 1-in-64 job timings into. *)
  let h_job = Obs.Histogram.make "lipsin_service_job_seconds" in
  let svc = Service.create ~workers ~engine:`Fast assignment in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  (* One measured block of [ops] publications: wall time, worker minor
     words (summed Gc deltas) plus the dispatcher's own delta — the
     words/op gate exempts nothing — and the outcome counter sums. *)
  let run_ops ops =
    let remaining = ref ops in
    let n_jobs = ref 0 and steals = ref 0 and sampled = ref 0 in
    let traversals = ref 0 and fps = ref 0 and tests = ref 0 in
    let fills = ref 0 and loops = ref 0 and locals = ref 0 in
    let reached = ref 0 in
    let words = ref 0.0 in
    let minor0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    while !remaining > 0 do
      let n = min batch !remaining in
      let arr = if n = batch then jobs else Array.sub jobs 0 n in
      let st = Service.run svc arr in
      remaining := !remaining - n;
      n_jobs := !n_jobs + st.Service.st_jobs;
      steals := !steals + st.Service.st_steals;
      sampled := !sampled + st.Service.st_sampled;
      traversals := !traversals + st.Service.st_link_traversals;
      fps := !fps + st.Service.st_false_positives;
      tests := !tests + st.Service.st_membership_tests;
      fills := !fills + st.Service.st_fill_drops;
      loops := !loops + st.Service.st_loop_drops;
      locals := !locals + st.Service.st_local_deliveries;
      reached := !reached + st.Service.st_nodes_reached;
      words := !words +. st.Service.st_minor_words
    done;
    let wall = Unix.gettimeofday () -. t0 in
    let all_words = !words +. (Gc.minor_words () -. minor0) in
    ( !n_jobs, wall, all_words, !steals, !sampled,
      (!traversals, !fps, !tests, !fills, !loops, !locals, !reached) )
  in
  Printf.printf
    "soak: deliver-16-users-fast via the persistent service (%d workers, \
     %d warmup + %d measured publications, %d-job batches)\n%!"
    workers warmup total_ops batch;
  ignore (run_ops warmup);
  (* Drop warmup's histogram observations and counters so every
     reported number covers the measured run only.  The pool is idle
     between batches, so instrumented code is quiescent here. *)
  Obs.reset ();
  let per_window = (total_ops + windows - 1) / windows in
  let rows = ref [] in
  let t_jobs = ref 0 and t_steals = ref 0 and t_sampled = ref 0 in
  let t_wall = ref 0.0 and t_words = ref 0.0 in
  let t_trav = ref 0 and t_fps = ref 0 and t_tests = ref 0 in
  let t_fills = ref 0 and t_loops = ref 0 and t_locals = ref 0 in
  let t_reached = ref 0 in
  Printf.printf "%7s %12s %12s %14s %10s %10s\n" "window" "ops"
    "ops/sec" "minor w/op" "p99 us" "p999 us";
  for w = 1 to windows do
    let ops = min per_window (total_ops - !t_jobs) in
    if ops > 0 then begin
      let n, wall, words, steals, sampled, (trav, fps, tests, fills, loops, locals, reached) =
        run_ops ops
      in
      t_jobs := !t_jobs + n;
      t_wall := !t_wall +. wall;
      t_words := !t_words +. words;
      t_steals := !t_steals + steals;
      t_sampled := !t_sampled + sampled;
      t_trav := !t_trav + trav;
      t_fps := !t_fps + fps;
      t_tests := !t_tests + tests;
      t_fills := !t_fills + fills;
      t_loops := !t_loops + loops;
      t_locals := !t_locals + locals;
      t_reached := !t_reached + reached;
      (* The histogram is cumulative over the measured run: the
         trajectory shows the tail settling, not per-window tails. *)
      let s = Obs.Histogram.summary h_job in
      let ops_s = float_of_int n /. wall in
      let wpo = words /. float_of_int n in
      let p99 = s.Obs.Histogram.p99 *. 1e6 in
      let p999 = s.Obs.Histogram.p999 *. 1e6 in
      Printf.printf "%7d %12d %12.1f %14.2f %10.1f %10.1f\n%!" w n ops_s
        wpo p99 p999;
      rows := (w, n, ops_s, wpo, p99, p999) :: !rows
    end
  done;
  Service.shutdown svc;
  let ops_per_sec = float_of_int !t_jobs /. !t_wall in
  let words_per_op = !t_words /. float_of_int !t_jobs in
  let s = Obs.Histogram.summary h_job in
  let p99_us = s.Obs.Histogram.p99 *. 1e6 in
  let p999_us = s.Obs.Histogram.p999 *. 1e6 in
  (* The counter tripwire: totals must be exact multiples of the
     sequential outcome. *)
  let expect name total per =
    if total <> !t_jobs * per then
      fail "%s: service total %d <> %d ops x %d sequential" name total
        !t_jobs per
  in
  expect "link_traversals" !t_trav seq.Run.link_traversals;
  expect "false_positives" !t_fps seq.Run.false_positives;
  expect "membership_tests" !t_tests seq.Run.membership_tests;
  expect "fill_drops" !t_fills seq.Run.fill_drops;
  expect "loop_drops" !t_loops seq.Run.loop_drops;
  expect "local_deliveries" !t_locals seq.Run.local_deliveries;
  expect "nodes_reached" !t_reached seq_reached;
  let counters_ok = !failures = [] in
  (* Baseline gates from the committed BENCH_PR4.json (the sequential
     deliver-16-users-fast measurement this PR doubles). *)
  let baseline =
    let read path =
      try
        let ic = open_in_bin path in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        Some s
      with Sys_error _ -> None
    in
    match read "BENCH_PR4.json" with
    | None -> None
    | Some text ->
      (match Json.parse text with
      | Error _ -> None
      | Ok j ->
        let f k = Option.bind (Json.member k j) Json.to_float in
        (match (f "ops_per_sec", f "minor_words_per_op") with
        | Some o, Some m -> Some (o, m)
        | _ -> None))
  in
  let words_budget = 64.0 in
  (match baseline with
  | Some (base_ops, _) ->
    if ops_per_sec < 2.0 *. base_ops then
      fail
        "ops/sec %.1f below 2x the BENCH_PR4 sequential baseline %.1f"
        ops_per_sec base_ops
  | None ->
    Printf.printf
      "  (BENCH_PR4.json missing or unparsable: ops/sec gate skipped)\n%!");
  if words_per_op > words_budget then
    fail "minor words/op %.2f over the %.0f steady-state budget"
      words_per_op words_budget;
  Printf.printf
    "  total: %d ops in %.2f s = %.1f ops/sec, %.2f minor words/op, \
     p99 %.1f us, p999 %.1f us, %d steals, %d sampled\n%!"
    !t_jobs !t_wall ops_per_sec words_per_op p99_us p999_us !t_steals
    !t_sampled;
  let oc = open_out "BENCH_PR10.json" in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"soak-deliver-16-users-fast\",\n\
    \  \"workers\": %d,\n\
    \  \"batch_jobs\": %d,\n\
    \  \"warmup_ops\": %d,\n\
    \  \"trajectory\": [\n"
    workers batch warmup;
  let rows = List.rev !rows in
  List.iteri
    (fun i (w, n, ops_s, wpo, p99, p999) ->
      Printf.fprintf oc
        "    { \"window\": %d, \"ops\": %d, \"ops_per_sec\": %.1f, \
         \"minor_words_per_op\": %.2f, \"p99_us\": %.1f, \
         \"p999_us\": %.1f }%s\n"
        w n ops_s wpo p99 p999
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc
    "  ],\n\
    \  \"summary\": {\n\
    \    \"measured_ops\": %d,\n\
    \    \"elapsed_s\": %.3f,\n\
    \    \"ops_per_sec\": %.1f,\n\
    \    \"minor_words_per_op\": %.2f,\n\
    \    \"p99_us\": %.1f,\n\
    \    \"p999_us\": %.1f,\n\
    \    \"steals\": %d,\n\
    \    \"sampled_publications\": %d,\n\
    \    \"counters_match_sequential\": %b%s\n\
    \  },\n\
    \  \"gates\": [\n\
    \    \"ops_per_sec >= 2x BENCH_PR4 deliver-16-users-fast\",\n\
    \    \"minor_words_per_op <= %.0f\",\n\
    \    \"counter totals == measured_ops x sequential Run.deliver\"\n\
    \  ]\n\
     }\n"
    !t_jobs !t_wall ops_per_sec words_per_op p99_us p999_us !t_steals
    !t_sampled counters_ok
    (match baseline with
    | Some (base_ops, base_words) ->
      Printf.sprintf
        ",\n\
        \    \"baseline_ops_per_sec\": %.1f,\n\
        \    \"speedup_vs_pr4\": %.2f,\n\
        \    \"pr4_minor_words_per_op\": %.1f,\n\
        \    \"alloc_reduction_x\": %.1f"
        base_ops (ops_per_sec /. base_ops) base_words
        (if words_per_op > 0.0 then base_words /. words_per_op else 0.0)
    | None -> "")
    words_budget;
  close_out oc;
  if !failures <> [] then begin
    List.iter (Printf.printf "FAIL: %s\n") (List.rev !failures);
    Printf.printf "FAIL: soak gate (%d violation(s))\n%!"
      (List.length !failures);
    exit 1
  end;
  Printf.printf "soak OK: gates hold over %d publications\n%!" !t_jobs

let benchmark tests =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    if smoke then Benchmark.cfg ~limit:1 ~quota:(Time.second 0.001) ~stabilize:false ()
    else Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  results

let print_results results =
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let ns =
        match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> nan
      in
      Printf.printf "%-40s %12.1f ns/run\n%!" name ns)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)

let () =
  if alloc_mode then run_alloc ()
  else if soak_mode then run_soak ()
  else if bounds_mode then run_bounds ()
  else if obs_mode then run_obs ()
  else if sweep_mode then begin
    run_sweep ();
    run_partition_sweep ()
  end
  else begin
    Printf.printf "LIPSIN benchmarks (Bechamel, monotonic clock)\n%!";
    List.iter
      (fun tests -> print_results (benchmark tests))
      [ alg1; alg1_fast; alg1_bitsliced; bitvec_group; construct; header;
        delivery; delivery_fast; ablation_m; topology; extensions;
        more_extensions; layering ]
  end
