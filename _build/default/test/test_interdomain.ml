(* Tests for Lipsin_interdomain.Internet. *)

module Internet = Lipsin_interdomain.Internet
module Graph = Lipsin_topology.Graph
module Generator = Lipsin_topology.Generator
module Rng = Lipsin_util.Rng

let small_internet ?(domains = 4) () =
  let domain_graph = Graph.create ~nodes:domains in
  for d = 0 to domains - 2 do
    Graph.add_edge domain_graph d (d + 1)
  done;
  if domains > 2 then Graph.add_edge domain_graph 0 (domains - 1);
  let rng = Rng.of_int 21 in
  let intra =
    Array.init domains (fun _ ->
        Generator.pref_attach ~rng:(Rng.split rng) ~nodes:15 ~edges:22
          ~max_degree:6 ())
  in
  Internet.create ~domain_graph ~intra ()

let test_create_validates_sizes () =
  let domain_graph = Graph.create ~nodes:3 in
  Graph.add_edge domain_graph 0 1;
  let intra = [| Graph.create ~nodes:2 |] in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Internet.create: domain graph size <> number of intra graphs")
    (fun () -> ignore (Internet.create ~domain_graph ~intra ()))

let test_borders_exist_for_peers () =
  let net = small_internet () in
  let b01 = Internet.border net ~src_domain:0 ~dst_domain:1 in
  Alcotest.(check bool) "border in range" true
    (b01 >= 0 && b01 < Graph.node_count (Internet.intra_graph net 0));
  Alcotest.check_raises "non-peers" (Invalid_argument "Internet.border: domains do not peer")
    (fun () -> ignore (Internet.border net ~src_domain:0 ~dst_domain:2))

let test_subscribe_unsubscribe () =
  let net = small_internet () in
  let topic = 7L in
  let addr = { Internet.domain = 2; node = 3 } in
  Internet.subscribe net ~topic addr;
  Internet.subscribe net ~topic addr;
  Alcotest.(check int) "idempotent" 1 (List.length (Internet.subscribers net ~topic));
  Internet.unsubscribe net ~topic addr;
  Alcotest.(check int) "removed" 0 (List.length (Internet.subscribers net ~topic))

let test_publish_no_subscribers () =
  let net = small_internet () in
  match Internet.publish net ~topic:99L ~publisher:{ Internet.domain = 0; node = 0 } with
  | Error msg -> Alcotest.(check string) "error" "topic has no remote subscribers" msg
  | Ok _ -> Alcotest.fail "must fail without subscribers"

let test_publish_same_domain () =
  let net = small_internet () in
  let topic = 11L in
  Internet.subscribe net ~topic { Internet.domain = 1; node = 8 };
  match Internet.publish net ~topic ~publisher:{ Internet.domain = 1; node = 2 } with
  | Error e -> Alcotest.fail e
  | Ok d ->
    Alcotest.(check int) "delivered locally" 1 (List.length d.Internet.delivered);
    Alcotest.(check int) "no boundary crossings" 0 d.Internet.inter_traversals;
    Alcotest.(check (list int)) "one domain visited" [ 1 ] d.Internet.domains_visited

let test_publish_cross_domain () =
  let net = small_internet () in
  let topic = 13L in
  List.iter
    (fun (domain, node) -> Internet.subscribe net ~topic { Internet.domain; node })
    [ (1, 4); (2, 7); (3, 9) ];
  match Internet.publish net ~topic ~publisher:{ Internet.domain = 0; node = 1 } with
  | Error e -> Alcotest.fail e
  | Ok d ->
    Alcotest.(check int) "all three delivered" 3 (List.length d.Internet.delivered);
    Alcotest.(check int) "nothing missed" 0 (List.length d.Internet.missed);
    Alcotest.(check bool) "crossed boundaries" true (d.Internet.inter_traversals >= 3);
    Alcotest.(check bool) "publisher domain visited first" true
      (List.hd d.Internet.domains_visited = 0)

let test_publish_skips_publisher_itself () =
  let net = small_internet () in
  let topic = 17L in
  let self = { Internet.domain = 0; node = 5 } in
  Internet.subscribe net ~topic self;
  Internet.subscribe net ~topic { Internet.domain = 1; node = 6 };
  match Internet.publish net ~topic ~publisher:self with
  | Error e -> Alcotest.fail e
  | Ok d ->
    Alcotest.(check int) "only the remote one" 1 (List.length d.Internet.delivered);
    Alcotest.(check bool) "self not a target" true
      (not (List.mem self d.Internet.delivered))

let test_interdomain_fill_small () =
  let net = small_internet () in
  let topic = 19L in
  Alcotest.(check bool) "no subscribers -> none" true
    (Internet.interdomain_fill net ~topic ~publisher:{ Internet.domain = 0; node = 0 }
     = None);
  Internet.subscribe net ~topic { Internet.domain = 2; node = 2 };
  match Internet.interdomain_fill net ~topic ~publisher:{ Internet.domain = 0; node = 0 } with
  | None -> Alcotest.fail "fill expected"
  | Some fill -> Alcotest.(check bool) "fill modest" true (fill > 0.0 && fill < 0.3)

let test_many_publications_all_deliver () =
  let net = small_internet ~domains:6 () in
  let rng = Rng.of_int 33 in
  for p = 0 to 14 do
    let topic = Int64.of_int (100 + p) in
    let n_subs = 1 + Rng.int rng 5 in
    for _ = 1 to n_subs do
      let domain = Rng.int rng 6 in
      let node = Rng.int rng 15 in
      Internet.subscribe net ~topic { Internet.domain; node }
    done;
    let publisher = { Internet.domain = Rng.int rng 6; node = Rng.int rng 15 } in
    match Internet.publish net ~topic ~publisher with
    | Error _ -> ()  (* all subscribers may equal the publisher *)
    | Ok d ->
      Alcotest.(check int)
        (Printf.sprintf "publication %d misses nobody" p)
        0
        (List.length d.Internet.missed)
  done

let () =
  Alcotest.run "interdomain"
    [
      ( "internet",
        [
          Alcotest.test_case "create validates" `Quick test_create_validates_sizes;
          Alcotest.test_case "borders" `Quick test_borders_exist_for_peers;
          Alcotest.test_case "subscribe/unsubscribe" `Quick test_subscribe_unsubscribe;
          Alcotest.test_case "publish no subscribers" `Quick test_publish_no_subscribers;
          Alcotest.test_case "same domain" `Quick test_publish_same_domain;
          Alcotest.test_case "cross domain" `Quick test_publish_cross_domain;
          Alcotest.test_case "skips publisher" `Quick test_publish_skips_publisher_itself;
          Alcotest.test_case "interdomain fill" `Quick test_interdomain_fill_small;
          Alcotest.test_case "many publications" `Quick test_many_publications_all_deliver;
        ] );
    ]
