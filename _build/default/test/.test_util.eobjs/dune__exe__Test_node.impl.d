test/test_node.ml: Alcotest Lipsin_node Lipsin_pubsub Lipsin_topology Lipsin_util List Printf
