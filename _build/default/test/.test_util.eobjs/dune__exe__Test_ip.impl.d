test/test_ip.ml: Alcotest Lipsin_interdomain Lipsin_ip Lipsin_topology Lipsin_util List Option
