test/test_bitvec.ml: Alcotest Bytes Lipsin_bitvec Lipsin_util List QCheck QCheck_alcotest String
