test/test_security.ml: Alcotest Lipsin_bloom Lipsin_core Lipsin_security Lipsin_sim Lipsin_topology Lipsin_util List Printf
