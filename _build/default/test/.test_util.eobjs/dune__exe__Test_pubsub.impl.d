test/test_pubsub.ml: Alcotest Array Lipsin_bloom Lipsin_packet Lipsin_pubsub Lipsin_sim Lipsin_topology Lipsin_util List
