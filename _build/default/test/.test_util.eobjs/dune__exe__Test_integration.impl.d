test/test_integration.ml: Alcotest Array Hashtbl Int64 Lipsin List Printf
