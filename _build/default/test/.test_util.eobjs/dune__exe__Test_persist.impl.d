test/test_persist.ml: Alcotest Array Char Filename Fun Lipsin_bitvec Lipsin_bloom Lipsin_core Lipsin_packet Lipsin_topology Lipsin_util List QCheck QCheck_alcotest String Sys
