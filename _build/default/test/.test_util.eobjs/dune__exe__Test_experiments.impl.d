test/test_experiments.ml: Alcotest Buffer Format Lipsin_bloom Lipsin_experiments Lipsin_topology Lipsin_util List String
