test/test_fluid.ml: Alcotest Lipsin_bitvec Lipsin_bloom Lipsin_core Lipsin_sim Lipsin_topology Lipsin_util List Option
