test/test_recursive.ml: Alcotest Array Float Fun Lipsin_bloom Lipsin_core Lipsin_pubsub Lipsin_recursive Lipsin_topology Lipsin_util List QCheck QCheck_alcotest
