test/test_topology.ml: Alcotest Array Lipsin_topology Lipsin_util List QCheck QCheck_alcotest
