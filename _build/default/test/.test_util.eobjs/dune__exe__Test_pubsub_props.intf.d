test/test_pubsub_props.mli:
