test/test_fec.ml: Alcotest Array Gen Lipsin_bloom Lipsin_core Lipsin_fec Lipsin_sim Lipsin_topology Lipsin_util List QCheck QCheck_alcotest String
