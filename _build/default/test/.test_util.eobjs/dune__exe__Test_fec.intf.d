test/test_fec.mli:
