test/test_recursive.mli:
