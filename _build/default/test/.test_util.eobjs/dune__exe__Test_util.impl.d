test/test_util.ml: Alcotest Array Fun Gen Lipsin_util List QCheck QCheck_alcotest
