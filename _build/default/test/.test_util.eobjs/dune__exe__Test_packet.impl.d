test/test_packet.ml: Alcotest Bytes Lipsin_bitvec Lipsin_bloom Lipsin_packet Lipsin_util List QCheck QCheck_alcotest
