test/test_interdomain.mli:
