test/test_interdomain.ml: Alcotest Array Int64 Lipsin_interdomain Lipsin_topology Lipsin_util List Printf
