test/test_split.ml: Alcotest Array Lipsin_bloom Lipsin_core Lipsin_sim Lipsin_topology Lipsin_util List QCheck QCheck_alcotest
