test/test_core.ml: Alcotest Array Lipsin_bitvec Lipsin_bloom Lipsin_core Lipsin_topology Lipsin_util List QCheck QCheck_alcotest
