test/test_pubsub_props.ml: Alcotest Array Gen Hashtbl Lipsin_pubsub Lipsin_sim Lipsin_topology Lipsin_util List QCheck QCheck_alcotest String
