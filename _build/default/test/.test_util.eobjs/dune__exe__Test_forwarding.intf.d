test/test_forwarding.mli:
