test/test_bootstrap.ml: Alcotest Lipsin_bootstrap Lipsin_topology Lipsin_util List Printf QCheck QCheck_alcotest
