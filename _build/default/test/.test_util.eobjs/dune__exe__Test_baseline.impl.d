test/test_baseline.ml: Alcotest Int32 Int64 Lipsin_baseline Lipsin_topology Lipsin_util List Option QCheck QCheck_alcotest
