test/test_bloom.ml: Alcotest Array Lipsin_bitvec Lipsin_bloom Lipsin_util List Printf QCheck QCheck_alcotest
