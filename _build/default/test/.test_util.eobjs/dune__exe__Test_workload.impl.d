test/test_workload.ml: Alcotest Array Lipsin_bloom Lipsin_core Lipsin_topology Lipsin_util Lipsin_workload List
