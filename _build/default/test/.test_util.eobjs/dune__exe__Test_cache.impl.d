test/test_cache.ml: Alcotest Array Int64 Lipsin_cache Lipsin_topology Lipsin_util List Printf QCheck QCheck_alcotest
