(* Tests for Lipsin_bootstrap.Discovery: link-state bootstrap of the
   topology and rendezvous functions (Sec. 2.2). *)

module Discovery = Lipsin_bootstrap.Discovery
module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module Metrics = Lipsin_topology.Metrics
module Generator = Lipsin_topology.Generator
module As_presets = Lipsin_topology.As_presets
module Rng = Lipsin_util.Rng

let same_edges a b =
  Graph.node_count a = Graph.node_count b
  && Graph.edge_count a = Graph.edge_count b
  &&
  let ok = ref true in
  Graph.iter_links a (fun l ->
      if not (Graph.has_edge b l.Graph.src l.Graph.dst) then ok := false);
  !ok

let test_converges_on_line () =
  let g = Graph.create ~nodes:6 in
  for v = 0 to 4 do
    Graph.add_edge g v (v + 1)
  done;
  let d = Discovery.create g in
  match Discovery.run d with
  | Error e -> Alcotest.fail e
  | Ok rounds ->
    (* An LSA from one end needs diameter hops to reach the other. *)
    Alcotest.(check bool) "rounds ~ diameter" true (rounds >= 5 && rounds <= 7);
    Alcotest.(check bool) "converged" true (Discovery.converged d)

let test_every_node_learns_the_full_map () =
  let g =
    Generator.pref_attach ~rng:(Rng.of_int 3) ~nodes:40 ~edges:70 ~max_degree:10 ()
  in
  let d = Discovery.create g in
  (match Discovery.run d with Ok _ -> () | Error e -> Alcotest.fail e);
  for v = 0 to Graph.node_count g - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "node %d map matches" v)
      true
      (same_edges g (Discovery.map_of d v))
  done

let test_rounds_bounded_by_diameter () =
  let g = As_presets.ta2 () in
  let d = Discovery.create g in
  match Discovery.run d with
  | Error e -> Alcotest.fail e
  | Ok rounds ->
    let m = Metrics.compute g in
    Alcotest.(check bool) "rounds <= diameter + 2" true
      (rounds <= m.Metrics.diameter + 2)

let test_rendezvous_advertised () =
  let g =
    Generator.waxman ~rng:(Rng.of_int 4) ~nodes:25 ~edges:40 ~max_degree:8 ()
  in
  let d = Discovery.create ~rendezvous:[ 3; 17 ] g in
  (match Discovery.run d with Ok _ -> () | Error e -> Alcotest.fail e);
  for v = 0 to 24 do
    Alcotest.(check (list int))
      (Printf.sprintf "node %d knows the rendezvous nodes" v)
      [ 3; 17 ]
      (Discovery.rendezvous_known_at d v)
  done

let test_quiescent_after_convergence () =
  let g = Graph.create ~nodes:4 in
  List.iter (fun (u, v) -> Graph.add_edge g u v) [ (0, 1); (1, 2); (2, 3); (3, 0) ];
  let d = Discovery.create g in
  (match Discovery.run d with Ok _ -> () | Error e -> Alcotest.fail e);
  Alcotest.(check int) "no chatter once converged" 0 (Discovery.step d)

let test_link_failure_reconverges () =
  let g = Graph.create ~nodes:5 in
  List.iter (fun (u, v) -> Graph.add_edge g u v)
    [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0); (1, 3) ];
  let d = Discovery.create g in
  (match Discovery.run d with Ok _ -> () | Error e -> Alcotest.fail e);
  let failed =
    match Graph.find_link g ~src:1 ~dst:3 with
    | Some l -> l
    | None -> Alcotest.fail "link exists"
  in
  Discovery.fail_link d failed;
  Alcotest.(check bool) "marked dead" false (Discovery.link_alive d failed);
  Alcotest.(check bool) "stale until re-flooded" false (Discovery.converged d);
  (match Discovery.run d with Ok _ -> () | Error e -> Alcotest.fail e);
  (* Every node's map now omits the failed edge but keeps the rest. *)
  for v = 0 to 4 do
    let map = Discovery.map_of d v in
    Alcotest.(check bool)
      (Printf.sprintf "node %d dropped the edge" v)
      false
      (Graph.has_edge map 1 3);
    Alcotest.(check int)
      (Printf.sprintf "node %d kept the others" v)
      5 (Graph.edge_count map)
  done

let test_fail_link_idempotent () =
  let g = Graph.create ~nodes:3 in
  List.iter (fun (u, v) -> Graph.add_edge g u v) [ (0, 1); (1, 2); (2, 0) ];
  let d = Discovery.create g in
  (match Discovery.run d with Ok _ -> () | Error e -> Alcotest.fail e);
  let l =
    match Graph.find_link g ~src:0 ~dst:1 with
    | Some l -> l
    | None -> Alcotest.fail "exists"
  in
  Discovery.fail_link d l;
  let m1 = Discovery.messages_sent d in
  (match Discovery.run d with Ok _ -> () | Error e -> Alcotest.fail e);
  let m2 = Discovery.messages_sent d in
  Discovery.fail_link d l;
  Alcotest.(check bool) "second failure is a no-op" true (Discovery.converged d);
  Alcotest.(check bool) "reconvergence carried messages" true (m2 > m1)

let test_message_overhead_scales () =
  (* Flooding carries O(n) LSAs over O(e) links: total messages for
     convergence is O(n * e); check the constant is sane on a preset. *)
  let g = As_presets.as1221 () in
  let d = Discovery.create g in
  (match Discovery.run d with Ok _ -> () | Error e -> Alcotest.fail e);
  let bound = Graph.node_count g * Graph.link_count g in
  Alcotest.(check bool) "message count within flooding bound" true
    (Discovery.messages_sent d <= bound)

let prop_maps_converge_on_random_graphs =
  QCheck.Test.make ~name:"discovery converges to the true map" ~count:30
    QCheck.(int_range 1 1000)
    (fun seed ->
      let g =
        Generator.pref_attach ~rng:(Rng.of_int seed) ~nodes:20 ~edges:32
          ~max_degree:8 ()
      in
      let d = Discovery.create g in
      match Discovery.run d with
      | Error _ -> false
      | Ok _ -> same_edges g (Discovery.map_of d (seed mod 20)))

let () =
  Alcotest.run "bootstrap"
    [
      ( "discovery",
        [
          Alcotest.test_case "line convergence" `Quick test_converges_on_line;
          Alcotest.test_case "full map everywhere" `Quick
            test_every_node_learns_the_full_map;
          Alcotest.test_case "rounds ~ diameter" `Quick test_rounds_bounded_by_diameter;
          Alcotest.test_case "rendezvous advertised" `Quick test_rendezvous_advertised;
          Alcotest.test_case "quiescent" `Quick test_quiescent_after_convergence;
          Alcotest.test_case "link failure" `Quick test_link_failure_reconverges;
          Alcotest.test_case "idempotent failure" `Quick test_fail_link_idempotent;
          Alcotest.test_case "message overhead" `Quick test_message_overhead_scales;
          QCheck_alcotest.to_alcotest prop_maps_converge_on_random_graphs;
        ] );
    ]
