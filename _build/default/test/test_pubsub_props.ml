(* Property tests of System-level pub/sub invariants. *)

module Graph = Lipsin_topology.Graph
module Generator = Lipsin_topology.Generator
module System = Lipsin_pubsub.System
module Topic = Lipsin_pubsub.Topic
module Rendezvous = Lipsin_pubsub.Rendezvous
module Run = Lipsin_sim.Run
module Rng = Lipsin_util.Rng

let build_system seed =
  let g =
    Generator.pref_attach ~rng:(Rng.of_int (seed + 401)) ~nodes:30 ~edges:50
      ~max_degree:9 ()
  in
  (g, System.create ~seed g)

let prop_delivered_subset_of_subscribers =
  QCheck.Test.make ~name:"delivered_to is exactly the reachable subscriber set"
    ~count:80
    QCheck.(pair (int_range 1 1000) (int_range 1 8))
    (fun (seed, subs) ->
      let g, sys = build_system seed in
      let topic = Topic.of_string "prop" in
      let rng = Rng.of_int (seed + 7) in
      let picks = Rng.sample rng (subs + 1) (Graph.node_count g) in
      let publisher = picks.(0) in
      let subscribers = Array.to_list (Array.sub picks 1 subs) in
      System.advertise sys topic ~publisher;
      List.iter (fun s -> System.subscribe sys topic ~subscriber:s) subscribers;
      match System.publish sys topic ~publisher ~payload:"x" with
      | Error _ -> false
      | Ok r ->
        let wanted = List.sort compare subscribers in
        List.sort compare (r.System.delivered_to @ r.System.missed) = wanted
        && List.for_all (fun d -> List.mem d subscribers) r.System.delivered_to)

let prop_publish_deterministic =
  QCheck.Test.make ~name:"same system seed, same delivery" ~count:50
    QCheck.(pair (int_range 1 1000) (int_range 1 6))
    (fun (seed, subs) ->
      let run () =
        let g, sys = build_system seed in
        let topic = Topic.of_string "det" in
        let rng = Rng.of_int (seed + 13) in
        let picks = Rng.sample rng (subs + 1) (Graph.node_count g) in
        System.advertise sys topic ~publisher:picks.(0);
        Array.iter
          (fun s -> System.subscribe sys topic ~subscriber:s)
          (Array.sub picks 1 subs);
        match System.publish sys topic ~publisher:picks.(0) ~payload:"x" with
        | Ok r ->
          ( List.sort compare r.System.delivered_to,
            r.System.outcome.Run.link_traversals )
        | Error e -> ([], String.length e)
      in
      run () = run ())

let prop_unsubscribe_shrinks_tree =
  QCheck.Test.make ~name:"unsubscribing never enlarges the tree" ~count:60
    QCheck.(pair (int_range 1 1000) (int_range 2 8))
    (fun (seed, subs) ->
      let g, sys = build_system seed in
      let topic = Topic.of_string "shrink" in
      let rng = Rng.of_int (seed + 17) in
      let picks = Rng.sample rng (subs + 1) (Graph.node_count g) in
      let publisher = picks.(0) in
      let subscribers = Array.to_list (Array.sub picks 1 subs) in
      System.advertise sys topic ~publisher;
      List.iter (fun s -> System.subscribe sys topic ~subscriber:s) subscribers;
      match System.publish sys topic ~publisher ~payload:"a" with
      | Error _ -> false
      | Ok before ->
        System.unsubscribe sys topic ~subscriber:(List.hd subscribers);
        (match System.publish sys topic ~publisher ~payload:"b" with
        | Error _ -> subs = 1  (* last subscriber left: publish must fail *)
        | Ok after ->
          List.length after.System.tree <= List.length before.System.tree
          && not after.System.from_cache))

let prop_rendezvous_counts_consistent =
  QCheck.Test.make ~name:"rendezvous sets reflect operations exactly" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 40) (pair bool (int_range 0 19)))
    (fun ops ->
      let r = Rendezvous.create () in
      let topic = Topic.of_string "consistency" in
      let model = Hashtbl.create 8 in
      List.iter
        (fun (subscribe, node) ->
          if subscribe then begin
            Rendezvous.subscribe r topic ~subscriber:node;
            Hashtbl.replace model node ()
          end
          else begin
            Rendezvous.unsubscribe r topic ~subscriber:node;
            Hashtbl.remove model node
          end)
        ops;
      let expected =
        List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) model [])
      in
      Rendezvous.subscribers r topic = expected)

let () =
  Alcotest.run "pubsub-props"
    [
      ( "system",
        [
          QCheck_alcotest.to_alcotest prop_delivered_subset_of_subscribers;
          QCheck_alcotest.to_alcotest prop_publish_deterministic;
          QCheck_alcotest.to_alcotest prop_unsubscribe_shrinks_tree;
          QCheck_alcotest.to_alcotest prop_rendezvous_counts_consistent;
        ] );
    ]
