(* Tests for Lipsin_pubsub: Topic, Rendezvous, System. *)

module Topic = Lipsin_pubsub.Topic
module Rendezvous = Lipsin_pubsub.Rendezvous
module System = Lipsin_pubsub.System
module Graph = Lipsin_topology.Graph
module Generator = Lipsin_topology.Generator
module Run = Lipsin_sim.Run
module Zfilter = Lipsin_bloom.Zfilter
module Rng = Lipsin_util.Rng

let test_topic_stable_hash () =
  let a = Topic.of_string "sports/football" in
  let b = Topic.of_string "sports/football" in
  let c = Topic.of_string "sports/handball" in
  Alcotest.(check bool) "equal names equal ids" true (Topic.equal a b);
  Alcotest.(check bool) "different names differ" false (Topic.equal a c);
  Alcotest.(check int) "compare 0" 0 (Topic.compare a b)

let test_topic_id_roundtrip () =
  let t = Topic.of_id 42L in
  Alcotest.(check int64) "id preserved" 42L (Topic.id t)

let test_rendezvous_matching () =
  let r = Rendezvous.create () in
  let t = Topic.of_string "news" in
  Alcotest.(check bool) "inactive when empty" false (Rendezvous.active r t);
  Rendezvous.advertise r t ~publisher:3;
  Alcotest.(check bool) "needs subscribers too" false (Rendezvous.active r t);
  Rendezvous.subscribe r t ~subscriber:7;
  Alcotest.(check bool) "active" true (Rendezvous.active r t);
  Alcotest.(check (list int)) "subscribers" [ 7 ] (Rendezvous.subscribers r t);
  Alcotest.(check (list int)) "publishers" [ 3 ] (Rendezvous.publishers r t)

let test_rendezvous_idempotent_subscribe () =
  let r = Rendezvous.create () in
  let t = Topic.of_string "dup" in
  Rendezvous.subscribe r t ~subscriber:1;
  let g1 = Rendezvous.generation r t in
  Rendezvous.subscribe r t ~subscriber:1;
  Alcotest.(check int) "no generation bump on repeat" g1 (Rendezvous.generation r t);
  Alcotest.(check (list int)) "single entry" [ 1 ] (Rendezvous.subscribers r t)

let test_rendezvous_unsubscribe () =
  let r = Rendezvous.create () in
  let t = Topic.of_string "leave" in
  Rendezvous.subscribe r t ~subscriber:1;
  Rendezvous.subscribe r t ~subscriber:2;
  Rendezvous.unsubscribe r t ~subscriber:1;
  Alcotest.(check (list int)) "one left" [ 2 ] (Rendezvous.subscribers r t)

let test_rendezvous_generation_tracks_changes () =
  let r = Rendezvous.create () in
  let t = Topic.of_string "gen" in
  let g0 = Rendezvous.generation r t in
  Rendezvous.subscribe r t ~subscriber:5;
  let g1 = Rendezvous.generation r t in
  Rendezvous.unsubscribe r t ~subscriber:5;
  let g2 = Rendezvous.generation r t in
  Alcotest.(check bool) "strictly increasing" true (g0 < g1 && g1 < g2)

let sample_system ?selection () =
  let g =
    Generator.pref_attach ~rng:(Rng.of_int 5) ~nodes:40 ~edges:70 ~max_degree:10 ()
  in
  match selection with
  | None -> System.create g
  | Some s -> System.create ~selection:s g

let test_publish_requires_advertise () =
  let sys = sample_system () in
  let t = Topic.of_string "t1" in
  System.subscribe sys t ~subscriber:5;
  match System.publish sys t ~publisher:0 ~payload:"x" with
  | Error msg ->
    Alcotest.(check string) "needs advertise" "publisher has not advertised this topic" msg
  | Ok _ -> Alcotest.fail "must require advertisement"

let test_publish_requires_subscribers () =
  let sys = sample_system () in
  let t = Topic.of_string "t2" in
  System.advertise sys t ~publisher:0;
  match System.publish sys t ~publisher:0 ~payload:"x" with
  | Error msg ->
    Alcotest.(check string) "needs subscribers" "topic has no remote subscribers" msg
  | Ok _ -> Alcotest.fail "must require subscribers"

let test_publish_delivers () =
  let sys = sample_system () in
  let t = Topic.of_string "t3" in
  System.advertise sys t ~publisher:0;
  List.iter (fun s -> System.subscribe sys t ~subscriber:s) [ 7; 13; 22; 39 ];
  match System.publish sys t ~publisher:0 ~payload:"hello" with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check int) "all delivered" 4 (List.length r.System.delivered_to);
    Alcotest.(check int) "none missed" 0 (List.length r.System.missed);
    Alcotest.(check bool) "first publish computes" false r.System.from_cache;
    Alcotest.(check string) "payload carried" "hello" r.System.header.Lipsin_packet.Header.payload

let test_publish_cache_and_invalidation () =
  let sys = sample_system () in
  let t = Topic.of_string "t4" in
  System.advertise sys t ~publisher:1;
  System.subscribe sys t ~subscriber:9;
  (match System.publish sys t ~publisher:1 ~payload:"a" with
  | Ok r -> Alcotest.(check bool) "first miss" false r.System.from_cache
  | Error e -> Alcotest.fail e);
  (match System.publish sys t ~publisher:1 ~payload:"b" with
  | Ok r -> Alcotest.(check bool) "second hit" true r.System.from_cache
  | Error e -> Alcotest.fail e);
  System.subscribe sys t ~subscriber:17;
  (match System.publish sys t ~publisher:1 ~payload:"c" with
  | Ok r ->
    Alcotest.(check bool) "invalidated on subscriber change" false r.System.from_cache;
    Alcotest.(check int) "both reached" 2 (List.length r.System.delivered_to)
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "one cache entry" 1 (System.cache_size sys)

let test_publisher_excluded_from_targets () =
  let sys = sample_system () in
  let t = Topic.of_string "t5" in
  System.advertise sys t ~publisher:2;
  System.subscribe sys t ~subscriber:2;
  (* Publisher is its own only subscriber: no remote targets. *)
  match System.publish sys t ~publisher:2 ~payload:"x" with
  | Error msg ->
    Alcotest.(check string) "self only" "topic has no remote subscribers" msg
  | Ok _ -> Alcotest.fail "self-subscription is local, not remote"

let test_selection_strategies_all_deliver () =
  List.iter
    (fun selection ->
      let sys = sample_system ~selection () in
      let t = Topic.of_string "t6" in
      System.advertise sys t ~publisher:3;
      List.iter (fun s -> System.subscribe sys t ~subscriber:s) [ 11; 29; 35 ];
      match System.publish sys t ~publisher:3 ~payload:"p" with
      | Error e -> Alcotest.fail e
      | Ok r -> Alcotest.(check int) "delivered" 3 (List.length r.System.delivered_to))
    [ System.Standard; System.Fpa; System.Fpr ]

let test_reverse_path_delivers_back () =
  let sys = sample_system () in
  let publisher = 0 and subscriber = 25 in
  let z = System.collect_reverse_path sys ~subscriber ~publisher ~table:0 in
  (* Using the collected reverse zFilter, the subscriber can reach the
     publisher through the very same fabric. *)
  let outcome =
    Run.deliver (System.net sys) ~src:subscriber ~table:0 ~zfilter:z ~tree:[]
  in
  Alcotest.(check bool) "publisher reached" true outcome.Run.reached.(publisher)

let test_reverse_path_fill_reasonable () =
  let sys = sample_system () in
  let z = System.collect_reverse_path sys ~subscriber:39 ~publisher:0 ~table:2 in
  Alcotest.(check bool) "fill below limit" true (Zfilter.fill_factor z < 0.5)

let () =
  Alcotest.run "pubsub"
    [
      ( "topic",
        [
          Alcotest.test_case "stable hash" `Quick test_topic_stable_hash;
          Alcotest.test_case "id roundtrip" `Quick test_topic_id_roundtrip;
        ] );
      ( "rendezvous",
        [
          Alcotest.test_case "matching" `Quick test_rendezvous_matching;
          Alcotest.test_case "idempotent subscribe" `Quick
            test_rendezvous_idempotent_subscribe;
          Alcotest.test_case "unsubscribe" `Quick test_rendezvous_unsubscribe;
          Alcotest.test_case "generation" `Quick test_rendezvous_generation_tracks_changes;
        ] );
      ( "system",
        [
          Alcotest.test_case "requires advertise" `Quick test_publish_requires_advertise;
          Alcotest.test_case "requires subscribers" `Quick test_publish_requires_subscribers;
          Alcotest.test_case "delivers" `Quick test_publish_delivers;
          Alcotest.test_case "cache + invalidation" `Quick
            test_publish_cache_and_invalidation;
          Alcotest.test_case "publisher excluded" `Quick test_publisher_excluded_from_targets;
          Alcotest.test_case "all strategies deliver" `Quick
            test_selection_strategies_all_deliver;
          Alcotest.test_case "reverse path delivers" `Quick test_reverse_path_delivers_back;
          Alcotest.test_case "reverse path fill" `Quick test_reverse_path_fill_reasonable;
        ] );
    ]
