(* Smoke and sanity tests for Lipsin_experiments: every table/figure
   runner must execute with small trial counts and print a plausible
   report; the Trial harness's numbers must carry the paper's shape. *)

module E = Lipsin_experiments
module Trial = E.Trial
module Pipeline = E.Pipeline
module As_presets = Lipsin_topology.As_presets
module Lit = Lipsin_bloom.Lit
module Stats = Lipsin_util.Stats

let capture f =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  nl = 0 || scan 0

let check_runs name f expect =
  let out = capture f in
  Alcotest.(check bool) (name ^ " produces output") true (String.length out > 40);
  List.iter
    (fun s -> Alcotest.(check bool) (name ^ " mentions " ^ s) true (contains out s))
    expect

let test_table1 () = check_runs "table1" E.Table1.run [ "AS1221"; "TA2" ]
let test_table2 () = check_runs "table2" (E.Table2.run ~trials:30) [ "AS3257"; "unicast" ]
let test_table3 () = check_runs "table3" (E.Table3.run ~trials:30) [ "fpa/kc"; "std" ]
let test_fig5 () = check_runs "fig5" (E.Fig5.run ~trials:20) [ "AS6461" ]
let test_fig6 () = check_runs "fig6" (E.Fig6.run ~trials:5) [ "AS1221"; "50%" ]
let test_table4 () = check_runs "table4" (E.Table4.run ~samples:500) [ "hops" ]

let test_table5 () =
  check_runs "table5" (E.Table5.run ~batches:10 ~batch_size:100) [ "LIPSIN"; "wire" ]

let test_ftmem () = check_runs "ftmem" E.Ftmem.run [ "256 Kbit"; "48 Kbit" ]
let test_security () = check_runs "security" E.Security_exp.run [ "contamination"; "re-keying" ]
let test_recovery () = check_runs "recovery" (E.Recovery_exp.run ~trials:10) [ "VLId" ]
let test_interdomain () = check_runs "interdomain" (E.Interdomain_exp.run ~publications:5) [ "domain" ]
let test_workload () = check_runs "workload" (E.Workload_exp.run ~topics:100) [ "stateless" ]
let test_ablation () = check_runs "ablation" (E.Ablation.run ~trials:20) [ "248"; "crossover" ]
let test_splitting () = check_runs "splitting" (E.Splitting_exp.run ~trials:5) [ "vlink" ]
let test_adaptive_exp () = check_runs "adaptive" (E.Adaptive_exp.run ~topics:50) [ "m=120" ]
let test_caching_exp () = check_runs "caching" (E.Caching_exp.run ~fetches:100) [ "hit rate" ]
let test_congestion_exp () = check_runs "congestion" (E.Congestion_exp.run ~publications:40) [ "avoidance" ]
let test_bootstrap_exp () = check_runs "bootstrap" E.Bootstrap_exp.run [ "rounds"; "TA2" ]
let test_latency_exp () = check_runs "latency" (E.Latency_exp.run ~trials:20) [ "overlay" ]
let test_goodput_exp () = check_runs "goodput" (E.Goodput_exp.run ~topics:40) [ "ratio" ]
let test_multipath_exp () = check_runs "multipath" (E.Multipath_exp.run ~trials:20) [ "disjoint" ]
let test_directory_exp () = check_runs "directory" (E.Directory_exp.run ~lookups:500) [ "TB" ]
let test_fec_exp () = check_runs "fec" (E.Fec_exp.run ~windows:5) [ "FEC" ]
let test_churn_exp () = check_runs "churn" (E.Churn_exp.run ~joins:40) [ "covered" ]
let test_loops_exp () = check_runs "loops" (E.Loops_exp.run ~trials:15) [ "prevention" ]
let test_recursive_exp () = check_runs "recursive" (E.Recursive_exp.run ~trials:10) [ "stretch"; "weighted" ]

(* Shape assertions: the headline claims of the paper's evaluation. *)

let table2_config trials =
  { Trial.default_config with Trial.params = Lit.paper_variable; trials }

let test_efficiency_degrades_with_users () =
  let graph = As_presets.as3257 () in
  let config = table2_config 120 in
  let small = Trial.run config graph ~users:4 in
  let large = Trial.run config graph ~users:32 in
  Alcotest.(check bool) "4 users nearly perfect" true
    (small.Trial.efficiency_mean > 99.0);
  Alcotest.(check bool) "32 users notably worse" true
    (large.Trial.efficiency_mean < small.Trial.efficiency_mean -. 10.0);
  Alcotest.(check bool) "fpr grows" true (large.Trial.fpr_mean > small.Trial.fpr_mean)

let test_zfilter_beats_unicast_at_scale () =
  let graph = As_presets.as3257 () in
  let p = Trial.run (table2_config 120) graph ~users:24 in
  Alcotest.(check bool) "multicast beats repeated unicast" true
    (p.Trial.efficiency_mean > p.Trial.unicast_efficiency +. 15.0)

let test_fpr_selection_beats_standard () =
  let graph = As_presets.as6461 () in
  let base = { Trial.default_config with Trial.trials = 120 } in
  let std = Trial.run { base with Trial.selection = Trial.Standard } graph ~users:16 in
  let opt = Trial.run { base with Trial.selection = Trial.Fpr } graph ~users:16 in
  Alcotest.(check bool) "fpr-optimised clearly lower fpr" true
    (opt.Trial.fpr_mean < std.Trial.fpr_mean /. 1.5)

let test_pipeline_latency_affine_in_hops () =
  let measure hops =
    let chain = Pipeline.make_chain ~hops in
    (Pipeline.measure_one_way chain ~payload:"x" ~batches:20 ~batch_size:100)
      .Stats.mean
  in
  let l0 = measure 0 and l3 = measure 3 in
  Alcotest.(check bool) "3 hops cost more than 0" true (l3 > l0)

let test_pipeline_sends_through_all_hops () =
  let chain = Pipeline.make_chain ~hops:3 in
  Alcotest.(check int) "3 forwarding nodes forwarded" 3
    (Pipeline.send_through chain ~payload:"probe")

let test_trial_ci_shrinks_with_trials () =
  let graph = As_presets.ta2 () in
  let small = Trial.run { Trial.default_config with Trial.trials = 40 } graph ~users:16 in
  let large = Trial.run { Trial.default_config with Trial.trials = 400 } graph ~users:16 in
  Alcotest.(check bool) "CI positive" true (small.Trial.efficiency_ci95 > 0.0);
  Alcotest.(check bool) "more trials, tighter CI" true
    (large.Trial.efficiency_ci95 < small.Trial.efficiency_ci95)

let test_trial_rejects_single_user () =
  Alcotest.check_raises "users < 2"
    (Invalid_argument "Trial.run: users must be at least 2") (fun () ->
      ignore (Trial.run Trial.default_config (As_presets.ta2 ()) ~users:1))

let () =
  Alcotest.run "experiments"
    [
      ( "smoke",
        [
          Alcotest.test_case "table1" `Quick test_table1;
          Alcotest.test_case "table2" `Quick test_table2;
          Alcotest.test_case "table3" `Slow test_table3;
          Alcotest.test_case "fig5" `Slow test_fig5;
          Alcotest.test_case "fig6" `Quick test_fig6;
          Alcotest.test_case "table4" `Quick test_table4;
          Alcotest.test_case "table5" `Quick test_table5;
          Alcotest.test_case "ftmem" `Quick test_ftmem;
          Alcotest.test_case "security" `Quick test_security;
          Alcotest.test_case "recovery" `Quick test_recovery;
          Alcotest.test_case "interdomain" `Quick test_interdomain;
          Alcotest.test_case "workload" `Quick test_workload;
          Alcotest.test_case "ablation" `Quick test_ablation;
          Alcotest.test_case "splitting" `Quick test_splitting;
          Alcotest.test_case "adaptive" `Quick test_adaptive_exp;
          Alcotest.test_case "caching" `Quick test_caching_exp;
          Alcotest.test_case "congestion" `Quick test_congestion_exp;
          Alcotest.test_case "bootstrap" `Slow test_bootstrap_exp;
          Alcotest.test_case "latency" `Quick test_latency_exp;
          Alcotest.test_case "goodput" `Quick test_goodput_exp;
          Alcotest.test_case "multipath" `Quick test_multipath_exp;
          Alcotest.test_case "directory" `Quick test_directory_exp;
          Alcotest.test_case "fec" `Quick test_fec_exp;
          Alcotest.test_case "churn" `Quick test_churn_exp;
          Alcotest.test_case "loops" `Quick test_loops_exp;
          Alcotest.test_case "recursive" `Quick test_recursive_exp;
        ] );
      ( "shapes",
        [
          Alcotest.test_case "efficiency degrades with users" `Quick
            test_efficiency_degrades_with_users;
          Alcotest.test_case "beats unicast" `Quick test_zfilter_beats_unicast_at_scale;
          Alcotest.test_case "fpr-opt beats standard" `Quick
            test_fpr_selection_beats_standard;
          Alcotest.test_case "latency affine" `Quick test_pipeline_latency_affine_in_hops;
          Alcotest.test_case "pipeline hop count" `Quick
            test_pipeline_sends_through_all_hops;
          Alcotest.test_case "trial ci" `Quick test_trial_ci_shrinks_with_trials;
          Alcotest.test_case "trial validation" `Quick test_trial_rejects_single_user;
        ] );
    ]
