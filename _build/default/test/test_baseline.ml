(* Tests for Lipsin_baseline: Lpm, Unicast, Ip_multicast, Xcast. *)

module Lpm = Lipsin_baseline.Lpm
module Unicast = Lipsin_baseline.Unicast
module Ip_multicast = Lipsin_baseline.Ip_multicast
module Xcast = Lipsin_baseline.Xcast
module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module Generator = Lipsin_topology.Generator
module Rng = Lipsin_util.Rng

let test_lpm_basic () =
  let t = Lpm.create () in
  Lpm.add t ~prefix:0xC0A80000l ~len:16 ~next_hop:1;
  Lpm.add t ~prefix:0xC0A80100l ~len:24 ~next_hop:2;
  Alcotest.(check (option int)) "/24 wins" (Some 2) (Lpm.lookup t 0xC0A80142l);
  Alcotest.(check (option int)) "/16 fallback" (Some 1) (Lpm.lookup t 0xC0A84242l);
  Alcotest.(check (option int)) "no match" None (Lpm.lookup t 0x08080808l)

let test_lpm_default_route () =
  let t = Lpm.create () in
  Lpm.add t ~prefix:0l ~len:0 ~next_hop:9;
  Alcotest.(check (option int)) "default matches anything" (Some 9)
    (Lpm.lookup t 0xDEADBEEFl)

let test_lpm_host_route () =
  let t = Lpm.create () in
  Lpm.add t ~prefix:0x01020304l ~len:32 ~next_hop:4;
  Alcotest.(check (option int)) "exact host" (Some 4) (Lpm.lookup t 0x01020304l);
  Alcotest.(check (option int)) "neighbour misses" None (Lpm.lookup t 0x01020305l)

let test_lpm_overwrite_and_remove () =
  let t = Lpm.create () in
  Lpm.add t ~prefix:0x0A000000l ~len:8 ~next_hop:1;
  Lpm.add t ~prefix:0x0A000000l ~len:8 ~next_hop:2;
  Alcotest.(check int) "overwrite keeps one route" 1 (Lpm.size t);
  Alcotest.(check (option int)) "latest hop" (Some 2) (Lpm.lookup t 0x0A010101l);
  Alcotest.(check bool) "remove" true (Lpm.remove t ~prefix:0x0A000000l ~len:8);
  Alcotest.(check bool) "idempotent remove" false (Lpm.remove t ~prefix:0x0A000000l ~len:8);
  Alcotest.(check (option int)) "gone" None (Lpm.lookup t 0x0A010101l)

let test_lpm_rejects_bad_len () =
  let t = Lpm.create () in
  Alcotest.check_raises "len 33" (Invalid_argument "Lpm: prefix length outside [0,32]")
    (fun () -> Lpm.add t ~prefix:0l ~len:33 ~next_hop:0)

let test_lpm_reference_fib () =
  let t = Lpm.reference_fib () in
  Alcotest.(check int) "five entries" 5 (Lpm.size t);
  Alcotest.(check (option int)) "host route deepest" (Some 4)
    (Lpm.lookup t 0xC0A80101l);
  Alcotest.(check (option int)) "default exists" (Some 0) (Lpm.lookup t 0x7B7B7B7Bl)

(* Model check: LPM against a brute-force reference on random routes. *)
let prop_lpm_matches_naive =
  QCheck.Test.make ~name:"trie agrees with naive longest-prefix scan" ~count:100
    QCheck.small_nat
    (fun seed ->
      let rng = Rng.of_int (seed + 1) in
      let routes =
        List.init 30 (fun i ->
            let len = Rng.int rng 33 in
            let prefix = Int64.to_int32 (Rng.int64 rng) in
            (prefix, len, i))
      in
      let t = Lpm.create () in
      (* Later adds overwrite earlier same-prefix ones, as in the naive
         model below (assoc keeps the LAST write; build accordingly). *)
      List.iter (fun (p, len, h) -> Lpm.add t ~prefix:p ~len ~next_hop:h) routes;
      let mask len =
        if len = 0 then 0l else Int32.shift_left (-1l) (32 - len)
      in
      let applies addr (p, len, _) =
        Int32.logand addr (mask len) = Int32.logand p (mask len)
      in
      let naive addr =
        let best = ref None in
        List.iter
          (fun ((_, len, h) as r) ->
            if applies addr r then
              match !best with
              | Some (blen, _) when blen > len -> ()
              | Some (blen, _) when blen = len -> best := Some (len, h)
              | _ -> best := Some (len, h))
          routes;
        Option.map snd !best
      in
      let ok = ref true in
      for _ = 1 to 50 do
        let addr = Int64.to_int32 (Rng.int64 rng) in
        if Lpm.lookup t addr <> naive addr then ok := false
      done;
      !ok)

let line_graph n =
  let g = Graph.create ~nodes:n in
  for v = 0 to n - 2 do
    Graph.add_edge g v (v + 1)
  done;
  g

let test_unicast_line () =
  let g = line_graph 5 in
  (* Two subscribers at distance 2 and 4 share the first two links:
     unicast uses 2 + 4 = 6 traversals, the tree has 4 links. *)
  Alcotest.(check int) "uses" 6 (Unicast.link_uses g ~root:0 ~subscribers:[ 2; 4 ]);
  Alcotest.(check (float 1e-9)) "efficiency 4/6" (4.0 /. 6.0)
    (Unicast.efficiency g ~root:0 ~subscribers:[ 2; 4 ])

let test_unicast_single_subscriber_perfect () =
  let g = line_graph 4 in
  Alcotest.(check (float 1e-9)) "single subscriber 100%" 1.0
    (Unicast.efficiency g ~root:0 ~subscribers:[ 3 ])

let test_unicast_root_only () =
  let g = line_graph 3 in
  Alcotest.(check (float 1e-9)) "root-only trivial" 1.0
    (Unicast.efficiency g ~root:0 ~subscribers:[ 0 ])

let test_ssm_state_counting () =
  let g = line_graph 5 in
  let ssm = Ip_multicast.create g in
  let group = { Ip_multicast.source = 0; group_id = 1 } in
  Alcotest.(check int) "no members, no state" 0 (Ip_multicast.total_state ssm);
  Ip_multicast.join ssm group ~receiver:4;
  (* Tree 0-1-2-3-4: all five nodes hold state. *)
  Alcotest.(check int) "path state" 5 (Ip_multicast.total_state ssm);
  Alcotest.(check int) "state at mid router" 1 (Ip_multicast.state_at ssm 2);
  Ip_multicast.join ssm group ~receiver:2;
  Alcotest.(check int) "same tree, same state" 5 (Ip_multicast.total_state ssm);
  Ip_multicast.leave ssm group ~receiver:4;
  Alcotest.(check int) "pruned to 0-1-2" 3 (Ip_multicast.total_state ssm);
  Ip_multicast.leave ssm group ~receiver:2;
  Alcotest.(check int) "empty group drops all state" 0 (Ip_multicast.total_state ssm)

let test_ssm_tree_is_spt () =
  let g =
    Generator.pref_attach ~rng:(Rng.of_int 3) ~nodes:30 ~edges:50 ~max_degree:8 ()
  in
  let ssm = Ip_multicast.create g in
  let group = { Ip_multicast.source = 0; group_id = 7 } in
  List.iter (fun r -> Ip_multicast.join ssm group ~receiver:r) [ 10; 20; 29 ];
  let expected = Spt.delivery_tree g ~root:0 ~subscribers:[ 10; 20; 29 ] in
  Alcotest.(check int) "tree matches SPT" (List.length expected)
    (List.length (Ip_multicast.tree_links ssm group));
  Alcotest.(check (list int)) "receivers sorted" [ 10; 20; 29 ]
    (Ip_multicast.receivers ssm group)

let test_xcast_header_sizes () =
  Alcotest.(check int) "one dest" 8 (Xcast.header_bytes ~destinations:1);
  Alcotest.(check int) "zfilter header" 36 (Xcast.zfilter_header_bytes ~m:248);
  let crossover = Xcast.crossover_destinations ~m:248 in
  Alcotest.(check bool) "below crossover smaller" true
    (Xcast.header_bytes ~destinations:(crossover - 1) <= 36);
  Alcotest.(check bool) "at crossover bigger" true
    (Xcast.header_bytes ~destinations:crossover > 36)

let test_xcast_delivery_cost_line () =
  let g = line_graph 4 in
  (* Single subscriber at distance 3: three links each carrying a
     1-destination header of 8 bytes. *)
  Alcotest.(check int) "header cost" 24
    (Xcast.delivery_header_cost g ~root:0 ~subscribers:[ 3 ]);
  Alcotest.(check int) "rewrites" 3
    (Xcast.rewrite_operations g ~root:0 ~subscribers:[ 3 ])

let test_xcast_shared_links_carry_more () =
  let g = line_graph 4 in
  (* Subscribers at 2 and 3: links 0-1,1-2 carry 2 dests (12B), link
     2-3 carries 1 (8B). *)
  Alcotest.(check int) "header bytes" ((2 * 12) + 8)
    (Xcast.delivery_header_cost g ~root:0 ~subscribers:[ 2; 3 ])

let () =
  Alcotest.run "baseline"
    [
      ( "lpm",
        [
          Alcotest.test_case "basic" `Quick test_lpm_basic;
          Alcotest.test_case "default route" `Quick test_lpm_default_route;
          Alcotest.test_case "host route" `Quick test_lpm_host_route;
          Alcotest.test_case "overwrite/remove" `Quick test_lpm_overwrite_and_remove;
          Alcotest.test_case "rejects bad len" `Quick test_lpm_rejects_bad_len;
          Alcotest.test_case "reference fib" `Quick test_lpm_reference_fib;
          QCheck_alcotest.to_alcotest prop_lpm_matches_naive;
        ] );
      ( "unicast",
        [
          Alcotest.test_case "line" `Quick test_unicast_line;
          Alcotest.test_case "single subscriber" `Quick
            test_unicast_single_subscriber_perfect;
          Alcotest.test_case "root only" `Quick test_unicast_root_only;
        ] );
      ( "ip_multicast",
        [
          Alcotest.test_case "state counting" `Quick test_ssm_state_counting;
          Alcotest.test_case "tree is SPT" `Quick test_ssm_tree_is_spt;
        ] );
      ( "xcast",
        [
          Alcotest.test_case "header sizes" `Quick test_xcast_header_sizes;
          Alcotest.test_case "delivery cost" `Quick test_xcast_delivery_cost_line;
          Alcotest.test_case "shared links" `Quick test_xcast_shared_links_carry_more;
        ] );
    ]
