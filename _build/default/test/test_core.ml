(* Tests for Lipsin_core: Assignment, Candidate, Select. *)

module Bitvec = Lipsin_bitvec.Bitvec
module Lit = Lipsin_bloom.Lit
module Zfilter = Lipsin_bloom.Zfilter
module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module Generator = Lipsin_topology.Generator
module Assignment = Lipsin_core.Assignment
module Candidate = Lipsin_core.Candidate
module Select = Lipsin_core.Select
module Rng = Lipsin_util.Rng

let sample_graph () =
  let g = Graph.create ~nodes:8 in
  List.iter (fun (u, v) -> Graph.add_edge g u v)
    [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 6); (6, 7); (0, 7); (1, 6); (2, 5) ];
  g

let sample_assignment ?(params = Lit.default) ?(seed = 1) () =
  Assignment.make params (Rng.of_int seed) (sample_graph ())

let test_assignment_covers_all_links () =
  let asg = sample_assignment () in
  let g = Assignment.graph asg in
  Alcotest.(check int) "lit per directed link" (Graph.link_count g)
    (Assignment.link_count asg);
  Graph.iter_links g (fun l ->
      let lit = Assignment.lit asg l in
      Alcotest.(check int) "k bits" 5 (Bitvec.popcount (Lit.tag lit 0)))

let test_assignment_directions_differ () =
  let asg = sample_assignment () in
  let g = Assignment.graph asg in
  let l = Graph.link g 0 in
  let r = Graph.reverse_link g l in
  Alcotest.(check bool) "both directions named independently" false
    (Bitvec.equal (Assignment.tag asg l ~table:0) (Assignment.tag asg r ~table:0))

let test_assignment_deterministic () =
  let a = sample_assignment ~seed:9 () and b = sample_assignment ~seed:9 () in
  let g = Assignment.graph a in
  Graph.iter_links g (fun l ->
      Alcotest.(check bool) "same tags" true
        (Bitvec.equal (Assignment.tag a l ~table:3) (Assignment.tag b l ~table:3)))

let test_rekey_changes_tags () =
  let asg = sample_assignment () in
  let g = Assignment.graph asg in
  let rekeyed = Assignment.rekey asg (Rng.of_int 777) in
  let changed = ref 0 in
  Graph.iter_links g (fun l ->
      if
        not
          (Bitvec.equal (Assignment.tag asg l ~table:0)
             (Assignment.tag rekeyed l ~table:0))
      then incr changed);
  Alcotest.(check int) "every link rekeyed" (Graph.link_count g) !changed

let test_rekey_link_is_local () =
  let asg = sample_assignment () in
  let g = Assignment.graph asg in
  let target = Graph.link g 3 in
  let rekeyed = Assignment.rekey_link asg target (Rng.of_int 5) in
  Graph.iter_links g (fun l ->
      let same =
        Bitvec.equal (Assignment.tag asg l ~table:0)
          (Assignment.tag rekeyed l ~table:0)
      in
      if l.Graph.index = target.Graph.index then
        Alcotest.(check bool) "target changed" false same
      else Alcotest.(check bool) "others unchanged" true same)

let tree_for asg root subscribers =
  Spt.delivery_tree (Assignment.graph asg) ~root ~subscribers

let test_candidates_one_per_table () =
  let asg = sample_assignment () in
  let tree = tree_for asg 0 [ 3; 5 ] in
  let candidates = Candidate.build asg ~tree in
  Alcotest.(check int) "d candidates" 8 (Array.length candidates);
  Array.iteri
    (fun i c ->
      Alcotest.(check int) "table index" i c.Candidate.table;
      Alcotest.(check bool) "contains tree" true
        (Candidate.matches_all_tree_links asg c))
    candidates

let test_candidate_rejects_empty_tree () =
  let asg = sample_assignment () in
  Alcotest.check_raises "empty tree"
    (Invalid_argument "Candidate.build_one: empty tree") (fun () ->
      ignore (Candidate.build_one asg ~tree:[] ~table:0))

let test_candidate_rejects_bad_table () =
  let asg = sample_assignment () in
  let tree = tree_for asg 0 [ 2 ] in
  Alcotest.check_raises "bad table"
    (Invalid_argument "Candidate.build_one: table index out of range") (fun () ->
      ignore (Candidate.build_one asg ~tree ~table:8))

let test_fpa_formula () =
  let asg = sample_assignment () in
  let tree = tree_for asg 0 [ 4 ] in
  let c = Candidate.build_one asg ~tree ~table:0 in
  Alcotest.(check (float 1e-9)) "fpa = rho^k"
    (Candidate.fill_factor c ** 5.0)
    (Candidate.fpa c)

let test_select_fpa_picks_minimum () =
  let asg = sample_assignment ~params:Lit.paper_variable () in
  let tree = tree_for asg 0 [ 3; 5; 6 ] in
  let candidates = Candidate.build asg ~tree in
  match Select.select_fpa candidates with
  | None -> Alcotest.fail "selection must succeed"
  | Some best ->
    Array.iter
      (fun c ->
        Alcotest.(check bool) "no candidate beats the winner" true
          (Candidate.fpa best <= Candidate.fpa c))
      candidates

let test_select_fill_limit_excludes_all () =
  let asg = sample_assignment () in
  (* A tree over every link overfills m=248 on this graph?  No — 20
     links * ~5 bits ~ 88 bits ~ 0.35.  Force a tiny limit instead. *)
  let tree = tree_for asg 0 [ 3; 5; 6 ] in
  let candidates = Candidate.build asg ~tree in
  Alcotest.(check bool) "all excluded under absurd limit" true
    (Select.select_fpa ~fill_limit:0.001 candidates = None)

let test_default_test_set_excludes_tree () =
  let asg = sample_assignment () in
  let tree = tree_for asg 0 [ 4; 6 ] in
  let test = Select.default_test_set asg ~tree in
  let tree_idx = List.map (fun l -> l.Graph.index) tree in
  List.iter
    (fun l ->
      Alcotest.(check bool) "test link not on tree" false
        (List.mem l.Graph.index tree_idx))
    test;
  Alcotest.(check bool) "test set non-empty" true (test <> [])

let test_count_false_positives_zero_for_disjoint () =
  (* A candidate built from links whose tags are known cannot falsely
     match a test set that is empty. *)
  let asg = sample_assignment () in
  let tree = tree_for asg 0 [ 2 ] in
  let c = Candidate.build_one asg ~tree ~table:0 in
  Alcotest.(check int) "no tests, no fps" 0
    (Select.count_false_positives asg c ~test:[])

let test_select_fpr_not_worse_than_standard () =
  let asg = sample_assignment ~params:Lit.paper_variable ~seed:4 () in
  let tree = tree_for asg 1 [ 4; 7; 5 ] in
  let candidates = Candidate.build asg ~tree in
  let test = Select.default_test_set asg ~tree in
  match Select.select_fpr asg candidates ~test with
  | None -> Alcotest.fail "selection must succeed"
  | Some best ->
    let standard = Select.standard candidates in
    Alcotest.(check bool) "fpr-opt <= standard observed fps" true
      (Select.count_false_positives asg best ~test
      <= Select.count_false_positives asg standard ~test)

let test_select_weighted_respects_hard_avoidance () =
  let asg = sample_assignment ~seed:6 () in
  let tree = tree_for asg 0 [ 5 ] in
  let candidates = Candidate.build asg ~tree in
  let test = Select.default_test_set asg ~tree in
  let weight = Select.avoid_set test in
  (* All test links weighted 1000: the chosen candidate minimises
     weighted fps, equivalent to fpr with uniform heavy weights. *)
  match
    ( Select.select_weighted asg candidates ~test ~weight,
      Select.select_fpr asg candidates ~test )
  with
  | Some w, Some f ->
    Alcotest.(check int) "same observed fp count"
      (Select.count_false_positives asg f ~test)
      (Select.count_false_positives asg w ~test)
  | _ -> Alcotest.fail "both selections must succeed"

let test_standard_requires_candidates () =
  Alcotest.check_raises "empty" (Invalid_argument "Select.standard: no candidates")
    (fun () -> ignore (Select.standard [||]))

(* Properties. *)

let prop_candidates_contain_tree =
  QCheck.Test.make ~name:"every candidate contains its tree (no false negatives)"
    ~count:150
    QCheck.(pair small_nat (int_range 2 10))
    (fun (seed, subs) ->
      let g =
        Generator.pref_attach ~rng:(Rng.of_int (seed + 17)) ~nodes:40 ~edges:70
          ~max_degree:10 ()
      in
      let asg = Assignment.make Lit.paper_variable (Rng.of_int seed) g in
      let rng = Rng.of_int (seed + 99) in
      let picks = Rng.sample rng (subs + 1) 40 in
      let tree =
        Spt.delivery_tree g ~root:picks.(0)
          ~subscribers:(Array.to_list (Array.sub picks 1 subs))
      in
      let candidates = Candidate.build asg ~tree in
      Array.for_all (fun c -> Candidate.matches_all_tree_links asg c) candidates)

let prop_fpa_selection_minimises =
  QCheck.Test.make ~name:"fpa selection minimises rho^k" ~count:150
    QCheck.(pair small_nat (int_range 2 8))
    (fun (seed, subs) ->
      let g =
        Generator.waxman ~rng:(Rng.of_int (seed + 29)) ~nodes:30 ~edges:50
          ~max_degree:10 ()
      in
      let asg = Assignment.make Lit.paper_variable (Rng.of_int seed) g in
      let rng = Rng.of_int (seed + 7) in
      let picks = Rng.sample rng (subs + 1) 30 in
      let tree =
        Spt.delivery_tree g ~root:picks.(0)
          ~subscribers:(Array.to_list (Array.sub picks 1 subs))
      in
      let candidates = Candidate.build asg ~tree in
      match Select.select_fpa ~fill_limit:1.0 candidates with
      | None -> false
      | Some best ->
        Array.for_all (fun c -> Candidate.fpa best <= Candidate.fpa c) candidates)

let () =
  Alcotest.run "core"
    [
      ( "assignment",
        [
          Alcotest.test_case "covers all links" `Quick test_assignment_covers_all_links;
          Alcotest.test_case "directions differ" `Quick test_assignment_directions_differ;
          Alcotest.test_case "deterministic" `Quick test_assignment_deterministic;
          Alcotest.test_case "rekey all" `Quick test_rekey_changes_tags;
          Alcotest.test_case "rekey one link" `Quick test_rekey_link_is_local;
        ] );
      ( "candidate",
        [
          Alcotest.test_case "one per table" `Quick test_candidates_one_per_table;
          Alcotest.test_case "rejects empty tree" `Quick test_candidate_rejects_empty_tree;
          Alcotest.test_case "rejects bad table" `Quick test_candidate_rejects_bad_table;
          Alcotest.test_case "fpa formula" `Quick test_fpa_formula;
          QCheck_alcotest.to_alcotest prop_candidates_contain_tree;
        ] );
      ( "select",
        [
          Alcotest.test_case "fpa picks minimum" `Quick test_select_fpa_picks_minimum;
          Alcotest.test_case "fill limit excludes" `Quick
            test_select_fill_limit_excludes_all;
          Alcotest.test_case "test set excludes tree" `Quick
            test_default_test_set_excludes_tree;
          Alcotest.test_case "empty test set" `Quick
            test_count_false_positives_zero_for_disjoint;
          Alcotest.test_case "fpr beats standard" `Quick
            test_select_fpr_not_worse_than_standard;
          Alcotest.test_case "weighted avoidance" `Quick
            test_select_weighted_respects_hard_avoidance;
          Alcotest.test_case "standard requires candidates" `Quick
            test_standard_requires_candidates;
          QCheck_alcotest.to_alcotest prop_fpa_selection_minimises;
        ] );
    ]
