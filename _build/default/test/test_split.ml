(* Tests for Lipsin_core.Split (multiple sending) and
   Lipsin_core.Adaptive (variable filter width). *)

module Lit = Lipsin_bloom.Lit
module Zfilter = Lipsin_bloom.Zfilter
module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module Generator = Lipsin_topology.Generator
module As_presets = Lipsin_topology.As_presets
module Assignment = Lipsin_core.Assignment
module Candidate = Lipsin_core.Candidate
module Split = Lipsin_core.Split
module Adaptive = Lipsin_core.Adaptive
module Net = Lipsin_sim.Net
module Run = Lipsin_sim.Run
module Rng = Lipsin_util.Rng

let setup () =
  let g = As_presets.as3257 () in
  (g, Assignment.make Lit.default (Rng.of_int 41) g)

let test_small_set_single_part () =
  let g, asg = setup () in
  ignore g;
  match Split.plan asg ~root:0 ~subscribers:[ 10; 20; 30 ] with
  | Error e -> Alcotest.fail e
  | Ok parts ->
    Alcotest.(check int) "one part suffices" 1 (List.length parts);
    Alcotest.(check int) "no duplicates" 0 (Split.duplicate_traversals parts)

let test_large_set_splits_under_limit () =
  let g, asg = setup () in
  let rng = Rng.of_int 43 in
  let subscribers = Array.to_list (Rng.sample rng 80 (Graph.node_count g)) in
  match Split.plan ~fill_limit:0.3 asg ~root:0 ~subscribers with
  | Error e -> Alcotest.fail e
  | Ok parts ->
    Alcotest.(check bool) "several parts" true (List.length parts > 1);
    List.iter
      (fun p ->
        Alcotest.(check bool) "part under limit" true
          (Candidate.fill_factor p.Split.candidate <= 0.3))
      parts;
    (* Every subscriber is covered by exactly one part. *)
    let covered = List.concat_map (fun p -> p.Split.subscribers) parts in
    let wanted = List.sort_uniq compare (List.filter (fun s -> s <> 0) subscribers) in
    Alcotest.(check (list int)) "all covered once" wanted
      (List.sort compare covered)

let test_split_parts_deliver () =
  let g, asg = setup () in
  let net = Net.make asg in
  let rng = Rng.of_int 47 in
  let subscribers = Array.to_list (Rng.sample rng 60 (Graph.node_count g)) in
  match Split.plan ~fill_limit:0.35 asg ~root:5 ~subscribers with
  | Error e -> Alcotest.fail e
  | Ok parts ->
    List.iter
      (fun p ->
        let o =
          Run.deliver net ~src:5 ~table:p.Split.candidate.Candidate.table
            ~zfilter:p.Split.candidate.Candidate.zfilter ~tree:p.Split.tree
        in
        Alcotest.(check bool) "part delivers its subscribers" true
          (Run.all_reached o p.Split.subscribers))
      parts

let test_duplicates_counted () =
  let g, asg = setup () in
  ignore g;
  let rng = Rng.of_int 53 in
  let subscribers = Array.to_list (Rng.sample rng 70 (Graph.node_count g)) in
  match Split.plan ~fill_limit:0.25 asg ~root:0 ~subscribers with
  | Error e -> Alcotest.fail e
  | Ok parts ->
    if List.length parts > 1 then
      (* Trees from the same root almost surely share first-hop links. *)
      Alcotest.(check bool) "overlap exists and is counted" true
        (Split.duplicate_traversals parts > 0);
    Alcotest.(check bool) "total >= union" true
      (Split.total_traversals parts
      >= Split.total_traversals parts - Split.duplicate_traversals parts)

let test_split_errors_on_empty () =
  let _, asg = setup () in
  match Split.plan asg ~root:3 ~subscribers:[ 3 ] with
  | Error msg -> Alcotest.(check string) "empty" "no subscribers to split over" msg
  | Ok _ -> Alcotest.fail "self-only must fail"

let adaptive_setup () =
  let g = As_presets.as6461 () in
  (g, Adaptive.make ~d:8 ~k:5 (Rng.of_int 61) g)

let test_adaptive_widths_share_nonces () =
  let g, ad = adaptive_setup () in
  let a120 = Adaptive.assignment ad ~m:120 in
  let a504 = Adaptive.assignment ad ~m:504 in
  let l = Graph.link g 0 in
  Alcotest.(check int64) "same nonce at both widths"
    (Lit.nonce (Assignment.lit a120 l))
    (Lit.nonce (Assignment.lit a504 l))

let test_adaptive_small_tree_uses_narrow () =
  let g, ad = adaptive_setup () in
  let tree = Spt.delivery_tree g ~root:0 ~subscribers:[ 1 ] in
  match Adaptive.choose ad ~tree ~target_fpa:0.001 () with
  | None -> Alcotest.fail "tiny tree must encode"
  | Some c ->
    Alcotest.(check int) "narrowest width" 120 c.Adaptive.m;
    Alcotest.(check int) "20-byte header" 20 c.Adaptive.header_bytes

let test_adaptive_large_tree_uses_wide () =
  let g, ad = adaptive_setup () in
  let rng = Rng.of_int 67 in
  let picks = Rng.sample rng 33 (Graph.node_count g) in
  let tree =
    Spt.delivery_tree g ~root:picks.(0)
      ~subscribers:(Array.to_list (Array.sub picks 1 32))
  in
  match Adaptive.choose ad ~tree ~target_fpa:0.0001 () with
  | None -> Alcotest.fail "must fall back to widest"
  | Some c -> Alcotest.(check bool) "wider than 120" true (c.Adaptive.m > 120)

let test_adaptive_choice_delivers () =
  let g, ad = adaptive_setup () in
  let rng = Rng.of_int 71 in
  let picks = Rng.sample rng 9 (Graph.node_count g) in
  let root = picks.(0) in
  let subscribers = Array.to_list (Array.sub picks 1 8) in
  let tree = Spt.delivery_tree g ~root ~subscribers in
  match Adaptive.choose ad ~tree ~target_fpa:0.01 () with
  | None -> Alcotest.fail "must choose"
  | Some c ->
    let asg = Adaptive.assignment ad ~m:c.Adaptive.m in
    let net = Net.make asg in
    let o =
      Run.deliver net ~src:root ~table:c.Adaptive.candidate.Candidate.table
        ~zfilter:c.Adaptive.candidate.Candidate.zfilter ~tree
    in
    Alcotest.(check bool) "delivers at chosen width" true
      (Run.all_reached o subscribers)

let test_adaptive_validates () =
  let g = As_presets.ta2 () in
  Alcotest.check_raises "unsorted" (Invalid_argument "Adaptive.make: widths must be ascending")
    (fun () -> ignore (Adaptive.make ~widths:[ 248; 120 ] ~d:2 ~k:5 (Rng.of_int 1) g));
  let ad = Adaptive.make ~d:2 ~k:5 (Rng.of_int 1) g in
  Alcotest.check_raises "unknown width"
    (Invalid_argument "Adaptive.assignment: unsupported width") (fun () ->
      ignore (Adaptive.assignment ad ~m:64))

let prop_adaptive_monotone_header =
  QCheck.Test.make ~name:"looser fpa target never widens the header" ~count:40
    QCheck.(int_range 1 500)
    (fun seed ->
      let g =
        Generator.pref_attach ~rng:(Rng.of_int seed) ~nodes:30 ~edges:50
          ~max_degree:8 ()
      in
      let ad = Adaptive.make ~d:4 ~k:5 (Rng.of_int (seed + 1)) g in
      let rng = Rng.of_int (seed + 2) in
      let picks = Rng.sample rng 6 30 in
      let tree =
        Spt.delivery_tree g ~root:picks.(0)
          ~subscribers:(Array.to_list (Array.sub picks 1 5))
      in
      match
        ( Adaptive.choose ad ~tree ~target_fpa:0.0001 (),
          Adaptive.choose ad ~tree ~target_fpa:0.1 () )
      with
      | Some strict, Some loose -> loose.Adaptive.m <= strict.Adaptive.m
      | _ -> false)

let () =
  Alcotest.run "split-adaptive"
    [
      ( "split",
        [
          Alcotest.test_case "single part" `Quick test_small_set_single_part;
          Alcotest.test_case "splits under limit" `Quick
            test_large_set_splits_under_limit;
          Alcotest.test_case "parts deliver" `Quick test_split_parts_deliver;
          Alcotest.test_case "duplicates counted" `Quick test_duplicates_counted;
          Alcotest.test_case "errors on empty" `Quick test_split_errors_on_empty;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "shared nonces" `Quick test_adaptive_widths_share_nonces;
          Alcotest.test_case "narrow for small" `Quick test_adaptive_small_tree_uses_narrow;
          Alcotest.test_case "wide for large" `Quick test_adaptive_large_tree_uses_wide;
          Alcotest.test_case "choice delivers" `Quick test_adaptive_choice_delivers;
          Alcotest.test_case "validates" `Quick test_adaptive_validates;
          QCheck_alcotest.to_alcotest prop_adaptive_monotone_header;
        ] );
    ]
