(* Tests for Lipsin_cache: Store (LRU) and Network_cache. *)

module Store = Lipsin_cache.Store
module Network_cache = Lipsin_cache.Network_cache
module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module Generator = Lipsin_topology.Generator
module Rng = Lipsin_util.Rng

let test_store_basic () =
  let s = Store.create ~capacity:3 in
  Alcotest.(check int) "empty" 0 (Store.size s);
  Store.insert s ~topic:1L ~payload:"a";
  Store.insert s ~topic:2L ~payload:"b";
  Alcotest.(check (option string)) "hit" (Some "a") (Store.lookup s ~topic:1L);
  Alcotest.(check (option string)) "miss" None (Store.lookup s ~topic:9L);
  Alcotest.(check int) "size 2" 2 (Store.size s)

let test_store_rejects_zero_capacity () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Store.create: capacity must be positive") (fun () ->
      ignore (Store.create ~capacity:0))

let test_store_update_refreshes () =
  let s = Store.create ~capacity:2 in
  Store.insert s ~topic:1L ~payload:"old";
  Store.insert s ~topic:1L ~payload:"new";
  Alcotest.(check int) "still one entry" 1 (Store.size s);
  Alcotest.(check (option string)) "latest payload" (Some "new")
    (Store.lookup s ~topic:1L)

let test_store_lru_eviction () =
  let s = Store.create ~capacity:2 in
  Store.insert s ~topic:1L ~payload:"a";
  Store.insert s ~topic:2L ~payload:"b";
  (* Touch 1 so 2 becomes LRU. *)
  ignore (Store.lookup s ~topic:1L);
  Store.insert s ~topic:3L ~payload:"c";
  Alcotest.(check bool) "2 evicted" false (Store.mem s ~topic:2L);
  Alcotest.(check bool) "1 kept (recently used)" true (Store.mem s ~topic:1L);
  Alcotest.(check bool) "3 present" true (Store.mem s ~topic:3L)

let test_store_eviction_order_fifo_without_touches () =
  let s = Store.create ~capacity:3 in
  List.iter (fun (t, p) -> Store.insert s ~topic:t ~payload:p)
    [ (1L, "a"); (2L, "b"); (3L, "c"); (4L, "d"); (5L, "e") ];
  Alcotest.(check bool) "1 evicted" false (Store.mem s ~topic:1L);
  Alcotest.(check bool) "2 evicted" false (Store.mem s ~topic:2L);
  List.iter
    (fun t -> Alcotest.(check bool) "recent kept" true (Store.mem s ~topic:t))
    [ 3L; 4L; 5L ]

let test_store_clear () =
  let s = Store.create ~capacity:4 in
  Store.insert s ~topic:1L ~payload:"x";
  Store.clear s;
  Alcotest.(check int) "cleared" 0 (Store.size s);
  (* Still usable after clear. *)
  Store.insert s ~topic:2L ~payload:"y";
  Alcotest.(check bool) "usable" true (Store.mem s ~topic:2L)

let prop_store_never_exceeds_capacity =
  QCheck.Test.make ~name:"LRU never exceeds capacity" ~count:100
    QCheck.(pair (int_range 1 10) (list_of_size (QCheck.Gen.int_range 0 60) (int_range 0 20)))
    (fun (capacity, inserts) ->
      let s = Store.create ~capacity in
      List.iter
        (fun t -> Store.insert s ~topic:(Int64.of_int t) ~payload:"p")
        inserts;
      Store.size s <= capacity)

let line_graph n =
  let g = Graph.create ~nodes:n in
  for v = 0 to n - 2 do
    Graph.add_edge g v (v + 1)
  done;
  g

let test_network_cache_serves_from_midpath () =
  let g = line_graph 8 in
  let nc = Network_cache.create g ~capacity:8 in
  (* Publication travelled 0 -> 5: nodes 0..5 cache it. *)
  let tree = Spt.delivery_tree g ~root:0 ~subscribers:[ 5 ] in
  Network_cache.on_delivery nc ~tree ~topic:42L ~payload:"data";
  (* Node 7 (not on the tree) fetches: path 7->0 hits the cache at 5. *)
  match Network_cache.fetch nc ~subscriber:7 ~publisher:0 ~topic:42L with
  | None -> Alcotest.fail "cache must answer"
  | Some f ->
    Alcotest.(check string) "payload" "data" f.Network_cache.payload;
    Alcotest.(check int) "served two hops away" 2 f.Network_cache.hops;
    Alcotest.(check int) "vs seven to the publisher" 7 f.Network_cache.full_hops;
    Alcotest.(check int) "served by node 5" 5 f.Network_cache.served_by

let test_network_cache_local_hit_is_free () =
  let g = line_graph 4 in
  let nc = Network_cache.create g ~capacity:4 in
  let tree = Spt.delivery_tree g ~root:0 ~subscribers:[ 3 ] in
  Network_cache.on_delivery nc ~tree ~topic:1L ~payload:"p";
  match Network_cache.fetch nc ~subscriber:3 ~publisher:0 ~topic:1L with
  | Some f -> Alcotest.(check int) "zero hops" 0 f.Network_cache.hops
  | None -> Alcotest.fail "subscriber cached its own copy"

let test_network_cache_miss () =
  let g = line_graph 4 in
  let nc = Network_cache.create g ~capacity:4 in
  Alcotest.(check bool) "nothing cached" true
    (Network_cache.fetch nc ~subscriber:3 ~publisher:0 ~topic:9L = None)

let test_network_cache_decouples_in_time () =
  (* The publisher itself can be "gone": after eviction everywhere
     except some midpath node, the data is still reachable. *)
  let g = line_graph 6 in
  let nc = Network_cache.create g ~capacity:1 in
  let tree = Spt.delivery_tree g ~root:0 ~subscribers:[ 4 ] in
  Network_cache.on_delivery nc ~tree ~topic:7L ~payload:"old";
  (* New publications push the old topic out of most caches... *)
  List.iteri
    (fun i node ->
      if node <> 2 then
        Store.insert (Network_cache.store_at nc node)
          ~topic:(Int64.of_int (100 + i))
          ~payload:"newer")
    [ 0; 1; 3; 4 ];
  match Network_cache.fetch nc ~subscriber:5 ~publisher:0 ~topic:7L with
  | Some f ->
    Alcotest.(check int) "node 2 still has it" 2 f.Network_cache.served_by
  | None -> Alcotest.fail "surviving replica must answer"

let test_network_cache_random_graph_consistency () =
  let g =
    Generator.pref_attach ~rng:(Rng.of_int 3) ~nodes:30 ~edges:50 ~max_degree:8 ()
  in
  let nc = Network_cache.create g ~capacity:16 in
  let tree = Spt.delivery_tree g ~root:0 ~subscribers:[ 15; 25 ] in
  Network_cache.on_delivery nc ~tree ~topic:5L ~payload:"pub";
  (* Anyone on the tree fetches at 0 hops; everyone reachable fetches
     at most their distance to the publisher. *)
  let dist = Spt.distances g ~root:0 in
  for v = 0 to 29 do
    match Network_cache.fetch nc ~subscriber:v ~publisher:0 ~topic:5L with
    | Some f ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d hops bounded" v)
        true
        (f.Network_cache.hops <= dist.(v))
    | None -> Alcotest.fail "publisher end always has it"
  done

let () =
  Alcotest.run "cache"
    [
      ( "store",
        [
          Alcotest.test_case "basic" `Quick test_store_basic;
          Alcotest.test_case "zero capacity" `Quick test_store_rejects_zero_capacity;
          Alcotest.test_case "update refreshes" `Quick test_store_update_refreshes;
          Alcotest.test_case "lru eviction" `Quick test_store_lru_eviction;
          Alcotest.test_case "fifo without touches" `Quick
            test_store_eviction_order_fifo_without_touches;
          Alcotest.test_case "clear" `Quick test_store_clear;
          QCheck_alcotest.to_alcotest prop_store_never_exceeds_capacity;
        ] );
      ( "network",
        [
          Alcotest.test_case "midpath hit" `Quick test_network_cache_serves_from_midpath;
          Alcotest.test_case "local hit" `Quick test_network_cache_local_hit_is_free;
          Alcotest.test_case "miss" `Quick test_network_cache_miss;
          Alcotest.test_case "time decoupling" `Quick test_network_cache_decouples_in_time;
          Alcotest.test_case "random graph" `Quick
            test_network_cache_random_graph_consistency;
        ] );
    ]
