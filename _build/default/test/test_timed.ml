(* Tests for Lipsin_sim.Timed (time-domain delivery) and
   Lipsin_sim.Load (congestion accounting + avoidance selection). *)

module Lit = Lipsin_bloom.Lit
module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module Generator = Lipsin_topology.Generator
module As_presets = Lipsin_topology.As_presets
module Assignment = Lipsin_core.Assignment
module Candidate = Lipsin_core.Candidate
module Select = Lipsin_core.Select
module Net = Lipsin_sim.Net
module Run = Lipsin_sim.Run
module Timed = Lipsin_sim.Timed
module Load = Lipsin_sim.Load
module Stats = Lipsin_util.Stats
module Rng = Lipsin_util.Rng

let line_setup n =
  let g = Graph.create ~nodes:n in
  for v = 0 to n - 2 do
    Graph.add_edge g v (v + 1)
  done;
  let asg = Assignment.make Lit.default (Rng.of_int 1) g in
  (g, asg, Net.make asg)

let test_timed_line_latency_affine () =
  let g, asg, net = line_setup 6 in
  let tree = Spt.delivery_tree g ~root:0 ~subscribers:[ 5 ] in
  let c = Candidate.build_one asg ~tree ~table:0 in
  let arrivals = Timed.deliver net ~src:0 ~table:0 ~zfilter:c.Candidate.zfilter in
  let per_hop = Timed.default.Timed.node_us +. Timed.default.Timed.link_us in
  List.iter
    (fun a ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "node %d at depth*per_hop" a.Timed.node)
        (float_of_int a.Timed.depth *. per_hop)
        a.Timed.time_us)
    arrivals;
  Alcotest.(check (option (float 1e-9))) "5 hops away" (Some (5.0 *. per_hop))
    (Timed.latency_to arrivals 5)

let test_timed_source_at_zero () =
  let g, asg, net = line_setup 4 in
  let tree = Spt.delivery_tree g ~root:0 ~subscribers:[ 3 ] in
  let c = Candidate.build_one asg ~tree ~table:0 in
  let arrivals = Timed.deliver net ~src:0 ~table:0 ~zfilter:c.Candidate.zfilter in
  match arrivals with
  | first :: _ ->
    Alcotest.(check int) "source first" 0 first.Timed.node;
    Alcotest.(check (float 1e-9)) "at zero" 0.0 first.Timed.time_us
  | [] -> Alcotest.fail "source must arrive"

let test_timed_branching_is_parallel () =
  (* Star: all leaves arrive at the same instant — hardware fan-out. *)
  let g = Graph.create ~nodes:5 in
  for leaf = 1 to 4 do
    Graph.add_edge g 0 leaf
  done;
  let asg = Assignment.make Lit.default (Rng.of_int 2) g in
  let net = Net.make asg in
  let tree = Spt.delivery_tree g ~root:0 ~subscribers:[ 1; 2; 3; 4 ] in
  let c = Candidate.build_one asg ~tree ~table:0 in
  let arrivals = Timed.deliver net ~src:0 ~table:0 ~zfilter:c.Candidate.zfilter in
  match Timed.subscriber_latencies arrivals [ 1; 2; 3; 4 ] with
  | None -> Alcotest.fail "all leaves reached"
  | Some s ->
    Alcotest.(check (float 1e-9)) "zero spread" 0.0 (s.Stats.max -. s.Stats.min)

let test_timed_unreached_subscriber () =
  let g, asg, net = line_setup 5 in
  ignore g;
  ignore asg;
  let empty = Lipsin_bloom.Zfilter.create ~m:248 in
  let arrivals = Timed.deliver net ~src:0 ~table:0 ~zfilter:empty in
  Alcotest.(check bool) "nobody else reached" true
    (Timed.subscriber_latencies arrivals [ 4 ] = None)

let test_timed_overlay_slower () =
  let g = As_presets.as6461 () in
  let asg = Assignment.make Lit.default (Rng.of_int 3) g in
  let net = Net.make asg in
  let rng = Rng.of_int 5 in
  let picks = Rng.sample rng 4 (Graph.node_count g) in
  let src = picks.(0) and dst = picks.(1) in
  let relays = [ picks.(2); picks.(3) ] in
  let tree = Spt.delivery_tree g ~root:src ~subscribers:[ dst ] in
  let c = Candidate.build_one asg ~tree ~table:0 in
  let arrivals = Timed.deliver net ~src ~table:0 ~zfilter:c.Candidate.zfilter in
  match Timed.latency_to arrivals dst with
  | None -> Alcotest.fail "direct delivery must reach"
  | Some native ->
    let overlay = Timed.overlay_equivalent_latency g ~src ~relays ~dst in
    Alcotest.(check bool) "native beats overlay detour" true (native < overlay)

let test_load_accounting () =
  let g, asg, net = line_setup 5 in
  let load = Load.create g in
  Alcotest.(check int) "empty" 0 (Load.total load);
  let tree = Spt.delivery_tree g ~root:0 ~subscribers:[ 4 ] in
  let c = Candidate.build_one asg ~tree ~table:0 in
  let o = Run.deliver net ~src:0 ~table:0 ~zfilter:c.Candidate.zfilter ~tree in
  Load.record load o;
  Load.record load o;
  Alcotest.(check int) "two passes over 4 links" 8 (Load.total load);
  Alcotest.(check int) "max load 2" 2 (Load.max_load load);
  List.iter
    (fun l -> Alcotest.(check int) "each tree link loaded twice" 2 (Load.of_link load l))
    tree;
  Load.reset load;
  Alcotest.(check int) "reset" 0 (Load.total load)

let test_load_hottest_and_congested () =
  let g = Graph.create ~nodes:4 in
  List.iter (fun (u, v) -> Graph.add_edge g u v) [ (0, 1); (1, 2); (2, 3); (3, 0) ];
  let load = Load.create g in
  let l01 = Option.get (Graph.find_link g ~src:0 ~dst:1) in
  let l12 = Option.get (Graph.find_link g ~src:1 ~dst:2) in
  Load.record_tree load [ l01; l12 ];
  Load.record_tree load [ l01 ];
  Load.record_tree load [ l01 ];
  (match Load.hottest load ~count:1 with
  | [ hot ] -> Alcotest.(check int) "hottest is 0->1" l01.Graph.index hot.Graph.index
  | _ -> Alcotest.fail "exactly one");
  let congested = Load.congested load ~threshold:0.9 in
  Alcotest.(check int) "only the 3-load link above 90% of max" 1
    (List.length congested);
  let relaxed = Load.congested load ~threshold:0.2 in
  Alcotest.(check int) "both loaded links above 20%" 2 (List.length relaxed)

let test_congestion_avoidance_shifts_traffic () =
  (* With the hot links as the avoidance Tset, weighted selection picks
     candidates whose false positives fall elsewhere — end to end this
     should never pick a WORSE candidate for the hot set. *)
  let g = As_presets.as3257 () in
  let asg = Assignment.make Lit.paper_variable (Rng.of_int 7) g in
  let rng = Rng.of_int 11 in
  let load = Load.create g in
  (* Warm the load map with background traffic. *)
  for _ = 1 to 50 do
    let picks = Rng.sample rng 6 (Graph.node_count g) in
    let tree =
      Spt.delivery_tree g ~root:picks.(0)
        ~subscribers:(Array.to_list (Array.sub picks 1 5))
    in
    Load.record_tree load tree
  done;
  let hot = Load.hottest load ~count:20 in
  let weight = Select.avoid_set hot in
  let worse = ref 0 and total = ref 0 in
  for _ = 1 to 30 do
    let picks = Rng.sample rng 10 (Graph.node_count g) in
    let tree =
      Spt.delivery_tree g ~root:picks.(0)
        ~subscribers:(Array.to_list (Array.sub picks 1 9))
    in
    let candidates = Candidate.build asg ~tree in
    let test = Select.default_test_set asg ~tree in
    match
      ( Select.select_weighted asg candidates ~test ~weight,
        Select.select_fpa candidates )
    with
    | Some avoiding, Some plain ->
      incr total;
      let penalty c = Select.weighted_false_positives asg c ~test ~weight in
      if penalty avoiding > penalty plain then incr worse
    | _ -> ()
  done;
  Alcotest.(check int) "avoidance never increases hot-set penalty" 0 !worse;
  Alcotest.(check bool) "enough samples" true (!total >= 25)

let () =
  Alcotest.run "timed-load"
    [
      ( "timed",
        [
          Alcotest.test_case "line affine" `Quick test_timed_line_latency_affine;
          Alcotest.test_case "source at zero" `Quick test_timed_source_at_zero;
          Alcotest.test_case "parallel branching" `Quick test_timed_branching_is_parallel;
          Alcotest.test_case "unreached" `Quick test_timed_unreached_subscriber;
          Alcotest.test_case "overlay slower" `Quick test_timed_overlay_slower;
        ] );
      ( "load",
        [
          Alcotest.test_case "accounting" `Quick test_load_accounting;
          Alcotest.test_case "hottest/congested" `Quick test_load_hottest_and_congested;
          Alcotest.test_case "avoidance shifts traffic" `Quick
            test_congestion_avoidance_shifts_traffic;
        ] );
    ]
