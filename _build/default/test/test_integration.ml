(* Full-stack integration tests, driven through the Lipsin umbrella
   library: bootstrap -> assignment -> pub/sub -> failure -> recovery
   -> rotation, all on one network, the way a deployment would run. *)

module Discovery = Lipsin.Bootstrap.Discovery
module Graph = Lipsin.Topology.Graph
module Spt = Lipsin.Topology.Spt
module Generator = Lipsin.Topology.Generator
module As_presets = Lipsin.Topology.As_presets
module Lit = Lipsin.Bloom.Lit
module Assignment = Lipsin.Core.Assignment
module Candidate = Lipsin.Core.Candidate
module Select = Lipsin.Core.Select
module Multipath = Lipsin.Core.Multipath
module Rotation = Lipsin.Core.Rotation
module Directory = Lipsin.Interdomain.Directory
module Net = Lipsin.Sim.Net
module Run = Lipsin.Sim.Run
module System = Lipsin.Pubsub.System
module Topic = Lipsin.Pubsub.Topic
module Plane = Lipsin.Control.Plane
module Host = Lipsin.Node.Host
module Rng = Lipsin.Util.Rng
module Zfilter = Lipsin.Bloom.Zfilter

(* The deployment story: nodes discover the topology by flooding, the
   topology function builds its map FROM THE PROTOCOL'S OUTPUT (not
   from the ground truth), and everything above runs on that map. *)
let test_bootstrap_to_pubsub () =
  let physical =
    Generator.pref_attach ~rng:(Rng.of_int 171) ~nodes:35 ~edges:60 ~max_degree:9 ()
  in
  let discovery = Discovery.create ~rendezvous:[ 2 ] physical in
  (match Discovery.run discovery with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* Build the pub/sub system over the map node 2 (the rendezvous)
     learned. *)
  let learned = Discovery.map_of discovery 2 in
  Alcotest.(check int) "learned map complete" (Graph.edge_count physical)
    (Graph.edge_count learned);
  let sys = System.create ~seed:3 learned in
  let topic = Topic.of_string "integration/news" in
  System.advertise sys topic ~publisher:0;
  List.iter (fun s -> System.subscribe sys topic ~subscriber:s) [ 11; 22; 33 ];
  match System.publish sys topic ~publisher:0 ~payload:"boot" with
  | Error e -> Alcotest.fail e
  | Ok r -> Alcotest.(check int) "delivered over learned map" 3
      (List.length r.System.delivered_to)

(* Failure, in-band recovery, repair, and rotation on one fabric. *)
let test_failure_recovery_rotation_lifecycle () =
  let g = As_presets.ta2 () in
  let rotation = Rotation.make ~secret:0x10CA1L Lit.default (Rng.of_int 173) g in
  let epoch0 = Rotation.assignment_at rotation ~epoch:0 in
  let net = Net.make epoch0 in
  let publisher = 1 and subscribers = [ 20; 40; 60 ] in
  let tree = Spt.delivery_tree g ~root:publisher ~subscribers in
  let c =
    match Select.select_fpa (Candidate.build epoch0 ~tree) with
    | Some c -> c
    | None -> Alcotest.fail "tree must encode"
  in
  let deliver z =
    Run.deliver net ~src:publisher ~table:c.Candidate.table ~zfilter:z ~tree
  in
  (* Healthy. *)
  Alcotest.(check bool) "healthy delivery" true
    (Run.all_reached (deliver c.Candidate.zfilter) subscribers);
  (* Fail a tree link; in-band recovery keeps the same packets alive. *)
  let failed = List.nth tree (List.length tree / 2) in
  (match Plane.activate_backup net ~failed with
  | Ok _ ->
    Alcotest.(check bool) "recovered delivery" true
      (Run.all_reached (deliver c.Candidate.zfilter) subscribers);
    (match Plane.deactivate_backup net ~failed with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e)
  | Error _ -> (* bridge: acceptable, skip the recovery leg *) ());
  (* Epoch rotation: the old filter dies, a re-requested one works. *)
  let epoch1 = Rotation.assignment_at rotation ~epoch:1 in
  let net1 = Net.make epoch1 in
  let stale =
    Run.deliver net1 ~src:publisher ~table:c.Candidate.table
      ~zfilter:c.Candidate.zfilter ~tree
  in
  Alcotest.(check bool) "stale epoch filter delivers nothing" false
    (List.exists (fun s -> stale.Run.reached.(s)) subscribers);
  let fresh =
    match Select.select_fpa (Candidate.build epoch1 ~tree) with
    | Some c -> c
    | None -> Alcotest.fail "fresh tree must encode"
  in
  let renewed =
    Run.deliver net1 ~src:publisher ~table:fresh.Candidate.table
      ~zfilter:fresh.Candidate.zfilter ~tree
  in
  Alcotest.(check bool) "renewed filter delivers" true
    (Run.all_reached renewed subscribers)

let test_multipath_plan_and_failover () =
  let g = As_presets.as6461 () in
  let assignment = Assignment.make Lit.default (Rng.of_int 179) g in
  let net = Net.make assignment in
  let src = 0 and dst = 100 in
  match Multipath.plan assignment ~src ~dst with
  | Error e -> Alcotest.fail e
  | Ok mp ->
    Alcotest.(check bool) "dense graph gives disjoint paths" true mp.Multipath.disjoint;
    (* Both sprayed filters deliver. *)
    for i = 0 to 3 do
      let table, zfilter = Multipath.spray mp ~packet_index:i in
      let tree = if i mod 2 = 0 then mp.Multipath.primary else mp.Multipath.secondary in
      let o = Run.deliver net ~src ~table ~zfilter ~tree in
      Alcotest.(check bool)
        (Printf.sprintf "packet %d delivered" i)
        true o.Run.reached.(dst)
    done;
    (* Kill the primary path's first link: odd packets still flow with
       no recovery action at all. *)
    Net.fail_link net (List.hd mp.Multipath.primary);
    let table, zfilter = Multipath.spray mp ~packet_index:1 in
    let o = Run.deliver net ~src ~table ~zfilter ~tree:mp.Multipath.secondary in
    Alcotest.(check bool) "secondary survives primary failure" true
      o.Run.reached.(dst);
    (* Load split is balanced across disjoint links. *)
    let split = Multipath.load_split mp ~packets:100 in
    List.iter
      (fun (_, count) ->
        Alcotest.(check bool) "each link carries ~half" true
          (count = 50 || count = 50 + (100 mod 2)))
      split

let test_multipath_validates () =
  let g = As_presets.ta2 () in
  let assignment = Assignment.make Lit.default (Rng.of_int 181) g in
  Alcotest.check_raises "same tables" (Invalid_argument "Multipath.plan: tables must differ")
    (fun () ->
      ignore (Multipath.plan ~table_primary:1 ~table_secondary:1 assignment ~src:0 ~dst:5));
  match Multipath.plan assignment ~src:3 ~dst:3 with
  | Error msg -> Alcotest.(check string) "self" "source equals destination" msg
  | Ok _ -> Alcotest.fail "self path must fail"

let test_directory_partitioning_and_caching () =
  let dir = Directory.create ~rendezvous_nodes:4 ~edge_nodes:3 ~edge_cache_capacity:8 in
  (* Install 50 topics; homes must spread across the 4 nodes. *)
  let homes = Hashtbl.create 4 in
  for i = 1 to 50 do
    let topic = Int64.of_int (i * 7919) in
    Directory.install dir ~topic ~zfilter:(Printf.sprintf "zf-%d" i);
    Hashtbl.replace homes (Directory.home_of dir ~topic) ()
  done;
  Alcotest.(check int) "all rendezvous nodes used" 4 (Hashtbl.length homes);
  (* First lookup at an edge goes to the home; repeat hits the cache. *)
  let topic = Int64.of_int (3 * 7919) in
  (match Directory.lookup dir ~edge:0 ~topic with
  | Some (record, Directory.Rendezvous _) ->
    Alcotest.(check string) "record" "zf-3" record
  | Some (_, Directory.Edge_cache) -> Alcotest.fail "first lookup cannot be cached"
  | None -> Alcotest.fail "installed topic must resolve");
  (match Directory.lookup dir ~edge:0 ~topic with
  | Some (_, Directory.Edge_cache) -> ()
  | Some (_, Directory.Rendezvous _) -> Alcotest.fail "second lookup must hit the edge"
  | None -> Alcotest.fail "must resolve");
  (* Re-installing invalidates edge copies. *)
  Directory.install dir ~topic ~zfilter:"zf-3-v2";
  (match Directory.lookup dir ~edge:0 ~topic with
  | Some (record, Directory.Rendezvous _) ->
    Alcotest.(check string) "fresh record" "zf-3-v2" record
  | Some (_, Directory.Edge_cache) -> Alcotest.fail "stale cache served"
  | None -> Alcotest.fail "must resolve");
  (* Unknown topics miss. *)
  Alcotest.(check bool) "unknown misses" true
    (Directory.lookup dir ~edge:1 ~topic:999999L = None);
  let s = Directory.stats dir in
  Alcotest.(check int) "lookup count" 4 s.Directory.lookups;
  Alcotest.(check int) "one edge hit" 1 s.Directory.edge_hits;
  Alcotest.(check int) "one miss" 1 s.Directory.misses

let test_directory_resource_estimate () =
  (* The paper's arithmetic: 10^11 topics x (40B name + ~34B header)
     ~ 7.4 TB, "in the order of 10 TB". *)
  let tb = Directory.resource_estimate ~topics:1e11 ~topic_bytes:40 ~header_bytes:34 in
  Alcotest.(check bool) "order of 10 TB" true (tb > 5.0 && tb < 15.0)

let test_hosts_over_presets_end_to_end () =
  (* The umbrella API exercised the way the README shows it. *)
  let cluster = Host.create_cluster ~seed:4 (As_presets.as1221 ()) in
  let pub = Host.endpoint cluster 50 in
  ignore (Host.create_publication pub ~name:"e2e" ~content:"x");
  let subs = List.map (fun v -> Host.endpoint cluster v) [ 10; 60; 90; 100 ] in
  List.iter (fun s -> ignore (Host.subscribe s ~name:"e2e")) subs;
  match Host.publish pub ~name:"e2e" with
  | Error e -> Alcotest.fail e
  | Ok d ->
    Alcotest.(check int) "all four hosts" 4 (List.length d.Host.delivered_to);
    List.iter
      (fun s ->
        Alcotest.(check (option string)) "payload on file" (Some "x")
          (Host.read_received s ~name:"e2e"))
      subs

let () =
  Alcotest.run "integration"
    [
      ( "full-stack",
        [
          Alcotest.test_case "bootstrap to pubsub" `Quick test_bootstrap_to_pubsub;
          Alcotest.test_case "failure/recovery/rotation" `Quick
            test_failure_recovery_rotation_lifecycle;
          Alcotest.test_case "hosts end to end" `Quick test_hosts_over_presets_end_to_end;
        ] );
      ( "multipath",
        [
          Alcotest.test_case "plan and failover" `Quick test_multipath_plan_and_failover;
          Alcotest.test_case "validates" `Quick test_multipath_validates;
        ] );
      ( "directory",
        [
          Alcotest.test_case "partitioning and caching" `Quick
            test_directory_partitioning_and_caching;
          Alcotest.test_case "resource estimate" `Quick test_directory_resource_estimate;
        ] );
    ]
