(* Tests for Lipsin_node: Pubfs and Host (the end-node prototype
   analog, Sec. 6.1). *)

module Pubfs = Lipsin_node.Pubfs
module Host = Lipsin_node.Host
module Topic = Lipsin_pubsub.Topic
module Graph = Lipsin_topology.Graph
module Generator = Lipsin_topology.Generator
module Rng = Lipsin_util.Rng

let test_pubfs_write_read () =
  let fs = Pubfs.create () in
  Alcotest.(check (option string)) "missing" None (Pubfs.read fs ~path:"/x");
  Alcotest.(check int) "v1" 1 (Pubfs.write fs ~path:"/x" "one");
  Alcotest.(check int) "v2" 2 (Pubfs.write fs ~path:"/x" "two");
  Alcotest.(check (option string)) "newest" (Some "two") (Pubfs.read fs ~path:"/x");
  Alcotest.(check (option string)) "old version" (Some "one")
    (Pubfs.read_version fs ~path:"/x" ~version:1);
  Alcotest.(check int) "version" 2 (Pubfs.version fs ~path:"/x")

let test_pubfs_history_limit () =
  let fs = Pubfs.create ~history_limit:2 () in
  for i = 1 to 5 do
    ignore (Pubfs.write fs ~path:"/h" (string_of_int i))
  done;
  Alcotest.(check (option string)) "newest kept" (Some "5")
    (Pubfs.read_version fs ~path:"/h" ~version:5);
  Alcotest.(check (option string)) "previous kept" (Some "4")
    (Pubfs.read_version fs ~path:"/h" ~version:4);
  Alcotest.(check (option string)) "older dropped" None
    (Pubfs.read_version fs ~path:"/h" ~version:3);
  Alcotest.(check int) "version counter keeps counting" 5 (Pubfs.version fs ~path:"/h")

let test_pubfs_remove_and_list () =
  let fs = Pubfs.create () in
  ignore (Pubfs.write fs ~path:"/pub/a" "1");
  ignore (Pubfs.write fs ~path:"/pub/b" "2");
  ignore (Pubfs.write fs ~path:"/net/c" "3");
  Alcotest.(check (list string)) "prefix filter" [ "/pub/a"; "/pub/b" ]
    (Pubfs.list fs ~prefix:"/pub/" ());
  Alcotest.(check bool) "remove" true (Pubfs.remove fs ~path:"/pub/a");
  Alcotest.(check bool) "remove again" false (Pubfs.remove fs ~path:"/pub/a");
  Alcotest.(check (list string)) "gone" [ "/pub/b" ] (Pubfs.list fs ~prefix:"/pub/" ())

let test_pubfs_rejects_bad_limit () =
  Alcotest.check_raises "limit 0"
    (Invalid_argument "Pubfs.create: history_limit must be >= 1") (fun () ->
      ignore (Pubfs.create ~history_limit:0 ()))

let sample_cluster () =
  let g =
    Generator.pref_attach ~rng:(Rng.of_int 83) ~nodes:30 ~edges:50 ~max_degree:8 ()
  in
  Host.create_cluster ~seed:5 g

let test_host_publish_subscribe_flow () =
  let cluster = sample_cluster () in
  let alice = Host.endpoint cluster 0 in
  let bob = Host.endpoint cluster 17 in
  let carol = Host.endpoint cluster 25 in
  let topic = Host.create_publication alice ~name:"weather" ~content:"sunny" in
  ignore (Host.subscribe bob ~name:"weather");
  ignore (Host.subscribe carol ~name:"weather");
  (match Host.publish alice ~name:"weather" with
  | Error e -> Alcotest.fail e
  | Ok d ->
    Alcotest.(check bool) "topic id consistent" true (Topic.equal topic d.Host.topic);
    Alcotest.(check (list int)) "both reached" [ 17; 25 ]
      (List.sort compare d.Host.delivered_to));
  (* Data landed in both mailboxes and file systems. *)
  (match Host.poll bob with
  | [ ev ] ->
    Alcotest.(check string) "event name" "weather" ev.Host.name;
    Alcotest.(check string) "event payload" "sunny" ev.Host.payload
  | other -> Alcotest.fail (Printf.sprintf "bob expected 1 event, got %d" (List.length other)));
  Alcotest.(check (list string)) "mailbox drained" []
    (List.map (fun e -> e.Host.name) (Host.poll bob));
  Alcotest.(check (option string)) "carol's copy on file" (Some "sunny")
    (Host.read_received carol ~name:"weather")

let test_host_update_and_republished_version () =
  let cluster = sample_cluster () in
  let pub = Host.endpoint cluster 3 in
  let sub = Host.endpoint cluster 9 in
  ignore (Host.create_publication pub ~name:"feed" ~content:"v1");
  ignore (Host.subscribe sub ~name:"feed");
  (match Host.publish pub ~name:"feed" with Ok _ -> () | Error e -> Alcotest.fail e);
  Host.update_publication pub ~name:"feed" ~content:"v2";
  (match Host.publish pub ~name:"feed" with Ok _ -> () | Error e -> Alcotest.fail e);
  Alcotest.(check (option string)) "newest received" (Some "v2")
    (Host.read_received sub ~name:"feed");
  (* Both versions retained in the receiver's Pubfs. *)
  Alcotest.(check (option string)) "previous version retained" (Some "v1")
    (Pubfs.read_version (Host.fs sub) ~path:"/net/feed" ~version:1)

let test_host_publish_without_create_errors () =
  let cluster = sample_cluster () in
  let e = Host.endpoint cluster 1 in
  match Host.publish e ~name:"ghost" with
  | Error msg ->
    Alcotest.(check string) "error" "publication was never created at this host" msg
  | Ok _ -> Alcotest.fail "must require creation"

let test_host_update_requires_create () =
  let cluster = sample_cluster () in
  let e = Host.endpoint cluster 1 in
  Alcotest.check_raises "update before create"
    (Invalid_argument "Host.update_publication: publication was never created")
    (fun () -> Host.update_publication e ~name:"ghost" ~content:"x")

let test_host_unsubscribe_stops_delivery () =
  let cluster = sample_cluster () in
  let pub = Host.endpoint cluster 2 in
  let sub = Host.endpoint cluster 20 in
  ignore (Host.create_publication pub ~name:"t" ~content:"c");
  ignore (Host.subscribe sub ~name:"t");
  (match Host.publish pub ~name:"t" with Ok _ -> () | Error e -> Alcotest.fail e);
  ignore (Host.poll sub);
  Host.unsubscribe sub ~name:"t";
  (match Host.publish pub ~name:"t" with
  | Error msg ->
    Alcotest.(check string) "no subscribers left" "topic has no remote subscribers" msg
  | Ok _ -> Alcotest.fail "unsubscribed topic must not deliver");
  Alcotest.(check int) "no new events" 0 (List.length (Host.poll sub))

let test_host_endpoint_identity () =
  let cluster = sample_cluster () in
  let a = Host.endpoint cluster 4 in
  let b = Host.endpoint cluster 4 in
  Alcotest.(check bool) "same endpoint per node" true (a == b);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Host.endpoint: node out of range") (fun () ->
      ignore (Host.endpoint cluster 999))

let () =
  Alcotest.run "node"
    [
      ( "pubfs",
        [
          Alcotest.test_case "write/read/versions" `Quick test_pubfs_write_read;
          Alcotest.test_case "history limit" `Quick test_pubfs_history_limit;
          Alcotest.test_case "remove/list" `Quick test_pubfs_remove_and_list;
          Alcotest.test_case "bad limit" `Quick test_pubfs_rejects_bad_limit;
        ] );
      ( "host",
        [
          Alcotest.test_case "publish/subscribe flow" `Quick
            test_host_publish_subscribe_flow;
          Alcotest.test_case "update + republish" `Quick
            test_host_update_and_republished_version;
          Alcotest.test_case "publish requires create" `Quick
            test_host_publish_without_create_errors;
          Alcotest.test_case "update requires create" `Quick
            test_host_update_requires_create;
          Alcotest.test_case "unsubscribe stops delivery" `Quick
            test_host_unsubscribe_stops_delivery;
          Alcotest.test_case "endpoint identity" `Quick test_host_endpoint_identity;
        ] );
    ]
