(* Tests for Lipsin_stateful: Virtual_link and Dense. *)

module Bitvec = Lipsin_bitvec.Bitvec
module Lit = Lipsin_bloom.Lit
module Zfilter = Lipsin_bloom.Zfilter
module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module Generator = Lipsin_topology.Generator
module As_presets = Lipsin_topology.As_presets
module Assignment = Lipsin_core.Assignment
module Net = Lipsin_sim.Net
module Run = Lipsin_sim.Run
module Node_engine = Lipsin_forwarding.Node_engine
module Virtual_link = Lipsin_stateful.Virtual_link
module Dense = Lipsin_stateful.Dense
module Rng = Lipsin_util.Rng

let setup () =
  let g =
    Generator.pref_attach ~rng:(Rng.of_int 9) ~nodes:40 ~edges:70 ~max_degree:10 ()
  in
  let asg = Assignment.make Lit.default (Rng.of_int 10) g in
  (g, asg, Net.make asg)

let test_define_rejects_empty () =
  let _, asg, _ = setup () in
  Alcotest.check_raises "empty set"
    (Invalid_argument "Virtual_link.define: empty link set") (fun () ->
      ignore (Virtual_link.define asg (Rng.of_int 1) ~links:[]))

let test_define_dense_tags_doubles_k () =
  let _, asg, _ = setup () in
  let g = Assignment.graph asg in
  let links = [ Graph.link g 0 ] in
  let dense = Virtual_link.define asg (Rng.of_int 2) ~links in
  let plain = Virtual_link.define ~dense_tags:false asg (Rng.of_int 2) ~links in
  Alcotest.(check int) "dense tag has 2k bits" 10
    (Bitvec.popcount (Virtual_link.tag dense ~table:0));
  Alcotest.(check int) "plain tag has k bits" 5
    (Bitvec.popcount (Virtual_link.tag plain ~table:0))

let test_install_places_state_on_sources () =
  let g, asg, net = setup () in
  let tree = Spt.delivery_tree g ~root:0 ~subscribers:[ 15; 25 ] in
  let vl = Virtual_link.define asg (Rng.of_int 3) ~links:tree in
  Virtual_link.install net vl;
  List.iter
    (fun node ->
      Alcotest.(check bool) "state installed" true
        (Node_engine.virtual_count (Net.engine net node) >= 1))
    (Virtual_link.source_nodes vl);
  Virtual_link.uninstall net vl;
  List.iter
    (fun node ->
      Alcotest.(check int) "state removed" 0
        (Node_engine.virtual_count (Net.engine net node)))
    (Virtual_link.source_nodes vl)

let test_virtual_link_delivery () =
  let g, asg, net = setup () in
  let subscribers = [ 12; 23; 34 ] in
  let tree = Spt.delivery_tree g ~root:0 ~subscribers in
  let vl = Virtual_link.define asg (Rng.of_int 4) ~links:tree in
  Virtual_link.install net vl;
  (* The zFilter contains ONLY the virtual link's tag, not the tree. *)
  let z = Zfilter.of_tags ~m:248 [ Virtual_link.tag vl ~table:0 ] in
  let o = Run.deliver net ~src:0 ~table:0 ~zfilter:z ~tree in
  Virtual_link.uninstall net vl;
  Alcotest.(check bool) "single tag delivers whole tree" true
    (Run.all_reached o subscribers);
  Alcotest.(check bool) "fill far below stateless encoding" true
    (Zfilter.fill_factor z < 0.1)

let test_dense_plan_structure () =
  let _, asg, _ = setup () in
  let subscribers = List.init 12 (fun i -> 3 * (i + 1)) in
  let plan = Dense.plan asg (Rng.of_int 5) ~publisher:0 ~subscribers ~cores:3 in
  Alcotest.(check bool) "cores chosen" true (plan.Dense.cores <> []);
  Alcotest.(check bool) "at most 3 cores" true (List.length plan.Dense.cores <= 3);
  Alcotest.(check bool) "virtuals exist" true (plan.Dense.virtuals <> []);
  Alcotest.(check bool) "reference tree nonempty" true
    (plan.Dense.reference_tree <> [])

let test_dense_plan_rejects () =
  let _, asg, _ = setup () in
  Alcotest.check_raises "no subscribers"
    (Invalid_argument "Dense.plan: no subscribers") (fun () ->
      ignore (Dense.plan asg (Rng.of_int 1) ~publisher:0 ~subscribers:[] ~cores:2));
  Alcotest.check_raises "no cores" (Invalid_argument "Dense.plan: cores must be positive")
    (fun () ->
      ignore (Dense.plan asg (Rng.of_int 1) ~publisher:0 ~subscribers:[ 1 ] ~cores:0))

let test_dense_execute_delivers_all () =
  let g, asg, net = setup () in
  let rng = Rng.of_int 6 in
  let picks = Rng.sample rng 16 (Graph.node_count g) in
  let publisher = picks.(0) in
  let subscribers = Array.to_list (Array.sub picks 1 15) in
  let plan = Dense.plan asg rng ~publisher ~subscribers ~cores:3 in
  let result = Dense.execute net plan ~table:0 in
  Alcotest.(check bool) "all delivered" true result.Dense.all_delivered;
  Alcotest.(check bool) "stateful fill below stateless" true
    (result.Dense.fill <= result.Dense.stateless_fill);
  Alcotest.(check bool) "efficiency sane" true (result.Dense.efficiency > 0.5)

let test_dense_execute_cleans_up () =
  let g, asg, net = setup () in
  let subscribers = List.init 10 (fun i -> i + 5) in
  let plan = Dense.plan asg (Rng.of_int 7) ~publisher:0 ~subscribers ~cores:2 in
  ignore (Dense.execute net plan ~table:0);
  for v = 0 to Graph.node_count g - 1 do
    Alcotest.(check int) "no residual virtual state" 0
      (Node_engine.virtual_count (Net.engine net v))
  done

let test_dense_on_as_topology_high_efficiency () =
  (* The Fig. 6 claim at 30% coverage on AS1221. *)
  let g = As_presets.as1221 () in
  let asg = Assignment.make Lit.default (Rng.of_int 11) g in
  let net = Net.make asg in
  let rng = Rng.of_int 13 in
  let count = Graph.node_count g * 3 / 10 in
  let picks = Rng.sample rng (count + 1) (Graph.node_count g) in
  let publisher = picks.(0) in
  let subscribers = Array.to_list (Array.sub picks 1 count) in
  let plan = Dense.plan asg rng ~publisher ~subscribers ~cores:(max 2 (count / 8)) in
  let result = Dense.execute net plan ~table:0 in
  Alcotest.(check bool) "delivers" true result.Dense.all_delivered;
  Alcotest.(check bool) "efficiency above 90%" true (result.Dense.efficiency > 0.9)

let () =
  Alcotest.run "stateful"
    [
      ( "virtual_link",
        [
          Alcotest.test_case "rejects empty" `Quick test_define_rejects_empty;
          Alcotest.test_case "dense tags" `Quick test_define_dense_tags_doubles_k;
          Alcotest.test_case "install/uninstall" `Quick
            test_install_places_state_on_sources;
          Alcotest.test_case "delivery via one tag" `Quick test_virtual_link_delivery;
        ] );
      ( "dense",
        [
          Alcotest.test_case "plan structure" `Quick test_dense_plan_structure;
          Alcotest.test_case "plan rejects" `Quick test_dense_plan_rejects;
          Alcotest.test_case "execute delivers" `Quick test_dense_execute_delivers_all;
          Alcotest.test_case "execute cleans up" `Quick test_dense_execute_cleans_up;
          Alcotest.test_case "fig6 efficiency" `Quick
            test_dense_on_as_topology_high_efficiency;
        ] );
    ]
