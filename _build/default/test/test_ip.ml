(* Tests for Lipsin_ip.Underlay: LIPSIN as an IP forwarding fabric
   (Sec. 2.4), plus Lipsin_interdomain.Policy (Sec. 5.3). *)

module Underlay = Lipsin_ip.Underlay
module Policy = Lipsin_interdomain.Policy
module Graph = Lipsin_topology.Graph
module Generator = Lipsin_topology.Generator
module As_presets = Lipsin_topology.As_presets
module Rng = Lipsin_util.Rng

let setup () =
  let g = As_presets.ta2 () in
  let edges = [ 0; 10; 20; 30; 40 ] in
  (g, Underlay.create g ~edges)

let test_create_validates () =
  let g = As_presets.ta2 () in
  Alcotest.check_raises "no edges" (Invalid_argument "Underlay.create: no edge routers")
    (fun () -> ignore (Underlay.create g ~edges:[]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Underlay.create: edge router out of range") (fun () ->
      ignore (Underlay.create g ~edges:[ 1000 ]))

let test_unicast_route_and_forward () =
  let _, u = setup () in
  Underlay.add_unicast_route u ~ingress:0 ~prefix:0x0A000000l ~len:8 ~egress:30;
  (match Underlay.forward_unicast u ~ingress:0 ~dst:0x0A010203l with
  | None -> Alcotest.fail "route must match"
  | Some r ->
    Alcotest.(check int) "right egress" 30 r.Underlay.egress;
    Alcotest.(check bool) "delivered" true r.Underlay.delivered;
    Alcotest.(check bool) "took at least one hop" true (r.Underlay.hops >= 1));
  Alcotest.(check bool) "non-matching address has no route" true
    (Underlay.forward_unicast u ~ingress:0 ~dst:0x0B000001l = None)

let test_unicast_longest_prefix_wins () =
  let _, u = setup () in
  Underlay.add_unicast_route u ~ingress:0 ~prefix:0x0A000000l ~len:8 ~egress:30;
  Underlay.add_unicast_route u ~ingress:0 ~prefix:0x0A010000l ~len:16 ~egress:40;
  match Underlay.forward_unicast u ~ingress:0 ~dst:0x0A010203l with
  | Some r -> Alcotest.(check int) "/16 beats /8" 40 r.Underlay.egress
  | None -> Alcotest.fail "must match"

let test_unicast_requires_edge_routers () =
  let _, u = setup () in
  Alcotest.check_raises "core ingress"
    (Invalid_argument "Underlay: node is not an edge router") (fun () ->
      Underlay.add_unicast_route u ~ingress:5 ~prefix:0l ~len:0 ~egress:30)

let test_ssm_join_forward_leave () =
  let _, u = setup () in
  Underlay.ssm_join u ~group:1 ~source_ingress:0 ~egress:10;
  Underlay.ssm_join u ~group:1 ~source_ingress:0 ~egress:20;
  Underlay.ssm_join u ~group:1 ~source_ingress:0 ~egress:20 (* idempotent *);
  (match Underlay.forward_ssm u ~group:1 ~source_ingress:0 with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check (list int)) "both egresses" [ 10; 20 ]
      (List.sort compare r.Underlay.reached);
    Alcotest.(check int) "none missed" 0 (List.length r.Underlay.missed));
  Underlay.ssm_leave u ~group:1 ~source_ingress:0 ~egress:10;
  match Underlay.forward_ssm u ~group:1 ~source_ingress:0 with
  | Ok r -> Alcotest.(check (list int)) "one left" [ 20 ] r.Underlay.reached
  | Error e -> Alcotest.fail e

let test_ssm_state_only_at_ingress () =
  let _, u = setup () in
  (* 5 groups from the same source: 5 entries total, not 5 x routers. *)
  for grp = 1 to 5 do
    Underlay.ssm_join u ~group:grp ~source_ingress:0 ~egress:10;
    Underlay.ssm_join u ~group:grp ~source_ingress:0 ~egress:40
  done;
  Alcotest.(check int) "one entry per active group" 5 (Underlay.ssm_state_entries u);
  Underlay.ssm_leave u ~group:1 ~source_ingress:0 ~egress:10;
  Underlay.ssm_leave u ~group:1 ~source_ingress:0 ~egress:40;
  Alcotest.(check int) "emptied group drops its entry" 4
    (Underlay.ssm_state_entries u)

let test_ssm_empty_group_errors () =
  let _, u = setup () in
  match Underlay.forward_ssm u ~group:9 ~source_ingress:0 with
  | Error msg -> Alcotest.(check string) "no members" "group has no (remote) members" msg
  | Ok _ -> Alcotest.fail "empty group must error"

(* ---- Policy (valley-free) ---- *)

(*   1 (provider)
    / \
   2   3      2,3 customers of 1; 2-3 peers; 4 customer of 2; 5 customer of 3. *)
let policy_fixture () =
  let g = Graph.create ~nodes:6 in
  List.iter (fun (u, v) -> Graph.add_edge g u v)
    [ (1, 2); (1, 3); (2, 3); (2, 4); (3, 5) ];
  let pol =
    Policy.create g
      [
        (2, 1, Policy.Customer_of); (3, 1, Policy.Customer_of);
        (2, 3, Policy.Peer_of); (4, 2, Policy.Customer_of);
        (5, 3, Policy.Customer_of);
      ]
  in
  (g, pol)

let test_policy_relations_and_inverse () =
  let _, pol = policy_fixture () in
  Alcotest.(check bool) "2 customer of 1" true
    (Policy.relation pol ~src:2 ~dst:1 = Policy.Customer_of);
  Alcotest.(check bool) "1 provider of 2" true
    (Policy.relation pol ~src:1 ~dst:2 = Policy.Provider_of);
  Alcotest.(check bool) "2-3 peer both ways" true
    (Policy.relation pol ~src:2 ~dst:3 = Policy.Peer_of
    && Policy.relation pol ~src:3 ~dst:2 = Policy.Peer_of)

let test_policy_valley_free_paths () =
  let _, pol = policy_fixture () in
  (* up then down: 4 -> 2 -> 1 -> 3 -> 5. *)
  Alcotest.(check bool) "up-down ok" true (Policy.valley_free pol [ 4; 2; 1; 3; 5 ]);
  (* up, peer, down: 4 -> 2 -> 3 -> 5. *)
  Alcotest.(check bool) "up-peer-down ok" true (Policy.valley_free pol [ 4; 2; 3; 5 ]);
  (* down then up is a valley: 1 -> 2 -> 3 descends then peers. *)
  Alcotest.(check bool) "down-peer is a valley" false
    (Policy.valley_free pol [ 1; 2; 3 ]);
  (* down then up: 2 -> 4 would then climb back 4 -> 2: degenerate. *)
  Alcotest.(check bool) "trivial paths ok" true (Policy.valley_free pol [ 2 ])

let test_policy_check_tree () =
  let g, pol = policy_fixture () in
  (* Tree rooted at 4 reaching 5 through the provider core — legal. *)
  let legal =
    [ Option.get (Graph.find_link g ~src:4 ~dst:2);
      Option.get (Graph.find_link g ~src:2 ~dst:1);
      Option.get (Graph.find_link g ~src:1 ~dst:3);
      Option.get (Graph.find_link g ~src:3 ~dst:5) ]
  in
  (match Policy.check_tree pol g ~root:4 ~tree:legal with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "legal tree rejected");
  (* Tree rooted at 1 descending to 2 then peering to 3 — a valley. *)
  let valley =
    [ Option.get (Graph.find_link g ~src:1 ~dst:2);
      Option.get (Graph.find_link g ~src:2 ~dst:3) ]
  in
  match Policy.check_tree pol g ~root:1 ~tree:valley with
  | Error violations ->
    Alcotest.(check bool) "reports the violating path" true
      (List.mem [ 1; 2; 3 ] violations)
  | Ok () -> Alcotest.fail "valley must be rejected"

let test_policy_infer_by_degree () =
  let g = Graph.create ~nodes:3 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 0 2;
  (* Node 0 has degree 2, others 1: 0 is everyone's provider. *)
  let pol = Policy.infer_by_degree g in
  Alcotest.(check bool) "1 customer of 0" true
    (Policy.relation pol ~src:1 ~dst:0 = Policy.Customer_of);
  Alcotest.(check bool) "0 provider of 2" true
    (Policy.relation pol ~src:0 ~dst:2 = Policy.Provider_of)

let test_policy_filter_links () =
  let g, pol = policy_fixture () in
  let links = Graph.out_links g 2 in
  let ups = Policy.filter_links pol ~from_relation:Policy.Customer_of links in
  Alcotest.(check int) "one uplink from 2" 1 (List.length ups);
  Alcotest.(check int) "towards 1" 1 (List.hd ups).Graph.dst

let () =
  Alcotest.run "ip-policy"
    [
      ( "underlay",
        [
          Alcotest.test_case "create validates" `Quick test_create_validates;
          Alcotest.test_case "unicast forward" `Quick test_unicast_route_and_forward;
          Alcotest.test_case "longest prefix" `Quick test_unicast_longest_prefix_wins;
          Alcotest.test_case "edge-only" `Quick test_unicast_requires_edge_routers;
          Alcotest.test_case "ssm join/forward/leave" `Quick test_ssm_join_forward_leave;
          Alcotest.test_case "ssm state at ingress" `Quick test_ssm_state_only_at_ingress;
          Alcotest.test_case "ssm empty errors" `Quick test_ssm_empty_group_errors;
        ] );
      ( "policy",
        [
          Alcotest.test_case "relations" `Quick test_policy_relations_and_inverse;
          Alcotest.test_case "valley-free" `Quick test_policy_valley_free_paths;
          Alcotest.test_case "check tree" `Quick test_policy_check_tree;
          Alcotest.test_case "infer by degree" `Quick test_policy_infer_by_degree;
          Alcotest.test_case "filter links" `Quick test_policy_filter_links;
        ] );
    ]
