(* Tests for Lipsin_packet.Header. *)

module Bitvec = Lipsin_bitvec.Bitvec
module Zfilter = Lipsin_bloom.Zfilter
module Lit = Lipsin_bloom.Lit
module Header = Lipsin_packet.Header
module Rng = Lipsin_util.Rng

let sample_zfilter ?(seed = 3) ?(n = 6) ?(m = 248) () =
  let rng = Rng.of_int seed in
  let params = Lit.constant_k ~m ~d:8 ~k:5 in
  Zfilter.of_tags ~m
    (List.init n (fun _ -> Lit.tag (Lit.fresh params rng) 0))

let test_make_defaults () =
  let h = Header.make ~d_index:3 ~zfilter:(sample_zfilter ()) "hello" in
  Alcotest.(check int) "default ttl" 64 h.Header.ttl;
  Alcotest.(check int) "d index" 3 h.Header.d_index;
  Alcotest.(check string) "payload" "hello" h.Header.payload

let test_make_validates () =
  let z = sample_zfilter () in
  Alcotest.check_raises "d out of range"
    (Invalid_argument "Header.make: d_index outside 0..255") (fun () ->
      ignore (Header.make ~d_index:256 ~zfilter:z ""));
  Alcotest.check_raises "ttl out of range"
    (Invalid_argument "Header.make: ttl outside 0..255") (fun () ->
      ignore (Header.make ~ttl:(-1) ~d_index:0 ~zfilter:z ""))

let test_sizes () =
  Alcotest.(check int) "header size for m=248" 36 (Header.header_size ~m:248);
  let h = Header.make ~d_index:0 ~zfilter:(sample_zfilter ()) "abcd" in
  Alcotest.(check int) "total size" 40 (Header.size h);
  Alcotest.(check int) "encoded length" 40 (Bytes.length (Header.encode h))

let test_roundtrip () =
  let h = Header.make ~ttl:17 ~d_index:5 ~zfilter:(sample_zfilter ()) "payload!" in
  match Header.decode (Header.encode h) with
  | Error e -> Alcotest.fail e
  | Ok h2 -> Alcotest.(check bool) "roundtrip equal" true (Header.equal h h2)

let test_roundtrip_empty_payload () =
  let h = Header.make ~d_index:0 ~zfilter:(sample_zfilter ()) "" in
  match Header.decode (Header.encode h) with
  | Error e -> Alcotest.fail e
  | Ok h2 -> Alcotest.(check string) "empty payload" "" h2.Header.payload

let test_roundtrip_odd_width () =
  (* m = 120: the paper's abandoned small filter; still a valid wire
     format. *)
  let h = Header.make ~d_index:1 ~zfilter:(sample_zfilter ~m:120 ()) "x" in
  match Header.decode (Header.encode h) with
  | Error e -> Alcotest.fail e
  | Ok h2 ->
    Alcotest.(check int) "m preserved" 120 (Zfilter.m h2.Header.zfilter);
    Alcotest.(check bool) "equal" true (Header.equal h h2)

let test_decode_bad_magic () =
  let h = Header.make ~d_index:0 ~zfilter:(sample_zfilter ()) "" in
  let b = Header.encode h in
  Bytes.set b 0 'X';
  match Header.decode b with
  | Error msg -> Alcotest.(check string) "bad magic" "bad magic byte" msg
  | Ok _ -> Alcotest.fail "must reject bad magic"

let test_decode_truncated () =
  let h = Header.make ~d_index:0 ~zfilter:(sample_zfilter ()) "" in
  let b = Header.encode h in
  (match Header.decode (Bytes.sub b 0 3) with
  | Error msg -> Alcotest.(check string) "short" "packet shorter than fixed header" msg
  | Ok _ -> Alcotest.fail "must reject short packet");
  match Header.decode (Bytes.sub b 0 20) with
  | Error msg ->
    Alcotest.(check string) "truncated filter" "packet truncated inside zFilter" msg
  | Ok _ -> Alcotest.fail "must reject truncated packet"

let test_decrement_ttl () =
  let h = Header.make ~ttl:2 ~d_index:0 ~zfilter:(sample_zfilter ()) "" in
  match Header.decrement_ttl h with
  | None -> Alcotest.fail "ttl 2 must decrement"
  | Some h1 -> (
    Alcotest.(check int) "ttl 1" 1 h1.Header.ttl;
    match Header.decrement_ttl h1 with
    | None -> Alcotest.fail "ttl 1 must decrement"
    | Some h0 ->
      Alcotest.(check int) "ttl 0" 0 h0.Header.ttl;
      Alcotest.(check bool) "ttl 0 drops" true (Header.decrement_ttl h0 = None))

let prop_roundtrip =
  QCheck.Test.make ~name:"encode/decode roundtrip" ~count:300
    QCheck.(quad small_nat (int_range 0 255) (int_range 0 255) (string_of_size (QCheck.Gen.int_range 0 200)))
    (fun (seed, d_index, ttl, payload) ->
      let z = sample_zfilter ~seed ~n:(1 + (seed mod 20)) () in
      let h = Header.make ~ttl ~d_index ~zfilter:z payload in
      match Header.decode (Header.encode h) with
      | Ok h2 -> Header.equal h h2
      | Error _ -> false)

let prop_decode_never_crashes =
  QCheck.Test.make ~name:"decode of arbitrary bytes never raises" ~count:500
    QCheck.(string_of_size (QCheck.Gen.int_range 0 64))
    (fun s ->
      match Header.decode (Bytes.of_string s) with Ok _ | Error _ -> true)

let () =
  Alcotest.run "packet"
    [
      ( "header",
        [
          Alcotest.test_case "make defaults" `Quick test_make_defaults;
          Alcotest.test_case "make validates" `Quick test_make_validates;
          Alcotest.test_case "sizes" `Quick test_sizes;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "empty payload" `Quick test_roundtrip_empty_payload;
          Alcotest.test_case "odd width" `Quick test_roundtrip_odd_width;
          Alcotest.test_case "bad magic" `Quick test_decode_bad_magic;
          Alcotest.test_case "truncated" `Quick test_decode_truncated;
          Alcotest.test_case "ttl" `Quick test_decrement_ttl;
          QCheck_alcotest.to_alcotest prop_roundtrip;
          QCheck_alcotest.to_alcotest prop_decode_never_crashes;
        ] );
    ]
