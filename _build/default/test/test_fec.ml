(* Tests for Lipsin_fec: XOR parity coding and lateral error
   correction over a lossy fabric. *)

module Xor_code = Lipsin_fec.Xor_code
module Lateral = Lipsin_fec.Lateral
module Lit = Lipsin_bloom.Lit
module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module Generator = Lipsin_topology.Generator
module Assignment = Lipsin_core.Assignment
module Candidate = Lipsin_core.Candidate
module Net = Lipsin_sim.Net
module Run = Lipsin_sim.Run
module Rng = Lipsin_util.Rng

let window = [ "alpha"; "bravo-longer"; ""; "d" ]

let test_repair_roundtrip_each_loss () =
  let repair = Xor_code.repair window in
  List.iteri
    (fun lost expected ->
      let received =
        List.filteri (fun i _ -> i <> lost) (List.mapi (fun i p -> (i, p)) window)
      in
      match Xor_code.recover ~window_size:4 ~received ~repair with
      | Some (i, payload) ->
        Alcotest.(check int) "right index" lost i;
        Alcotest.(check string) "right payload" expected payload
      | None -> Alcotest.fail "single loss must be recoverable")
    window

let test_recover_none_when_complete () =
  let repair = Xor_code.repair window in
  let received = List.mapi (fun i p -> (i, p)) window in
  Alcotest.(check bool) "nothing missing" true
    (Xor_code.recover ~window_size:4 ~received ~repair = None)

let test_recover_none_on_double_loss () =
  let repair = Xor_code.repair window in
  let received = [ (0, List.nth window 0); (1, List.nth window 1) ] in
  Alcotest.(check bool) "two losses unrecoverable" true
    (Xor_code.recover ~window_size:4 ~received ~repair = None)

let test_recover_validates () =
  let repair = Xor_code.repair window in
  Alcotest.check_raises "duplicate index"
    (Invalid_argument "Xor_code.recover: duplicate index") (fun () ->
      ignore
        (Xor_code.recover ~window_size:4
           ~received:[ (0, "a"); (0, "a"); (1, "b") ]
           ~repair));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Xor_code.recover: index out of range") (fun () ->
      ignore (Xor_code.recover ~window_size:2 ~received:[ (5, "x") ] ~repair));
  Alcotest.check_raises "empty window"
    (Invalid_argument "Xor_code.repair: empty window") (fun () ->
      ignore (Xor_code.repair []))

let test_verify () =
  let repair = Xor_code.repair window in
  Alcotest.(check bool) "matches" true (Xor_code.verify window ~repair);
  Alcotest.(check bool) "detects corruption" false
    (Xor_code.verify [ "alpha"; "bravo-longer"; "!"; "d" ] ~repair)

let prop_single_loss_always_recovers =
  QCheck.Test.make ~name:"any single loss in any window recovers" ~count:200
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 10) (string_of_size (Gen.int_range 0 40)))
        small_nat)
    (fun (payloads, pick) ->
      let n = List.length payloads in
      let lost = pick mod n in
      let repair = Xor_code.repair payloads in
      let received =
        List.filteri (fun i _ -> i <> lost) (List.mapi (fun i p -> (i, p)) payloads)
      in
      match Xor_code.recover ~window_size:n ~received ~repair with
      | Some (i, p) -> i = lost && String.equal p (List.nth payloads lost)
      | None -> false)

let lossy_setup () =
  let g =
    Generator.pref_attach ~rng:(Rng.of_int 199) ~nodes:30 ~edges:50 ~max_degree:8 ()
  in
  let asg = Assignment.make Lit.default (Rng.of_int 211) g in
  (g, asg, Net.make asg)

let test_lossless_window_needs_no_fec () =
  let g, asg, net = lossy_setup () in
  let subscribers = [ 10; 20 ] in
  let tree = Spt.delivery_tree g ~root:0 ~subscribers in
  let c = Candidate.build_one asg ~tree ~table:0 in
  let report =
    Lateral.send_window net ~src:0 ~table:0 ~zfilter:c.Candidate.zfilter ~tree
      ~subscribers
      ~window:[ "a"; "b"; "c"; "d" ]
      ~loss:{ Run.probability = 0.0; rng = Rng.of_int 1 }
  in
  Alcotest.(check int) "all complete without fec" 2 report.Lateral.complete_without_fec

let test_lossy_window_fec_improves () =
  let g, asg, net = lossy_setup () in
  let subscribers = [ 7; 14; 21; 28 ] in
  let tree = Spt.delivery_tree g ~root:0 ~subscribers in
  let c = Candidate.build_one asg ~tree ~table:0 in
  (* Aggregate over many windows so the improvement is statistical. *)
  let without = ref 0 and with_fec = ref 0 and windows = ref 0 in
  let loss_rng = Rng.of_int 223 in
  for _ = 1 to 60 do
    incr windows;
    let report =
      Lateral.send_window net ~src:0 ~table:0 ~zfilter:c.Candidate.zfilter ~tree
        ~subscribers
        ~window:[ "p0"; "p1"; "p2"; "p3"; "p4"; "p5"; "p6"; "p7" ]
        ~loss:{ Run.probability = 0.02; rng = loss_rng }
    in
    without := !without + report.Lateral.complete_without_fec;
    with_fec := !with_fec + report.Lateral.complete_with_fec
  done;
  Alcotest.(check bool) "repair strictly helps" true (!with_fec > !without);
  (* Sanity: recovery never double counts. *)
  Alcotest.(check bool) "bounded by population" true
    (!with_fec <= 4 * !windows)

let test_report_accounting_consistent () =
  let g, asg, net = lossy_setup () in
  let subscribers = [ 5; 25 ] in
  let tree = Spt.delivery_tree g ~root:0 ~subscribers in
  let c = Candidate.build_one asg ~tree ~table:0 in
  let report =
    Lateral.send_window net ~src:0 ~table:0 ~zfilter:c.Candidate.zfilter ~tree
      ~subscribers ~window:[ "x"; "y"; "z" ]
      ~loss:{ Run.probability = 0.15; rng = Rng.of_int 227 }
  in
  List.iter
    (fun r ->
      Alcotest.(check int) "received+recovered+missing = window" 3
        (r.Lateral.received + r.Lateral.recovered + r.Lateral.missing);
      Alcotest.(check bool) "recovered is 0 or 1" true
        (r.Lateral.recovered = 0 || r.Lateral.recovered = 1))
    report.Lateral.subscribers

let test_loss_model_validates () =
  let _, asg, net = lossy_setup () in
  ignore asg;
  Alcotest.check_raises "bad probability"
    (Invalid_argument "Run.deliver: loss probability outside [0,1)") (fun () ->
      ignore
        (Run.deliver
           ~loss:{ Run.probability = 1.0; rng = Rng.of_int 1 }
           net ~src:0 ~table:0
           ~zfilter:(Lipsin_bloom.Zfilter.create ~m:248)
           ~tree:[]))

let test_loss_model_drops_and_counts () =
  let g = Graph.create ~nodes:11 in
  for v = 0 to 9 do
    Graph.add_edge g v (v + 1)
  done;
  let asg = Assignment.make Lit.default (Rng.of_int 229) g in
  let net = Net.make asg in
  let tree = Spt.delivery_tree g ~root:0 ~subscribers:[ 10 ] in
  let c = Candidate.build_one asg ~tree ~table:0 in
  let rng = Rng.of_int 233 in
  let drops = ref 0 and deliveries = ref 0 in
  for _ = 1 to 200 do
    let o =
      Run.deliver
        ~loss:{ Run.probability = 0.1; rng }
        net ~src:0 ~table:0 ~zfilter:c.Candidate.zfilter ~tree
    in
    if o.Run.reached.(10) then incr deliveries;
    drops := !drops + o.Run.lost
  done;
  Alcotest.(check bool) "some drops happened" true (!drops > 0);
  (* P(survive 10 hops at 10% loss) ~ 0.35: deliveries well below 200
     but well above 0. *)
  Alcotest.(check bool) "deliveries thinned but present" true
    (!deliveries > 20 && !deliveries < 150)

let () =
  Alcotest.run "fec"
    [
      ( "xor_code",
        [
          Alcotest.test_case "roundtrip each loss" `Quick test_repair_roundtrip_each_loss;
          Alcotest.test_case "none when complete" `Quick test_recover_none_when_complete;
          Alcotest.test_case "none on double loss" `Quick test_recover_none_on_double_loss;
          Alcotest.test_case "validates" `Quick test_recover_validates;
          Alcotest.test_case "verify" `Quick test_verify;
          QCheck_alcotest.to_alcotest prop_single_loss_always_recovers;
        ] );
      ( "lateral",
        [
          Alcotest.test_case "lossless" `Quick test_lossless_window_needs_no_fec;
          Alcotest.test_case "fec improves" `Quick test_lossy_window_fec_improves;
          Alcotest.test_case "accounting" `Quick test_report_accounting_consistent;
          Alcotest.test_case "loss validates" `Quick test_loss_model_validates;
          Alcotest.test_case "loss drops/counts" `Quick test_loss_model_drops_and_counts;
        ] );
    ]
