(* Tests for Lipsin_topology: Graph, Spt, Metrics, Generator,
   As_presets, Edge_list. *)

module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module Metrics = Lipsin_topology.Metrics
module Generator = Lipsin_topology.Generator
module As_presets = Lipsin_topology.As_presets
module Edge_list = Lipsin_topology.Edge_list
module Rng = Lipsin_util.Rng

(* A small fixed graph used across tests:
     0 - 1 - 2
     |       |
     3 ----- 4 - 5          *)
let sample_graph () =
  let g = Graph.create ~nodes:6 in
  List.iter (fun (u, v) -> Graph.add_edge g u v)
    [ (0, 1); (1, 2); (0, 3); (3, 4); (2, 4); (4, 5) ];
  g

let test_counts () =
  let g = sample_graph () in
  Alcotest.(check int) "nodes" 6 (Graph.node_count g);
  Alcotest.(check int) "edges" 6 (Graph.edge_count g);
  Alcotest.(check int) "directed links" 12 (Graph.link_count g)

let test_add_edge_errors () =
  let g = sample_graph () in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self-loop")
    (fun () -> Graph.add_edge g 2 2);
  Alcotest.check_raises "duplicate" (Invalid_argument "Graph.add_edge: duplicate edge")
    (fun () -> Graph.add_edge g 0 1);
  Alcotest.check_raises "range" (Invalid_argument "Graph: node out of range")
    (fun () -> Graph.add_edge g 0 6)

let test_out_links_and_degree () =
  let g = sample_graph () in
  Alcotest.(check int) "degree of 4" 3 (Graph.out_degree g 4);
  Alcotest.(check (list int)) "neighbors of 4" [ 3; 2; 5 ] (Graph.neighbors g 4);
  List.iter
    (fun l -> Alcotest.(check int) "src correct" 4 l.Graph.src)
    (Graph.out_links g 4)

let test_links_indexing () =
  let g = sample_graph () in
  let links = Graph.links g in
  Array.iteri
    (fun i l -> Alcotest.(check int) "index matches position" i l.Graph.index)
    links;
  Alcotest.(check int) "link by index" 5 (Graph.link g 5).Graph.index

let test_find_and_reverse () =
  let g = sample_graph () in
  match Graph.find_link g ~src:3 ~dst:4 with
  | None -> Alcotest.fail "link 3->4 must exist"
  | Some l ->
    let r = Graph.reverse_link g l in
    Alcotest.(check int) "reverse src" 4 r.Graph.src;
    Alcotest.(check int) "reverse dst" 3 r.Graph.dst;
    Alcotest.(check bool) "distinct index" true (r.Graph.index <> l.Graph.index)

let test_bfs_parents_and_distances () =
  let g = sample_graph () in
  let dist = Spt.distances g ~root:0 in
  Alcotest.(check (list int)) "hop counts" [ 0; 1; 2; 1; 2; 3 ] (Array.to_list dist);
  let parents = Spt.bfs_parents g ~root:0 in
  Alcotest.(check int) "root parent" (-1) parents.(0);
  Alcotest.(check int) "1's parent" 0 parents.(1)

let test_path_to () =
  let g = sample_graph () in
  let parents = Spt.bfs_parents g ~root:0 in
  let path = Spt.path_to g parents 5 in
  Alcotest.(check int) "path length = dist" 3 (List.length path);
  (match path with
  | first :: _ -> Alcotest.(check int) "starts at root" 0 first.Graph.src
  | [] -> Alcotest.fail "path must not be empty");
  let last = List.nth path (List.length path - 1) in
  Alcotest.(check int) "ends at target" 5 last.Graph.dst

let test_delivery_tree_covers_and_dedups () =
  let g = sample_graph () in
  let tree = Spt.delivery_tree g ~root:0 ~subscribers:[ 2; 5; 5 ] in
  (* Paths 0-1-2 and 0-3-4-5 are disjoint: 5 links, no duplicates. *)
  Alcotest.(check int) "5 links" 5 (List.length tree);
  let idx = List.map (fun l -> l.Graph.index) tree in
  Alcotest.(check int) "no duplicates" 5 (List.length (List.sort_uniq compare idx))

let test_delivery_tree_root_subscriber () =
  let g = sample_graph () in
  let tree = Spt.delivery_tree g ~root:0 ~subscribers:[ 0 ] in
  Alcotest.(check int) "self subscription adds nothing" 0 (List.length tree)

let test_delivery_tree_unreachable () =
  let g = Graph.create ~nodes:3 in
  Graph.add_edge g 0 1;
  Alcotest.check_raises "unreachable subscriber"
    (Invalid_argument "Spt.delivery_tree: subscriber unreachable from root")
    (fun () -> ignore (Spt.delivery_tree g ~root:0 ~subscribers:[ 2 ]))

let test_tree_nodes () =
  let g = sample_graph () in
  let tree = Spt.delivery_tree g ~root:0 ~subscribers:[ 5 ] in
  Alcotest.(check (list int)) "nodes on path" [ 0; 3; 4; 5 ] (Spt.tree_nodes tree)

let test_is_connected () =
  let g = sample_graph () in
  Alcotest.(check bool) "connected" true (Spt.is_connected g);
  let g2 = Graph.create ~nodes:4 in
  Graph.add_edge g2 0 1;
  Alcotest.(check bool) "disconnected" false (Spt.is_connected g2)

let test_metrics_known_graph () =
  let m = Metrics.compute (sample_graph ()) in
  Alcotest.(check int) "diameter" 3 m.Metrics.diameter;
  Alcotest.(check int) "radius" 2 m.Metrics.radius;
  Alcotest.(check int) "max degree" 3 m.Metrics.max_degree;
  Alcotest.(check int) "edges" 6 m.Metrics.edges

let test_metrics_disconnected_raises () =
  let g = Graph.create ~nodes:3 in
  Graph.add_edge g 0 1;
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Metrics.eccentricity: graph disconnected") (fun () ->
      ignore (Metrics.compute g))

let test_degree_histogram () =
  let h = Metrics.degree_histogram (sample_graph ()) in
  (* degrees: 0:2 1:2 2:2 3:2 4:3 5:1 -> {1:1, 2:4, 3:1} *)
  Alcotest.(check (list (pair int int))) "histogram" [ (1, 1); (2, 4); (3, 1) ] h

let test_generator_pref_attach_counts () =
  let g =
    Generator.pref_attach ~rng:(Rng.of_int 1) ~nodes:60 ~edges:100 ~max_degree:12
      ~chain_fraction:0.3 ()
  in
  Alcotest.(check int) "nodes" 60 (Graph.node_count g);
  Alcotest.(check int) "edges" 100 (Graph.edge_count g);
  Alcotest.(check bool) "connected" true (Spt.is_connected g);
  for v = 0 to 59 do
    Alcotest.(check bool) "degree cap" true (Graph.out_degree g v <= 12)
  done

let test_generator_waxman_counts () =
  let g =
    Generator.waxman ~rng:(Rng.of_int 2) ~nodes:40 ~edges:70 ~max_degree:10 ()
  in
  Alcotest.(check int) "nodes" 40 (Graph.node_count g);
  Alcotest.(check int) "edges" 70 (Graph.edge_count g);
  Alcotest.(check bool) "connected" true (Spt.is_connected g)

let test_generator_ring () =
  let g = Generator.ring ~nodes:8 in
  Alcotest.(check int) "edges = nodes" 8 (Graph.edge_count g);
  let m = Metrics.compute g in
  Alcotest.(check int) "diameter n/2" 4 m.Metrics.diameter;
  Alcotest.(check int) "all degree 2" 2 m.Metrics.max_degree;
  Alcotest.check_raises "too small" (Invalid_argument "Generator.ring: need at least 3 nodes")
    (fun () -> ignore (Generator.ring ~nodes:2))

let test_generator_grid () =
  let g = Generator.grid ~rows:3 ~cols:4 in
  Alcotest.(check int) "nodes" 12 (Graph.node_count g);
  (* 3*(4-1) horizontal + (3-1)*4 vertical = 17 edges. *)
  Alcotest.(check int) "edges" 17 (Graph.edge_count g);
  Alcotest.(check bool) "connected" true (Spt.is_connected g);
  let m = Metrics.compute g in
  Alcotest.(check int) "manhattan diameter" 5 m.Metrics.diameter

let test_generator_fat_tree () =
  let ft = Generator.fat_tree ~k:4 in
  Alcotest.(check int) "hosts" 16 (List.length ft.Generator.hosts);
  Alcotest.(check int) "switches" 20 (List.length ft.Generator.switches);
  Alcotest.(check bool) "connected" true (Spt.is_connected ft.Generator.graph);
  (* Any two hosts are within 6 hops (host-edge-agg-core-agg-edge-host). *)
  let dist = Spt.distances ft.Generator.graph ~root:(List.hd ft.Generator.hosts) in
  List.iter
    (fun h -> Alcotest.(check bool) "within 6 hops" true (dist.(h) <= 6))
    ft.Generator.hosts;
  Alcotest.check_raises "odd k" (Invalid_argument "Generator.fat_tree: k must be even and >= 2")
    (fun () -> ignore (Generator.fat_tree ~k:3))

let test_generator_rejects_infeasible () =
  Alcotest.check_raises "too few edges"
    (Invalid_argument "Generator.pref_attach: need at least nodes-1 edges")
    (fun () ->
      ignore
        (Generator.pref_attach ~rng:(Rng.of_int 1) ~nodes:10 ~edges:5
           ~max_degree:4 ()))

(* Regression pin: the preset topologies must keep matching the paper's
   Table 1 node/link counts (the zFilter results depend on them). *)
let test_presets_match_table1 () =
  List.iter2
    (fun (name, g) spec ->
      Alcotest.(check int) (name ^ " nodes") spec.As_presets.nodes (Graph.node_count g);
      Alcotest.(check int) (name ^ " links") spec.As_presets.edges (Graph.edge_count g);
      let m = Metrics.compute g in
      Alcotest.(check bool)
        (name ^ " diameter within 1")
        true
        (abs (m.Metrics.diameter - spec.As_presets.diameter) <= 1);
      Alcotest.(check bool)
        (name ^ " radius within 1")
        true
        (abs (m.Metrics.radius - spec.As_presets.radius) <= 1))
    (As_presets.all ()) As_presets.paper_table1

let test_presets_deterministic () =
  let a = As_presets.as1221 () and b = As_presets.as1221 () in
  Alcotest.(check int) "same links" (Graph.link_count a) (Graph.link_count b);
  let la = Graph.links a and lb = Graph.links b in
  Array.iteri
    (fun i l ->
      Alcotest.(check bool) "identical link" true
        (l.Graph.src = lb.(i).Graph.src && l.Graph.dst = lb.(i).Graph.dst))
    la

let test_by_name () =
  Alcotest.(check int) "by name" 104 (Graph.node_count (As_presets.by_name "as1221"));
  Alcotest.(check int) "numeric alias" 65 (Graph.node_count (As_presets.by_name "TA2"));
  Alcotest.check_raises "unknown"
    (Invalid_argument "As_presets.by_name: unknown topology nope") (fun () ->
      ignore (As_presets.by_name "nope"))

let test_edge_list_roundtrip () =
  let g = sample_graph () in
  let g2 = Edge_list.of_string (Edge_list.to_string g) in
  Alcotest.(check int) "nodes" (Graph.node_count g) (Graph.node_count g2);
  Alcotest.(check int) "edges" (Graph.edge_count g) (Graph.edge_count g2);
  Graph.iter_links g (fun l ->
      Alcotest.(check bool) "edge preserved" true
        (Graph.has_edge g2 l.Graph.src l.Graph.dst))

let test_edge_list_comments_and_blank () =
  let g = Edge_list.of_string "# comment\nnodes 3\n\n0 1\n# another\n1 2\n" in
  Alcotest.(check int) "edges" 2 (Graph.edge_count g)

let test_edge_list_rejects () =
  Alcotest.check_raises "no header"
    (Invalid_argument "Edge_list.of_string: missing 'nodes <n>' header") (fun () ->
      ignore (Edge_list.of_string "0 1\n"));
  Alcotest.check_raises "bad line"
    (Invalid_argument "Edge_list.of_string: bad edge line: 0 x") (fun () ->
      ignore (Edge_list.of_string "nodes 2\n0 x\n"))

(* Properties over generated topologies. *)

let prop_delivery_tree_reaches_all =
  QCheck.Test.make ~name:"delivery tree spans all subscribers" ~count:100
    QCheck.(pair small_nat (int_range 2 12))
    (fun (seed, subs) ->
      let g =
        Generator.pref_attach ~rng:(Rng.of_int (seed + 1)) ~nodes:40 ~edges:60
          ~max_degree:10 ()
      in
      let rng = Rng.of_int (seed + 1000) in
      let picks = Rng.sample rng (subs + 1) 40 in
      let root = picks.(0) in
      let subscribers = Array.to_list (Array.sub picks 1 subs) in
      let tree = Spt.delivery_tree g ~root ~subscribers in
      let nodes = Spt.tree_nodes tree in
      List.for_all (fun s -> s = root || List.mem s nodes) subscribers)

let prop_tree_size_at_most_path_sum =
  QCheck.Test.make ~name:"tree links <= sum of path lengths" ~count:100
    QCheck.(pair small_nat (int_range 2 10))
    (fun (seed, subs) ->
      let g =
        Generator.waxman ~rng:(Rng.of_int (seed + 3)) ~nodes:30 ~edges:50
          ~max_degree:10 ()
      in
      let rng = Rng.of_int (seed + 2000) in
      let picks = Rng.sample rng (subs + 1) 30 in
      let root = picks.(0) in
      let subscribers = Array.to_list (Array.sub picks 1 subs) in
      let tree = Spt.delivery_tree g ~root ~subscribers in
      let dist = Spt.distances g ~root in
      let path_sum =
        List.fold_left (fun acc s -> acc + dist.(s)) 0 subscribers
      in
      List.length tree <= path_sum)

let () =
  Alcotest.run "topology"
    [
      ( "graph",
        [
          Alcotest.test_case "counts" `Quick test_counts;
          Alcotest.test_case "add_edge errors" `Quick test_add_edge_errors;
          Alcotest.test_case "out links/degree" `Quick test_out_links_and_degree;
          Alcotest.test_case "link indexing" `Quick test_links_indexing;
          Alcotest.test_case "find/reverse" `Quick test_find_and_reverse;
        ] );
      ( "spt",
        [
          Alcotest.test_case "bfs parents/distances" `Quick
            test_bfs_parents_and_distances;
          Alcotest.test_case "path_to" `Quick test_path_to;
          Alcotest.test_case "delivery tree" `Quick test_delivery_tree_covers_and_dedups;
          Alcotest.test_case "root subscriber" `Quick test_delivery_tree_root_subscriber;
          Alcotest.test_case "unreachable" `Quick test_delivery_tree_unreachable;
          Alcotest.test_case "tree nodes" `Quick test_tree_nodes;
          Alcotest.test_case "connectivity" `Quick test_is_connected;
          QCheck_alcotest.to_alcotest prop_delivery_tree_reaches_all;
          QCheck_alcotest.to_alcotest prop_tree_size_at_most_path_sum;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "known graph" `Quick test_metrics_known_graph;
          Alcotest.test_case "disconnected raises" `Quick
            test_metrics_disconnected_raises;
          Alcotest.test_case "degree histogram" `Quick test_degree_histogram;
        ] );
      ( "generator",
        [
          Alcotest.test_case "pref_attach counts" `Quick
            test_generator_pref_attach_counts;
          Alcotest.test_case "waxman counts" `Quick test_generator_waxman_counts;
          Alcotest.test_case "rejects infeasible" `Quick
            test_generator_rejects_infeasible;
          Alcotest.test_case "ring" `Quick test_generator_ring;
          Alcotest.test_case "grid" `Quick test_generator_grid;
          Alcotest.test_case "fat tree" `Quick test_generator_fat_tree;
        ] );
      ( "presets",
        [
          Alcotest.test_case "match Table 1" `Quick test_presets_match_table1;
          Alcotest.test_case "deterministic" `Quick test_presets_deterministic;
          Alcotest.test_case "by_name" `Quick test_by_name;
        ] );
      ( "edge_list",
        [
          Alcotest.test_case "roundtrip" `Quick test_edge_list_roundtrip;
          Alcotest.test_case "comments/blank" `Quick test_edge_list_comments_and_blank;
          Alcotest.test_case "rejects" `Quick test_edge_list_rejects;
        ] );
    ]
