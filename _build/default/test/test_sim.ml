(* Tests for Lipsin_sim: Net, Run, Latency. *)

module Lit = Lipsin_bloom.Lit
module Zfilter = Lipsin_bloom.Zfilter
module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module Generator = Lipsin_topology.Generator
module Assignment = Lipsin_core.Assignment
module Candidate = Lipsin_core.Candidate
module Select = Lipsin_core.Select
module Net = Lipsin_sim.Net
module Run = Lipsin_sim.Run
module Latency = Lipsin_sim.Latency
module Stats = Lipsin_util.Stats
module Rng = Lipsin_util.Rng

let line_graph n =
  let g = Graph.create ~nodes:n in
  for v = 0 to n - 2 do
    Graph.add_edge g v (v + 1)
  done;
  g

let setup ?(seed = 1) g =
  let asg = Assignment.make Lit.default (Rng.of_int seed) g in
  (asg, Net.make asg)

let deliver_tree net asg ~src ~subscribers =
  let tree = Spt.delivery_tree (Net.graph net) ~root:src ~subscribers in
  let c = Candidate.build_one asg ~tree ~table:0 in
  (tree, Run.deliver net ~src ~table:0 ~zfilter:c.Candidate.zfilter ~tree)

let test_line_delivery_exact () =
  let g = line_graph 6 in
  let asg, net = setup g in
  let tree, o = deliver_tree net asg ~src:0 ~subscribers:[ 5 ] in
  Alcotest.(check bool) "subscriber reached" true o.Run.reached.(5);
  Alcotest.(check int) "5 links traversed" 5 o.Run.link_traversals;
  Alcotest.(check (float 1e-9)) "efficiency 100%" 1.0
    (Run.forwarding_efficiency o ~tree)

let test_multicast_delivery_reaches_all () =
  let g =
    Generator.pref_attach ~rng:(Rng.of_int 5) ~nodes:50 ~edges:80 ~max_degree:10 ()
  in
  let asg, net = setup g in
  let subscribers = [ 10; 20; 30; 40; 49 ] in
  let _, o = deliver_tree net asg ~src:0 ~subscribers in
  Alcotest.(check bool) "all reached" true (Run.all_reached o subscribers)

let test_empty_zfilter_goes_nowhere () =
  let g = line_graph 4 in
  let _, net = setup g in
  let z = Zfilter.create ~m:248 in
  let o = Run.deliver net ~src:0 ~table:0 ~zfilter:z ~tree:[] in
  Alcotest.(check int) "no traversals" 0 o.Run.link_traversals;
  Alcotest.(check (float 1e-9)) "vacuous efficiency 1.0" 1.0
    (Run.forwarding_efficiency o ~tree:[])

let test_false_positive_accounting () =
  let g = line_graph 4 in
  let asg, net = setup g in
  (* Deliver with tree declared empty: every forwarded link counts as a
     false positive. *)
  let real_tree = Spt.delivery_tree g ~root:0 ~subscribers:[ 3 ] in
  let c = Candidate.build_one asg ~tree:real_tree ~table:0 in
  let o = Run.deliver net ~src:0 ~table:0 ~zfilter:c.Candidate.zfilter ~tree:[] in
  Alcotest.(check bool) "all matches classified false" true (o.Run.false_positives >= 3);
  Alcotest.(check bool) "tests counted" true (o.Run.membership_tests > 0);
  Alcotest.(check bool) "fpr positive" true (Run.false_positive_rate o > 0.0)

let test_fpr_zero_on_clean_delivery () =
  let g = line_graph 8 in
  let asg, net = setup g in
  let _, o = deliver_tree net asg ~src:0 ~subscribers:[ 7 ] in
  (* A line graph has so few candidate links that false positives are
     essentially impossible with 40 bits set of 248. *)
  Alcotest.(check int) "no false positives" 0 o.Run.false_positives

let test_ttl_mode_terminates_and_bounds () =
  let g = line_graph 10 in
  let asg, net = setup g in
  let tree = Spt.delivery_tree g ~root:0 ~subscribers:[ 9 ] in
  let c = Candidate.build_one asg ~tree ~table:0 in
  let o =
    Run.deliver ~mode:(Run.Ttl 4) net ~src:0 ~table:0
      ~zfilter:c.Candidate.zfilter ~tree
  in
  Alcotest.(check bool) "ttl stops early" true (not o.Run.reached.(9));
  Alcotest.(check int) "exactly ttl traversals" 4 o.Run.link_traversals

let test_fill_drop_counted () =
  let g = line_graph 3 in
  let asg, net = setup g in
  ignore asg;
  let z = Zfilter.create ~m:248 in
  Lipsin_bitvec.Bitvec.set_all (Zfilter.to_bitvec z);
  let o = Run.deliver net ~src:0 ~table:0 ~zfilter:z ~tree:[] in
  Alcotest.(check int) "fill drop recorded" 1 o.Run.fill_drops;
  Alcotest.(check int) "nothing traversed" 0 o.Run.link_traversals

let test_net_failed_link_blocks_delivery () =
  let g = line_graph 5 in
  let asg, net = setup g in
  (match Graph.find_link g ~src:2 ~dst:3 with
  | Some l -> Net.fail_link net l
  | None -> Alcotest.fail "link 2->3 exists");
  let _, o = deliver_tree net asg ~src:0 ~subscribers:[ 4 ] in
  Alcotest.(check bool) "link failure cuts delivery" false o.Run.reached.(4);
  (match Graph.find_link g ~src:2 ~dst:3 with
  | Some l -> Net.restore_link net l
  | None -> ());
  let _, o2 = deliver_tree net asg ~src:0 ~subscribers:[ 4 ] in
  Alcotest.(check bool) "restored" true o2.Run.reached.(4)

let test_efficiency_formula () =
  let g = line_graph 4 in
  let asg, net = setup g in
  let tree, o = deliver_tree net asg ~src:0 ~subscribers:[ 3 ] in
  Alcotest.(check int) "tree is 3 links" 3 (List.length tree);
  Alcotest.(check (float 1e-9)) "eq 3" 1.0 (Run.forwarding_efficiency o ~tree)

(* Properties over random topologies: deliveries always reach all
   subscribers, and expand-once efficiency is in (0, 1]. *)
let prop_delivery_complete =
  QCheck.Test.make ~name:"stateless delivery reaches every subscriber" ~count:80
    QCheck.(pair small_nat (int_range 2 10))
    (fun (seed, subs) ->
      let g =
        Generator.pref_attach ~rng:(Rng.of_int (seed + 11)) ~nodes:45 ~edges:75
          ~max_degree:12 ()
      in
      let asg = Assignment.make Lit.paper_variable (Rng.of_int seed) g in
      let net = Net.make asg in
      let rng = Rng.of_int (seed + 31) in
      let picks = Rng.sample rng (subs + 1) 45 in
      let src = picks.(0) in
      let subscribers = Array.to_list (Array.sub picks 1 subs) in
      let tree = Spt.delivery_tree g ~root:src ~subscribers in
      let candidates = Candidate.build asg ~tree in
      match Select.select_fpa ~fill_limit:1.0 candidates with
      | None -> false
      | Some c ->
        let o =
          Run.deliver net ~src ~table:c.Candidate.table
            ~zfilter:c.Candidate.zfilter ~tree
        in
        Run.all_reached o subscribers)

let prop_efficiency_bounded =
  QCheck.Test.make ~name:"efficiency in (0,1] without virtual links" ~count:80
    QCheck.(pair small_nat (int_range 2 8))
    (fun (seed, subs) ->
      let g =
        Generator.waxman ~rng:(Rng.of_int (seed + 41)) ~nodes:35 ~edges:60
          ~max_degree:10 ()
      in
      let asg = Assignment.make Lit.default (Rng.of_int seed) g in
      let net = Net.make asg in
      let rng = Rng.of_int (seed + 51) in
      let picks = Rng.sample rng (subs + 1) 35 in
      let src = picks.(0) in
      let subscribers = Array.to_list (Array.sub picks 1 subs) in
      let tree = Spt.delivery_tree g ~root:src ~subscribers in
      let c = Candidate.build_one asg ~tree ~table:0 in
      let o = Run.deliver net ~src ~table:0 ~zfilter:c.Candidate.zfilter ~tree in
      let eff = Run.forwarding_efficiency o ~tree in
      eff > 0.0 && eff <= 1.0)

let test_latency_model_monotone () =
  let rng = Rng.create 3L in
  let s0 = Latency.sample_one_way rng Latency.default ~hops:0 ~samples:2000 in
  let s3 = Latency.sample_one_way rng Latency.default ~hops:3 ~samples:2000 in
  Alcotest.(check bool) "3 hops slower than 0" true (s3.Stats.mean > s0.Stats.mean);
  Alcotest.(check bool) "roughly 9us apart" true
    (abs_float (s3.Stats.mean -. s0.Stats.mean -. 9.0) < 1.0)

let test_latency_round_trip_doubles () =
  let rng = Rng.create 5L in
  let ow = Latency.sample_one_way rng Latency.default ~hops:2 ~samples:3000 in
  let rt = Latency.sample_round_trip rng Latency.default ~hops:2 ~samples:3000 in
  Alcotest.(check bool) "rtt ~ 2x one way" true
    (abs_float (rt.Stats.mean -. (2.0 *. ow.Stats.mean)) < 1.0)

let test_latency_rejects () =
  Alcotest.check_raises "negative hops"
    (Invalid_argument "Latency.one_way: negative hop count") (fun () ->
      ignore (Latency.one_way (Rng.create 1L) Latency.default ~hops:(-1)))

let () =
  Alcotest.run "sim"
    [
      ( "delivery",
        [
          Alcotest.test_case "line exact" `Quick test_line_delivery_exact;
          Alcotest.test_case "multicast reaches all" `Quick
            test_multicast_delivery_reaches_all;
          Alcotest.test_case "empty filter" `Quick test_empty_zfilter_goes_nowhere;
          Alcotest.test_case "false positive accounting" `Quick
            test_false_positive_accounting;
          Alcotest.test_case "clean delivery fpr 0" `Quick test_fpr_zero_on_clean_delivery;
          Alcotest.test_case "ttl mode" `Quick test_ttl_mode_terminates_and_bounds;
          Alcotest.test_case "fill drop counted" `Quick test_fill_drop_counted;
          Alcotest.test_case "failed link" `Quick test_net_failed_link_blocks_delivery;
          Alcotest.test_case "efficiency formula" `Quick test_efficiency_formula;
          QCheck_alcotest.to_alcotest prop_delivery_complete;
          QCheck_alcotest.to_alcotest prop_efficiency_bounded;
        ] );
      ( "latency",
        [
          Alcotest.test_case "monotone in hops" `Quick test_latency_model_monotone;
          Alcotest.test_case "rtt doubles" `Quick test_latency_round_trip_doubles;
          Alcotest.test_case "rejects negative" `Quick test_latency_rejects;
        ] );
    ]
