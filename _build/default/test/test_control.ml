(* Tests for Lipsin_control: Message wire format and in-band Plane
   operations. *)

module Bitvec = Lipsin_bitvec.Bitvec
module Lit = Lipsin_bloom.Lit
module Zfilter = Lipsin_bloom.Zfilter
module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module Generator = Lipsin_topology.Generator
module Assignment = Lipsin_core.Assignment
module Candidate = Lipsin_core.Candidate
module Net = Lipsin_sim.Net
module Run = Lipsin_sim.Run
module Node_engine = Lipsin_forwarding.Node_engine
module Message = Lipsin_control.Message
module Plane = Lipsin_control.Plane
module Rng = Lipsin_util.Rng

let roundtrip msg =
  match Message.decode (Message.encode msg) with
  | Ok m -> m
  | Error e -> Alcotest.fail ("decode failed: " ^ e)

let test_message_roundtrips () =
  let rng = Rng.of_int 1 in
  let lit = Lit.fresh Lit.default rng in
  let messages =
    [
      Message.Vlid_activate { nonce = Lit.nonce lit; tags = Lit.tags lit };
      Message.Vlid_deactivate { nonce = 0x123456789ABCDEFL };
      Message.Block_request { blocked = Lit.tag lit 2; table = 2 };
      Message.Reverse_collect { collected = Lit.tag lit 0; table = 0 };
    ]
  in
  List.iter
    (fun msg ->
      Alcotest.(check bool) "roundtrip equal" true (Message.equal msg (roundtrip msg)))
    messages

let test_message_rejects_garbage () =
  (match Message.decode "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty payload must be rejected");
  (match Message.decode "\x99somebytes" with
  | Error msg -> Alcotest.(check string) "unknown tag" "unknown message type" msg
  | Ok _ -> Alcotest.fail "unknown tag must be rejected");
  match Message.decode "\x02\x00\x01" with
  | Error msg -> Alcotest.(check string) "truncated" "truncated control message" msg
  | Ok _ -> Alcotest.fail "truncated message must be rejected"

let test_message_rejects_trailing () =
  let enc = Message.encode (Message.Vlid_deactivate { nonce = 5L }) ^ "x" in
  match Message.decode enc with
  | Error msg -> Alcotest.(check string) "trailing" "trailing bytes" msg
  | Ok _ -> Alcotest.fail "trailing bytes must be rejected"

let prop_message_decode_total =
  QCheck.Test.make ~name:"decode never raises on arbitrary payloads" ~count:500
    QCheck.(string_of_size (QCheck.Gen.int_range 0 80))
    (fun s -> match Message.decode s with Ok _ | Error _ -> true)

(*    0 - 1 - 2
      |   |   |
      3 - 4 - 5    *)
let grid () =
  let g = Graph.create ~nodes:6 in
  List.iter (fun (u, v) -> Graph.add_edge g u v)
    [ (0, 1); (1, 2); (0, 3); (1, 4); (2, 5); (3, 4); (4, 5) ];
  let asg = Assignment.make Lit.default (Rng.of_int 3) g in
  (g, asg, Net.make asg)

let link g u v =
  match Graph.find_link g ~src:u ~dst:v with
  | Some l -> l
  | None -> Alcotest.fail (Printf.sprintf "missing link %d->%d" u v)

let test_inband_activation_recovers_traffic () =
  let g, asg, net = grid () in
  let failed = link g 1 4 in
  (* Data packet that needs 1->4. *)
  let tree = [ link g 0 1; failed ] in
  let c = Candidate.build_one asg ~tree ~table:0 in
  (match Plane.activate_backup net ~failed with
  | Error e -> Alcotest.fail e
  | Ok trace ->
    Alcotest.(check bool) "control visited the detecting node" true
      (List.mem 1 trace.Plane.visited);
    Alcotest.(check bool) "control used at least 2 hops" true (trace.Plane.hops >= 2));
  let o = Run.deliver net ~src:0 ~table:0 ~zfilter:c.Candidate.zfilter ~tree in
  Alcotest.(check bool) "data still reaches node 4" true o.Run.reached.(4)

let test_inband_deactivation_restores () =
  let g, _, net = grid () in
  let failed = link g 1 4 in
  (match Plane.activate_backup net ~failed with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (match Plane.deactivate_backup net ~failed with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* All virtual state gone everywhere. *)
  for v = 0 to 5 do
    Alcotest.(check int)
      (Printf.sprintf "node %d clean" v)
      0
      (Node_engine.virtual_count (Net.engine net v))
  done

let test_activation_fails_on_bridge () =
  let g = Graph.create ~nodes:3 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 2;
  let asg = Assignment.make Lit.default (Rng.of_int 4) g in
  let net = Net.make asg in
  match Plane.activate_backup net ~failed:(link g 0 1) with
  | Error msg ->
    Alcotest.(check string) "bridge" "no backup path: failed link is a bridge" msg
  | Ok _ -> Alcotest.fail "bridge must have no backup"

let test_reverse_collection_routes_back () =
  let g =
    Generator.pref_attach ~rng:(Rng.of_int 6) ~nodes:30 ~edges:50 ~max_degree:8 ()
  in
  let asg = Assignment.make Lit.default (Rng.of_int 7) g in
  let net = Net.make asg in
  match Plane.collect_reverse_path net ~publisher:0 ~subscriber:20 ~table:0 with
  | Error e -> Alcotest.fail e
  | Ok (reverse, trace) ->
    Alcotest.(check bool) "visited subscriber" true (List.mem 20 trace.Plane.visited);
    (* The collected filter must route subscriber -> publisher. *)
    let o = Run.deliver net ~src:20 ~table:0 ~zfilter:reverse ~tree:[] in
    Alcotest.(check bool) "publisher reachable with collected zFilter" true
      o.Run.reached.(0);
    (* And its size is one path's worth of LITs. *)
    let dist = (Spt.distances g ~root:0).(20) in
    Alcotest.(check bool) "popcount bounded by path tags" true
      (Zfilter.popcount reverse <= dist * 5)

let test_block_request_quenches () =
  let g, asg, net = grid () in
  let victim_link = link g 0 1 in
  let tree = [ victim_link ] in
  let c = Candidate.build_one asg ~tree ~table:0 in
  (* Before the quench, traffic flows 0 -> 1. *)
  let before = Run.deliver net ~src:0 ~table:0 ~zfilter:c.Candidate.zfilter ~tree in
  Alcotest.(check bool) "flows before" true before.Run.reached.(1);
  (* Node 1 asks node 0 to block this zFilter over the link. *)
  Plane.request_block net ~over:victim_link ~blocked:c.Candidate.zfilter ~table:0;
  let after = Run.deliver net ~src:0 ~table:0 ~zfilter:c.Candidate.zfilter ~tree in
  Alcotest.(check bool) "quenched after" false after.Run.reached.(1);
  (* Other traffic over the same link is unaffected. *)
  let tree2 = [ link g 0 3; link g 3 4 ] in
  let c2 = Candidate.build_one asg ~tree:tree2 ~table:0 in
  let other = Run.deliver net ~src:0 ~table:0 ~zfilter:c2.Candidate.zfilter ~tree:tree2 in
  Alcotest.(check bool) "unrelated traffic unaffected" true other.Run.reached.(4)

let test_block_request_is_per_table () =
  let g, asg, net = grid () in
  let victim_link = link g 0 1 in
  let tree = [ victim_link ] in
  let c0 = Candidate.build_one asg ~tree ~table:0 in
  let c1 = Candidate.build_one asg ~tree ~table:1 in
  Plane.request_block net ~over:victim_link ~blocked:c0.Candidate.zfilter ~table:0;
  let o1 = Run.deliver net ~src:0 ~table:1 ~zfilter:c1.Candidate.zfilter ~tree in
  Alcotest.(check bool) "table 1 traffic still flows" true o1.Run.reached.(1)

let () =
  Alcotest.run "control"
    [
      ( "message",
        [
          Alcotest.test_case "roundtrips" `Quick test_message_roundtrips;
          Alcotest.test_case "rejects garbage" `Quick test_message_rejects_garbage;
          Alcotest.test_case "rejects trailing" `Quick test_message_rejects_trailing;
          QCheck_alcotest.to_alcotest prop_message_decode_total;
        ] );
      ( "plane",
        [
          Alcotest.test_case "in-band activation" `Quick
            test_inband_activation_recovers_traffic;
          Alcotest.test_case "in-band deactivation" `Quick
            test_inband_deactivation_restores;
          Alcotest.test_case "bridge fails" `Quick test_activation_fails_on_bridge;
          Alcotest.test_case "reverse collection" `Quick
            test_reverse_collection_routes_back;
          Alcotest.test_case "block request" `Quick test_block_request_quenches;
          Alcotest.test_case "block per table" `Quick test_block_request_is_per_table;
        ] );
    ]
