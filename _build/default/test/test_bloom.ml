(* Tests for Lipsin_bloom: Lit and Zfilter. *)

module Bitvec = Lipsin_bitvec.Bitvec
module Lit = Lipsin_bloom.Lit
module Zfilter = Lipsin_bloom.Zfilter
module Rng = Lipsin_util.Rng

let test_params_constant_k () =
  let p = Lit.constant_k ~m:248 ~d:8 ~k:5 in
  Alcotest.(check int) "m" 248 p.Lit.m;
  Alcotest.(check int) "d" 8 p.Lit.d;
  Array.iter (fun k -> Alcotest.(check int) "k" 5 k) p.Lit.k_for_table

let test_params_variable_k () =
  let p = Lit.paper_variable in
  Alcotest.(check (list int)) "paper distribution" [ 3; 3; 4; 4; 5; 5; 6; 6 ]
    (Array.to_list p.Lit.k_for_table)

let test_params_variable_wraps () =
  let p = Lit.variable_k ~m:64 ~d:5 ~ks:[| 2; 3 |] in
  Alcotest.(check (list int)) "wraps" [ 2; 3; 2; 3; 2 ]
    (Array.to_list p.Lit.k_for_table)

let test_params_validation () =
  Alcotest.check_raises "k > m" (Invalid_argument "Lit.params: k outside (0, m]")
    (fun () -> ignore (Lit.constant_k ~m:4 ~d:1 ~k:5));
  Alcotest.check_raises "d = 0" (Invalid_argument "Lit.params: d must be positive")
    (fun () -> ignore (Lit.constant_k ~m:4 ~d:0 ~k:2));
  Alcotest.check_raises "empty ks" (Invalid_argument "Lit.variable_k: empty k list")
    (fun () -> ignore (Lit.variable_k ~m:8 ~d:2 ~ks:[||]))

let test_generate_deterministic () =
  let a = Lit.generate Lit.default ~nonce:99L in
  let b = Lit.generate Lit.default ~nonce:99L in
  for i = 0 to 7 do
    Alcotest.(check bool) "same tags" true (Bitvec.equal (Lit.tag a i) (Lit.tag b i))
  done;
  Alcotest.(check bool) "equal identities" true (Lit.equal a b)

let test_generate_nonce_sensitivity () =
  let a = Lit.generate Lit.default ~nonce:1L in
  let b = Lit.generate Lit.default ~nonce:2L in
  Alcotest.(check bool) "different tags" false
    (Bitvec.equal (Lit.tag a 0) (Lit.tag b 0))

let test_tag_popcounts () =
  let p = Lit.paper_variable in
  let lit = Lit.generate p ~nonce:0xABCDL in
  Array.iteri
    (fun i k ->
      Alcotest.(check int)
        (Printf.sprintf "table %d has k=%d bits" i k)
        k
        (Bitvec.popcount (Lit.tag lit i)))
    p.Lit.k_for_table

let test_tags_differ_across_tables () =
  let lit = Lit.generate Lit.default ~nonce:7L in
  Alcotest.(check bool) "table 0 <> table 1" false
    (Bitvec.equal (Lit.tag lit 0) (Lit.tag lit 1))

let test_tag_bounds () =
  let lit = Lit.generate Lit.default ~nonce:7L in
  Alcotest.check_raises "table out of range"
    (Invalid_argument "Lit.tag: table index out of range") (fun () ->
      ignore (Lit.tag lit 8))

let test_link_id_is_table_zero () =
  let lit = Lit.generate Lit.default ~nonce:5L in
  Alcotest.(check bool) "link_id = tag 0" true
    (Bitvec.equal (Lit.link_id lit) (Lit.tag lit 0))

let test_fresh_distinct () =
  let rng = Rng.create 3L in
  let a = Lit.fresh Lit.default rng and b = Lit.fresh Lit.default rng in
  Alcotest.(check bool) "fresh identities differ" false (Lit.equal a b)

let test_zfilter_empty () =
  let z = Zfilter.create ~m:248 in
  Alcotest.(check int) "m" 248 (Zfilter.m z);
  Alcotest.(check (float 1e-9)) "fill 0" 0.0 (Zfilter.fill_factor z);
  Alcotest.(check (float 1e-9)) "fpa 0" 0.0 (Zfilter.fpa z ~k:5)

let test_zfilter_contains_added_tags () =
  let rng = Rng.create 5L in
  let lits = List.init 10 (fun _ -> Lit.fresh Lit.default rng) in
  let z = Zfilter.of_tags ~m:248 (List.map (fun l -> Lit.tag l 0) lits) in
  List.iter
    (fun l ->
      Alcotest.(check bool) "member matches" true
        (Zfilter.matches z ~lit:(Lit.tag l 0)))
    lits

let test_zfilter_nonmember_usually_misses () =
  let rng = Rng.create 7L in
  let members = List.init 10 (fun _ -> Lit.fresh Lit.default rng) in
  let z = Zfilter.of_tags ~m:248 (List.map (fun l -> Lit.tag l 0) members) in
  let misses = ref 0 in
  for _ = 1 to 100 do
    let probe = Lit.fresh Lit.default rng in
    if not (Zfilter.matches z ~lit:(Lit.tag probe 0)) then incr misses
  done;
  (* With ~50 bits set of 248 (rho~0.2), fpa ~ 0.0003: essentially all
     100 random probes must miss. *)
  Alcotest.(check bool) "nearly all miss" true (!misses >= 97)

let test_zfilter_fill_and_fpa () =
  let z = Zfilter.create ~m:100 in
  let v = Zfilter.to_bitvec z in
  for i = 0 to 49 do
    Bitvec.set v i
  done;
  Alcotest.(check (float 1e-9)) "fill 0.5" 0.5 (Zfilter.fill_factor z);
  Alcotest.(check (float 1e-9)) "fpa = rho^k" (0.5 ** 5.0) (Zfilter.fpa z ~k:5)

let test_zfilter_fill_limit () =
  let z = Zfilter.create ~m:10 in
  let v = Zfilter.to_bitvec z in
  for i = 0 to 7 do
    Bitvec.set v i
  done;
  Alcotest.(check bool) "0.8 > 0.7 limit" false (Zfilter.within_fill_limit z ~limit:0.7);
  Alcotest.(check bool) "0.8 <= 0.9 limit" true (Zfilter.within_fill_limit z ~limit:0.9)

let test_zfilter_copy_independent () =
  let z = Zfilter.create ~m:64 in
  let z2 = Zfilter.copy z in
  Bitvec.set (Zfilter.to_bitvec z2) 5;
  Alcotest.(check int) "original untouched" 0 (Zfilter.popcount z);
  Alcotest.(check int) "copy changed" 1 (Zfilter.popcount z2)

let test_zfilter_hex_roundtrip () =
  let rng = Rng.create 11L in
  let lits = List.init 5 (fun _ -> Lit.fresh Lit.default rng) in
  let z = Zfilter.of_tags ~m:248 (List.map (fun l -> Lit.tag l 3) lits) in
  let back = Zfilter.of_hex ~m:248 (Zfilter.to_hex z) in
  Alcotest.(check bool) "roundtrip" true (Zfilter.equal z back)

(* Properties. *)

let prop_member_always_matches =
  QCheck.Test.make ~name:"added LIT always matches (no false negatives)" ~count:300
    QCheck.(pair small_nat (int_range 1 40))
    (fun (seed, n) ->
      let rng = Rng.of_int seed in
      let lits = List.init n (fun _ -> Lit.fresh Lit.paper_variable rng) in
      let table = seed mod 8 in
      let z = Zfilter.of_tags ~m:248 (List.map (fun l -> Lit.tag l table) lits) in
      List.for_all (fun l -> Zfilter.matches z ~lit:(Lit.tag l table)) lits)

let prop_fill_monotone =
  QCheck.Test.make ~name:"fill factor grows monotonically" ~count:200
    QCheck.(pair small_nat (int_range 2 30))
    (fun (seed, n) ->
      let rng = Rng.of_int seed in
      let z = Zfilter.create ~m:248 in
      let ok = ref true in
      let prev = ref 0.0 in
      for _ = 1 to n do
        Zfilter.add z (Lit.tag (Lit.fresh Lit.default rng) 0);
        let fill = Zfilter.fill_factor z in
        if fill < !prev then ok := false;
        prev := fill
      done;
      !ok)

let prop_fpa_in_unit_interval =
  QCheck.Test.make ~name:"fpa within [0,1]" ~count:200
    QCheck.(pair small_nat (int_range 1 60))
    (fun (seed, n) ->
      let rng = Rng.of_int seed in
      let lits = List.init n (fun _ -> Lit.fresh Lit.default rng) in
      let z = Zfilter.of_tags ~m:248 (List.map (fun l -> Lit.tag l 0) lits) in
      let fpa = Zfilter.fpa z ~k:5 in
      fpa >= 0.0 && fpa <= 1.0)

let () =
  Alcotest.run "bloom"
    [
      ( "lit",
        [
          Alcotest.test_case "constant k params" `Quick test_params_constant_k;
          Alcotest.test_case "variable k params" `Quick test_params_variable_k;
          Alcotest.test_case "variable wraps" `Quick test_params_variable_wraps;
          Alcotest.test_case "validation" `Quick test_params_validation;
          Alcotest.test_case "deterministic" `Quick test_generate_deterministic;
          Alcotest.test_case "nonce sensitivity" `Quick test_generate_nonce_sensitivity;
          Alcotest.test_case "tag popcounts" `Quick test_tag_popcounts;
          Alcotest.test_case "tables differ" `Quick test_tags_differ_across_tables;
          Alcotest.test_case "tag bounds" `Quick test_tag_bounds;
          Alcotest.test_case "link id" `Quick test_link_id_is_table_zero;
          Alcotest.test_case "fresh distinct" `Quick test_fresh_distinct;
        ] );
      ( "zfilter",
        [
          Alcotest.test_case "empty" `Quick test_zfilter_empty;
          Alcotest.test_case "contains added" `Quick test_zfilter_contains_added_tags;
          Alcotest.test_case "nonmember misses" `Quick
            test_zfilter_nonmember_usually_misses;
          Alcotest.test_case "fill and fpa" `Quick test_zfilter_fill_and_fpa;
          Alcotest.test_case "fill limit" `Quick test_zfilter_fill_limit;
          Alcotest.test_case "copy" `Quick test_zfilter_copy_independent;
          Alcotest.test_case "hex roundtrip" `Quick test_zfilter_hex_roundtrip;
          QCheck_alcotest.to_alcotest prop_member_always_matches;
          QCheck_alcotest.to_alcotest prop_fill_monotone;
          QCheck_alcotest.to_alcotest prop_fpa_in_unit_interval;
        ] );
    ]
