(* Tests for Lipsin_workload.Scenario. *)

module Scenario = Lipsin_workload.Scenario
module Lit = Lipsin_bloom.Lit
module Graph = Lipsin_topology.Graph
module Generator = Lipsin_topology.Generator
module Assignment = Lipsin_core.Assignment
module Rng = Lipsin_util.Rng

let sample_graph () =
  Generator.pref_attach ~rng:(Rng.of_int 19) ~nodes:50 ~edges:85 ~max_degree:12 ()

let test_sample_topic_bounds () =
  let g = sample_graph () in
  let rng = Rng.of_int 1 in
  for _ = 1 to 200 do
    let load = Scenario.sample_topic Scenario.default rng g in
    Alcotest.(check bool) "rank in population" true
      (load.Scenario.rank >= 1 && load.Scenario.rank <= Scenario.default.Scenario.topics);
    Alcotest.(check bool) "publisher valid" true
      (load.Scenario.publisher >= 0 && load.Scenario.publisher < 50);
    Alcotest.(check bool) "at least one subscriber" true
      (load.Scenario.subscribers <> []);
    Alcotest.(check bool) "subscribers distinct from publisher" true
      (not (List.mem load.Scenario.publisher load.Scenario.subscribers));
    let uniq = List.sort_uniq compare load.Scenario.subscribers in
    Alcotest.(check int) "subscribers distinct" (List.length uniq)
      (List.length load.Scenario.subscribers)
  done

let test_sample_respects_max_subscribers () =
  let g = sample_graph () in
  let config = { Scenario.default with Scenario.max_subscribers = 5 } in
  let loads = Scenario.sample config g ~n:100 in
  Array.iter
    (fun load ->
      Alcotest.(check bool) "at most 5 subscribers" true
        (List.length load.Scenario.subscribers <= 5))
    loads

let test_sample_deterministic () =
  let g = sample_graph () in
  let a = Scenario.sample Scenario.default g ~n:20 in
  let b = Scenario.sample Scenario.default g ~n:20 in
  Array.iteri
    (fun i load ->
      Alcotest.(check bool) "same load" true
        (load.Scenario.publisher = b.(i).Scenario.publisher
        && load.Scenario.subscribers = b.(i).Scenario.subscribers))
    a

let test_popular_ranks_have_more_subscribers () =
  let g = sample_graph () in
  let config = { Scenario.default with Scenario.topics = 100 } in
  let loads = Scenario.sample config g ~n:400 in
  let low_rank = ref 0 and low_n = ref 0 in
  let high_rank = ref 0 and high_n = ref 0 in
  Array.iter
    (fun load ->
      if load.Scenario.rank <= 3 then begin
        low_rank := !low_rank + List.length load.Scenario.subscribers;
        incr low_n
      end
      else if load.Scenario.rank > 50 then begin
        high_rank := !high_rank + List.length load.Scenario.subscribers;
        incr high_n
      end)
    loads;
  if !low_n > 0 && !high_n > 0 then
    Alcotest.(check bool) "popular topics have larger audiences" true
      (float_of_int !low_rank /. float_of_int !low_n
      > float_of_int !high_rank /. float_of_int !high_n)

let test_evaluate_accounting () =
  let g = sample_graph () in
  let assignment = Assignment.make Lit.default (Rng.of_int 23) g in
  let agg = Scenario.evaluate Scenario.default assignment ~n:200 () in
  Alcotest.(check int) "sampled" 200 agg.Scenario.sampled;
  Alcotest.(check int) "partition adds up" 200
    (agg.Scenario.stateless_ok + agg.Scenario.needs_state);
  Alcotest.(check bool) "most topics stateless" true
    (agg.Scenario.stateless_ok > 150);
  Alcotest.(check bool) "efficiency sane" true
    (agg.Scenario.mean_efficiency > 0.5 && agg.Scenario.mean_efficiency <= 1.0);
  Alcotest.(check bool) "ssm pays state" true (agg.Scenario.ssm_state_entries > 0);
  Alcotest.(check bool) "mean subscribers positive" true
    (agg.Scenario.mean_subscribers > 0.0)

let () =
  Alcotest.run "workload"
    [
      ( "scenario",
        [
          Alcotest.test_case "topic bounds" `Quick test_sample_topic_bounds;
          Alcotest.test_case "max subscribers" `Quick test_sample_respects_max_subscribers;
          Alcotest.test_case "deterministic" `Quick test_sample_deterministic;
          Alcotest.test_case "popularity scaling" `Quick
            test_popular_ranks_have_more_subscribers;
          Alcotest.test_case "evaluate accounting" `Quick test_evaluate_accounting;
        ] );
    ]
