(* Tests for Lipsin_sim.Fluid (capacity/goodput model) and
   Lipsin_core.Rotation (epoch-based Link ID rotation). *)

module Fluid = Lipsin_sim.Fluid
module Rotation = Lipsin_core.Rotation
module Assignment = Lipsin_core.Assignment
module Candidate = Lipsin_core.Candidate
module Lit = Lipsin_bloom.Lit
module Zfilter = Lipsin_bloom.Zfilter
module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module Generator = Lipsin_topology.Generator
module Rng = Lipsin_util.Rng

let line_graph n =
  let g = Graph.create ~nodes:n in
  for v = 0 to n - 2 do
    Graph.add_edge g v (v + 1)
  done;
  g

let path_of g root dst = Spt.delivery_tree g ~root ~subscribers:[ dst ]

let test_fluid_underload_delivers_everything () =
  let g = line_graph 4 in
  let t = Fluid.create g ~capacity:10.0 in
  let path = path_of g 0 3 in
  Fluid.add_flow t { Fluid.rate = 5.0; links = path; paths = [ (3, path) ] };
  Alcotest.(check (float 1e-9)) "utilization 0.5" 0.5
    (Fluid.utilization t (List.hd path));
  Alcotest.(check (float 1e-9)) "full goodput" 5.0 (Fluid.total_goodput t);
  Alcotest.(check (float 1e-9)) "ratio 1" 1.0 (Fluid.delivery_ratio t)

let test_fluid_oversubscription_throttles () =
  let g = line_graph 3 in
  let t = Fluid.create g ~capacity:10.0 in
  let path = path_of g 0 2 in
  (* Two flows of 10 each over the same 2-link path: each link at 2x
     capacity; each flow throttled by (1/2) per link. *)
  let flow = { Fluid.rate = 10.0; links = path; paths = [ (2, path) ] } in
  Fluid.add_flow t flow;
  Fluid.add_flow t flow;
  Alcotest.(check (float 1e-9)) "utilization 2.0" 2.0
    (Fluid.utilization t (List.hd path));
  Alcotest.(check (float 1e-9)) "per-flow goodput 2.5" 2.5 (Fluid.goodput t flow 2);
  Alcotest.(check (float 1e-9)) "ratio 0.25" 0.25 (Fluid.delivery_ratio t)

let test_fluid_false_positive_links_consume_capacity () =
  (*   0 - 1 - 2   with a stub 1 - 3.  A flow to 2 that also falsely
     forwards onto 1->3 loads that link without any goodput there. *)
  let g = Graph.create ~nodes:4 in
  List.iter (fun (u, v) -> Graph.add_edge g u v) [ (0, 1); (1, 2); (1, 3) ];
  let t = Fluid.create g ~capacity:10.0 in
  let path = path_of g 0 2 in
  let fp_link = Option.get (Graph.find_link g ~src:1 ~dst:3) in
  Fluid.add_flow t
    { Fluid.rate = 4.0; links = fp_link :: path; paths = [ (2, path) ] };
  Alcotest.(check (float 1e-9)) "wasted load on the fp link" 0.4
    (Fluid.utilization t fp_link);
  Alcotest.(check (float 1e-9)) "goodput unaffected while under capacity" 4.0
    (Fluid.total_goodput t)

let test_fluid_multicast_beats_unicast_at_saturation () =
  (* Shared 0->1 trunk, then fan-out to 2 and 3.  Multicast loads the
     trunk once; two unicasts load it twice and saturate earlier. *)
  let g = Graph.create ~nodes:4 in
  List.iter (fun (u, v) -> Graph.add_edge g u v) [ (0, 1); (1, 2); (1, 3) ];
  let p2 = path_of g 0 2 and p3 = path_of g 0 3 in
  let trunk = List.hd p2 in
  let rate = 8.0 in
  (* multicast: trunk once *)
  let mcast = Fluid.create g ~capacity:10.0 in
  let tree = Spt.delivery_tree g ~root:0 ~subscribers:[ 2; 3 ] in
  Fluid.add_flow mcast { Fluid.rate; links = tree; paths = [ (2, p2); (3, p3) ] };
  (* unicast: trunk twice *)
  let ucast = Fluid.create g ~capacity:10.0 in
  Fluid.add_flow ucast { Fluid.rate; links = p2 @ p3; paths = [ (2, p2); (3, p3) ] };
  Alcotest.(check (float 1e-9)) "multicast trunk fine" 0.8
    (Fluid.utilization mcast trunk);
  Alcotest.(check (float 1e-9)) "unicast trunk saturated" 1.6
    (Fluid.utilization ucast trunk);
  Alcotest.(check bool) "multicast delivers more" true
    (Fluid.total_goodput mcast > Fluid.total_goodput ucast)

let test_fluid_rejects_bad_capacity () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Fluid.create: capacity must be positive") (fun () ->
      ignore (Fluid.create (line_graph 2) ~capacity:0.0))

let test_fluid_goodput_requires_subscriber () =
  let g = line_graph 3 in
  let t = Fluid.create g ~capacity:1.0 in
  let path = path_of g 0 2 in
  let flow = { Fluid.rate = 1.0; links = path; paths = [ (2, path) ] } in
  Fluid.add_flow t flow;
  Alcotest.check_raises "not a subscriber"
    (Invalid_argument "Fluid.goodput: node is not a subscriber of the flow")
    (fun () -> ignore (Fluid.goodput t flow 1))

(* ---- Rotation ---- *)

let rotation_setup () =
  let g =
    Generator.pref_attach ~rng:(Rng.of_int 151) ~nodes:25 ~edges:40 ~max_degree:8 ()
  in
  (g, Rotation.make ~secret:0x5EC0DEL Lit.default (Rng.of_int 157) g)

let test_rotation_deterministic_per_epoch () =
  let g, rot = rotation_setup () in
  let a1 = Rotation.assignment_at rot ~epoch:3 in
  let a2 = Rotation.assignment_at rot ~epoch:3 in
  let l = Graph.link g 0 in
  Alcotest.(check int64) "same nonce, same epoch"
    (Lit.nonce (Assignment.lit a1 l))
    (Lit.nonce (Assignment.lit a2 l))

let test_rotation_epochs_differ () =
  let g, rot = rotation_setup () in
  let a0 = Rotation.assignment_at rot ~epoch:0 in
  let a1 = Rotation.assignment_at rot ~epoch:1 in
  let changed = ref 0 in
  Graph.iter_links g (fun l ->
      if
        not
          (Lipsin_bitvec.Bitvec.equal
             (Assignment.tag a0 l ~table:0)
             (Assignment.tag a1 l ~table:0))
      then incr changed);
  Alcotest.(check int) "every link rotated" (Graph.link_count g) !changed

let test_rotation_expires_old_zfilters () =
  let g, rot = rotation_setup () in
  let a0 = Rotation.assignment_at rot ~epoch:0 in
  let a1 = Rotation.assignment_at rot ~epoch:1 in
  let tree = Spt.delivery_tree g ~root:0 ~subscribers:[ 10; 20 ] in
  let old_filter = (Candidate.build_one a0 ~tree ~table:0).Candidate.zfilter in
  (* Under the new epoch's tags, the stale filter matches (almost)
     nothing on the tree. *)
  let still_matching =
    List.length
      (List.filter
         (fun l -> Zfilter.matches old_filter ~lit:(Assignment.tag a1 l ~table:0))
         tree)
  in
  Alcotest.(check int) "stale filter dead" 0 still_matching;
  (* And the fresh filter works. *)
  let fresh = (Candidate.build_one a1 ~tree ~table:0).Candidate.zfilter in
  Alcotest.(check bool) "fresh filter live" true
    (List.for_all
       (fun l -> Zfilter.matches fresh ~lit:(Assignment.tag a1 l ~table:0))
       tree)

let test_rotation_secret_matters () =
  let g = line_graph 5 in
  let rot_a = Rotation.make ~secret:1L Lit.default (Rng.of_int 5) g in
  let rot_b = Rotation.make ~secret:2L Lit.default (Rng.of_int 5) g in
  (* Same base nonces (same rng seed); different secrets => different
     epoch keys. *)
  Alcotest.(check bool) "secrets diversify" true
    (Rotation.epoch_nonce rot_a ~link_index:0 ~epoch:0
    <> Rotation.epoch_nonce rot_b ~link_index:0 ~epoch:0)

let test_rotation_validates () =
  let _, rot = rotation_setup () in
  Alcotest.check_raises "negative epoch" (Invalid_argument "Rotation: negative epoch")
    (fun () -> ignore (Rotation.assignment_at rot ~epoch:(-1)))

let () =
  Alcotest.run "fluid-rotation"
    [
      ( "fluid",
        [
          Alcotest.test_case "underload" `Quick test_fluid_underload_delivers_everything;
          Alcotest.test_case "oversubscription" `Quick
            test_fluid_oversubscription_throttles;
          Alcotest.test_case "fp links consume capacity" `Quick
            test_fluid_false_positive_links_consume_capacity;
          Alcotest.test_case "multicast vs unicast saturation" `Quick
            test_fluid_multicast_beats_unicast_at_saturation;
          Alcotest.test_case "bad capacity" `Quick test_fluid_rejects_bad_capacity;
          Alcotest.test_case "goodput validation" `Quick
            test_fluid_goodput_requires_subscriber;
        ] );
      ( "rotation",
        [
          Alcotest.test_case "deterministic" `Quick test_rotation_deterministic_per_epoch;
          Alcotest.test_case "epochs differ" `Quick test_rotation_epochs_differ;
          Alcotest.test_case "expires old filters" `Quick
            test_rotation_expires_old_zfilters;
          Alcotest.test_case "secret matters" `Quick test_rotation_secret_matters;
          Alcotest.test_case "validates" `Quick test_rotation_validates;
        ] );
    ]
