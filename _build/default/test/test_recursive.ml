(* Tests for Lipsin_topology.Weights (Dijkstra trees),
   Lipsin_recursive.Overlay (LIPSIN over LIPSIN) and
   Lipsin_pubsub.Scope (hierarchical rendezvous scopes). *)

module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module Weights = Lipsin_topology.Weights
module Generator = Lipsin_topology.Generator
module As_presets = Lipsin_topology.As_presets
module Assignment = Lipsin_core.Assignment
module Lit = Lipsin_bloom.Lit
module Overlay = Lipsin_recursive.Overlay
module Scope = Lipsin_pubsub.Scope
module Topic = Lipsin_pubsub.Topic
module Rendezvous = Lipsin_pubsub.Rendezvous
module System = Lipsin_pubsub.System
module Rng = Lipsin_util.Rng

(* ---- Weights ---- *)

(*      0 --1-- 1 --1-- 2
        \_______10_____/      triangle: heavy direct edge 0-2 *)
let weighted_triangle () =
  let g = Graph.create ~nodes:3 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 2;
  Graph.add_edge g 0 2;
  let w =
    Weights.of_function g (fun l ->
        let pair = (min l.Graph.src l.Graph.dst, max l.Graph.src l.Graph.dst) in
        if pair = (0, 2) then 10.0 else 1.0)
  in
  (g, w)

let test_dijkstra_prefers_light_path () =
  let _, w = weighted_triangle () in
  let dist, parents = Weights.dijkstra w ~root:0 in
  Alcotest.(check (float 1e-9)) "0->2 via 1 costs 2" 2.0 dist.(2);
  Alcotest.(check int) "2's parent is 1, not 0" 1 parents.(2);
  let path = Weights.path_to w ~parents 2 in
  Alcotest.(check int) "two hops" 2 (List.length path)

let test_unweighted_bfs_differs () =
  (* The same query unweighted takes the direct heavy edge: weights
     genuinely change trees. *)
  let g, _ = weighted_triangle () in
  let tree = Spt.delivery_tree g ~root:0 ~subscribers:[ 2 ] in
  Alcotest.(check int) "BFS takes the one-hop edge" 1 (List.length tree)

let test_weighted_delivery_tree_dedups () =
  let g, w = weighted_triangle () in
  ignore g;
  let tree = Weights.delivery_tree w ~root:0 ~subscribers:[ 1; 2 ] in
  Alcotest.(check int) "shared prefix deduplicated" 2 (List.length tree);
  Alcotest.(check (float 1e-9)) "tree cost" 2.0 (Weights.tree_cost w tree)

let test_weights_symmetric_random () =
  let g =
    Generator.pref_attach ~rng:(Rng.of_int 331) ~nodes:20 ~edges:32 ~max_degree:8 ()
  in
  let w = Weights.random g (Rng.of_int 337) ~min:1.0 ~max:10.0 in
  Graph.iter_links g (fun l ->
      let r = Graph.reverse_link g l in
      Alcotest.(check (float 1e-9)) "symmetric" (Weights.weight w l)
        (Weights.weight w r);
      Alcotest.(check bool) "in range" true
        (Weights.weight w l >= 1.0 && Weights.weight w l <= 10.0))

let test_weights_validate () =
  let g = Graph.create ~nodes:2 in
  Graph.add_edge g 0 1;
  Alcotest.check_raises "zero uniform" (Invalid_argument "Weights: weights must be positive")
    (fun () -> ignore (Weights.uniform g 0.0));
  Alcotest.check_raises "bad range" (Invalid_argument "Weights.random: need 0 < min <= max")
    (fun () -> ignore (Weights.random g (Rng.of_int 1) ~min:5.0 ~max:1.0))

let prop_dijkstra_matches_bfs_on_uniform =
  QCheck.Test.make ~name:"uniform Dijkstra distances = BFS hop counts" ~count:50
    QCheck.(int_range 1 500)
    (fun seed ->
      let g =
        Generator.waxman ~rng:(Rng.of_int seed) ~nodes:18 ~edges:30 ~max_degree:8 ()
      in
      let w = Weights.uniform g 1.0 in
      let dist, _ = Weights.dijkstra w ~root:0 in
      let hops = Spt.distances g ~root:0 in
      Array.for_all Fun.id
        (Array.mapi
           (fun v d ->
             if hops.(v) = max_int then d = infinity
             else Float.abs (d -. float_of_int hops.(v)) < 1e-9)
           dist))

(* ---- Overlay ---- *)

let overlay_fixture () =
  let underlay_graph = As_presets.ta2 () in
  let underlay = Assignment.make Lit.default (Rng.of_int 347) underlay_graph in
  (* A 5-node overlay ring over spread-out attach points. *)
  let attach = [| 0; 13; 26; 39; 52 |] in
  let edges = [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ] in
  match Overlay.create ~underlay ~attach ~edges () with
  | Ok o -> o
  | Error e -> Alcotest.fail e

let test_overlay_create_validates () =
  let underlay_graph = As_presets.ta2 () in
  let underlay = Assignment.make Lit.default (Rng.of_int 349) underlay_graph in
  (match Overlay.create ~underlay ~attach:[| 0 |] ~edges:[] () with
  | Error msg -> Alcotest.(check string) "too small" "overlay needs at least two nodes" msg
  | Ok _ -> Alcotest.fail "one-node overlay accepted");
  match Overlay.create ~underlay ~attach:[| 0; 9999 |] ~edges:[ (0, 1) ] () with
  | Error msg ->
    Alcotest.(check string) "bad attach" "attach point outside the underlay" msg
  | Ok _ -> Alcotest.fail "bad attach accepted"

let test_overlay_structure () =
  let o = overlay_fixture () in
  Alcotest.(check int) "5 overlay nodes" 5 (Graph.node_count (Overlay.overlay_graph o));
  Alcotest.(check int) "ring edges" 5 (Graph.edge_count (Overlay.overlay_graph o));
  Alcotest.(check int) "attach point" 26 (Overlay.attach_point o 2)

let test_overlay_publish_delivers () =
  let o = overlay_fixture () in
  match Overlay.publish o ~src:0 ~subscribers:[ 2; 3 ] with
  | Error e -> Alcotest.fail e
  | Ok d ->
    Alcotest.(check (list int)) "both overlay subscribers" [ 2; 3 ]
      (List.sort compare d.Overlay.delivered);
    Alcotest.(check bool) "underlay cost counted" true (d.Overlay.underlay_traversals > 0);
    Alcotest.(check bool) "overlay hops counted" true
      (d.Overlay.overlay_traversals >= 2);
    (* Stacking a layer can only cost extra underlay hops. *)
    Alcotest.(check bool) "stretch >= 1" true (d.Overlay.stretch >= 1.0)

let test_overlay_no_subscribers () =
  let o = overlay_fixture () in
  match Overlay.publish o ~src:1 ~subscribers:[ 1 ] with
  | Error msg -> Alcotest.(check string) "self only" "no overlay subscribers" msg
  | Ok _ -> Alcotest.fail "must require subscribers"

let test_overlay_independent_assignments () =
  (* The overlay's LITs are one layer up: an overlay zFilter must not
     accidentally be built from underlay tags. *)
  let o = overlay_fixture () in
  let overlay_asg = Overlay.assignment o in
  Alcotest.(check int) "overlay assignment sized to overlay" 10
    (Assignment.link_count overlay_asg)

(* ---- Scope ---- *)

let test_scope_parse_roundtrip () =
  Alcotest.(check (list string)) "parse" [ "sports"; "football" ]
    (Scope.parse "/sports/football");
  Alcotest.(check string) "to_string" "/sports/football"
    (Scope.to_string [ "sports"; "football" ]);
  Alcotest.check_raises "empty" (Invalid_argument "Scope.parse: empty string")
    (fun () -> ignore (Scope.parse ""))

let test_scope_topic_matches_flat_naming () =
  (* Scope-derived ids agree with Topic.of_string on the rendered
     path, so scoped and flat publishers interoperate. *)
  let t1 = Scope.topic_of_path [ "a"; "b" ] in
  let t2 = Topic.of_string "/a/b" in
  Alcotest.(check bool) "same id" true (Topic.equal t1 t2)

let test_scope_subscription_covers_descendants () =
  let s = Scope.create () in
  ignore (Scope.declare s [ "sports"; "football"; "scores" ]);
  ignore (Scope.declare s [ "sports"; "tennis" ]);
  ignore (Scope.declare s [ "news"; "world" ]);
  Scope.subscribe_scope s [ "sports" ] ~subscriber:7;
  Scope.subscribe_scope s [ "sports"; "tennis" ] ~subscriber:9;
  Alcotest.(check (list int)) "deep topic covered by ancestor" [ 7 ]
    (Scope.subscribers_of s [ "sports"; "football"; "scores" ]);
  Alcotest.(check (list int)) "tennis covered by both" [ 7; 9 ]
    (Scope.subscribers_of s [ "sports"; "tennis" ]);
  Alcotest.(check (list int)) "news uncovered" []
    (Scope.subscribers_of s [ "news"; "world" ]);
  Scope.unsubscribe_scope s [ "sports" ] ~subscriber:7;
  Alcotest.(check (list int)) "unsubscribed" [ 9 ]
    (Scope.subscribers_of s [ "sports"; "tennis" ])

let test_scope_covers_future_topics () =
  let s = Scope.create () in
  Scope.subscribe_scope s [ "logs" ] ~subscriber:3;
  ignore (Scope.declare s [ "logs"; "node42"; "errors" ]);
  Alcotest.(check (list int)) "later topic covered" [ 3 ]
    (Scope.subscribers_of s [ "logs"; "node42"; "errors" ])

let test_scope_topics_under () =
  let s = Scope.create () in
  ignore (Scope.declare s [ "a"; "x" ]);
  ignore (Scope.declare s [ "a"; "y"; "z" ]);
  ignore (Scope.declare s [ "b" ]);
  Alcotest.(check int) "all topics" 3 (List.length (Scope.topics_under s []));
  Alcotest.(check int) "under /a" 2 (List.length (Scope.topics_under s [ "a" ]))

let test_scope_sync_rendezvous_end_to_end () =
  let g =
    Generator.pref_attach ~rng:(Rng.of_int 353) ~nodes:25 ~edges:40 ~max_degree:8 ()
  in
  let sys = System.create ~seed:5 g in
  let s = Scope.create () in
  let topic = Scope.declare s [ "metrics"; "cpu" ] in
  Scope.subscribe_scope s [ "metrics" ] ~subscriber:11;
  Scope.subscribe_scope s [ "metrics" ] ~subscriber:19;
  Scope.sync_rendezvous s (System.rendezvous sys);
  System.advertise sys topic ~publisher:0;
  match System.publish sys topic ~publisher:0 ~payload:"95%" with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check (list int)) "scope subscribers got the publication" [ 11; 19 ]
      (List.sort compare r.System.delivered_to)

let () =
  Alcotest.run "recursive-weights-scope"
    [
      ( "weights",
        [
          Alcotest.test_case "dijkstra light path" `Quick test_dijkstra_prefers_light_path;
          Alcotest.test_case "bfs differs" `Quick test_unweighted_bfs_differs;
          Alcotest.test_case "weighted tree" `Quick test_weighted_delivery_tree_dedups;
          Alcotest.test_case "symmetric random" `Quick test_weights_symmetric_random;
          Alcotest.test_case "validate" `Quick test_weights_validate;
          QCheck_alcotest.to_alcotest prop_dijkstra_matches_bfs_on_uniform;
        ] );
      ( "overlay",
        [
          Alcotest.test_case "create validates" `Quick test_overlay_create_validates;
          Alcotest.test_case "structure" `Quick test_overlay_structure;
          Alcotest.test_case "publish delivers" `Quick test_overlay_publish_delivers;
          Alcotest.test_case "no subscribers" `Quick test_overlay_no_subscribers;
          Alcotest.test_case "independent assignment" `Quick
            test_overlay_independent_assignments;
        ] );
      ( "scope",
        [
          Alcotest.test_case "parse roundtrip" `Quick test_scope_parse_roundtrip;
          Alcotest.test_case "flat naming interop" `Quick
            test_scope_topic_matches_flat_naming;
          Alcotest.test_case "covers descendants" `Quick
            test_scope_subscription_covers_descendants;
          Alcotest.test_case "covers future topics" `Quick test_scope_covers_future_topics;
          Alcotest.test_case "topics under" `Quick test_scope_topics_under;
          Alcotest.test_case "sync rendezvous e2e" `Quick
            test_scope_sync_rendezvous_end_to_end;
        ] );
    ]
