(* Tests for Lipsin_security.Attacks. *)

module Attacks = Lipsin_security.Attacks
module Lit = Lipsin_bloom.Lit
module Graph = Lipsin_topology.Graph
module Generator = Lipsin_topology.Generator
module Assignment = Lipsin_core.Assignment
module Net = Lipsin_sim.Net
module Rng = Lipsin_util.Rng

let setup () =
  let g =
    Generator.pref_attach ~rng:(Rng.of_int 29) ~nodes:40 ~edges:70 ~max_degree:12 ()
  in
  let asg = Assignment.make Lit.default (Rng.of_int 31) g in
  (g, asg, Net.make asg)

let hub g =
  Graph.fold_nodes g ~init:0 ~f:(fun best v ->
      if Graph.out_degree g v > Graph.out_degree g best then v else best)

let test_contamination_full_filter_floods_but_dropped () =
  let g, _, net = setup () in
  let node = hub g in
  let o = Attacks.contamination net ~node ~fill:1.0 ~rng:(Rng.of_int 1) in
  Alcotest.(check int) "all-ones matches every port" o.Attacks.total_links
    o.Attacks.links_matched;
  Alcotest.(check bool) "but the fill limit drops it" true o.Attacks.dropped_by_limit

let test_contamination_low_fill_passes_quietly () =
  let g, _, net = setup () in
  let node = hub g in
  let o = Attacks.contamination net ~node ~fill:0.3 ~rng:(Rng.of_int 2) in
  Alcotest.(check bool) "under the limit, not dropped" false o.Attacks.dropped_by_limit;
  (* rho^k at 0.3 is 0.24%: flooding is statistically negligible. *)
  Alcotest.(check bool) "matches almost nothing" true
    (o.Attacks.links_matched <= 1)

let test_random_probe_tracks_rho_k () =
  let _, asg, _ = setup () in
  List.iter
    (fun fill ->
      let measured =
        Attacks.random_probe_match_rate asg ~fill ~trials:30 ~rng:(Rng.of_int 3)
      in
      let predicted = fill ** 5.0 in
      Alcotest.(check bool)
        (Printf.sprintf "rho=%.1f within 2x of prediction" fill)
        true
        (measured <= (2.0 *. predicted) +. 0.002))
    [ 0.3; 0.5; 0.7 ]

let test_lit_learning_converges () =
  let g, asg, _ = setup () in
  let uplink = List.hd (Graph.out_links g (hub g)) in
  let o32 =
    Attacks.lit_learning asg ~uplink ~table:0 ~observations:32 ~rng:(Rng.of_int 4)
  in
  Alcotest.(check bool) "32 observations recover the LIT" true
    o32.Attacks.inferred_exactly;
  Alcotest.(check int) "no surplus" 0 o32.Attacks.surplus_bits

let test_lit_learning_single_observation_noisy () =
  let g, asg, _ = setup () in
  let uplink = List.hd (Graph.out_links g (hub g)) in
  let o1 =
    Attacks.lit_learning asg ~uplink ~table:0 ~observations:1 ~rng:(Rng.of_int 5)
  in
  (* One observation is a whole zFilter: far more bits than the LIT. *)
  Alcotest.(check bool) "single observation insufficient" false
    o1.Attacks.inferred_exactly;
  Alcotest.(check bool) "surplus bits present" true (o1.Attacks.surplus_bits > 0)

let test_lit_learning_rejects_zero_observations () =
  let g, asg, _ = setup () in
  let uplink = List.hd (Graph.out_links g 0) in
  Alcotest.check_raises "needs observations"
    (Invalid_argument "Attacks.lit_learning: need observations") (fun () ->
      ignore
        (Attacks.lit_learning asg ~uplink ~table:0 ~observations:0
           ~rng:(Rng.of_int 1)))

let test_replay_dies_after_rekey () =
  let g, asg, _ = setup () in
  let tree = Lipsin_topology.Spt.delivery_tree g ~root:0 ~subscribers:[ 10; 20 ] in
  let stolen =
    (Lipsin_core.Candidate.build_one asg ~tree ~table:0).Lipsin_core.Candidate.zfilter
  in
  Alcotest.(check (float 1e-9)) "full reach at capture time" 1.0
    (Attacks.replay_reach asg ~zfilter:stolen ~tree);
  let rekeyed = Lipsin_core.Assignment.rekey asg (Rng.of_int 99) in
  Alcotest.(check (float 1e-9)) "zero reach after rekey" 0.0
    (Attacks.replay_reach rekeyed ~zfilter:stolen ~tree)

let test_rekey_defeats_learning () =
  let g, asg, _ = setup () in
  let uplink = List.hd (Graph.out_links g (hub g)) in
  Alcotest.(check bool) "rekeying invalidates stolen tag" true
    (Attacks.rekey_defeats_learning asg ~uplink ~table:0 ~rng:(Rng.of_int 6))

let () =
  Alcotest.run "security"
    [
      ( "attacks",
        [
          Alcotest.test_case "contamination full filter" `Quick
            test_contamination_full_filter_floods_but_dropped;
          Alcotest.test_case "contamination low fill" `Quick
            test_contamination_low_fill_passes_quietly;
          Alcotest.test_case "random probe ~ rho^k" `Quick test_random_probe_tracks_rho_k;
          Alcotest.test_case "learning converges" `Quick test_lit_learning_converges;
          Alcotest.test_case "single observation noisy" `Quick
            test_lit_learning_single_observation_noisy;
          Alcotest.test_case "rejects zero observations" `Quick
            test_lit_learning_rejects_zero_observations;
          Alcotest.test_case "replay dies after rekey" `Quick
            test_replay_dies_after_rekey;
          Alcotest.test_case "rekey defence" `Quick test_rekey_defeats_learning;
        ] );
    ]
