(* Inter-domain pub/sub (Sec. 5): five provider domains in a partial
   mesh; a publication fans out over inter-domain Link IDs (IdLIds),
   swapping intra-domain zFilters at each boundary.

     dune exec examples/interdomain_demo.exe *)

module Rng = Lipsin_util.Rng
module Graph = Lipsin_topology.Graph
module Generator = Lipsin_topology.Generator
module Internet = Lipsin_interdomain.Internet

let () =
  (* Domain-level topology: 0 is a tier-1, 1-2 regionals, 3-4 edges. *)
  let domain_graph = Graph.create ~nodes:5 in
  List.iter
    (fun (u, v) -> Graph.add_edge domain_graph u v)
    [ (0, 1); (0, 2); (1, 2); (1, 3); (2, 4) ];
  let rng = Rng.of_int 12 in
  let intra =
    Array.init 5 (fun i ->
        Generator.pref_attach ~rng:(Rng.split rng) ~nodes:(12 + (4 * i))
          ~edges:(18 + (6 * i)) ~max_degree:7 ())
  in
  let net = Internet.create ~domain_graph ~intra () in
  Array.iteri
    (fun i g ->
      Printf.printf "domain %d: %d routers, %d links\n" i (Graph.node_count g)
        (Graph.edge_count g))
    intra;

  let topic = 4242L in
  let subs =
    [ { Internet.domain = 1; node = 3 }; { Internet.domain = 3; node = 10 };
      { Internet.domain = 4; node = 7 }; { Internet.domain = 4; node = 2 } ]
  in
  List.iter (Internet.subscribe net ~topic) subs;
  let publisher = { Internet.domain = 0; node = 1 } in

  (match Internet.interdomain_fill net ~topic ~publisher with
  | Some fill -> Printf.printf "\ninter-domain zFilter fill: %.3f\n" fill
  | None -> ());

  match Internet.publish net ~topic ~publisher with
  | Error e -> prerr_endline e
  | Ok d ->
    Printf.printf "delivered to %d/%d subscribers\n"
      (List.length d.Internet.delivered)
      (List.length subs);
    Printf.printf "domains visited (in order): %s\n"
      (String.concat " -> " (List.map string_of_int d.Internet.domains_visited));
    Printf.printf "boundary crossings: %d, intra-domain traversals: %d\n"
      d.Internet.inter_traversals d.Internet.intra_traversals;
    Printf.printf "false-positive domain entries: %d\n" d.Internet.false_domain_entries;
    List.iter
      (fun a ->
        Printf.printf "  reached domain %d node %d\n" a.Internet.domain a.Internet.node)
      d.Internet.delivered
