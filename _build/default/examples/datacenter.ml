(* Data-center multicast (Sec. 1, 4.3, 8: "a potential choice for
   data-center applications"): a k=4 fat-tree with many small multicast
   groups, the workload Dr. Multicast motivates — compare zFilter
   delivery (zero group state) against IP multicast state and repeated
   unicast bandwidth.

     dune exec examples/datacenter.exe *)

module Rng = Lipsin_util.Rng
module Lit = Lipsin_bloom.Lit
module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module Assignment = Lipsin_core.Assignment
module Candidate = Lipsin_core.Candidate
module Select = Lipsin_core.Select
module Net = Lipsin_sim.Net
module Run = Lipsin_sim.Run
module Ip_multicast = Lipsin_baseline.Ip_multicast
module Unicast = Lipsin_baseline.Unicast

module Generator = Lipsin_topology.Generator

let () =
  let ft = Generator.fat_tree ~k:4 in
  let g = ft.Generator.graph in
  let first_host = List.hd ft.Generator.hosts in
  let n_hosts = List.length ft.Generator.hosts in
  Printf.printf "fat-tree: %d switches + %d hosts, %d links\n"
    (List.length ft.Generator.switches)
    n_hosts (Graph.edge_count g);
  let assignment = Assignment.make Lit.default (Rng.of_int 8) g in
  let net = Net.make assignment in
  let ssm = Ip_multicast.create g in
  let rng = Rng.of_int 9 in
  let groups = 200 in
  let zf_traversals = ref 0 and uni_traversals = ref 0 and spt_links = ref 0 in
  let delivered = ref 0 and wanted = ref 0 in
  for gid = 1 to groups do
    (* Small groups, as in data centers: 2-6 receiving hosts. *)
    let size = 2 + Rng.int rng 5 in
    let picks = Rng.sample rng (size + 1) n_hosts in
    let source = first_host + picks.(0) in
    let receivers =
      Array.to_list (Array.map (fun h -> first_host + h) (Array.sub picks 1 size))
    in
    List.iter (fun r -> Ip_multicast.join ssm { Ip_multicast.source; group_id = gid } ~receiver:r) receivers;
    let tree = Spt.delivery_tree g ~root:source ~subscribers:receivers in
    spt_links := !spt_links + List.length tree;
    uni_traversals := !uni_traversals + Unicast.link_uses g ~root:source ~subscribers:receivers;
    match Select.select_fpa (Candidate.build assignment ~tree) with
    | None -> ()
    | Some c ->
      let o =
        Run.deliver net ~src:source ~table:c.Candidate.table
          ~zfilter:c.Candidate.zfilter ~tree
      in
      zf_traversals := !zf_traversals + o.Run.link_traversals;
      wanted := !wanted + size;
      delivered :=
        !delivered + List.length (List.filter (fun r -> o.Run.reached.(r)) receivers)
  done;
  Printf.printf "%d multicast groups published once each:\n" groups;
  Printf.printf "  receivers reached      : %d/%d\n" !delivered !wanted;
  Printf.printf "  SPT (ideal) traversals : %d\n" !spt_links;
  Printf.printf "  zFilter traversals     : %d (%.1f%% efficiency)\n" !zf_traversals
    (100.0 *. float_of_int !spt_links /. float_of_int !zf_traversals);
  Printf.printf "  unicast traversals     : %d (%.1f%% efficiency)\n" !uni_traversals
    (100.0 *. float_of_int !spt_links /. float_of_int !uni_traversals);
  Printf.printf "  IP multicast state     : %d (S,G) entries across switches\n"
    (Ip_multicast.total_state ssm);
  Printf.printf "  LIPSIN state           : 0 entries (all in-packet)\n"
