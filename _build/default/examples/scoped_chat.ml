(* Scoped pub/sub: a chat service built on hierarchical rendezvous
   scopes (the PSIRP-style namespace LIPSIN plugs into).  Users join
   rooms (topics) or whole floors (scopes covering every room under
   them, present and future).

     dune exec examples/scoped_chat.exe *)

module Scope = Lipsin_pubsub.Scope
module System = Lipsin_pubsub.System
module Generator = Lipsin_topology.Generator

let () =
  let g = Generator.grid ~rows:6 ~cols:6 in
  let sys = System.create ~seed:17 g in
  let scopes = Scope.create () in

  (* Rooms are topic paths; floors are scopes. *)
  let rooms =
    [ [ "chat"; "ocaml"; "beginners" ]; [ "chat"; "ocaml"; "compilers" ];
      [ "chat"; "networking"; "lipsin" ] ]
  in
  let topics = List.map (fun room -> (room, Scope.declare scopes room)) rooms in

  (* alice (node 0) reads everything under /chat/ocaml; bob (node 17)
     only the lipsin room; carol (node 35) everything. *)
  Scope.subscribe_scope scopes [ "chat"; "ocaml" ] ~subscriber:0;
  Scope.subscribe_scope scopes [ "chat"; "networking"; "lipsin" ] ~subscriber:17;
  Scope.subscribe_scope scopes [ "chat" ] ~subscriber:35;
  Scope.sync_rendezvous scopes (System.rendezvous sys);

  let post room message ~from =
    let topic = List.assoc room topics in
    System.advertise sys topic ~publisher:from;
    match System.publish sys topic ~publisher:from ~payload:message with
    | Ok r ->
      Printf.printf "%-30s %-22s -> nodes %s\n" (Scope.to_string room) message
        (String.concat "," (List.map string_of_int (List.sort compare r.System.delivered_to)))
    | Error e -> Printf.printf "%-30s %s\n" (Scope.to_string room) e
  in
  post [ "chat"; "ocaml"; "beginners" ] "\"how do i gadt\"" ~from:5;
  post [ "chat"; "ocaml"; "compilers" ] "\"flambda2 is neat\"" ~from:12;
  post [ "chat"; "networking"; "lipsin" ] "\"zFilters!\"" ~from:30;

  (* A room created later is still covered by the floor scopes. *)
  print_endline "\n(new room appears under /chat/ocaml)";
  let late = [ "chat"; "ocaml"; "jobs" ] in
  let late_topic = Scope.declare scopes late in
  Scope.sync_rendezvous scopes (System.rendezvous sys);
  System.advertise sys late_topic ~publisher:20;
  (match System.publish sys late_topic ~publisher:20 ~payload:"\"hiring\"" with
  | Ok r ->
    Printf.printf "%-30s %-22s -> nodes %s\n" (Scope.to_string late) "\"hiring\""
      (String.concat "," (List.map string_of_int (List.sort compare r.System.delivered_to)))
  | Error e -> print_endline e)
