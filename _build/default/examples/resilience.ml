(* Resilience stack: multipath spraying + lateral error correction on a
   lossy network — the two mechanisms that keep data flowing with zero
   signalling when links drop packets or die outright.

     dune exec examples/resilience.exe *)

module Rng = Lipsin_util.Rng
module Lit = Lipsin_bloom.Lit
module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module As_presets = Lipsin_topology.As_presets
module Assignment = Lipsin_core.Assignment
module Candidate = Lipsin_core.Candidate
module Multipath = Lipsin_core.Multipath
module Net = Lipsin_sim.Net
module Run = Lipsin_sim.Run
module Lateral = Lipsin_fec.Lateral

let () =
  let g = As_presets.as6461 () in
  let assignment = Assignment.make Lit.default (Rng.of_int 31) g in
  let net = Net.make assignment in
  let src = 0 and dst = 70 in

  (* 1. Multipath: two zFilters over disjoint paths, sprayed. *)
  (match Multipath.plan assignment ~src ~dst with
  | Error e -> prerr_endline e
  | Ok mp ->
    Printf.printf "multipath %d -> %d: primary %d hops, secondary %d hops (disjoint: %b)\n"
      src dst
      (List.length mp.Multipath.primary)
      (List.length mp.Multipath.secondary)
      mp.Multipath.disjoint;
    let deliver i tree =
      let table, zfilter = Multipath.spray mp ~packet_index:i in
      (Run.deliver net ~src ~table ~zfilter ~tree).Run.reached.(dst)
    in
    Printf.printf "  spraying 4 packets: %s\n"
      (String.concat " "
         (List.init 4 (fun i ->
              let tree =
                if i mod 2 = 0 then mp.Multipath.primary else mp.Multipath.secondary
              in
              if deliver i tree then "ok" else "LOST")));
    Net.fail_link net (List.hd mp.Multipath.primary);
    Printf.printf "  primary's first link fails -> odd packets: %s\n"
      (if deliver 1 mp.Multipath.secondary then "still delivered, zero signalling"
       else "LOST");
    Net.restore_link net (List.hd mp.Multipath.primary));

  (* 2. FEC: an 8-packet window plus one XOR repair over a 2%-lossy
     fabric, multicast to four subscribers. *)
  let subscribers = [ 30; 55; 90; 120 ] in
  let tree = Spt.delivery_tree g ~root:src ~subscribers in
  let c = Candidate.build_one assignment ~tree ~table:0 in
  let window = List.init 8 (fun i -> Printf.sprintf "frame-%d" i) in
  let raw = ref 0 and repaired = ref 0 and windows = 40 in
  let loss = { Run.probability = 0.02; rng = Rng.of_int 37 } in
  for _ = 1 to windows do
    let report =
      Lateral.send_window net ~src ~table:0 ~zfilter:c.Candidate.zfilter ~tree
        ~subscribers ~window ~loss
    in
    raw := !raw + report.Lateral.complete_without_fec;
    repaired := !repaired + report.Lateral.complete_with_fec
  done;
  let total = windows * List.length subscribers in
  Printf.printf
    "\nlateral FEC at 2%% link loss, %d windows x %d subscribers:\n" windows
    (List.length subscribers);
  Printf.printf "  complete windows without repair: %d/%d (%.1f%%)\n" !raw total
    (100.0 *. float_of_int !raw /. float_of_int total);
  Printf.printf "  complete windows with repair   : %d/%d (%.1f%%)\n" !repaired
    total
    (100.0 *. float_of_int !repaired /. float_of_int total)
