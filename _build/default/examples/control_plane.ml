(* In-band control plane (Sec. 3.4): the three control message flows —
   reverse-path collection, VLId recovery activation, and upstream
   blocking — carried as real packets through the fabric.

     dune exec examples/control_plane.exe *)

module Rng = Lipsin_util.Rng
module Lit = Lipsin_bloom.Lit
module Zfilter = Lipsin_bloom.Zfilter
module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module As_presets = Lipsin_topology.As_presets
module Assignment = Lipsin_core.Assignment
module Candidate = Lipsin_core.Candidate
module Net = Lipsin_sim.Net
module Run = Lipsin_sim.Run
module Plane = Lipsin_control.Plane

let () =
  let g = As_presets.ta2 () in
  let assignment = Assignment.make Lit.default (Rng.of_int 21) g in
  let net = Net.make assignment in

  (* 1. Reverse-path collection: the publisher never consults the
     topology system, yet the subscriber ends up with a working
     return-path zFilter. *)
  let publisher = 0 and subscriber = 40 in
  (match Plane.collect_reverse_path net ~publisher ~subscriber ~table:0 with
  | Error e -> prerr_endline e
  | Ok (reverse, trace) ->
    Printf.printf "reverse-path collection: control packet visited %d nodes\n"
      (List.length trace.Plane.visited);
    let o = Run.deliver net ~src:subscriber ~table:0 ~zfilter:reverse ~tree:[] in
    Printf.printf "  subscriber -> publisher with the collected filter: %s\n"
      (if o.Run.reached.(publisher) then "delivered" else "FAILED");
    Printf.printf "  collected filter fill: %.3f\n" (Zfilter.fill_factor reverse));

  (* 2. In-band VLId recovery: an activation message walks the backup
     path and installs the failed link's identity hop by hop. *)
  let tree = Spt.delivery_tree g ~root:publisher ~subscribers:[ subscriber ] in
  let failed = List.nth tree (List.length tree / 2) in
  let c = Candidate.build_one assignment ~tree ~table:0 in
  Printf.printf "\nfailing link %d->%d under traffic\n" failed.Graph.src failed.Graph.dst;
  (match Plane.activate_backup net ~failed with
  | Error e -> Printf.printf "  activation impossible: %s\n" e
  | Ok trace ->
    Printf.printf "  activation message: %d hops, %d slow-path stops\n"
      trace.Plane.hops
      (List.length trace.Plane.visited);
    let o =
      Run.deliver net ~src:publisher ~table:0 ~zfilter:c.Candidate.zfilter ~tree
    in
    Printf.printf "  old packets still delivered: %b\n" o.Run.reached.(subscriber);
    ignore (Plane.deactivate_backup net ~failed));

  (* 3. Upstream blocking: the victim quenches a specific zFilter one
     hop upstream (the Sec. 3.3.4 DDoS response). *)
  let victim_link = List.hd tree in
  Printf.printf "\nblocking the publication over %d->%d upstream\n"
    victim_link.Graph.src victim_link.Graph.dst;
  Plane.request_block net ~over:victim_link ~blocked:c.Candidate.zfilter ~table:0;
  let o = Run.deliver net ~src:publisher ~table:0 ~zfilter:c.Candidate.zfilter ~tree in
  Printf.printf "  publication delivered after quench: %b (expected false)\n"
    o.Run.reached.(subscriber);
  let other = Spt.delivery_tree g ~root:publisher ~subscribers:[ 10 ] in
  let c2 = Candidate.build_one assignment ~tree:other ~table:0 in
  let o2 = Run.deliver net ~src:publisher ~table:0 ~zfilter:c2.Candidate.zfilter ~tree:other in
  Printf.printf "  unrelated traffic on the same link: %b (expected true)\n"
    o2.Run.reached.(10)
