examples/metro_pubsub.mli:
