examples/scoped_chat.ml: Lipsin_pubsub Lipsin_topology List Printf String
