examples/quickstart.ml: Lipsin_bloom Lipsin_packet Lipsin_pubsub Lipsin_sim Lipsin_topology List Printf
