examples/interdomain_demo.ml: Array Lipsin_interdomain Lipsin_topology Lipsin_util List Printf String
