examples/control_plane.ml: Array Lipsin_bloom Lipsin_control Lipsin_core Lipsin_sim Lipsin_topology Lipsin_util List Printf
