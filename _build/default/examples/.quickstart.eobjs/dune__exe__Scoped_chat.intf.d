examples/scoped_chat.mli:
