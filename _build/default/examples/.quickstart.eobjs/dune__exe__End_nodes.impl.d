examples/end_nodes.ml: Lipsin_node Lipsin_topology List Option Printf String
