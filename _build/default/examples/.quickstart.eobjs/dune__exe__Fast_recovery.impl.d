examples/fast_recovery.ml: Array Lipsin_bloom Lipsin_core Lipsin_forwarding Lipsin_sim Lipsin_topology Lipsin_util List Printf String
