examples/end_nodes.mli:
