examples/quickstart.mli:
