examples/fast_recovery.mli:
