examples/interdomain_demo.mli:
