examples/resilience.mli:
