examples/control_plane.mli:
