examples/datacenter.mli:
