(* Fast recovery (Sec. 3.3.2): fail a link under live traffic and
   reroute with zero convergence time, both ways.

   1. VLId-based: a virtual backup path impersonates the failed link's
      identity — in-flight zFilters keep working unmodified.
   2. zFilter rewrite: the node detecting the failure ORs a
      pre-computed backup patch into the packet.

     dune exec examples/fast_recovery.exe *)

module Rng = Lipsin_util.Rng
module Lit = Lipsin_bloom.Lit
module Zfilter = Lipsin_bloom.Zfilter
module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module As_presets = Lipsin_topology.As_presets
module Assignment = Lipsin_core.Assignment
module Candidate = Lipsin_core.Candidate
module Select = Lipsin_core.Select
module Net = Lipsin_sim.Net
module Run = Lipsin_sim.Run
module Recovery = Lipsin_forwarding.Recovery

let () =
  let g = As_presets.as1221 () in
  let assignment = Assignment.make Lit.default (Rng.of_int 2) g in
  let net = Net.make assignment in
  let rng = Rng.of_int 4 in
  let picks = Rng.sample rng 6 (Graph.node_count g) in
  let publisher = picks.(0) in
  let subscribers = Array.to_list (Array.sub picks 1 5) in
  let tree = Spt.delivery_tree g ~root:publisher ~subscribers in
  let candidate =
    match Select.select_fpa (Candidate.build assignment ~tree) with
    | Some c -> c
    | None -> failwith "tree too large for one zFilter"
  in
  let table = candidate.Candidate.table in
  let zfilter = candidate.Candidate.zfilter in
  let show label outcome =
    Printf.printf "%-28s delivered %d/5, %d link traversals\n" label
      (List.length (List.filter (fun s -> outcome.Run.reached.(s)) subscribers))
      outcome.Run.link_traversals
  in
  Printf.printf "publisher %d -> subscribers %s (%d tree links)\n" publisher
    (String.concat "," (List.map string_of_int subscribers))
    (List.length tree);

  show "healthy network:" (Run.deliver net ~src:publisher ~table ~zfilter ~tree);

  (* Fail a link in the middle of the tree. *)
  let failed = List.nth tree (List.length tree / 2) in
  Printf.printf "\n!! link %d->%d fails\n" failed.Graph.src failed.Graph.dst;
  Net.fail_link net failed;
  show "no recovery:" (Run.deliver net ~src:publisher ~table ~zfilter ~tree);

  (* Scheme 1: VLId-based virtual backup path. *)
  (match Recovery.vlid_activate assignment ~engine_of:(Net.engine net) ~failed with
  | Ok () ->
    show "VLId recovery (same packet):"
      (Run.deliver net ~src:publisher ~table ~zfilter ~tree);
    Recovery.vlid_deactivate assignment ~engine_of:(Net.engine net) ~failed;
    Net.fail_link net failed
  | Error e -> Printf.printf "VLId recovery impossible: %s\n" e);

  (* Scheme 2: zFilter rewrite at the detecting node. *)
  (match Recovery.backup_path g ~link:failed with
  | None -> print_endline "no backup path (bridge)"
  | Some backup ->
    let patch = Recovery.zfilter_patch assignment ~table ~backup in
    let patched = Recovery.apply_patch zfilter patch in
    Printf.printf "zFilter fill %.3f -> %.3f after patching %d backup links\n"
      (Zfilter.fill_factor zfilter) (Zfilter.fill_factor patched)
      (List.length backup);
    let tree' =
      backup @ List.filter (fun l -> l.Graph.index <> failed.Graph.index) tree
    in
    show "zFilter-rewrite recovery:"
      (Run.deliver net ~src:publisher ~table ~zfilter:patched ~tree:tree'));

  Net.restore_link net failed;
  show "\nlink repaired:" (Run.deliver net ~src:publisher ~table ~zfilter ~tree)
