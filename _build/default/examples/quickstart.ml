(* Quickstart: the whole LIPSIN stack in ~40 lines.

   Build a small topology, bring up the pub/sub system, subscribe three
   nodes to a topic, publish, and look at what the fabric did.

     dune exec examples/quickstart.exe *)

module Graph = Lipsin_topology.Graph
module System = Lipsin_pubsub.System
module Topic = Lipsin_pubsub.Topic
module Run = Lipsin_sim.Run
module Header = Lipsin_packet.Header
module Zfilter = Lipsin_bloom.Zfilter

let () =
  (* A 10-node ring with two chords — any connected graph works; see
     Lipsin_topology.Generator and As_presets for bigger ones. *)
  let g = Graph.create ~nodes:10 in
  for v = 0 to 9 do
    Graph.add_edge g v ((v + 1) mod 10)
  done;
  Graph.add_edge g 0 5;
  Graph.add_edge g 2 7;

  (* The System bundles LIT assignment, the forwarding fabric, and the
     rendezvous function (Fig. 1 of the paper). *)
  let sys = System.create ~seed:7 g in
  let topic = Topic.of_string "demo/quickstart" in

  System.advertise sys topic ~publisher:0;
  List.iter (fun s -> System.subscribe sys topic ~subscriber:s) [ 3; 6; 9 ];

  match System.publish sys topic ~publisher:0 ~payload:"hello, zFilters" with
  | Error e -> prerr_endline ("publish failed: " ^ e)
  | Ok r ->
    let z = r.System.header.Header.zfilter in
    Printf.printf "published %S to %d subscribers\n"
      r.System.header.Header.payload
      (List.length r.System.delivered_to);
    Printf.printf "delivery tree: %d links, encoded in one %d-bit zFilter (fill %.2f)\n"
      (List.length r.System.tree) (Zfilter.m z) (Zfilter.fill_factor z);
    Printf.printf "links traversed: %d (forwarding efficiency %.1f%%)\n"
      r.System.outcome.Run.link_traversals
      (100.0 *. Run.forwarding_efficiency r.System.outcome ~tree:r.System.tree);
    Printf.printf "false positives: %d of %d membership tests\n"
      r.System.outcome.Run.false_positives r.System.outcome.Run.membership_tests;
    Printf.printf "zFilter (hex): %s\n" (Zfilter.to_hex z)
