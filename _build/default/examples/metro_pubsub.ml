(* Metropolitan pub/sub: the workload the paper's introduction
   motivates — RSS-feed-like topics with Zipf-distributed audiences on
   a real metropolitan ISP topology (AS3257-scale).

   Shows the state/stateless split of Sec. 4.3: almost every topic is
   delivered with a pure in-packet zFilter and zero router state, and
   only the most popular handful would need virtual links, while IP
   SSM pays per-group state everywhere.

     dune exec examples/metro_pubsub.exe *)

module Rng = Lipsin_util.Rng
module Graph = Lipsin_topology.Graph
module As_presets = Lipsin_topology.As_presets
module System = Lipsin_pubsub.System
module Topic = Lipsin_pubsub.Topic
module Run = Lipsin_sim.Run
module Scenario = Lipsin_workload.Scenario
module Assignment = Lipsin_core.Assignment
module Lit = Lipsin_bloom.Lit

let () =
  let g = As_presets.as3257 () in
  Printf.printf "topology: AS3257-scale metro WAN, %d routers / %d links\n"
    (Graph.node_count g) (Graph.edge_count g);

  (* Drive the full pub/sub API for a handful of named topics... *)
  let sys = System.create ~selection:System.Fpr ~seed:3 g in
  let rng = Rng.of_int 17 in
  let topics =
    [ "news/europe"; "sports/scores"; "weather/helsinki"; "stocks/ticks" ]
  in
  List.iter
    (fun name ->
      let topic = Topic.of_string name in
      let publisher = Rng.int rng (Graph.node_count g) in
      System.advertise sys topic ~publisher;
      let audience = 2 + Rng.int rng 14 in
      for _ = 1 to audience do
        System.subscribe sys topic
          ~subscriber:(Rng.int rng (Graph.node_count g))
      done;
      match System.publish sys topic ~publisher ~payload:name with
      | Error e -> Printf.printf "  %-18s -> %s\n" name e
      | Ok r ->
        Printf.printf
          "  %-18s -> %2d/%2d subscribers, %2d tree links, eff %.1f%%\n" name
          (List.length r.System.delivered_to)
          (List.length r.System.delivered_to + List.length r.System.missed)
          (List.length r.System.tree)
          (100.0 *. Run.forwarding_efficiency r.System.outcome ~tree:r.System.tree))
    topics;

  (* ...then the aggregate Zipf picture over thousands of topics. *)
  let assignment = Assignment.make Lit.default (Rng.of_int 5) g in
  let config = { Scenario.default with Scenario.topics = 50_000; seed = 11 } in
  let agg = Scenario.evaluate config assignment ~n:1000 () in
  Printf.printf "\nZipf workload, %d sampled topics (population %d):\n"
    agg.Scenario.sampled config.Scenario.topics;
  Printf.printf "  stateless zFilter delivery: %d topics (%.1f%%)\n"
    agg.Scenario.stateless_ok
    (100.0 *. float_of_int agg.Scenario.stateless_ok /. float_of_int agg.Scenario.sampled);
  Printf.printf "  need virtual links / split: %d topics\n" agg.Scenario.needs_state;
  Printf.printf "  mean forwarding efficiency: %.1f%%, mean fpr %.2f%%\n"
    (100.0 *. agg.Scenario.mean_efficiency)
    (100.0 *. agg.Scenario.mean_fpr);
  Printf.printf "  IP SSM would install %d (S,G) router-state entries for this\n"
    agg.Scenario.ssm_state_entries;
  Printf.printf "  LIPSIN installs 0 for the stateless %.1f%%\n"
    (100.0 *. float_of_int agg.Scenario.stateless_ok /. float_of_int agg.Scenario.sampled)
