(* The end-node API (Sec. 6.1): hosts with publication file systems and
   mailboxes — the application programmer's view of LIPSIN, mirroring
   the FreeBSD prototype's create/publish/subscribe system calls.

     dune exec examples/end_nodes.exe *)

module Host = Lipsin_node.Host
module Pubfs = Lipsin_node.Pubfs
module As_presets = Lipsin_topology.As_presets

let () =
  let cluster = Host.create_cluster ~seed:9 (As_presets.ta2 ()) in
  let newsroom = Host.endpoint cluster 12 in
  let reader_a = Host.endpoint cluster 33 in
  let reader_b = Host.endpoint cluster 57 in

  (* The newsroom reserves a publication (a /pub/... file in its own
     Pubfs) and readers subscribe by name. *)
  ignore (Host.create_publication newsroom ~name:"headlines" ~content:"issue #1");
  ignore (Host.subscribe reader_a ~name:"headlines");
  ignore (Host.subscribe reader_b ~name:"headlines");

  let show_delivery = function
    | Error e -> Printf.printf "publish failed: %s\n" e
    | Ok d ->
      Printf.printf "published to %d readers over %d link traversals\n"
        (List.length d.Host.delivered_to)
        d.Host.link_traversals
  in
  show_delivery (Host.publish newsroom ~name:"headlines");

  (* Readers poll their mailboxes like an event loop would. *)
  List.iteri
    (fun i reader ->
      List.iter
        (fun ev ->
          Printf.printf "  reader %d got %S -> %S\n" i ev.Host.name ev.Host.payload)
        (Host.poll reader))
    [ reader_a; reader_b ];

  (* Updates create new versions of the backing file; each publish
     snapshots the newest one, and receivers keep version history. *)
  Host.update_publication newsroom ~name:"headlines" ~content:"issue #2";
  show_delivery (Host.publish newsroom ~name:"headlines");
  Printf.printf "reader A newest copy: %s\n"
    (Option.value ~default:"-" (Host.read_received reader_a ~name:"headlines"));
  Printf.printf "reader A retained v1: %s\n"
    (Option.value ~default:"-"
       (Pubfs.read_version (Host.fs reader_a) ~path:"/net/headlines" ~version:1));
  Printf.printf "reader A's files: %s\n"
    (String.concat ", " (Pubfs.list (Host.fs reader_a) ()))
