(** Table 3 reproduction: mean fpr for different configurations —
    fpa- and fpr-optimised selection, each with constant k = 5 (kc)
    and the variable k distribution (kd), against the non-optimised
    d = 1 standard filter; users 8/16/24 on TA2, AS1221, AS3967,
    AS6461. *)

val run : ?trials:int -> Format.formatter -> unit
