module Rng = Lipsin_util.Rng
module Stats = Lipsin_util.Stats
module Lit = Lipsin_bloom.Lit
module Zfilter = Lipsin_bloom.Zfilter
module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module Assignment = Lipsin_core.Assignment
module Candidate = Lipsin_core.Candidate
module Net = Lipsin_sim.Net
module Node_engine = Lipsin_forwarding.Node_engine
module Header = Lipsin_packet.Header
module Lpm = Lipsin_baseline.Lpm

type chain = {
  hops : int;
  net : Net.t;
  path : Graph.link list;  (* node 0 -> node hops+1 *)
  zfilter : Zfilter.t;
  table : int;
}

let make_chain ~hops =
  if hops < 0 then invalid_arg "Pipeline.make_chain: negative hops";
  (* Line topology: end hosts are 0 and hops+1, forwarding nodes are
     1..hops.  Give each forwarding node a couple of stub neighbours so
     the per-hop decision tests a realistic port count (4 ports, as in
     the NetFPGA prototype). *)
  let nodes = hops + 2 + (2 * hops) in
  let g = Graph.create ~nodes in
  for v = 0 to hops do
    Graph.add_edge g v (v + 1)
  done;
  let stub = ref (hops + 2) in
  for v = 1 to hops do
    Graph.add_edge g v !stub;
    Graph.add_edge g v (!stub + 1);
    stub := !stub + 2
  done;
  let assignment = Assignment.make Lit.default (Rng.of_int 3) g in
  let net = Net.make ~loop_prevention:false assignment in
  let path =
    Spt.delivery_tree g ~root:0 ~subscribers:[ hops + 1 ]
  in
  let candidate = Candidate.build_one assignment ~tree:path ~table:0 in
  {
    hops;
    net;
    path;
    zfilter = candidate.Candidate.zfilter;
    table = candidate.Candidate.table;
  }

let send_through chain ~payload =
  let header = Header.make ~d_index:chain.table ~zfilter:chain.zfilter payload in
  let wire = ref (Header.encode header) in
  let forwarded = ref 0 in
  let rec hop node in_link =
    if node <> 0 && node > chain.hops then ()  (* reached the far end host *)
    else
      match Header.decode !wire with
      | Error _ -> ()
      | Ok h -> (
        match Header.decrement_ttl h with
        | None -> ()
        | Some h ->
          let verdict =
            Node_engine.forward
              (Net.engine chain.net node)
              ~table:h.Header.d_index ~zfilter:h.Header.zfilter ~in_link
          in
          (* A chain has exactly one matching next hop. *)
          (match verdict.Node_engine.forward_on with
          | l :: _ ->
            if node > 0 then incr forwarded;
            wire := Header.encode h;
            hop l.Graph.dst (Some l)
          | [] -> ()))
  in
  hop 0 None;
  !forwarded

let now_us () = Unix.gettimeofday () *. 1_000_000.0

let batch_means ~batches ~batch_size f =
  (* Warm up allocators and caches before measuring. *)
  for _ = 1 to batch_size do
    f ()
  done;
  Array.init batches (fun _ ->
      let start = now_us () in
      for _ = 1 to batch_size do
        f ()
      done;
      (now_us () -. start) /. float_of_int batch_size)

let measure_one_way chain ~payload ~batches ~batch_size =
  Stats.summarize
    (batch_means ~batches ~batch_size (fun () ->
         ignore (send_through chain ~payload)))

type echo_path = Wire | Ip_router | Ip_router_full | Lipsin_switch

(* The three echo paths do identical end-host and header work — encode
   at the sender, decode + TTL rewrite + re-encode at the middle box,
   decode at the receiver, then the same back — and differ only in the
   middle box's decision: nothing (wire), one LPM lookup (IP), or one
   zFilter table scan (LIPSIN).  That isolates exactly what the
   paper's Table 5 compares. *)
let measure_echo path ~payload ~batches ~batch_size =
  let chain = make_chain ~hops:1 in
  let assignment = Net.assignment chain.net in
  (* The middle box's port LITs, as the hardware holds them: one tag
     per outgoing interface for the table in use. *)
  let port_lits =
    Array.of_list
      (List.map
         (fun l -> Assignment.tag assignment l ~table:chain.table)
         (Graph.out_links (Net.graph chain.net) 1))
  in
  let fib =
    match path with
    | Ip_router_full ->
      (* A BGP-scale FIB: 200k random prefixes of length 16..24. *)
      let fib = Lpm.create () in
      let rng = Rng.of_int 1009 in
      for _ = 1 to 200_000 do
        let len = 16 + Rng.int rng 9 in
        let prefix = Int64.to_int32 (Rng.int64 rng) in
        Lpm.add fib ~prefix ~len ~next_hop:(Rng.int rng 16)
      done;
      fib
    | Wire | Ip_router | Lipsin_switch -> Lpm.reference_fib ()
  in
  let addr = ref 0l in
  let decision h =
    match path with
    | Wire -> ()
    | Ip_router | Ip_router_full ->
      addr := Int32.add !addr 0x9E3779B1l;
      ignore (Lpm.lookup fib !addr)
    | Lipsin_switch ->
      (* Algorithm 1 exactly as the NetFPGA prototype runs it: the
         fill-limit gate, then AND+compare against every port's LIT. *)
      let z = h.Header.zfilter in
      if Zfilter.within_fill_limit z ~limit:0.7 then
        Array.iter
          (fun lit -> ignore (Zfilter.matches z ~lit))
          port_lits
  in
  let one_leg wire =
    match Header.decode wire with
    | Error _ -> wire
    | Ok h -> (
      match Header.decrement_ttl h with
      | None -> wire
      | Some h ->
        decision h;
        Header.encode h)
  in
  let header = Header.make ~d_index:chain.table ~zfilter:chain.zfilter payload in
  let request = Header.encode header in
  Stats.summarize
    (batch_means ~batches ~batch_size (fun () ->
         let at_receiver = one_leg request in
         ignore (one_leg at_receiver)))
