module Rng = Lipsin_util.Rng
module Latency = Lipsin_sim.Latency

let paper = [ (0, 16.0, 1.0); (1, 19.0, 2.0); (2, 21.0, 2.0); (3, 24.0, 2.0) ]

let run ?(samples = 10_000) ppf =
  Format.fprintf ppf
    "Table 4: latency vs forwarding nodes (model calibrated to paper; pipeline measured)@.";
  Format.fprintf ppf "%5s | %18s | %22s | %14s@." "hops" "model mu/sd (us)"
    "sw pipeline mu/sd (us)" "paper mu/sd";
  Format.fprintf ppf "%s@." (String.make 72 '-');
  let rng = Rng.of_int 99 in
  List.iter
    (fun (hops, paper_mu, paper_sd) ->
      let model = Latency.sample_one_way rng Latency.default ~hops ~samples in
      let chain = Pipeline.make_chain ~hops in
      let measured =
        Pipeline.measure_one_way chain ~payload:"ping" ~batches:50
          ~batch_size:200
      in
      Format.fprintf ppf
        "%5d | %8.1f %8.2f | %10.2f %10.2f | %6.0f %6.0f@." hops
        model.Lipsin_util.Stats.mean model.Lipsin_util.Stats.stddev
        measured.Lipsin_util.Stats.mean measured.Lipsin_util.Stats.stddev
        paper_mu paper_sd)
    paper;
  Format.fprintf ppf
    "(paper: ~3us extra per NetFPGA hop; BF matching itself is 56ns of that.)@."
