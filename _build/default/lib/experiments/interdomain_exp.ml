module Rng = Lipsin_util.Rng
module Graph = Lipsin_topology.Graph
module Generator = Lipsin_topology.Generator
module Internet = Lipsin_interdomain.Internet

let build_internet () =
  (* 8 domains in a loose mesh. *)
  let domain_graph = Graph.create ~nodes:8 in
  List.iter
    (fun (u, v) -> Graph.add_edge domain_graph u v)
    [ (0, 1); (1, 2); (2, 3); (3, 0); (1, 4); (4, 5); (5, 6); (6, 7); (7, 4); (2, 6) ];
  let rng = Rng.of_int 61 in
  let intra =
    Array.init 8 (fun i ->
        Generator.pref_attach ~rng:(Rng.split rng) ~nodes:(20 + (3 * i))
          ~edges:(30 + (4 * i)) ~max_degree:8 ())
  in
  Internet.create ~domain_graph ~intra ()

let run ?(publications = 20) ppf =
  let net = build_internet () in
  let rng = Rng.of_int 67 in
  Format.fprintf ppf
    "Inter-domain forwarding: 8 domains, %d publications@." publications;
  let delivered_total = ref 0 and wanted_total = ref 0 in
  let intra_total = ref 0 and inter_total = ref 0 and false_entries = ref 0 in
  for p = 1 to publications do
    let topic = Int64.of_int (1000 + p) in
    (* 2-12 subscribers spread over random domains. *)
    let n_subs = 2 + Rng.int rng 11 in
    for _ = 1 to n_subs do
      let domain = Rng.int rng (Internet.domain_count net) in
      let node = Rng.int rng (Graph.node_count (Internet.intra_graph net domain)) in
      Internet.subscribe net ~topic { Internet.domain; node }
    done;
    let pub_domain = Rng.int rng (Internet.domain_count net) in
    let pub_node =
      Rng.int rng (Graph.node_count (Internet.intra_graph net pub_domain))
    in
    let publisher = { Internet.domain = pub_domain; node = pub_node } in
    match Internet.publish net ~topic ~publisher with
    | Error _ -> ()
    | Ok d ->
      delivered_total := !delivered_total + List.length d.Internet.delivered;
      wanted_total :=
        !wanted_total
        + List.length d.Internet.delivered
        + List.length d.Internet.missed;
      intra_total := !intra_total + d.Internet.intra_traversals;
      inter_total := !inter_total + d.Internet.inter_traversals;
      false_entries := !false_entries + d.Internet.false_domain_entries
  done;
  Format.fprintf ppf "  subscribers reached : %d/%d@." !delivered_total !wanted_total;
  Format.fprintf ppf "  intra-domain link traversals: %d@." !intra_total;
  Format.fprintf ppf "  domain boundary crossings   : %d@." !inter_total;
  Format.fprintf ppf "  false-positive domain entries: %d@." !false_entries
