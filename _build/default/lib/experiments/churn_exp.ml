module Rng = Lipsin_util.Rng
module Lit = Lipsin_bloom.Lit
module Zfilter = Lipsin_bloom.Zfilter
module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module As_presets = Lipsin_topology.As_presets
module Assignment = Lipsin_core.Assignment
module Dense = Lipsin_stateful.Dense
module Virtual_link = Lipsin_stateful.Virtual_link

let run ?(joins = 300) ppf =
  let g = As_presets.as3257 () in
  let assignment = Assignment.make Lit.default (Rng.of_int 257) g in
  let rng = Rng.of_int 263 in
  let nodes = Graph.node_count g in
  Format.fprintf ppf
    "Join churn on a popular topic (AS3257, %d joins per row)@." joins;
  Format.fprintf ppf "%9s | %9s %11s %11s | %10s@." "coverage" "covered"
    "stateless" "needs state" "IP state/join";
  Format.fprintf ppf "%s@." (String.make 62 '-');
  List.iter
    (fun coverage ->
      let count = int_of_float (coverage *. float_of_int nodes) in
      let picks = Rng.sample rng (count + 1) nodes in
      let publisher = picks.(0) in
      let subscribers = Array.to_list (Array.sub picks 1 count) in
      let plan =
        Dense.plan assignment rng ~publisher ~subscribers
          ~cores:(max 2 (count / 8))
      in
      (* Nodes already inside some installed virtual tree. *)
      let covered_nodes = Hashtbl.create 64 in
      List.iter
        (fun v ->
          List.iter
            (fun l ->
              Hashtbl.replace covered_nodes l.Graph.src ();
              Hashtbl.replace covered_nodes l.Graph.dst ())
            v.Virtual_link.links)
        plan.Dense.virtuals;
      let base_filter = Dense.zfilter assignment plan ~table:0 in
      let covered = ref 0 and stateless = ref 0 and needs_state = ref 0 in
      let ip_state = ref 0 in
      let dist_from_pub = Spt.distances g ~root:publisher in
      for _ = 1 to joins do
        let joiner = Rng.int rng nodes in
        (* IP multicast pays join-path state regardless. *)
        ip_state := !ip_state + max 1 dist_from_pub.(joiner);
        if Hashtbl.mem covered_nodes joiner then incr covered
        else begin
          (* Try absorbing the join statelessly: OR its path into the
             current zFilter and check the fill limit. *)
          let path = Spt.delivery_tree g ~root:publisher ~subscribers:[ joiner ] in
          let extended = Zfilter.copy base_filter in
          List.iter
            (fun l -> Zfilter.add extended (Assignment.tag assignment l ~table:0))
            path;
          if Zfilter.within_fill_limit extended ~limit:0.7 then incr stateless
          else incr needs_state
        end
      done;
      Format.fprintf ppf "%8.0f%% | %8.1f%% %10.1f%% %10.1f%% | %10.1f@."
        (100.0 *. coverage)
        (100.0 *. float_of_int !covered /. float_of_int joins)
        (100.0 *. float_of_int !stateless /. float_of_int joins)
        (100.0 *. float_of_int !needs_state /. float_of_int joins)
        (float_of_int !ip_state /. float_of_int joins))
    [ 0.1; 0.25; 0.5 ];
  Format.fprintf ppf
    "(covered + stateless joins need no network signalling at all; IP@.";
  Format.fprintf ppf " multicast installs state on every join's path.)@."
