(** The measured software forwarding pipeline.

    The NetFPGA substitute: a chain of real {!Lipsin_forwarding.Node_engine}
    instances driven in-process, timed with the monotonic wall clock.
    Each hop performs exactly what the hardware does per packet —
    parse the header, run Algorithm 1 over every port, rewrite the
    TTL — so the per-hop cost scales the way the paper's Table 4
    latencies do, and the Table 5 comparison (wire vs LPM IP router vs
    LIPSIN) exercises the actual decision code of both fabrics. *)

type chain
(** A linear topology end-host → h forwarding nodes → end-host, with a
    zFilter encoding the path. *)

val make_chain : hops:int -> chain
(** @raise Invalid_argument if [hops < 0]. *)

val send_through : chain -> payload:string -> int
(** Pushes one packet through the chain (encode, then per hop: decode,
    forward, TTL rewrite); returns the number of hops that forwarded
    it (sanity: = hops). *)

val measure_one_way :
  chain -> payload:string -> batches:int -> batch_size:int -> Lipsin_util.Stats.summary
(** Wall-clock microseconds per packet; each sample is the mean of one
    batch (sub-µs work is not measurable per packet). *)

type echo_path =
  | Wire             (** Header encode/decode only — no forwarding. *)
  | Ip_router        (** One LPM lookup (5-entry FIB) each way. *)
  | Ip_router_full   (** LPM against a 200k-route BGP-scale FIB. *)
  | Lipsin_switch    (** One zFilter forwarding decision each way. *)

val measure_echo :
  echo_path -> payload:string -> batches:int -> batch_size:int -> Lipsin_util.Stats.summary
(** Round-trip microseconds through the given path. *)
