(** Figure 6 reproduction: stateful dense multicast — forwarding
    efficiency when virtual links rooted at high-degree cores cover
    10–50% of all nodes as subscribers, on AS1221, AS3257 and
    AS6461.  The paper reports >92–95% efficiency throughout. *)

val run : ?trials:int -> Format.formatter -> unit
