(** The Sec. 4.3 trade-off, quantified: for dense subscriber sets,
    stateless multiple sending (several smaller zFilters, duplicate
    traversals where trees overlap) versus stateful virtual links
    (near-perfect efficiency, but forwarding state in core nodes). *)

val run : ?trials:int -> Format.formatter -> unit
