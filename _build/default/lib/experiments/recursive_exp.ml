module Rng = Lipsin_util.Rng
module Lit = Lipsin_bloom.Lit
module Graph = Lipsin_topology.Graph
module Weights = Lipsin_topology.Weights
module As_presets = Lipsin_topology.As_presets
module Assignment = Lipsin_core.Assignment
module Candidate = Lipsin_core.Candidate
module Select = Lipsin_core.Select
module Net = Lipsin_sim.Net
module Run = Lipsin_sim.Run
module Overlay = Lipsin_recursive.Overlay

let overlay_part ppf ~trials =
  let underlay_graph = As_presets.ta2 () in
  let underlay = Assignment.make Lit.default (Rng.of_int 359) underlay_graph in
  Format.fprintf ppf "LIPSIN over LIPSIN on TA2 (ring overlays, %d publications each)@."
    trials;
  Format.fprintf ppf "%7s | %9s | %10s | %8s@." "overlay" "delivered"
    "underlay/pub" "stretch";
  Format.fprintf ppf "%s@." (String.make 46 '-');
  List.iter
    (fun size ->
      let rng = Rng.of_int (367 + size) in
      let attach = Rng.sample rng size (Graph.node_count underlay_graph) in
      let edges = List.init size (fun i -> (i, (i + 1) mod size)) in
      match Overlay.create ~underlay ~attach ~edges () with
      | Error e -> Format.fprintf ppf "%7d | %s@." size e
      | Ok o ->
        let delivered = ref 0 and wanted = ref 0 in
        let traversals = ref 0 and stretch_acc = ref 0.0 and ok = ref 0 in
        for _ = 1 to trials do
          let picks = Rng.sample rng (min size 4) size in
          let src = picks.(0) in
          let subscribers =
            Array.to_list (Array.sub picks 1 (Array.length picks - 1))
          in
          match Overlay.publish o ~src ~subscribers with
          | Error _ -> ()
          | Ok d ->
            incr ok;
            delivered := !delivered + List.length d.Overlay.delivered;
            wanted := !wanted + List.length subscribers;
            traversals := !traversals + d.Overlay.underlay_traversals;
            stretch_acc := !stretch_acc +. d.Overlay.stretch
        done;
        Format.fprintf ppf "%7d | %4d/%-4d | %12.1f | %7.2fx@." size !delivered
          !wanted
          (float_of_int !traversals /. float_of_int (max 1 !ok))
          (!stretch_acc /. float_of_int (max 1 !ok)))
    [ 4; 6; 8 ]

let weighted_part ppf ~trials =
  Format.fprintf ppf
    "@.Weighted (IGP-cost) trees vs hop-count trees, 16 users, fpa selection@.";
  Format.fprintf ppf "%-8s | %14s %9s | %14s %9s@." "AS" "hop-count eff"
    "fpr" "weighted eff" "fpr";
  Format.fprintf ppf "%s@." (String.make 64 '-');
  List.iter
    (fun (name, graph) ->
      let assignment = Assignment.make Lit.default (Rng.of_int 373) graph in
      let weights = Weights.random graph (Rng.of_int 379) ~min:1.0 ~max:10.0 in
      let net = Net.make assignment in
      let run_with tree_of =
        let rng = Rng.of_int 383 in
        let eff = ref 0.0 and fpr = ref 0.0 and n = ref 0 in
        for _ = 1 to trials do
          let picks = Rng.sample rng 16 (Graph.node_count graph) in
          let subscribers = Array.to_list (Array.sub picks 1 15) in
          let tree = tree_of picks.(0) subscribers in
          match Select.select_fpa (Candidate.build assignment ~tree) with
          | None -> ()
          | Some c ->
            incr n;
            let o =
              Run.deliver net ~src:picks.(0) ~table:c.Candidate.table
                ~zfilter:c.Candidate.zfilter ~tree
            in
            eff := !eff +. (100.0 *. Run.forwarding_efficiency o ~tree);
            fpr := !fpr +. (100.0 *. Run.false_positive_rate o)
        done;
        (!eff /. float_of_int (max 1 !n), !fpr /. float_of_int (max 1 !n))
      in
      let hop_eff, hop_fpr =
        run_with (fun root subscribers ->
            Lipsin_topology.Spt.delivery_tree graph ~root ~subscribers)
      in
      let w_eff, w_fpr =
        run_with (fun root subscribers ->
            Weights.delivery_tree weights ~root ~subscribers)
      in
      Format.fprintf ppf "%-8s | %13.2f%% %8.2f%% | %13.2f%% %8.2f%%@." name
        hop_eff hop_fpr w_eff w_fpr)
    [ ("AS1221", As_presets.as1221 ()); ("AS6461", As_presets.as6461 ()) ];
  Format.fprintf ppf
    "(weighted trees are a little longer, so fills and fprs rise slightly;@.";
  Format.fprintf ppf " the paper's conclusions are insensitive to IGP weighting.)@."

let run ?(trials = 100) ppf =
  overlay_part ppf ~trials;
  weighted_part ppf ~trials
