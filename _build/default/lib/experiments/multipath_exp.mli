(** Multipath spraying (Sec. 4.4 future work, implemented as
    {!Lipsin_core.Multipath}): how often disjoint path pairs exist on
    the evaluation topologies, the load-splitting they achieve, and
    survival of single-link failures with zero recovery actions. *)

val run : ?trials:int -> Format.formatter -> unit
