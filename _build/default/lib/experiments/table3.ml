module Lit = Lipsin_bloom.Lit
module As_presets = Lipsin_topology.As_presets

(* Paper values: users, AS -> (fpa_kc, fpa_kd, fpr_kc, fpr_kd, std). *)
let paper =
  [
    ((8, "TA2"), (0.12, 0.2, 0.0, 0.0, 0.18));
    ((8, "AS1221"), (0.44, 0.54, 0.26, 0.26, 0.55));
    ((8, "AS3967"), (0.28, 0.33, 0.03, 0.03, 0.48));
    ((8, "AS6461"), (0.32, 0.39, 0.06, 0.07, 0.36));
    ((16, "TA2"), (0.54, 0.83, 0.01, 0.03, 0.8));
    ((16, "AS1221"), (1.17, 1.28, 0.36, 0.45, 1.57));
    ((16, "AS3967"), (1.13, 1.29, 0.24, 0.34, 1.48));
    ((16, "AS6461"), (1.55, 1.57, 0.71, 0.83, 1.89));
    ((24, "TA2"), (1.65, 1.95, 0.38, 0.58, 2.03));
    ((24, "AS1221"), (2.48, 2.65, 1.21, 1.33, 3.55));
    ((24, "AS3967"), (2.55, 2.78, 1.31, 1.48, 3.22));
    ((24, "AS6461"), (3.72, 3.79, 2.81, 2.86, 4.86));
  ]

let run ?(trials = 500) ppf =
  let base = { Trial.default_config with Trial.trials } in
  let kc = Lit.default in
  let kd = Lit.paper_variable in
  let standard_params = Lit.constant_k ~m:248 ~d:1 ~k:5 in
  let topologies =
    [ ("TA2", As_presets.ta2 ()); ("AS1221", As_presets.as1221 ());
      ("AS3967", As_presets.as3967 ()); ("AS6461", As_presets.as6461 ()) ]
  in
  Format.fprintf ppf
    "Table 3: mean fpr%% per configuration (%d trials; paper in parens)@."
    trials;
  Format.fprintf ppf "%5s %-8s | %12s %12s | %12s %12s | %12s@." "users" "AS"
    "fpa/kc" "fpa/kd" "fpr/kc" "fpr/kd" "std k=5";
  Format.fprintf ppf "%s@." (String.make 92 '-');
  let fpr_of config graph users =
    (Trial.run config graph ~users).Trial.fpr_mean
  in
  List.iter
    (fun users ->
      List.iter
        (fun (name, graph) ->
          let fpa_kc = fpr_of { base with Trial.params = kc; selection = Trial.Fpa } graph users in
          let fpa_kd = fpr_of { base with Trial.params = kd; selection = Trial.Fpa } graph users in
          let fpr_kc = fpr_of { base with Trial.params = kc; selection = Trial.Fpr } graph users in
          let fpr_kd = fpr_of { base with Trial.params = kd; selection = Trial.Fpr } graph users in
          let std = fpr_of { base with Trial.params = standard_params; selection = Trial.Standard } graph users in
          let p_fpa_kc, p_fpa_kd, p_fpr_kc, p_fpr_kd, p_std =
            match List.assoc_opt (users, name) paper with
            | Some v -> v
            | None -> (nan, nan, nan, nan, nan)
          in
          Format.fprintf ppf
            "%5d %-8s | %4.2f (%4.2f) %4.2f (%4.2f) | %4.2f (%4.2f) %4.2f (%4.2f) | %4.2f (%4.2f)@."
            users name fpa_kc p_fpa_kc fpa_kd p_fpa_kd fpr_kc p_fpr_kc fpr_kd
            p_fpr_kd std p_std)
        topologies;
      Format.fprintf ppf "%s@." (String.make 92 '-'))
    [ 8; 16; 24 ]
