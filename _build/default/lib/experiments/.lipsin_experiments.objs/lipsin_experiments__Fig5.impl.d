lib/experiments/fig5.ml: Format Lipsin_topology List String Trial
