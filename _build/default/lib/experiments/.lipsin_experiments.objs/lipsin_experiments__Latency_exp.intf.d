lib/experiments/latency_exp.mli: Format
