lib/experiments/splitting_exp.mli: Format
