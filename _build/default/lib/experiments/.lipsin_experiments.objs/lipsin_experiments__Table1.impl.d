lib/experiments/table1.ml: Format Lipsin_topology List String
