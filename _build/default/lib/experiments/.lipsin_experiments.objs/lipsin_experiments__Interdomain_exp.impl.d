lib/experiments/interdomain_exp.ml: Array Format Int64 Lipsin_interdomain Lipsin_topology Lipsin_util List
