lib/experiments/ablation.ml: Array Format Lipsin_baseline Lipsin_bloom Lipsin_topology Lipsin_util List Trial
