lib/experiments/recovery_exp.mli: Format
