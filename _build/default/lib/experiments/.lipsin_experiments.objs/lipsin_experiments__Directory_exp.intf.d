lib/experiments/directory_exp.mli: Format
