lib/experiments/multipath_exp.mli: Format
