lib/experiments/fig6.ml: Array Format Lipsin_bloom Lipsin_core Lipsin_sim Lipsin_stateful Lipsin_topology Lipsin_util List String
