lib/experiments/fec_exp.mli: Format
