lib/experiments/trial.ml: Array Lipsin_baseline Lipsin_bloom Lipsin_core Lipsin_sim Lipsin_topology Lipsin_util List
