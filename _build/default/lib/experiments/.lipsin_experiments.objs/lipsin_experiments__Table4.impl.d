lib/experiments/table4.ml: Format Lipsin_sim Lipsin_util List Pipeline String
