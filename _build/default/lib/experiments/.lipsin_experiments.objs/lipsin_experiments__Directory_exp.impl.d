lib/experiments/directory_exp.ml: Format Int64 Lipsin_interdomain Lipsin_util
