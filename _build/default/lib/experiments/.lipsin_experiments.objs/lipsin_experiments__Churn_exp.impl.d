lib/experiments/churn_exp.ml: Array Format Hashtbl Lipsin_bloom Lipsin_core Lipsin_stateful Lipsin_topology Lipsin_util List String
