lib/experiments/interdomain_exp.mli: Format
