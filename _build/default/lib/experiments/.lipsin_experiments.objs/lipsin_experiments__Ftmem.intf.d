lib/experiments/ftmem.mli: Format
