lib/experiments/goodput_exp.mli: Format
