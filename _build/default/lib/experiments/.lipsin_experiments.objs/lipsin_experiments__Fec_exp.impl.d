lib/experiments/fec_exp.ml: Array Format Lipsin_bloom Lipsin_core Lipsin_fec Lipsin_sim Lipsin_topology Lipsin_util List Printf String
