lib/experiments/pipeline.mli: Lipsin_util
