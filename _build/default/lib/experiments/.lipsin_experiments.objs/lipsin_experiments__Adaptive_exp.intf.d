lib/experiments/adaptive_exp.mli: Format
