lib/experiments/bootstrap_exp.mli: Format
