lib/experiments/workload_exp.mli: Format
