lib/experiments/ftmem.ml: Format Lipsin_bloom Lipsin_core Lipsin_forwarding Lipsin_topology Lipsin_util
