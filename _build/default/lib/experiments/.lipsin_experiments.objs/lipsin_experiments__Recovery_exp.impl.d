lib/experiments/recovery_exp.ml: Array Format Lipsin_bloom Lipsin_core Lipsin_forwarding Lipsin_sim Lipsin_topology Lipsin_util List Printf
