lib/experiments/latency_exp.ml: Array Format Lipsin_bloom Lipsin_core Lipsin_sim Lipsin_topology Lipsin_util List String
