lib/experiments/security_exp.ml: Format Lipsin_bloom Lipsin_core Lipsin_security Lipsin_sim Lipsin_topology Lipsin_util List
