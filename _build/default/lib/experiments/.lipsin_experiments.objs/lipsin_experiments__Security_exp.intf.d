lib/experiments/security_exp.mli: Format
