lib/experiments/table2.ml: Format Lipsin_bloom Lipsin_topology List Printf String Trial
