lib/experiments/recursive_exp.mli: Format
