lib/experiments/table5.ml: Format Lipsin_util List Pipeline String
