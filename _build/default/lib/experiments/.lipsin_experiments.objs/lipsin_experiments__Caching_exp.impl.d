lib/experiments/caching_exp.ml: Array Format Hashtbl Int64 Lipsin_cache Lipsin_topology Lipsin_util Lipsin_workload List String
