lib/experiments/congestion_exp.mli: Format
