lib/experiments/table3.ml: Format Lipsin_bloom Lipsin_topology List String Trial
