lib/experiments/churn_exp.mli: Format
