lib/experiments/bootstrap_exp.ml: Array Format Lipsin_bootstrap Lipsin_forwarding Lipsin_topology List String
