lib/experiments/loops_exp.mli: Format
