lib/experiments/trial.mli: Lipsin_bloom Lipsin_topology
