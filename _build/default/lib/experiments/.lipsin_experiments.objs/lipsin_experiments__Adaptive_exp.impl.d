lib/experiments/adaptive_exp.ml: Array Format Hashtbl Lipsin_core Lipsin_topology Lipsin_util Lipsin_workload List Option
