lib/experiments/pipeline.ml: Array Int32 Int64 Lipsin_baseline Lipsin_bloom Lipsin_core Lipsin_forwarding Lipsin_packet Lipsin_sim Lipsin_topology Lipsin_util List Unix
