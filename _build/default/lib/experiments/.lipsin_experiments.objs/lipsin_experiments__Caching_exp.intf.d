lib/experiments/caching_exp.mli: Format
