(** Forwarding-table memory (Sec. 4.2, Eq. 4).

    The paper's arithmetic: d = 8 tables, 128 links (physical +
    virtual), 248-bit LITs and an 8-bit out port give 256 Kbit dense —
    on-chip territory — and ≈48 Kbit with the sparse set-bit-position
    representation.  We print the closed-form values and cross-check
    them against an actual engine instance on a 128-port node. *)

val run : Format.formatter -> unit
