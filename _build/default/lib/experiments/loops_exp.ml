module Rng = Lipsin_util.Rng
module Lit = Lipsin_bloom.Lit
module Zfilter = Lipsin_bloom.Zfilter
module Graph = Lipsin_topology.Graph
module Spt = Lipsin_topology.Spt
module As_presets = Lipsin_topology.As_presets
module Assignment = Lipsin_core.Assignment
module Candidate = Lipsin_core.Candidate
module Net = Lipsin_sim.Net
module Run = Lipsin_sim.Run

(* Build an adversarial filter: a normal path plus the links that close
   a cycle back from the path's end to its start (the A->B->C->A case
   of Sec. 3.3.3). *)
let looping_filter graph assignment ~table path =
  let z = Zfilter.create ~m:(Assignment.params assignment).Lit.m in
  List.iter (fun l -> Zfilter.add z (Assignment.tag assignment l ~table)) path;
  let last = List.nth path (List.length path - 1) in
  let first = List.hd path in
  let back =
    Spt.delivery_tree graph ~root:last.Graph.dst ~subscribers:[ first.Graph.src ]
  in
  List.iter (fun l -> Zfilter.add z (Assignment.tag assignment l ~table)) back;
  z

let run ?(trials = 100) ppf =
  let graph = As_presets.ta2 () in
  let assignment = Assignment.make Lit.default (Rng.of_int 277) graph in
  let rng = Rng.of_int 281 in
  let with_prev = Net.make ~loop_prevention:true assignment in
  let without_prev = Net.make ~loop_prevention:false assignment in
  let t_with = ref 0 and t_without = ref 0 and detected = ref 0 in
  let honest_with = ref 0 and honest_without = ref 0 in
  for _ = 1 to trials do
    let picks = Rng.sample rng 2 (Graph.node_count graph) in
    let path = Spt.delivery_tree graph ~root:picks.(0) ~subscribers:[ picks.(1) ] in
    if path <> [] then begin
      let z = looping_filter graph assignment ~table:0 path in
      let o1 =
        Run.deliver ~mode:(Run.Ttl 16) with_prev ~src:picks.(0) ~table:0
          ~zfilter:z ~tree:path
      in
      let o2 =
        Run.deliver ~mode:(Run.Ttl 16) without_prev ~src:picks.(0) ~table:0
          ~zfilter:z ~tree:path
      in
      t_with := !t_with + o1.Run.link_traversals;
      t_without := !t_without + o2.Run.link_traversals;
      if o1.Run.loop_drops > 0 then incr detected;
      (* Control: an honest filter must not be penalised. *)
      let honest = (Candidate.build_one assignment ~tree:path ~table:0).Candidate.zfilter in
      let h1 =
        Run.deliver with_prev ~src:picks.(0) ~table:0 ~zfilter:honest ~tree:path
      in
      let h2 =
        Run.deliver without_prev ~src:picks.(0) ~table:0 ~zfilter:honest ~tree:path
      in
      if Run.all_reached h1 [ picks.(1) ] then incr honest_with;
      if Run.all_reached h2 [ picks.(1) ] then incr honest_without
    end
  done;
  Format.fprintf ppf
    "Loop prevention on TA2 (%d adversarial cycle filters, TTL 16)@." trials;
  Format.fprintf ppf "  traversals without prevention: %d@." !t_without;
  Format.fprintf ppf "  traversals with prevention   : %d (%.1fx less waste)@."
    !t_with
    (float_of_int !t_without /. float_of_int (max 1 !t_with));
  Format.fprintf ppf "  loops detected and cut       : %d/%d@." !detected trials;
  Format.fprintf ppf
    "  honest traffic delivered     : %d/%d with prevention, %d/%d without@."
    !honest_with trials !honest_without trials;
  Format.fprintf ppf
    "(the incoming-LIT cache cuts looping packets while honest deliveries@.";
  Format.fprintf ppf " are untouched -- the paper's Sec 3.3.3 claim.)@."
